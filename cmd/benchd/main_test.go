package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadFlagErrors(t *testing.T) {
	if err := run([]string{"--no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestUnlistenableAddrFailsFast(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"--addr", "203.0.113.1:1", // TEST-NET address: bind must fail
		"--perflog", filepath.Join(dir, "perflogs"),
		"--tree", filepath.Join(dir, "install"),
	})
	if err == nil {
		t.Fatal("expected listen error")
	}
}

func TestCorruptPerflogTreeRejectedAtBoot(t *testing.T) {
	// The initial warm ingest must surface unreadable logs instead of
	// serving a half-loaded store.
	dir := t.TempDir()
	root := filepath.Join(dir, "perflogs", "archer2")
	if err := writeFile(t, filepath.Join(root, "x.log"), "not a perflog line\n"); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"--addr", "127.0.0.1:0",
		"--perflog", filepath.Join(dir, "perflogs"),
		"--tree", filepath.Join(dir, "install"),
	})
	if err == nil || !strings.Contains(err.Error(), "ingest") {
		t.Fatalf("err = %v", err)
	}
}

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}
