// Command benchd is the continuous-benchmarking daemon: a perflog
// store behind an HTTP API. Runs submitted over HTTP execute through
// the same reproducible pipeline benchctl drives (concretize → build →
// schedule → run → extract), and every perflog entry — whether produced
// by a daemon run or appended to the tree by out-of-band benchctl
// invocations — is served from one incremental, queryable store.
//
//	benchd --addr :8080 --perflog perflogs --tree install --workers 4
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/runs \
//	    -d '{"benchmark":"babelstream-omp","system":"archer2"}'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -s 'localhost:8080/v1/query?benchmark=babelstream-omp&fom=triad_mbps&agg=mean&group_by=system'
//	curl -s 'localhost:8080/v1/regressions?fom=triad_mbps&tolerance=0.1&window=5'
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/traces/run-000001
//
// Continuous benchmarking: POST /v1/schedules re-runs a benchmark on
// an interval and/or whenever its concretized build hash changes, and
// GET /v1/watch streams lifecycle events (run.started, run.finished,
// regression.detected, schedule.fired, store.sealed, server.shutdown)
// as Server-Sent Events with Last-Event-ID replay:
//
//	curl -s -X POST localhost:8080/v1/schedules \
//	    -d '{"benchmark":"babelstream-omp","system":"archer2","every":"10m"}'
//	curl -sN 'localhost:8080/v1/watch?types=run.finished,regression.detected'
//
// Self-observability: the daemon samples its own metrics into a
// multi-resolution history, evaluates declarative alert rules
// (publishing alert.fired / alert.resolved on /v1/watch), and captures
// pprof snapshots when alerts fire:
//
//	curl -s -X POST localhost:8080/v1/alerts \
//	    -d '{"metric":"benchd_queue_depth","kind":"threshold","op":"gt","value":48,"for":"30s"}'
//	curl -s 'localhost:8080/v1/metrics/history?name=benchd_queue_depth&since=15m'
//	curl -s localhost:8080/v1/profiles
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	perflogRoot := fs.String("perflog", "perflogs", "perflog root directory")
	dataDir := fs.String("data-dir", "", "segment store directory (empty = in-memory store, full re-parse each boot)")
	sealThreshold := fs.Int("seal-threshold", 4096, "head entries at which the maintenance loop seals a segment")
	compactSegments := fs.Int("compact-segments", 8, "sealed segment count that triggers compaction")
	tree := fs.String("tree", "install", "install tree directory")
	workers := fs.Int("workers", 2, "concurrent benchmark executions")
	queueDepth := fs.Int("queue", 64, "maximum pending runs")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	drain := fs.Duration("drain", 2*time.Minute, "shutdown grace period for queued runs")
	traceBuf := fs.Int("trace-buffer", 256, "finished run traces kept for /v1/traces")
	enablePprof := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := fs.Bool("log-json", false, "emit logs as JSON instead of text")
	verbose := fs.Bool("v", false, "debug-level logging")
	stageTimeout := fs.Duration("stage-timeout", 0, "per-stage pipeline budget for executed runs (0 = no limit)")
	tick := fs.Duration("tick", time.Second, "recurring-schedule tick interval")
	eventBuffer := fs.Int("event-buffer", 256, "per-/v1/watch-subscriber event ring size")
	replayBuffer := fs.Int("replay-buffer", 1024, "Last-Event-ID replay ring size")
	heartbeat := fs.Duration("heartbeat", 15*time.Second, "/v1/watch keepalive interval")
	regressTol := fs.Float64("regress-tolerance", 0.10, "fractional drop flagged after scheduled runs")
	regressWindow := fs.Int("regress-window", 5, "sliding baseline window for post-run regression detection (<0 disables)")
	rsdGate := fs.Float64("rsd-gate", 0, "relative-stddev above which a repetition set is 'unstable' and excluded from baselines (0 = default 0.10, <0 disables)")
	sampleInterval := fs.Duration("sample-interval", 10*time.Second, "self-observability metric sampling interval")
	historyCap := fs.Int("history-capacity", 512, "retained points per metric series per resolution tier")
	profileLimit := fs.Int("profile-limit", 16, "retained alert-triggered pprof artifacts")
	profileCooldown := fs.Duration("profile-cooldown", time.Minute, "minimum gap between alert-triggered profile captures")
	commitInterval := fs.Duration("commit-interval", 0, "perflog group-commit accumulation window (0 = commit when idle)")
	commitBytes := fs.Int("commit-bytes", 0, "flush a perflog commit batch early at this many buffered bytes (0 = 1 MiB)")
	retries := fs.Int("retries", 0, "max attempts per pipeline stage on transient failures (0 = default policy)")
	faults := fs.String("faults", "", "fault-injection schedule, e.g. 'scheduler.submit:error:rate=0.1' (testing)")
	faultSeed := fs.Int64("fault-seed", 1, "PRNG seed for --faults decisions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fault injection arms from the environment first (BENCH_FAULTS /
	// BENCH_FAULT_SEED), then --faults overrides.
	if err := faultinject.LoadEnv(os.LookupEnv); err != nil {
		return err
	}
	if *faults != "" {
		rules, err := faultinject.ParseSchedule(*faults)
		if err != nil {
			return err
		}
		if err := faultinject.Load(*faultSeed, rules); err != nil {
			return err
		}
	}
	var policy *retry.Policy
	if *retries > 0 {
		p := retry.Default()
		p.MaxAttempts = *retries
		policy = &p
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)
	slog.SetDefault(logger)
	if faultinject.Armed() {
		logger.Warn("fault injection armed", "points", faultinject.Default.Points(), "seed", *faultSeed)
	}

	srv, err := service.New(service.Config{
		PerflogRoot:     *perflogRoot,
		DataDir:         *dataDir,
		SealThreshold:   *sealThreshold,
		CompactSegments: *compactSegments,
		InstallTree:     *tree,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *timeout,
		TraceBuffer:     *traceBuf,
		EnablePprof:     *enablePprof,
		Logger:          logger,
		Retry:           policy,
		StageTimeout:    *stageTimeout,
		CommitInterval:  *commitInterval,
		CommitBytes:     *commitBytes,

		TickInterval:        *tick,
		EventBuffer:         *eventBuffer,
		ReplayBuffer:        *replayBuffer,
		HeartbeatInterval:   *heartbeat,
		RegressionTolerance: *regressTol,
		RegressionWindow:    *regressWindow,
		RSDGate:             *rsdGate,

		SampleInterval:  *sampleInterval,
		HistoryCapacity: *historyCap,
		ProfileLimit:    *profileLimit,
		ProfileCooldown: *profileCooldown,
	})
	if err != nil {
		return err
	}
	stats := srv.Store().Stats()
	logger.Info("perflog tree ingested",
		"entries", stats.Entries, "systems", stats.Systems,
		"bytes", stats.BytesParsed, "root", *perflogRoot)
	if *dataDir != "" {
		logger.Info("segment store opened",
			"data_dir", *dataDir, "sealed_segments", stats.SealedSegments,
			"sealed_entries", stats.SealedEntries, "head_entries", stats.HeadEntries,
			"manifest_generation", stats.ManifestGeneration, "degraded", srv.Degraded())
	}
	logger.Info("listening",
		"addr", *addr, "workers", *workers, "queue", *queueDepth, "pprof", *enablePprof)

	errc := make(chan error, 1)
	go func() { errc <- srv.Start(*addr) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	logger.Info("shutting down, draining queued runs", "grace", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bye")
	return nil
}
