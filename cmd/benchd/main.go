// Command benchd is the continuous-benchmarking daemon: a perflog
// store behind an HTTP API. Runs submitted over HTTP execute through
// the same reproducible pipeline benchctl drives (concretize → build →
// schedule → run → extract), and every perflog entry — whether produced
// by a daemon run or appended to the tree by out-of-band benchctl
// invocations — is served from one incremental, queryable store.
//
//	benchd --addr :8080 --perflog perflogs --tree install --workers 4
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/runs \
//	    -d '{"benchmark":"babelstream-omp","system":"archer2"}'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -s 'localhost:8080/v1/query?benchmark=babelstream-omp&fom=triad_mbps&agg=mean&group_by=system'
//	curl -s 'localhost:8080/v1/regressions?fom=triad_mbps&tolerance=0.1&window=5'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	perflogRoot := fs.String("perflog", "perflogs", "perflog root directory")
	tree := fs.String("tree", "install", "install tree directory")
	workers := fs.Int("workers", 2, "concurrent benchmark executions")
	queueDepth := fs.Int("queue", 64, "maximum pending runs")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	drain := fs.Duration("drain", 2*time.Minute, "shutdown grace period for queued runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := service.New(service.Config{
		PerflogRoot:    *perflogRoot,
		InstallTree:    *tree,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	stats := srv.Store().Stats()
	log.Printf("benchd: ingested %d entries (%d systems, %d bytes) from %s",
		stats.Entries, stats.Systems, stats.BytesParsed, *perflogRoot)
	log.Printf("benchd: listening on %s (%d workers, queue %d)", *addr, *workers, *queueDepth)

	errc := make(chan error, 1)
	go func() { errc <- srv.Start(*addr) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	log.Printf("benchd: shutting down, draining queued runs (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("benchd: bye")
	return nil
}
