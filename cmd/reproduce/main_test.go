package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildReport(t *testing.T) {
	report, err := build()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Reproduction report",
		"## Figure 2",
		"## Table 1",
		"## Table 2",
		"## Table 4",
		"93.4%",               // CUDA on Volta
		"| original | 24.0 |", // Table 2 CL value
		"N/A",                 // intel-avx2 on Rome
		"E_I = 1.626",
		"126.10 /", // csd3 l0 paper value
		"\\*",      // unsupported cells
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"reproduce", "--out", path}
	main()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Reproduction report") {
		t.Error("report file malformed")
	}
}
