// Command benchjson converts `go test -bench` output into a JSON
// benchmark-trajectory record. CI runs it on every push and uploads the
// result as BENCH_<sha>.json, so the repository accumulates one
// machine-readable performance point per commit — the same perflog
// discipline the paper prescribes for benchmarks, applied to the
// harness itself.
//
//	go test -bench . -benchmem ./... | benchjson -sha "$GITHUB_SHA" -out BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is the trajectory file: one invocation's benchmarks, keyed to
// the commit they measured.
type Record struct {
	SHA        string      `json:"sha,omitempty"`
	Go         string      `json:"go,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line. Metrics holds every "value unit" pair
// the line reported — ns/op always, B/op and allocs/op under -benchmem,
// plus any custom b.ReportMetric units.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	sha := fs.String("sha", "", "commit SHA to stamp into the record")
	outPath := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rec, err := parse(in)
	if err != nil {
		return err
	}
	rec.SHA = *sha
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	text, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	text = append(text, '\n')
	if *outPath == "" {
		_, err = stdout.Write(text)
		return err
	}
	return os.WriteFile(*outPath, text, 0o644)
}

// parse reads `go test -bench` output. Header lines (pkg:, goos:, cpu:)
// interleave with result lines when several packages run in one
// invocation; the most recent pkg: line owns the results that follow.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "goarch: "), strings.HasPrefix(line, "goos: "):
			// environment noise; goarch is implied by cpu
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue // e.g. a "BenchmarkFoo" progress line without results
			}
			b.Pkg = pkg
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if v := os.Getenv("GOVERSION"); v != "" {
		rec.Go = v
	}
	return rec, nil
}

// parseResult decodes one result line:
//
//	BenchmarkStoreSelect/indexed-8   100   429001 ns/op   105448 B/op   35 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS the run used; metrics
// are "value unit" pairs.
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
