package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/perfstore
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStoreSelect/indexed-8         	     100	    429001 ns/op	  105448 B/op	      35 allocs/op
BenchmarkStoreSelect/scan-8            	     100	   3045791 ns/op	  176528 B/op	      23 allocs/op
BenchmarkStoreAppend-8                 	  750000	      1611 ns/op	     308 B/op	       8 allocs/op
PASS
ok  	repro/internal/perfstore	7.076s
pkg: repro
BenchmarkHostBabelStreamTriad-8        	       3	 401202984 ns/op	        95.20 triad_GBps
PASS
ok  	repro	2.100s
`

func TestParseMultiPackage(t *testing.T) {
	rec, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rec.Benchmarks))
	}
	if rec.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", rec.CPU)
	}
	b := rec.Benchmarks[0]
	if b.Pkg != "repro/internal/perfstore" || b.Name != "BenchmarkStoreSelect/indexed" || b.Procs != 8 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Iterations != 100 || b.Metrics["ns/op"] != 429001 || b.Metrics["allocs/op"] != 35 {
		t.Errorf("metrics = %+v", b)
	}
	// The pkg: header between blocks must re-home later results.
	host := rec.Benchmarks[3]
	if host.Pkg != "repro" || host.Name != "BenchmarkHostBabelStreamTriad" {
		t.Errorf("host benchmark = %+v", host)
	}
	// Custom b.ReportMetric units ride along with the built-ins.
	if host.Metrics["triad_GBps"] != 95.20 {
		t.Errorf("custom metric = %+v", host.Metrics)
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := `pkg: repro
Benchmarking something that is not a result line
BenchmarkBroken-8 notanumber 12 ns/op
BenchmarkOK-4 10 5.0 ns/op
`
	rec, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("benchmarks = %+v", rec.Benchmarks)
	}
}

func TestRunWritesStampedFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_abc123.json")
	var stdout bytes.Buffer
	err := run([]string{"-sha", "abc123", "-out", out}, strings.NewReader(sampleOutput), &stdout)
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(text, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.SHA != "abc123" || len(rec.Benchmarks) != 4 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\nok repro 1.0s\n"), &stdout); err == nil {
		t.Fatal("expected an error for input without benchmarks")
	}
}
