package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestSpecCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"spec", "babelstream@4.0%gcc@9.2.0 model=omp"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "babelstream@4.0%gcc@9.2.0 model=omp") {
		t.Errorf("output = %q", out)
	}
	if _, err := capture(t, func() error { return run([]string{"spec", "@bad"}) }); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"spec"}) }); err == nil {
		t.Error("missing argument accepted")
	}
}

func TestConcretizeCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"concretize", "--system", "archer2", "--trace", "hpgmg%gcc"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hpgmg@0.4%gcc@11.2.0", "cray-mpich@8.1.23", "hash:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestInstallCommand(t *testing.T) {
	tree := filepath.Join(t.TempDir(), "tree")
	out, err := capture(t, func() error {
		return run([]string{"install", "--system", "csd3", "--tree", tree, "stream"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "built") {
		t.Errorf("output = %q", out)
	}
	entries, err := os.ReadDir(tree)
	if err != nil || len(entries) == 0 {
		t.Errorf("install tree empty: %v, %v", entries, err)
	}
}

// TestInstallEndToEnd walks the full spec → concretize → install →
// cached-reinstall path in a temp tree, as a user would drive it.
func TestInstallEndToEnd(t *testing.T) {
	tree := filepath.Join(t.TempDir(), "tree")
	args := []string{"install", "--system", "archer2", "--tree", tree, "babelstream model=omp"}

	// Cold tree: everything builds, nothing is cached.
	out, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"babelstream@4.0", "hash:", "built", "simulated build time"} {
		if !strings.Contains(out, want) {
			t.Errorf("cold install missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cached") && !strings.Contains(out, "0 cached") {
		t.Errorf("cold install reported cached entries:\n%s", out)
	}

	// Each installed prefix carries its build manifest (Principle 4).
	entries, err := os.ReadDir(tree)
	if err != nil {
		t.Fatal(err)
	}
	manifests := 0
	for _, e := range entries {
		if _, err := os.Stat(filepath.Join(tree, e.Name(), "manifest.json")); err == nil {
			manifests++
		}
	}
	if manifests == 0 {
		t.Errorf("no build manifests under %s (entries %v)", tree, entries)
	}

	// Warm tree: the same install is answered from the cache.
	out, err = capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cached") || !strings.Contains(out, "0 built") {
		t.Errorf("reinstall not served from cache:\n%s", out)
	}
	if !strings.Contains(out, "simulated build time 0.0s") {
		t.Errorf("cached reinstall charges build time:\n%s", out)
	}

	// A different spec misses the cache and builds its own root prefix.
	out, err = capture(t, func() error {
		return run([]string{"install", "--system", "archer2", "--tree", tree, "babelstream model=kokkos"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "built") || strings.Contains(out, "0 built") {
		t.Errorf("changed spec should rebuild:\n%s", out)
	}
}

func TestListAndProviders(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"babelstream", "hpcg", "hpgmg", "openmpi"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
	out, err = capture(t, func() error { return run([]string{"providers", "mpi"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cray-mpich") || !strings.Contains(out, "openmpi") {
		t.Errorf("providers = %q", out)
	}
	if _, err := capture(t, func() error { return run([]string{"providers", "nothing"}) }); err == nil {
		t.Error("unknown virtual accepted")
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help should succeed: %v", err)
	}
}

func TestEnvCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"env", "archer2"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"system: archer2", "gcc@11.2.0", "cray-mpich@8.1.23", "account: z19"} {
		if !strings.Contains(out, want) {
			t.Errorf("env output missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, func() error { return run([]string{"env", "unknown-box"}) }); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"env"}) }); err == nil {
		t.Error("missing argument accepted")
	}
}
