// Command gpack is the framework's package-manager front end (the Spack
// role in the paper): it parses specs, concretizes them against a
// system's environment, and installs them into the build tree.
//
//	gpack spec "babelstream%gcc@9.2.0 model=omp"
//	gpack concretize --system archer2 "hpgmg%gcc"
//	gpack install --system csd3 "hpcg variant=matrix-free"
//	gpack list
//	gpack providers mpi
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildsys"
	"repro/internal/concretize"
	"repro/internal/env"
	"repro/internal/repo"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gpack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no command")
	}
	switch args[0] {
	case "spec":
		return cmdSpec(args[1:])
	case "concretize":
		return cmdConcretize(args[1:], false)
	case "install":
		return cmdConcretize(args[1:], true)
	case "list":
		return cmdList()
	case "providers":
		return cmdProviders(args[1:])
	case "env":
		return cmdEnv(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  gpack spec <spec>                      parse and print a spec
  gpack concretize [flags] <spec>        resolve a spec against a system
  gpack install [flags] <spec>           concretize and install
  gpack list                             list known recipes
  gpack providers <virtual>              list providers of a virtual package
  gpack env <system>                     export a system's config as YAML

flags for concretize/install:
  --system NAME   system whose environment to use (default local)
  --arch ARCH     target architecture (x86_64, aarch64)
  --tree DIR      install tree (default ./install)
  --trace         print the decision trace
`)
}

func cmdSpec(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("spec takes exactly one argument")
	}
	s, err := spec.Parse(args[0])
	if err != nil {
		return err
	}
	fmt.Println(s)
	return nil
}

func cmdConcretize(args []string, install bool) error {
	fs := flag.NewFlagSet("concretize", flag.ContinueOnError)
	system := fs.String("system", "local", "system environment")
	arch := fs.String("arch", "x86_64", "target architecture")
	tree := fs.String("tree", "install", "install tree")
	trace := fs.Bool("trace", false, "print the decision trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one spec argument")
	}
	abstract, err := spec.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	builtin := repo.Builtin()
	cfg := env.UKRegistry().ForSystem(*system)
	res, err := concretize.Concretize(abstract, cfg.ConcretizeOptions(builtin, *arch))
	if err != nil {
		return err
	}
	if *trace {
		for _, s := range res.Steps {
			fmt.Println("  " + s)
		}
	}
	fmt.Println(res.Spec)
	fmt.Println("hash:", res.Spec.DAGHash())
	if !install {
		return nil
	}
	builder := buildsys.NewBuilder(*tree, builtin)
	records, err := builder.Install(res.Spec)
	if err != nil {
		return err
	}
	for _, r := range records {
		elapsed := ""
		if !r.Cached && !r.External {
			elapsed = fmt.Sprintf("  (%.1fs)", r.Elapsed.Seconds())
		}
		fmt.Printf("  %-9s %-40s %s%s\n", r.State(), r.SpecText, r.Prefix, elapsed)
	}
	fmt.Printf("%s; simulated build time %.1fs\n",
		buildsys.Summary(records), buildsys.TotalBuildTime(records).Seconds())
	return nil
}

func cmdList() error {
	r := repo.Builtin()
	for _, name := range r.Names() {
		p, err := r.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %s\n", name, p.Description)
	}
	return nil
}

// cmdEnv exports a builtin system configuration in the YAML format
// env.LoadFile reads back — for sharing and adapting to new systems.
func cmdEnv(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("env takes exactly one system name")
	}
	reg := env.UKRegistry()
	if !reg.Known(args[0]) {
		return fmt.Errorf("no configuration for system %q (known: %v)", args[0], reg.Names())
	}
	fmt.Print(reg.ForSystem(args[0]).YAML())
	return nil
}

func cmdProviders(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("providers takes exactly one virtual package name")
	}
	r := repo.Builtin()
	providers := r.Providers(args[0])
	if len(providers) == 0 {
		return fmt.Errorf("no providers for %q", args[0])
	}
	for _, p := range providers {
		fmt.Println(p)
	}
	return nil
}
