// Command perfplot assimilates perflogs and produces analysis artifacts
// (Principle 6): tables, text/SVG bar charts, CSV exports, and
// performance-regression reports.
//
//	perfplot table   --perflog perflogs
//	perfplot bar     --perflog perflogs --config plot.yaml [--svg out.svg]
//	perfplot csv     --perflog perflogs --out results.csv
//	perfplot regress --perflog perflogs --fom l0 --group system,benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/perfstore"
	"repro/internal/postprocess"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfplot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no command")
	}
	switch args[0] {
	case "table":
		return cmdTable(args[1:])
	case "bar":
		return cmdBar(args[1:])
	case "csv":
		return cmdCSV(args[1:])
	case "regress":
		return cmdRegress(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  perfplot table   --perflog DIR                     print the assimilated frame
                   [--columns benchmark,stage_*]     project columns (trailing * = prefix)
                   [--system S] [--benchmark B]      filter through the indexed query path
                   [--since RFC3339] [--limit N]     time window / most recent N entries
                   [--data-dir DIR]                  read benchd's sealed segment store
  perfplot bar     --perflog DIR --config FILE       render a configured bar chart
                   [--svg FILE]                      also write an SVG version
  perfplot csv     --perflog DIR --out FILE          export the frame as CSV
  perfplot regress --perflog DIR --fom COL           flag performance regressions
                   [--group cols] [--tolerance 0.1] [--window N]
                   [--rsd-gate R]                    repetition sets with RSD > R print
                                                     as UNSTABLE and are excluded from
                                                     baselines (0 = default 0.10)
`)
}

// loadStore ingests the perflog tree through perfstore — the same
// storage and query path the benchd daemon serves, so CLI and service
// read identical data. With a non-empty dataDir it opens the same
// tiered segment store benchd maintains, recovering sealed entries
// from segment headers and parsing only the perflog tail.
func loadStore(root, dataDir string) (*perfstore.Store, error) {
	var store *perfstore.Store
	if dataDir != "" {
		var err error
		if store, err = perfstore.OpenTiered(root, dataDir); err != nil {
			return nil, err
		}
	} else {
		store = perfstore.Open(root)
	}
	if err := store.Sync(); err != nil {
		return nil, err
	}
	if store.Len() == 0 {
		return nil, fmt.Errorf("no perflog entries under %s", root)
	}
	return store, nil
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ContinueOnError)
	root := fs.String("perflog", "perflogs", "perflog root")
	dataDir := fs.String("data-dir", "", "benchd segment store directory (reads sealed segments instead of re-parsing)")
	columns := fs.String("columns", "", "comma-separated columns to show; a trailing * matches a prefix")
	system := fs.String("system", "", "only entries from this system")
	benchmark := fs.String("benchmark", "", "only entries for this benchmark")
	since := fs.String("since", "", "only entries at or after this RFC3339 timestamp")
	limit := fs.Int("limit", 0, "only the most recent N matching entries (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *limit < 0 {
		return fmt.Errorf("--limit must be non-negative")
	}
	q := perfstore.Query{System: *system, Benchmark: *benchmark, Limit: *limit}
	if *since != "" {
		t, err := time.Parse(time.RFC3339, *since)
		if err != nil {
			return fmt.Errorf("bad --since timestamp %q (want RFC3339)", *since)
		}
		q.Since = t
	}
	store, err := loadStore(*root, *dataDir)
	if err != nil {
		return err
	}
	entries := store.Select(q)
	if len(entries) == 0 {
		return fmt.Errorf("no perflog entries match the filters")
	}
	f, err := postprocess.ToFrame(entries)
	if err != nil {
		return err
	}
	if *columns != "" {
		// e.g. --columns benchmark,system,job,stage_* shows where each
		// run's time went, from the stage extras the runner records.
		var names []string
		for _, c := range strings.Split(*columns, ",") {
			names = append(names, strings.TrimSpace(c))
		}
		if f, err = f.SelectColumns(names...); err != nil {
			return err
		}
	}
	fmt.Print(f.String())
	return nil
}

func cmdBar(args []string) error {
	fs := flag.NewFlagSet("bar", flag.ContinueOnError)
	root := fs.String("perflog", "perflogs", "perflog root")
	configPath := fs.String("config", "", "plot configuration file")
	svgPath := fs.String("svg", "", "write an SVG chart to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("--config is required")
	}
	text, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	cfg, err := postprocess.ParsePlotConfig(string(text))
	if err != nil {
		return err
	}
	f, err := postprocess.LoadFrame(*root)
	if err != nil {
		return err
	}
	chart, err := postprocess.BarChart(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(chart)
	if *svgPath != "" {
		svg, err := postprocess.BarChartSVG(f, cfg)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	return nil
}

func cmdCSV(args []string) error {
	fs := flag.NewFlagSet("csv", flag.ContinueOnError)
	root := fs.String("perflog", "perflogs", "perflog root")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := postprocess.LoadFrame(*root)
	if err != nil {
		return err
	}
	if *out == "" {
		return f.WriteCSV(os.Stdout)
	}
	if err := f.SaveCSV(*out); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	root := fs.String("perflog", "perflogs", "perflog root")
	dataDir := fs.String("data-dir", "", "benchd segment store directory (reads sealed segments instead of re-parsing)")
	fomCol := fs.String("fom", "", "FOM column to check")
	group := fs.String("group", "system,benchmark", "comma-separated grouping columns")
	tolerance := fs.Float64("tolerance", 0.10, "fractional drop that counts as a regression")
	window := fs.Int("window", 0, "sliding baseline size in runs (0 = all earlier runs)")
	rsdGate := fs.Float64("rsd-gate", 0, "RSD above which a repetition set is 'unstable' (0 = default 0.10, <0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fomCol == "" {
		return fmt.Errorf("--fom is required")
	}
	store, err := loadStore(*root, *dataDir)
	if err != nil {
		return err
	}
	store.RSDGate = *rsdGate
	reports, err := store.Regressions(perfstore.Query{
		FOM:     *fomCol,
		GroupBy: strings.Split(*group, ","),
	}, *tolerance, *window)
	if err != nil {
		return err
	}
	anyFlagged := false
	for _, r := range reports {
		marker := "ok      "
		if r.Flagged {
			marker = "REGRESSED"
			anyFlagged = true
		}
		switch r.Method {
		case perfstore.MethodVariance:
			// Variance-gated: the latest repetition set is too noisy to
			// judge — surfaced, never flagged, never an error exit (noise
			// is an instrumentation problem, not a regression).
			fmt.Printf("%-9s %-40s latest %.3f rsd %.1f%% (n=%d) too noisy to judge\n",
				"UNSTABLE", r.Group, r.Latest, r.LatestRSD*100, r.LatestN)
		case perfstore.MethodCI:
			fmt.Printf("%-9s %-40s baseline %.3f [%.3f, %.3f] -> latest %.3f [%.3f, %.3f] n=%d (%+.1f%%)\n",
				marker, r.Group, r.Baseline, r.BaselineLo, r.BaselineHi,
				r.Latest, r.LatestLo, r.LatestHi, r.LatestN, r.Change*100)
		default:
			// Tolerance fallback: byte-for-byte the pre-repetition row, so
			// existing pipelines scraping this output see no change.
			fmt.Printf("%-9s %-40s baseline %.3f -> latest %.3f (%+.1f%%)\n",
				marker, r.Group, r.Baseline, r.Latest, r.Change*100)
		}
	}
	if anyFlagged {
		return fmt.Errorf("performance regressions detected")
	}
	return nil
}
