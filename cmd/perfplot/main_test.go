package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fom"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/stats"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

// seedPerflogs writes a small multi-system perflog tree.
func seedPerflogs(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	t0 := time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)
	data := map[string][]float64{
		"archer2": {95.36, 94.8, 60.0}, // regresses on the last run
		"csd3":    {126.10, 125.8, 126.4},
	}
	for sys, vals := range data {
		for i, v := range vals {
			e := &perflog.Entry{
				Time:      t0.Add(time.Duration(i) * time.Hour),
				Benchmark: "hpgmg-fv",
				System:    sys,
				Partition: "compute",
				Environ:   "gcc",
				Spec:      "hpgmg%gcc",
				JobID:     i + 1,
				Result:    "pass",
				FOMs:      map[string]fom.Value{"l0": {Name: "l0", Value: v, Unit: "MDOF/s"}},
				Extra:     map[string]string{"num_tasks": "8"},
			}
			if err := perflog.Append(root, sys, "hpgmg-fv", e); err != nil {
				t.Fatal(err)
			}
		}
	}
	return root
}

func TestTableCommand(t *testing.T) {
	root := seedPerflogs(t)
	out, err := capture(t, func() error { return run([]string{"table", "--perflog", root}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"system", "archer2", "csd3", "l0", "126.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableFilters(t *testing.T) {
	root := seedPerflogs(t)
	// --system narrows the frame to one system's entries.
	out, err := capture(t, func() error {
		return run([]string{"table", "--perflog", root, "--system", "csd3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "csd3") || strings.Contains(out, "archer2") {
		t.Errorf("--system csd3 output wrong:\n%s", out)
	}
	// --since drops the earlier runs, --limit keeps the most recent.
	out, err = capture(t, func() error {
		return run([]string{"table", "--perflog", root,
			"--system", "archer2", "--since", "2023-07-07T12:00:00Z", "--limit", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "60") || strings.Contains(out, "95.36") {
		t.Errorf("--since/--limit output wrong:\n%s", out)
	}
	// Unmatched filters and bad flag values are errors, not empty tables.
	if _, err := capture(t, func() error {
		return run([]string{"table", "--perflog", root, "--system", "nonesuch"})
	}); err == nil {
		t.Error("unmatched --system did not error")
	}
	if _, err := capture(t, func() error {
		return run([]string{"table", "--perflog", root, "--since", "yesterday"})
	}); err == nil {
		t.Error("bad --since did not error")
	}
	if _, err := capture(t, func() error {
		return run([]string{"table", "--perflog", root, "--limit", "-1"})
	}); err == nil {
		t.Error("negative --limit did not error")
	}
}

func TestBarCommandWithConfigAndSVG(t *testing.T) {
	root := seedPerflogs(t)
	cfgPath := filepath.Join(t.TempDir(), "plot.yaml")
	cfg := `
title: HPGMG l0
x: system
y: l0
sort: ascending
filters:
  - column: result
    op: ==
    value: pass
`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	svgPath := filepath.Join(t.TempDir(), "out.svg")
	out, err := capture(t, func() error {
		return run([]string{"bar", "--perflog", root, "--config", cfgPath, "--svg", svgPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "HPGMG l0") || !strings.Contains(out, "█") {
		t.Errorf("chart:\n%s", out)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("svg file malformed")
	}
	if err := run([]string{"bar", "--perflog", root}); err == nil {
		t.Error("missing --config accepted")
	}
}

func TestCSVCommand(t *testing.T) {
	root := seedPerflogs(t)
	outPath := filepath.Join(t.TempDir(), "results.csv")
	if _, err := capture(t, func() error {
		return run([]string{"csv", "--perflog", root, "--out", outPath})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "system") || !strings.Contains(string(data), "archer2") {
		t.Errorf("csv:\n%s", data)
	}
}

func TestRegressCommandFlagsDrop(t *testing.T) {
	root := seedPerflogs(t)
	out, err := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system"})
	})
	// archer2's drop to 60 must be flagged, making the command fail
	// (nonzero exit in CI — the paper's regression-pipeline vision).
	if err == nil {
		t.Error("regression should cause an error exit")
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "archer2") {
		t.Errorf("regress output:\n%s", out)
	}
	if !strings.Contains(out, "ok") || !strings.Contains(out, "csd3") {
		t.Errorf("stable system missing:\n%s", out)
	}
	if err := run([]string{"regress", "--perflog", root}); err == nil {
		t.Error("missing --fom accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"table", "--perflog", t.TempDir()})
	}); err == nil {
		t.Error("empty perflog tree accepted")
	}
}

func TestRegressWindowFlagBoundsBaseline(t *testing.T) {
	// A series that degraded long ago but is stable now: the full
	// history flags it, a recent sliding window does not.
	root := t.TempDir()
	t0 := time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)
	for i, v := range []float64{200, 200, 200, 100, 100, 100, 100} {
		e := &perflog.Entry{
			Time:      t0.Add(time.Duration(i) * time.Hour),
			Benchmark: "hpgmg-fv",
			System:    "archer2",
			Partition: "compute",
			Environ:   "gcc",
			Spec:      "hpgmg%gcc",
			JobID:     i + 1,
			Result:    "pass",
			FOMs:      map[string]fom.Value{"l0": {Name: "l0", Value: v, Unit: "MDOF/s"}},
			Extra:     map[string]string{},
		}
		if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0"})
	}); err == nil {
		t.Error("full-history baseline should flag the old decay")
	}
	out, err := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--window", "3"})
	})
	if err != nil {
		t.Errorf("window-3 baseline should be stable: %v\n%s", err, out)
	}
}

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares output against a committed golden file; -update
// regenerates them.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run Golden -update ./cmd/perfplot): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden:\n--- want ---\n%s--- got ---\n%s", name, want, got)
	}
}

func TestTableGolden(t *testing.T) {
	// The seeded tree is fully deterministic (fixed timestamps, lexical
	// walk order), so the rendered table is byte-stable.
	root := seedPerflogs(t)
	out, err := capture(t, func() error { return run([]string{"table", "--perflog", root}) })
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.golden", out)
}

func TestRegressGolden(t *testing.T) {
	root := seedPerflogs(t)
	out, err := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system"})
	})
	if err == nil {
		t.Error("seeded regression not flagged")
	}
	checkGolden(t, "regress.golden", out)
}

// seedRepPerflogs writes a tree whose entries carry repetition stats:
// archer2 regresses (CI-overlap verdict), csd3 is stable, cosma8's
// latest repetition set is too noisy to judge (variance gate).
func seedRepPerflogs(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	t0 := time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)
	data := map[string][][]float64{
		"archer2": {{95.2, 95.4, 95.6}, {95.1, 95.3, 95.5}, {60.0, 60.2, 60.4}},
		"csd3":    {{126.0, 126.2, 126.4}, {125.7, 125.9, 126.1}, {126.3, 126.5, 126.7}},
		"cosma8":  {{88.0, 88.2, 88.4}, {88.1, 88.3, 88.5}, {40.0, 90.0, 140.0}},
	}
	for sys, runs := range data {
		for i, reps := range runs {
			s := stats.Summarize(reps, 0, 0, uint64(i+1))
			e := &perflog.Entry{
				Time:      t0.Add(time.Duration(i) * time.Hour),
				Benchmark: "hpgmg-fv",
				System:    sys,
				Partition: "compute",
				Environ:   "gcc",
				Spec:      "hpgmg%gcc",
				JobID:     i + 1,
				Result:    "pass",
				FOMs:      map[string]fom.Value{"l0": {Name: "l0", Value: s.Mean, Unit: "MDOF/s"}},
				Extra:     map[string]string{"repetitions": "3"},
			}
			e.SetRepStats("l0", perflog.RepStats{
				N: s.N, Mean: s.Mean, Stddev: s.Stddev, RSD: s.RSD, CILo: s.CILo, CIHi: s.CIHi,
			})
			if err := perflog.Append(root, sys, "hpgmg-fv", e); err != nil {
				t.Fatal(err)
			}
		}
	}
	return root
}

// TestRegressCIGolden pins the extended regress output: CI-interval
// columns on stat-carrying rows, an UNSTABLE row for the variance-gated
// group, and a nonzero exit driven only by the REGRESSED row.
func TestRegressCIGolden(t *testing.T) {
	root := seedRepPerflogs(t)
	out, err := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system"})
	})
	if err == nil {
		t.Error("CI-overlap regression not flagged")
	}
	checkGolden(t, "regress_ci.golden", out)
}

// TestRegressUnstableAloneExitsZero: an unstable row without any
// regressed row must not fail the command — noise is surfaced, not
// treated as a regression.
func TestRegressUnstableAloneExitsZero(t *testing.T) {
	root := seedRepPerflogs(t)
	out, err := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system",
			"--window", "2", "--tolerance", "0.5"})
	})
	if !strings.Contains(out, "UNSTABLE") {
		t.Fatalf("no UNSTABLE row:\n%s", out)
	}
	// archer2 still regresses by CI overlap even at tolerance 0.5; gate
	// it out of the check by asserting the error mentions regressions
	// only when a REGRESSED row printed.
	if strings.Contains(out, "REGRESSED") != (err != nil) {
		t.Errorf("exit status disagrees with REGRESSED rows: err=%v\n%s", err, out)
	}
	// With the gate disabled the noisy group is judged like any other.
	out, err = capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system",
			"--rsd-gate", "-1"})
	})
	if err == nil {
		t.Error("regression should still flag with the gate off")
	}
	if strings.Contains(out, "UNSTABLE") {
		t.Errorf("--rsd-gate -1 still printed UNSTABLE:\n%s", out)
	}
}

// TestTableUnchangedAgainstSegmentStore: the table rendered from
// benchd's sealed segment store must be byte-identical to the one
// rendered by a full text-tree parse — tiering is invisible to the
// analysis layer. The golden check pins it to the same bytes as the
// untiered path.
func TestTableUnchangedAgainstSegmentStore(t *testing.T) {
	root := seedPerflogs(t)
	plain, err := capture(t, func() error { return run([]string{"table", "--perflog", root}) })
	if err != nil {
		t.Fatal(err)
	}
	// Build and seal the segment store the way benchd would.
	dataDir := t.TempDir()
	s, err := perfstore.OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	tiered, err := capture(t, func() error {
		return run([]string{"table", "--perflog", root, "--data-dir", dataDir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != tiered {
		t.Errorf("table drifted under the segment store:\n--- plain ---\n%s--- tiered ---\n%s", plain, tiered)
	}
	checkGolden(t, "table.golden", tiered)

	// regress reads through the same loader; check it too.
	plainR, _ := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system"})
	})
	tieredR, _ := capture(t, func() error {
		return run([]string{"regress", "--perflog", root, "--fom", "l0", "--group", "system", "--data-dir", dataDir})
	})
	if plainR != tieredR {
		t.Errorf("regress drifted under the segment store:\n--- plain ---\n%s--- tiered ---\n%s", plainR, tieredR)
	}
}
