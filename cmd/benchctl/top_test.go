package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

var topT0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func gaugePts(vals ...float64) []obs.Point {
	pts := make([]obs.Point, len(vals))
	for i, v := range vals {
		pts[i] = obs.Point{Time: topT0.Add(time.Duration(i) * time.Second), Min: v, Max: v, Mean: v, Last: v, Count: 1}
	}
	return pts
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != strings.Repeat(" ", 10) {
		t.Fatalf("empty sparkline = %q, want blanks", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 5); got != "  ▁▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
	// A ramp maps its min to the lowest bar and max to the highest.
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	// Wider than the window: only the newest values are kept.
	if got := sparkline([]float64{100, 0, 7}, 2); got != "▁█" {
		t.Fatalf("truncated sparkline = %q (oldest value must be dropped)", got)
	}
	if got := sparkline([]float64{1, 2}, 0); got != "" {
		t.Fatalf("zero-width sparkline = %q", got)
	}
}

func TestRateSeries(t *testing.T) {
	if got := rateSeries(gaugePts(5)); got != nil {
		t.Fatalf("single point rate = %v, want nil", got)
	}
	// Counter climbing 3/s, with a reset (restart) in the middle.
	rates := rateSeries(gaugePts(0, 3, 6, 2, 5))
	want := []float64{3, 3, 0, 3} // the reset clamps to zero, never negative
	if len(rates) != len(want) {
		t.Fatalf("rates = %v, want %v", rates, want)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates[%d] = %g, want %g (%v)", i, rates[i], want[i], rates)
		}
	}
}

func TestCacheHitRatio(t *testing.T) {
	if got := cacheHitRatio(map[string][]obs.Point{}); got != nil {
		t.Fatalf("no cache series -> %v, want nil", got)
	}
	// Aggregate hits climb 0,8,9; regressions misses climb 0,2,1(short,
	// aligned to the newest edge). Ratio = hits/(hits+misses) per tick.
	series := map[string][]obs.Point{
		cacheSeries[0]: gaugePts(0, 8, 9), // hits{aggregate}
		cacheSeries[3]: gaugePts(2, 1),    // misses{regressions}, started later
	}
	got := cacheHitRatio(series)
	if len(got) != 3 {
		t.Fatalf("ratio series = %v, want 3 points", got)
	}
	// Tick 0: hits 0, misses 0 (short series not yet aligned) -> no
	// traffic -> backfilled with the first real ratio.
	if want := 8.0 / 10.0; got[1] != want || got[0] != want {
		t.Fatalf("ratio = %v, want [%g %g ...]", got, want, want)
	}
	if want := 9.0 / 10.0; got[2] != want {
		t.Fatalf("ratio[2] = %g, want %g", got[2], want)
	}
	for _, v := range got {
		if math.IsNaN(v) {
			t.Fatalf("ratio series leaks NaN: %v", got)
		}
	}
}

func TestFormatQty(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{12, "", "12"},
		{3.5, "", "3.5"},
		{34000, "", "34.0k"},
		{1200000, "/s", "1.2M/s"},
		{2.5e9, "B", "2.5GB"},
	}
	for _, c := range cases {
		if got := formatQty(c.v, c.unit); got != c.want {
			t.Errorf("formatQty(%g, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

// TestRenderTopFrame pins one whole frame: renderTop is pure over
// topData, so a canned input must produce the same dashboard.
func TestRenderTopFrame(t *testing.T) {
	d := topData{
		Base: "http://bench:8080",
		When: topT0,
		Health: map[string]any{
			"status":   "ok",
			"uptime_s": 90.0,
			"queued":   2.0,
			"workers":  4.0,
			"storage":  map[string]any{"mode": "tiered"},
		},
		Series: map[string][]obs.Point{
			"benchd_queue_depth":             gaugePts(0, 1, 2, 2),
			"perfstore_ingest_entries_total": gaugePts(0, 5, 10),
		},
		Alerts: []obs.RuleStatus{
			{Rule: obs.Rule{ID: "alert-000001", Metric: "benchd_queue_depth",
				Kind: obs.KindThreshold, Op: obs.OpGT, Value: 10},
				State: obs.StateFiring, LastValue: 42, Fires: 1},
			{Rule: obs.Rule{ID: "alert-000002", Metric: "x", Kind: obs.KindAbsence},
				State: obs.StateOK},
		},
		Events: []string{"12:00:00  alert.fired  alert_id=alert-000001"},
		Errs:   []string{"alerts: boom"},
	}
	frame := renderTop(d)
	for _, want := range []string{
		"benchd top — http://bench:8080",
		"status ok",
		"mode tiered",
		"up 1m30s",
		"queued 2  workers 4",
		"queue depth         2", // latest gauge value
		"ingest          5.0/s", // counter rendered as a rate
		"alerts  2 rules, 1 firing",
		"! alert-000001   firing   benchd_queue_depth (threshold gt 10)  value=42  fires=1",
		"  alert-000002   ok       x (absence)",
		"recent events",
		"alert_id=alert-000001",
		"[alerts: boom]",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// Metrics with no points render a placeholder, not a crash or a lie.
	if !strings.Contains(frame, "goroutines          -") {
		t.Errorf("missing placeholder row for unsampled series:\n%s", frame)
	}
}
