package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/eventbus"
)

// TestStreamWatchResumes: a broken stream is an error the caller
// retries, and the retry carries Last-Event-ID so the server replays
// what was missed; the terminal server.shutdown event ends the stream
// cleanly.
func TestStreamWatchResumes(t *testing.T) {
	var lastEventIDs []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/watch" {
			http.NotFound(w, r)
			return
		}
		lastEventIDs = append(lastEventIDs, r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		if len(lastEventIDs) == 1 {
			// First connection: greeting, two events, then an abrupt end.
			fmt.Fprint(w, ": watching\n\n")
			fmt.Fprint(w, "id: 1\nevent: run.started\ndata: {\"id\":1,\"type\":\"run.started\",\"data\":{\"run_id\":\"run-000001\"}}\n\n")
			fmt.Fprint(w, "id: 2\nevent: run.finished\ndata: {\"id\":2,\"type\":\"run.finished\",\"data\":{\"run_id\":\"run-000001\"}}\n\n")
			return
		}
		// Reconnection: one more event, then a clean shutdown.
		fmt.Fprint(w, "id: 3\nevent: store.sealed\ndata: {\"id\":3,\"type\":\"store.sealed\"}\n\n")
		fmt.Fprint(w, "id: 4\nevent: server.shutdown\ndata: {\"id\":4,\"type\":\"server.shutdown\"}\n\n")
	}))
	defer ts.Close()

	var got []string
	var lastID uint64
	emit := func(ev eventbus.Event) bool {
		got = append(got, ev.Type)
		return false
	}
	err := streamWatch(context.Background(), ts.Client(), ts.URL, "", &lastID, emit)
	if err == nil || !strings.Contains(err.Error(), "stream ended") {
		t.Fatalf("first stream error = %v, want a retryable stream-ended error", err)
	}
	if lastID != 2 {
		t.Fatalf("lastID after first stream = %d, want 2", lastID)
	}

	if err := streamWatch(context.Background(), ts.Client(), ts.URL, "", &lastID, emit); err != nil {
		t.Fatalf("second stream: %v", err)
	}
	if lastEventIDs[0] != "" || lastEventIDs[1] != "2" {
		t.Errorf("Last-Event-ID headers = %q, want [\"\" \"2\"]", lastEventIDs)
	}
	want := []string{"run.started", "run.finished", "store.sealed", "server.shutdown"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("events = %v, want %v", got, want)
	}
	if lastID != 4 {
		t.Errorf("final lastID = %d, want 4", lastID)
	}
}

// TestStreamWatchTypesAndErrors: the type filter lands on the query
// string, emit can stop the stream early, and HTTP errors surface with
// the server's message.
func TestStreamWatchTypesAndErrors(t *testing.T) {
	var gotQuery string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.RawQuery
		if r.URL.Query().Get("types") == "bogus" {
			http.Error(w, `{"error":"unknown event type"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		for i := 1; i <= 5; i++ {
			fmt.Fprintf(w, "id: %d\nevent: run.finished\ndata: {\"id\":%d,\"type\":\"run.finished\"}\n\n", i, i)
		}
	}))
	defer ts.Close()

	var lastID uint64
	err := streamWatch(context.Background(), ts.Client(), ts.URL, "bogus", &lastID, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("bad type error = %v", err)
	}

	n := 0
	err = streamWatch(context.Background(), ts.Client(), ts.URL, "run.finished", &lastID, func(ev eventbus.Event) bool {
		n++
		return n == 2 // stop early
	})
	if err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if n != 2 || lastID != 2 {
		t.Errorf("stopped after %d events, lastID=%d; want 2, 2", n, lastID)
	}
	if !strings.Contains(gotQuery, "types=run.finished") {
		t.Errorf("query = %q, want a types filter", gotQuery)
	}
}
