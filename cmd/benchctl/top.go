package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/eventbus"
	"repro/internal/obs"
)

// cmdTop is a live terminal dashboard over a benchd daemon: queue
// depth, in-flight runs, ingest rate, query-cache hit ratio, and
// runtime health as sparklines from /v1/metrics/history, the active
// alert rules from /v1/alerts, and a tail of recent events from the
// /v1/watch SSE stream — continuous benchmarking's cockpit view,
// without a Grafana between the operator and the daemon.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "benchd base URL")
	refresh := fs.Duration("refresh", 2*time.Second, "dashboard refresh interval")
	window := fs.Duration("window", 10*time.Minute, "history window behind the sparklines")
	once := fs.Bool("once", false, "render a single frame and exit (no screen control, pipeline-friendly)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: 10 * time.Second}

	// Recent events arrive over SSE in the background; the render loop
	// only reads the ring. Reconnects resume via Last-Event-ID like
	// benchctl watch.
	tail := &eventTail{limit: 8}
	if !*once {
		go tail.follow(ctx, *addr)
	}

	for {
		d := collectTop(ctx, client, *addr, *window)
		d.Events = tail.lines()
		frame := renderTop(d)
		if *once {
			fmt.Print(frame)
			return nil
		}
		// Clear + home, then the frame: a poor man's full-screen repaint
		// that needs no terminal library.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-time.After(*refresh):
		}
	}
}

// topMetrics are the series the dashboard graphs, in display order.
var topMetrics = []struct {
	key     string // canonical series key on /v1/metrics/history
	label   string
	counter bool   // render as a per-second rate
	unit    string // suffix on the latest value
}{
	{"benchd_queue_depth", "queue depth", false, ""},
	{"benchd_runs_in_flight", "in flight", false, ""},
	{"perfstore_ingest_entries_total", "ingest", true, "/s"},
	{"go_goroutines", "goroutines", false, ""},
	{"go_heap_alloc_bytes", "heap", false, "B"},
}

// cacheSeries are the query-cache counters combined into one hit-ratio
// row.
var cacheSeries = []string{
	`benchd_query_cache_hits_total{kind="aggregate"}`,
	`benchd_query_cache_hits_total{kind="regressions"}`,
	`benchd_query_cache_misses_total{kind="aggregate"}`,
	`benchd_query_cache_misses_total{kind="regressions"}`,
}

// topData is one dashboard frame's inputs; renderTop is pure over it so
// tests can pin frames without a daemon.
type topData struct {
	Base   string
	When   time.Time
	Health map[string]any
	Series map[string][]obs.Point
	Alerts []obs.RuleStatus
	Events []string
	Errs   []string
}

// collectTop polls one frame's state. Endpoint failures land in Errs
// and leave their section empty: a wedged daemon is exactly when the
// operator runs top, so partial frames beat erroring out.
func collectTop(ctx context.Context, client *http.Client, base string, window time.Duration) topData {
	d := topData{
		Base:   base,
		When:   time.Now(),
		Series: map[string][]obs.Point{},
	}
	if err := getTopJSON(ctx, client, base, "/healthz", &d.Health); err != nil {
		d.Errs = append(d.Errs, fmt.Sprintf("healthz: %v", err))
	}
	var alerts struct {
		Alerts []obs.RuleStatus `json:"alerts"`
	}
	if err := getTopJSON(ctx, client, base, "/v1/alerts", &alerts); err != nil {
		d.Errs = append(d.Errs, fmt.Sprintf("alerts: %v", err))
	}
	d.Alerts = alerts.Alerts
	names := make([]string, 0, len(topMetrics)+len(cacheSeries))
	for _, m := range topMetrics {
		names = append(names, m.key)
	}
	names = append(names, cacheSeries...)
	for _, name := range names {
		var hist struct {
			Points []obs.Point `json:"points"`
		}
		path := "/v1/metrics/history?name=" + url.QueryEscape(name) +
			"&since=" + url.QueryEscape(window.String())
		if err := getTopJSON(ctx, client, base, path, &hist); err != nil {
			continue // a series the daemon hasn't sampled yet is not an error
		}
		d.Series[name] = hist.Points
	}
	return d
}

func getTopJSON(ctx context.Context, client *http.Client, base, path string, v any) error {
	u := strings.TrimSuffix(base, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+path, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// sparkBars is the eight-level block ramp sparklines draw with.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-width bar strip, newest at the
// right. Values are min-max scaled over the visible window; a flat
// series renders as a low bar, not an empty strip.
func sparkline(vals []float64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var b strings.Builder
	for i := len(vals); i < width; i++ {
		b.WriteRune(' ')
	}
	if len(vals) == 0 {
		return b.String()
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkBars)-1))
		}
		b.WriteRune(sparkBars[idx])
	}
	return b.String()
}

// rateSeries converts a cumulative counter's points into per-interval
// deltas (clamped at zero across restarts), one fewer value than
// points.
func rateSeries(pts []obs.Point) []float64 {
	if len(pts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].Time.Sub(pts[i-1].Time).Seconds()
		dv := pts[i].Last - pts[i-1].Last
		if dt <= 0 || dv < 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, dv/dt)
	}
	return out
}

func lastValues(pts []obs.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Last
	}
	return out
}

// formatQty renders a value compactly (12, 3.4k, 1.2M, 512MB-ish).
func formatQty(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.1fG%s", v/1e9, unit)
	case abs >= 1e6:
		return fmt.Sprintf("%.1fM%s", v/1e6, unit)
	case abs >= 1e4:
		return fmt.Sprintf("%.1fk%s", v/1e3, unit)
	case abs == math.Trunc(abs) && unit == "":
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f%s", v, unit)
	}
}

const sparkWidth = 40

// renderTop draws one frame. Pure: everything it shows arrives in d.
func renderTop(d topData) string {
	var b strings.Builder
	status, mode := "?", "?"
	var uptime, queued, workers float64
	if d.Health != nil {
		status, _ = d.Health["status"].(string)
		if st, ok := d.Health["storage"].(map[string]any); ok {
			mode, _ = st["mode"].(string)
		}
		uptime, _ = d.Health["uptime_s"].(float64)
		queued, _ = d.Health["queued"].(float64)
		workers, _ = d.Health["workers"].(float64)
	}
	fmt.Fprintf(&b, "benchd top — %s   %s\n", d.Base, d.When.Format("15:04:05"))
	fmt.Fprintf(&b, "status %-10s mode %-18s up %-12s queued %.0f  workers %.0f\n\n",
		status, mode, (time.Duration(uptime) * time.Second).String(), queued, workers)

	for _, m := range topMetrics {
		pts := d.Series[m.key]
		var vals []float64
		if m.counter {
			vals = rateSeries(pts)
		} else {
			vals = lastValues(pts)
		}
		latest := "-"
		if len(vals) > 0 {
			latest = formatQty(vals[len(vals)-1], m.unit)
		}
		fmt.Fprintf(&b, "  %-12s %8s  %s\n", m.label, latest, sparkline(vals, sparkWidth))
	}
	if hitVals := cacheHitRatio(d.Series); hitVals != nil {
		latest := "-"
		if len(hitVals) > 0 && !math.IsNaN(hitVals[len(hitVals)-1]) {
			latest = fmt.Sprintf("%.0f%%", hitVals[len(hitVals)-1]*100)
		}
		fmt.Fprintf(&b, "  %-12s %8s  %s\n", "cache hit", latest, sparkline(hitVals, sparkWidth))
	}

	firing := 0
	for _, a := range d.Alerts {
		if a.State == obs.StateFiring {
			firing++
		}
	}
	fmt.Fprintf(&b, "\nalerts  %d rules, %d firing\n", len(d.Alerts), firing)
	for _, a := range d.Alerts {
		mark := " "
		if a.State == obs.StateFiring {
			mark = "!"
		}
		cond := a.Kind
		if a.Op != "" {
			cond = fmt.Sprintf("%s %s %g", a.Kind, a.Op, a.Value)
		}
		fmt.Fprintf(&b, "  %s %-14s %-8s %s (%s)  value=%g  fires=%d\n",
			mark, a.ID, a.State, a.Metric, cond, a.LastValue, a.Fires)
	}

	if len(d.Events) > 0 {
		fmt.Fprintf(&b, "\nrecent events\n")
		for _, line := range d.Events {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	for _, e := range d.Errs {
		fmt.Fprintf(&b, "\n[%s]\n", e)
	}
	return b.String()
}

// cacheHitRatio folds the four cache counters into one hits/(hits+
// misses) ratio series, aligned on point index (the sampler scrapes
// all four on the same ticks). Returns nil before any cache traffic.
func cacheHitRatio(series map[string][]obs.Point) []float64 {
	n := 0
	for _, name := range cacheSeries {
		if len(series[name]) > n {
			n = len(series[name])
		}
	}
	if n == 0 {
		return nil
	}
	sum := func(name string, i int) float64 {
		pts := series[name]
		// Align on the newest edge: shorter series started sampling later.
		j := i - (n - len(pts))
		if j < 0 || j >= len(pts) {
			return 0
		}
		return pts[j].Last
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		hits := sum(cacheSeries[0], i) + sum(cacheSeries[1], i)
		total := hits + sum(cacheSeries[2], i) + sum(cacheSeries[3], i)
		if total == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = hits / total
	}
	// NaNs (no traffic yet) render as the low bar: replace with the
	// first real value so the scale stays honest.
	first := 0.0
	for _, v := range out {
		if !math.IsNaN(v) {
			first = v
			break
		}
	}
	for i, v := range out {
		if math.IsNaN(v) {
			out[i] = first
		}
	}
	return out
}

// eventTail follows /v1/watch in the background, keeping the last few
// rendered event lines for the dashboard footer.
type eventTail struct {
	mu    sync.Mutex
	limit int
	ring  []string
}

func (t *eventTail) follow(ctx context.Context, base string) {
	client := &http.Client{}
	var lastID uint64
	for ctx.Err() == nil {
		streamWatch(ctx, client, base, "", &lastID, func(ev eventbus.Event) bool {
			t.push(ev)
			return false
		})
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
}

func (t *eventTail) push(ev eventbus.Event) {
	line := fmt.Sprintf("%s  %-20s", ev.Time.Format("15:04:05"), ev.Type)
	for _, k := range []string{"run_id", "alert_id", "metric", "benchmark", "result", "reason", "fom", "change"} {
		if v, ok := ev.Data[k]; ok {
			line += fmt.Sprintf(" %s=%s", k, v)
		}
	}
	t.mu.Lock()
	t.ring = append(t.ring, line)
	if len(t.ring) > t.limit {
		t.ring = t.ring[len(t.ring)-t.limit:]
	}
	t.mu.Unlock()
}

func (t *eventTail) lines() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.ring...)
}
