package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hpgmg-fv", "babelstream-omp", "archer2", "isambard-macs"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunCommandHPGMG(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"run", "-b", "hpgmg-fv", "--system", "archer2",
			"--perflog", filepath.Join(dir, "logs"), "--tree", filepath.Join(dir, "tree"), "--trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hpgmg-fv", "archer2", "l0", "MDOF/s", "concretization trace"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "logs", "archer2", "hpgmg-fv.log")); err != nil {
		t.Errorf("perflog not written: %v", err)
	}
}

func TestRunCommandSpecOverride(t *testing.T) {
	dir := t.TempDir()
	// The paper's "+omp" model syntax must be accepted.
	out, err := capture(t, func() error {
		return run([]string{"run", "-b", "babelstream-omp", "--system", "isambard-macs:cascadelake",
			"-S", "babelstream%gcc@9.2.0 +omp",
			"--perflog", filepath.Join(dir, "logs"), "--tree", filepath.Join(dir, "tree")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gcc@9.2.0") || !strings.Contains(out, "triad") {
		t.Errorf("output:\n%s", out)
	}
}

func TestScriptCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"script", "-b", "hpgmg-fv", "--system", "archer2",
			"--tree", t.TempDir()})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#SBATCH", "--ntasks=8", "srun"} {
		if !strings.Contains(out, want) {
			t.Errorf("script missing %q:\n%s", want, out)
		}
	}
}

func TestRunCommandErrors(t *testing.T) {
	if err := run([]string{"run", "-b", "hpgmg-fv"}); err == nil {
		t.Error("missing --system accepted")
	}
	if err := run([]string{"run", "--system", "archer2"}); err == nil {
		t.Error("missing -b accepted")
	}
	if _, err := capture(t, func() error {
		return run([]string{"run", "-b", "nope", "--system", "archer2"})
	}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestRunCommandMultiSystemSweep(t *testing.T) {
	// The paper's survey workflow: one invocation, several systems.
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"run", "-b", "hpgmg-fv", "--system", "archer2,cosma8,csd3",
			"--perflog", filepath.Join(dir, "logs"), "--tree", filepath.Join(dir, "tree")})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"archer2", "cosma8", "csd3"} {
		if !strings.Contains(out, sys) {
			t.Errorf("sweep output missing %s", sys)
		}
		if _, err := os.Stat(filepath.Join(dir, "logs", sys, "hpgmg-fv.log")); err != nil {
			t.Errorf("%s perflog missing: %v", sys, err)
		}
	}
	if err := run([]string{"script", "-b", "hpgmg-fv", "--system", "a,b"}); err == nil {
		t.Error("multi-system script accepted")
	}
}

func TestSurveyCommand(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"survey",
			"--system", "isambard-macs:cascadelake,isambard-macs:volta",
			"--perflog", filepath.Join(dir, "logs"), "--tree", filepath.Join(dir, "tree")})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"omp", "cuda", "Triad efficiency", "%", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("survey output missing %q:\n%s", want, out)
		}
	}
	// The CUDA row must have a value on volta and a "*" on cascadelake.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cuda") {
			if !strings.Contains(line, "*") || !strings.Contains(line, "%") {
				t.Errorf("cuda row = %q", line)
			}
		}
	}
}

func TestRunCommandPartialFailureExitsNonZero(t *testing.T) {
	// A sweep with one bad target must still run (and log) the good
	// targets, but surface a joined error so the process exits non-zero.
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"run", "-b", "hpgmg-fv", "--system", "archer2,no-such-system",
			"--perflog", filepath.Join(dir, "logs"), "--tree", filepath.Join(dir, "tree")})
	})
	if err == nil {
		t.Fatal("sweep with an unknown system reported success")
	}
	if !strings.Contains(err.Error(), "no-such-system") {
		t.Errorf("error does not name the failing target: %v", err)
	}
	if !strings.Contains(out, "archer2") || !strings.Contains(out, "figures of merit") {
		t.Errorf("good target's results missing from output:\n%s", out)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "logs", "archer2", "hpgmg-fv.log")); statErr != nil {
		t.Errorf("good target's perflog missing: %v", statErr)
	}
}
