// Command benchctl is the framework's ReFrame-equivalent driver: it runs
// a benchmark from the suite on a configured system through the full
// reproducible pipeline (concretize → build → schedule → run → extract →
// perflog).
//
// Usage mirrors the invocations in the paper's artifact appendix:
//
//	benchctl run -b hpgmg-fv --system archer2 \
//	    -S "hpgmg%gcc" --num-tasks 8 --tasks-per-node 2 --cpus-per-task 8
//	benchctl run -b babelstream-omp --system isambard-macs:cascadelake \
//	    -S "babelstream%gcc@9.2.0 +omp"
//	benchctl script -b hpgmg-fv --system archer2      # show the job script
//	benchctl list                                     # benchmarks and systems
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/buildsys"
	"repro/internal/core"
	"repro/internal/dataframe"
	"repro/internal/fom"
	"repro/internal/machine"
	"repro/internal/perflog"
	"repro/internal/postprocess"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no command")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], false)
	case "script":
		return cmdRun(args[1:], true)
	case "survey":
		return cmdSurvey(args[1:])
	case "validate":
		return cmdValidate(args[1:])
	case "watch":
		return cmdWatch(args[1:])
	case "top":
		return cmdTop(args[1:])
	case "list":
		return cmdList()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  benchctl run    -b <benchmark> --system <sys[,sys...]> [flags]
  benchctl script -b <benchmark> --system <sys[:partition]> [flags]
  benchctl survey --system <sys[,sys...]>   BabelStream all-models survey (Figure 2)
  benchctl validate -b <benchmark> --system <sys[,sys...]> [-S spec] [--tree DIR]
                                            pre-flight check: every installed
                                            prefix the run would reuse still
                                            matches the concretized spec
  benchctl watch  [--addr URL] [--types t1,t2] [--json] [--count N]
                                            stream benchd events (SSE) live
  benchctl top    [--addr URL] [--refresh D] [--once]
                                            live daemon dashboard (queue,
                                            ingest, cache, alerts)
  benchctl list

flags for run/script:
  -S <spec>            override the build spec (Spack syntax)
  --num-tasks N        override num_tasks
  --tasks-per-node N   override num_tasks_per_node
  --cpus-per-task N    override num_cpus_per_task
  --account A          override the scheduler account
  --repetitions N      measured repetitions per run (default 1); N >= 2
                       records mean/stddev/RSD and a bootstrap 95% CI
  --warmup N           additional warm-up executions discarded before
                       the measured repetitions (default 0)
  --perflog DIR        perflog root (default ./perflogs)
  --tree DIR           install tree (default ./install)
  --no-rebuild         reuse cached builds (disables Principle 3)
  --trace              print the concretizer's decision trace and the
                       pipeline stage span tree with durations
`)
}

func cmdRun(args []string, scriptOnly bool) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	bench := fs.String("b", "", "benchmark name")
	system := fs.String("system", "", "target system[:partition]")
	specText := fs.String("S", "", "build spec override")
	numTasks := fs.Int("num-tasks", 0, "num_tasks override")
	tasksPerNode := fs.Int("tasks-per-node", 0, "num_tasks_per_node override")
	cpusPerTask := fs.Int("cpus-per-task", 0, "num_cpus_per_task override")
	account := fs.String("account", "", "scheduler account override")
	repetitions := fs.Int("repetitions", 0, "measured repetitions per run")
	warmup := fs.Int("warmup", 0, "warm-up executions to discard")
	perflogRoot := fs.String("perflog", "perflogs", "perflog root directory")
	tree := fs.String("tree", "install", "install tree directory")
	noRebuild := fs.Bool("no-rebuild", false, "reuse cached builds")
	trace := fs.Bool("trace", false, "print the concretization trace and the stage span tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" || *system == "" {
		return fmt.Errorf("both -b and --system are required")
	}
	targets := strings.Split(*system, ",")
	if scriptOnly && len(targets) != 1 {
		return fmt.Errorf("script takes exactly one system")
	}
	b, err := suite.ByName(*bench)
	if err != nil {
		return err
	}
	specOverride := *specText
	if specOverride != "" {
		// Accept the paper's "+omp" model syntax for BabelStream.
		specOverride, err = suite.NormalizeModelSpec(specOverride)
		if err != nil {
			return err
		}
	}
	runner := core.New(*tree, *perflogRoot)
	if scriptOnly {
		runner.PerflogRoot = ""
	}
	runner.RebuildEveryRun = !*noRebuild
	// With --trace, run under a private tracer so each run's span tree
	// can be printed after it finishes.
	ctx := context.Background()
	var tracer *telemetry.Tracer
	if *trace {
		tracer = telemetry.NewTracer(len(targets))
		ctx = telemetry.WithTracer(ctx, tracer)
	}
	// RunMany semantics: a failing target does not abort the survey — the
	// remaining systems still run and report, and the per-target errors
	// are joined into one non-nil error so the process exits non-zero.
	var errs []error
	printed := 0
	for _, target := range targets {
		target = strings.TrimSpace(target)
		report, err := runner.RunContext(ctx, b, core.Options{
			System:       target,
			Spec:         specOverride,
			NumTasks:     *numTasks,
			TasksPerNode: *tasksPerNode,
			CPUsPerTask:  *cpusPerTask,
			Account:      *account,
			Repetitions:  *repetitions,
			Warmup:       *warmup,
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("%s on %s: %w", b.Name(), target, err))
			continue
		}
		if scriptOnly {
			fmt.Print(report.JobScript)
			return nil
		}
		if printed > 0 {
			fmt.Println()
		}
		printed++
		fmt.Printf("benchmark: %s\nsystem:    %s:%s\nspec:      %s\n",
			report.Benchmark, report.System, report.Partition, report.Spec.RootString())
		if *trace {
			fmt.Println("concretization trace:")
			for _, s := range report.SpecTrace {
				fmt.Println("  " + s)
			}
			if traces := tracer.Traces(); len(traces) > 0 {
				last := traces[len(traces)-1]
				fmt.Println("stage trace:")
				fmt.Print(indent(telemetry.RenderTree(last.Root.View())))
			}
		}
		fmt.Printf("build:     %s (simulated %.1fs, root %s)\n",
			buildsys.Summary(report.Builds), report.BuildTime.Seconds(),
			report.Builds[len(report.Builds)-1].State())
		fmt.Printf("job:       #%d %s (%.3fs queued, %.3fs run)\n",
			report.Job.ID, report.Job.State, report.Job.QueueWait(), report.Job.Runtime())
		if !report.Pass() {
			errs = append(errs, fmt.Errorf("run failed on %s: %s", report.System, report.Entry.Extra["error"]))
			continue
		}
		fmt.Print("figures of merit:\n" + indent(fom.Table(report.FOMs)))
		if report.Repetitions > 1 && report.Entry != nil {
			fmt.Printf("repetitions: %d measured", report.Repetitions)
			if report.Warmup > 0 {
				fmt.Printf(" (+%d warm-up discarded)", report.Warmup)
			}
			fmt.Println()
			for _, name := range report.Entry.RepFOMs() {
				if st, ok := report.Entry.RepStats(name); ok {
					fmt.Printf("  %-16s %s\n", name, perflog.FormatRepStats(st))
				}
			}
		}
	}
	if !scriptOnly {
		fmt.Printf("perflog:   %s\n", *perflogRoot)
	}
	return errors.Join(errs...)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

func cmdList() error {
	runner := core.New("", "")
	fmt.Println("benchmarks:")
	for _, b := range suite.All() {
		fmt.Printf("  %-18s spec: %s\n", b.Name(), b.BuildSpec())
	}
	fmt.Println("systems:")
	names := runner.Estate.Names()
	sort.Strings(names)
	for _, n := range names {
		sys, _ := runner.Estate.System(n)
		var parts []string
		for _, p := range sys.Partitions {
			parts = append(parts, fmt.Sprintf("%s (%s, %s)", p.Name, p.Processor.Microarch, p.Scheduler))
		}
		fmt.Printf("  %-18s %s\n", n, strings.Join(parts, "; "))
	}
	return nil
}

// cmdValidate is the pre-flight check as a standalone command: for each
// target system, concretize the benchmark's spec and verify every
// installed prefix the build would consult still matches it — the same
// buildsys.Validate walk benchd runs before accepting POST /v1/runs.
// Exits non-zero when any target has a stale binary, so it slots into CI
// ahead of expensive runs.
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	bench := fs.String("b", "", "benchmark name")
	system := fs.String("system", "", "target system[:partition][,more...]")
	specText := fs.String("S", "", "build spec override")
	tree := fs.String("tree", "install", "install tree directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" || *system == "" {
		return fmt.Errorf("both -b and --system are required")
	}
	b, err := suite.ByName(*bench)
	if err != nil {
		return err
	}
	specOverride := *specText
	if specOverride != "" {
		specOverride, err = suite.NormalizeModelSpec(specOverride)
		if err != nil {
			return err
		}
	}
	runner := core.New(*tree, "")
	var errs []error
	for _, target := range strings.Split(*system, ",") {
		target = strings.TrimSpace(target)
		err := runner.Preflight(b, core.Options{System: target, Spec: specOverride})
		var stale *buildsys.StaleBinaryError
		switch {
		case err == nil:
			fmt.Printf("%-24s ok\n", target)
		case errors.As(err, &stale):
			fmt.Printf("%-24s STALE  %s: %s (want %s, have %q)\n",
				target, stale.Package, stale.Reason, stale.WantHash, stale.GotHash)
			errs = append(errs, fmt.Errorf("%s: %w", target, err))
		default:
			return fmt.Errorf("%s: %w", target, err)
		}
	}
	return errors.Join(errs...)
}

// cmdSurvey reproduces the Figure 2 survey through the full pipeline:
// every BabelStream programming model on every target system, with
// unsupported combinations recorded as "*" cells rather than aborting —
// exactly how the paper's figure treats them.
func cmdSurvey(args []string) error {
	fs := flag.NewFlagSet("survey", flag.ContinueOnError)
	system := fs.String("system", "isambard-macs:cascadelake,isambard-xci,paderborn-milan,isambard-macs:volta",
		"comma-separated target systems")
	perflogRoot := fs.String("perflog", "perflogs", "perflog root directory")
	tree := fs.String("tree", "install", "install tree directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner := core.New(*tree, *perflogRoot)
	targets := strings.Split(*system, ",")

	f := dataframe.New()
	var modelCol, platCol []string
	var effCol []float64
	for _, model := range machine.AllModels() {
		bench := suite.NewBabelStream(string(model))
		for _, target := range targets {
			target = strings.TrimSpace(target)
			modelCol = append(modelCol, string(model))
			platCol = append(platCol, target)
			_, part, err := runner.Estate.Resolve(target)
			if err != nil {
				return err
			}
			rep, err := runner.Run(bench, core.Options{System: target})
			if err != nil || !rep.Pass() {
				// Unsupported combination: a "*" cell.
				effCol = append(effCol, math.NaN())
				continue
			}
			triad := rep.FOMs["triad_mbps"].Value / 1000
			effCol = append(effCol, triad/part.Processor.PeakBandwidthGBs)
		}
	}
	if err := f.AddStringColumn("model", modelCol); err != nil {
		return err
	}
	if err := f.AddStringColumn("platform", platCol); err != nil {
		return err
	}
	if err := f.AddFloatColumn("efficiency", effCol); err != nil {
		return err
	}
	pt, err := f.Pivot("model", "platform", "efficiency")
	if err != nil {
		return err
	}
	fmt.Print(postprocess.Heatmap(pt, "BabelStream Triad efficiency (fraction of theoretical peak)"))
	fmt.Printf("perflog: %s\n", *perflogRoot)
	return nil
}
