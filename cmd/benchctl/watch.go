package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/eventbus"
	"repro/internal/retry"
)

// cmdWatch streams a benchd daemon's /v1/watch SSE feed to the
// terminal: the live half of continuous benchmarking. Scheduled runs
// fire server-side; this is how an operator (or a CI log) sees them
// start, finish, and flag regressions without polling. Dropped
// connections reconnect with backoff, resuming from the last event id
// so nothing the replay ring still holds is missed.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "benchd base URL")
	types := fs.String("types", "", "comma-separated event type filter (default: all types)")
	asJSON := fs.Bool("json", false, "print one JSON event per line instead of columns")
	count := fs.Int("count", 0, "exit successfully after N events (0 = stream until interrupted)")
	reconnects := fs.Int("reconnects", 5, "consecutive failed connects before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// No client-side request timeout: the stream is long-lived by
	// design, and the server's heartbeats keep intermediaries convinced.
	client := &http.Client{}
	policy := retry.Default()
	policy.BaseDelay = 500 * time.Millisecond
	policy.MaxDelay = 10 * time.Second

	var lastID uint64
	seen := 0
	failures := 0
	for {
		err := streamWatch(ctx, client, *addr, *types, &lastID, func(ev eventbus.Event) bool {
			printEvent(ev, *asJSON)
			seen++
			return *count > 0 && seen >= *count
		})
		switch {
		case err == nil:
			return nil // --count satisfied or server shut down cleanly
		case ctx.Err() != nil:
			return nil // interrupted by the user
		}
		failures++
		if failures >= *reconnects {
			return fmt.Errorf("watch: %w (after %d attempts)", err, failures)
		}
		delay := policy.Delay(failures)
		fmt.Fprintf(os.Stderr, "benchctl watch: %v; reconnecting in %s\n", err, delay.Round(time.Millisecond))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil
		}
	}
}

// streamWatch opens one /v1/watch connection and feeds decoded events
// to emit until the stream ends. A successful event delivery updates
// *lastID, so the caller's next attempt resumes where this one left
// off via the Last-Event-ID header. Returns nil when emit asks to stop
// or the server sent its terminal shutdown event; any other end of
// stream is an error the caller may retry.
func streamWatch(ctx context.Context, client *http.Client, base, types string, lastID *uint64, emit func(eventbus.Event) bool) error {
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("bad --addr %q: %w", base, err)
	}
	if u.Scheme == "" {
		u, err = url.Parse("http://" + base)
		if err != nil {
			return fmt.Errorf("bad --addr %q: %w", base, err)
		}
	}
	u.Path = strings.TrimSuffix(u.Path, "/") + "/v1/watch"
	if types != "" {
		q := u.Query()
		q.Set("types", types)
		u.RawQuery = q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue // end of a comment (heartbeat, replay-gap note)
			}
			var ev eventbus.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return fmt.Errorf("bad event payload: %w", err)
			}
			data = ""
			if ev.ID > *lastID {
				*lastID = ev.ID
			}
			stop := emit(ev)
			if stop || ev.Type == eventbus.TypeServerShutdown {
				return nil
			}
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case strings.HasPrefix(line, ":"), strings.HasPrefix(line, "id:"), strings.HasPrefix(line, "event:"):
			// The id and type ride inside the data payload too; comments
			// are keepalives.
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("stream broken: %w", err)
	}
	return fmt.Errorf("stream ended without shutdown event")
}

// printEvent renders one event: a stable key=value column line, or raw
// JSON under --json (one event per line, pipeline-friendly).
func printEvent(ev eventbus.Event, asJSON bool) {
	if asJSON {
		out, _ := json.Marshal(ev)
		fmt.Println(string(out))
		return
	}
	keys := make([]string, 0, len(ev.Data))
	for k := range ev.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %-20s", ev.Time.Format("15:04:05"), ev.Type)
	for _, k := range keys {
		v := ev.Data[k]
		if strings.ContainsAny(v, " \t") {
			v = strconv.Quote(v)
		}
		fmt.Fprintf(&b, " %s=%s", k, v)
	}
	fmt.Println(b.String())
}
