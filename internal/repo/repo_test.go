package repo

import (
	"testing"

	"repro/internal/spec"
)

func TestBuiltinLoads(t *testing.T) {
	r := Builtin()
	for _, name := range []string{
		"babelstream", "hpcg", "hpgmg", "stream",
		"gcc", "oneapi", "cmake", "python",
		"openmpi", "mpich", "cray-mpich", "mvapich2",
		"kokkos", "cuda", "intel-tbb", "pocl",
	} {
		if !r.Has(name) {
			t.Errorf("builtin repo missing %q", name)
		}
	}
}

func TestVirtualProviders(t *testing.T) {
	r := Builtin()
	mpi := r.Providers("mpi")
	want := []string{"cray-mpich", "mpich", "mvapich2", "openmpi"}
	if len(mpi) != len(want) {
		t.Fatalf("mpi providers = %v, want %v", mpi, want)
	}
	for i := range want {
		if mpi[i] != want[i] {
			t.Fatalf("mpi providers = %v, want %v", mpi, want)
		}
	}
	if !r.IsVirtual("mpi") {
		t.Error("mpi should be virtual")
	}
	if r.IsVirtual("openmpi") {
		t.Error("openmpi is a real package, not virtual")
	}
	if r.IsVirtual("no-such-thing") {
		t.Error("unknown names are not virtual")
	}
	ocl := r.Providers("opencl")
	if len(ocl) != 2 || ocl[0] != "cuda" || ocl[1] != "pocl" {
		t.Errorf("opencl providers = %v", ocl)
	}
}

func TestHighestVersion(t *testing.T) {
	r := Builtin()
	gcc, err := r.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	v, err := gcc.HighestVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v != "12.1.0" {
		t.Errorf("gcc highest = %s, want 12.1.0", v)
	}
	// Preferred version overrides the maximum.
	bs, _ := r.Get("babelstream")
	v, err = bs.HighestVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v != "4.0" {
		t.Errorf("babelstream preferred = %s, want 4.0", v)
	}
}

func TestBestVersionWithin(t *testing.T) {
	r := Builtin()
	gcc, _ := r.Get("gcc")
	rng, err := spec.ParseVersionRange("10:11")
	if err != nil {
		t.Fatal(err)
	}
	v, err := gcc.BestVersionWithin(rng)
	if err != nil {
		t.Fatal(err)
	}
	if v != "11.2.0" {
		t.Errorf("best gcc in 10:11 = %s, want 11.2.0", v)
	}
	if _, err := gcc.BestVersionWithin(spec.ExactVersion("99.0")); err == nil {
		t.Error("expected error for unsatisfiable range")
	}
}

func TestConditionalDependencies(t *testing.T) {
	r := Builtin()
	bs, _ := r.Get("babelstream")
	var kokkosWhen *spec.Spec
	for _, d := range bs.Dependencies {
		if d.Name == "kokkos" {
			kokkosWhen = d.When
		}
	}
	if kokkosWhen == nil {
		t.Fatal("babelstream must depend on kokkos conditionally")
	}
	on := spec.MustParse("babelstream model=kokkos")
	off := spec.MustParse("babelstream model=omp")
	if !on.Satisfies(kokkosWhen) {
		t.Error("model=kokkos should trigger the kokkos dependency")
	}
	if off.Satisfies(kokkosWhen) {
		t.Error("model=omp should not trigger the kokkos dependency")
	}
}

func TestAddValidation(t *testing.T) {
	r := NewRepository("t")
	if err := r.Add(&Package{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Add(&Package{Name: "p"}); err == nil {
		t.Error("no versions accepted")
	}
	ok := &Package{Name: "p", Versions: vs("1.0")}
	if err := r.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(ok); err == nil {
		t.Error("duplicate accepted")
	}
	bad := &Package{
		Name:     "q",
		Versions: vs("1.0"),
		Variants: []VariantDef{
			{Name: "v", Bool: true, Default: spec.StrVariant("x")},
		},
	}
	if err := r.Add(bad); err == nil {
		t.Error("variant default kind mismatch accepted")
	}
	bad2 := &Package{
		Name:     "s",
		Versions: vs("1.0"),
		Variants: []VariantDef{
			{Name: "m", Default: spec.StrVariant("zzz"), Values: []string{"a", "b"}},
		},
	}
	if err := r.Add(bad2); err == nil {
		t.Error("default outside allowed values accepted")
	}
	dupVar := &Package{
		Name:     "u",
		Versions: vs("1.0"),
		Variants: []VariantDef{
			{Name: "m", Bool: true, Default: spec.BoolVariant(true)},
			{Name: "m", Bool: true, Default: spec.BoolVariant(false)},
		},
	}
	if err := r.Add(dupVar); err == nil {
		t.Error("duplicate variant accepted")
	}
}

func TestMergeShadows(t *testing.T) {
	base := NewRepository("base")
	base.MustAdd(&Package{Name: "p", Versions: vs("1.0"), Description: "old"})
	local := NewRepository("local")
	local.MustAdd(&Package{Name: "p", Versions: vs("2.0"), Description: "new"})
	local.MustAdd(&Package{Name: "q", Versions: vs("1.0")})
	merged := base.Merge(local)
	p, err := merged.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if p.Description != "new" {
		t.Error("local recipe must shadow base recipe")
	}
	if !merged.Has("q") {
		t.Error("merged repo missing local-only recipe")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Builtin().Get("definitely-not-real"); err == nil {
		t.Error("expected error for unknown package")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Builtin().Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if len(names) < 15 {
		t.Errorf("expected a rich builtin repo, got %d recipes", len(names))
	}
}

func TestDepTypeString(t *testing.T) {
	if BuildDep.String() != "build" || LinkDep.String() != "link" || RunDep.String() != "run" {
		t.Error("DepType string forms wrong")
	}
}
