package repo

import "repro/internal/spec"

// Builtin returns the framework's recipe repository: the benchmark
// applications used in the paper's three case studies plus the library
// and toolchain packages their builds depend on. Version lists follow the
// versions reported in the paper (e.g. Table 3's gcc/python/MPI versions,
// the GCC 9.2.0/10.3.0/12.1.0 and oneAPI 2023.1.0 compilers of §3.1).
func Builtin() *Repository {
	r := NewRepository("builtin")

	// --- Benchmark applications -------------------------------------

	r.MustAdd(&Package{
		Name:             "babelstream",
		Description:      "STREAM-style memory bandwidth benchmark in many parallel programming models",
		Homepage:         "https://github.com/UoB-HPC/BabelStream",
		Versions:         vs("3.4", "4.0", "5.0"),
		PreferredVersion: "4.0",
		Variants: []VariantDef{
			{
				Name:        "model",
				Description: "programming model used for the kernels",
				Default:     spec.StrVariant("omp"),
				Values: []string{
					"omp", "kokkos", "cuda", "ocl", "tbb",
					"std-data", "std-indices", "std-ranges", "sycl",
				},
			},
			{Name: "mpi", Description: "enable multi-process harness", Bool: true, Default: spec.BoolVariant(false)},
			{
				Name:        "target",
				Description: "target instruction-set family (set from the partition by the concretizer)",
				Default:     spec.StrVariant("x86_64"),
				Values:      []string{"x86_64", "aarch64", "ptx"},
			},
		},
		Dependencies: []Dependency{
			{Name: "cmake", Type: BuildDep},
			{Name: "kokkos", Type: LinkDep, When: spec.MustParse("babelstream model=kokkos")},
			{Name: "cuda", Type: LinkDep, When: spec.MustParse("babelstream model=cuda")},
			{Name: "opencl", Type: LinkDep, When: spec.MustParse("babelstream model=ocl")},
			{Name: "intel-tbb", Type: LinkDep, When: spec.MustParse("babelstream model=tbb")},
			// ISO C++ parallel algorithms use the TBB backend of
			// libstdc++ for multicore execution on x86 (paper §3.1); on
			// aarch64 they still build and run, just without the
			// multicore backend — the isambard-xci slowdown of Fig. 2.
			{Name: "intel-tbb", Type: RunDep, When: spec.MustParse("babelstream model=std-data target=x86_64")},
			{Name: "intel-tbb", Type: RunDep, When: spec.MustParse("babelstream model=std-indices target=x86_64")},
			{Name: "intel-tbb", Type: RunDep, When: spec.MustParse("babelstream model=std-ranges target=x86_64")},
			{Name: "mpi", Type: LinkDep, When: spec.MustParse("babelstream +mpi")},
		},
		BuildSystem: "cmake",
		BuildCost:   3,
	})

	r.MustAdd(&Package{
		Name:        "hpcg",
		Description: "High Performance Conjugate Gradient benchmark and the paper's algorithmic variants",
		Homepage:    "https://www.hpcg-benchmark.org",
		Versions:    vs("3.0", "3.1"),
		Variants: []VariantDef{
			{
				Name:        "variant",
				Description: "algorithm/implementation variant (paper §3.2, Table 2)",
				Default:     spec.StrVariant("original"),
				Values:      []string{"original", "intel-avx2", "matrix-free", "lfric"},
			},
			{Name: "openmp", Description: "hybrid MPI+OpenMP build", Bool: true, Default: spec.BoolVariant(false)},
		},
		Dependencies: []Dependency{
			{Name: "mpi", Type: LinkDep},
			{Name: "intel-oneapi-mkl", Type: LinkDep, When: spec.MustParse("hpcg variant=intel-avx2")},
		},
		Conflicts: []Conflict{
			// The vendor-optimised binaries ship only for Intel
			// toolchains; this is why Table 2 reports N/A on AMD Rome.
			{When: spec.MustParse("hpcg variant=intel-avx2 %gcc"), Reason: "Intel-avx2 binaries require the oneapi toolchain"},
		},
		BuildSystem: "autotools",
		BuildCost:   5,
	})

	r.MustAdd(&Package{
		Name:             "hpgmg",
		Description:      "HPGMG finite-volume full multigrid benchmark",
		Homepage:         "https://bitbucket.org/hpgmg/hpgmg",
		Versions:         vs("0.4", "1.0"),
		PreferredVersion: "0.4",
		Variants: []VariantDef{
			{Name: "fv", Description: "build the finite-volume solver", Bool: true, Default: spec.BoolVariant(true)},
			{Name: "fe", Description: "build the finite-element solver", Bool: true, Default: spec.BoolVariant(false)},
			{Name: "mpi", Description: "distributed-memory build", Bool: true, Default: spec.BoolVariant(true)},
		},
		Dependencies: []Dependency{
			// The default FV variant has exactly two build
			// dependencies, MPI and Python (paper §3.3, Table 3).
			{Name: "mpi", Type: LinkDep, When: spec.MustParse("hpgmg +mpi")},
			{Name: "python", Type: BuildDep},
		},
		BuildSystem: "make",
		BuildCost:   4,
	})

	r.MustAdd(&Package{
		Name:        "stream",
		Description: "classic McCalpin STREAM benchmark",
		Homepage:    "https://www.cs.virginia.edu/stream/",
		Versions:    vs("5.10"),
		Variants: []VariantDef{
			{Name: "openmp", Description: "thread the kernels with OpenMP", Bool: true, Default: spec.BoolVariant(true)},
		},
		BuildSystem: "make",
		BuildCost:   1,
	})

	// --- Toolchain ----------------------------------------------------

	r.MustAdd(&Package{
		Name:        "gcc",
		Description: "GNU Compiler Collection",
		Versions:    vs("9.2.0", "10.3.0", "11.1.0", "11.2.0", "12.1.0"),
		BuildSystem: "autotools",
		BuildCost:   60,
	})
	r.MustAdd(&Package{
		Name:        "oneapi",
		Description: "Intel oneAPI compiler toolchain",
		Versions:    vs("2022.2.0", "2023.1.0"),
		BuildSystem: "bundle",
		BuildCost:   30,
	})
	r.MustAdd(&Package{
		Name:        "intel-oneapi-mkl",
		Description: "Intel oneAPI Math Kernel Library (ships the optimised HPCG binaries)",
		Versions:    vs("2023.1.0"),
		BuildSystem: "bundle",
		BuildCost:   10,
	})
	r.MustAdd(&Package{
		Name:        "cmake",
		Description: "cross-platform build system generator",
		Versions:    vs("3.20.0", "3.24.2", "3.26.3"),
		BuildSystem: "autotools",
		BuildCost:   8,
	})
	r.MustAdd(&Package{
		Name:        "python",
		Description: "Python interpreter (HPGMG build scripts)",
		Versions:    vs("2.7.15", "3.7.5", "3.8.2", "3.10.12"),
		BuildSystem: "autotools",
		BuildCost:   12,
	})

	// --- MPI providers (virtual package "mpi") ------------------------

	r.MustAdd(&Package{
		Name:        "openmpi",
		Description: "Open MPI message passing library",
		Versions:    vs("4.0.3", "4.0.4", "4.1.4"),
		Provides:    []string{"mpi"},
		Dependencies: []Dependency{
			{Name: "hwloc", Type: LinkDep},
		},
		BuildSystem: "autotools",
		BuildCost:   20,
	})
	r.MustAdd(&Package{
		Name:        "mpich",
		Description: "MPICH message passing library",
		Versions:    vs("3.4.3", "4.1.1"),
		Provides:    []string{"mpi"},
		BuildSystem: "autotools",
		BuildCost:   18,
	})
	r.MustAdd(&Package{
		Name:        "cray-mpich",
		Description: "HPE Cray MPICH (system-provided on Cray EX)",
		Versions:    vs("8.1.23"),
		Provides:    []string{"mpi"},
		BuildSystem: "bundle",
		BuildCost:   1,
	})
	r.MustAdd(&Package{
		Name:        "mvapich2",
		Description: "MVAPICH2 message passing library",
		Versions:    vs("2.3.6", "2.3.7"),
		Provides:    []string{"mpi"},
		BuildSystem: "autotools",
		BuildCost:   18,
	})

	// --- Programming-model runtimes -----------------------------------

	r.MustAdd(&Package{
		Name:        "kokkos",
		Description: "Kokkos C++ performance-portability abstraction",
		Versions:    vs("3.7.2", "4.0.1"),
		Variants: []VariantDef{
			{
				Name:        "backend",
				Description: "device backend Kokkos dispatches to",
				Default:     spec.StrVariant("openmp"),
				Values:      []string{"openmp", "cuda", "serial"},
			},
		},
		Dependencies: []Dependency{
			{Name: "cmake", Type: BuildDep},
			{Name: "cuda", Type: LinkDep, When: spec.MustParse("kokkos backend=cuda")},
		},
		BuildSystem: "cmake",
		BuildCost:   15,
	})
	r.MustAdd(&Package{
		Name:        "cuda",
		Description: "NVIDIA CUDA toolkit",
		Versions:    vs("11.4.2", "12.1.1"),
		Provides:    []string{"opencl"},
		BuildSystem: "bundle",
		BuildCost:   5,
	})
	r.MustAdd(&Package{
		Name:        "pocl",
		Description: "portable CPU OpenCL implementation",
		Versions:    vs("3.1"),
		Provides:    []string{"opencl"},
		Dependencies: []Dependency{
			{Name: "cmake", Type: BuildDep},
		},
		BuildSystem: "cmake",
		BuildCost:   10,
	})
	r.MustAdd(&Package{
		Name:        "intel-tbb",
		Description: "Intel oneTBB threading runtime",
		Versions:    vs("2020.3", "2021.9.0"),
		Conflicts: []Conflict{
			// §3.1: "some systems do not support using Intel TBB",
			// specifically the aarch64 ThunderX2 nodes.
			{When: spec.MustParse("intel-tbb target=aarch64"), Reason: "intel-tbb is not supported on aarch64"},
		},
		Variants: []VariantDef{
			{Name: "target", Description: "target ISA family", Default: spec.StrVariant("x86_64"), Values: []string{"x86_64", "aarch64"}},
		},
		BuildSystem: "cmake",
		BuildCost:   6,
	})

	// --- Support libraries --------------------------------------------

	r.MustAdd(&Package{
		Name:        "hwloc",
		Description: "hardware locality library",
		Versions:    vs("2.8.0", "2.9.1"),
		BuildSystem: "autotools",
		BuildCost:   4,
	})
	r.MustAdd(&Package{
		Name:        "zlib",
		Description: "compression library",
		Versions:    vs("1.2.13"),
		BuildSystem: "autotools",
		BuildCost:   1,
	})

	return r
}

func vs(versions ...string) []spec.Version {
	out := make([]spec.Version, len(versions))
	for i, v := range versions {
		out[i] = spec.Version(v)
	}
	return out
}
