// Package repo holds package recipes: the curated knowledge of how each
// benchmark and library is built (the paper's Principle 2, "teach the
// build system", and the "Wisdom of the Crowd" curation it cites).
//
// A Repository maps package names to recipes. A recipe lists the known
// versions, the variants the build understands, its dependencies
// (possibly conditional, possibly on virtual packages such as "mpi"), and
// the build system used. The concretizer consumes recipes to turn
// abstract specs into concrete build DAGs.
package repo

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// DepType classifies when a dependency is needed, following the usual
// package-manager split.
type DepType int

const (
	// BuildDep is needed only while building (e.g. cmake, python).
	BuildDep DepType = iota
	// LinkDep is linked into the result (e.g. mpi, kokkos).
	LinkDep
	// RunDep is needed at run time only (e.g. a runtime library).
	RunDep
)

func (t DepType) String() string {
	switch t {
	case BuildDep:
		return "build"
	case LinkDep:
		return "link"
	case RunDep:
		return "run"
	default:
		return fmt.Sprintf("DepType(%d)", int(t))
	}
}

// Dependency declares that a package needs another package (or a virtual
// package such as "mpi"), optionally constrained, optionally only when the
// depending spec satisfies a condition (Spack's `when=`).
type Dependency struct {
	Name       string
	Type       DepType
	Constraint *spec.Spec // additional constraints on the dependency; may be nil
	When       *spec.Spec // dependency applies only if root satisfies this; may be nil
}

// VariantDef declares a variant a package's build understands.
type VariantDef struct {
	Name        string
	Description string
	// Bool variants toggle; string variants choose one of Values.
	Bool    bool
	Default spec.VariantValue
	Values  []string // allowed values for string variants; empty = free-form
}

// Conflict declares that a spec satisfying When cannot be built, with a
// human-readable reason.
type Conflict struct {
	When   *spec.Spec
	Reason string
}

// Package is a build recipe.
type Package struct {
	Name        string
	Description string
	Homepage    string

	// Versions available, any order; the concretizer picks the highest
	// unless PreferredVersion is set or the spec constrains it.
	Versions         []spec.Version
	PreferredVersion spec.Version

	Variants     []VariantDef
	Dependencies []Dependency
	Conflicts    []Conflict

	// Provides lists virtual packages this recipe satisfies ("mpi").
	Provides []string

	// BuildSystem names the underlying build tool ("cmake", "make",
	// "autotools", "bundle"); used by internal/buildsys.
	BuildSystem string

	// BuildCost is a dimensionless effort figure used by the simulated
	// build system to derive deterministic build durations.
	BuildCost float64
}

// Variant returns the named variant definition, if declared.
func (p *Package) Variant(name string) (VariantDef, bool) {
	for _, v := range p.Variants {
		if v.Name == name {
			return v, true
		}
	}
	return VariantDef{}, false
}

// HighestVersion returns the best default version: PreferredVersion when
// set, otherwise the maximum of Versions.
func (p *Package) HighestVersion() (spec.Version, error) {
	if p.PreferredVersion != "" {
		return p.PreferredVersion, nil
	}
	if len(p.Versions) == 0 {
		return "", fmt.Errorf("repo: package %q declares no versions", p.Name)
	}
	best := p.Versions[0]
	for _, v := range p.Versions[1:] {
		if v.Compare(best) > 0 {
			best = v
		}
	}
	return best, nil
}

// BestVersionWithin returns the highest declared version satisfying r.
func (p *Package) BestVersionWithin(r spec.VersionRange) (spec.Version, error) {
	var best spec.Version
	for _, v := range p.Versions {
		if !r.Contains(v) {
			continue
		}
		if best == "" || v.Compare(best) > 0 {
			best = v
		}
	}
	if best == "" {
		return "", fmt.Errorf("repo: %s: no declared version satisfies @%s (have %v)", p.Name, r.String(), p.Versions)
	}
	return best, nil
}

// Repository is a named collection of recipes, like a Spack repo.
type Repository struct {
	Name     string
	packages map[string]*Package
}

// NewRepository returns an empty repository.
func NewRepository(name string) *Repository {
	return &Repository{Name: name, packages: map[string]*Package{}}
}

// Add registers a recipe, failing on duplicates or structural errors.
func (r *Repository) Add(p *Package) error {
	if p.Name == "" {
		return fmt.Errorf("repo: recipe with empty name")
	}
	if _, dup := r.packages[p.Name]; dup {
		return fmt.Errorf("repo: duplicate recipe %q", p.Name)
	}
	if len(p.Versions) == 0 {
		return fmt.Errorf("repo: recipe %q declares no versions", p.Name)
	}
	seen := map[string]bool{}
	for _, v := range p.Variants {
		if seen[v.Name] {
			return fmt.Errorf("repo: recipe %q declares variant %q twice", p.Name, v.Name)
		}
		seen[v.Name] = true
		if v.Bool != v.Default.IsBool {
			return fmt.Errorf("repo: recipe %q variant %q: default kind mismatch", p.Name, v.Name)
		}
		if !v.Bool && len(v.Values) > 0 && !contains(v.Values, v.Default.Str) {
			return fmt.Errorf("repo: recipe %q variant %q: default %q not among allowed values", p.Name, v.Name, v.Default.Str)
		}
	}
	r.packages[p.Name] = p
	return nil
}

// MustAdd is Add for statically known-good recipes.
func (r *Repository) MustAdd(p *Package) {
	if err := r.Add(p); err != nil {
		panic(err)
	}
}

// Get returns the recipe for a package name.
func (r *Repository) Get(name string) (*Package, error) {
	p, ok := r.packages[name]
	if !ok {
		return nil, fmt.Errorf("repo: no recipe for package %q", name)
	}
	return p, nil
}

// Has reports whether the repository contains the named recipe.
func (r *Repository) Has(name string) bool {
	_, ok := r.packages[name]
	return ok
}

// Names returns all recipe names, sorted.
func (r *Repository) Names() []string {
	names := make([]string, 0, len(r.packages))
	for n := range r.packages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Providers returns the names of recipes providing the given virtual
// package, sorted.
func (r *Repository) Providers(virtual string) []string {
	var out []string
	for name, p := range r.packages {
		if contains(p.Provides, virtual) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// IsVirtual reports whether the name is a virtual package in this
// repository: no recipe of its own, but at least one provider.
func (r *Repository) IsVirtual(name string) bool {
	if r.Has(name) {
		return false
	}
	return len(r.Providers(name)) > 0
}

// Merge overlays other on top of r, returning a new repository in which
// other's recipes shadow r's. This mirrors keeping "a local repository of
// recipes for packages not generally relevant for upstream" (paper §2.2).
func (r *Repository) Merge(other *Repository) *Repository {
	out := NewRepository(r.Name + "+" + other.Name)
	for n, p := range r.packages {
		out.packages[n] = p
	}
	for n, p := range other.packages {
		out.packages[n] = p
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
