// Package machine is the simulated execution substrate: it predicts how
// long a given computational workload takes on a given processor under a
// given programming model.
//
// The paper's experiments ran on seven real UK HPC systems that this
// reproduction cannot access, so the framework's Executor plugs into this
// analytic model instead (see DESIGN.md, substitutions). The model is a
// roofline: a workload moving B bytes and computing F flops on processor
// p takes
//
//	t = max( B / (BW_peak(p) · e_bw · s(threads)),  F / (FLOPS_peak(p) · e_fl) ) + overheads
//
// where e_bw and e_fl are per-(programming model, microarchitecture)
// efficiency factors and s(threads) models bandwidth saturation with
// thread count. The efficiency matrix is calibrated so the *shapes* of
// the paper's Figure 2 and Tables 2/4 are reproduced: which model/platform
// wins, by roughly what factor, and where support gaps ("*" cells) fall.
// Absolute numbers are not the target (paper systems differ from any
// model); see EXPERIMENTS.md.
//
// All predictions are deterministic: the jitter term is a hash of the
// inputs, so repeated runs reproduce exactly (the property Principles 3-5
// are designed to give real systems, and which the simulation gets for
// free).
package machine

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/platform"
)

// ProgModel names a parallel programming model, matching the BabelStream
// model variants in the package repository.
type ProgModel string

const (
	OMP        ProgModel = "omp"
	Kokkos     ProgModel = "kokkos"
	CUDA       ProgModel = "cuda"
	OpenCL     ProgModel = "ocl"
	TBB        ProgModel = "tbb"
	StdData    ProgModel = "std-data"
	StdIndices ProgModel = "std-indices"
	StdRanges  ProgModel = "std-ranges"
	SYCL       ProgModel = "sycl"
	MPI        ProgModel = "mpi" // flat-MPI process parallelism (HPCG, HPGMG)
	Serial     ProgModel = "serial"
)

// AllModels lists the programming models of the Figure 2 survey in the
// paper's row order.
func AllModels() []ProgModel {
	return []ProgModel{Kokkos, OMP, CUDA, OpenCL, TBB, StdData, StdIndices, StdRanges}
}

// Support describes whether a model can run on a processor, mirroring the
// white "*" cells of Figure 2 (CUDA on CPUs, TBB on ThunderX2, ...).
type Support struct {
	OK     bool
	Reason string // why not, when !OK
	// MaxThreads caps usable parallelism (std-ranges executes in a
	// single thread, paper §3.1); 0 means no cap.
	MaxThreads int
}

// ModelSupport reports whether a programming model runs on a processor.
func ModelSupport(m ProgModel, p *platform.Processor) Support {
	gpu := p.Kind == platform.GPU
	switch m {
	case CUDA:
		if !gpu || p.Vendor != "NVIDIA" {
			return Support{Reason: "CUDA requires an NVIDIA GPU"}
		}
		return Support{OK: true}
	case OpenCL:
		if !gpu {
			return Support{Reason: "no OpenCL runtime configured for CPU targets"}
		}
		return Support{OK: true}
	case OMP, Kokkos:
		return Support{OK: true} // works everywhere (paper: "OpenMP works on all devices")
	case TBB:
		if gpu {
			return Support{Reason: "TBB targets CPUs only"}
		}
		if p.Arch == platform.AArch64 {
			return Support{Reason: "intel-tbb is not supported on aarch64"}
		}
		return Support{OK: true}
	case StdData, StdIndices:
		if gpu {
			return Support{Reason: "libstdc++ parallel algorithms not offloaded to this GPU stack"}
		}
		return Support{OK: true}
	case StdRanges:
		if gpu {
			return Support{Reason: "libstdc++ parallel algorithms not offloaded to this GPU stack"}
		}
		// Multicore std-ranges is work in progress: single thread only.
		return Support{OK: true, MaxThreads: 1}
	case SYCL:
		if gpu {
			return Support{OK: true}
		}
		if p.Arch == platform.AArch64 {
			return Support{Reason: "no SYCL implementation available on aarch64"}
		}
		return Support{OK: true}
	case MPI, Serial:
		if gpu {
			return Support{Reason: "host-process model does not target GPUs"}
		}
		return Support{OK: true}
	default:
		return Support{Reason: fmt.Sprintf("unknown programming model %q", m)}
	}
}

// bwEfficiency is the calibrated fraction of theoretical peak memory
// bandwidth each model achieves at full parallelism, per microarch.
// Shapes follow §3.1: CUDA/OpenCL near peak on Volta; OpenMP best-utilised
// on the x86 CPUs and weaker on ThunderX2; TBB and std-data/indices close
// to OpenMP on x86; abstraction layers (Kokkos) pay a small overhead.
var bwEfficiency = map[string]map[ProgModel]float64{
	"cascadelake": {
		OMP: 0.80, Kokkos: 0.76, TBB: 0.71,
		StdData: 0.78, StdIndices: 0.77, StdRanges: 0.78,
		SYCL: 0.70, MPI: 0.80, Serial: 0.80,
	},
	"thunderx2": {
		OMP: 0.68, Kokkos: 0.63,
		StdData: 0.31, StdIndices: 0.31, StdRanges: 0.31,
		MPI: 0.70, Serial: 0.70,
	},
	"milan": {
		OMP: 0.82, Kokkos: 0.78, TBB: 0.74,
		StdData: 0.80, StdIndices: 0.79, StdRanges: 0.80,
		SYCL: 0.72, MPI: 0.82, Serial: 0.82,
	},
	"rome": {
		OMP: 0.81, Kokkos: 0.77, TBB: 0.73,
		StdData: 0.79, StdIndices: 0.78, StdRanges: 0.79,
		SYCL: 0.71, MPI: 0.82, Serial: 0.81,
	},
	"volta": {
		CUDA: 0.93, OpenCL: 0.92, Kokkos: 0.88, OMP: 0.70, SYCL: 0.85,
	},
	"host": {
		OMP: 0.80, Kokkos: 0.76, TBB: 0.72,
		StdData: 0.78, StdIndices: 0.77, StdRanges: 0.78,
		SYCL: 0.70, MPI: 0.80, Serial: 0.80,
	},
}

// flEfficiency is the fraction of peak FP64 each model sustains on
// compute-bound loops (less differentiated than bandwidth).
var flEfficiency = map[string]float64{
	"cascadelake": 0.85,
	"thunderx2":   0.75,
	"milan":       0.85,
	"rome":        0.85,
	"volta":       0.90,
	"host":        0.80,
}

// BandwidthEfficiency returns the model's calibrated fraction of peak
// bandwidth on the processor, and whether the combination is supported.
func BandwidthEfficiency(m ProgModel, p *platform.Processor) (float64, bool) {
	if s := ModelSupport(m, p); !s.OK {
		return 0, false
	}
	row, ok := bwEfficiency[p.Microarch]
	if !ok {
		row = bwEfficiency["host"]
	}
	e, ok := row[m]
	if !ok {
		return 0, false
	}
	return e, true
}

// Run describes one on-node execution for the model.
type Run struct {
	Proc  *platform.Processor
	Model ProgModel
	// Threads is the per-process thread count; 0 means all cores.
	Threads int
	// Processes is the number of ranks sharing this node; they divide
	// the node's bandwidth. 0 means 1.
	Processes int
	// SystemFactor scales the result for platform-specific effects
	// beyond the architecture (toolchain age, MPI library quirks;
	// paper §3.3). 0 means 1.0.
	SystemFactor float64
}

func (r Run) normalized() (Run, error) {
	if r.Proc == nil {
		return r, fmt.Errorf("machine: run without processor")
	}
	sup := ModelSupport(r.Model, r.Proc)
	if !sup.OK {
		return r, fmt.Errorf("machine: %s on %s: %s", r.Model, r.Proc, sup.Reason)
	}
	if r.Processes <= 0 {
		r.Processes = 1
	}
	total := r.Proc.TotalCores()
	if r.Threads <= 0 {
		r.Threads = total / r.Processes
		if r.Threads < 1 {
			r.Threads = 1
		}
	}
	if sup.MaxThreads > 0 && r.Threads > sup.MaxThreads {
		r.Threads = sup.MaxThreads
	}
	if r.SystemFactor <= 0 {
		r.SystemFactor = 1
	}
	return r, nil
}

// saturationThreads is the thread count at which a CPU's memory
// bandwidth saturates (roughly a quarter of the cores on the
// architectures studied); GPUs are always saturated.
func saturationThreads(p *platform.Processor) int {
	if p.Kind == platform.GPU {
		return 1
	}
	t := p.TotalCores() / 4
	if t < 1 {
		t = 1
	}
	return t
}

// EffectiveBandwidth predicts the node-level sustained bandwidth (GB/s)
// the run achieves across all its processes.
func EffectiveBandwidth(r Run) (float64, error) {
	r, err := r.normalized()
	if err != nil {
		return 0, err
	}
	eff, ok := BandwidthEfficiency(r.Model, r.Proc)
	if !ok {
		return 0, fmt.Errorf("machine: no bandwidth calibration for %s on %s", r.Model, r.Proc.Microarch)
	}
	active := r.Threads * r.Processes
	sat := saturationThreads(r.Proc)
	s := 1.0
	if r.Proc.Kind != platform.GPU && active < sat {
		s = float64(active) / float64(sat)
	}
	return r.Proc.PeakBandwidthGBs * eff * s * r.SystemFactor, nil
}

// Time predicts the wall-clock seconds for a workload of the given bytes
// and flops under the run, including a deterministic ±1.5% jitter and a
// fixed per-invocation overhead.
func Time(r Run, bytes, flops float64, salt string) (float64, error) {
	bw, err := EffectiveBandwidth(r)
	if err != nil {
		return 0, err
	}
	rn, err := r.normalized()
	if err != nil {
		return 0, err
	}
	fl := rn.Proc.PeakGFlopsFP64 * 1e9 * flEff(rn.Proc) * rn.SystemFactor
	active := float64(rn.Threads*rn.Processes) / float64(rn.Proc.TotalCores())
	if rn.Proc.Kind != platform.GPU && active < 1 {
		fl *= active
	}
	tMem := bytes / (bw * 1e9)
	tFlop := flops / fl
	t := math.Max(tMem, tFlop) + launchOverhead(rn.Proc)
	return t * jitter(salt, rn), nil
}

func flEff(p *platform.Processor) float64 {
	if e, ok := flEfficiency[p.Microarch]; ok {
		return e
	}
	return flEfficiency["host"]
}

// launchOverhead is the fixed kernel/loop launch cost per invocation.
func launchOverhead(p *platform.Processor) float64 {
	if p.Kind == platform.GPU {
		return 8e-6 // kernel launch
	}
	return 2e-6 // parallel-region fork/join
}

// jitter returns a deterministic multiplier in [0.985, 1.015] derived
// from the run parameters, standing in for real-machine run-to-run noise
// while keeping the simulation exactly reproducible.
func jitter(salt string, r Run) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d", salt, r.Proc.Name, r.Model, r.Threads, r.Processes)
	u := float64(h.Sum64()%10007) / 10006.0 // 0..1
	return 0.985 + 0.03*u
}

// Network models the interconnect between nodes of a system.
type Network struct {
	LatencySec   float64 // per-message latency
	BandwidthGBs float64 // per-node injection bandwidth
}

// MessageTime returns the cost of one point-to-point message of the
// given size.
func (n Network) MessageTime(bytes float64) float64 {
	if n.BandwidthGBs <= 0 {
		return n.LatencySec
	}
	return n.LatencySec + bytes/(n.BandwidthGBs*1e9)
}

// AllReduceTime returns the cost of an allreduce of the given payload
// over nranks ranks (binomial-tree model: 2·log2(n) message steps).
func (n Network) AllReduceTime(bytes float64, nranks int) float64 {
	if nranks <= 1 {
		return 0
	}
	steps := 2 * math.Ceil(math.Log2(float64(nranks)))
	return steps * n.MessageTime(bytes)
}

// HaloExchangeTime returns the cost of one halo exchange where each rank
// sends nNeighbors messages of the given size.
func (n Network) HaloExchangeTime(bytesPerMsg float64, nNeighbors int) float64 {
	return float64(nNeighbors) * n.MessageTime(bytesPerMsg)
}
