package machine

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestModelSupportMatrix(t *testing.T) {
	// The "*" cells of Figure 2.
	cases := []struct {
		m    ProgModel
		p    *platform.Processor
		want bool
	}{
		{CUDA, platform.CascadeLake6230, false}, // "CUDA on CPUs"
		{CUDA, platform.TeslaV100, true},
		{TBB, platform.ThunderX2, false}, // "Intel-TBB on Thunder"
		{TBB, platform.CascadeLake6230, true},
		{TBB, platform.EPYCMilan7763, true},
		{OMP, platform.TeslaV100, true}, // "OpenMP works on all devices"
		{OMP, platform.ThunderX2, true},
		{OpenCL, platform.TeslaV100, true},
		{OpenCL, platform.EPYCMilan7763, false},
		{StdRanges, platform.CascadeLake6230, true},
		{StdData, platform.TeslaV100, false},
		{MPI, platform.EPYCRome7742, true},
		{MPI, platform.TeslaV100, false},
	}
	for _, c := range cases {
		got := ModelSupport(c.m, c.p)
		if got.OK != c.want {
			t.Errorf("ModelSupport(%s, %s) = %v (%s), want %v", c.m, c.p, got.OK, got.Reason, c.want)
		}
		if !got.OK && got.Reason == "" {
			t.Errorf("unsupported combination %s/%s must explain why", c.m, c.p)
		}
	}
}

func TestStdRangesSingleThreaded(t *testing.T) {
	s := ModelSupport(StdRanges, platform.EPYCMilan7763)
	if !s.OK || s.MaxThreads != 1 {
		t.Errorf("std-ranges support = %+v, want single-thread cap", s)
	}
	// Its effective bandwidth must be far below std-data's.
	full, err := EffectiveBandwidth(Run{Proc: platform.EPYCMilan7763, Model: StdData})
	if err != nil {
		t.Fatal(err)
	}
	one, err := EffectiveBandwidth(Run{Proc: platform.EPYCMilan7763, Model: StdRanges})
	if err != nil {
		t.Fatal(err)
	}
	if one >= full/4 {
		t.Errorf("std-ranges bw %g should be <1/4 of std-data %g", one, full)
	}
}

func TestFigure2Shapes(t *testing.T) {
	bw := func(m ProgModel, p *platform.Processor) float64 {
		v, err := EffectiveBandwidth(Run{Proc: p, Model: m})
		if err != nil {
			t.Fatalf("%s on %s: %v", m, p, err)
		}
		return v
	}
	// CUDA and OpenCL close to peak on Volta.
	if e := bw(CUDA, platform.TeslaV100) / platform.TeslaV100.PeakBandwidthGBs; e < 0.90 {
		t.Errorf("CUDA/Volta efficiency %g, want >= 0.90", e)
	}
	if e := bw(OpenCL, platform.TeslaV100) / platform.TeslaV100.PeakBandwidthGBs; e < 0.88 {
		t.Errorf("OpenCL/Volta efficiency %g, want >= 0.88", e)
	}
	// OpenMP better utilised on Intel/AMD than on ThunderX2.
	intelEff := bw(OMP, platform.CascadeLake6230) / platform.CascadeLake6230.PeakBandwidthGBs
	amdEff := bw(OMP, platform.EPYCMilan7763) / platform.EPYCMilan7763.PeakBandwidthGBs
	tx2Eff := bw(OMP, platform.ThunderX2) / platform.ThunderX2.PeakBandwidthGBs
	if intelEff <= tx2Eff || amdEff <= tx2Eff {
		t.Errorf("OpenMP efficiency: intel %g amd %g tx2 %g; x86 should lead", intelEff, amdEff, tx2Eff)
	}
	// Kokkos (abstraction) pays a small overhead vs its OpenMP backend.
	if bw(Kokkos, platform.EPYCMilan7763) >= bw(OMP, platform.EPYCMilan7763) {
		t.Error("Kokkos should not beat its OpenMP backend")
	}
	// std-data and std-indices roughly agree; std-ranges much slower.
	d := bw(StdData, platform.CascadeLake6230)
	i := bw(StdIndices, platform.CascadeLake6230)
	r := bw(StdRanges, platform.CascadeLake6230)
	if math.Abs(d-i)/d > 0.1 {
		t.Errorf("std-data %g vs std-indices %g disagree by >10%%", d, i)
	}
	if r >= d/3 {
		t.Errorf("std-ranges %g should trail std-data %g heavily", r, d)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	p := platform.EPYCRome7742 // 128 cores, saturates ~32 threads
	low, _ := EffectiveBandwidth(Run{Proc: p, Model: OMP, Threads: 8})
	mid, _ := EffectiveBandwidth(Run{Proc: p, Model: OMP, Threads: 32})
	high, _ := EffectiveBandwidth(Run{Proc: p, Model: OMP, Threads: 128})
	if !(low < mid) {
		t.Errorf("bandwidth should grow below saturation: %g !< %g", low, mid)
	}
	if math.Abs(mid-high)/high > 0.01 {
		t.Errorf("bandwidth should be flat past saturation: %g vs %g", mid, high)
	}
	// Processes count toward saturation like threads.
	proc16, _ := EffectiveBandwidth(Run{Proc: p, Model: MPI, Threads: 1, Processes: 16})
	thread16, _ := EffectiveBandwidth(Run{Proc: p, Model: OMP, Threads: 16})
	ratio := proc16 / thread16
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("16 ranks vs 16 threads should be comparable: %g vs %g", proc16, thread16)
	}
}

func TestTimeRoofline(t *testing.T) {
	p := platform.CascadeLake6230
	// A memory-bound workload: 100 GB moved, trivial flops.
	tMem, err := Time(Run{Proc: p, Model: OMP}, 100e9, 1e6, "t1")
	if err != nil {
		t.Fatal(err)
	}
	// Expected ~100/(282*0.80) = 0.443 s, within jitter+overhead.
	want := 100.0 / (282 * 0.80)
	if tMem < want*0.95 || tMem > want*1.1 {
		t.Errorf("memory-bound time = %g, want ~%g", tMem, want)
	}
	// A compute-bound workload: 1e13 flops, tiny bytes.
	tFl, err := Time(Run{Proc: p, Model: OMP}, 1e6, 1e13, "t2")
	if err != nil {
		t.Fatal(err)
	}
	wantFl := 1e13 / (p.PeakGFlopsFP64 * 1e9 * 0.85)
	if tFl < wantFl*0.95 || tFl > wantFl*1.1 {
		t.Errorf("compute-bound time = %g, want ~%g", tFl, wantFl)
	}
}

func TestTimeDeterministic(t *testing.T) {
	r := Run{Proc: platform.EPYCMilan7763, Model: OMP}
	a, _ := Time(r, 1e9, 1e9, "same")
	b, _ := Time(r, 1e9, 1e9, "same")
	if a != b {
		t.Error("prediction must be deterministic")
	}
	c, _ := Time(r, 1e9, 1e9, "different-salt")
	if a == c {
		t.Error("different salts should jitter differently")
	}
	// Jitter is small.
	if math.Abs(a-c)/a > 0.04 {
		t.Errorf("jitter too large: %g vs %g", a, c)
	}
}

func TestTimeUnsupportedModel(t *testing.T) {
	if _, err := Time(Run{Proc: platform.CascadeLake6230, Model: CUDA}, 1e9, 0, ""); err == nil {
		t.Error("CUDA on a CPU must error")
	}
	if _, err := Time(Run{Model: OMP}, 1e9, 0, ""); err == nil {
		t.Error("nil processor must error")
	}
}

func TestSystemFactor(t *testing.T) {
	if SystemFactor("csd3") != 1.0 {
		t.Error("csd3 factor should be 1.0")
	}
	// Isambard MACS's stack penalty (Table 4's 4x gap vs CSD3).
	if f := SystemFactor("isambard-macs"); f > 0.3 {
		t.Errorf("isambard-macs factor = %g, want << 1", f)
	}
	if SystemFactor("unknown-system") != 1.0 {
		t.Error("unknown systems default to 1.0")
	}
	// The factor must flow into bandwidth.
	base, _ := EffectiveBandwidth(Run{Proc: platform.CascadeLake6230, Model: MPI})
	scaled, _ := EffectiveBandwidth(Run{Proc: platform.CascadeLake6230, Model: MPI, SystemFactor: 0.25})
	if math.Abs(scaled-0.25*base)/base > 1e-9 {
		t.Errorf("system factor not applied: %g vs %g", scaled, base)
	}
}

func TestNetworkModel(t *testing.T) {
	n := NetworkFor("archer2")
	if n.LatencySec <= 0 || n.BandwidthGBs <= 0 {
		t.Fatal("archer2 network unconfigured")
	}
	// Tiny message: latency-dominated.
	small := n.MessageTime(8)
	if small < n.LatencySec || small > 2*n.LatencySec {
		t.Errorf("small message time %g vs latency %g", small, n.LatencySec)
	}
	// Large message: bandwidth-dominated.
	big := n.MessageTime(1e9)
	if big < 1e9/(n.BandwidthGBs*1e9) {
		t.Errorf("big message too fast: %g", big)
	}
	// Allreduce grows logarithmically.
	a4 := n.AllReduceTime(8, 4)
	a16 := n.AllReduceTime(8, 16)
	if a16 <= a4 {
		t.Error("allreduce should grow with ranks")
	}
	if a16 > 2.1*a4 {
		t.Errorf("allreduce growth not logarithmic: %g vs %g", a4, a16)
	}
	if n.AllReduceTime(8, 1) != 0 {
		t.Error("single-rank allreduce is free")
	}
	// COSMA8's fabric has lower latency than ARCHER2's (Table 4 l2
	// crossover).
	if NetworkFor("cosma8").LatencySec >= NetworkFor("archer2").LatencySec {
		t.Error("cosma8 should have lower latency than archer2")
	}
	// Unknown systems get a generic fabric.
	if NetworkFor("nowhere").LatencySec <= 0 {
		t.Error("default network missing")
	}
}

func TestHaloExchange(t *testing.T) {
	n := Network{LatencySec: 1e-6, BandwidthGBs: 10}
	got := n.HaloExchangeTime(1e6, 6)
	want := 6 * (1e-6 + 1e6/10e9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("halo = %g, want %g", got, want)
	}
}

func TestAllModelsListsFigure2Rows(t *testing.T) {
	ms := AllModels()
	if len(ms) != 8 {
		t.Fatalf("AllModels = %v", ms)
	}
	if ms[0] != Kokkos || ms[7] != StdRanges {
		t.Errorf("row order = %v", ms)
	}
}

func TestUnknownMicroarchFallsBack(t *testing.T) {
	p := &platform.Processor{
		Vendor: "ACME", Name: "Rocket", Microarch: "rocket1",
		Kind: platform.CPU, Arch: platform.X86_64,
		Sockets: 1, CoresPerSocket: 16, ClockGHz: 3,
		PeakBandwidthGBs: 100, PeakGFlopsFP64: 500,
	}
	bw, err := EffectiveBandwidth(Run{Proc: p, Model: OMP})
	if err != nil {
		t.Fatal(err)
	}
	if bw <= 0 || bw > 100 {
		t.Errorf("fallback bandwidth = %g", bw)
	}
}

func TestModelSupportFullMatrix(t *testing.T) {
	// Every (model, processor) pair must produce a decision — no panics,
	// and unsupported combinations always carry a reason.
	procs := append(platform.Table1Processors(), platform.EPYCRome7742, platform.CascadeLake8276)
	models := append(AllModels(), SYCL, MPI, Serial, ProgModel("made-up"))
	for _, p := range procs {
		for _, m := range models {
			s := ModelSupport(m, p)
			if !s.OK && s.Reason == "" {
				t.Errorf("%s on %s: unsupported without reason", m, p)
			}
			if m == ProgModel("made-up") && s.OK {
				t.Errorf("unknown model supported on %s", p)
			}
		}
	}
	// SYCL: GPU yes, x86 yes, aarch64 no; Serial/MPI: CPUs only.
	if !ModelSupport(SYCL, platform.TeslaV100).OK {
		t.Error("SYCL should run on Volta")
	}
	if ModelSupport(SYCL, platform.ThunderX2).OK {
		t.Error("SYCL should not run on ThunderX2")
	}
	if ModelSupport(Serial, platform.TeslaV100).OK {
		t.Error("serial model should not target GPUs")
	}
}

func TestBandwidthEfficiencyUnsupported(t *testing.T) {
	if _, ok := BandwidthEfficiency(CUDA, platform.CascadeLake6230); ok {
		t.Error("unsupported combination returned an efficiency")
	}
	// volta has no TBB calibration row entry and is unsupported anyway.
	if _, ok := BandwidthEfficiency(TBB, platform.TeslaV100); ok {
		t.Error("TBB on volta returned an efficiency")
	}
	// SYCL on ThunderX2: supported=false.
	if _, ok := BandwidthEfficiency(SYCL, platform.ThunderX2); ok {
		t.Error("SYCL on TX2 returned an efficiency")
	}
}

func TestGPULaunchOverheadExceedsCPU(t *testing.T) {
	// Tiny workloads are overhead-dominated; the GPU pays more per
	// launch than a CPU parallel region.
	gpu, err := Time(Run{Proc: platform.TeslaV100, Model: CUDA}, 8, 1, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := Time(Run{Proc: platform.CascadeLake6230, Model: OMP}, 8, 1, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if gpu <= cpu {
		t.Errorf("GPU launch overhead %g should exceed CPU %g for tiny work", gpu, cpu)
	}
}

func TestMessageTimeZeroBandwidth(t *testing.T) {
	n := Network{LatencySec: 2e-6}
	if got := n.MessageTime(1e9); got != 2e-6 {
		t.Errorf("zero-bandwidth network should be latency-only: %g", got)
	}
}

func TestFlopEfficiencyFallback(t *testing.T) {
	odd := &platform.Processor{
		Vendor: "X", Name: "Y", Microarch: "unknown-uarch",
		Kind: platform.CPU, Arch: platform.X86_64,
		Sockets: 1, CoresPerSocket: 4, ClockGHz: 2,
		PeakBandwidthGBs: 50, PeakGFlopsFP64: 100,
	}
	tm, err := Time(Run{Proc: odd, Model: OMP}, 1e3, 1e12, "flop-bound")
	if err != nil {
		t.Fatal(err)
	}
	want := 1e12 / (100e9 * 0.80) // host fallback flop efficiency
	if tm < want*0.9 || tm > want*1.15 {
		t.Errorf("fallback flop time = %g, want ~%g", tm, want)
	}
}
