package machine

// Per-system calibration: effects of the *platform* (software stack,
// MPI library, toolchain age) beyond the processor architecture. The
// paper's §3.3 observes exactly this — two Cascade Lake systems (CSD3 and
// Isambard MACS) differ by ~4x on HPGMG, and two Rome systems (ARCHER2
// and COSMA8) swap order between multigrid levels — and argues that
// cross-system benchmarking is necessary precisely because such factors
// exist. The constants below are fitted to reproduce those reported
// shapes (Table 4); see EXPERIMENTS.md for paper-vs-model numbers.

// systemFactors scale throughput for platform-specific software effects
// on multi-node runs (the framework applies them only when a job spans
// more than one node — single-node runs see the architecture's own
// efficiency, which is why Isambard MACS posts normal HPCG numbers in
// Table 2 yet collapses on the 4-node HPGMG runs of Table 4).
// 1.0 = the architecture's calibrated efficiency.
var systemFactors = map[string]float64{
	"archer2":       1.00,  // Cray PE, well-tuned stack
	"cosma8":        0.86,  // mvapich2 2.3.6 + mpirun binding overhead
	"csd3":          1.00,  // recent OpenMPI + srun binding
	"isambard-macs": 0.245, // small test system: older OpenMPI 4.0.3, gcc 9.2, no tuned PE
	"isambard-xci":  0.90,
	"noctua2":       1.00,
	"local":         1.00,
}

// SystemFactor returns the platform factor for a system name (1.0 when
// unknown).
func SystemFactor(system string) float64 {
	if f, ok := systemFactors[system]; ok {
		return f
	}
	return 1.0
}

// networks gives the interconnect model per system. Latencies dominate
// the small coarse-grid levels of multigrid (HPGMG l2), which is where
// COSMA8's low-latency fabric overtakes ARCHER2 in Table 4.
var networks = map[string]Network{
	"archer2": {LatencySec: 2.6e-6, BandwidthGBs: 25.0}, // Slingshot-10
	"cosma8":  {LatencySec: 1.0e-6, BandwidthGBs: 24.0}, // HDR200 InfiniBand
	// CSD3's effective per-message cost is dominated by MPI software
	// overheads in this configuration (Table 4 shows its l2 rate at 39%
	// of l0, the steepest small-problem falloff of the Rome/CL systems).
	"csd3": {LatencySec: 6.5e-6, BandwidthGBs: 12.5},
	// Isambard MACS is a small test system with an untuned OpenMPI over
	// a commodity fabric; its per-message cost is an order of magnitude
	// above the production machines.
	"isambard-macs": {LatencySec: 12e-6, BandwidthGBs: 12.5},
	"isambard-xci":  {LatencySec: 1.4e-6, BandwidthGBs: 14.0}, // Aries
	"noctua2":       {LatencySec: 1.2e-6, BandwidthGBs: 25.0},
	"local":         {LatencySec: 0.3e-6, BandwidthGBs: 20.0}, // shared memory
}

// NetworkFor returns the interconnect model for a system, with a generic
// cluster fabric for unknown systems.
func NetworkFor(system string) Network {
	if n, ok := networks[system]; ok {
		return n
	}
	return Network{LatencySec: 2.0e-6, BandwidthGBs: 12.5}
}
