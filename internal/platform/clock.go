package platform

import "time"

// nowSeconds returns a monotonic wall-clock reading in seconds.
func nowSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
