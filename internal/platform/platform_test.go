package platform

import (
	"math"
	"testing"
)

func TestTable1Peaks(t *testing.T) {
	// Table 1: peak memory bandwidth per node.
	cases := []struct {
		p    *Processor
		want float64
	}{
		{CascadeLake6230, 282},
		{ThunderX2, 288},
		{EPYCMilan7763, 409.6},
		{TeslaV100, 900},
	}
	for _, c := range cases {
		if c.p.PeakBandwidthGBs != c.want {
			t.Errorf("%s peak BW = %g, want %g", c.p, c.p.PeakBandwidthGBs, c.want)
		}
	}
	rows := Table1Processors()
	if len(rows) != 4 {
		t.Fatalf("Table1Processors returned %d rows", len(rows))
	}
	if rows[0] != CascadeLake6230 || rows[3] != TeslaV100 {
		t.Error("Table 1 row order wrong")
	}
}

func TestTable5CoreCounts(t *testing.T) {
	// Table 5: cores/socket and socket counts.
	cases := []struct {
		p              *Processor
		coresPerSocket int
		sockets        int
		clock          float64
	}{
		{ThunderX2, 32, 2, 2.5},
		{CascadeLake6230, 20, 2, 2.1},
		{EPYCRome7H12, 64, 2, 2.6},
		{EPYCRome7742, 64, 2, 2.25},
		{CascadeLake8276, 28, 2, 2.2},
		{EPYCMilan7763, 64, 2, 2.45},
	}
	for _, c := range cases {
		if c.p.CoresPerSocket != c.coresPerSocket || c.p.Sockets != c.sockets {
			t.Errorf("%s: %dx%d, want %dx%d", c.p, c.p.Sockets, c.p.CoresPerSocket, c.sockets, c.coresPerSocket)
		}
		if math.Abs(c.p.ClockGHz-c.clock) > 1e-9 {
			t.Errorf("%s clock = %g, want %g", c.p, c.p.ClockGHz, c.clock)
		}
	}
}

func TestMilanCacheForcesLargeArray(t *testing.T) {
	// §3.1: Milan has 256 MB/socket L3 = 512 MB/node, so the 2^25
	// array (768 MB total over three arrays... actually 2^25 doubles =
	// 256MB/array) would NOT defeat its cache; the 2^29 size is needed.
	if got := EPYCMilan7763.L3CacheTotalMB(); got != 512 {
		t.Errorf("Milan node L3 = %g MB, want 512", got)
	}
	if got := CascadeLake6230.L3CacheTotalMB(); got != 55 {
		t.Errorf("Cascade Lake node L3 = %g MB, want 55", got)
	}
}

func TestEstateLookup(t *testing.T) {
	e := UKEstate()
	for _, name := range []string{"archer2", "cosma8", "csd3", "isambard-xci", "isambard-macs", "noctua2", "local"} {
		if _, err := e.System(name); err != nil {
			t.Errorf("System(%q): %v", name, err)
		}
	}
	// Aliases from the paper's Figure 2 row labels.
	s, err := e.System("paderborn-milan")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "noctua2" {
		t.Errorf("paderborn-milan resolved to %q", s.Name)
	}
	if _, err := e.System("frontier"); err == nil {
		t.Error("unknown system must error")
	}
}

func TestResolvePartitionSyntax(t *testing.T) {
	e := UKEstate()
	sys, part, err := e.Resolve("isambard-macs:cascadelake")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "isambard-macs" || part.Name != "cascadelake" {
		t.Errorf("resolved %s:%s", sys.Name, part.Name)
	}
	if part.Processor != CascadeLake6230 {
		t.Error("wrong processor on cascadelake partition")
	}
	_, volta, err := e.Resolve("isambard-macs:volta")
	if err != nil {
		t.Fatal(err)
	}
	if volta.Device() != GPU {
		t.Error("volta partition should be a GPU")
	}
	// Single-partition systems need no partition name.
	_, part, err = e.Resolve("archer2")
	if err != nil {
		t.Fatal(err)
	}
	if part.Name != "compute" {
		t.Errorf("archer2 default partition = %q", part.Name)
	}
	// Multi-partition systems do.
	if _, _, err := e.Resolve("isambard-macs"); err == nil {
		t.Error("ambiguous partition must error")
	}
	if _, _, err := e.Resolve("archer2:gpu"); err == nil {
		t.Error("unknown partition must error")
	}
}

func TestEstateValidation(t *testing.T) {
	e := NewEstate()
	if err := e.Add(&System{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := e.Add(&System{Name: "s"}); err == nil {
		t.Error("no partitions accepted")
	}
	bad := &System{Name: "s", Partitions: []Partition{{Name: "p", Nodes: 1}}}
	if err := e.Add(bad); err == nil {
		t.Error("nil processor accepted")
	}
	ok := &System{Name: "s", Partitions: []Partition{{Name: "p", Processor: ThunderX2, Nodes: 1}}}
	if err := e.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(ok); err == nil {
		t.Error("duplicate system accepted")
	}
	dupAlias := &System{Name: "s2", Aliases: []string{"s3", "s3"}, Partitions: []Partition{{Name: "p", Processor: ThunderX2, Nodes: 1}}}
	if err := e.Add(dupAlias); err == nil {
		t.Error("duplicate alias accepted")
	}
}

func TestSchedulersMatchSites(t *testing.T) {
	e := UKEstate()
	want := map[string]string{
		"archer2:compute":           "slurm",
		"csd3:cascadelake":          "slurm",
		"cosma8:compute":            "slurm",
		"noctua2:milan":             "slurm",
		"isambard-xci:compute":      "pbs",
		"isambard-macs:cascadelake": "pbs",
		"local:default":             "local",
	}
	for target, sched := range want {
		_, part, err := e.Resolve(target)
		if err != nil {
			t.Errorf("%s: %v", target, err)
			continue
		}
		if part.Scheduler != sched {
			t.Errorf("%s scheduler = %q, want %q", target, part.Scheduler, sched)
		}
	}
}

func TestHostProcessor(t *testing.T) {
	p := HostProcessor()
	if p.TotalCores() <= 0 {
		t.Error("host must have cores")
	}
	if p.PeakBandwidthGBs <= 0 {
		t.Error("host bandwidth estimate must be positive")
	}
	// Cached: same pointer on second call.
	if HostProcessor() != p {
		t.Error("HostProcessor must cache")
	}
}

func TestDeviceKindString(t *testing.T) {
	if CPU.String() != "cpu" || GPU.String() != "gpu" {
		t.Error("DeviceKind strings wrong")
	}
}

func TestPeakFlopsSanity(t *testing.T) {
	// Rough sanity: V100 FP64 ~7 TF; Rome node > Cascade Lake node in
	// bandwidth but AVX-512 keeps CL competitive in flops.
	if TeslaV100.PeakGFlopsFP64 < 6000 || TeslaV100.PeakGFlopsFP64 > 8000 {
		t.Errorf("V100 peak = %g", TeslaV100.PeakGFlopsFP64)
	}
	if EPYCRome7742.PeakBandwidthGBs <= CascadeLake6230.PeakBandwidthGBs {
		t.Error("Rome node bandwidth should exceed Cascade Lake")
	}
}
