package platform

// Processor database. Peak memory bandwidths follow Table 1 of the paper;
// processor details follow Table 5. Peak FLOP rates are derived from
// core count × clock × FP64 FMA width (vector lanes × 2 ops × FMA units)
// for each microarchitecture.

// CascadeLake6230 is the Isambard MACS Intel Xeon Gold 6230
// (20 cores/socket, dual socket, 2.1 GHz, AVX-512).
var CascadeLake6230 = &Processor{
	Vendor:             "Intel",
	Name:               "Xeon Gold 6230",
	Microarch:          "cascadelake",
	Kind:               CPU,
	Arch:               X86_64,
	Sockets:            2,
	CoresPerSocket:     20,
	ClockGHz:           2.1,
	L3CachePerSocketMB: 27.5,
	MemoryGB:           192,
	NUMADomains:        2,
	PeakBandwidthGBs:   282, // 2 x 140.784 (Table 1)
	PeakGFlopsFP64:     2 * 20 * 2.1 * 32,
	TDPWatts:           250,
}

// CascadeLake8276 is the CSD3 Intel Xeon Platinum 8276
// (28 cores/socket, dual socket, 2.2 GHz).
var CascadeLake8276 = &Processor{
	Vendor:             "Intel",
	Name:               "Xeon Platinum 8276",
	Microarch:          "cascadelake",
	Kind:               CPU,
	Arch:               X86_64,
	Sockets:            2,
	CoresPerSocket:     28,
	ClockGHz:           2.2,
	L3CachePerSocketMB: 38.5,
	MemoryGB:           384,
	NUMADomains:        2,
	PeakBandwidthGBs:   282, // same six-channel DDR4-2933 memory system
	PeakGFlopsFP64:     2 * 28 * 2.2 * 32,
	TDPWatts:           330,
}

// ThunderX2 is the Isambard Marvell ThunderX2 (32 cores/socket, dual
// socket, 2.5 GHz, 128-bit NEON).
var ThunderX2 = &Processor{
	Vendor:             "Marvell",
	Name:               "ThunderX2",
	Microarch:          "thunderx2",
	Kind:               CPU,
	Arch:               AArch64,
	Sockets:            2,
	CoresPerSocket:     32,
	ClockGHz:           2.5,
	L3CachePerSocketMB: 32,
	MemoryGB:           256,
	NUMADomains:        2,
	PeakBandwidthGBs:   288, // Table 1
	PeakGFlopsFP64:     2 * 32 * 2.5 * 8,
	TDPWatts:           360,
}

// EPYCRome7742 is the ARCHER2 AMD EPYC 7742 (64 cores/socket, dual
// socket, 2.25 GHz, AVX2).
var EPYCRome7742 = &Processor{
	Vendor:             "AMD",
	Name:               "EPYC 7742",
	Microarch:          "rome",
	Kind:               CPU,
	Arch:               X86_64,
	Sockets:            2,
	CoresPerSocket:     64,
	ClockGHz:           2.25,
	L3CachePerSocketMB: 256,
	MemoryGB:           256,
	NUMADomains:        8,
	PeakBandwidthGBs:   409.6, // 2 x 204.8, eight-channel DDR4-3200
	PeakGFlopsFP64:     2 * 64 * 2.25 * 16,
	TDPWatts:           450,
}

// EPYCRome7H12 is the COSMA8 AMD EPYC 7H12 (64 cores/socket, dual
// socket, 2.6 GHz).
var EPYCRome7H12 = &Processor{
	Vendor:             "AMD",
	Name:               "EPYC 7H12",
	Microarch:          "rome",
	Kind:               CPU,
	Arch:               X86_64,
	Sockets:            2,
	CoresPerSocket:     64,
	ClockGHz:           2.6,
	L3CachePerSocketMB: 256,
	MemoryGB:           1024,
	NUMADomains:        8,
	PeakBandwidthGBs:   409.6,
	PeakGFlopsFP64:     2 * 64 * 2.6 * 16,
	TDPWatts:           560,
}

// EPYCMilan7763 is the Noctua2 (Paderborn) AMD EPYC 7763 (64
// cores/socket, dual socket, 2.45 GHz). The paper's §3.1 notes its 256 MB
// per-socket L3, which forces the 2^29 BabelStream array size.
var EPYCMilan7763 = &Processor{
	Vendor:             "AMD",
	Name:               "EPYC 7763",
	Microarch:          "milan",
	Kind:               CPU,
	Arch:               X86_64,
	Sockets:            2,
	CoresPerSocket:     64,
	ClockGHz:           2.45,
	L3CachePerSocketMB: 256,
	MemoryGB:           512,
	NUMADomains:        8,
	PeakBandwidthGBs:   409.6, // 2 x 204.8 (Table 1 "Milan")
	PeakGFlopsFP64:     2 * 64 * 2.45 * 16,
	TDPWatts:           560,
}

// TeslaV100 is the Isambard MACS NVIDIA Tesla V100 PCIe 16 GB (80 SMs).
var TeslaV100 = &Processor{
	Vendor:             "NVIDIA",
	Name:               "Tesla V100 PCIe 16GB",
	Microarch:          "volta",
	Kind:               GPU,
	Arch:               PTX,
	Sockets:            1,
	CoresPerSocket:     80, // streaming multiprocessors (Table 1 "Compute Units")
	ClockGHz:           1.38,
	L3CachePerSocketMB: 6,
	MemoryGB:           16,
	NUMADomains:        1,
	PeakBandwidthGBs:   900, // Table 1
	PeakGFlopsFP64:     7000,
	TDPWatts:           250,
}

// Table1Processors lists the four processors of the paper's Table 1 in
// row order: Cascade Lake, ThunderX2, Milan, V100.
func Table1Processors() []*Processor {
	return []*Processor{CascadeLake6230, ThunderX2, EPYCMilan7763, TeslaV100}
}

// UKEstate returns the systems of the study (Table 5) plus a "local"
// pseudo-system for host execution. Partition scheduler/launcher choices
// follow the real machines: ARCHER2 and CSD3 and Noctua2 run SLURM,
// Isambard runs PBS, COSMA8 runs SLURM.
func UKEstate() *Estate {
	e := NewEstate()
	e.MustAdd(&System{
		Name:    "isambard-xci",
		Site:    "GW4 Isambard",
		Aliases: []string{"isambard"},
		Partitions: []Partition{{
			Name:      "compute",
			Processor: ThunderX2,
			Nodes:     329,
			Scheduler: "pbs",
			Launcher:  "aprun",
			Environs:  []string{"gcc", "cce"},
		}},
	})
	e.MustAdd(&System{
		Name: "isambard-macs",
		Site: "GW4 Isambard Multi-Architecture Comparison System",
		Partitions: []Partition{
			{
				Name:      "cascadelake",
				Processor: CascadeLake6230,
				Nodes:     4,
				Scheduler: "pbs",
				Launcher:  "mpirun",
				Environs:  []string{"gcc", "oneapi"},
			},
			{
				Name:      "volta",
				Processor: TeslaV100,
				Nodes:     2,
				Scheduler: "pbs",
				Launcher:  "mpirun",
				Environs:  []string{"gcc", "cuda"},
			},
		},
	})
	e.MustAdd(&System{
		Name: "archer2",
		Site: "EPCC",
		Partitions: []Partition{{
			Name:      "compute",
			Processor: EPYCRome7742,
			Nodes:     5860,
			Scheduler: "slurm",
			Launcher:  "srun",
			Environs:  []string{"gcc", "cce"},
		}},
	})
	e.MustAdd(&System{
		Name: "cosma8",
		Site: "DiRAC Durham",
		Partitions: []Partition{{
			Name:      "compute",
			Processor: EPYCRome7H12,
			Nodes:     360,
			Scheduler: "slurm",
			Launcher:  "mpirun",
			Environs:  []string{"gcc", "oneapi"},
		}},
	})
	e.MustAdd(&System{
		Name: "csd3",
		Site: "Cambridge",
		Partitions: []Partition{{
			Name:      "cascadelake",
			Processor: CascadeLake8276,
			Nodes:     672,
			Scheduler: "slurm",
			Launcher:  "srun",
			Environs:  []string{"gcc", "oneapi"},
		}},
	})
	e.MustAdd(&System{
		Name:    "noctua2",
		Site:    "NHR Paderborn PC2",
		Aliases: []string{"paderborn-milan"},
		Partitions: []Partition{{
			Name:      "milan",
			Processor: EPYCMilan7763,
			Nodes:     990,
			Scheduler: "slurm",
			Launcher:  "srun",
			Environs:  []string{"gcc", "oneapi"},
		}},
	})
	e.MustAdd(LocalSystem())
	return e
}

// LocalSystem describes the host this process runs on as a
// single-partition system with the "local" scheduler and launcher, used
// for real (non-simulated) benchmark execution.
func LocalSystem() *System {
	return &System{
		Name: "local",
		Site: "localhost",
		Partitions: []Partition{{
			Name:      "default",
			Processor: HostProcessor(),
			Nodes:     1,
			Scheduler: "local",
			Launcher:  "local",
			Environs:  []string{"go"},
		}},
	}
}
