// Package platform models the hardware side of a "platform" in the
// paper's sense (Figure 1, after Pennycook et al.): the processors and
// systems benchmarks run on, with the theoretical peak figures needed to
// turn raw Figures of Merit into efficiencies (Principle 1).
//
// The database reproduces Table 1 (peak memory bandwidths used for the
// BabelStream efficiency figure) and Table 5 (the UK HPC systems used in
// the study).
package platform

import (
	"fmt"
	"sort"
)

// DeviceKind distinguishes the broad device classes of the study.
type DeviceKind int

const (
	CPU DeviceKind = iota
	GPU
)

func (k DeviceKind) String() string {
	if k == GPU {
		return "gpu"
	}
	return "cpu"
}

// Arch is the instruction-set family, used for package conflicts (e.g.
// intel-tbb unsupported on aarch64) and model-support decisions.
type Arch string

const (
	X86_64  Arch = "x86_64"
	AArch64 Arch = "aarch64"
	PTX     Arch = "ptx" // NVIDIA GPU
)

// Processor describes one processor model with its theoretical peaks.
// Peak figures are per full node (all sockets) to match how the paper
// normalises BabelStream results in Figure 2.
type Processor struct {
	Vendor    string
	Name      string // marketing name, e.g. "Xeon Gold 6230"
	Microarch string // e.g. "cascadelake", "rome", "milan", "thunderx2", "volta"
	Kind      DeviceKind
	Arch      Arch

	Sockets        int
	CoresPerSocket int // or compute units for GPUs (Sockets==1)
	ClockGHz       float64

	L3CachePerSocketMB float64
	MemoryGB           float64
	NUMADomains        int

	// PeakBandwidthGBs is the node-level theoretical peak memory
	// bandwidth (Table 1's "Peak Memory Bandwidth").
	PeakBandwidthGBs float64
	// PeakGFlopsFP64 is the node-level theoretical peak double-precision
	// rate, for flop-bound efficiency calculations.
	PeakGFlopsFP64 float64
	// TDPWatts is the node-level thermal design power (all sockets),
	// used for the energy estimates the paper lists as future work.
	TDPWatts float64
}

// EnergyEstimateJ estimates the energy one node consumes over the given
// wall-clock seconds, assuming the benchmark drives the package at TDP —
// the simple bound the framework records with each run.
func (p *Processor) EnergyEstimateJ(seconds float64) float64 {
	return p.TDPWatts * seconds
}

// TotalCores returns the core (or CU) count across sockets.
func (p *Processor) TotalCores() int { return p.Sockets * p.CoresPerSocket }

// L3CacheTotalMB returns the whole-node last-level cache size, used to
// pick BabelStream array sizes that defeat caching (paper §3.1).
func (p *Processor) L3CacheTotalMB() float64 {
	return float64(p.Sockets) * p.L3CachePerSocketMB
}

// String renders "Vendor Name (microarch)".
func (p *Processor) String() string {
	return fmt.Sprintf("%s %s (%s)", p.Vendor, p.Name, p.Microarch)
}

// Partition is a homogeneous set of nodes within a system, mirroring the
// ReFrame partition concept.
type Partition struct {
	Name      string
	Processor *Processor
	Nodes     int
	// Scheduler and Launcher name how jobs are started here; values are
	// resolved by internal/scheduler and internal/launcher.
	Scheduler string // "slurm", "pbs", "local"
	Launcher  string // "srun", "mpirun", "aprun", "local"
	// Environs names the programming environments usable on the
	// partition (matched against env configs).
	Environs []string
}

// Device returns the partition's device kind.
func (p *Partition) Device() DeviceKind { return p.Processor.Kind }

// System is one HPC machine with one or more partitions.
type System struct {
	Name       string
	Site       string
	Aliases    []string // alternative names used in the paper (e.g. paderborn-milan)
	Partitions []Partition
}

// Partition returns the named partition; with name "" and exactly one
// partition, that partition is returned.
func (s *System) Partition(name string) (*Partition, error) {
	if name == "" {
		if len(s.Partitions) == 1 {
			return &s.Partitions[0], nil
		}
		return nil, fmt.Errorf("platform: system %s has %d partitions; one must be named", s.Name, len(s.Partitions))
	}
	for i := range s.Partitions {
		if s.Partitions[i].Name == name {
			return &s.Partitions[i], nil
		}
	}
	return nil, fmt.Errorf("platform: system %s has no partition %q", s.Name, name)
}

// Estate is the collection of systems the framework knows, the "stable of
// supercomputing resources" of the abstract.
type Estate struct {
	systems map[string]*System
	aliases map[string]string
}

// NewEstate returns an empty estate.
func NewEstate() *Estate {
	return &Estate{systems: map[string]*System{}, aliases: map[string]string{}}
}

// Add registers a system and its aliases.
func (e *Estate) Add(s *System) error {
	if s.Name == "" {
		return fmt.Errorf("platform: system with empty name")
	}
	if _, dup := e.systems[s.Name]; dup {
		return fmt.Errorf("platform: duplicate system %q", s.Name)
	}
	if len(s.Partitions) == 0 {
		return fmt.Errorf("platform: system %q has no partitions", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if seen[p.Name] {
			return fmt.Errorf("platform: system %q: duplicate partition %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Processor == nil {
			return fmt.Errorf("platform: system %q partition %q has no processor", s.Name, p.Name)
		}
		if p.Nodes <= 0 {
			return fmt.Errorf("platform: system %q partition %q has no nodes", s.Name, p.Name)
		}
	}
	e.systems[s.Name] = s
	for _, a := range s.Aliases {
		if _, dup := e.aliases[a]; dup {
			return fmt.Errorf("platform: duplicate alias %q", a)
		}
		e.aliases[a] = s.Name
	}
	return nil
}

// MustAdd is Add for statically known-good systems.
func (e *Estate) MustAdd(s *System) {
	if err := e.Add(s); err != nil {
		panic(err)
	}
}

// System resolves a system by name or alias.
func (e *Estate) System(name string) (*System, error) {
	if s, ok := e.systems[name]; ok {
		return s, nil
	}
	if canonical, ok := e.aliases[name]; ok {
		return e.systems[canonical], nil
	}
	return nil, fmt.Errorf("platform: unknown system %q (known: %v)", name, e.Names())
}

// Resolve splits "system:partition" syntax (as used on the ReFrame
// command line, e.g. isambard-macs:cascadelake) and returns both halves.
func (e *Estate) Resolve(target string) (*System, *Partition, error) {
	sysName, partName := target, ""
	for i := 0; i < len(target); i++ {
		if target[i] == ':' {
			sysName, partName = target[:i], target[i+1:]
			break
		}
	}
	sys, err := e.System(sysName)
	if err != nil {
		return nil, nil, err
	}
	part, err := sys.Partition(partName)
	if err != nil {
		return nil, nil, err
	}
	return sys, part, nil
}

// Names returns all canonical system names, sorted.
func (e *Estate) Names() []string {
	out := make([]string, 0, len(e.systems))
	for n := range e.systems {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
