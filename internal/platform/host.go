package platform

import (
	"runtime"
	"sync"
)

var (
	hostOnce sync.Once
	hostProc *Processor
)

// HostProcessor describes the machine this process is running on, with a
// measured (not theoretical) memory bandwidth estimate so that local runs
// can still report an efficiency. The measurement is a short
// single-shot triad sweep; it is cached for the process lifetime.
func HostProcessor() *Processor {
	hostOnce.Do(func() {
		cores := runtime.NumCPU()
		hostProc = &Processor{
			Vendor:             "host",
			Name:               runtime.GOARCH,
			Microarch:          "host",
			Kind:               CPU,
			Arch:               hostArch(),
			Sockets:            1,
			CoresPerSocket:     cores,
			ClockGHz:           2.0, // unknown without cpuid; nominal
			L3CachePerSocketMB: 32,
			MemoryGB:           16,
			NUMADomains:        1,
			PeakBandwidthGBs:   measureHostBandwidth(),
			PeakGFlopsFP64:     float64(cores) * 2.0 * 4,
			TDPWatts:           15 * float64(cores), // nominal per-core estimate
		}
	})
	return hostProc
}

func hostArch() Arch {
	switch runtime.GOARCH {
	case "arm64":
		return AArch64
	default:
		return X86_64
	}
}

// measureHostBandwidth runs a brief parallel triad over a buffer larger
// than any plausible LLC and reports the best observed rate in GB/s. This
// stands in for the "theoretical peak" denominator on machines whose
// specs we cannot know, so local efficiencies are relative to the best
// the host demonstrated rather than a datasheet.
func measureHostBandwidth() float64 {
	const n = 1 << 24 // 16M doubles per array = 128 MB, 3 arrays
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		b[i] = 1.5
		c[i] = 2.5
	}
	workers := runtime.NumCPU()
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		elapsed := parallelTriad(a, b, c, workers)
		bytes := float64(3 * n * 8)
		if gbs := bytes / elapsed / 1e9; gbs > best {
			best = gbs
		}
	}
	if best <= 0 {
		return 1
	}
	return best
}

func parallelTriad(a, b, c []float64, workers int) float64 {
	var wg sync.WaitGroup
	n := len(a)
	chunk := (n + workers - 1) / workers
	start := nowSeconds()
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			const scalar = 0.4
			for i := lo; i < hi; i++ {
				a[i] = b[i] + scalar*c[i]
			}
		}(lo, hi)
	}
	wg.Wait()
	return nowSeconds() - start
}
