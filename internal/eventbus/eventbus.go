// Package eventbus is the daemon's in-process pub/sub spine: the run
// pipeline, the recurring-suite scheduler, and the storage engine
// publish typed events here, and any number of consumers — the
// /v1/watch SSE streams, the chaos harness, future federation hooks —
// subscribe without ever being able to stall a publisher.
//
// The contract that makes continuous benchmarking safe to push is the
// slow-consumer policy: every subscriber owns a bounded ring buffer,
// Publish never blocks, and when a ring overflows the *oldest* event is
// dropped and counted against that subscriber alone. A stalled
// dashboard therefore costs itself history, never ingest latency or
// other subscribers' events. A separate bounded replay ring on the bus
// lets reconnecting consumers catch up from a Last-Event-ID instead of
// re-reading the world.
package eventbus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Event types published by the daemon. Subscribers filter on these
// names; the wire (SSE "event:" field) carries them verbatim.
const (
	TypeRunStarted         = "run.started"
	TypeRunFinished        = "run.finished"
	TypeRegressionDetected = "regression.detected"
	TypeScheduleFired      = "schedule.fired"
	TypeStoreSealed        = "store.sealed"
	TypeAlertFired         = "alert.fired"
	TypeAlertResolved      = "alert.resolved"
	TypeServerShutdown     = "server.shutdown"
)

// Types lists every event type the daemon publishes, for validation
// and documentation surfaces.
func Types() []string {
	return []string{
		TypeRunStarted, TypeRunFinished, TypeRegressionDetected,
		TypeScheduleFired, TypeStoreSealed, TypeAlertFired,
		TypeAlertResolved, TypeServerShutdown,
	}
}

// Event is one bus message. IDs are assigned by the bus, strictly
// increasing across all types, and never reused — they are the SSE
// Last-Event-ID cursor.
type Event struct {
	ID   uint64            `json:"id"`
	Type string            `json:"type"`
	Time time.Time         `json:"time"`
	Data map[string]string `json:"data,omitempty"`
}

// ErrClosed is returned by Publish, Subscribe, and Subscriber.Next
// after Close: the daemon is shutting down and no further events will
// flow. It is permanent (not transient), so retrying publishers give up
// cleanly.
var ErrClosed = errors.New("eventbus: closed")

var (
	metricEvents = telemetry.DefaultRegistry.Counter(
		"eventbus_events_total",
		"Events published to the bus, by type.",
		"type")
	metricSubscribers = telemetry.DefaultRegistry.Gauge(
		"eventbus_subscribers",
		"Live bus subscribers.").With()
	metricDropped = telemetry.DefaultRegistry.Counter(
		"eventbus_dropped_total",
		"Events dropped instead of delivered, by reason (slow_subscriber: a full per-subscriber ring evicted its oldest event; replay_gap: a Last-Event-ID catch-up started past the replay ring's tail).",
		"reason")
)

// Bus is the concurrency-safe event fan-out. The zero value is not
// usable; call New.
type Bus struct {
	// Now supplies event timestamps (defaults to time.Now; fixed in
	// tests for deterministic events).
	Now func() time.Time

	mu      sync.Mutex
	seq     uint64
	subs    map[int]*Subscriber
	nextSub int
	closed  bool

	// replay is a bounded ring of the most recent events (all types),
	// serving Last-Event-ID catch-up. start indexes the oldest retained
	// event once the ring has wrapped.
	replay    []Event
	replayCap int
	start     int
}

// New builds a bus whose replay ring retains the last replayCap events
// (default 1024 when <= 0).
func New(replayCap int) *Bus {
	if replayCap <= 0 {
		replayCap = 1024
	}
	return &Bus{
		Now:       time.Now,
		subs:      map[int]*Subscriber{},
		replayCap: replayCap,
	}
}

// Publish stamps and fans out one event. It never blocks on consumers:
// a subscriber whose ring is full loses its oldest event (counted in
// eventbus_dropped_total{reason="slow_subscriber"} and on the
// subscriber). The "eventbus.publish" injection point fires before any
// state changes, so a failed Publish delivered nothing and is safe to
// retry without duplicating events.
func (b *Bus) Publish(typ string, data map[string]string) (Event, error) {
	if err := faultinject.Fire("eventbus.publish"); err != nil {
		return Event{}, fmt.Errorf("eventbus: publish %s: %w", typ, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Event{}, ErrClosed
	}
	b.seq++
	ev := Event{ID: b.seq, Type: typ, Time: b.Now(), Data: data}
	if len(b.replay) < b.replayCap {
		b.replay = append(b.replay, ev)
	} else {
		b.replay[b.start] = ev
		b.start = (b.start + 1) % b.replayCap
	}
	for _, sub := range b.subs {
		sub.push(ev)
	}
	b.mu.Unlock()
	metricEvents.With(typ).Inc()
	return ev, nil
}

// Subscribe registers a consumer for the given event types (nil or
// empty = every type) with a ring of the given capacity (default 256
// when <= 0). The subscriber must be Closed when done, or it leaks a
// slot until the bus closes.
func (b *Bus) Subscribe(types []string, buffer int) (*Subscriber, error) {
	if buffer <= 0 {
		buffer = 256
	}
	var want map[string]struct{}
	if len(types) > 0 {
		want = make(map[string]struct{}, len(types))
		for _, t := range types {
			want[t] = struct{}{}
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextSub++
	sub := &Subscriber{
		bus:    b,
		id:     b.nextSub,
		types:  want,
		buf:    make([]Event, buffer),
		notify: make(chan struct{}, 1),
	}
	b.subs[sub.id] = sub
	metricSubscribers.Inc()
	return sub, nil
}

// ReplaySince returns the retained events with ID > after matching the
// given types (nil = all), oldest first. gap reports that the ring no
// longer reaches back to `after` — events between `after` and the
// oldest retained ID were evicted, and the caller should tell its
// consumer the stream has a hole rather than silently skipping it.
func (b *Bus) ReplaySince(after uint64, types []string) (events []Event, gap bool) {
	var want map[string]struct{}
	if len(types) > 0 {
		want = make(map[string]struct{}, len(types))
		for _, t := range types {
			want[t] = struct{}{}
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.replay)
	if n > 0 {
		oldest := b.replay[b.start].ID
		if oldest > after+1 {
			gap = true
		}
	} else if b.seq > after {
		gap = true
	}
	for i := 0; i < n; i++ {
		ev := b.replay[(b.start+i)%n]
		if ev.ID <= after {
			continue
		}
		if want != nil {
			if _, ok := want[ev.Type]; !ok {
				continue
			}
		}
		events = append(events, ev)
	}
	if gap {
		metricDropped.With("replay_gap").Inc()
	}
	return events, gap
}

// LastID returns the most recently assigned event ID (0 before any
// publish).
func (b *Bus) LastID() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Subscribers returns the live subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close shuts the bus: subsequent Publish/Subscribe return ErrClosed,
// and every subscriber's Next drains its remaining buffered events and
// then returns ErrClosed. Close is idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscriber, 0, len(b.subs))
	for _, sub := range b.subs {
		subs = append(subs, sub)
	}
	b.subs = map[int]*Subscriber{}
	b.mu.Unlock()
	for _, sub := range subs {
		sub.shut()
		metricSubscribers.Dec()
	}
}

// Subscriber is one bounded consumer. Events are delivered in publish
// order; when the consumer falls behind its ring capacity, the oldest
// undelivered events are discarded and counted in Dropped.
type Subscriber struct {
	bus   *Bus
	id    int
	types map[string]struct{}

	mu      sync.Mutex
	buf     []Event // fixed-capacity ring
	head    int     // index of oldest buffered event
	n       int     // buffered events
	dropped uint64
	closed  bool
	notify  chan struct{}
}

// push appends one event, evicting the oldest on overflow. Called by
// the bus with the bus lock held; the subscriber lock nests inside it
// (Next and Close never call back into the bus while holding sub.mu).
func (s *Subscriber) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.types != nil {
		if _, ok := s.types[ev.Type]; !ok {
			s.mu.Unlock()
			return
		}
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		metricDropped.With("slow_subscriber").Inc()
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until an event is buffered, the context ends, or the
// subscriber (or bus) is closed. After close, buffered events are still
// drained in order before ErrClosed is returned — a shutdown event
// published just before Close always reaches prompt consumers.
func (s *Subscriber) Next(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev := s.buf[s.head]
			s.buf[s.head] = Event{} // drop the reference for GC
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.mu.Unlock()
			return ev, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, ErrClosed
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// TryNext pops the next buffered event without blocking.
func (s *Subscriber) TryNext() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	ev := s.buf[s.head]
	s.buf[s.head] = Event{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Dropped returns how many events this subscriber lost to ring
// overflow.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Buffered returns how many events are waiting in the ring.
func (s *Subscriber) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close unregisters the subscriber. Pending events are discarded and a
// blocked Next returns ErrClosed. Idempotent.
func (s *Subscriber) Close() {
	s.bus.mu.Lock()
	_, registered := s.bus.subs[s.id]
	delete(s.bus.subs, s.id)
	s.bus.mu.Unlock()
	if registered {
		metricSubscribers.Dec()
	}
	s.shut()
}

// shut marks the subscriber closed and wakes a blocked Next. It does
// not touch the bus registry (Bus.Close already emptied it).
func (s *Subscriber) shut() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}
