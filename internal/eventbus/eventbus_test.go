package eventbus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

func publish(t *testing.T, b *Bus, typ string, data map[string]string) Event {
	t.Helper()
	ev, err := b.Publish(typ, data)
	if err != nil {
		t.Fatalf("publish %s: %v", typ, err)
	}
	return ev
}

func TestFanOutOrdering(t *testing.T) {
	b := New(16)
	defer b.Close()
	subs := make([]*Subscriber, 3)
	for i := range subs {
		s, err := b.Subscribe(nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs[i] = s
	}
	want := []Event{
		publish(t, b, TypeRunStarted, map[string]string{"run_id": "run-1"}),
		publish(t, b, TypeRunFinished, map[string]string{"run_id": "run-1"}),
		publish(t, b, TypeScheduleFired, nil),
	}
	if want[0].ID >= want[1].ID || want[1].ID >= want[2].ID {
		t.Fatalf("ids not increasing: %v %v %v", want[0].ID, want[1].ID, want[2].ID)
	}
	for i, s := range subs {
		for j, w := range want {
			ev, err := s.Next(context.Background())
			if err != nil {
				t.Fatalf("sub %d event %d: %v", i, j, err)
			}
			if ev.ID != w.ID || ev.Type != w.Type {
				t.Fatalf("sub %d event %d = %+v, want %+v", i, j, ev, w)
			}
		}
	}
}

func TestTypeFilter(t *testing.T) {
	b := New(16)
	defer b.Close()
	s, err := b.Subscribe([]string{TypeRunFinished}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	publish(t, b, TypeRunStarted, nil)
	want := publish(t, b, TypeRunFinished, nil)
	publish(t, b, TypeScheduleFired, nil)
	ev, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.ID != want.ID {
		t.Fatalf("got %+v, want only %+v", ev, want)
	}
	if s.Buffered() != 0 {
		t.Fatalf("buffered = %d, want 0", s.Buffered())
	}
}

// TestSlowConsumerDropOldest is the slow-consumer policy: a full ring
// evicts its oldest event, counts the drop, and the consumer still
// receives the newest events in order.
func TestSlowConsumerDropOldest(t *testing.T) {
	b := New(64)
	defer b.Close()
	s, err := b.Subscribe(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var last Event
	for i := 0; i < 10; i++ {
		last = publish(t, b, TypeRunFinished, map[string]string{"i": fmt.Sprint(i)})
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// The surviving window is the newest 4, in order.
	for i := 6; i < 10; i++ {
		ev, ok := s.TryNext()
		if !ok {
			t.Fatalf("missing event %d", i)
		}
		if ev.Data["i"] != fmt.Sprint(i) {
			t.Fatalf("event = %+v, want i=%d", ev, i)
		}
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("ring should be empty")
	}
	if last.ID != 10 {
		t.Fatalf("last id = %d", last.ID)
	}
}

func TestReplaySince(t *testing.T) {
	b := New(4)
	defer b.Close()
	for i := 0; i < 6; i++ {
		publish(t, b, TypeRunFinished, map[string]string{"i": fmt.Sprint(i)})
	}
	// Ring holds ids 3..6. Catch-up from 4 is complete.
	evs, gap := b.ReplaySince(4, nil)
	if gap {
		t.Fatal("unexpected gap")
	}
	if len(evs) != 2 || evs[0].ID != 5 || evs[1].ID != 6 {
		t.Fatalf("replay = %+v", evs)
	}
	// Catch-up from 1 has a hole: id 2 was evicted.
	evs, gap = b.ReplaySince(1, nil)
	if !gap {
		t.Fatal("expected gap")
	}
	if len(evs) != 4 || evs[0].ID != 3 {
		t.Fatalf("replay = %+v", evs)
	}
	// Filtered replay.
	publish(t, b, TypeScheduleFired, nil)
	evs, _ = b.ReplaySince(5, []string{TypeScheduleFired})
	if len(evs) != 1 || evs[0].Type != TypeScheduleFired {
		t.Fatalf("filtered replay = %+v", evs)
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	b := New(8)
	s, err := b.Subscribe(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	publish(t, b, TypeRunFinished, nil)
	shutdown := publish(t, b, TypeServerShutdown, nil)
	b.Close()
	// Buffered events drain in order after close...
	ev, err := s.Next(context.Background())
	if err != nil || ev.Type != TypeRunFinished {
		t.Fatalf("first = %+v, %v", ev, err)
	}
	ev, err = s.Next(context.Background())
	if err != nil || ev.ID != shutdown.ID {
		t.Fatalf("second = %+v, %v", ev, err)
	}
	// ...then the stream ends.
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := b.Publish(TypeRunStarted, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish after close = %v", err)
	}
	if _, err := b.Subscribe(nil, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close = %v", err)
	}
}

func TestCloseWakesBlockedNext(t *testing.T) {
	b := New(8)
	s, err := b.Subscribe(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on Close")
	}
}

func TestNextContextCancel(t *testing.T) {
	b := New(8)
	defer b.Close()
	s, err := b.Subscribe(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubscriberCount(t *testing.T) {
	b := New(8)
	defer b.Close()
	s1, _ := b.Subscribe(nil, 1)
	s2, _ := b.Subscribe(nil, 1)
	if got := b.Subscribers(); got != 2 {
		t.Fatalf("subscribers = %d", got)
	}
	s1.Close()
	s1.Close() // idempotent
	if got := b.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d", got)
	}
	s2.Close()
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("subscribers = %d", got)
	}
}

// TestPublishFaultIsRetrySafe arms the eventbus.publish injection point
// and shows the documented contract: a failed Publish delivered nothing
// (no id burned, no partial fan-out), so a retry wrapper produces
// exactly one delivered event.
func TestPublishFaultIsRetrySafe(t *testing.T) {
	rules, err := faultinject.ParseSchedule("eventbus.publish:error:times=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(1, rules); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	b := New(8)
	defer b.Close()
	s, err := b.Subscribe(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	policy := retry.Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	if err := policy.Do(context.Background(), "test.publish", func(context.Context, int) error {
		_, perr := b.Publish(TypeRunFinished, nil)
		return perr
	}); err != nil {
		t.Fatalf("retried publish failed: %v", err)
	}
	ev, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.ID != 1 {
		t.Fatalf("id = %d, want 1 (failed attempts must not burn ids)", ev.ID)
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("duplicate delivery after retry")
	}
}

// TestConcurrentPublishSubscribe hammers the bus from many goroutines
// under -race: publishers, churning subscribers, and a slow consumer.
// Every prompt subscriber must see every event exactly once, in order.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(4096)
	const publishers, perPublisher = 4, 200
	total := publishers * perPublisher

	prompt, err := b.Subscribe(nil, total)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := b.Subscribe(nil, 8)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if _, err := b.Publish(TypeRunFinished, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Churn subscribers while publishing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s, err := b.Subscribe(nil, 4)
			if err != nil {
				t.Error(err)
				return
			}
			s.TryNext()
			s.Close()
		}
	}()
	wg.Wait()

	var lastID uint64
	for i := 0; i < total; i++ {
		ev, ok := prompt.TryNext()
		if !ok {
			t.Fatalf("prompt subscriber missing event %d/%d", i, total)
		}
		if ev.ID <= lastID {
			t.Fatalf("out of order: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
	}
	if slow.Dropped() == 0 {
		t.Error("slow subscriber dropped nothing despite a tiny ring")
	}
	if got := int(slow.Dropped()) + slow.Buffered(); got != total {
		t.Errorf("slow dropped+buffered = %d, want %d", got, total)
	}
	b.Close()
}

func TestMetricsPublished(t *testing.T) {
	reg := telemetry.DefaultRegistry
	eventsBefore, _ := reg.Value("eventbus_events_total", TypeStoreSealed)
	droppedBefore, _ := reg.Value("eventbus_dropped_total", "slow_subscriber")

	b := New(8)
	defer b.Close()
	s, err := b.Subscribe(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	publish(t, b, TypeStoreSealed, nil)
	publish(t, b, TypeStoreSealed, nil) // overflows the 1-slot ring

	if got, _ := reg.Value("eventbus_events_total", TypeStoreSealed); got != eventsBefore+2 {
		t.Errorf("events_total delta = %v, want 2", got-eventsBefore)
	}
	if got, _ := reg.Value("eventbus_dropped_total", "slow_subscriber"); got != droppedBefore+1 {
		t.Errorf("dropped_total delta = %v, want 1", got-droppedBefore)
	}
}
