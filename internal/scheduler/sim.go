package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/faultinject"
)

// dialect captures what differs between the SLURM and PBS simulators:
// batch-script syntax and node naming.
type dialect interface {
	name() string
	nodeName(i int) string
	script(j *Job, nodes, tasksPerNode int) string
}

// Sim is a discrete-event simulated batch scheduler over a fixed pool of
// identical nodes. Jobs are started FIFO as soon as enough nodes are
// free; payload durations come from the Executor. Time is virtual — a
// Wait over a full queue completes immediately in real time.
type Sim struct {
	d            dialect
	totalNodes   int
	coresPerNode int
	exec         Executor

	// Backfill enables EASY backfilling: while the queue head waits for
	// nodes, later jobs may start if they fit in the currently free
	// nodes and their time limit guarantees they finish before the head
	// job's earliest possible start.
	Backfill bool

	clock    float64 // virtual seconds since scheduler start
	nextID   int
	jobs     map[int]*Info
	queue    []int           // pending job IDs, FIFO
	running  map[int]float64 // job ID -> virtual end time
	timedOut map[int]bool    // running jobs that will hit their limit
	free     []string        // free node names (sorted for determinism)
}

// NewSim builds a simulated scheduler with the given dialect name
// ("slurm" or "pbs"), node pool, and payload executor.
func NewSim(dialectName string, totalNodes, coresPerNode int, exec Executor) (*Sim, error) {
	var d dialect
	switch dialectName {
	case "slurm":
		d = slurmDialect{}
	case "pbs":
		d = pbsDialect{}
	default:
		return nil, fmt.Errorf("scheduler: unknown dialect %q", dialectName)
	}
	if totalNodes <= 0 || coresPerNode <= 0 {
		return nil, fmt.Errorf("scheduler: need positive node pool (%d nodes, %d cores)", totalNodes, coresPerNode)
	}
	if exec == nil {
		return nil, fmt.Errorf("scheduler: nil executor")
	}
	s := &Sim{
		d:            d,
		totalNodes:   totalNodes,
		coresPerNode: coresPerNode,
		exec:         exec,
		nextID:       1,
		jobs:         map[int]*Info{},
		running:      map[int]float64{},
		timedOut:     map[int]bool{},
	}
	for i := 0; i < totalNodes; i++ {
		s.free = append(s.free, d.nodeName(i))
	}
	return s, nil
}

// Name implements Scheduler.
func (s *Sim) Name() string { return s.d.name() }

// FreeNodes reports how many nodes are currently unallocated.
func (s *Sim) FreeNodes() int { return len(s.free) }

// Clock reports the current virtual time in seconds.
func (s *Sim) Clock() float64 { return s.clock }

// Submit implements Scheduler. The "scheduler.submit" injection point
// models the batch controller rejecting transiently.
func (s *Sim) Submit(job *Job) (int, error) {
	if err := job.Normalize(); err != nil {
		return 0, err
	}
	if err := faultinject.Fire("scheduler.submit"); err != nil {
		return 0, fmt.Errorf("scheduler: submit %s: %w", job.Name, err)
	}
	nodes, _, err := nodesNeeded(job, s.coresPerNode)
	if err != nil {
		return 0, err
	}
	if nodes > s.totalNodes {
		return 0, fmt.Errorf("scheduler: job %s needs %d nodes, partition has %d", job.Name, nodes, s.totalNodes)
	}
	id := s.nextID
	s.nextID++
	s.jobs[id] = &Info{ID: id, Job: job, State: Pending, SubmitTime: s.clock}
	s.queue = append(s.queue, id)
	s.schedule()
	return id, nil
}

// Poll implements Scheduler. The "scheduler.poll" injection point
// models squeue/qstat timing out.
func (s *Sim) Poll(id int) (*Info, error) {
	if err := faultinject.Fire("scheduler.poll"); err != nil {
		return nil, fmt.Errorf("scheduler: poll %d: %w", id, err)
	}
	info, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("scheduler: no job %d", id)
	}
	snapshot := *info
	return &snapshot, nil
}

// Wait implements Scheduler: advance virtual time until the job is done.
func (s *Sim) Wait(id int) (*Info, error) {
	info, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("scheduler: no job %d", id)
	}
	for !info.State.Terminal() {
		if !s.step() {
			return nil, fmt.Errorf("scheduler: deadlock waiting for job %d (%s)", id, info.State)
		}
	}
	return s.Poll(id)
}

// Drain advances the simulation until every submitted job is terminal.
func (s *Sim) Drain() error {
	for {
		busy := false
		for _, info := range s.jobs {
			if !info.State.Terminal() {
				busy = true
				break
			}
		}
		if !busy {
			return nil
		}
		if !s.step() {
			return fmt.Errorf("scheduler: deadlock with %d running, %d queued", len(s.running), len(s.queue))
		}
	}
}

// Cancel implements Scheduler.
func (s *Sim) Cancel(id int) error {
	info, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("scheduler: no job %d", id)
	}
	switch info.State {
	case Pending:
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	case Running:
		s.releaseNodes(info)
		delete(s.running, id)
		delete(s.timedOut, id)
	default:
		return fmt.Errorf("scheduler: job %d already %s", id, info.State)
	}
	info.State = Cancelled
	info.EndTime = s.clock
	return nil
}

// Script implements Scheduler.
func (s *Sim) Script(job *Job) string {
	j := *job
	if err := j.Normalize(); err != nil {
		return "# invalid job: " + err.Error()
	}
	nodes, tpn, err := nodesNeeded(&j, s.coresPerNode)
	if err != nil {
		return "# invalid job: " + err.Error()
	}
	return s.d.script(&j, nodes, tpn)
}

// step advances the simulation by one event: finish the earliest-ending
// running job, then start whatever now fits. Returns false if nothing can
// make progress.
func (s *Sim) step() bool {
	if len(s.running) == 0 {
		// Nothing running; starting is the only possible progress.
		return s.schedule()
	}
	// Find earliest completion.
	bestID, bestEnd := 0, 0.0
	first := true
	for id, end := range s.running {
		if first || end < bestEnd || (end == bestEnd && id < bestID) {
			bestID, bestEnd, first = id, end, false
		}
	}
	s.clock = bestEnd
	info := s.jobs[bestID]
	delete(s.running, bestID)
	s.releaseNodes(info)
	info.EndTime = s.clock
	switch {
	case s.timedOut[bestID]:
		delete(s.timedOut, bestID)
		info.State = TimedOut
	case info.ExitCode != 0:
		info.State = Failed
	default:
		info.State = Completed
	}
	s.schedule()
	return true
}

// schedule starts queued jobs FIFO while nodes are available. Returns
// true if at least one job started.
func (s *Sim) schedule() bool {
	started := false
	for len(s.queue) > 0 {
		id := s.queue[0]
		info := s.jobs[id]
		nodes, _, err := nodesNeeded(info.Job, s.coresPerNode)
		if err != nil {
			// Validated at submit; defensive.
			s.queue = s.queue[1:]
			info.State = Failed
			info.Stderr = err.Error()
			info.EndTime = s.clock
			continue
		}
		if nodes > len(s.free) {
			// The head does not fit. With backfilling enabled, later
			// jobs may slip through; either way the head keeps its
			// place in line.
			if s.Backfill {
				started = s.backfill(nodes) || started
			}
			break
		}
		s.queue = s.queue[1:]
		s.start(id, nodes)
		started = true
	}
	return started
}

// start allocates nodes and launches the payload for a queued job.
func (s *Sim) start(id, nodes int) {
	info := s.jobs[id]
	alloc := s.free[:nodes]
	s.free = s.free[nodes:]
	info.Nodes = append([]string(nil), alloc...)
	info.State = Running
	info.StartTime = s.clock

	res := s.exec(info.Job, info.Nodes)
	info.Stdout = res.Stdout
	info.Stderr = res.Stderr
	info.ExitCode = res.ExitCode
	dur := res.Duration.Seconds()
	if dur <= 0 {
		dur = 1e-6
	}
	if res.Duration > info.Job.TimeLimit {
		dur = info.Job.TimeLimit.Seconds()
		s.timedOut[id] = true
		info.ExitCode = 1
	}
	s.running[id] = s.clock + dur
}

// backfill implements the EASY policy: estimate when the blocked head
// job could start at the earliest (as running jobs release nodes), then
// start any later queued job that fits in the free nodes now and whose
// time limit ends before that reservation. headNeed is the head job's
// node requirement. Returns true if any job started.
func (s *Sim) backfill(headNeed int) bool {
	reservation, ok := s.headStartEstimate(headNeed)
	if !ok {
		return false
	}
	started := false
	for i := 1; i < len(s.queue); {
		id := s.queue[i]
		info := s.jobs[id]
		nodes, _, err := nodesNeeded(info.Job, s.coresPerNode)
		if err != nil {
			i++
			continue
		}
		fits := nodes <= len(s.free)
		finishesInTime := s.clock+info.Job.TimeLimit.Seconds() <= reservation
		if !fits || !finishesInTime {
			i++
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.start(id, nodes)
		started = true
		// Do not advance i: the next candidate shifted into position i.
	}
	return started
}

// headStartEstimate returns the virtual time at which headNeed nodes will
// be available, assuming every running job runs to its recorded end.
func (s *Sim) headStartEstimate(headNeed int) (float64, bool) {
	avail := len(s.free)
	if avail >= headNeed {
		return s.clock, true
	}
	type release struct {
		at    float64
		nodes int
	}
	var releases []release
	for id, end := range s.running {
		releases = append(releases, release{at: end, nodes: len(s.jobs[id].Nodes)})
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i].at < releases[j].at })
	for _, r := range releases {
		avail += r.nodes
		if avail >= headNeed {
			return r.at, true
		}
	}
	return 0, false
}

func (s *Sim) releaseNodes(info *Info) {
	s.free = append(s.free, info.Nodes...)
	sort.Strings(s.free)
}
