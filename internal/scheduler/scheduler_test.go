package scheduler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// fixedExec returns an Executor that reports the given duration and
// records which jobs ran on which nodes.
func fixedExec(d time.Duration) Executor {
	return func(job *Job, nodes []string) Result {
		return Result{
			Stdout:   fmt.Sprintf("ran %s on %d nodes", job.Name, len(nodes)),
			Duration: d,
		}
	}
}

func TestSimSubmitAndWait(t *testing.T) {
	s, err := NewSim("slurm", 4, 128, fixedExec(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(&Job{Name: "hpgmg", NumTasks: 8, TasksPerNode: 2, CPUsPerTask: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Completed {
		t.Errorf("state = %s", info.State)
	}
	if len(info.Nodes) != 4 {
		t.Errorf("nodes = %v, want 4 (8 tasks / 2 per node)", info.Nodes)
	}
	if info.Runtime() != 10 {
		t.Errorf("runtime = %g, want 10", info.Runtime())
	}
	if !strings.Contains(info.Stdout, "ran hpgmg") {
		t.Errorf("stdout = %q", info.Stdout)
	}
}

func TestSimQueueingFIFO(t *testing.T) {
	// 2 nodes; each job takes both; three jobs must serialize.
	s, _ := NewSim("slurm", 2, 64, fixedExec(100*time.Second))
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := s.Submit(&Job{Name: fmt.Sprintf("j%d", i), NumTasks: 2, TasksPerNode: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// First job should be running, others pending.
	if info, _ := s.Poll(ids[0]); info.State != Running {
		t.Errorf("job 0 state = %s", info.State)
	}
	if info, _ := s.Poll(ids[2]); info.State != Pending {
		t.Errorf("job 2 state = %s", info.State)
	}
	last, err := s.Wait(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if last.StartTime != 200 {
		t.Errorf("job 2 start = %g, want 200 (FIFO serialization)", last.StartTime)
	}
	if last.QueueWait() != 200 {
		t.Errorf("queue wait = %g", last.QueueWait())
	}
	// Earlier jobs finished in order.
	for i, id := range ids {
		info, _ := s.Poll(id)
		if info.State != Completed {
			t.Errorf("job %d state = %s", i, info.State)
		}
		if want := float64((i + 1) * 100); info.EndTime != want {
			t.Errorf("job %d end = %g, want %g", i, info.EndTime, want)
		}
	}
}

func TestSimParallelJobsShareNodes(t *testing.T) {
	// 4 nodes, two 2-node jobs run concurrently.
	s, _ := NewSim("slurm", 4, 64, fixedExec(50*time.Second))
	a, _ := s.Submit(&Job{Name: "a", NumTasks: 2, TasksPerNode: 1})
	b, _ := s.Submit(&Job{Name: "b", NumTasks: 2, TasksPerNode: 1})
	ia, _ := s.Wait(a)
	ib, _ := s.Wait(b)
	if ia.StartTime != 0 || ib.StartTime != 0 {
		t.Errorf("both jobs should start immediately: %g, %g", ia.StartTime, ib.StartTime)
	}
	// No node is shared.
	used := map[string]bool{}
	for _, n := range append(append([]string{}, ia.Nodes...), ib.Nodes...) {
		if used[n] {
			t.Errorf("node %s double-allocated", n)
		}
		used[n] = true
	}
}

func TestSimNoOversubscriptionProperty(t *testing.T) {
	// Property: with random job sizes, allocated node sets of
	// concurrently running jobs never overlap and never exceed the pool.
	r := rand.New(rand.NewSource(42))
	const pool = 8
	s, _ := NewSim("slurm", pool, 64, func(job *Job, nodes []string) Result {
		return Result{Duration: time.Duration(1+len(job.Name)%7) * time.Second}
	})
	var ids []int
	for i := 0; i < 50; i++ {
		tasks := 1 + r.Intn(16)
		id, err := s.Submit(&Job{Name: fmt.Sprintf("job-%02d", i), NumTasks: tasks, TasksPerNode: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		// Check invariant after each event.
		checkNoOverlap(t, s, ids, pool)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		info, _ := s.Poll(id)
		if !info.State.Terminal() {
			t.Errorf("job %d not terminal after drain", id)
		}
	}
}

func checkNoOverlap(t *testing.T, s *Sim, ids []int, pool int) {
	t.Helper()
	used := map[string]int{}
	total := 0
	for _, id := range ids {
		info, err := s.Poll(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != Running {
			continue
		}
		for _, n := range info.Nodes {
			if prev, clash := used[n]; clash {
				t.Fatalf("node %s allocated to jobs %d and %d", n, prev, id)
			}
			used[n] = id
			total++
		}
	}
	if total > pool {
		t.Fatalf("%d nodes allocated from a pool of %d", total, pool)
	}
}

func TestSimRejectsImpossibleJobs(t *testing.T) {
	s, _ := NewSim("slurm", 2, 16, fixedExec(time.Second))
	// More cpus per node than exist.
	if _, err := s.Submit(&Job{Name: "fat", NumTasks: 1, TasksPerNode: 1, CPUsPerTask: 32}); err == nil {
		t.Error("oversized job accepted")
	}
	// More nodes than the partition has.
	if _, err := s.Submit(&Job{Name: "wide", NumTasks: 64, TasksPerNode: 1}); err == nil {
		t.Error("too-wide job accepted")
	}
	// Invalid job parameters.
	if _, err := s.Submit(&Job{Name: "", NumTasks: 1}); err == nil {
		t.Error("unnamed job accepted")
	}
	if _, err := s.Submit(&Job{Name: "none", NumTasks: 0}); err == nil {
		t.Error("zero-task job accepted")
	}
}

func TestSimTimeout(t *testing.T) {
	s, _ := NewSim("slurm", 1, 16, fixedExec(2*time.Hour))
	id, err := s.Submit(&Job{Name: "slow", NumTasks: 1, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != TimedOut {
		t.Errorf("state = %s, want TIMEOUT", info.State)
	}
	if info.Runtime() != 60 {
		t.Errorf("runtime = %g, want 60 (killed at limit)", info.Runtime())
	}
}

func TestSimCancel(t *testing.T) {
	s, _ := NewSim("pbs", 1, 16, fixedExec(time.Hour))
	a, _ := s.Submit(&Job{Name: "a", NumTasks: 1})
	b, _ := s.Submit(&Job{Name: "b", NumTasks: 1})
	// b is queued; cancel it.
	if err := s.Cancel(b); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Poll(b); info.State != Cancelled {
		t.Errorf("b state = %s", info.State)
	}
	// a is running; cancel frees its node.
	if err := s.Cancel(a); err != nil {
		t.Fatal(err)
	}
	if s.FreeNodes() != 1 {
		t.Errorf("free nodes = %d after cancelling everything", s.FreeNodes())
	}
	if err := s.Cancel(a); err == nil {
		t.Error("double cancel accepted")
	}
	if err := s.Cancel(999); err == nil {
		t.Error("cancel of unknown job accepted")
	}
}

func TestSlurmScript(t *testing.T) {
	s, _ := NewSim("slurm", 8, 128, fixedExec(time.Second))
	// The paper's ARCHER2 HPGMG job: 8 tasks, 2 per node, 8 cpus each,
	// qos standard.
	job := &Job{
		Name:         "hpgmg-fv",
		Account:      "z19",
		QOS:          "standard",
		NumTasks:     8,
		TasksPerNode: 2,
		CPUsPerTask:  8,
		TimeLimit:    30 * time.Minute,
		Env:          map[string]string{"OMP_PLACES": "cores"},
		Commands:     []string{"srun ./hpgmg-fv 7 8"},
	}
	script := s.Script(job)
	for _, want := range []string{
		"#SBATCH --job-name=hpgmg-fv",
		"#SBATCH --account=z19",
		"#SBATCH --qos=standard",
		"#SBATCH --nodes=4",
		"#SBATCH --ntasks=8",
		"#SBATCH --ntasks-per-node=2",
		"#SBATCH --cpus-per-task=8",
		"#SBATCH --time=00:30:00",
		`export OMP_PLACES="cores"`,
		"srun ./hpgmg-fv 7 8",
	} {
		if !strings.Contains(script, want) {
			t.Errorf("slurm script missing %q:\n%s", want, script)
		}
	}
}

func TestPBSScript(t *testing.T) {
	s, _ := NewSim("pbs", 4, 40, fixedExec(time.Second))
	job := &Job{
		Name:         "babelstream",
		Account:      "br-train",
		NumTasks:     2,
		TasksPerNode: 1,
		CPUsPerTask:  40,
		Commands:     []string{"aprun -n 2 ./babelstream"},
	}
	script := s.Script(job)
	for _, want := range []string{
		"#PBS -N babelstream",
		"#PBS -A br-train",
		"#PBS -l select=2:ncpus=40:mpiprocs=1",
		"cd $PBS_O_WORKDIR",
		"aprun -n 2 ./babelstream",
	} {
		if !strings.Contains(script, want) {
			t.Errorf("pbs script missing %q:\n%s", want, script)
		}
	}
}

func TestNodeNamesDiffer(t *testing.T) {
	slurm, _ := NewSim("slurm", 1, 4, fixedExec(time.Second))
	pbs, _ := NewSim("pbs", 1, 4, fixedExec(time.Second))
	a, _ := slurm.Submit(&Job{Name: "x", NumTasks: 1})
	b, _ := pbs.Submit(&Job{Name: "x", NumTasks: 1})
	ia, _ := slurm.Wait(a)
	ib, _ := pbs.Wait(b)
	if !strings.HasPrefix(ia.Nodes[0], "nid") {
		t.Errorf("slurm node = %s", ia.Nodes[0])
	}
	if !strings.HasPrefix(ib.Nodes[0], "cn") {
		t.Errorf("pbs node = %s", ib.Nodes[0])
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim("lsf", 1, 1, fixedExec(time.Second)); err == nil {
		t.Error("unknown dialect accepted")
	}
	if _, err := NewSim("slurm", 0, 1, fixedExec(time.Second)); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewSim("slurm", 1, 1, nil); err == nil {
		t.Error("nil executor accepted")
	}
}

func TestLocalScheduler(t *testing.T) {
	ran := false
	l, err := NewLocal(func(job *Job, nodes []string) Result {
		ran = true
		if len(nodes) != 1 || nodes[0] != "localhost" {
			t.Errorf("nodes = %v", nodes)
		}
		return Result{Stdout: "ok", Duration: 2 * time.Second}
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := l.Submit(&Job{Name: "quick", NumTasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("local job did not run")
	}
	info, err := l.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Completed || info.Stdout != "ok" {
		t.Errorf("info = %+v", info)
	}
	if info.Runtime() != 2 {
		t.Errorf("runtime = %g", info.Runtime())
	}
	if err := l.Cancel(id); err == nil {
		t.Error("local cancel should fail")
	}
	if _, err := l.Poll(999); err == nil {
		t.Error("unknown job accepted")
	}
}

func TestLocalFailurePropagates(t *testing.T) {
	l, _ := NewLocal(func(job *Job, nodes []string) Result {
		return Result{Stderr: "boom", ExitCode: 3, Duration: time.Second}
	})
	id, _ := l.Submit(&Job{Name: "bad", NumTasks: 1})
	info, _ := l.Wait(id)
	if info.State != Failed || info.ExitCode != 3 || info.Stderr != "boom" {
		t.Errorf("info = %+v", info)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Pending: "PENDING", Running: "RUNNING", Completed: "COMPLETED",
		Failed: "FAILED", Cancelled: "CANCELLED", TimedOut: "TIMEOUT",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
	if Pending.Terminal() || Running.Terminal() {
		t.Error("pending/running are not terminal")
	}
	if !Completed.Terminal() || !TimedOut.Terminal() {
		t.Error("completed/timeout are terminal")
	}
}

func TestDefaultTasksPerNodePacking(t *testing.T) {
	// TasksPerNode=0 packs by cpus: 128-core nodes, 8 cpus/task -> 16
	// tasks/node, so 32 tasks need 2 nodes.
	s, _ := NewSim("slurm", 4, 128, fixedExec(time.Second))
	id, err := s.Submit(&Job{Name: "packed", NumTasks: 32, CPUsPerTask: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.Wait(id)
	if len(info.Nodes) != 2 {
		t.Errorf("nodes = %d, want 2", len(info.Nodes))
	}
}

func TestBackfillLetsSmallJobsThrough(t *testing.T) {
	// 4 nodes. A 3-node job runs for 100 s; a 4-node job waits at the
	// head; a 1-node 10 s job behind it can backfill into the idle node
	// (it finishes at t=10, well before the head can start at t=100).
	s, _ := NewSim("slurm", 4, 64, func(job *Job, nodes []string) Result {
		switch job.Name {
		case "long", "head":
			return Result{Duration: 100 * time.Second}
		default:
			return Result{Duration: 10 * time.Second}
		}
	})
	s.Backfill = true
	long, _ := s.Submit(&Job{Name: "long", NumTasks: 3, TasksPerNode: 1})
	head, _ := s.Submit(&Job{Name: "head", NumTasks: 4, TasksPerNode: 1})
	small, _ := s.Submit(&Job{Name: "small", NumTasks: 1, TimeLimit: 20 * time.Second})
	if info, _ := s.Poll(small); info.State != Running {
		t.Fatalf("small job not backfilled: %s", info.State)
	}
	si, _ := s.Wait(small)
	if si.StartTime != 0 {
		t.Errorf("small started at %g, want 0 (backfilled)", si.StartTime)
	}
	hi, _ := s.Wait(head)
	if hi.StartTime != 100 {
		t.Errorf("head start = %g, want 100 (not delayed by backfill)", hi.StartTime)
	}
	li, _ := s.Wait(long)
	if li.EndTime != 100 {
		t.Errorf("long end = %g", li.EndTime)
	}
}

func TestBackfillRespectsReservation(t *testing.T) {
	// A small job whose time limit extends past the head's reservation
	// must NOT backfill (it could delay the head).
	s, _ := NewSim("slurm", 4, 64, fixedExec(100*time.Second))
	s.Backfill = true
	_, _ = s.Submit(&Job{Name: "long", NumTasks: 3, TasksPerNode: 1})
	_, _ = s.Submit(&Job{Name: "head", NumTasks: 4, TasksPerNode: 1})
	greedy, _ := s.Submit(&Job{Name: "greedy", NumTasks: 1, TimeLimit: 500 * time.Second})
	if info, _ := s.Poll(greedy); info.State != Pending {
		t.Errorf("greedy job backfilled despite long time limit: %s", info.State)
	}
	// Off by default: same scenario without Backfill keeps FIFO.
	s2, _ := NewSim("slurm", 4, 64, fixedExec(100*time.Second))
	_, _ = s2.Submit(&Job{Name: "long", NumTasks: 3, TasksPerNode: 1})
	_, _ = s2.Submit(&Job{Name: "head", NumTasks: 4, TasksPerNode: 1})
	small, _ := s2.Submit(&Job{Name: "small", NumTasks: 1, TimeLimit: 10 * time.Second})
	if info, _ := s2.Poll(small); info.State != Pending {
		t.Errorf("job backfilled with Backfill disabled: %s", info.State)
	}
}

func TestBackfillInvariantsUnderLoad(t *testing.T) {
	// The no-oversubscription property holds with backfill on and random
	// job mixes, and everything drains.
	r := rand.New(rand.NewSource(7))
	const pool = 8
	s, _ := NewSim("slurm", pool, 64, func(job *Job, nodes []string) Result {
		return Result{Duration: time.Duration(1+len(job.Name)%9) * time.Second}
	})
	s.Backfill = true
	var ids []int
	for i := 0; i < 60; i++ {
		id, err := s.Submit(&Job{
			Name:      fmt.Sprintf("job-%02d-%s", i, strings.Repeat("x", r.Intn(5))),
			NumTasks:  1 + r.Intn(12),
			TimeLimit: time.Duration(5+r.Intn(20)) * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		checkNoOverlap(t, s, ids, pool)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		info, _ := s.Poll(id)
		if !info.State.Terminal() {
			t.Errorf("job %d stuck in %s", id, info.State)
		}
	}
}
