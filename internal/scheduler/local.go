package scheduler

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
)

// Local executes jobs immediately on the host, one at a time, in
// submission order. It gives the framework a uniform Scheduler interface
// for real (non-simulated) runs.
type Local struct {
	exec   Executor
	nextID int
	jobs   map[int]*Info
	clock  float64
}

// NewLocal returns a local scheduler delegating payloads to exec.
func NewLocal(exec Executor) (*Local, error) {
	if exec == nil {
		return nil, fmt.Errorf("scheduler: nil executor")
	}
	return &Local{exec: exec, nextID: 1, jobs: map[int]*Info{}}, nil
}

// Name implements Scheduler.
func (l *Local) Name() string { return "local" }

// Submit implements Scheduler: the job runs synchronously. The
// "scheduler.submit" injection point models the sbatch/qsub front end
// rejecting transiently (a controller timeout, a full queue).
func (l *Local) Submit(job *Job) (int, error) {
	if err := job.Normalize(); err != nil {
		return 0, err
	}
	if err := faultinject.Fire("scheduler.submit"); err != nil {
		return 0, fmt.Errorf("scheduler: submit %s: %w", job.Name, err)
	}
	id := l.nextID
	l.nextID++
	info := &Info{
		ID:         id,
		Job:        job,
		State:      Running,
		Nodes:      []string{"localhost"},
		SubmitTime: l.clock,
		StartTime:  l.clock,
	}
	l.jobs[id] = info

	wallStart := time.Now()
	res := l.exec(job, info.Nodes)
	elapsed := res.Duration
	if elapsed <= 0 {
		elapsed = time.Since(wallStart)
	}
	l.clock += elapsed.Seconds()
	info.EndTime = l.clock
	info.Stdout = res.Stdout
	info.Stderr = res.Stderr
	info.ExitCode = res.ExitCode
	if res.ExitCode == 0 {
		info.State = Completed
	} else {
		info.State = Failed
	}
	return id, nil
}

// Poll implements Scheduler. The "scheduler.poll" injection point
// models squeue/qstat timing out.
func (l *Local) Poll(id int) (*Info, error) {
	if err := faultinject.Fire("scheduler.poll"); err != nil {
		return nil, fmt.Errorf("scheduler: poll %d: %w", id, err)
	}
	info, ok := l.jobs[id]
	if !ok {
		return nil, fmt.Errorf("scheduler: no job %d", id)
	}
	snapshot := *info
	return &snapshot, nil
}

// Wait implements Scheduler; local jobs are already complete by the time
// Submit returns.
func (l *Local) Wait(id int) (*Info, error) { return l.Poll(id) }

// Cancel implements Scheduler; local jobs cannot be cancelled after the
// fact.
func (l *Local) Cancel(id int) error {
	if _, ok := l.jobs[id]; !ok {
		return fmt.Errorf("scheduler: no job %d", id)
	}
	return fmt.Errorf("scheduler: local jobs run synchronously and cannot be cancelled")
}

// Script implements Scheduler: a plain shell script.
func (l *Local) Script(job *Job) string {
	j := *job
	if err := j.Normalize(); err != nil {
		return "# invalid job: " + err.Error()
	}
	out := "#!/bin/bash\n"
	for _, line := range renderEnv(j.Env) {
		out += line + "\n"
	}
	return out + joinCommands(j.Commands) + "\n"
}
