// Package scheduler provides the job schedulers benchmarks run through:
// simulated SLURM and PBS (the systems of Table 5 run one or the other)
// and a pass-through local scheduler for host execution.
//
// The simulated schedulers reproduce the behaviour the framework depends
// on (paper §2.3, challenge (2)): batch-script generation from job
// requirements, account/QOS handling, node allocation with a FIFO queue,
// and job lifecycle states. Job payloads are executed by a caller-supplied
// Executor, which is where the machine model (or real host code) plugs in.
package scheduler

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Job describes one batch job: the resources it needs and the commands it
// runs. The resource triple (NumTasks, TasksPerNode, CPUsPerTask) follows
// ReFrame's num_tasks / num_tasks_per_node / num_cpus_per_task variables,
// which the paper sets on the command line for HPGMG.
type Job struct {
	Name    string
	Account string
	QOS     string

	NumTasks     int
	TasksPerNode int // 0 = pack as many as fit
	CPUsPerTask  int // 0 = 1

	TimeLimit time.Duration // 0 = scheduler default
	Env       map[string]string
	Commands  []string
}

// Normalize fills defaulted fields and validates the rest.
func (j *Job) Normalize() error {
	if j.Name == "" {
		return fmt.Errorf("scheduler: job needs a name")
	}
	if j.NumTasks <= 0 {
		return fmt.Errorf("scheduler: job %s: NumTasks must be positive", j.Name)
	}
	if j.CPUsPerTask <= 0 {
		j.CPUsPerTask = 1
	}
	if j.TasksPerNode < 0 {
		return fmt.Errorf("scheduler: job %s: negative TasksPerNode", j.Name)
	}
	if j.TimeLimit == 0 {
		j.TimeLimit = time.Hour
	}
	return nil
}

// State is the lifecycle state of a submitted job.
type State int

const (
	Pending State = iota
	Running
	Completed
	Failed
	Cancelled
	TimedOut
)

func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case Failed:
		return "FAILED"
	case Cancelled:
		return "CANCELLED"
	case TimedOut:
		return "TIMEOUT"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether no further state changes can occur.
func (s State) Terminal() bool { return s >= Completed }

// Info is the observable record of a submitted job.
type Info struct {
	ID       int
	Job      *Job
	State    State
	ExitCode int
	Stdout   string
	Stderr   string
	Nodes    []string // allocated node names

	// Simulated wall-clock seconds since scheduler start.
	SubmitTime float64
	StartTime  float64
	EndTime    float64
}

// QueueWait returns how long the job sat in the queue (simulated seconds).
func (i *Info) QueueWait() float64 {
	if i.State == Pending {
		return -1
	}
	return i.StartTime - i.SubmitTime
}

// Runtime returns the job's execution time (simulated seconds).
func (i *Info) Runtime() float64 {
	if !i.State.Terminal() {
		return -1
	}
	return i.EndTime - i.StartTime
}

// Result is what an Executor reports for one job payload.
type Result struct {
	Stdout   string
	Stderr   string
	ExitCode int
	// Duration is the job's simulated (or measured) execution time.
	Duration time.Duration
}

// Executor runs a job's payload on its allocated nodes. For simulated
// systems this is the machine model; for the local scheduler the payload
// really executes on the host.
type Executor func(job *Job, nodes []string) Result

// Scheduler is the interface the framework drives.
type Scheduler interface {
	// Name identifies the scheduler dialect ("slurm", "pbs", "local").
	Name() string
	// Submit enqueues the job and returns its ID.
	Submit(job *Job) (int, error)
	// Poll reports a snapshot of a job.
	Poll(id int) (*Info, error)
	// Wait advances the scheduler until the job reaches a terminal state.
	Wait(id int) (*Info, error)
	// Cancel terminates a pending or running job.
	Cancel(id int) error
	// Script renders the batch script that expresses the job in the
	// scheduler's submission language, for audit (Principle 5).
	Script(job *Job) string
}

// renderEnv renders job environment exports in sorted order.
func renderEnv(env map[string]string) []string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		lines = append(lines, fmt.Sprintf("export %s=%q", k, env[k]))
	}
	return lines
}

// nodesNeeded computes the node count for a job on nodes with the given
// core count, and the effective tasks-per-node.
func nodesNeeded(j *Job, coresPerNode int) (nodes, tasksPerNode int, err error) {
	tpn := j.TasksPerNode
	if tpn == 0 {
		tpn = coresPerNode / j.CPUsPerTask
		if tpn < 1 {
			tpn = 1
		}
	}
	if tpn*j.CPUsPerTask > coresPerNode {
		return 0, 0, fmt.Errorf("scheduler: job %s needs %d cpus/node but nodes have %d",
			j.Name, tpn*j.CPUsPerTask, coresPerNode)
	}
	n := (j.NumTasks + tpn - 1) / tpn
	return n, tpn, nil
}

func formatDuration(d time.Duration) string {
	total := int(d.Seconds())
	return fmt.Sprintf("%02d:%02d:%02d", total/3600, (total%3600)/60, total%60)
}

func joinCommands(cmds []string) string {
	return strings.Join(cmds, "\n")
}
