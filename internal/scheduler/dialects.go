package scheduler

import (
	"fmt"
	"strings"
)

// slurmDialect renders sbatch scripts and nid-style node names.
type slurmDialect struct{}

func (slurmDialect) name() string { return "slurm" }

func (slurmDialect) nodeName(i int) string { return fmt.Sprintf("nid%06d", i+1) }

func (slurmDialect) script(j *Job, nodes, tasksPerNode int) string {
	var b strings.Builder
	b.WriteString("#!/bin/bash\n")
	fmt.Fprintf(&b, "#SBATCH --job-name=%s\n", j.Name)
	if j.Account != "" {
		fmt.Fprintf(&b, "#SBATCH --account=%s\n", j.Account)
	}
	if j.QOS != "" {
		fmt.Fprintf(&b, "#SBATCH --qos=%s\n", j.QOS)
	}
	fmt.Fprintf(&b, "#SBATCH --nodes=%d\n", nodes)
	fmt.Fprintf(&b, "#SBATCH --ntasks=%d\n", j.NumTasks)
	fmt.Fprintf(&b, "#SBATCH --ntasks-per-node=%d\n", tasksPerNode)
	fmt.Fprintf(&b, "#SBATCH --cpus-per-task=%d\n", j.CPUsPerTask)
	fmt.Fprintf(&b, "#SBATCH --time=%s\n", formatDuration(j.TimeLimit))
	for _, line := range renderEnv(j.Env) {
		b.WriteString(line + "\n")
	}
	b.WriteString(joinCommands(j.Commands))
	b.WriteString("\n")
	return b.String()
}

// pbsDialect renders qsub scripts and cn-style node names.
type pbsDialect struct{}

func (pbsDialect) name() string { return "pbs" }

func (pbsDialect) nodeName(i int) string { return fmt.Sprintf("cn%04d", i+1) }

func (pbsDialect) script(j *Job, nodes, tasksPerNode int) string {
	var b strings.Builder
	b.WriteString("#!/bin/bash\n")
	fmt.Fprintf(&b, "#PBS -N %s\n", j.Name)
	if j.Account != "" {
		fmt.Fprintf(&b, "#PBS -A %s\n", j.Account)
	}
	if j.QOS != "" {
		fmt.Fprintf(&b, "#PBS -q %s\n", j.QOS)
	}
	fmt.Fprintf(&b, "#PBS -l select=%d:ncpus=%d:mpiprocs=%d\n",
		nodes, tasksPerNode*j.CPUsPerTask, tasksPerNode)
	fmt.Fprintf(&b, "#PBS -l walltime=%s\n", formatDuration(j.TimeLimit))
	for _, line := range renderEnv(j.Env) {
		b.WriteString(line + "\n")
	}
	b.WriteString("cd $PBS_O_WORKDIR\n")
	b.WriteString(joinCommands(j.Commands))
	b.WriteString("\n")
	return b.String()
}
