// Package telemetry is the framework's observability layer: a
// lightweight span tracer, a concurrency-safe metrics registry rendered
// in Prometheus text exposition format, and an slog handler that stamps
// every log line with the surrounding span's context.
//
// The pipeline itself determines results just as much as the benchmark
// binary does (regressions in the harness are as common as regressions
// in the code under test), so the paper's "record everything" discipline
// extends to the harness: every Runner.Run produces a span tree —
// resolve → concretize → build → schedule → extract → append — whose
// stage durations land both in the perflog entry's extras (queryable
// FOM-adjacent data) and in the runner_stage_seconds histogram served by
// benchd's /metrics endpoint.
//
// Tracing is context-propagated and nil-safe: code paths without a
// tracer in their context publish to the process-wide Default tracer,
// and Span methods tolerate nil receivers so instrumentation never
// forces error handling on callers.
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value span attribute.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprint(v)} }

// Span is one timed operation in a trace. Spans nest: children are
// attached by Start when the context already carries a span. All methods
// are safe for concurrent use (buildsys attaches DAG-node children from
// worker goroutines) and safe on a nil receiver.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time // zero until End
	err      string
	attrs    []Attr
	children []*Span
	parent   *Span

	// root-only fields: where the finished trace is published.
	tracer  *Tracer
	traceID string
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the id of the trace this span belongs to.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	r := s.Root()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// Root walks up to the trace's root span.
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	r := s
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// SetAttr records (or overwrites) one attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns one attribute's value ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// End finishes the span, recording the error (nil is a success). Ending
// a root span publishes the whole trace to its tracer. End is
// idempotent: only the first call sets the end time.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	if err != nil {
		s.err = err.Error()
	}
	tracer, isRoot := s.tracer, s.parent == nil
	id := s.traceID
	s.mu.Unlock()
	if isRoot && tracer != nil {
		tracer.publish(id, s)
	}
}

// Duration returns end-start, or time-since-start for a live span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SpanView is an immutable snapshot of a span subtree, the JSON shape
// served by benchd's /v1/traces endpoints.
type SpanView struct {
	Name      string            `json:"name"`
	Start     time.Time         `json:"start"`
	DurationS float64           `json:"duration_s"`
	Error     string            `json:"error,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Children  []SpanView        `json:"children,omitempty"`
}

// View snapshots the span and its children recursively.
func (s *Span) View() SpanView {
	if s == nil {
		return SpanView{}
	}
	s.mu.Lock()
	v := SpanView{
		Name:      s.name,
		Start:     s.start,
		DurationS: s.end.Sub(s.start).Seconds(),
		Error:     s.err,
	}
	if s.end.IsZero() {
		v.DurationS = time.Since(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.View())
	}
	return v
}

// RenderTree renders a span snapshot as an indented tree with durations
// and attributes — what `benchctl run --trace` prints.
//
//	run (0.012s) benchmark=hpgmg-fv system=archer2
//	├─ resolve (0.000s)
//	├─ build (0.004s)
//	│  ├─ build:gcc (0.001s) state=cached
//	...
func RenderTree(v SpanView) string {
	var sb strings.Builder
	renderNode(&sb, v, "", "", "")
	return sb.String()
}

func renderNode(sb *strings.Builder, v SpanView, prefix, branch, childPrefix string) {
	sb.WriteString(prefix + branch + v.Name)
	fmt.Fprintf(sb, " (%.3fs)", v.DurationS)
	keys := make([]string, 0, len(v.Attrs))
	for k := range v.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(" " + k + "=" + v.Attrs[k])
	}
	if v.Error != "" {
		sb.WriteString(" error=" + v.Error)
	}
	sb.WriteByte('\n')
	for i, c := range v.Children {
		b, cp := "├─ ", "│  "
		if i == len(v.Children)-1 {
			b, cp = "└─ ", "   "
		}
		renderNode(sb, c, prefix+childPrefix, b, cp)
	}
}

// Trace is one finished span tree held by a tracer's ring buffer.
type Trace struct {
	ID   string
	Root *Span
}

// Tracer keeps a bounded in-memory ring of recently finished traces.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	traces []*Trace // oldest first
	seq    int
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (64 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{cap: capacity}
}

// Default is the process-wide tracer used when a context carries none.
var Default = NewTracer(256)

func (t *Tracer) publish(id string, root *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == "" {
		t.seq++
		id = fmt.Sprintf("trace-%06d", t.seq)
		root.mu.Lock()
		root.traceID = id
		root.mu.Unlock()
	}
	t.traces = append(t.traces, &Trace{ID: id, Root: root})
	if len(t.traces) > t.cap {
		t.traces = t.traces[len(t.traces)-t.cap:]
	}
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.traces))
	copy(out, t.traces)
	return out
}

// Get returns the most recent trace with the given id.
func (t *Tracer) Get(id string) (*Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.traces) - 1; i >= 0; i-- {
		if t.traces[i].ID == id {
			return t.traces[i], true
		}
	}
	return nil, false
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
	traceIDKey
)

// WithTracer returns a context whose root spans publish to tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// WithTraceID pins the id the next root span started under ctx will
// publish as — benchd uses the run id, so /v1/traces/{runID} works.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// FromContext returns the span active in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start begins a span named name. If ctx already carries a span the new
// span becomes its child; otherwise it is the root of a new trace,
// published on End to the context's tracer (Default when none is set).
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now(), attrs: attrs}
	if parent := FromContext(ctx); parent != nil {
		s.parent = parent
		parent.addChild(s)
	} else {
		if tr, ok := ctx.Value(tracerKey).(*Tracer); ok && tr != nil {
			s.tracer = tr
		} else {
			s.tracer = Default
		}
		if id, ok := ctx.Value(traceIDKey).(string); ok {
			s.traceID = id
		}
	}
	return context.WithValue(ctx, spanKey, s), s
}
