package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", "state").With("done")
	c.Inc()
	c.Add(2.5)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3.5 {
		t.Errorf("counter = %g, want 3.5", c.Value())
	}
	g := r.Gauge("queue_depth", "Depth.").With()
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if g.Value() != 7 {
		t.Errorf("gauge = %g, want 7", g.Value())
	}
	// Re-registration returns the same series.
	if r.Counter("jobs_total", "Jobs.", "state").With("done") != c {
		t.Error("re-registered counter is a different instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("sum = %g, want 56.05", h.Sum())
	}
	text := r.Render()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

// parsePrometheus is a minimal exposition-format checker: every
// non-comment line must be `name{labels} value` or `name value` with a
// parseable float/int value, and every sample's family must have a
// preceding # TYPE line.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valText := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil && valText != "+Inf" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no preceding # TYPE", line)
			}
		}
		samples[key] = val
	}
	return samples
}

func TestExpositionFormatParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "Requests.", "route", "code").With("/v1/runs", "202").Add(3)
	r.Gauge("in_flight", "In flight.").With().Set(2)
	r.Histogram("stage_seconds", "Stages.", nil, "stage").With("build").Observe(0.003)
	r.Counter("odd_labels_total", "Escaping.", "v").With(`a"b\c` + "\nd").Inc()

	samples := parsePrometheus(t, r.Render())
	if samples[`http_requests_total{route="/v1/runs",code="202"}`] != 3 {
		t.Errorf("labelled counter sample missing: %v", samples)
	}
	if samples[`in_flight`] != 2 {
		t.Errorf("gauge sample missing: %v", samples)
	}
	if samples[`stage_seconds_count{stage="build"}`] != 1 {
		t.Errorf("histogram count missing: %v", samples)
	}
	if samples[`stage_seconds_bucket{stage="build",le="+Inf"}`] != 1 {
		t.Errorf("+Inf bucket missing: %v", samples)
	}
	if samples[`odd_labels_total{v="a\"b\\c\nd"}`] != 1 {
		t.Errorf("escaped label sample missing: %v", samples)
	}
}

func TestEmptyFamilyRendersTypeOnly(t *testing.T) {
	r := NewRegistry()
	r.Histogram("runner_stage_seconds", "Stage durations.", nil, "stage")
	text := r.Render()
	if !strings.Contains(text, "# TYPE runner_stage_seconds histogram") {
		t.Errorf("empty family lost its TYPE line:\n%s", text)
	}
	if strings.Contains(text, "runner_stage_seconds_bucket") {
		t.Errorf("empty family rendered samples:\n%s", text)
	}
}

// TestConcurrentMetricUpdates exercises counters and histograms from
// many goroutines; run under -race.
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	cv := r.Counter("ops_total", "Ops.", "kind")
	hv := r.Histogram("op_seconds", "Op latency.", nil, "kind")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"read", "write"}[w%2]
			for i := 0; i < perWorker; i++ {
				cv.With(kind).Inc()
				hv.With(kind).Observe(float64(i) / perWorker)
				if i%100 == 0 {
					r.Render() // concurrent scrapes
				}
			}
		}(w)
	}
	wg.Wait()
	total := cv.With("read").Value() + cv.With("write").Value()
	if total != workers*perWorker {
		t.Errorf("counter total = %g, want %d", total, workers*perWorker)
	}
	if n := hv.With("read").Count() + hv.With("write").Count(); n != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", n, workers*perWorker)
	}
}

func TestValueAndSumValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls_total", "calls", "op")
	c.With("a").Add(3)
	c.With("b").Add(4)
	g := r.Gauge("depth", "depth")
	g.With().Set(9)
	h := r.Histogram("lat", "latency", nil)
	h.With().Observe(0.5)
	h.With().Observe(1.5)

	if v, ok := r.Value("calls_total", "a"); !ok || v != 3 {
		t.Errorf("Value(calls_total, a) = %v, %v", v, ok)
	}
	if v, ok := r.Value("depth"); !ok || v != 9 {
		t.Errorf("Value(depth) = %v, %v", v, ok)
	}
	if v, ok := r.Value("lat"); !ok || v != 2 {
		t.Errorf("Value(lat) = %v, %v; want histogram count 2", v, ok)
	}
	if _, ok := r.Value("calls_total", "missing"); ok {
		t.Error("missing series reported present")
	}
	if _, ok := r.Value("no_such_family"); ok {
		t.Error("missing family reported present")
	}
	// Probing must not materialise series.
	if got := r.SumValues("calls_total"); got != 7 {
		t.Errorf("SumValues(calls_total) = %v, want 7", got)
	}
	if got := r.SumValues("nope"); got != 0 {
		t.Errorf("SumValues(nope) = %v", got)
	}
}
