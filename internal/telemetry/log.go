package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// ContextHandler wraps another slog.Handler and enriches every record
// logged with a context carrying a span: the record gains the current
// span's name, the trace id, and the *root* span's attributes (run id,
// benchmark, system — whatever the pipeline stamped on the trace). One
// shared handler therefore makes every log line across the pipeline
// self-identifying without threading loggers through APIs.
type ContextHandler struct {
	inner slog.Handler
}

// NewHandler wraps inner with span-context enrichment.
func NewHandler(inner slog.Handler) *ContextHandler {
	return &ContextHandler{inner: inner}
}

// Enabled implements slog.Handler.
func (h *ContextHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler.
func (h *ContextHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := FromContext(ctx); s != nil {
		rec = rec.Clone()
		if id := s.TraceID(); id != "" {
			rec.AddAttrs(slog.String("trace", id))
		}
		rec.AddAttrs(slog.String("span", s.Name()))
		root := s.Root()
		root.mu.Lock()
		attrs := append([]Attr(nil), root.attrs...)
		root.mu.Unlock()
		for _, a := range attrs {
			rec.AddAttrs(slog.String(a.Key, a.Value))
		}
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs implements slog.Handler.
func (h *ContextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ContextHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *ContextHandler) WithGroup(name string) slog.Handler {
	return &ContextHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the framework's structured logger: text or JSON
// records on w at the given level, enriched with span context.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	if json {
		inner = slog.NewJSONHandler(w, opts)
	} else {
		inner = slog.NewTextHandler(w, opts)
	}
	return slog.New(NewHandler(inner))
}
