package telemetry

import (
	"sort"
	"strings"
)

// The snapshot half of the metrics API: a typed, allocation-light view
// of every registered series, so in-process consumers (the obs sampler)
// read values directly instead of re-parsing the Prometheus text
// exposition. Snapshot never mutates the registry and creates no
// series; the exposition output is untouched by its existence.

// Sample kinds. Histograms are decomposed into two counter samples
// (<name>_count and <name>_sum) rather than per-bucket series, so the
// sampler's cardinality stays bounded by the family count, not the
// bucket count.
const (
	SampleCounter = "counter"
	SampleGauge   = "gauge"
)

// Sample is one (name, label values) series at one instant.
type Sample struct {
	Name   string   // family name (histograms: name_count / name_sum)
	Labels []string // label names, in registration order
	Values []string // label values, parallel to Labels
	Kind   string   // SampleCounter or SampleGauge
	Value  float64
}

// Key renders the canonical series identity — the same
// name{label="value",...} string the exposition format uses — which is
// what history stores and alert rules match on. Unlabelled series are
// just the bare name.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	return s.Name + labelString(s.Labels, s.Values, "", "")
}

// Snapshot returns the current value of every registered series,
// sorted by Key: counters and gauges as themselves, histograms as a
// _count (observations) and _sum (sum of observations) counter pair.
// It reads under the same locks as rendering, so a snapshot is
// internally consistent per family.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, key := range keys {
			values := strings.Split(key, labelSep)
			if key == "" {
				values = nil
			}
			switch m := series[i].(type) {
			case *Counter:
				out = append(out, Sample{Name: f.name, Labels: f.labels, Values: values,
					Kind: SampleCounter, Value: m.Value()})
			case *Gauge:
				out = append(out, Sample{Name: f.name, Labels: f.labels, Values: values,
					Kind: SampleGauge, Value: m.Value()})
			case *Histogram:
				out = append(out, Sample{Name: f.name + "_count", Labels: f.labels, Values: values,
					Kind: SampleCounter, Value: float64(m.Count())})
				out = append(out, Sample{Name: f.name + "_sum", Labels: f.labels, Values: values,
					Kind: SampleCounter, Value: m.Sum()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
