package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "run", String("benchmark", "hpgmg-fv"), String("system", "archer2"))
	cctx, build := Start(ctx, "build")
	_, node := Start(cctx, "build:gcc")
	node.SetAttr("state", "cached")
	node.End(nil)
	build.End(nil)
	_, exec := Start(ctx, "execute")
	exec.End(fmt.Errorf("boom"))
	root.End(nil)

	if tr.Len() != 1 {
		t.Fatalf("tracer holds %d traces, want 1", tr.Len())
	}
	trace := tr.Traces()[0]
	if trace.ID == "" {
		t.Error("trace has no auto-assigned id")
	}
	v := trace.Root.View()
	if v.Name != "run" || v.Attrs["benchmark"] != "hpgmg-fv" {
		t.Errorf("root view = %+v", v)
	}
	if len(v.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(v.Children))
	}
	if v.Children[0].Name != "build" || len(v.Children[0].Children) != 1 {
		t.Errorf("build subtree = %+v", v.Children[0])
	}
	if v.Children[0].Children[0].Attrs["state"] != "cached" {
		t.Errorf("node attrs = %v", v.Children[0].Children[0].Attrs)
	}
	if v.Children[1].Error != "boom" {
		t.Errorf("execute error = %q, want boom", v.Children[1].Error)
	}
	tree := RenderTree(v)
	for _, want := range []string{"run (", "├─ build", "│  └─ build:gcc", "state=cached", "└─ execute", "error=boom"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 3; i++ {
		c, s := Start(WithTraceID(ctx, fmt.Sprintf("t-%d", i)), "run")
		_ = c
		s.End(nil)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2 (ring cap)", tr.Len())
	}
	if _, ok := tr.Get("t-0"); ok {
		t.Error("oldest trace t-0 should have been evicted")
	}
	if _, ok := tr.Get("t-2"); !ok {
		t.Error("newest trace t-2 missing")
	}
}

func TestWithTraceIDPinsID(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTraceID(WithTracer(context.Background(), tr), "run-000042")
	_, s := Start(ctx, "run")
	if got := s.TraceID(); got != "run-000042" {
		t.Errorf("TraceID = %q before End", got)
	}
	s.End(nil)
	if _, ok := tr.Get("run-000042"); !ok {
		t.Error("trace not retrievable by pinned id")
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	_, s := Start(context.Background(), "x")
	s.End(nil)
	d := s.Duration()
	time.Sleep(5 * time.Millisecond)
	s.End(fmt.Errorf("late"))
	if s.Duration() != d {
		t.Error("second End changed the duration")
	}
	if s.View().Error != "" {
		t.Error("second End recorded an error")
	}
	var nilSpan *Span
	nilSpan.End(nil)
	nilSpan.SetAttr("k", "v")
	if nilSpan.Duration() != 0 || nilSpan.Name() != "" || nilSpan.TraceID() != "" {
		t.Error("nil span accessors not zero-valued")
	}
}

// TestConcurrentChildSpans mirrors buildsys attaching DAG-node spans
// from worker goroutines; run under -race.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "build")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := Start(ctx, fmt.Sprintf("node-%d", i))
			s.SetAttr("i", fmt.Sprint(i))
			s.End(nil)
		}(i)
	}
	wg.Wait()
	root.End(nil)
	if got := len(root.View().Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

func TestContextHandlerStampsSpanContext(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelDebug, false)
	ctx := WithTracer(context.Background(), NewTracer(2))
	ctx = WithTraceID(ctx, "run-000007")
	ctx, root := Start(ctx, "run", String("run_id", "run-000007"), String("benchmark", "hpgmg-fv"), String("system", "archer2"))
	cctx, _ := Start(ctx, "build")
	logger.InfoContext(cctx, "installing")
	root.End(nil)

	line := buf.String()
	for _, want := range []string{"trace=run-000007", "span=build", "run_id=run-000007", "benchmark=hpgmg-fv", "system=archer2"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	buf.Reset()
	logger.Info("no context")
	if strings.Contains(buf.String(), "span=") {
		t.Errorf("context-free line gained span attrs: %s", buf.String())
	}
}
