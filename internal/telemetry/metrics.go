package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics half of the package: a small, dependency-free registry of
// counters, gauges, and fixed-bucket histograms, rendered in Prometheus
// text exposition format (version 0.0.4). Metric values use atomics on
// the hot path — Inc/Add/Observe never take the registry lock — while
// series creation and rendering serialise on per-family mutexes.

// DefBuckets are the default histogram buckets for durations in seconds,
// spanning sub-millisecond harness stages to minute-scale queue waits.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Value() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Value() }

// Histogram counts observations into fixed upper-bound buckets.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its metadata plus every labelled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	keys   []string       // insertion-ordered series keys
}

const labelSep = "\x1f"

func (f *family) get(labelValues []string, make func() any) any {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s expects %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	f.keys = append(f.keys, key)
	return m
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Call with no arguments for an unlabelled counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues, func() any {
		h := &Histogram{bounds: v.f.buckets}
		h.counts = make([]atomic.Uint64, len(h.bounds))
		return h
	}).(*Histogram)
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// DefaultRegistry is the process-wide registry: instrumented packages
// (core, buildsys, perfstore, service) register their families here at
// init, so any binary importing them exposes the full set.
var DefaultRegistry = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, series: map[string]any{}}
	r.families[name] = f
	return f
}

// Counter registers (or returns the existing) counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or returns the existing) gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or returns the existing) histogram family with
// the given upper bucket bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &HistogramVec{f: r.family(name, help, kindHistogram, bounds, labels)}
}

// Value returns the current value of one registered series — a
// counter's count, a gauge's level, or a histogram's observation count
// — and whether that exact (name, label values) series exists. It reads
// without creating, so probing an unused series does not materialise
// it; tests and the chaos harness assert on metrics through this
// instead of scraping text.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	m, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch m := m.(type) {
	case *Counter:
		return m.Value(), true
	case *Gauge:
		return m.Value(), true
	case *Histogram:
		return float64(m.Count()), true
	}
	return 0, false
}

// SumValues returns the summed value of every series in a family
// (counters and gauges; histograms contribute their observation
// counts). Useful when the interesting quantity spans label values,
// e.g. faults fired across every injection point.
func (r *Registry) SumValues(name string) float64 {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	f.mu.Lock()
	series := make([]any, 0, len(f.series))
	for _, m := range f.series {
		series = append(series, m)
	}
	f.mu.Unlock()
	var total float64
	for _, m := range series {
		switch m := m.(type) {
		case *Counter:
			total += m.Value()
		case *Gauge:
			total += m.Value()
		case *Histogram:
			total += float64(m.Count())
		}
	}
	return total
}

// WritePrometheus renders every family in text exposition format,
// families sorted by name, series in creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	var sb strings.Builder
	for _, f := range fams {
		f.render(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Render returns the registry's Prometheus text exposition.
func (r *Registry) Render() string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

func (f *family) render(sb *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	if f.help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	for i, key := range keys {
		values := strings.Split(key, labelSep)
		if key == "" {
			values = nil
		}
		switch m := series[i].(type) {
		case *Counter:
			fmt.Fprintf(sb, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatValue(m.Value()))
		case *Gauge:
			fmt.Fprintf(sb, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatValue(m.Value()))
		case *Histogram:
			var cum uint64
			for bi, bound := range m.bounds {
				cum += m.counts[bi].Load()
				fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", formatValue(bound)), cum)
			}
			fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, values, "le", "+Inf"), m.Count())
			fmt.Fprintf(sb, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatValue(m.Sum()))
			fmt.Fprintf(sb, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Count())
		}
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram "le" bound). Empty label sets render as "".
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var parts []string
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		parts = append(parts, n+`="`+escapeLabel(v)+`"`)
	}
	if extraK != "" {
		parts = append(parts, extraK+`="`+escapeLabel(extraV)+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
