package telemetry

import (
	"bytes"
	"testing"
)

// TestSnapshotTypedSamples: every registered series shows up once with
// its kind, labels, and current value; histograms decompose into a
// _count/_sum counter pair.
func TestSnapshotTypedSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs", "status").With("ok").Add(3)
	r.Counter("jobs_total", "jobs", "status").With("failed").Inc()
	r.Gauge("depth", "queue depth").With().Set(7)
	h := r.Histogram("latency_seconds", "latency", nil, "route")
	h.With("/v1/runs").Observe(0.25)
	h.With("/v1/runs").Observe(0.75)

	samples := r.Snapshot()
	byKey := map[string]Sample{}
	for _, s := range samples {
		if _, dup := byKey[s.Key()]; dup {
			t.Fatalf("duplicate sample key %q", s.Key())
		}
		byKey[s.Key()] = s
	}
	want := []struct {
		key   string
		kind  string
		value float64
	}{
		{`jobs_total{status="ok"}`, SampleCounter, 3},
		{`jobs_total{status="failed"}`, SampleCounter, 1},
		{`depth`, SampleGauge, 7},
		{`latency_seconds_count{route="/v1/runs"}`, SampleCounter, 2},
		{`latency_seconds_sum{route="/v1/runs"}`, SampleCounter, 1},
	}
	if len(samples) != len(want) {
		t.Fatalf("%d samples, want %d: %v", len(samples), len(want), keysOf(samples))
	}
	for _, w := range want {
		s, ok := byKey[w.key]
		if !ok {
			t.Errorf("missing sample %q (have %v)", w.key, keysOf(samples))
			continue
		}
		if s.Kind != w.kind || s.Value != w.value {
			t.Errorf("%s: kind=%s value=%g, want %s/%g", w.key, s.Kind, s.Value, w.kind, w.value)
		}
	}
	// Sorted by key, so history files and diffs are stable.
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Key() >= samples[i].Key() {
			t.Fatalf("samples not sorted: %q before %q", samples[i-1].Key(), samples[i].Key())
		}
	}
}

func keysOf(samples []Sample) []string {
	out := make([]string, len(samples))
	for i, s := range samples {
		out[i] = s.Key()
	}
	return out
}

// TestSnapshotLeavesExpositionIdentical: taking snapshots must not
// perturb the Prometheus text rendering — no new series, no reordering,
// byte-identical output.
func TestSnapshotLeavesExpositionIdentical(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", "k").With("x").Add(2)
	r.Gauge("b", "b").With().Set(1.5)
	r.Histogram("c_seconds", "c", []float64{0.1, 1}, "r").With("q").Observe(0.5)

	var before bytes.Buffer
	r.WritePrometheus(&before)
	for i := 0; i < 3; i++ {
		if got := r.Snapshot(); len(got) == 0 {
			t.Fatal("empty snapshot")
		}
	}
	var after bytes.Buffer
	r.WritePrometheus(&after)
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("exposition changed after Snapshot:\n--- before\n%s\n--- after\n%s", before.String(), after.String())
	}
}

// TestSnapshotKeyMatchesExposition: the Key() rendering is exactly the
// series identity the exposition format prints, so alert rules and
// /v1/metrics/history names can be copied from /metrics output.
func TestSnapshotKeyMatchesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", "a", "b").With(`va"l`, "v2").Inc()
	samples := r.Snapshot()
	if len(samples) != 1 {
		t.Fatalf("%d samples", len(samples))
	}
	key := samples[0].Key()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !bytes.Contains(buf.Bytes(), []byte(key)) {
		t.Fatalf("exposition does not contain key %q:\n%s", key, buf.String())
	}
}
