// Package env holds per-system software environments: which compilers a
// system installs, which packages are provided by the system rather than
// built (externals), provider preferences, and scheduler accounting
// details. These are the framework's "system-level Spack configurations"
// (paper §2.2) that make builds reproducible "by anyone else using the
// system default environment" (Principle 4), together with the
// system-specific run details of Principle 5.
package env

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/concretize"
	"repro/internal/repo"
	"repro/internal/spec"
	"repro/internal/yamlite"
)

// SystemConfig is the software environment of one system.
type SystemConfig struct {
	// System is the canonical system name (matching internal/platform).
	System string

	// Compilers available on the system; the first entry is the system
	// default used when a spec names no compiler.
	Compilers []spec.Compiler

	// Externals are system-provided installations the concretizer may
	// reuse (the system MPI, the system Python, ...).
	Externals []concretize.External

	// Providers maps virtual packages to this system's preferred
	// provider recipe.
	Providers map[string]string

	// Account and QOS are passed to the scheduler (the paper's
	// -J'--account'/-J'--qos=standard' command-line details).
	Account string
	QOS     string

	// EnvVars are exported into every job on this system.
	EnvVars map[string]string
}

// ConcretizeOptions assembles the concretizer inputs for this system.
// targetArch is the partition's instruction-set family (variants named
// "target" default to it).
func (c *SystemConfig) ConcretizeOptions(r *repo.Repository, targetArch string) concretize.Options {
	return concretize.Options{
		Repo:       r,
		Compilers:  c.Compilers,
		Externals:  c.Externals,
		Providers:  c.Providers,
		TargetArch: targetArch,
	}
}

// DefaultCompiler returns the system default compiler.
func (c *SystemConfig) DefaultCompiler() (spec.Compiler, error) {
	if len(c.Compilers) == 0 {
		return spec.Compiler{}, fmt.Errorf("env: system %q configures no compilers", c.System)
	}
	return c.Compilers[0], nil
}

// Registry maps system names to their configurations.
type Registry struct {
	configs map[string]*SystemConfig
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{configs: map[string]*SystemConfig{}} }

// Add registers a system configuration.
func (r *Registry) Add(c *SystemConfig) error {
	if c.System == "" {
		return fmt.Errorf("env: config with empty system name")
	}
	if _, dup := r.configs[c.System]; dup {
		return fmt.Errorf("env: duplicate config for system %q", c.System)
	}
	r.configs[c.System] = c
	return nil
}

// MustAdd is Add for statically known-good configs.
func (r *Registry) MustAdd(c *SystemConfig) {
	if err := r.Add(c); err != nil {
		panic(err)
	}
}

// ForSystem returns the configuration for a system. Unknown systems get
// a minimal default environment — mirroring the framework's behaviour
// that "a basic Spack environment will be automatically created, but no
// system packages will be added" (paper §2.2).
func (r *Registry) ForSystem(name string) *SystemConfig {
	if c, ok := r.configs[name]; ok {
		return c
	}
	return &SystemConfig{
		System: name,
		Compilers: []spec.Compiler{
			{Name: "gcc", Version: spec.ExactVersion("12.1.0")},
		},
	}
}

// Known reports whether the system has an explicit configuration.
func (r *Registry) Known(name string) bool {
	_, ok := r.configs[name]
	return ok
}

// Names lists configured systems, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.configs))
	for n := range r.configs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- Config file loading --------------------------------------------------

// LoadFile reads a system configuration from a YAML file of the form:
//
//	system: archer2
//	account: z19
//	qos: standard
//	compilers:
//	  - gcc@11.2.0
//	  - gcc@10.3.0
//	externals:
//	  - spec: cray-mpich@8.1.23
//	    path: /opt/cray/pe/mpich/8.1.23
//	providers:
//	  mpi: cray-mpich
//	env:
//	  OMP_PLACES: cores
func LoadFile(path string) (*SystemConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	return Parse(string(data))
}

// Parse decodes a system configuration document (see LoadFile).
func Parse(text string) (*SystemConfig, error) {
	doc, err := yamlite.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	m, err := yamlite.Map(doc)
	if err != nil {
		return nil, fmt.Errorf("env: top level must be a mapping: %w", err)
	}
	c := &SystemConfig{Providers: map[string]string{}, EnvVars: map[string]string{}}
	for _, key := range yamlite.Keys(m) {
		v := m[key]
		switch key {
		case "system":
			c.System, err = yamlite.Str(v)
		case "account":
			c.Account, err = yamlite.Str(v)
		case "qos":
			c.QOS, err = yamlite.Str(v)
		case "compilers":
			err = parseCompilers(c, v)
		case "externals":
			err = parseExternals(c, v)
		case "providers":
			err = parseStringMap(v, c.Providers)
		case "env":
			err = parseStringMap(v, c.EnvVars)
		default:
			return nil, fmt.Errorf("env: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("env: key %q: %w", key, err)
		}
	}
	if c.System == "" {
		return nil, fmt.Errorf("env: config missing 'system' name")
	}
	return c, nil
}

func parseCompilers(c *SystemConfig, v yamlite.Value) error {
	seq, err := yamlite.Seq(v)
	if err != nil {
		return err
	}
	for _, item := range seq {
		text, err := yamlite.Str(item)
		if err != nil {
			return err
		}
		comp, err := parseCompilerSpec(text)
		if err != nil {
			return err
		}
		c.Compilers = append(c.Compilers, comp)
	}
	return nil
}

// parseCompilerSpec reads "gcc@11.2.0" into an exact compiler.
func parseCompilerSpec(text string) (spec.Compiler, error) {
	name, ver, found := strings.Cut(text, "@")
	if !found || name == "" || ver == "" {
		return spec.Compiler{}, fmt.Errorf("compiler %q must be name@version", text)
	}
	return spec.Compiler{Name: name, Version: spec.ExactVersion(spec.Version(ver))}, nil
}

func parseExternals(c *SystemConfig, v yamlite.Value) error {
	seq, err := yamlite.Seq(v)
	if err != nil {
		return err
	}
	for _, item := range seq {
		m, err := yamlite.Map(item)
		if err != nil {
			return err
		}
		specText, err := yamlite.Str(m["spec"])
		if err != nil {
			return fmt.Errorf("external needs a 'spec': %w", err)
		}
		path, err := yamlite.Str(m["path"])
		if err != nil {
			return fmt.Errorf("external needs a 'path': %w", err)
		}
		s, err := spec.Parse(specText)
		if err != nil {
			return err
		}
		if !s.Version.IsExact() {
			return fmt.Errorf("external %q must pin an exact version", specText)
		}
		s.Concrete = true
		c.Externals = append(c.Externals, concretize.External{Spec: s, Path: path})
	}
	return nil
}

func parseStringMap(v yamlite.Value, into map[string]string) error {
	m, err := yamlite.Map(v)
	if err != nil {
		return err
	}
	for _, k := range yamlite.Keys(m) {
		s, err := yamlite.Str(m[k])
		if err != nil {
			return err
		}
		into[k] = s
	}
	return nil
}

// --- Environment capture ---------------------------------------------------

// Capture is a snapshot of the execution environment taken around a
// benchmark run, the framework's answer to ad-hoc collect_environment.sh
// scripts: enough to audit a result, without "too much detail around
// irrelevant aspects" (paper §1).
type Capture struct {
	Timestamp time.Time
	Hostname  string
	GoVersion string
	OS        string
	Arch      string
	NumCPU    int
	EnvVars   map[string]string
}

// CaptureEnvironment snapshots the current process environment, keeping
// only variables relevant to performance (the relevant prefixes cover
// threading, placement, and toolchain selection).
func CaptureEnvironment() Capture {
	host, _ := os.Hostname()
	cap := Capture{
		Timestamp: time.Now().UTC(),
		Hostname:  host,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		EnvVars:   map[string]string{},
	}
	relevant := []string{"OMP_", "GOMAXPROCS", "SLURM_", "PBS_", "MPI", "KMP_", "CUDA_", "HIP_"}
	for _, kv := range os.Environ() {
		k, v, _ := strings.Cut(kv, "=")
		for _, prefix := range relevant {
			if strings.HasPrefix(k, prefix) {
				cap.EnvVars[k] = v
				break
			}
		}
	}
	return cap
}

// Summary renders the capture as stable key: value lines.
func (c Capture) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timestamp: %s\n", c.Timestamp.Format(time.RFC3339))
	fmt.Fprintf(&b, "hostname: %s\n", c.Hostname)
	fmt.Fprintf(&b, "go: %s\n", c.GoVersion)
	fmt.Fprintf(&b, "os/arch: %s/%s\n", c.OS, c.Arch)
	fmt.Fprintf(&b, "ncpu: %d\n", c.NumCPU)
	keys := make([]string, 0, len(c.EnvVars))
	for k := range c.EnvVars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "env %s=%s\n", k, c.EnvVars[k])
	}
	return b.String()
}

// YAML renders the configuration in the format LoadFile/Parse read, so
// system configurations can be exported, shared, and versioned — the
// "shareable configuration files capturing nuance on different systems"
// of Principle 4.
func (c *SystemConfig) YAML() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system: %s\n", c.System)
	if c.Account != "" {
		fmt.Fprintf(&b, "account: %s\n", c.Account)
	}
	if c.QOS != "" {
		fmt.Fprintf(&b, "qos: %s\n", c.QOS)
	}
	if len(c.Compilers) > 0 {
		b.WriteString("compilers:\n")
		for _, comp := range c.Compilers {
			fmt.Fprintf(&b, "  - %s\n", comp)
		}
	}
	if len(c.Externals) > 0 {
		b.WriteString("externals:\n")
		for _, ext := range c.Externals {
			fmt.Fprintf(&b, "  - spec: %s\n    path: %s\n", ext.Spec.RootString(), ext.Path)
		}
	}
	if len(c.Providers) > 0 {
		b.WriteString("providers:\n")
		for _, k := range sortedStringKeys(c.Providers) {
			fmt.Fprintf(&b, "  %s: %s\n", k, c.Providers[k])
		}
	}
	if len(c.EnvVars) > 0 {
		b.WriteString("env:\n")
		for _, k := range sortedStringKeys(c.EnvVars) {
			fmt.Fprintf(&b, "  %s: %s\n", k, c.EnvVars[k])
		}
	}
	return b.String()
}

func sortedStringKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
