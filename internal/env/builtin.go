package env

import (
	"repro/internal/concretize"
	"repro/internal/spec"
)

// UKRegistry returns the builtin configurations for the systems of the
// study. Compiler defaults and externals are chosen so that concretizing
// hpgmg%gcc on each system reproduces Table 3 of the paper, and the
// compiler stable on each system covers the toolchains used in §3.1
// (GCC 9.2.0/10.3.0/12.1.0, oneAPI 2023.1.0).
func UKRegistry() *Registry {
	r := NewRegistry()

	r.MustAdd(&SystemConfig{
		System: "archer2",
		Compilers: []spec.Compiler{
			comp("gcc", "11.2.0"),
			comp("gcc", "10.3.0"),
			comp("cce", "15.0.0"),
		},
		Externals: []concretize.External{
			external("cray-mpich@8.1.23", "/opt/cray/pe/mpich/8.1.23"),
			external("python@3.10.12", "/usr"),
		},
		Providers: map[string]string{"mpi": "cray-mpich"},
		Account:   "z19",
		QOS:       "standard",
		EnvVars:   map[string]string{"OMP_PLACES": "cores"},
	})

	r.MustAdd(&SystemConfig{
		System: "cosma8",
		Compilers: []spec.Compiler{
			comp("gcc", "11.1.0"),
			comp("oneapi", "2023.1.0"),
		},
		Externals: []concretize.External{
			external("mvapich2@2.3.6", "/cosma/local/mvapich2/2.3.6"),
			external("python@2.7.15", "/usr"),
		},
		Providers: map[string]string{"mpi": "mvapich2"},
		Account:   "do009",
		EnvVars:   map[string]string{"OMP_PLACES": "cores"},
	})

	r.MustAdd(&SystemConfig{
		System: "csd3",
		Compilers: []spec.Compiler{
			comp("gcc", "11.2.0"),
			comp("oneapi", "2023.1.0"),
		},
		Externals: []concretize.External{
			external("openmpi@4.0.4", "/usr/local/software/openmpi/4.0.4"),
			external("python@3.8.2", "/usr/local/software/python/3.8.2"),
		},
		Providers: map[string]string{"mpi": "openmpi"},
		Account:   "support-cpu",
		QOS:       "cclake",
	})

	r.MustAdd(&SystemConfig{
		System: "isambard-macs",
		Compilers: []spec.Compiler{
			comp("gcc", "9.2.0"),
			comp("gcc", "10.3.0"),
			comp("gcc", "12.1.0"),
			comp("oneapi", "2023.1.0"),
		},
		Externals: []concretize.External{
			external("openmpi@4.0.3", "/software/openmpi/4.0.3"),
			external("python@3.7.5", "/usr"),
			external("cuda@11.4.2", "/software/cuda/11.4.2"),
		},
		Providers: map[string]string{"mpi": "openmpi", "opencl": "cuda"},
		Account:   "br-train",
	})

	r.MustAdd(&SystemConfig{
		System: "isambard-xci",
		Compilers: []spec.Compiler{
			comp("gcc", "10.3.0"),
			comp("gcc", "9.2.0"),
			comp("cce", "15.0.0"),
		},
		Externals: []concretize.External{
			external("cray-mpich@8.1.23", "/opt/cray/pe/mpich/8.1.23"),
			external("python@3.8.2", "/usr"),
		},
		Providers: map[string]string{"mpi": "cray-mpich"},
		Account:   "br-train",
	})

	r.MustAdd(&SystemConfig{
		System: "noctua2",
		Compilers: []spec.Compiler{
			comp("gcc", "12.1.0"),
			comp("gcc", "10.3.0"),
			comp("oneapi", "2023.1.0"),
		},
		Externals: []concretize.External{
			external("openmpi@4.1.4", "/opt/software/openmpi/4.1.4"),
			external("python@3.10.12", "/usr"),
		},
		Providers: map[string]string{"mpi": "openmpi"},
		Account:   "hpc-prf",
	})

	r.MustAdd(&SystemConfig{
		System: "local",
		Compilers: []spec.Compiler{
			comp("gcc", "12.1.0"),
		},
		EnvVars: map[string]string{},
	})

	return r
}

func comp(name, version string) spec.Compiler {
	return spec.Compiler{Name: name, Version: spec.ExactVersion(spec.Version(version))}
}

func external(specText, path string) concretize.External {
	s := spec.MustParse(specText)
	s.Concrete = true
	return concretize.External{Spec: s, Path: path}
}
