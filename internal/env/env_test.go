package env

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/concretize"
	"repro/internal/repo"
	"repro/internal/spec"
)

func TestUKRegistryCoversEstate(t *testing.T) {
	r := UKRegistry()
	for _, name := range []string{"archer2", "cosma8", "csd3", "isambard-macs", "isambard-xci", "noctua2", "local"} {
		if !r.Known(name) {
			t.Errorf("missing config for %s", name)
		}
	}
}

func TestDefaultCompilersMatchTable3(t *testing.T) {
	r := UKRegistry()
	want := map[string]string{
		"archer2":       "11.2.0",
		"cosma8":        "11.1.0",
		"csd3":          "11.2.0",
		"isambard-macs": "9.2.0",
	}
	for sys, ver := range want {
		c, err := r.ForSystem(sys).DefaultCompiler()
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if c.Name != "gcc" || c.Version.String() != ver {
			t.Errorf("%s default compiler = %%%s, want gcc@%s", sys, c, ver)
		}
	}
}

func TestTable3EndToEnd(t *testing.T) {
	// The full path the paper takes for Table 3: per-system env config →
	// concretizer → dependency versions.
	reg := UKRegistry()
	builtin := repo.Builtin()
	want := map[string][4]string{ // system -> {mpi lib, mpi ver, python ver, gcc ver}
		"archer2":       {"cray-mpich", "8.1.23", "3.10.12", "11.2.0"},
		"cosma8":        {"mvapich2", "2.3.6", "2.7.15", "11.1.0"},
		"csd3":          {"openmpi", "4.0.4", "3.8.2", "11.2.0"},
		"isambard-macs": {"openmpi", "4.0.3", "3.7.5", "9.2.0"},
	}
	for sys, exp := range want {
		cfg := reg.ForSystem(sys)
		res, err := concretize.Concretize(spec.MustParse("hpgmg%gcc"), cfg.ConcretizeOptions(builtin, "x86_64"))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		// The bare %gcc constraint resolves to the system's preferred
		// gcc — Table 3's compiler column.
		if got := res.Spec.Compiler.Version.String(); got != exp[3] {
			t.Errorf("%s: gcc = %s, want %s", sys, got, exp[3])
		}
		mpi := res.Spec.Lookup(exp[0])
		if mpi == nil || mpi.Version.String() != exp[1] {
			t.Errorf("%s: MPI = %v, want %s@%s", sys, mpi, exp[0], exp[1])
		}
		py := res.Spec.Lookup("python")
		if py == nil || py.Version.String() != exp[2] {
			t.Errorf("%s: python = %v, want %s", sys, py, exp[2])
		}
	}
}

func TestUnknownSystemGetsBasicEnvironment(t *testing.T) {
	r := UKRegistry()
	c := r.ForSystem("brand-new-machine")
	if c.System != "brand-new-machine" {
		t.Errorf("system = %q", c.System)
	}
	if len(c.Compilers) == 0 {
		t.Error("basic environment must still offer a compiler")
	}
	if len(c.Externals) != 0 {
		t.Error("basic environment must not invent system packages")
	}
	if r.Known("brand-new-machine") {
		t.Error("fallback config should not be marked known")
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(&SystemConfig{}); err == nil {
		t.Error("empty system name accepted")
	}
	c := &SystemConfig{System: "x"}
	if err := r.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(c); err == nil {
		t.Error("duplicate accepted")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Names = %v", got)
	}
}

func TestParseConfigFile(t *testing.T) {
	text := `
system: archer2
account: z19
qos: standard
compilers:
  - gcc@11.2.0
  - cce@15.0.0
externals:
  - spec: cray-mpich@8.1.23
    path: /opt/cray/pe/mpich/8.1.23
providers:
  mpi: cray-mpich
env:
  OMP_PLACES: cores
`
	c, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if c.System != "archer2" || c.Account != "z19" || c.QOS != "standard" {
		t.Errorf("header fields: %+v", c)
	}
	if len(c.Compilers) != 2 || c.Compilers[0].String() != "gcc@11.2.0" {
		t.Errorf("compilers = %v", c.Compilers)
	}
	if len(c.Externals) != 1 || c.Externals[0].Path != "/opt/cray/pe/mpich/8.1.23" {
		t.Errorf("externals = %+v", c.Externals)
	}
	if c.Providers["mpi"] != "cray-mpich" {
		t.Errorf("providers = %v", c.Providers)
	}
	if c.EnvVars["OMP_PLACES"] != "cores" {
		t.Errorf("env = %v", c.EnvVars)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"account: z19\n",                                          // missing system
		"system: x\nbogus: 1\n",                                   // unknown key
		"system: x\ncompilers:\n  - gcc\n",                        // compiler without version
		"system: x\nexternals:\n  - spec: openmpi\n    path: /\n", // external without exact version
		"system: x\nexternals:\n  - path: /usr\n",                 // external without spec
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): expected error", text)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.yaml")
	if err := os.WriteFile(path, []byte("system: testsys\ncompilers:\n  - gcc@12.1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.System != "testsys" {
		t.Errorf("system = %q", c.System)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCaptureEnvironment(t *testing.T) {
	t.Setenv("OMP_NUM_THREADS", "8")
	t.Setenv("IRRELEVANT_VARIABLE", "noise")
	c := CaptureEnvironment()
	if c.Hostname == "" && c.OS == "" {
		t.Error("capture is empty")
	}
	if c.EnvVars["OMP_NUM_THREADS"] != "8" {
		t.Error("relevant env var not captured")
	}
	if _, ok := c.EnvVars["IRRELEVANT_VARIABLE"]; ok {
		t.Error("irrelevant env var captured")
	}
	s := c.Summary()
	for _, want := range []string{"hostname:", "go:", "ncpu:", "OMP_NUM_THREADS=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestYAMLRoundTrip(t *testing.T) {
	// Every builtin system config must survive YAML export → Parse.
	reg := UKRegistry()
	for _, name := range reg.Names() {
		orig := reg.ForSystem(name)
		text := orig.YAML()
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v\n%s", name, err, text)
		}
		if got.System != orig.System || got.Account != orig.Account || got.QOS != orig.QOS {
			t.Errorf("%s: header changed: %+v", name, got)
		}
		if len(got.Compilers) != len(orig.Compilers) {
			t.Errorf("%s: compilers %d != %d", name, len(got.Compilers), len(orig.Compilers))
		} else {
			for i := range got.Compilers {
				if got.Compilers[i].String() != orig.Compilers[i].String() {
					t.Errorf("%s: compiler %d: %s != %s", name, i, got.Compilers[i], orig.Compilers[i])
				}
			}
		}
		if len(got.Externals) != len(orig.Externals) {
			t.Errorf("%s: externals %d != %d", name, len(got.Externals), len(orig.Externals))
		}
		for k, v := range orig.Providers {
			if got.Providers[k] != v {
				t.Errorf("%s: provider %s lost", name, k)
			}
		}
		for k, v := range orig.EnvVars {
			if got.EnvVars[k] != v {
				t.Errorf("%s: env var %s lost", name, k)
			}
		}
	}
}
