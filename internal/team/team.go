// Package team provides the synchronisation primitives the distributed
// benchmark apps use to emulate an MPI rank team with goroutines: a
// reusable cyclic barrier and sum/max allreduces. Channel-based, so every
// collective establishes the happens-before edges a real message-passing
// library would.
package team

import "sync"

// Barrier is a reusable cyclic barrier for N goroutines.
type Barrier struct {
	n  int
	mu sync.Mutex
	c  chan struct{}
	in int
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	return &Barrier{n: n, c: make(chan struct{})}
}

// Await blocks until all n participants have called Await.
func (b *Barrier) Await() {
	b.mu.Lock()
	b.in++
	if b.in == b.n {
		b.in = 0
		old := b.c
		b.c = make(chan struct{})
		b.mu.Unlock()
		close(old)
		return
	}
	c := b.c
	b.mu.Unlock()
	<-c
}

// Reducer provides allreduce collectives over a rank team. A single
// Reducer may be reused for any number of sequential collectives, as long
// as every rank participates in every call (SPMD discipline).
type Reducer struct {
	b       *Barrier
	partial []float64
	result  float64
}

// NewReducer returns a reducer for n ranks.
func NewReducer(n int) *Reducer {
	return &Reducer{b: NewBarrier(n), partial: make([]float64, n)}
}

// Sum combines every rank's value and returns the global sum to all.
func (r *Reducer) Sum(rank int, v float64) float64 {
	r.partial[rank] = v
	r.b.Await()
	if rank == 0 {
		sum := 0.0
		for _, p := range r.partial {
			sum += p
		}
		r.result = sum
	}
	r.b.Await()
	return r.result
}

// Max combines every rank's value and returns the global maximum to all.
func (r *Reducer) Max(rank int, v float64) float64 {
	r.partial[rank] = v
	r.b.Await()
	max := r.partial[0]
	for _, p := range r.partial[1:] {
		if p > max {
			max = p
		}
	}
	r.b.Await()
	return max
}

// Halo carries the channel pair between two adjacent ranks in a 1-D
// decomposition.
type Halo struct {
	// ToUpper carries the lower rank's top plane to the upper rank;
	// ToLower the upper rank's bottom plane to the lower rank.
	ToUpper chan []float64
	ToLower chan []float64
}

// NewHalos builds the n-1 interfaces of an n-rank 1-D decomposition.
// Channels are buffered so the send-all-then-receive-all exchange pattern
// cannot deadlock regardless of rank scheduling.
func NewHalos(n int) []*Halo {
	out := make([]*Halo, n-1)
	for i := range out {
		out[i] = &Halo{ToUpper: make(chan []float64, 1), ToLower: make(chan []float64, 1)}
	}
	return out
}
