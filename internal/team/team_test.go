package team

import (
	"sync"
	"testing"
)

func TestBarrierLockstep(t *testing.T) {
	const n, rounds = 8, 50
	b := NewBarrier(n)
	counter := make([]int, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				counter[r]++
				b.Await()
				// Between barriers every participant must have the
				// same count — lockstep.
				for other := 0; other < n; other++ {
					if counter[other] != round+1 {
						t.Errorf("rank %d saw rank %d at %d in round %d", r, other, counter[other], round)
						return
					}
				}
				b.Await()
			}
		}(r)
	}
	wg.Wait()
}

func TestReducerSumAndMax(t *testing.T) {
	const n = 5
	red := NewReducer(n)
	maxRed := NewReducer(n)
	sums := make([]float64, n)
	maxes := make([]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sums[r] = red.Sum(r, float64(r))        // 0+1+2+3+4 = 10
			maxes[r] = maxRed.Max(r, float64(10-r)) // max(10,9,8,7,6) = 10
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if sums[r] != 10 {
			t.Errorf("rank %d sum = %g", r, sums[r])
		}
		if maxes[r] != 10 {
			t.Errorf("rank %d max = %g", r, maxes[r])
		}
	}
}

func TestReducerReusableAcrossCollectives(t *testing.T) {
	const n = 3
	red := NewReducer(n)
	out := make([]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := 1.0
			for i := 0; i < 100; i++ {
				v = red.Sum(r, v) / float64(n) // stays 1.0 forever
			}
			out[r] = v
		}(r)
	}
	wg.Wait()
	for r, v := range out {
		if v != 1.0 {
			t.Errorf("rank %d drifted to %g", r, v)
		}
	}
}

func TestNewHalos(t *testing.T) {
	hs := NewHalos(4)
	if len(hs) != 3 {
		t.Fatalf("interfaces = %d", len(hs))
	}
	for _, h := range hs {
		if cap(h.ToUpper) != 1 || cap(h.ToLower) != 1 {
			t.Error("halo channels must be buffered for deadlock freedom")
		}
	}
	if hs := NewHalos(1); len(hs) != 0 {
		t.Errorf("single rank needs no halos, got %d", len(hs))
	}
}
