package dataframe

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f := New()
	if err := f.AddStringColumn("system", []string{"archer2", "cosma8", "csd3", "isambard", "archer2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddStringColumn("level", []string{"l0", "l0", "l0", "l0", "l1"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFloatColumn("dofs", []float64{95.36, 81.67, 126.10, 30.59, 83.43}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuilders(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 5 || f.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
	if got := f.Columns(); got[0] != "system" || got[2] != "dofs" {
		t.Errorf("columns = %v", got)
	}
	if !f.Has("dofs") || f.Has("nope") {
		t.Error("Has wrong")
	}
	v, err := f.Float("dofs", 2)
	if err != nil || v != 126.10 {
		t.Errorf("Float = %v, %v", v, err)
	}
	s, err := f.Str("system", 3)
	if err != nil || s != "isambard" {
		t.Errorf("Str = %v, %v", s, err)
	}
}

func TestBuilderErrors(t *testing.T) {
	f := New()
	if err := f.AddFloatColumn("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := f.AddFloatColumn("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFloatColumn("a", []float64{3, 4}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := f.AddStringColumn("b", []string{"x"}); err == nil {
		t.Error("ragged column accepted")
	}
	if _, err := f.Col("missing"); err == nil {
		t.Error("missing column lookup accepted")
	}
	if _, err := f.Float("a", 99); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := f.Str("a", -1); err == nil {
		t.Error("negative row accepted")
	}
}

func TestFloatOnStringColumn(t *testing.T) {
	f := sampleFrame(t)
	if _, err := f.Float("system", 0); err == nil {
		t.Error("Float on string column accepted")
	}
	c := f.MustCol("system")
	if !math.IsNaN(c.Float(0)) {
		t.Error("Column.Float on string column should be NaN")
	}
}

func TestFilterEq(t *testing.T) {
	f := sampleFrame(t)
	got, err := f.FilterEq("system", "archer2")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	v, _ := got.Float("dofs", 1)
	if v != 83.43 {
		t.Errorf("second archer2 row dofs = %g", v)
	}
}

func TestFilterNum(t *testing.T) {
	f := sampleFrame(t)
	cases := []struct {
		op   CmpOp
		v    float64
		want int
	}{
		{Gt, 90, 2},
		{Ge, 95.36, 2},
		{Lt, 82, 2},
		{Le, 30.59, 1},
		{Eq, 126.10, 1},
		{Ne, 126.10, 4},
	}
	for _, c := range cases {
		got, err := f.FilterNum("dofs", c.op, c.v)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != c.want {
			t.Errorf("FilterNum(%s %g) = %d rows, want %d", c.op, c.v, got.NumRows(), c.want)
		}
	}
	if _, err := f.FilterNum("system", Gt, 1); err == nil {
		t.Error("FilterNum on string column accepted")
	}
	if _, err := f.FilterNum("dofs", CmpOp("~"), 1); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestFilterNumSkipsNaN(t *testing.T) {
	f := New()
	_ = f.AddFloatColumn("x", []float64{1, math.NaN(), 3})
	got, err := f.FilterNum("x", Gt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Errorf("NaN matched: %d rows", got.NumRows())
	}
	// Ne must not match NaN either.
	got, _ = f.FilterNum("x", Ne, 99)
	if got.NumRows() != 2 {
		t.Errorf("NaN matched Ne: %d rows", got.NumRows())
	}
}

func TestSort(t *testing.T) {
	f := sampleFrame(t)
	asc, err := f.Sort("dofs", true)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := asc.Float("dofs", 0)
	last, _ := asc.Float("dofs", asc.NumRows()-1)
	if first != 30.59 || last != 126.10 {
		t.Errorf("ascending sort wrong: %g..%g", first, last)
	}
	desc, _ := f.Sort("dofs", false)
	first, _ = desc.Float("dofs", 0)
	if first != 126.10 {
		t.Errorf("descending sort wrong: %g", first)
	}
	byName, _ := f.Sort("system", true)
	s, _ := byName.Str("system", 0)
	if s != "archer2" {
		t.Errorf("string sort wrong: %s", s)
	}
}

func TestSortNaNLast(t *testing.T) {
	f := New()
	_ = f.AddFloatColumn("x", []float64{math.NaN(), 2, 1})
	got, _ := f.Sort("x", true)
	if v, _ := got.Float("x", 0); v != 1 {
		t.Errorf("first = %g", v)
	}
	if v, _ := got.Float("x", 2); !math.IsNaN(v) {
		t.Errorf("NaN not last: %g", v)
	}
}

func TestHeadAndSelect(t *testing.T) {
	f := sampleFrame(t)
	h := f.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("head rows = %d", h.NumRows())
	}
	if f.Head(100).NumRows() != 5 {
		t.Error("head beyond length should clamp")
	}
	sel, err := f.Select("dofs", "system")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Columns(); got[0] != "dofs" || got[1] != "system" || len(got) != 2 {
		t.Errorf("select columns = %v", got)
	}
	if _, err := f.Select("nope"); err == nil {
		t.Error("select of missing column accepted")
	}
}

func TestConcatUnionColumns(t *testing.T) {
	a := New()
	_ = a.AddStringColumn("system", []string{"archer2"})
	_ = a.AddFloatColumn("triad", []float64{300})
	b := New()
	_ = b.AddStringColumn("system", []string{"csd3"})
	_ = b.AddFloatColumn("copy", []float64{250})
	all, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 2 || all.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", all.NumRows(), all.NumCols())
	}
	// Missing cells are NaN.
	v, _ := all.Float("copy", 0)
	if !math.IsNaN(v) {
		t.Errorf("missing cell = %g, want NaN", v)
	}
	v, _ = all.Float("triad", 0)
	if v != 300 {
		t.Errorf("triad[0] = %g", v)
	}
	v, _ = all.Float("copy", 1)
	if v != 250 {
		t.Errorf("copy[1] = %g", v)
	}
}

func TestConcatKindConflict(t *testing.T) {
	a := New()
	_ = a.AddFloatColumn("x", []float64{1})
	b := New()
	_ = b.AddStringColumn("x", []string{"one"})
	if _, err := Concat(a, b); err == nil {
		t.Error("kind conflict accepted")
	}
}

func TestGroupBy(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.GroupBy([]string{"system"}, "dofs", AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 4 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	// archer2 has rows 95.36 and 83.43 -> mean 89.395.
	byName := map[string]float64{}
	for r := 0; r < g.NumRows(); r++ {
		s, _ := g.Str("system", r)
		v, _ := g.Float("dofs", r)
		byName[s] = v
	}
	if math.Abs(byName["archer2"]-89.395) > 1e-9 {
		t.Errorf("archer2 mean = %g", byName["archer2"])
	}
	if byName["csd3"] != 126.10 {
		t.Errorf("csd3 = %g", byName["csd3"])
	}
	if _, err := f.GroupBy([]string{"nope"}, "dofs", AggMean); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := f.GroupBy([]string{"system"}, "system", AggMean); err == nil {
		t.Error("string value column accepted")
	}
}

func TestAggregators(t *testing.T) {
	xs := []float64{3, math.NaN(), 1, 2}
	if v := AggMean(xs); v != 2 {
		t.Errorf("mean = %g", v)
	}
	if v := AggMax(xs); v != 3 {
		t.Errorf("max = %g", v)
	}
	if v := AggMin(xs); v != 1 {
		t.Errorf("min = %g", v)
	}
	if v := AggCount(xs); v != 3 {
		t.Errorf("count = %g", v)
	}
	if !math.IsNaN(AggMean([]float64{math.NaN()})) {
		t.Error("mean of all-NaN should be NaN")
	}
}

func TestPivot(t *testing.T) {
	// The Figure 2 shape: model × platform -> efficiency.
	f := New()
	_ = f.AddStringColumn("model", []string{"omp", "omp", "cuda", "kokkos"})
	_ = f.AddStringColumn("platform", []string{"cascadelake", "volta", "volta", "cascadelake"})
	_ = f.AddFloatColumn("eff", []float64{0.80, 0.70, 0.93, 0.76})
	pt, err := f.Pivot("model", "platform", "eff")
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.RowLabels) != 3 || len(pt.ColLabels) != 2 {
		t.Fatalf("pivot shape %dx%d", len(pt.RowLabels), len(pt.ColLabels))
	}
	if v, ok := pt.Cell("omp", "volta"); !ok || v != 0.70 {
		t.Errorf("omp/volta = %g, %v", v, ok)
	}
	if v, ok := pt.Cell("cuda", "cascadelake"); ok {
		t.Errorf("cuda/cascadelake should be missing, got %g", v)
	}
	if _, ok := pt.Cell("nothere", "volta"); ok {
		t.Error("unknown row found")
	}
	if _, err := f.Pivot("model", "platform", "model"); err == nil {
		t.Error("string value column accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sampleFrame(t)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != f.NumRows() || got.NumCols() != f.NumCols() {
		t.Fatalf("shape = %dx%d", got.NumRows(), got.NumCols())
	}
	if got.MustCol("dofs").Kind() != Float {
		t.Error("numeric column not re-inferred as float")
	}
	if got.MustCol("system").Kind() != String {
		t.Error("string column mis-inferred")
	}
	v, _ := got.Float("dofs", 2)
	if v != 126.10 {
		t.Errorf("dofs[2] = %g", v)
	}
}

func TestCSVNaNRoundTrip(t *testing.T) {
	f := New()
	_ = f.AddFloatColumn("x", []float64{1, math.NaN(), 3})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",") && buf.Len() == 0 {
		t.Fatal("csv empty")
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := got.Float("x", 1)
	if !math.IsNaN(v) {
		t.Errorf("NaN cell = %g", v)
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestStringRendering(t *testing.T) {
	f := sampleFrame(t)
	s := f.String()
	if !strings.Contains(s, "system") || !strings.Contains(s, "archer2") || !strings.Contains(s, "126.1") {
		t.Errorf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // header + 5 rows
		t.Errorf("lines = %d", len(lines))
	}
}

func TestSaveLoadCSV(t *testing.T) {
	f := sampleFrame(t)
	path := t.TempDir() + "/out.csv"
	if err := f.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 5 {
		t.Errorf("rows = %d", got.NumRows())
	}
	if _, err := LoadCSV(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSelectColumns(t *testing.T) {
	f := sampleFrame(t)
	got, err := f.SelectColumns("dofs", "system")
	if err != nil {
		t.Fatal(err)
	}
	if cols := got.Columns(); len(cols) != 2 || cols[0] != "dofs" || cols[1] != "system" {
		t.Errorf("columns = %v", cols)
	}
	if got.NumRows() != 5 {
		t.Errorf("rows = %d", got.NumRows())
	}

	// A trailing * selects by prefix, in insertion order, and repeats
	// are dropped.
	got, err = f.SelectColumns("system", "l*", "level")
	if err != nil {
		t.Fatal(err)
	}
	if cols := got.Columns(); len(cols) != 2 || cols[1] != "level" {
		t.Errorf("columns = %v", cols)
	}

	if _, err := f.SelectColumns("nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := f.SelectColumns("zz*"); err == nil {
		t.Error("unmatched prefix accepted")
	}
}
