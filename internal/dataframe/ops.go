package dataframe

import (
	"fmt"
	"math"
	"sort"
)

// Filter returns the rows for which pred returns true.
func (f *Frame) Filter(pred func(row int) bool) *Frame {
	var rows []int
	for r := 0; r < f.NumRows(); r++ {
		if pred(r) {
			rows = append(rows, r)
		}
	}
	return f.selectRows(rows)
}

// FilterEq keeps rows where the string column equals value.
func (f *Frame) FilterEq(col, value string) (*Frame, error) {
	c, err := f.Col(col)
	if err != nil {
		return nil, err
	}
	return f.Filter(func(r int) bool { return c.Str(r) == value }), nil
}

// CmpOp is a numeric comparison operator for FilterNum.
type CmpOp string

const (
	Eq CmpOp = "=="
	Ne CmpOp = "!="
	Lt CmpOp = "<"
	Le CmpOp = "<="
	Gt CmpOp = ">"
	Ge CmpOp = ">="
)

// FilterNum keeps rows where the float column compares true against v.
// NaN cells never match.
func (f *Frame) FilterNum(col string, op CmpOp, v float64) (*Frame, error) {
	c, err := f.Col(col)
	if err != nil {
		return nil, err
	}
	if c.Kind() != Float {
		return nil, fmt.Errorf("dataframe: FilterNum on %s column %q", c.Kind(), col)
	}
	cmp := func(x float64) bool {
		switch op {
		case Eq:
			return x == v
		case Ne:
			return x != v
		case Lt:
			return x < v
		case Le:
			return x <= v
		case Gt:
			return x > v
		case Ge:
			return x >= v
		default:
			return false
		}
	}
	if op != Eq && op != Ne && op != Lt && op != Le && op != Gt && op != Ge {
		return nil, fmt.Errorf("dataframe: unknown comparison %q", op)
	}
	return f.Filter(func(r int) bool {
		x := c.Float(r)
		return !math.IsNaN(x) && cmp(x)
	}), nil
}

// Sort returns a copy sorted by the column (stable). Float columns sort
// numerically with NaN last; string columns lexicographically.
func (f *Frame) Sort(col string, ascending bool) (*Frame, error) {
	c, err := f.Col(col)
	if err != nil {
		return nil, err
	}
	rows := make([]int, f.NumRows())
	for i := range rows {
		rows[i] = i
	}
	less := func(a, b int) bool {
		if c.Kind() == Float {
			x, y := c.Float(a), c.Float(b)
			switch {
			case math.IsNaN(x):
				return false
			case math.IsNaN(y):
				return true
			default:
				return x < y
			}
		}
		return c.Str(a) < c.Str(b)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if ascending {
			return less(rows[i], rows[j])
		}
		return less(rows[j], rows[i])
	})
	return f.selectRows(rows), nil
}

// Head returns the first n rows (or all, if fewer).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return f.selectRows(rows)
}

// Select returns a frame with only the named columns, in that order.
func (f *Frame) Select(cols ...string) (*Frame, error) {
	out := New()
	for _, name := range cols {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		out.index[c.Name] = len(out.cols)
		out.cols = append(out.cols, c)
	}
	return out, nil
}

// Concat stacks frames vertically. The result's columns are the union of
// all inputs' columns (in first-seen order); cells absent from an input
// are NaN (float) or "" (string). Kind conflicts are an error. This is
// the cross-platform assimilation step: one frame per system's perflog,
// concatenated for analysis (paper §2.4).
func Concat(frames ...*Frame) (*Frame, error) {
	type meta struct {
		kind Kind
		pos  int
	}
	info := map[string]meta{}
	var order []string
	total := 0
	for _, f := range frames {
		total += f.NumRows()
		for _, c := range f.cols {
			if m, ok := info[c.Name]; ok {
				if m.kind != c.kind {
					return nil, fmt.Errorf("dataframe: column %q is %s in one frame and %s in another", c.Name, m.kind, c.kind)
				}
				continue
			}
			info[c.Name] = meta{kind: c.kind, pos: len(order)}
			order = append(order, c.Name)
		}
	}
	out := New()
	for _, name := range order {
		m := info[name]
		nc := &Column{Name: name, kind: m.kind}
		if m.kind == Float {
			nc.floats = make([]float64, 0, total)
		} else {
			nc.strings = make([]string, 0, total)
		}
		for _, f := range frames {
			n := f.NumRows()
			src, err := f.Col(name)
			if err != nil {
				// Missing in this frame: fill.
				if m.kind == Float {
					for i := 0; i < n; i++ {
						nc.floats = append(nc.floats, math.NaN())
					}
				} else {
					for i := 0; i < n; i++ {
						nc.strings = append(nc.strings, "")
					}
				}
				continue
			}
			if m.kind == Float {
				nc.floats = append(nc.floats, src.floats...)
			} else {
				nc.strings = append(nc.strings, src.strings...)
			}
		}
		out.index[name] = len(out.cols)
		out.cols = append(out.cols, nc)
	}
	return out, nil
}

// Agg is a group-by aggregation function over float values.
type Agg func([]float64) float64

// AggMean averages, skipping NaN.
func AggMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// AggMax takes the max, skipping NaN.
func AggMax(xs []float64) float64 {
	best := math.NaN()
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if math.IsNaN(best) || x > best {
			best = x
		}
	}
	return best
}

// AggMin takes the min, skipping NaN.
func AggMin(xs []float64) float64 {
	best := math.NaN()
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if math.IsNaN(best) || x < best {
			best = x
		}
	}
	return best
}

// AggCount counts non-NaN values.
func AggCount(xs []float64) float64 {
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			n++
		}
	}
	return float64(n)
}

// GroupBy groups rows by the values of the named string columns and
// aggregates the named float column, producing one row per group with the
// key columns plus an aggregate column named like valueCol.
func (f *Frame) GroupBy(keyCols []string, valueCol string, agg Agg) (*Frame, error) {
	for _, k := range keyCols {
		if _, err := f.Col(k); err != nil {
			return nil, err
		}
	}
	vc, err := f.Col(valueCol)
	if err != nil {
		return nil, err
	}
	if vc.Kind() != Float {
		return nil, fmt.Errorf("dataframe: GroupBy value column %q must be float", valueCol)
	}
	type group struct {
		keys   []string
		values []float64
	}
	groups := map[string]*group{}
	var order []string
	for r := 0; r < f.NumRows(); r++ {
		keys := make([]string, len(keyCols))
		for i, k := range keyCols {
			keys[i], _ = f.Str(k, r)
		}
		id := fmt.Sprintf("%q", keys)
		g, ok := groups[id]
		if !ok {
			g = &group{keys: keys}
			groups[id] = g
			order = append(order, id)
		}
		g.values = append(g.values, vc.Float(r))
	}
	out := New()
	keyData := make([][]string, len(keyCols))
	var aggData []float64
	for _, id := range order {
		g := groups[id]
		for i := range keyCols {
			keyData[i] = append(keyData[i], g.keys[i])
		}
		aggData = append(aggData, agg(g.values))
	}
	for i, k := range keyCols {
		if err := out.AddStringColumn(k, keyData[i]); err != nil {
			return nil, err
		}
	}
	if err := out.AddFloatColumn(valueCol, aggData); err != nil {
		return nil, err
	}
	return out, nil
}

// Pivot builds a 2-D table: one row per unique rowCol value, one column
// per unique colCol value, cells from valueCol (last wins on duplicates,
// NaN when absent). Row and column labels are returned sorted. This is
// the shape of the Figure 2 heatmap: programming model × platform.
type PivotTable struct {
	RowLabels []string
	ColLabels []string
	Cells     [][]float64 // Cells[i][j] for RowLabels[i] × ColLabels[j]
}

// Pivot computes a pivot table from three columns.
func (f *Frame) Pivot(rowCol, colCol, valueCol string) (*PivotTable, error) {
	rc, err := f.Col(rowCol)
	if err != nil {
		return nil, err
	}
	cc, err := f.Col(colCol)
	if err != nil {
		return nil, err
	}
	vc, err := f.Col(valueCol)
	if err != nil {
		return nil, err
	}
	if vc.Kind() != Float {
		return nil, fmt.Errorf("dataframe: Pivot value column %q must be float", valueCol)
	}
	rows := make([]string, f.NumRows())
	cols := make([]string, f.NumRows())
	for r := 0; r < f.NumRows(); r++ {
		rows[r] = rc.Str(r)
		cols[r] = cc.Str(r)
	}
	pt := &PivotTable{RowLabels: sortedUnique(rows), ColLabels: sortedUnique(cols)}
	ri := map[string]int{}
	for i, l := range pt.RowLabels {
		ri[l] = i
	}
	ci := map[string]int{}
	for j, l := range pt.ColLabels {
		ci[l] = j
	}
	pt.Cells = make([][]float64, len(pt.RowLabels))
	for i := range pt.Cells {
		pt.Cells[i] = make([]float64, len(pt.ColLabels))
		for j := range pt.Cells[i] {
			pt.Cells[i][j] = math.NaN()
		}
	}
	for r := 0; r < f.NumRows(); r++ {
		pt.Cells[ri[rows[r]]][ci[cols[r]]] = vc.Float(r)
	}
	return pt, nil
}

// Cell looks up a pivot cell by labels.
func (pt *PivotTable) Cell(row, col string) (float64, bool) {
	for i, r := range pt.RowLabels {
		if r != row {
			continue
		}
		for j, c := range pt.ColLabels {
			if c == col {
				v := pt.Cells[i][j]
				return v, !math.IsNaN(v)
			}
		}
	}
	return math.NaN(), false
}
