package dataframe

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// WriteCSV writes the frame as CSV with a header row. NaN cells are
// written empty.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Columns()); err != nil {
		return fmt.Errorf("dataframe: %w", err)
	}
	for r := 0; r < f.NumRows(); r++ {
		record := make([]string, len(f.cols))
		for i, c := range f.cols {
			if c.kind == Float && math.IsNaN(c.floats[r]) {
				// "NaN" rather than "": a row of empty fields would
				// render as a blank line, which CSV readers drop.
				record[i] = "NaN"
				continue
			}
			record[i] = c.Str(r)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataframe: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataframe: %w", err)
	}
	return nil
}

// SaveCSV writes the frame to a file.
func (f *Frame) SaveCSV(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataframe: %w", err)
	}
	defer file.Close()
	return f.WriteCSV(file)
}

// ReadCSV loads a frame from CSV. A column becomes float when every
// non-empty cell parses as a number (including "NaN"); otherwise it is a
// string column. Empty cells in float columns become NaN.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataframe: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataframe: empty CSV")
	}
	header := records[0]
	rows := records[1:]
	out := New()
	for col, name := range header {
		numeric := true
		any := false
		for _, row := range rows {
			cell := row[col]
			if cell == "" {
				continue
			}
			any = true
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				numeric = false
				break
			}
		}
		if numeric && any {
			vals := make([]float64, len(rows))
			for i, row := range rows {
				if row[col] == "" {
					vals[i] = math.NaN()
					continue
				}
				vals[i], _ = strconv.ParseFloat(row[col], 64)
			}
			if err := out.AddFloatColumn(name, vals); err != nil {
				return nil, err
			}
			continue
		}
		vals := make([]string, len(rows))
		for i, row := range rows {
			vals[i] = row[col]
		}
		if err := out.AddStringColumn(name, vals); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LoadCSV reads a frame from a file.
func LoadCSV(path string) (*Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataframe: %w", err)
	}
	defer file.Close()
	return ReadCSV(file)
}
