// Package dataframe is a small column-oriented data table, the
// assimilation substrate the framework's post-processing uses in place of
// Pandas (paper §2.4): perflog entries become rows, filters and group-bys
// select series, and the plotting layer consumes the result. Columns are
// either float64 or string; missing numeric values are NaN and missing
// strings are "".
package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind is a column's element type.
type Kind int

const (
	Float Kind = iota
	String
)

func (k Kind) String() string {
	if k == String {
		return "string"
	}
	return "float"
}

// Column is one named, typed column.
type Column struct {
	Name    string
	kind    Kind
	floats  []float64
	strings []string
}

// Kind reports the column's element type.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the column length.
func (c *Column) Len() int {
	if c.kind == Float {
		return len(c.floats)
	}
	return len(c.strings)
}

// Float returns the i-th value of a float column.
func (c *Column) Float(i int) float64 {
	if c.kind != Float {
		return math.NaN()
	}
	return c.floats[i]
}

// Str returns the i-th value of a string column (or the formatted float).
func (c *Column) Str(i int) string {
	if c.kind == String {
		return c.strings[i]
	}
	v := c.floats[i]
	if math.IsNaN(v) {
		return ""
	}
	return formatFloat(v)
}

// Floats returns a copy of the float data.
func (c *Column) Floats() []float64 {
	out := make([]float64, len(c.floats))
	copy(out, c.floats)
	return out
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// Frame is an immutable-ish table of equal-length columns. Mutating
// methods return new frames; the builders (AddFloatColumn etc.) mutate in
// place while assembling.
type Frame struct {
	cols  []*Column
	index map[string]int
}

// New returns an empty frame.
func New() *Frame {
	return &Frame{index: map[string]int{}}
}

// AddFloatColumn appends a float column; all columns must share a length.
func (f *Frame) AddFloatColumn(name string, values []float64) error {
	return f.addColumn(&Column{Name: name, kind: Float, floats: values})
}

// AddStringColumn appends a string column.
func (f *Frame) AddStringColumn(name string, values []string) error {
	return f.addColumn(&Column{Name: name, kind: String, strings: values})
}

func (f *Frame) addColumn(c *Column) error {
	if c.Name == "" {
		return fmt.Errorf("dataframe: column with empty name")
	}
	if _, dup := f.index[c.Name]; dup {
		return fmt.Errorf("dataframe: duplicate column %q", c.Name)
	}
	if len(f.cols) > 0 && c.Len() != f.NumRows() {
		return fmt.Errorf("dataframe: column %q has %d rows, frame has %d", c.Name, c.Len(), f.NumRows())
	}
	f.index[c.Name] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// NumRows returns the row count.
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// Columns lists column names in insertion order.
func (f *Frame) Columns() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Has reports whether a column exists.
func (f *Frame) Has(name string) bool {
	_, ok := f.index[name]
	return ok
}

// Col returns a column by name.
func (f *Frame) Col(name string) (*Column, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("dataframe: no column %q (have %v)", name, f.Columns())
	}
	return f.cols[i], nil
}

// MustCol is Col for known-present columns.
func (f *Frame) MustCol(name string) *Column {
	c, err := f.Col(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Float returns cell (row, col) of a float column.
func (f *Frame) Float(col string, row int) (float64, error) {
	c, err := f.Col(col)
	if err != nil {
		return 0, err
	}
	if c.kind != Float {
		return 0, fmt.Errorf("dataframe: column %q is %s, not float", col, c.kind)
	}
	if row < 0 || row >= c.Len() {
		return 0, fmt.Errorf("dataframe: row %d out of range [0,%d)", row, c.Len())
	}
	return c.floats[row], nil
}

// Str returns cell (row, col) as a string.
func (f *Frame) Str(col string, row int) (string, error) {
	c, err := f.Col(col)
	if err != nil {
		return "", err
	}
	if row < 0 || row >= c.Len() {
		return "", fmt.Errorf("dataframe: row %d out of range [0,%d)", row, c.Len())
	}
	return c.Str(row), nil
}

// SelectColumns builds a new frame projecting the named columns, in the
// order given. A name ending in "*" selects every column with that
// prefix, in insertion order — "stage_*" pulls in the per-stage duration
// extras the runner records. The projection shares column storage with f.
func (f *Frame) SelectColumns(names ...string) (*Frame, error) {
	out := New()
	for _, name := range names {
		if prefix, ok := strings.CutSuffix(name, "*"); ok {
			found := false
			for _, c := range f.cols {
				if strings.HasPrefix(c.Name, prefix) {
					found = true
					if !out.Has(c.Name) {
						out.addColumn(c)
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("dataframe: no columns match %q (have %v)", name, f.Columns())
			}
			continue
		}
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if !out.Has(name) {
			out.addColumn(c)
		}
	}
	return out, nil
}

// selectRows builds a new frame holding the given row indices of f.
func (f *Frame) selectRows(rows []int) *Frame {
	out := New()
	for _, c := range f.cols {
		nc := &Column{Name: c.Name, kind: c.kind}
		if c.kind == Float {
			nc.floats = make([]float64, len(rows))
			for i, r := range rows {
				nc.floats[i] = c.floats[r]
			}
		} else {
			nc.strings = make([]string, len(rows))
			for i, r := range rows {
				nc.strings[i] = c.strings[r]
			}
		}
		out.index[nc.Name] = len(out.cols)
		out.cols = append(out.cols, nc)
	}
	return out
}

// String renders the frame as an aligned text table (header + rows),
// useful in reports and tests.
func (f *Frame) String() string {
	names := f.Columns()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	rows := make([][]string, f.NumRows())
	for r := 0; r < f.NumRows(); r++ {
		rows[r] = make([]string, len(names))
		for i, c := range f.cols {
			s := c.Str(r)
			rows[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], n)
	}
	b.WriteString("\n")
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// sortedUnique returns sorted unique values of a string column.
func sortedUnique(values []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range values {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
