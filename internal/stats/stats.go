// Package stats provides the deterministic statistics kernel behind the
// framework's repetition protocol: Welford online mean/variance, seedable
// bootstrap resampling with percentile confidence intervals, and warm-up
// discard / repetition aggregation helpers.
//
// Everything here is deliberately dependency-free and deterministic: the
// bootstrap uses an internal splitmix64 generator rather than math/rand so
// that a (values, resamples, confidence, seed) tuple always yields the same
// interval, on any platform, forever. Regression verdicts derived from these
// numbers must be reproducible artifacts, exactly like the perflog lines
// they are computed from.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Defaults for the bootstrap. 1000 resamples at 95% confidence is the
// conventional choice; callers pass 0 to get them.
const (
	DefaultResamples  = 1000
	DefaultConfidence = 0.95
)

// Welford accumulates mean and variance in one pass using Welford's
// online algorithm, which is numerically stable where the naive
// sum-of-squares formula catastrophically cancels.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator); 0 when n < 2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// RSD returns the relative standard deviation |stddev/mean|, the
// run-to-run noise measure the variance gate thresholds. It is 0 when
// the mean is 0 (no meaningful relative measure exists).
func (w *Welford) RSD() float64 {
	if w.mean == 0 {
		return 0
	}
	return math.Abs(w.Stddev() / w.mean)
}

// Summary is the per-FOM repetition aggregate recorded in the perflog.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	RSD    float64
	CILo   float64
	CIHi   float64
}

// Summarize computes the full repetition summary for one FOM: Welford
// moments plus a seeded bootstrap percentile CI on the mean. A nil or
// empty slice returns the zero Summary; a single value yields a
// degenerate interval [v, v]. The interval always contains the sample
// mean: bootstrap resample means are recomputed sums, which under
// floating point can land an ulp outside the Welford mean when the
// series is (near-)constant, so the bounds are widened to cover it —
// "ci_lo <= mean <= ci_hi" is an invariant consumers may rely on.
func Summarize(values []float64, resamples int, confidence float64, seed uint64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	var w Welford
	for _, v := range values {
		w.Add(v)
	}
	lo, hi := BootstrapCI(values, resamples, confidence, seed)
	mean := w.Mean()
	if !math.IsNaN(mean) {
		lo = math.Min(lo, mean)
		hi = math.Max(hi, mean)
	}
	return Summary{
		N:      w.N(),
		Mean:   mean,
		Stddev: w.Stddev(),
		RSD:    w.RSD(),
		CILo:   lo,
		CIHi:   hi,
	}
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of values. resamples <= 0 and confidence <= 0 select the defaults
// (1000, 0.95). The interval is deterministic in (values, resamples,
// confidence, seed). Fewer than two values yield the degenerate interval
// [v, v] (or [0, 0] when empty): with one observation there is nothing to
// resample.
func BootstrapCI(values []float64, resamples int, confidence float64, seed uint64) (lo, hi float64) {
	switch len(values) {
	case 0:
		return 0, 0
	case 1:
		return values[0], values[0]
	}
	if resamples <= 0 {
		resamples = DefaultResamples
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = DefaultConfidence
	}
	rng := newSplitmix(seed)
	n := len(values)
	means := make([]float64, resamples)
	for i := range means {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += values[rng.intn(n)]
		}
		means[i] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	return percentile(means, alpha), percentile(means, 1-alpha)
}

// percentile returns the p-quantile (0 <= p <= 1) of a sorted slice using
// linear interpolation between closest ranks.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DiscardWarmup splits a repetition series into discarded warm-up
// observations and the measured remainder. warmup is clamped to
// [0, len(values)-1] so at least one measured value always survives; a
// protocol that discards every repetition is a configuration error, and
// clamping beats silently reporting nothing.
func DiscardWarmup(values []float64, warmup int) (discarded, measured []float64) {
	if warmup < 0 {
		warmup = 0
	}
	if warmup >= len(values) {
		warmup = len(values) - 1
		if warmup < 0 {
			warmup = 0
		}
	}
	return values[:warmup], values[warmup:]
}

// ValidateProtocol rejects nonsensical repetition parameters before a run
// starts. repetitions is the number of measured repetitions (>= 1);
// warmup is the number of additional discarded executions (>= 0).
func ValidateProtocol(repetitions, warmup int) error {
	if repetitions < 1 {
		return fmt.Errorf("stats: repetitions must be >= 1, got %d", repetitions)
	}
	if warmup < 0 {
		return fmt.Errorf("stats: warmup must be >= 0, got %d", warmup)
	}
	const maxExecutions = 1000
	if repetitions+warmup > maxExecutions {
		return fmt.Errorf("stats: repetitions+warmup = %d exceeds cap %d", repetitions+warmup, maxExecutions)
	}
	return nil
}

// splitmix is a splitmix64 PRNG: tiny, fast, and fully specified, so
// bootstrap intervals never depend on math/rand's algorithm choices.
type splitmix struct{ state uint64 }

// newSplitmix seeds the generator; seed 0 is remapped so the all-zero
// state still produces a useful stream.
func newSplitmix(seed uint64) *splitmix {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &splitmix{state: seed}
}

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). n is small (repetition counts),
// so simple modulo bias is negligible but we reject-sample anyway to keep
// the distribution exact.
func (s *splitmix) intn(n int) int {
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := s.next()
		if v < limit {
			return int(v % max)
		}
	}
}
