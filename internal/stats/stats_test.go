package stats

import (
	"math"
	"testing"
)

// genValues produces a deterministic pseudo-random sample in roughly
// [50, 150) from the package's own splitmix generator, so the property
// tests are reproducible without math/rand.
func genValues(n int, seed uint64) []float64 {
	rng := newSplitmix(seed)
	out := make([]float64, n)
	for i := range out {
		// 53 bits of mantissa → uniform in [0, 1).
		u := float64(rng.next()>>11) / (1 << 53)
		out[i] = 50 + 100*u
	}
	return out
}

func TestBootstrapCIDeterministicUnderFixedSeed(t *testing.T) {
	vals := genValues(20, 7)
	lo1, hi1 := BootstrapCI(vals, 500, 0.95, 42)
	lo2, hi2 := BootstrapCI(vals, 500, 0.95, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("same seed gave different intervals: [%v, %v] vs [%v, %v]", lo1, hi1, lo2, hi2)
	}
	lo3, hi3 := BootstrapCI(vals, 500, 0.95, 43)
	if lo1 == lo3 && hi1 == hi3 {
		t.Fatalf("different seed gave identical interval [%v, %v]; generator is not seeded", lo3, hi3)
	}
}

func TestBootstrapCIContainsSampleMean(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		vals := genValues(12, seed)
		var w Welford
		for _, v := range vals {
			w.Add(v)
		}
		lo, hi := BootstrapCI(vals, 0, 0, seed)
		if lo > hi {
			t.Fatalf("seed %d: inverted interval [%v, %v]", seed, lo, hi)
		}
		if w.Mean() < lo || w.Mean() > hi {
			t.Fatalf("seed %d: sample mean %v outside bootstrap CI [%v, %v]", seed, w.Mean(), lo, hi)
		}
	}
}

// A constant series is the floating-point worst case: the bootstrap
// recomputes resample means as sums, and ((x+x)+x)/3 can land an ulp
// away from x. Summarize guarantees ci_lo <= mean <= ci_hi regardless.
func TestSummarizeConstantSeriesCIBracketsMean(t *testing.T) {
	for _, x := range []float64{226720.141, 1.0 / 3.0, 0.1, -7.7, 1e-300, 0} {
		for n := 2; n <= 7; n++ {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = x
			}
			s := Summarize(vals, 0, 0, 42)
			if !(s.CILo <= s.Mean && s.Mean <= s.CIHi) {
				t.Errorf("x=%v n=%d: CI [%v, %v] excludes mean %v", x, n, s.CILo, s.CIHi, s.Mean)
			}
			if s.Stddev != 0 || s.RSD != 0 {
				t.Errorf("x=%v n=%d: constant series has stddev %v rsd %v", x, n, s.Stddev, s.RSD)
			}
		}
	}
}

func TestBootstrapCIWidthShrinksWithN(t *testing.T) {
	// The standard error of the mean scales ~1/sqrt(n), so the interval
	// for n=1000 must be strictly narrower than n=100, which must be
	// narrower than n=10. Use the same underlying population per size.
	width := func(n int) float64 {
		vals := genValues(n, 99)
		lo, hi := BootstrapCI(vals, 1000, 0.95, 1)
		return hi - lo
	}
	w10, w100, w1000 := width(10), width(100), width(1000)
	if !(w1000 < w100 && w100 < w10) {
		t.Fatalf("interval width did not shrink with n: w10=%v w100=%v w1000=%v", w10, w100, w1000)
	}
}

func TestBootstrapCIDegenerateInputs(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 0, 0, 1); lo != 0 || hi != 0 {
		t.Fatalf("empty input: got [%v, %v], want [0, 0]", lo, hi)
	}
	if lo, hi := BootstrapCI([]float64{3.5}, 0, 0, 1); lo != 3.5 || hi != 3.5 {
		t.Fatalf("single value: got [%v, %v], want [3.5, 3.5]", lo, hi)
	}
	// Constant series: every resample mean is the constant.
	lo, hi := BootstrapCI([]float64{2, 2, 2, 2}, 0, 0, 1)
	if lo != 2 || hi != 2 {
		t.Fatalf("constant series: got [%v, %v], want [2, 2]", lo, hi)
	}
}

// naiveVariance is the two-pass textbook sample variance used as the
// reference implementation for the Welford property test.
func naiveVariance(vals []float64) (mean, variance float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		variance += d * d
	}
	if len(vals) > 1 {
		variance /= float64(len(vals) - 1)
	} else {
		variance = 0
	}
	return mean, variance
}

func TestWelfordMatchesTwoPassVariance(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		n := 2 + int(seed%37)
		vals := genValues(n, seed*31)
		var w Welford
		for _, v := range vals {
			w.Add(v)
		}
		mean, variance := naiveVariance(vals)
		if math.Abs(w.Mean()-mean) > 1e-12 {
			t.Fatalf("seed %d: mean %v vs two-pass %v", seed, w.Mean(), mean)
		}
		if math.Abs(w.Variance()-variance) > 1e-12 {
			t.Fatalf("seed %d: variance %v vs two-pass %v", seed, w.Variance(), variance)
		}
	}
}

func TestWelfordSmallAndEdge(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 || w.RSD() != 0 {
		t.Fatalf("zero-value Welford not all-zero: %+v", w)
	}
	w.Add(4)
	if w.N() != 1 || w.Mean() != 4 || w.Variance() != 0 {
		t.Fatalf("single observation: n=%d mean=%v var=%v", w.N(), w.Mean(), w.Variance())
	}
	w.Add(6)
	if w.Mean() != 5 || math.Abs(w.Variance()-2) > 1e-15 {
		t.Fatalf("two observations: mean=%v var=%v, want 5, 2", w.Mean(), w.Variance())
	}
	if got, want := w.RSD(), math.Sqrt(2)/5; math.Abs(got-want) > 1e-15 {
		t.Fatalf("RSD = %v, want %v", got, want)
	}
	// Zero mean → RSD defined as 0, not Inf.
	var z Welford
	z.Add(-1)
	z.Add(1)
	if z.RSD() != 0 {
		t.Fatalf("zero-mean RSD = %v, want 0", z.RSD())
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil, 0, 0, 1); s != (Summary{}) {
		t.Fatalf("empty summarize: %+v", s)
	}
	s := Summarize([]float64{10, 12, 11, 13, 9}, 0, 0, 1)
	if s.N != 5 {
		t.Fatalf("N = %d, want 5", s.N)
	}
	if math.Abs(s.Mean-11) > 1e-12 {
		t.Fatalf("Mean = %v, want 11", s.Mean)
	}
	if s.CILo > s.Mean || s.CIHi < s.Mean {
		t.Fatalf("mean %v outside CI [%v, %v]", s.Mean, s.CILo, s.CIHi)
	}
	if s.RSD <= 0 {
		t.Fatalf("RSD = %v, want > 0 for a noisy series", s.RSD)
	}
	one := Summarize([]float64{7}, 0, 0, 1)
	if one.N != 1 || one.Mean != 7 || one.CILo != 7 || one.CIHi != 7 || one.Stddev != 0 {
		t.Fatalf("single-value summary: %+v", one)
	}
}

func TestDiscardWarmup(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	d, m := DiscardWarmup(vals, 1)
	if len(d) != 1 || d[0] != 1 || len(m) != 3 || m[0] != 2 {
		t.Fatalf("warmup 1: discarded=%v measured=%v", d, m)
	}
	d, m = DiscardWarmup(vals, 0)
	if len(d) != 0 || len(m) != 4 {
		t.Fatalf("warmup 0: discarded=%v measured=%v", d, m)
	}
	d, m = DiscardWarmup(vals, -3)
	if len(d) != 0 || len(m) != 4 {
		t.Fatalf("negative warmup: discarded=%v measured=%v", d, m)
	}
	// Clamped: at least one measured value always survives.
	d, m = DiscardWarmup(vals, 10)
	if len(d) != 3 || len(m) != 1 || m[0] != 4 {
		t.Fatalf("oversized warmup: discarded=%v measured=%v", d, m)
	}
	d, m = DiscardWarmup(nil, 2)
	if len(d) != 0 || len(m) != 0 {
		t.Fatalf("nil input: discarded=%v measured=%v", d, m)
	}
}

func TestValidateProtocol(t *testing.T) {
	if err := ValidateProtocol(1, 0); err != nil {
		t.Fatalf("1/0 rejected: %v", err)
	}
	if err := ValidateProtocol(5, 2); err != nil {
		t.Fatalf("5/2 rejected: %v", err)
	}
	if err := ValidateProtocol(0, 0); err == nil {
		t.Fatal("0 repetitions accepted")
	}
	if err := ValidateProtocol(3, -1); err == nil {
		t.Fatal("negative warmup accepted")
	}
	if err := ValidateProtocol(900, 200); err == nil {
		t.Fatal("oversized protocol accepted")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); math.Abs(got-c.want) > 1e-15 {
			t.Fatalf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("percentile of empty = %v, want 0", got)
	}
}

func TestSplitmixIntn(t *testing.T) {
	rng := newSplitmix(0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := rng.intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("intn(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("intn(5) over 1000 draws hit only %d distinct values", len(seen))
	}
}
