package concretize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/repo"
	"repro/internal/spec"
)

func defaultOpts() Options {
	return Options{
		Repo: repo.Builtin(),
		Compilers: []spec.Compiler{
			{Name: "gcc", Version: spec.ExactVersion("12.1.0")},
			{Name: "gcc", Version: spec.ExactVersion("9.2.0")},
			{Name: "oneapi", Version: spec.ExactVersion("2023.1.0")},
		},
	}
}

func mustConcretize(t *testing.T, text string, opts Options) *Result {
	t.Helper()
	s, err := spec.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	res, err := Concretize(s, opts)
	if err != nil {
		t.Fatalf("concretize %q: %v", text, err)
	}
	return res
}

func TestConcretizeSimple(t *testing.T) {
	res := mustConcretize(t, "stream", defaultOpts())
	s := res.Spec
	if !s.Concrete {
		t.Fatal("result not concrete")
	}
	if got := s.Version.String(); got != "5.10" {
		t.Errorf("version = %s", got)
	}
	if s.Compiler.Name != "gcc" || s.Compiler.Version.String() != "12.1.0" {
		t.Errorf("compiler = %v (want system default gcc@12.1.0)", s.Compiler)
	}
	if v, ok := s.Variants["openmp"]; !ok || !v.Bool {
		t.Errorf("default variant +openmp missing: %+v", s.Variants)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConcretizeIsDeterministic(t *testing.T) {
	opts := defaultOpts()
	a := mustConcretize(t, "babelstream model=kokkos", opts)
	b := mustConcretize(t, "babelstream model=kokkos", opts)
	if a.Spec.String() != b.Spec.String() {
		t.Errorf("non-deterministic:\n%s\n%s", a.Spec, b.Spec)
	}
	if a.Spec.DAGHash() != b.Spec.DAGHash() {
		t.Error("hash differs between identical runs")
	}
	if len(a.Steps) != len(b.Steps) {
		t.Error("trace differs between identical runs")
	}
}

func TestPaperBabelStreamSpec(t *testing.T) {
	// The paper's §3.1 spec: babelstream%gcc@9.2.0 (with the omp model).
	res := mustConcretize(t, "babelstream%gcc@9.2.0 model=omp", defaultOpts())
	s := res.Spec
	if s.Compiler.String() != "gcc@9.2.0" {
		t.Errorf("compiler = %v", s.Compiler)
	}
	if got := s.Variants["model"].Str; got != "omp" {
		t.Errorf("model = %s", got)
	}
	// model=omp must not drag in kokkos/cuda/tbb.
	for _, absent := range []string{"kokkos", "cuda", "intel-tbb", "pocl"} {
		if s.Lookup(absent) != nil {
			t.Errorf("model=omp build should not depend on %s", absent)
		}
	}
	if s.Lookup("cmake") == nil {
		t.Error("cmake build dependency missing")
	}
}

func TestConditionalDependencyTriggers(t *testing.T) {
	res := mustConcretize(t, "babelstream model=kokkos", defaultOpts())
	k := res.Spec.Lookup("kokkos")
	if k == nil {
		t.Fatal("model=kokkos must pull in kokkos")
	}
	if !k.Concrete {
		t.Error("kokkos dep not concrete")
	}
	// Kokkos inherits the root's compiler.
	if k.Compiler.Name != "gcc" {
		t.Errorf("kokkos compiler = %v", k.Compiler)
	}
	res = mustConcretize(t, "babelstream model=cuda", defaultOpts())
	if res.Spec.Lookup("cuda") == nil {
		t.Error("model=cuda must pull in cuda")
	}
}

func TestVirtualDefaultProvider(t *testing.T) {
	// hpgmg depends on virtual "mpi"; with no externals or prefs the
	// conventional default is openmpi.
	res := mustConcretize(t, "hpgmg", defaultOpts())
	m := res.Spec.Lookup("openmpi")
	if m == nil {
		t.Fatalf("expected openmpi provider, spec: %s", res.Spec)
	}
	if got := m.Version.String(); got != "4.1.4" {
		t.Errorf("openmpi version = %s", got)
	}
	if res.Spec.Lookup("python") == nil {
		t.Error("hpgmg must depend on python")
	}
}

func TestVirtualProviderPreference(t *testing.T) {
	opts := defaultOpts()
	opts.Providers = map[string]string{"mpi": "mpich"}
	res := mustConcretize(t, "hpgmg", opts)
	if res.Spec.Lookup("mpich") == nil {
		t.Errorf("provider preference ignored: %s", res.Spec)
	}
	if res.Spec.Lookup("openmpi") != nil {
		t.Error("both providers present")
	}
	opts.Providers = map[string]string{"mpi": "zlib"}
	s := spec.MustParse("hpgmg")
	if _, err := Concretize(s, opts); err == nil {
		t.Error("non-provider preference accepted")
	}
}

func TestVirtualExplicitProviderPin(t *testing.T) {
	res := mustConcretize(t, "hpgmg ^mvapich2@2.3.6", defaultOpts())
	m := res.Spec.Lookup("mvapich2")
	if m == nil {
		t.Fatalf("explicit provider pin ignored: %s", res.Spec)
	}
	if m.Version.String() != "2.3.6" {
		t.Errorf("mvapich2 version = %s", m.Version)
	}
}

func TestExternalsPreferred(t *testing.T) {
	opts := defaultOpts()
	opts.Externals = []External{
		{Spec: mustExternalSpec("cray-mpich@8.1.23"), Path: "/opt/cray/pe/mpich/8.1.23"},
		{Spec: mustExternalSpec("python@3.10.12"), Path: "/usr"},
	}
	res := mustConcretize(t, "hpgmg", opts)
	m := res.Spec.Lookup("cray-mpich")
	if m == nil {
		t.Fatalf("external MPI not chosen: %s", res.Spec)
	}
	if !m.External || m.ExternalPath != "/opt/cray/pe/mpich/8.1.23" {
		t.Errorf("external not recorded: %+v", m)
	}
	p := res.Spec.Lookup("python")
	if p == nil || !p.External || p.Version.String() != "3.10.12" {
		t.Errorf("external python not chosen: %+v", p)
	}
	// Provenance must mention the external (Principle 4).
	joined := strings.Join(res.Steps, "\n")
	if !strings.Contains(joined, "external") {
		t.Errorf("trace does not record external use:\n%s", joined)
	}
}

func TestTable3Concretization(t *testing.T) {
	// Reproduces Table 3: concretized build dependencies of hpgmg%gcc on
	// the four systems of the paper.
	type sysConfig struct {
		name   string
		gcc    string
		mpi    string
		mpiVer string
		python string
	}
	systems := []sysConfig{
		{"archer2", "11.2.0", "cray-mpich", "8.1.23", "3.10.12"},
		{"cosma8", "11.1.0", "mvapich2", "2.3.6", "2.7.15"},
		{"csd3", "11.2.0", "openmpi", "4.0.4", "3.8.2"},
		{"isambard-macs", "9.2.0", "openmpi", "4.0.3", "3.7.5"},
	}
	for _, sc := range systems {
		opts := Options{
			Repo: repo.Builtin(),
			Compilers: []spec.Compiler{
				{Name: "gcc", Version: spec.ExactVersion(spec.Version(sc.gcc))},
			},
			Externals: []External{
				{Spec: mustExternalSpec(sc.mpi + "@" + sc.mpiVer), Path: "/opt/" + sc.mpi},
				{Spec: mustExternalSpec("python@" + sc.python), Path: "/usr"},
			},
		}
		res := mustConcretize(t, "hpgmg%gcc", opts)
		s := res.Spec
		if got := s.Compiler.Version.String(); got != sc.gcc {
			t.Errorf("%s: gcc = %s, want %s", sc.name, got, sc.gcc)
		}
		mpi := s.Lookup(sc.mpi)
		if mpi == nil {
			t.Errorf("%s: MPI provider %s not selected: %s", sc.name, sc.mpi, s)
			continue
		}
		if got := mpi.Version.String(); got != sc.mpiVer {
			t.Errorf("%s: %s = %s, want %s", sc.name, sc.mpi, got, sc.mpiVer)
		}
		py := s.Lookup("python")
		if py == nil || py.Version.String() != sc.python {
			t.Errorf("%s: python = %v, want %s", sc.name, py, sc.python)
		}
	}
}

func TestConflictRejected(t *testing.T) {
	// Table 2's N/A: the Intel-optimised HPCG cannot be built with gcc.
	s := spec.MustParse("hpcg variant=intel-avx2 %gcc")
	if _, err := Concretize(s, defaultOpts()); err == nil {
		t.Error("conflict not enforced")
	} else if !strings.Contains(err.Error(), "oneapi") {
		t.Errorf("conflict reason missing: %v", err)
	}
	// With oneapi it concretizes and pulls in MKL.
	res := mustConcretize(t, "hpcg variant=intel-avx2 %oneapi", defaultOpts())
	if res.Spec.Lookup("intel-oneapi-mkl") == nil {
		t.Error("intel-avx2 must depend on MKL")
	}
}

func TestTargetArchConflict(t *testing.T) {
	// §3.1: TBB unavailable on ThunderX2 (aarch64).
	opts := defaultOpts()
	opts.TargetArch = "aarch64"
	s := spec.MustParse("babelstream model=tbb")
	if _, err := Concretize(s, opts); err == nil {
		t.Error("intel-tbb on aarch64 must fail")
	}
	opts.TargetArch = "x86_64"
	if _, err := Concretize(s.Copy(), opts); err != nil {
		t.Errorf("intel-tbb on x86_64 should work: %v", err)
	}
}

func TestUnknownVariantRejected(t *testing.T) {
	for _, bad := range []string{
		"stream +nonexistent",
		"stream openmp=yes",         // bool variant given string value
		"babelstream model=fortran", // not in allowed values
	} {
		s := spec.MustParse(bad)
		if _, err := Concretize(s, defaultOpts()); err == nil {
			t.Errorf("Concretize(%q): expected error", bad)
		}
	}
}

func TestUnknownPackage(t *testing.T) {
	s := spec.MustParse("not-a-package")
	if _, err := Concretize(s, defaultOpts()); err == nil {
		t.Error("unknown package accepted")
	}
}

func TestUnknownCompiler(t *testing.T) {
	s := spec.MustParse("stream%xlc")
	if _, err := Concretize(s, defaultOpts()); err == nil {
		t.Error("unavailable compiler accepted")
	}
	s2 := spec.MustParse("stream%gcc@13:")
	if _, err := Concretize(s2, defaultOpts()); err == nil {
		t.Error("unsatisfiable compiler range accepted")
	}
}

func TestVersionConstraintRespected(t *testing.T) {
	res := mustConcretize(t, "gcc@10:11", defaultOpts())
	if got := res.Spec.Version.String(); got != "11.2.0" {
		t.Errorf("gcc@10:11 -> %s, want 11.2.0", got)
	}
	s := spec.MustParse("gcc@99:")
	if _, err := Concretize(s, defaultOpts()); err == nil {
		t.Error("unsatisfiable version accepted")
	}
}

func TestCompilerSelectionPicksHighestMatching(t *testing.T) {
	res := mustConcretize(t, "stream%gcc", defaultOpts())
	if got := res.Spec.Compiler.Version.String(); got != "12.1.0" {
		t.Errorf("gcc pick = %s, want highest 12.1.0", got)
	}
	res = mustConcretize(t, "stream%gcc@9", defaultOpts())
	if got := res.Spec.Compiler.Version.String(); got != "9.2.0" {
		t.Errorf("gcc@9 pick = %s, want 9.2.0", got)
	}
}

func TestDiamondDependencyUnified(t *testing.T) {
	// babelstream model=kokkos: cmake appears as a dep of both root and
	// kokkos; it must be the same node.
	res := mustConcretize(t, "babelstream model=kokkos", defaultOpts())
	rootCmake := res.Spec.Deps["cmake"]
	kokkosCmake := res.Spec.Deps["kokkos"].Deps["cmake"]
	if rootCmake == nil || kokkosCmake == nil {
		t.Fatalf("cmake missing somewhere: %s", res.Spec)
	}
	if rootCmake != kokkosCmake {
		t.Error("diamond dependency not unified to one node")
	}
}

func TestTraceIsHumanReadable(t *testing.T) {
	res := mustConcretize(t, "hpgmg", defaultOpts())
	joined := strings.Join(res.Steps, "\n")
	for _, want := range []string{"hpgmg: version", "compiler", "virtual provided by"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

func TestNilInputs(t *testing.T) {
	if _, err := Concretize(nil, defaultOpts()); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := Concretize(spec.MustParse("stream"), Options{}); err == nil {
		t.Error("nil repo accepted")
	}
}

func mustExternalSpec(text string) *spec.Spec {
	s := spec.MustParse(text)
	s.Concrete = true
	return s
}

func TestConcretizeSatisfiesInputProperty(t *testing.T) {
	// Property: for randomly composed valid abstract specs, the concrete
	// result always satisfies the constraints it was asked for.
	opts := defaultOpts()
	gen := func(r *rand.Rand) *spec.Spec {
		pkgs := []string{"stream", "hpgmg", "babelstream", "cmake", "zlib"}
		s := spec.New(pkgs[r.Intn(len(pkgs))])
		if r.Intn(2) == 0 {
			s.Compiler = spec.Compiler{Name: "gcc"}
		}
		if s.Name == "babelstream" && r.Intn(2) == 0 {
			models := []string{"omp", "tbb", "std-data", "kokkos"}
			s.SetVariant("model", spec.StrVariant(models[r.Intn(len(models))]))
		}
		if s.Name == "stream" && r.Intn(2) == 0 {
			s.SetVariant("openmp", spec.BoolVariant(r.Intn(2) == 0))
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		abstract := gen(r)
		res, err := Concretize(abstract.Copy(), opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Spec.Satisfies(abstract) {
			t.Logf("seed %d: %s does not satisfy %s", seed, res.Spec, abstract)
			return false
		}
		return res.Spec.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcretizeIdempotentOnResult(t *testing.T) {
	// Concretizing the same abstract spec twice gives identical DAGs, and
	// the concrete output's string form re-parses to a spec the result
	// satisfies.
	res := mustConcretize(t, "babelstream model=kokkos", defaultOpts())
	reparsed, err := spec.Parse(res.Spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spec.Satisfies(reparsed) {
		t.Error("concrete spec does not satisfy its own rendering")
	}
}
