// Package concretize turns abstract specs into concrete build DAGs, the
// role Spack's concretizer plays in the paper's framework (§2.2).
//
// Concretization combines three inputs:
//
//   - the abstract spec the user asked for (possibly just a name),
//   - the recipe repository (versions, variants, conditional and virtual
//     dependencies, conflicts),
//   - the system configuration (available compilers, external packages
//     such as the system MPI, provider preferences).
//
// The output is a deterministic concrete spec plus a provenance trace —
// every decision is recorded so the build can be audited later, the
// paper's "archaeological reproducibility" (Principle 4). Table 3 of the
// paper (the gcc/python/MPI versions chosen for hpgmg on four systems) is
// exactly the observable output of this process.
package concretize

import (
	"fmt"
	"sort"

	"repro/internal/repo"
	"repro/internal/spec"
)

// External describes a system-provided package installation that the
// concretizer may use instead of building from source — the equivalent of
// a packages.yaml external in Spack.
type External struct {
	// Spec must pin name and exact version, e.g. cray-mpich@8.1.23.
	Spec *spec.Spec
	// Path is where the installation lives on the system.
	Path string
}

// Options configures one concretization run; it encodes the per-system
// knowledge that the framework ships as system configurations.
type Options struct {
	Repo *repo.Repository

	// Externals are system-provided installations, preferred over
	// building from source when they satisfy the constraints.
	Externals []External

	// Compilers lists the compilers installed on the system, with exact
	// versions. The first entry whose name matches a requested compiler
	// (or the first entry overall when no compiler is requested) wins.
	Compilers []spec.Compiler

	// Providers maps a virtual package name to the preferred provider
	// recipe on this system (e.g. "mpi" -> "cray-mpich"). Externals that
	// provide the virtual take precedence over this preference.
	Providers map[string]string

	// TargetArch, when non-empty, is assigned to any recipe variant
	// named "target" that the user did not set, letting recipes declare
	// architecture conflicts (e.g. intel-tbb on aarch64).
	TargetArch string
}

// Result is a concretized spec plus the decision trace.
type Result struct {
	Spec  *spec.Spec
	Steps []string
}

// Trace returns the provenance trace as one line per decision.
func (r *Result) Trace() []string { return r.Steps }

type resolver struct {
	opts    Options
	steps   []string
	visited map[string]*spec.Spec // package name -> concretized spec (DAG dedup)
	stack   map[string]bool       // cycle detection
}

// Concretize resolves the abstract spec into a concrete build DAG.
// The same inputs always produce the same output.
func Concretize(abstract *spec.Spec, opts Options) (*Result, error) {
	if opts.Repo == nil {
		return nil, fmt.Errorf("concretize: no repository configured")
	}
	if abstract == nil {
		return nil, fmt.Errorf("concretize: nil spec")
	}
	r := &resolver{
		opts:    opts,
		visited: map[string]*spec.Spec{},
		stack:   map[string]bool{},
	}
	root, err := r.resolve(abstract.Copy(), spec.Compiler{})
	if err != nil {
		return nil, err
	}
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("concretize: internal error: %w", err)
	}
	return &Result{Spec: root, Steps: r.steps}, nil
}

func (r *resolver) logf(format string, args ...interface{}) {
	r.steps = append(r.steps, fmt.Sprintf(format, args...))
}

// resolve concretizes one package node. parentCompiler is inherited when
// the node has no compiler constraint of its own.
func (r *resolver) resolve(s *spec.Spec, parentCompiler spec.Compiler) (*spec.Spec, error) {
	if r.stack[s.Name] {
		return nil, fmt.Errorf("concretize: dependency cycle through %q", s.Name)
	}
	if prev, ok := r.visited[s.Name]; ok {
		// Unify with the constraints of this occurrence: a diamond
		// dependency must agree with what was already decided.
		if !prev.Satisfies(stripDeps(s)) {
			return nil, fmt.Errorf("concretize: %s already resolved to %q which does not satisfy %q",
				s.Name, prev.RootString(), s.RootString())
		}
		return prev, nil
	}
	r.stack[s.Name] = true
	defer delete(r.stack, s.Name)

	// External installations satisfy the node without building.
	if ext := r.findExternal(s); ext != nil {
		out := ext.Spec.Copy()
		out.Concrete = true
		out.External = true
		out.ExternalPath = ext.Path
		r.visited[s.Name] = out
		r.visited[out.Name] = out
		r.logf("%s: using external %s at %s", s.Name, out.RootString(), ext.Path)
		return out, nil
	}

	pkg, err := r.opts.Repo.Get(s.Name)
	if err != nil {
		if r.opts.Repo.IsVirtual(s.Name) {
			return r.resolveVirtual(s, parentCompiler)
		}
		return nil, fmt.Errorf("concretize: %w", err)
	}

	out := s.Copy()

	// Version: highest declared version satisfying the constraint.
	var version spec.Version
	if out.Version.IsAny() {
		version, err = pkg.HighestVersion()
	} else {
		version, err = pkg.BestVersionWithin(out.Version)
	}
	if err != nil {
		return nil, fmt.Errorf("concretize: %s: %w", s.Name, err)
	}
	out.Version = spec.ExactVersion(version)
	r.logf("%s: version %s", s.Name, version)

	// Variants: reject unknown ones, fill defaults for the rest.
	for name, v := range out.Variants {
		def, ok := pkg.Variant(name)
		if !ok {
			return nil, fmt.Errorf("concretize: %s has no variant %q (known: %s)", s.Name, name, variantNames(pkg))
		}
		if def.Bool != v.IsBool {
			return nil, fmt.Errorf("concretize: %s: variant %q is %s-valued", s.Name, name, kindName(def.Bool))
		}
		if !v.IsBool && len(def.Values) > 0 && !containsStr(def.Values, v.Str) {
			return nil, fmt.Errorf("concretize: %s: variant %s=%s not in allowed values %v", s.Name, name, v.Str, def.Values)
		}
	}
	for _, def := range pkg.Variants {
		if _, set := out.Variants[def.Name]; set {
			continue
		}
		v := def.Default
		if def.Name == "target" && r.opts.TargetArch != "" && !def.Bool {
			v = spec.StrVariant(r.opts.TargetArch)
			r.logf("%s: variant target=%s (from system architecture)", s.Name, r.opts.TargetArch)
		} else {
			r.logf("%s: variant %s (default)", s.Name, v.Render(def.Name))
		}
		v.Default = true
		out.SetVariant(def.Name, v)
	}

	// Compiler: explicit > inherited > system default.
	comp := out.Compiler
	if comp.IsEmpty() {
		comp = parentCompiler
	}
	pinned, err := r.pinCompiler(comp)
	if err != nil {
		return nil, fmt.Errorf("concretize: %s: %w", s.Name, err)
	}
	out.Compiler = pinned
	r.logf("%s: compiler %%%s", s.Name, pinned)

	// Conflicts.
	for _, c := range pkg.Conflicts {
		if out.Satisfies(c.When) {
			return nil, fmt.Errorf("concretize: %s conflicts with %q: %s", out.RootString(), c.When, c.Reason)
		}
	}

	// Pre-register so dependency diamonds resolve to this node.
	r.visited[s.Name] = out

	// Dependencies: recipe deps (conditional and virtual) merged with the
	// user's explicit ^dep constraints.
	explicit := out.Deps
	out.Deps = map[string]*spec.Spec{}
	consumed := map[string]bool{}
	for _, d := range pkg.Dependencies {
		if d.When != nil && !out.Satisfies(d.When) {
			continue
		}
		want := spec.New(d.Name)
		if d.Constraint != nil {
			if err := want.Constrain(d.Constraint); err != nil {
				return nil, fmt.Errorf("concretize: %s dependency %s: %w", s.Name, d.Name, err)
			}
		}
		// Merge explicit constraints for this name, or for a provider
		// of this virtual.
		if exp, ok := explicit[d.Name]; ok {
			if err := want.Constrain(exp); err != nil {
				return nil, fmt.Errorf("concretize: %s dependency %s: %w", s.Name, d.Name, err)
			}
			consumed[d.Name] = true
		} else if r.opts.Repo.IsVirtual(d.Name) {
			for _, prov := range r.opts.Repo.Providers(d.Name) {
				if exp, ok := explicit[prov]; ok {
					// User pinned the provider explicitly.
					want = exp.Copy()
					consumed[prov] = true
					break
				}
			}
		}
		dep, err := r.resolve(want, pinned)
		if err != nil {
			return nil, err
		}
		out.Deps[dep.Name] = dep
	}
	// Any leftover explicit deps are additional user-requested packages.
	for _, name := range sortedKeys(explicit) {
		if consumed[name] {
			continue
		}
		if _, already := out.Deps[name]; already {
			continue
		}
		dep, err := r.resolve(explicit[name], pinned)
		if err != nil {
			return nil, err
		}
		out.Deps[dep.Name] = dep
	}

	out.Concrete = true
	return out, nil
}

// resolveVirtual picks a provider for a virtual package like "mpi":
// external providers first, then the system preference, then the first
// provider alphabetically.
func (r *resolver) resolveVirtual(s *spec.Spec, parentCompiler spec.Compiler) (*spec.Spec, error) {
	providers := r.opts.Repo.Providers(s.Name)
	if len(providers) == 0 {
		return nil, fmt.Errorf("concretize: no recipe or provider for %q", s.Name)
	}
	// An external that provides the virtual wins.
	for _, ext := range r.opts.Externals {
		pkg, err := r.opts.Repo.Get(ext.Spec.Name)
		if err != nil {
			continue
		}
		if containsStr(pkg.Provides, s.Name) {
			want := ext.Spec.Copy()
			// The virtual's constraints (e.g. mpi@3:) must hold.
			if !want.Satisfies(renamed(s, want.Name)) {
				continue
			}
			r.logf("%s: virtual provided by external %s", s.Name, want.RootString())
			return r.resolve(want, parentCompiler)
		}
	}
	choice := providers[0]
	if pref, ok := r.opts.Providers[s.Name]; ok {
		if !containsStr(providers, pref) {
			return nil, fmt.Errorf("concretize: preferred provider %q does not provide %q", pref, s.Name)
		}
		choice = pref
	} else if containsStr(providers, "openmpi") && s.Name == "mpi" {
		choice = "openmpi" // conventional default provider
	}
	r.logf("%s: virtual provided by %s", s.Name, choice)
	return r.resolve(renamed(s, choice), parentCompiler)
}

// renamed copies s's root constraints onto a different package name.
func renamed(s *spec.Spec, name string) *spec.Spec {
	out := s.Copy()
	out.Name = name
	return out
}

// stripDeps returns a copy of s without dependency constraints, for
// unification checks against an already-resolved node.
func stripDeps(s *spec.Spec) *spec.Spec {
	out := s.Copy()
	out.Deps = map[string]*spec.Spec{}
	return out
}

// findExternal returns the first external satisfying the node's own
// constraints (name, version, variants), or nil.
func (r *resolver) findExternal(s *spec.Spec) *External {
	for i := range r.opts.Externals {
		ext := &r.opts.Externals[i]
		if ext.Spec.Name != s.Name {
			continue
		}
		if ext.Spec.Satisfies(stripDeps(s)) {
			return ext
		}
	}
	return nil
}

// pinCompiler resolves a compiler constraint to an exact installed
// compiler. With no constraint, the system's first compiler is used; with
// no compilers configured, a fixed fallback keeps single-package tests
// hermetic.
func (r *resolver) pinCompiler(want spec.Compiler) (spec.Compiler, error) {
	if len(r.opts.Compilers) == 0 {
		if want.IsEmpty() {
			return spec.Compiler{Name: "gcc", Version: spec.ExactVersion("12.1.0")}, nil
		}
		if want.Version.IsExact() {
			return want, nil
		}
		return spec.Compiler{}, fmt.Errorf("no compilers configured and %%%s is not exact", want)
	}
	if want.IsEmpty() {
		return r.opts.Compilers[0], nil
	}
	if want.Version.IsAny() {
		// Name-only constraint: the system's preference order decides
		// (the first matching entry). This is how Isambard MACS pins
		// gcc 9.2.0 while offering newer compilers — the paper notes
		// newer GCCs conflict with some build systems there.
		for _, c := range r.opts.Compilers {
			if c.Name == want.Name {
				return c, nil
			}
		}
		return spec.Compiler{}, fmt.Errorf("no installed compiler named %q (have %s)", want.Name, compilerList(r.opts.Compilers))
	}
	// Version-constrained: highest installed version that satisfies.
	var best spec.Compiler
	for _, c := range r.opts.Compilers {
		if c.Name != want.Name || !c.Satisfies(want) {
			continue
		}
		if best.IsEmpty() || c.Version.Lo.Compare(best.Version.Lo) > 0 {
			best = c
		}
	}
	if best.IsEmpty() {
		return spec.Compiler{}, fmt.Errorf("no installed compiler satisfies %%%s (have %s)", want, compilerList(r.opts.Compilers))
	}
	return best, nil
}

func compilerList(cs []spec.Compiler) string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = "%" + c.String()
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

func variantNames(p *repo.Package) string {
	names := make([]string, len(p.Variants))
	for i, v := range p.Variants {
		names[i] = v.Name
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

func kindName(isBool bool) string {
	if isBool {
		return "boolean"
	}
	return "string"
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]*spec.Spec) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
