package perfstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"
)

// sortedStored renders n random entries as a (t, seq)-sorted arena —
// the precondition every segment encoder call site establishes.
func sortedStored(seed int64, n int) []stored {
	rng := rand.New(rand.NewSource(seed))
	ents := make([]stored, 0, n)
	for i := 0; i < n; i++ {
		e := randEntry(rng, i)
		ents = append(ents, stored{entry: e, file: "mem.log", t: timeNanos(e.Time), seq: uint64(i + 1)})
	}
	slices.SortFunc(ents, func(a, b stored) int {
		return cmpHits(hit{a.entry, a.t, a.seq}, hit{b.entry, b.t, b.seq})
	})
	return ents
}

// TestSegmentRoundTrip: encode → decode must reproduce every entry
// byte-identically (via the canonical perflog line) along with its
// ordering key, sequence, and source file.
func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500} {
		ents := sortedStored(int64(n)+1, n)
		hdr, data := encodeSegment(ents)
		if hdr.Count != n {
			t.Fatalf("n=%d: header count %d", n, hdr.Count)
		}
		d, err := decodeSegment(hdr, data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(d.entries) != n {
			t.Fatalf("n=%d: decoded %d entries", n, len(d.entries))
		}
		for i := range ents {
			want, got := ents[i], d.entries[i]
			if want.entry.Line() != got.entry.Line() {
				t.Fatalf("n=%d row %d: line diverged\nwant %s\ngot  %s", n, i, want.entry.Line(), got.entry.Line())
			}
			if !want.entry.Time.Equal(got.entry.Time) {
				t.Fatalf("n=%d row %d: time %v -> %v", n, i, want.entry.Time, got.entry.Time)
			}
			if want.t != got.t || want.seq != got.seq || want.file != got.file {
				t.Fatalf("n=%d row %d: ordering key diverged: (%d,%d,%q) -> (%d,%d,%q)",
					n, i, want.t, want.seq, want.file, got.t, got.seq, got.file)
			}
		}
		// The rebuilt posting lists must match a from-scratch build.
		rebuilt := buildPostings(d.entries)
		if len(rebuilt) != len(d.post) {
			t.Fatalf("n=%d: posting key count %d vs %d", n, len(rebuilt), len(d.post))
		}
	}
}

// TestSegmentHeaderRoundTrip pins the fixed header codec, including
// CRC rejection of corruption in any byte.
func TestSegmentHeaderRoundTrip(t *testing.T) {
	h := segHeader{Count: 42, MinT: -5, MaxT: 1e18, MinSeq: 7, MaxSeq: 99, DataLen: 12345, DataCRC: 0xdeadbeef}
	buf := marshalHeader(h)
	got, err := unmarshalHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v -> %+v", h, got)
	}
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		if _, err := unmarshalHeader(mut); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

// TestSegmentFileSurvivesTimeExtremes: the saturating ordering key and
// the (sec, nanos) time columns must both round-trip entries far
// outside UnixNano's range.
func TestSegmentTimeExtremes(t *testing.T) {
	times := []time.Time{
		time.Date(1400, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1678, 6, 1, 0, 0, 0, 999, time.UTC),
		t0,
		time.Date(2262, 6, 1, 0, 0, 0, 0, time.UTC),
		time.Date(9999, 1, 1, 0, 0, 0, 1, time.UTC),
	}
	ents := make([]stored, 0, len(times))
	for i, tm := range times {
		e := entry("archer2", "hpgmg-fv", i, tm, map[string]float64{"l0": float64(i)})
		ents = append(ents, stored{entry: e, file: "x.log", t: timeNanos(tm), seq: uint64(i + 1)})
	}
	slices.SortFunc(ents, func(a, b stored) int {
		return cmpHits(hit{a.entry, a.t, a.seq}, hit{b.entry, b.t, b.seq})
	})
	hdr, data := encodeSegment(ents)
	d, err := decodeSegment(hdr, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ents {
		if !ents[i].entry.Time.Equal(d.entries[i].entry.Time) {
			t.Fatalf("row %d: time %v -> %v", i, ents[i].entry.Time, d.entries[i].entry.Time)
		}
		if ents[i].t != d.entries[i].t {
			t.Fatalf("row %d: ordering key %d -> %d", i, ents[i].t, d.entries[i].t)
		}
	}
}

// TestSegmentWriteRead drives the file layer: write atomically, read
// the header alone, then load and compare.
func TestSegmentWriteRead(t *testing.T) {
	dir := t.TempDir()
	ents := sortedStored(3, 100)
	info, err := writeSegmentFile(dir, 1, ents)
	if err != nil {
		t.Fatal(err)
	}
	if info.Count != 100 || info.File != "seg-00000001.seg" {
		t.Fatalf("info = %+v", info)
	}
	hdr, err := readSegmentHeader(filepath.Join(dir, info.File))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Count != 100 || hdr.MinT != info.MinT || hdr.MaxT != info.MaxT {
		t.Fatalf("header %+v disagrees with info %+v", hdr, info)
	}
	g := &segment{dir: dir, info: info}
	d, err := g.load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ents {
		if ents[i].entry.Line() != d.entries[i].entry.Line() {
			t.Fatalf("row %d diverged after file round trip", i)
		}
	}
	// No temp debris.
	if _, err := os.Stat(filepath.Join(dir, info.File+".tmp")); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// TestSegmentDecodeRejectsCorruption flips bytes across the data block
// and requires an error (never a panic, never silent acceptance of a
// wrong arena — the CRC catches every single-byte flip).
func TestSegmentDecodeRejectsCorruption(t *testing.T) {
	ents := sortedStored(7, 40)
	hdr, data := encodeSegment(ents)
	for i := 0; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, err := decodeSegment(hdr, mut); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	if _, err := decodeSegment(hdr, data[:len(data)-1]); err == nil {
		t.Fatal("truncated data accepted")
	}
}

// FuzzSegmentDecode hammers the decoder with arbitrary headers and data
// blocks: it must never panic and never accept bytes whose CRC holds
// but whose structure is inconsistent without an error. Valid inputs
// (from the encoder) must round-trip.
func FuzzSegmentDecode(f *testing.F) {
	for _, n := range []int{0, 1, 25} {
		ents := sortedStored(int64(n)+11, n)
		hdr, data := encodeSegment(ents)
		f.Add(marshalHeader(hdr), data)
	}
	f.Add([]byte("PSG1 garbage header padding here to 64 bytes....................."), []byte("junk"))
	f.Fuzz(func(t *testing.T, hdrBytes, data []byte) {
		hdr, err := unmarshalHeader(hdrBytes)
		if err != nil {
			return
		}
		d, err := decodeSegment(hdr, data)
		if err != nil {
			return
		}
		// Whatever decoded must satisfy the segment invariants.
		if len(d.entries) != hdr.Count {
			t.Fatalf("decoded %d entries, header says %d", len(d.entries), hdr.Count)
		}
		for i := 1; i < len(d.entries); i++ {
			a, b := d.entries[i-1], d.entries[i]
			if a.t > b.t {
				t.Fatalf("arena out of order at %d", i)
			}
		}
		// And re-encoding a decoded arena must be stable (canonical form).
		hdr2, data2 := encodeSegment(d.entries)
		d2, err := decodeSegment(hdr2, data2)
		if err != nil {
			t.Fatalf("re-encode of decoded arena does not decode: %v", err)
		}
		if len(d2.entries) != len(d.entries) {
			t.Fatalf("re-encode changed entry count")
		}
		for i := range d.entries {
			if d.entries[i].entry.Line() != d2.entries[i].entry.Line() {
				t.Fatalf("re-encode changed row %d", i)
			}
		}
	})
}

// TestSegmentZoneMapPrunes: a Since window entirely past a segment's
// MaxT must answer from the zone map alone — the data block is never
// read from disk.
func TestSegmentZoneMapPrunes(t *testing.T) {
	dir := t.TempDir()
	ents := sortedStored(5, 50)
	info, err := writeSegmentFile(dir, 1, ents)
	if err != nil {
		t.Fatal(err)
	}
	g := &segment{dir: dir, info: info}
	s := Open("unused")
	m := Query{Since: time.Unix(0, info.MaxT).UTC().Add(time.Hour)}.compile()
	if hits := g.collect(s, m, 0); len(hits) != 0 {
		t.Fatalf("pruned segment returned %d hits", len(hits))
	}
	if g.loaded() {
		t.Fatal("zone-map prune still loaded the data block")
	}
	// A window inside the zone map does load and answer.
	m = Query{Since: time.Unix(0, info.MinT).UTC()}.compile()
	if hits := g.collect(s, m, 0); len(hits) != 50 {
		t.Fatalf("in-range collect returned %d hits, want 50", len(hits))
	}
	if !g.loaded() {
		t.Fatal("in-range collect did not load the segment")
	}
}
