package perfstore

import (
	"fmt"
	"math"
	"sort"
)

// Report flags one group's latest FOM value against a sliding baseline
// — the same rule perfplot regress applies: the latest value is
// compared with the mean of the baseline window, and a fractional drop
// beyond the tolerance is flagged.
type Report struct {
	Group    string  `json:"group"`
	Baseline float64 `json:"baseline"`
	Latest   float64 `json:"latest"`
	Change   float64 `json:"change"` // fractional, negative = slower
	Flagged  bool    `json:"flagged"`
	Samples  int     `json:"samples"` // values in the baseline window
}

// EvalSeries applies the regression rule to one time-ascending series:
// baseline = mean of the window values preceding the latest (window
// <= 0 means all of them), change = (latest-baseline)/baseline, flagged
// when the drop exceeds the tolerance. It reports false when the series
// is too short to judge (fewer than two values). This is the single
// tolerance implementation shared by perfplot regress
// (postprocess.CheckRegressions) and the benchd /v1/regressions
// endpoint.
func EvalSeries(vals []float64, tolerance float64, window int) (Report, bool) {
	clean := vals[:0:0]
	for _, v := range vals {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) < 2 {
		return Report{}, false
	}
	latest := clean[len(clean)-1]
	base := clean[:len(clean)-1]
	if window > 0 && len(base) > window {
		base = base[len(base)-window:]
	}
	sum := 0.0
	for _, v := range base {
		sum += v
	}
	mean := sum / float64(len(base))
	change := 0.0
	if mean != 0 {
		change = (latest - mean) / mean
	}
	return Report{
		Baseline: mean,
		Latest:   latest,
		Change:   change,
		Flagged:  change < -tolerance,
		Samples:  len(base),
	}, true
}

// Regressions evaluates q.FOM over the matching entries, grouped by
// q.GroupBy (default system,benchmark), each group ordered by
// timestamp. window bounds the sliding baseline (0 = every earlier
// run). Groups with fewer than two runs are skipped — nothing to
// compare yet.
func (s *Store) Regressions(q Query, tolerance float64, window int) ([]Report, error) {
	if q.FOM == "" {
		return nil, fmt.Errorf("perfstore: regressions need Query.FOM")
	}
	groupBy := q.GroupBy
	if len(groupBy) == 0 {
		groupBy = []string{"system", "benchmark"}
	}
	entries := s.Select(q) // time-ascending, fanned out across shards
	// Pointer values keep the hot loop allocation-free: the group key is
	// rendered into the keyer's reused buffer and only materialized as a
	// string when a new group appears.
	keyer := newGroupKeyer(groupBy)
	series := map[string]*[]float64{}
	for _, e := range entries {
		raw := keyer.raw(e)
		vals := series[string(raw)]
		if vals == nil {
			vals = new([]float64)
			series[string(raw)] = vals
		}
		*vals = append(*vals, e.FOMs[q.FOM].Value)
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Report
	for _, key := range keys {
		r, ok := EvalSeries(*series[key], tolerance, window)
		if !ok {
			continue
		}
		r.Group = key
		out = append(out, r)
	}
	return out, nil
}
