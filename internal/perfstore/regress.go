package perfstore

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/perflog"
)

// DefaultRSDGate is the run-to-run relative-standard-deviation threshold
// above which a FOM's latest value is reported as unstable rather than
// judged against the baseline: a 10% noise floor, per the validation
// protocol. Store.RSDGate overrides it.
const DefaultRSDGate = 0.10

// Verdict and method vocabulary for Report.
const (
	VerdictOK        = "ok"
	VerdictRegressed = "regressed"
	VerdictUnstable  = "unstable"

	MethodCI        = "ci"        // bootstrap CI-overlap test
	MethodTolerance = "tolerance" // fixed fractional tolerance (fallback)
	MethodVariance  = "variance"  // variance gate tripped; no comparison made
)

// SeriesPoint is one run's contribution to a regression series: the
// perflog point value plus, when the run used the repetition protocol,
// its per-FOM repetition statistics.
type SeriesPoint struct {
	Value float64
	Stats *perflog.RepStats // nil for single-execution entries
}

// Report flags one group's latest FOM value against a sliding baseline.
// When the latest run carries enough repetitions (n >= 3) the verdict
// comes from a CI-overlap test — flagged when the latest run's bootstrap
// confidence interval falls entirely below the baseline's interval
// envelope; otherwise the fixed-tolerance rule is the fallback. A latest
// run whose run-to-run RSD exceeds the gate is reported as unstable and
// never flagged: noise is not a regression, and a mean over noise is not
// a result.
type Report struct {
	Group    string  `json:"group"`
	Baseline float64 `json:"baseline"`
	Latest   float64 `json:"latest"`
	Change   float64 `json:"change"` // fractional, negative = slower
	Flagged  bool    `json:"flagged"`
	Samples  int     `json:"samples"` // values in the baseline window
	// Verdict is ok, regressed, or unstable; Method records which rule
	// produced it (ci, tolerance, variance).
	Verdict string `json:"verdict,omitempty"`
	Method  string `json:"method,omitempty"`
	// Interval columns, present when the CI path judged the series.
	BaselineLo float64 `json:"baseline_lo,omitempty"`
	BaselineHi float64 `json:"baseline_hi,omitempty"`
	LatestLo   float64 `json:"latest_lo,omitempty"`
	LatestHi   float64 `json:"latest_hi,omitempty"`
	// Repetition statistics of the latest run, when it carried any.
	LatestN   int     `json:"latest_n,omitempty"`
	LatestRSD float64 `json:"latest_rsd,omitempty"`
}

// EvalSeries applies the fixed-tolerance regression rule to a plain
// value series — the pre-repetition rule, kept as the exact fallback for
// series without repetition statistics (and for callers like
// postprocess.CheckRegressions that predate the protocol). It is
// EvalSeriesPoints over stat-less points with the variance gate off.
func EvalSeries(vals []float64, tolerance float64, window int) (Report, bool) {
	points := make([]SeriesPoint, len(vals))
	for i, v := range vals {
		points[i] = SeriesPoint{Value: v}
	}
	return EvalSeriesPoints(points, tolerance, window, 0)
}

// pointInterval is a point's confidence interval: its bootstrap CI when
// it carries repetition stats with n >= 2, else the degenerate interval
// at its value.
func pointInterval(p SeriesPoint) (lo, hi float64) {
	if p.Stats != nil && p.Stats.N >= 2 {
		return p.Stats.CILo, p.Stats.CIHi
	}
	return p.Value, p.Value
}

// unstablePoint reports whether a point trips the variance gate.
func unstablePoint(p SeriesPoint, gate float64) bool {
	return gate > 0 && p.Stats != nil && p.Stats.N >= 2 && p.Stats.RSD > gate
}

// EvalSeriesPoints applies the regression rule to one time-ascending
// series of points: baseline = the window of points preceding the latest
// (window <= 0 means all of them), excluding unstable baseline points
// (falling back to all of them if every one is unstable). The verdict:
//
//   - variance gate: the latest point's RSD exceeds rsdGate → unstable,
//     never flagged (rsdGate <= 0 disables the gate).
//   - CI overlap: the latest point has n >= 3 repetitions → flagged when
//     its CI falls entirely below the baseline CI envelope and the
//     change is negative.
//   - tolerance: otherwise, flagged when the fractional drop from the
//     baseline mean exceeds tolerance — byte-for-byte the pre-repetition
//     rule for stat-less series.
//
// It reports false when the series is too short to judge (fewer than two
// usable values).
func EvalSeriesPoints(points []SeriesPoint, tolerance float64, window int, rsdGate float64) (Report, bool) {
	clean := points[:0:0]
	for _, p := range points {
		if !math.IsNaN(p.Value) {
			clean = append(clean, p)
		}
	}
	if len(clean) < 2 {
		return Report{}, false
	}
	latest := clean[len(clean)-1]
	base := clean[:len(clean)-1]
	if window > 0 && len(base) > window {
		base = base[len(base)-window:]
	}
	// Unstable base points do not contribute to the baseline: their
	// means are noise. If every base point is unstable there is nothing
	// better — use them all rather than refuse a verdict.
	stable := base[:0:0]
	for _, p := range base {
		if !unstablePoint(p, rsdGate) {
			stable = append(stable, p)
		}
	}
	if len(stable) == 0 {
		stable = base
	}
	sum := 0.0
	for _, p := range stable {
		sum += p.Value
	}
	mean := sum / float64(len(stable))
	change := 0.0
	if mean != 0 {
		change = (latest.Value - mean) / mean
	}
	r := Report{
		Baseline: mean,
		Latest:   latest.Value,
		Change:   change,
		Samples:  len(stable),
	}
	if latest.Stats != nil {
		r.LatestN = latest.Stats.N
		r.LatestRSD = latest.Stats.RSD
		r.LatestLo, r.LatestHi = pointInterval(latest)
	}

	if unstablePoint(latest, rsdGate) {
		r.Verdict = VerdictUnstable
		r.Method = MethodVariance
		return r, true
	}

	if latest.Stats != nil && latest.Stats.N >= 3 {
		// CI-overlap test: the baseline interval is the envelope of the
		// stable base points' intervals — the range of means the history
		// supports. A regression requires the latest run's entire CI to
		// sit below it.
		baseLo, baseHi := math.Inf(1), math.Inf(-1)
		for _, p := range stable {
			lo, hi := pointInterval(p)
			baseLo = math.Min(baseLo, lo)
			baseHi = math.Max(baseHi, hi)
		}
		r.BaselineLo, r.BaselineHi = baseLo, baseHi
		r.Method = MethodCI
		if r.LatestHi < baseLo && change < 0 {
			r.Flagged = true
			r.Verdict = VerdictRegressed
		} else {
			r.Verdict = VerdictOK
		}
		return r, true
	}

	r.Method = MethodTolerance
	r.Flagged = change < -tolerance
	if r.Flagged {
		r.Verdict = VerdictRegressed
	} else {
		r.Verdict = VerdictOK
	}
	return r, true
}

// Regressions evaluates q.FOM over the matching entries, grouped by
// q.GroupBy (default system,benchmark), each group ordered by
// timestamp. window bounds the sliding baseline (0 = every earlier
// run). Entries carrying repetition statistics are judged by CI overlap
// and gated on run-to-run variance (Store.RSDGate, default 10%);
// stat-less series fall back to the fixed tolerance. Groups with fewer
// than two runs are skipped — nothing to compare yet.
func (s *Store) Regressions(q Query, tolerance float64, window int) ([]Report, error) {
	if q.FOM == "" {
		return nil, fmt.Errorf("perfstore: regressions need Query.FOM")
	}
	groupBy := q.GroupBy
	if len(groupBy) == 0 {
		groupBy = []string{"system", "benchmark"}
	}
	gate := s.rsdGate()
	entries := s.Select(q) // time-ascending, fanned out across shards
	// Pointer values keep the hot loop allocation-free: the group key is
	// rendered into the keyer's reused buffer and only materialized as a
	// string when a new group appears.
	keyer := newGroupKeyer(groupBy)
	series := map[string]*[]SeriesPoint{}
	for _, e := range entries {
		raw := keyer.raw(e)
		pts := series[string(raw)]
		if pts == nil {
			pts = new([]SeriesPoint)
			series[string(raw)] = pts
		}
		p := SeriesPoint{Value: e.FOMs[q.FOM].Value}
		if st, ok := e.RepStats(q.FOM); ok {
			p.Stats = &st
		}
		*pts = append(*pts, p)
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Report
	for _, key := range keys {
		r, ok := EvalSeriesPoints(*series[key], tolerance, window, gate)
		if !ok {
			continue
		}
		r.Group = key
		out = append(out, r)
	}
	return out, nil
}
