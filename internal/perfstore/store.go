// Package perfstore is the storage layer over a perflog tree: a
// concurrent, sharded in-memory index with incremental (checkpointed)
// ingest, a small query engine, and a regression evaluator. It is the
// continuous-benchmarking piece the paper's conclusion calls for —
// perflogs "generated on isolated systems" are assimilated once, kept
// hot, and served to many readers (the perfplot CLI and the benchd
// daemon share this one query path) instead of being re-parsed from
// flat files on every invocation.
//
// Ingest is append-only and keyed on (system, benchmark), matching the
// <root>/<system>/<benchmark>.log layout perflog.Append writes. Each
// file carries a byte-offset checkpoint: a re-sync seeks to the
// checkpoint and parses only bytes appended since, so re-ingesting an
// unchanged tree parses zero bytes.
package perfstore

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/perflog"
	"repro/internal/telemetry"
)

// Ingest metrics: how much work the incremental sync is doing. A warm
// store scanning an unchanged tree grows files_scanned but neither
// bytes nor entries — the checkpoint test's "zero parsed bytes"
// invariant, observable from /metrics.
var (
	metricIngestBytes = telemetry.DefaultRegistry.Counter(
		"perfstore_ingest_bytes_total",
		"Perflog bytes parsed by incremental ingest.").With()
	metricIngestEntries = telemetry.DefaultRegistry.Counter(
		"perfstore_ingest_entries_total",
		"Perflog entries added to the store by ingest.").With()
	metricIngestFiles = telemetry.DefaultRegistry.Counter(
		"perfstore_ingest_files_scanned_total",
		"Perflog files examined by ingest (including no-op checkpoint hits).").With()
	metricSyncSeconds = telemetry.DefaultRegistry.Histogram(
		"perfstore_sync_seconds",
		"Wall-clock duration of one SyncFile call.",
		nil).With()
	// Query-path metrics: which plan served each Select/Aggregate —
	// "postings" (posting-list intersection) or "time" (the ordered
	// time view). The linear reference scan is test/bench-only and has
	// no series here.
	metricSelects = telemetry.DefaultRegistry.Counter(
		"perfstore_query_total",
		"Queries served, by plan path.",
		"path")
)

// shardCount fixes the number of index shards. Sharding is by system:
// ingest for a system touches one shard's lock, so ingest on one system
// never blocks reads on another, and queries fan out across shards on a
// bounded worker pool.
const shardCount = 16

// checkpoint is the incremental-ingest state of one perflog file.
type checkpoint struct {
	offset int64 // bytes consumed through the last complete line
}

// Stats counts ingest work and reports the storage-tier shape; the
// checkpoint tests assert a no-op re-sync parses zero bytes, the boot
// tests assert a sealed store restarts with BytesParsed == 0.
type Stats struct {
	FilesScanned int
	BytesParsed  int64
	EntriesAdded int
	Entries      int
	Systems      int
	// Tier breakdown: Entries == HeadEntries + SealedEntries.
	HeadEntries         int
	SealedEntries       int
	SealedSegments      int
	ManifestGeneration  uint64
	SegmentLoadFailures int
}

// rsdGate resolves the store's effective variance-gate threshold.
func (s *Store) rsdGate() float64 {
	switch {
	case s.RSDGate > 0:
		return s.RSDGate
	case s.RSDGate < 0:
		return 0 // explicitly disabled
	default:
		return DefaultRSDGate
	}
}

// Store is the concurrent perflog store: a mutable head (the sharded
// in-memory index, fed by checkpointed ingest) plus, when opened with
// OpenTiered, a sealed tier of immutable on-disk segments. Queries fan
// out over both tiers and merge in (time, ingest-seq) order.
type Store struct {
	root    string
	dataDir string // "" = memory-only store (no sealed tier)

	// RSDGate is the run-to-run relative-standard-deviation threshold for
	// the variance gate on aggregates and regression verdicts; 0 selects
	// DefaultRSDGate, negative disables the gate. Set before serving
	// queries (not synchronized against concurrent readers).
	RSDGate float64

	shards [shardCount]shard

	// seq hands out the store-wide ingest sequence that breaks
	// timestamp ties; gen counts index mutations (adds, evictions,
	// seals, compactions) so readers can stamp derived results and
	// detect staleness with one atomic load (the service layer's
	// aggregate cache).
	seq atomic.Uint64
	gen atomic.Uint64

	ckMu  sync.Mutex
	ck    map[string]*checkpoint
	stats struct {
		sync.Mutex
		filesScanned int
		bytesParsed  int64
		entriesAdded int
	}

	// seg is the sealed tier: the live segment handles and the manifest
	// they mirror. Queries hold the read lock across their whole fan so
	// a concurrent Seal (which appends a segment and clears the head
	// under the write lock) is atomic to them — an entry is observed in
	// exactly one tier. Lock order: ckMu → seg → shard.
	seg struct {
		sync.RWMutex
		list []*segment
		man  *manifest
	}
	loadFail struct {
		sync.Mutex
		n    int
		last string
	}
}

// Open returns a memory-only store over a perflog root directory. No
// ingest happens until Sync (or Append) is called; the directory need
// not exist yet.
func Open(root string) *Store {
	s := &Store{root: root, ck: map[string]*checkpoint{}}
	for i := range s.shards {
		s.shards[i].init()
	}
	s.seg.man = &manifest{Version: manifestVersion, Watermarks: map[string]int64{}}
	return s
}

// OpenTiered returns a store whose sealed tier lives in dataDir: the
// manifest is read, every named segment's header is validated (zone
// maps become queryable; data blocks stay on disk until a query needs
// them), ingest checkpoints are restored from the sealed watermarks,
// and orphans from crashed seals are swept. Boot cost is O(segment
// headers); the subsequent Sync re-parses only perflog bytes past the
// watermarks. Any validation failure is returned — the caller's
// fallback is Open plus a full Sync, rebuilding everything from the
// text tree (which remains the source of truth).
func OpenTiered(root, dataDir string) (*Store, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("perfstore: %w", err)
	}
	man, err := loadManifest(dataDir)
	if err != nil {
		return nil, err
	}
	s := Open(root)
	s.dataDir = dataDir
	segs := make([]*segment, 0, len(man.Segments))
	for _, info := range man.Segments {
		hdr, err := readSegmentHeader(filepath.Join(dataDir, info.File))
		if err != nil {
			return nil, fmt.Errorf("perfstore: segment %s: %w", info.File, err)
		}
		if hdr.Count != info.Count || hdr.MinSeq != info.MinSeq || hdr.MaxSeq != info.MaxSeq {
			return nil, fmt.Errorf("perfstore: segment %s disagrees with manifest", info.File)
		}
		segs = append(segs, &segment{dir: dataDir, info: info})
	}
	s.seg.man = man
	s.seg.list = segs
	// Restart the ingest sequence past everything sealed, so (time,
	// seq) ordering stays total across the tiers after a reboot.
	s.seq.Store(man.MaxSeq)
	for rel, off := range man.Watermarks {
		s.ck[s.absSource(rel)] = &checkpoint{offset: off}
	}
	cleanOrphans(dataDir, man)
	return s, nil
}

// DataDir returns the sealed tier's directory ("" for a memory-only
// store).
func (s *Store) DataDir() string { return s.dataDir }

// noteLoadFailure records a segment whose data block could not be
// loaded after retries: the query proceeds without it, and the
// degradation is visible in Stats, /healthz, and /metrics rather than
// silent.
func (s *Store) noteLoadFailure(err error) {
	metricSegLoadFailures.Inc()
	s.loadFail.Lock()
	s.loadFail.n++
	s.loadFail.last = err.Error()
	s.loadFail.Unlock()
}

// Generation returns the index mutation counter. Any result computed
// from the store can be stamped with the generation observed before the
// computation; the stamp still matching means no entry was added or
// evicted since, so the result is current.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Root returns the perflog tree this store ingests from.
func (s *Store) Root() string { return s.root }

func (s *Store) shardFor(system string) *shard {
	h := fnv.New32a()
	h.Write([]byte(system))
	return &s.shards[h.Sum32()%shardCount]
}

// Sync walks the perflog tree and incrementally ingests every .log file.
// Files already at their checkpoint are skipped without reading a byte.
func (s *Store) Sync() error {
	if _, err := os.Stat(s.root); os.IsNotExist(err) {
		return nil // nothing logged yet
	}
	return filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".log") {
			return nil
		}
		return s.SyncFile(path)
	})
}

// SyncFile incrementally ingests one perflog file: it seeks to the
// file's checkpoint and parses only complete lines appended since. A
// line still being written (no trailing newline yet) is left for the
// next sync. If the file shrank below its checkpoint it was truncated
// or rewritten, so its previous entries are evicted and it is re-read
// from the start.
//
// Injection points: "perfstore.sync" fires before any work (a failed
// re-sync, e.g. the filesystem dropping out from under the daemon);
// "perfstore.read" can truncate the read stream early (a short read).
// A short read is indistinguishable from a writer mid-append, so the
// checkpoint simply stays before the torn tail and the next sync
// re-reads it whole — fault tolerance by the same mechanism as normal
// incremental ingest.
func (s *Store) SyncFile(path string) error {
	if err := faultinject.Fire("perfstore.sync"); err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}
	start := time.Now()
	defer func() { metricSyncSeconds.Observe(time.Since(start).Seconds()) }()
	s.ckMu.Lock()
	ck := s.ck[path]
	if ck == nil {
		ck = &checkpoint{}
		s.ck[path] = ck
	}
	s.ckMu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}

	// Serialize syncs of the same file on its checkpoint: two concurrent
	// SyncFile calls would otherwise double-ingest the same byte range.
	s.ckMu.Lock()
	defer s.ckMu.Unlock()

	if st.Size() < ck.offset {
		if err := s.evictFile(path); err != nil {
			return err
		}
		ck.offset = 0
	}
	if st.Size() == ck.offset {
		s.bumpStats(1, 0, 0)
		return nil
	}
	if _, err := f.Seek(ck.offset, io.SeekStart); err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}

	r := bufio.NewReaderSize(faultinject.Reader("perfstore.read", f), 64*1024)
	var parsed int64
	var batch []*perflog.Entry
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			// Partial trailing line: a writer is mid-append. Leave the
			// checkpoint before it so the next sync picks it up whole.
			break
		}
		if err != nil {
			s.addBatch(batch, path)
			return fmt.Errorf("perfstore: %w", err)
		}
		n := int64(len(line))
		text := strings.TrimSpace(line)
		if text != "" && !strings.HasPrefix(text, "#") {
			e, perr := perflog.ParseLine(text)
			if perr != nil {
				// Entries whose offsets the checkpoint already covers
				// must be indexed even though the file is bad past them.
				s.addBatch(batch, path)
				return fmt.Errorf("perfstore: %s @%d: %w", path, ck.offset+parsed, perr)
			}
			batch = append(batch, e)
		}
		parsed += n
		ck.offset += n
	}
	s.addBatch(batch, path)
	s.bumpStats(1, parsed, len(batch))
	return nil
}

// Append persists entries through perflog.Append and ingests exactly
// the bytes just written, so store and tree stay in lockstep — the
// write path benchd workers use.
func (s *Store) Append(system, benchmark string, entries ...*perflog.Entry) error {
	if err := perflog.Append(s.root, system, benchmark, entries...); err != nil {
		return err
	}
	return s.SyncFile(filepath.Join(s.root, system, benchmark+".log"))
}

// AddBatch ingests one durable group commit from a perflog.Writer
// without touching the file: the entries are already parsed and their
// byte extent is known exactly. When the file's checkpoint sits at the
// commit's start offset — the steady state with the Writer as the
// file's only appender — the batch is indexed in one shard pass and the
// checkpoint advances over bytes ingest never has to read back, with
// the stats reporting true ingest work (entries added, zero bytes
// parsed). Any
// other checkpoint position means unknown bytes precede the commit
// (out-of-band benchctl appends, or an earlier notification this method
// declined), so it declines too, reporting false: the next SyncFile
// parses the gap from the file itself, which stays correct — just not
// zero-copy. Either way acked entries converge into the store.
func (s *Store) AddBatch(c perflog.Commit) bool {
	if len(c.Entries) == 0 {
		return true
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	ck := s.ck[c.Path]
	if ck == nil {
		ck = &checkpoint{}
		s.ck[c.Path] = ck
	}
	if ck.offset != c.Offset {
		return false
	}
	s.addBatch(c.Entries, c.Path)
	ck.offset += c.Bytes
	s.bumpStats(0, 0, len(c.Entries))
	return true
}

// add indexes a single entry — the unit addBatch amortizes.
func (s *Store) add(e *perflog.Entry, file string) {
	sh := s.shardFor(e.System)
	seq := s.seq.Add(1)
	sh.mu.Lock()
	sh.addLocked(e, file, seq)
	sh.mu.Unlock()
	s.gen.Add(1)
}

// addBatch indexes entries under one shard-lock pass per contiguous
// shard run and bumps the generation once for the whole batch — one
// query-cache invalidation per commit instead of one per entry. A
// perflog file holds a single system, so in practice a batch is one
// lock acquisition.
func (s *Store) addBatch(entries []*perflog.Entry, file string) {
	if len(entries) == 0 {
		return
	}
	for i := 0; i < len(entries); {
		sh := s.shardFor(entries[i].System)
		sh.mu.Lock()
		j := i
		for j < len(entries) && s.shardFor(entries[j].System) == sh {
			sh.addLocked(entries[j], file, s.seq.Add(1))
			j++
		}
		sh.mu.Unlock()
		i = j
	}
	s.gen.Add(1)
}

// evictFile removes every entry ingested from one file (truncation
// recovery) from both tiers: the shard indexes are repaired in place,
// and any sealed segments holding the file's entries are rewritten
// without them. Callers hold ckMu.
func (s *Store) evictFile(path string) error {
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		removed += sh.evictLocked(path)
		sh.mu.Unlock()
	}
	sealed, err := s.evictSealed(path)
	if err != nil {
		return err
	}
	if removed+sealed > 0 {
		s.gen.Add(1)
	}
	return nil
}

func (s *Store) bumpStats(files int, bytes int64, added int) {
	s.stats.Lock()
	s.stats.filesScanned += files
	s.stats.bytesParsed += bytes
	s.stats.entriesAdded += added
	s.stats.Unlock()
	metricIngestFiles.Add(float64(files))
	metricIngestBytes.Add(float64(bytes))
	metricIngestEntries.Add(float64(added))
}

// Stats reports cumulative ingest counters, current index size, and
// the storage-tier breakdown.
func (s *Store) Stats() Stats {
	s.stats.Lock()
	out := Stats{
		FilesScanned: s.stats.filesScanned,
		BytesParsed:  s.stats.bytesParsed,
		EntriesAdded: s.stats.entriesAdded,
	}
	s.stats.Unlock()
	systems := map[string]bool{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for sys := range sh.systems {
			systems[sys] = true
		}
		out.HeadEntries += sh.live
		sh.mu.RUnlock()
	}
	s.seg.RLock()
	for _, g := range s.seg.list {
		out.SealedEntries += g.info.Count
		for _, sys := range g.info.Systems {
			systems[sys] = true
		}
	}
	out.SealedSegments = len(s.seg.list)
	out.ManifestGeneration = s.seg.man.Generation
	s.seg.RUnlock()
	out.Entries = out.HeadEntries + out.SealedEntries
	out.Systems = len(systems)
	s.loadFail.Lock()
	out.SegmentLoadFailures = s.loadFail.n
	s.loadFail.Unlock()
	return out
}

// PublishMetrics pushes the point-in-time tier gauges (head entries,
// sealed entries/segments, manifest generation) into the telemetry
// registry — called on each /metrics scrape so the gauges are fresh
// without a background sampler.
func (s *Store) PublishMetrics() {
	st := s.Stats()
	metricHeadEntries.Set(float64(st.HeadEntries))
	metricSealedEntries.Set(float64(st.SealedEntries))
	metricSealedSegments.Set(float64(st.SealedSegments))
	metricManifestGen.Set(float64(st.ManifestGeneration))
}

// Len returns the number of indexed entries across both tiers.
func (s *Store) Len() int { return s.Stats().Entries }

// Systems lists the indexed system names across both tiers, sorted.
func (s *Store) Systems() []string {
	seen := map[string]bool{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for sys := range sh.systems {
			seen[sys] = true
		}
		sh.mu.RUnlock()
	}
	s.seg.RLock()
	for _, g := range s.seg.list {
		for _, sys := range g.info.Systems {
			seen[sys] = true
		}
	}
	s.seg.RUnlock()
	out := make([]string, 0, len(seen))
	for sys := range seen {
		out = append(out, sys)
	}
	sort.Strings(out)
	return out
}

// Select returns the entries matching the query, ordered by timestamp
// ascending (ties keep ingest order). A Limit keeps the most recent
// Limit entries — the tail of the time series.
//
// The plan: every equality predicate (system, benchmark, result, FOM
// presence, extras) is indexed in both tiers, so each head shard and
// each sealed segment intersects the matching posting lists — cost
// proportional to the rarest predicate, not the store. A query with no
// equality predicate reads the time-ordered view (shards) or the
// time-sorted arena (segments), where Since binary-searches its lower
// bound and Limit takes a bounded tail; segments whose zone map ends
// before Since are skipped without touching disk. All legs run in
// parallel on a bounded worker pool and merge in (time, ingest) order;
// with a Limit the merge walks the per-leg tails backwards and stops
// after Limit entries, so the full match set is never materialized.
//
// The segment read lock is held across the whole fan, so a concurrent
// Seal (segment published + head cleared under the write lock) is
// atomic to the query — every entry is observed in exactly one tier.
func (s *Store) Select(q Query) []*perflog.Entry {
	m := q.compile()
	s.seg.RLock()
	defer s.seg.RUnlock()
	segs := s.seg.list
	parts := make([][]hit, shardCount+len(segs))
	fanN(len(parts), func(i int) {
		if i < shardCount {
			parts[i] = s.shards[i].collect(m, q.Limit)
		} else {
			parts[i] = segs[i-shardCount].collect(s, m, q.Limit)
		}
	})
	if len(m.keys) > 0 {
		metricSelects.With("postings").Inc()
	} else {
		metricSelects.With("time").Inc()
	}
	return mergeHits(parts, q.Limit)
}

// selectScan is the reference implementation Select is measured and
// property-tested against: a full linear scan of both tiers with
// per-entry predicate checks and a post-hoc sort — the pre-index query
// path. It must return results identical to Select for every query.
func (s *Store) selectScan(q Query) []*perflog.Entry {
	m := q.compile()
	var hits []hit
	scan := func(st *stored) {
		if !st.dead && !(m.hasSince && st.t < m.sinceNano) && m.matchEntry(st.entry) {
			hits = append(hits, hit{st.entry, st.t, st.seq})
		}
	}
	s.seg.RLock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for j := range sh.entries {
			scan(&sh.entries[j])
		}
		sh.mu.RUnlock()
	}
	for _, g := range s.seg.list {
		d, err := g.load()
		if err != nil {
			s.noteLoadFailure(err)
			continue
		}
		for j := range d.entries {
			scan(&d.entries[j])
		}
	}
	s.seg.RUnlock()
	slices.SortFunc(hits, cmpHits)
	if q.Limit > 0 && len(hits) > q.Limit {
		hits = hits[len(hits)-q.Limit:]
	}
	out := make([]*perflog.Entry, len(hits))
	for i, h := range hits {
		out[i] = h.e
	}
	return out
}
