// Package perfstore is the storage layer over a perflog tree: a
// concurrent, sharded in-memory index with incremental (checkpointed)
// ingest, a small query engine, and a regression evaluator. It is the
// continuous-benchmarking piece the paper's conclusion calls for —
// perflogs "generated on isolated systems" are assimilated once, kept
// hot, and served to many readers (the perfplot CLI and the benchd
// daemon share this one query path) instead of being re-parsed from
// flat files on every invocation.
//
// Ingest is append-only and keyed on (system, benchmark), matching the
// <root>/<system>/<benchmark>.log layout perflog.Append writes. Each
// file carries a byte-offset checkpoint: a re-sync seeks to the
// checkpoint and parses only bytes appended since, so re-ingesting an
// unchanged tree parses zero bytes.
package perfstore

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/perflog"
	"repro/internal/telemetry"
)

// Ingest metrics: how much work the incremental sync is doing. A warm
// store scanning an unchanged tree grows files_scanned but neither
// bytes nor entries — the checkpoint test's "zero parsed bytes"
// invariant, observable from /metrics.
var (
	metricIngestBytes = telemetry.DefaultRegistry.Counter(
		"perfstore_ingest_bytes_total",
		"Perflog bytes parsed by incremental ingest.").With()
	metricIngestEntries = telemetry.DefaultRegistry.Counter(
		"perfstore_ingest_entries_total",
		"Perflog entries added to the store by ingest.").With()
	metricIngestFiles = telemetry.DefaultRegistry.Counter(
		"perfstore_ingest_files_scanned_total",
		"Perflog files examined by ingest (including no-op checkpoint hits).").With()
	metricSyncSeconds = telemetry.DefaultRegistry.Histogram(
		"perfstore_sync_seconds",
		"Wall-clock duration of one SyncFile call.",
		nil).With()
)

// shardCount fixes the number of index shards. Sharding is by system:
// queries that name a system touch one shard's lock, so ingest on one
// system never blocks reads on another.
const shardCount = 16

type shard struct {
	mu sync.RWMutex
	// bySystem holds the entries of every system hashing to this shard,
	// in ingest order, tagged with their source file so truncation can
	// evict them.
	bySystem map[string][]stored
}

type stored struct {
	entry *perflog.Entry
	file  string
}

// checkpoint is the incremental-ingest state of one perflog file.
type checkpoint struct {
	offset int64 // bytes consumed through the last complete line
}

// Stats counts ingest work; the checkpoint tests assert a no-op re-sync
// parses zero bytes.
type Stats struct {
	FilesScanned int
	BytesParsed  int64
	EntriesAdded int
	Entries      int
	Systems      int
}

// Store is the concurrent perflog store.
type Store struct {
	root   string
	shards [shardCount]shard

	ckMu  sync.Mutex
	ck    map[string]*checkpoint
	stats struct {
		sync.Mutex
		filesScanned int
		bytesParsed  int64
		entriesAdded int
	}
}

// Open returns a store over a perflog root directory. No ingest happens
// until Sync (or Append) is called; the directory need not exist yet.
func Open(root string) *Store {
	s := &Store{root: root, ck: map[string]*checkpoint{}}
	for i := range s.shards {
		s.shards[i].bySystem = map[string][]stored{}
	}
	return s
}

// Root returns the perflog tree this store ingests from.
func (s *Store) Root() string { return s.root }

func (s *Store) shardFor(system string) *shard {
	h := fnv.New32a()
	h.Write([]byte(system))
	return &s.shards[h.Sum32()%shardCount]
}

// Sync walks the perflog tree and incrementally ingests every .log file.
// Files already at their checkpoint are skipped without reading a byte.
func (s *Store) Sync() error {
	if _, err := os.Stat(s.root); os.IsNotExist(err) {
		return nil // nothing logged yet
	}
	return filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".log") {
			return nil
		}
		return s.SyncFile(path)
	})
}

// SyncFile incrementally ingests one perflog file: it seeks to the
// file's checkpoint and parses only complete lines appended since. A
// line still being written (no trailing newline yet) is left for the
// next sync. If the file shrank below its checkpoint it was truncated
// or rewritten, so its previous entries are evicted and it is re-read
// from the start.
//
// Injection points: "perfstore.sync" fires before any work (a failed
// re-sync, e.g. the filesystem dropping out from under the daemon);
// "perfstore.read" can truncate the read stream early (a short read).
// A short read is indistinguishable from a writer mid-append, so the
// checkpoint simply stays before the torn tail and the next sync
// re-reads it whole — fault tolerance by the same mechanism as normal
// incremental ingest.
func (s *Store) SyncFile(path string) error {
	if err := faultinject.Fire("perfstore.sync"); err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}
	start := time.Now()
	defer func() { metricSyncSeconds.Observe(time.Since(start).Seconds()) }()
	s.ckMu.Lock()
	ck := s.ck[path]
	if ck == nil {
		ck = &checkpoint{}
		s.ck[path] = ck
	}
	s.ckMu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}

	// Serialize syncs of the same file on its checkpoint: two concurrent
	// SyncFile calls would otherwise double-ingest the same byte range.
	s.ckMu.Lock()
	defer s.ckMu.Unlock()

	if st.Size() < ck.offset {
		s.evictFile(path)
		ck.offset = 0
	}
	if st.Size() == ck.offset {
		s.bumpStats(1, 0, 0)
		return nil
	}
	if _, err := f.Seek(ck.offset, io.SeekStart); err != nil {
		return fmt.Errorf("perfstore: %w", err)
	}

	r := bufio.NewReaderSize(faultinject.Reader("perfstore.read", f), 64*1024)
	var parsed int64
	var added int
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			// Partial trailing line: a writer is mid-append. Leave the
			// checkpoint before it so the next sync picks it up whole.
			break
		}
		if err != nil {
			return fmt.Errorf("perfstore: %w", err)
		}
		n := int64(len(line))
		text := strings.TrimSpace(line)
		if text != "" && !strings.HasPrefix(text, "#") {
			e, perr := perflog.ParseLine(text)
			if perr != nil {
				return fmt.Errorf("perfstore: %s @%d: %w", path, ck.offset+parsed, perr)
			}
			s.add(e, path)
			added++
		}
		parsed += n
		ck.offset += n
	}
	s.bumpStats(1, parsed, added)
	return nil
}

// Append persists entries through perflog.Append and ingests exactly
// the bytes just written, so store and tree stay in lockstep — the
// write path benchd workers use.
func (s *Store) Append(system, benchmark string, entries ...*perflog.Entry) error {
	if err := perflog.Append(s.root, system, benchmark, entries...); err != nil {
		return err
	}
	return s.SyncFile(filepath.Join(s.root, system, benchmark+".log"))
}

func (s *Store) add(e *perflog.Entry, file string) {
	sh := s.shardFor(e.System)
	sh.mu.Lock()
	sh.bySystem[e.System] = append(sh.bySystem[e.System], stored{entry: e, file: file})
	sh.mu.Unlock()
}

// evictFile removes every entry ingested from one file (truncation
// recovery). Callers hold ckMu.
func (s *Store) evictFile(path string) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for sys, entries := range sh.bySystem {
			kept := entries[:0]
			for _, se := range entries {
				if se.file != path {
					kept = append(kept, se)
				}
			}
			if len(kept) == 0 {
				delete(sh.bySystem, sys)
			} else {
				sh.bySystem[sys] = kept
			}
		}
		sh.mu.Unlock()
	}
}

func (s *Store) bumpStats(files int, bytes int64, added int) {
	s.stats.Lock()
	s.stats.filesScanned += files
	s.stats.bytesParsed += bytes
	s.stats.entriesAdded += added
	s.stats.Unlock()
	metricIngestFiles.Add(float64(files))
	metricIngestBytes.Add(float64(bytes))
	metricIngestEntries.Add(float64(added))
}

// Stats reports cumulative ingest counters and current index size.
func (s *Store) Stats() Stats {
	s.stats.Lock()
	out := Stats{
		FilesScanned: s.stats.filesScanned,
		BytesParsed:  s.stats.bytesParsed,
		EntriesAdded: s.stats.entriesAdded,
	}
	s.stats.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out.Systems += len(sh.bySystem)
		for _, entries := range sh.bySystem {
			out.Entries += len(entries)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of indexed entries.
func (s *Store) Len() int { return s.Stats().Entries }

// Systems lists the indexed system names, sorted.
func (s *Store) Systems() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for sys := range sh.bySystem {
			out = append(out, sys)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Select returns the entries matching the query, ordered by timestamp
// ascending (ties keep ingest order). A Limit keeps the most recent
// Limit entries — the tail of the time series.
func (s *Store) Select(q Query) []*perflog.Entry {
	var out []*perflog.Entry
	collect := func(entries []stored) {
		for _, se := range entries {
			if q.matches(se.entry) {
				out = append(out, se.entry)
			}
		}
	}
	if q.System != "" {
		// Single-system query: one shard, one read lock.
		sh := s.shardFor(q.System)
		sh.mu.RLock()
		collect(sh.bySystem[q.System])
		sh.mu.RUnlock()
	} else {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for _, entries := range sh.bySystem {
				collect(entries)
			}
			sh.mu.RUnlock()
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}
