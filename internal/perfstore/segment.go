// Sealed segments: the immutable on-disk tier of the store.
//
// A segment is one binary file holding a batch of entries sorted by
// (time, ingest-seq), encoded column-per-field: every string field
// (system, benchmark, partition, environ, spec, result, FOM names and
// units, extra keys and values, source-file paths) is interned into one
// per-segment dictionary and the columns carry small integer ids;
// timestamps are delta-encoded along the sort order. The fixed-size
// header carries a zone map — entry count, min/max time, min/max ingest
// sequence — so a query (and a boot) can decide whether a segment is
// relevant without reading its data block, and CRCs over both header
// and data so a torn write from a crashed sealer is detected, never
// half-ingested.
//
// Layout:
//
//	header (64 bytes):
//	  magic "PSG1" | u32 version | u64 count
//	  i64 minT | i64 maxT | u64 minSeq | u64 maxSeq
//	  u64 dataLen | u32 dataCRC | u32 headerCRC
//	data block (dataLen bytes, CRC32-Castagnoli = dataCRC):
//	  dictionary: uvarint n, then n × (uvarint len, bytes)
//	  columns, count rows each:
//	    seconds (varint delta), nanos (uvarint),
//	    seq (uvarint, offset from minSeq),
//	    file/system/benchmark/partition/environ/spec/result (uvarint dict ids),
//	    job (varint),
//	    FOMs: uvarint nf, then nf × (name id, unit id, f64 bits LE),
//	    extras: uvarint nx, then nx × (key id, value id)
//
// Segments are a derived cache of the text perflog tree (the durable
// source of truth, paper Principle 6): any segment can be dropped and
// rebuilt by re-parsing the perflog bytes it covers.
package perfstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/perflog"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

const (
	segMagic      = "PSG1"
	segVersion    = 1
	segHeaderSize = 64
)

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// Sealed-tier metrics: how the segment lifecycle (seal, compact, lazy
// load, zone-map prune) is behaving in production, alongside the ingest
// counters in store.go.
var (
	metricSealsTotal = telemetry.DefaultRegistry.Counter(
		"perfstore_segments_sealed_total",
		"Head batches sealed into immutable segments.").With()
	metricCompactionsTotal = telemetry.DefaultRegistry.Counter(
		"perfstore_compactions_total",
		"Segment compactions run (small segments merged into one).").With()
	metricSealSeconds = telemetry.DefaultRegistry.Histogram(
		"perfstore_seal_seconds",
		"Wall-clock duration of one Seal call.",
		nil).With()
	metricCompactSeconds = telemetry.DefaultRegistry.Histogram(
		"perfstore_compact_seconds",
		"Wall-clock duration of one Compact call.",
		nil).With()
	metricSegmentLoads = telemetry.DefaultRegistry.Counter(
		"perfstore_segment_loads_total",
		"Segment data blocks decoded into memory (lazy loads).").With()
	metricSegmentsPruned = telemetry.DefaultRegistry.Counter(
		"perfstore_segments_pruned_total",
		"Segment reads skipped entirely by the zone map (Since past MaxT).").With()
	metricSegLoadFailures = telemetry.DefaultRegistry.Counter(
		"perfstore_segment_load_failures_total",
		"Segment loads that failed after retries (segment served as absent).").With()
	metricHeadEntries = telemetry.DefaultRegistry.Gauge(
		"perfstore_head_entries",
		"Live entries in the mutable head tier.").With()
	metricSealedEntries = telemetry.DefaultRegistry.Gauge(
		"perfstore_sealed_entries",
		"Entries held in sealed segments.").With()
	metricSealedSegments = telemetry.DefaultRegistry.Gauge(
		"perfstore_sealed_segments",
		"Sealed segments currently live in the manifest.").With()
	metricManifestGen = telemetry.DefaultRegistry.Gauge(
		"perfstore_manifest_generation",
		"Manifest generation (seals + compactions + sealed evictions).").With()
)

// segHeader is the decoded fixed-size segment header — everything a
// boot or a zone-map check needs, without touching the data block.
type segHeader struct {
	Count          int
	MinT, MaxT     int64
	MinSeq, MaxSeq uint64
	DataLen        uint64
	DataCRC        uint32
}

// SegmentInfo describes one sealed segment in the manifest and in
// Stats/healthz views. Sources lists the perflog files (relative to the
// store root) whose entries the segment holds, so a truncated source
// file can be evicted from the sealed tier without scanning every
// segment's data.
type SegmentInfo struct {
	File    string   `json:"file"`
	Count   int      `json:"count"`
	Bytes   int64    `json:"bytes"`
	MinT    int64    `json:"min_t"`
	MaxT    int64    `json:"max_t"`
	MinSeq  uint64   `json:"min_seq"`
	MaxSeq  uint64   `json:"max_seq"`
	Sources []string `json:"sources,omitempty"`
	Systems []string `json:"systems,omitempty"`
}

// segData is a decoded (or freshly sealed) segment resident in memory:
// the arena is sorted by (t, seq), so posting lists — same key scheme as
// the head shards — come back in merge order for free, and the no-key
// query path binary-searches the arena directly.
type segData struct {
	entries []stored
	post    map[string][]int32
}

// buildPostings indexes an immutable (t, seq)-sorted arena with the
// same posting-list keys the head shards maintain incrementally.
func buildPostings(entries []stored) map[string][]int32 {
	post := map[string][]int32{}
	for i := range entries {
		idx := int32(i)
		e := entries[i].entry
		post[keySystem(e.System)] = append(post[keySystem(e.System)], idx)
		post[keyBenchmark(e.Benchmark)] = append(post[keyBenchmark(e.Benchmark)], idx)
		if e.Result != "" {
			post[keyResult(e.Result)] = append(post[keyResult(e.Result)], idx)
		}
		for name := range e.FOMs {
			post[keyFOM(name)] = append(post[keyFOM(name)], idx)
		}
		for k, v := range e.Extra {
			post[keyExtra(k, v)] = append(post[keyExtra(k, v)], idx)
		}
	}
	return post
}

// dictBuilder interns strings into a per-segment dictionary.
type dictBuilder struct {
	ids  map[string]uint64
	strs []string
}

func (d *dictBuilder) id(s string) uint64 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint64(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	return id
}

// encodeSegment renders a (t, seq)-sorted arena into header + data
// block bytes.
func encodeSegment(entries []stored) (segHeader, []byte) {
	dict := &dictBuilder{ids: map[string]uint64{}}
	var cols []byte
	put := func(v uint64) { cols = binary.AppendUvarint(cols, v) }
	puts := func(v int64) { cols = binary.AppendVarint(cols, v) }

	hdr := segHeader{Count: len(entries), MinT: math.MaxInt64, MaxT: math.MinInt64, MinSeq: math.MaxUint64}
	for i := range entries {
		st := &entries[i]
		hdr.MinT = min(hdr.MinT, st.t)
		hdr.MaxT = max(hdr.MaxT, st.t)
		hdr.MinSeq = min(hdr.MinSeq, st.seq)
		hdr.MaxSeq = max(hdr.MaxSeq, st.seq)
	}
	if len(entries) == 0 {
		hdr.MinT, hdr.MaxT, hdr.MinSeq, hdr.MaxSeq = 0, 0, 0, 0
	}
	prevSec := int64(0)
	for i := range entries {
		st := &entries[i]
		e := st.entry
		sec := e.Time.Unix()
		puts(sec - prevSec)
		prevSec = sec
		put(uint64(e.Time.Nanosecond()))
		put(st.seq - hdr.MinSeq)
		put(dict.id(st.file))
		put(dict.id(e.System))
		put(dict.id(e.Benchmark))
		put(dict.id(e.Partition))
		put(dict.id(e.Environ))
		put(dict.id(e.Spec))
		put(dict.id(e.Result))
		puts(int64(e.JobID))
		put(uint64(len(e.FOMs)))
		for _, name := range sortedFOMNames(e.FOMs) {
			v := e.FOMs[name]
			put(dict.id(name))
			put(dict.id(v.Unit))
			cols = binary.LittleEndian.AppendUint64(cols, math.Float64bits(v.Value))
		}
		put(uint64(len(e.Extra)))
		for _, k := range sortedExtraKeys(e.Extra) {
			put(dict.id(k))
			put(dict.id(e.Extra[k]))
		}
	}

	data := binary.AppendUvarint(nil, uint64(len(dict.strs)))
	for _, s := range dict.strs {
		data = binary.AppendUvarint(data, uint64(len(s)))
		data = append(data, s...)
	}
	data = append(data, cols...)
	hdr.DataLen = uint64(len(data))
	hdr.DataCRC = crc32.Checksum(data, segCRC)
	return hdr, data
}

func sortedFOMNames(m map[string]fom.Value) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func sortedExtraKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// marshalHeader renders the fixed-size header, CRC-stamped last.
func marshalHeader(h segHeader) []byte {
	buf := make([]byte, segHeaderSize)
	copy(buf, segMagic)
	le := binary.LittleEndian
	le.PutUint32(buf[4:], segVersion)
	le.PutUint64(buf[8:], uint64(h.Count))
	le.PutUint64(buf[16:], uint64(h.MinT))
	le.PutUint64(buf[24:], uint64(h.MaxT))
	le.PutUint64(buf[32:], h.MinSeq)
	le.PutUint64(buf[40:], h.MaxSeq)
	le.PutUint64(buf[48:], h.DataLen)
	le.PutUint32(buf[56:], h.DataCRC)
	le.PutUint32(buf[60:], crc32.Checksum(buf[:60], segCRC))
	return buf
}

func unmarshalHeader(buf []byte) (segHeader, error) {
	var h segHeader
	if len(buf) < segHeaderSize {
		return h, fmt.Errorf("truncated header (%d bytes)", len(buf))
	}
	if string(buf[:4]) != segMagic {
		return h, fmt.Errorf("bad magic %q", buf[:4])
	}
	le := binary.LittleEndian
	if got, want := crc32.Checksum(buf[:60], segCRC), le.Uint32(buf[60:]); got != want {
		return h, fmt.Errorf("header CRC mismatch")
	}
	if v := le.Uint32(buf[4:]); v != segVersion {
		return h, fmt.Errorf("unsupported version %d", v)
	}
	h.Count = int(le.Uint64(buf[8:]))
	h.MinT = int64(le.Uint64(buf[16:]))
	h.MaxT = int64(le.Uint64(buf[24:]))
	h.MinSeq = le.Uint64(buf[32:])
	h.MaxSeq = le.Uint64(buf[40:])
	h.DataLen = le.Uint64(buf[48:])
	h.DataCRC = le.Uint32(buf[56:])
	if h.Count < 0 {
		return h, fmt.Errorf("negative count")
	}
	return h, nil
}

// byteReader walks a data block with bounds-checked varint reads — the
// decoder never panics on corrupt or adversarial input, it errors.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.pos) {
		return nil, fmt.Errorf("truncated field at %d (want %d bytes)", r.pos, n)
	}
	out := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// decodeSegment rebuilds the arena from a data block. Every id and
// length is validated against the block, so a corrupt segment yields an
// error, never a panic or a silently wrong arena.
func decodeSegment(h segHeader, data []byte) (*segData, error) {
	if uint64(len(data)) != h.DataLen {
		return nil, fmt.Errorf("data block is %d bytes, header says %d", len(data), h.DataLen)
	}
	if crc32.Checksum(data, segCRC) != h.DataCRC {
		return nil, fmt.Errorf("data CRC mismatch")
	}
	// Each row costs at least one byte in every varint column, so a
	// count exceeding the block length is corrupt without further work.
	if uint64(h.Count) > h.DataLen {
		return nil, fmt.Errorf("count %d exceeds data length %d", h.Count, h.DataLen)
	}
	r := &byteReader{buf: data}
	nDict, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nDict > uint64(len(data)) {
		return nil, fmt.Errorf("dictionary of %d strings exceeds data length", nDict)
	}
	dict := make([]string, nDict)
	for i := range dict {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		dict[i] = string(b)
	}
	str := func() (string, error) {
		id, err := r.uvarint()
		if err != nil {
			return "", err
		}
		if id >= uint64(len(dict)) {
			return "", fmt.Errorf("dictionary id %d out of range (%d strings)", id, len(dict))
		}
		return dict[id], nil
	}

	d := &segData{entries: make([]stored, 0, h.Count)}
	prevSec := int64(0)
	prevT := int64(math.MinInt64)
	for i := 0; i < h.Count; i++ {
		dsec, err := r.varint()
		if err != nil {
			return nil, err
		}
		sec := prevSec + dsec
		prevSec = sec
		ns, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ns >= 1e9 {
			return nil, fmt.Errorf("row %d: nanoseconds %d out of range", i, ns)
		}
		dseq, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		e := &perflog.Entry{
			Time:  time.Unix(sec, int64(ns)).UTC(),
			FOMs:  map[string]fom.Value{},
			Extra: map[string]string{},
		}
		st := stored{entry: e, seq: h.MinSeq + dseq}
		if st.file, err = str(); err != nil {
			return nil, err
		}
		if e.System, err = str(); err != nil {
			return nil, err
		}
		if e.Benchmark, err = str(); err != nil {
			return nil, err
		}
		if e.Partition, err = str(); err != nil {
			return nil, err
		}
		if e.Environ, err = str(); err != nil {
			return nil, err
		}
		if e.Spec, err = str(); err != nil {
			return nil, err
		}
		if e.Result, err = str(); err != nil {
			return nil, err
		}
		job, err := r.varint()
		if err != nil {
			return nil, err
		}
		e.JobID = int(job)
		nf, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nf > uint64(len(data)) {
			return nil, fmt.Errorf("row %d: %d FOMs exceeds data length", i, nf)
		}
		for j := uint64(0); j < nf; j++ {
			name, err := str()
			if err != nil {
				return nil, err
			}
			unit, err := str()
			if err != nil {
				return nil, err
			}
			b, err := r.bytes(8)
			if err != nil {
				return nil, err
			}
			e.FOMs[name] = fom.Value{Name: name, Value: math.Float64frombits(binary.LittleEndian.Uint64(b)), Unit: unit}
		}
		nx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nx > uint64(len(data)) {
			return nil, fmt.Errorf("row %d: %d extras exceeds data length", i, nx)
		}
		for j := uint64(0); j < nx; j++ {
			k, err := str()
			if err != nil {
				return nil, err
			}
			v, err := str()
			if err != nil {
				return nil, err
			}
			e.Extra[k] = v
		}
		st.t = timeNanos(e.Time)
		if st.t < prevT {
			return nil, fmt.Errorf("row %d: arena not (time, seq)-sorted", i)
		}
		prevT = st.t
		d.entries = append(d.entries, st)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%d trailing bytes after last row", len(data)-r.pos)
	}
	d.post = buildPostings(d.entries)
	return d, nil
}

// segFileName names segment id on disk.
func segFileName(id uint64) string { return fmt.Sprintf("seg-%08d.seg", id) }

// writeSegmentFile seals an arena into dir atomically: the bytes land
// in a .tmp file first, are fsynced, and only then renamed into place
// (and the directory fsynced), so a crash mid-seal leaves at worst an
// orphan .tmp the next Open sweeps away — never a half-written live
// segment. The "perfstore.segwrite" injection point models exactly that
// crash: it fires after the temp file exists but before the data is
// durable.
func writeSegmentFile(dir string, id uint64, entries []stored) (SegmentInfo, error) {
	hdr, data := encodeSegment(entries)
	name := segFileName(id)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("perfstore: seal: %w", err)
	}
	if err := faultinject.Fire("perfstore.segwrite"); err != nil {
		f.Close()
		return SegmentInfo{}, fmt.Errorf("perfstore: seal %s: %w", name, err)
	}
	if _, err := f.Write(marshalHeader(hdr)); err != nil {
		f.Close()
		return SegmentInfo{}, fmt.Errorf("perfstore: seal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return SegmentInfo{}, fmt.Errorf("perfstore: seal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return SegmentInfo{}, fmt.Errorf("perfstore: seal: %w", err)
	}
	if err := f.Close(); err != nil {
		return SegmentInfo{}, fmt.Errorf("perfstore: seal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return SegmentInfo{}, fmt.Errorf("perfstore: seal: %w", err)
	}
	syncDir(dir)

	info := SegmentInfo{
		File:   name,
		Count:  hdr.Count,
		Bytes:  int64(segHeaderSize + len(data)),
		MinT:   hdr.MinT,
		MaxT:   hdr.MaxT,
		MinSeq: hdr.MinSeq,
		MaxSeq: hdr.MaxSeq,
	}
	files := map[string]bool{}
	systems := map[string]bool{}
	for i := range entries {
		files[entries[i].file] = true
		systems[entries[i].entry.System] = true
	}
	for fp := range files {
		info.Sources = append(info.Sources, fp)
	}
	sort.Strings(info.Sources)
	for sys := range systems {
		info.Systems = append(info.Systems, sys)
	}
	sort.Strings(info.Systems)
	return info, nil
}

// syncDir fsyncs a directory so a rename into it is durable; best
// effort, some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// readSegmentHeader reads and validates only the fixed-size header —
// the unit of O(headers) boot.
func readSegmentHeader(path string) (segHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return segHeader{}, err
	}
	defer f.Close()
	buf := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return segHeader{}, fmt.Errorf("read header: %w", err)
	}
	return unmarshalHeader(buf)
}

// segment is one sealed segment handle: zone map from the manifest,
// data block loaded lazily on the first query that survives pruning.
type segment struct {
	dir  string
	info SegmentInfo

	mu   sync.Mutex
	data *segData
}

// segLoadPolicy absorbs transient read hiccups (NFS wobble, injected
// faults) before a load failure is surfaced.
var segLoadPolicy = retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

// load decodes the segment's data block, once; later calls return the
// resident arena. The "perfstore.segload" injection point models the
// read failing.
func (g *segment) load() (*segData, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.data != nil {
		return g.data, nil
	}
	var d *segData
	err := segLoadPolicy.Do(context.Background(), "perfstore.segload", func(context.Context, int) error {
		if err := faultinject.Fire("perfstore.segload"); err != nil {
			return err
		}
		path := filepath.Join(g.dir, g.info.File)
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(raw) < segHeaderSize {
			return fmt.Errorf("segment %s truncated (%d bytes)", g.info.File, len(raw))
		}
		hdr, err := unmarshalHeader(raw[:segHeaderSize])
		if err != nil {
			return fmt.Errorf("segment %s: %w", g.info.File, err)
		}
		d, err = decodeSegment(hdr, raw[segHeaderSize:])
		if err != nil {
			return fmt.Errorf("segment %s: %w", g.info.File, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	metricSegmentLoads.Inc()
	g.data = d
	return d, nil
}

// loaded reports whether the data block is resident (zone-map pruning
// tests peek at this).
func (g *segment) loaded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.data != nil
}

// collect is the sealed tier's leg of Select: zone-map prune first,
// lazy-load, then the same posting-intersection / time-window plan the
// head shards run. The arena is already (t, seq)-sorted, so posting
// results come out in merge order without a sort.
func (g *segment) collect(s *Store, m *matcher, limit int) []hit {
	if m.hasSince && g.info.MaxT < m.sinceNano {
		metricSegmentsPruned.Inc()
		return nil
	}
	d, err := g.load()
	if err != nil {
		s.noteLoadFailure(err)
		return nil
	}
	if len(m.keys) > 0 {
		idxs, ok := intersectPostings(d.post, m.keys)
		if !ok {
			return nil
		}
		hits := make([]hit, 0, len(idxs))
		for _, idx := range idxs {
			st := &d.entries[idx]
			if m.hasSince && st.t < m.sinceNano {
				continue
			}
			hits = append(hits, hit{st.entry, st.t, st.seq})
		}
		if limit > 0 && len(hits) > limit {
			hits = hits[len(hits)-limit:]
		}
		return hits
	}
	lo := 0
	if m.hasSince {
		lo = sort.Search(len(d.entries), func(i int) bool {
			return d.entries[i].t >= m.sinceNano
		})
	}
	n := len(d.entries) - lo
	if n <= 0 {
		return nil
	}
	if limit > 0 && n > limit {
		lo = len(d.entries) - limit
		n = limit
	}
	hits := make([]hit, 0, n)
	for i := lo; i < len(d.entries); i++ {
		st := &d.entries[i]
		hits = append(hits, hit{st.entry, st.t, st.seq})
	}
	return hits
}

// aggregate is the sealed tier's leg of Store.Aggregate — the same
// per-group partials the head shards produce, map-merged by the caller.
func (g *segment) aggregate(s *Store, m *matcher, keyer *groupKeyer, fomName string, gate float64) map[string]*partialAgg {
	partials := map[string]*partialAgg{}
	if m.hasSince && g.info.MaxT < m.sinceNano {
		metricSegmentsPruned.Inc()
		return partials
	}
	d, err := g.load()
	if err != nil {
		s.noteLoadFailure(err)
		return partials
	}
	visit := func(st *stored) {
		if m.hasSince && st.t < m.sinceNano {
			return
		}
		raw := keyer.raw(st.entry)
		pa := partials[string(raw)]
		if pa == nil {
			pa = newPartialAgg(string(raw))
			partials[pa.group] = pa
		}
		pa.observe(st, fomName, gate)
	}
	if len(m.keys) > 0 {
		idxs, ok := intersectPostings(d.post, m.keys)
		if !ok {
			return partials
		}
		for _, idx := range idxs {
			visit(&d.entries[idx])
		}
		return partials
	}
	for i := range d.entries {
		visit(&d.entries[i])
	}
	return partials
}
