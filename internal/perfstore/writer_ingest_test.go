package perfstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/perflog"
)

// writerStore opens a store over a fresh root and returns a
// group-commit Writer whose durable commits feed Store.AddBatch — the
// benchd wiring, reproduced at package scope.
func writerStore(t *testing.T) (*Store, *perflog.Writer) {
	t.Helper()
	s := Open(t.TempDir())
	w := perflog.NewWriter(s.Root(), perflog.WriterOptions{
		OnCommit: func(c perflog.Commit) { s.AddBatch(c) },
	})
	t.Cleanup(func() { w.Close() })
	return s, w
}

// TestAddBatchIngestsCommitWithoutRereading: entries committed through
// the Writer are queryable the moment Append acks, and the store never
// reads the file to get them — zero bytes parsed, and the follow-up
// SyncFile is a checkpoint no-op. A cold store over the same tree sees
// the same entries, proving file and index content agree.
func TestAddBatchIngestsCommitWithoutRereading(t *testing.T) {
	s, w := writerStore(t)
	for i := 1; i <= 3; i++ {
		e := entry("archer2", "hpgmg-fv", i, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"l0": 95})
		if err := w.Append("archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("store holds %d entries after 3 acked appends, want 3", got)
	}
	if st := s.Stats(); st.BytesParsed != 0 {
		t.Fatalf("commit ingest parsed %d bytes, want 0 (entries arrive pre-parsed)", st.BytesParsed)
	}
	// The retried reconciliation sync benchd workers issue must find the
	// checkpoint already past the committed bytes.
	path := filepath.Join(s.Root(), "archer2", "hpgmg-fv.log")
	if err := s.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BytesParsed != 0 {
		t.Fatalf("re-sync after commit ingest parsed %d bytes, want 0", st.BytesParsed)
	}
	// Cold boot over the same tree: the file alone reproduces the index.
	cold := Open(s.Root())
	if err := cold.Sync(); err != nil {
		t.Fatal(err)
	}
	if cold.Len() != s.Len() {
		t.Fatalf("cold store holds %d entries, live store %d", cold.Len(), s.Len())
	}
}

// TestAddBatchDeclinesOnOffsetMismatch: a commit whose start offset
// does not match the file checkpoint (out-of-band bytes landed first)
// is declined, and the fallback SyncFile parses both the gap and the
// commit from the file — nothing is lost or double-counted.
func TestAddBatchDeclinesOnOffsetMismatch(t *testing.T) {
	s := Open(t.TempDir())
	// An out-of-band one-shot append lands before the writer's commit.
	oob := entry("archer2", "hpgmg-fv", 1, t0, map[string]float64{"l0": 94})
	if err := perflog.Append(s.Root(), "archer2", "hpgmg-fv", oob); err != nil {
		t.Fatal(err)
	}
	var commits []perflog.Commit
	w := perflog.NewWriter(s.Root(), perflog.WriterOptions{
		OnCommit: func(c perflog.Commit) { commits = append(commits, c) },
	})
	defer w.Close()
	e := entry("archer2", "hpgmg-fv", 2, t0.Add(time.Hour), map[string]float64{"l0": 95})
	if err := w.Append("archer2", "hpgmg-fv", e); err != nil {
		t.Fatal(err)
	}
	if len(commits) != 1 {
		t.Fatalf("saw %d commits, want 1", len(commits))
	}
	if s.AddBatch(commits[0]) {
		t.Fatal("AddBatch accepted a commit with unknown bytes before it")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("declined commit still added %d entries", got)
	}
	// Fallback: the file itself carries both lines.
	if err := s.SyncFile(commits[0].Path); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("fallback sync ingested %d entries, want 2", got)
	}
	if st := s.Stats(); st.BytesParsed == 0 {
		t.Fatal("fallback sync should have parsed the file bytes")
	}
}

// TestAddBatchEmptyCommitAccepted: a zero-entry commit is vacuously
// ingested and moves nothing.
func TestAddBatchEmptyCommitAccepted(t *testing.T) {
	s := Open(t.TempDir())
	if !s.AddBatch(perflog.Commit{}) {
		t.Fatal("empty commit declined")
	}
	if s.Len() != 0 || s.Generation() != 0 {
		t.Fatal("empty commit mutated the store")
	}
}

// TestAddBatchBumpsGenerationOncePerCommit: query caches are
// invalidated once per durable commit, not once per entry — the
// ingest-side half of the group-commit amortization.
func TestAddBatchBumpsGenerationOncePerCommit(t *testing.T) {
	s := Open(t.TempDir())
	var entries []*perflog.Entry
	for i := 1; i <= 8; i++ {
		entries = append(entries, entry("archer2", "hpgmg-fv", i, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"l0": 95}))
	}
	path := filepath.Join(s.Root(), "archer2", "hpgmg-fv.log")
	if err := perflog.Append(s.Root(), "archer2", "hpgmg-fv", entries...); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Generation()
	if !s.AddBatch(perflog.Commit{
		Path: path, System: "archer2", Benchmark: "hpgmg-fv",
		Entries: entries, Offset: 0, Bytes: fi.Size(),
	}) {
		t.Fatal("commit at offset 0 of a fresh checkpoint declined")
	}
	if got := s.Generation() - before; got != 1 {
		t.Fatalf("generation moved %d times for one 8-entry commit, want 1", got)
	}
	if s.Len() != 8 {
		t.Fatalf("store holds %d entries, want 8", s.Len())
	}
}

// TestSyncFileBumpsGenerationOncePerFile: the parse path gets the same
// amortization — one generation bump per synced file, however many
// lines it carries.
func TestSyncFileBumpsGenerationOncePerFile(t *testing.T) {
	s := Open(seedTree(t))
	before := s.Generation()
	if err := s.SyncFile(filepath.Join(s.Root(), "archer2", "hpgmg-fv.log")); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation() - before; got != 1 {
		t.Fatalf("generation moved %d times syncing a 3-line file, want 1", got)
	}
}
