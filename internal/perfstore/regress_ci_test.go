package perfstore

import (
	"testing"
	"time"

	"repro/internal/perflog"
	"repro/internal/stats"
)

// statEntry builds an entry whose FOM carries repetition statistics
// computed from the given repetition values.
func statEntry(system, benchmark string, job int, at time.Time, fomName string, reps []float64) *perflog.Entry {
	s := stats.Summarize(reps, 0, 0, uint64(job)+1)
	e := entry(system, benchmark, job, at, map[string]float64{fomName: s.Mean})
	e.SetRepStats(fomName, perflog.RepStats{
		N: s.N, Mean: s.Mean, Stddev: s.Stddev, RSD: s.RSD, CILo: s.CILo, CIHi: s.CIHi,
	})
	return e
}

func pt(v float64) SeriesPoint { return SeriesPoint{Value: v} }

func statPt(reps []float64, seed uint64) SeriesPoint {
	s := stats.Summarize(reps, 0, 0, seed)
	return SeriesPoint{Value: s.Mean, Stats: &perflog.RepStats{
		N: s.N, Mean: s.Mean, Stddev: s.Stddev, RSD: s.RSD, CILo: s.CILo, CIHi: s.CIHi,
	}}
}

func TestEvalSeriesPointsCIRegression(t *testing.T) {
	// Baseline runs near 100; the latest run's repetitions collapsed to
	// ~60 with a tight CI — clearly below the baseline envelope.
	points := []SeriesPoint{
		statPt([]float64{99, 100, 101}, 1),
		statPt([]float64{100, 101, 99}, 2),
		statPt([]float64{60, 61, 59}, 3),
	}
	r, ok := EvalSeriesPoints(points, 0.10, 0, DefaultRSDGate)
	if !ok {
		t.Fatal("no verdict")
	}
	if !r.Flagged || r.Verdict != VerdictRegressed || r.Method != MethodCI {
		t.Fatalf("report = %+v, want CI-flagged regression", r)
	}
	if r.LatestN != 3 || r.LatestHi >= r.BaselineLo {
		t.Fatalf("interval columns: %+v", r)
	}
}

func TestEvalSeriesPointsCIOverlapNotFlagged(t *testing.T) {
	// A ~3% dip whose CI still overlaps the baseline envelope: the
	// tolerance rule at 2% would flag it, the CI rule must not.
	points := []SeriesPoint{
		statPt([]float64{95, 100, 105}, 1),
		statPt([]float64{96, 100, 104}, 2),
		statPt([]float64{92, 97, 102}, 3),
	}
	r, ok := EvalSeriesPoints(points, 0.02, 0, DefaultRSDGate)
	if !ok {
		t.Fatal("no verdict")
	}
	if r.Method != MethodCI {
		t.Fatalf("method = %s, want ci", r.Method)
	}
	if r.Flagged {
		t.Fatalf("overlapping CIs flagged: %+v", r)
	}
	if r.Verdict != VerdictOK {
		t.Fatalf("verdict = %s, want ok", r.Verdict)
	}
}

func TestEvalSeriesPointsVarianceGate(t *testing.T) {
	// The latest run is wildly noisy (RSD far above 10%): unstable, not
	// regressed, regardless of how low its mean landed.
	points := []SeriesPoint{
		statPt([]float64{99, 100, 101}, 1),
		statPt([]float64{40, 100, 160}, 2),
	}
	r, ok := EvalSeriesPoints(points, 0.10, 0, DefaultRSDGate)
	if !ok {
		t.Fatal("no verdict")
	}
	if r.Verdict != VerdictUnstable || r.Method != MethodVariance || r.Flagged {
		t.Fatalf("report = %+v, want unstable via variance gate", r)
	}
	if r.LatestRSD <= DefaultRSDGate {
		t.Fatalf("LatestRSD = %v, want above the gate", r.LatestRSD)
	}
	// With the gate disabled the same series is judged normally.
	r2, ok := EvalSeriesPoints(points, 0.10, 0, 0)
	if !ok || r2.Verdict == VerdictUnstable {
		t.Fatalf("gate-off report = %+v ok=%v", r2, ok)
	}
}

func TestEvalSeriesPointsUnstableBaselineExcluded(t *testing.T) {
	// An unstable run in the baseline window must not drag the baseline
	// mean; only stable history judges the latest run.
	points := []SeriesPoint{
		statPt([]float64{99, 100, 101}, 1),
		statPt([]float64{10, 100, 190}, 2), // unstable, mean 100 but huge spread
		statPt([]float64{98, 100, 102}, 3),
		pt(99),
	}
	r, ok := EvalSeriesPoints(points, 0.10, 0, DefaultRSDGate)
	if !ok {
		t.Fatal("no verdict")
	}
	if r.Samples != 2 {
		t.Fatalf("baseline samples = %d, want 2 (unstable point excluded)", r.Samples)
	}
	if r.Flagged {
		t.Fatalf("stable latest flagged: %+v", r)
	}
}

func TestEvalSeriesPointsTwoRepsFallsBackToTolerance(t *testing.T) {
	// n=2 is too small for a CI verdict: the fixed tolerance judges it.
	points := []SeriesPoint{
		statPt([]float64{99, 101}, 1),
		statPt([]float64{80, 82}, 2),
	}
	r, ok := EvalSeriesPoints(points, 0.10, 0, DefaultRSDGate)
	if !ok {
		t.Fatal("no verdict")
	}
	if r.Method != MethodTolerance || !r.Flagged {
		t.Fatalf("report = %+v, want tolerance-flagged", r)
	}
	if r.LatestN != 2 {
		t.Fatalf("LatestN = %d, want 2", r.LatestN)
	}
}

// TestEvalSeriesBackCompat pins the fallback: plain value series (pre-PR
// perflog lines) must evaluate exactly as the old fixed-tolerance rule
// did, field for field.
func TestEvalSeriesBackCompat(t *testing.T) {
	// oldEvalSeries is the pre-repetition implementation, verbatim.
	oldEvalSeries := func(vals []float64, tolerance float64, window int) (Report, bool) {
		clean := vals[:0:0]
		for _, v := range vals {
			if v == v { // !NaN
				clean = append(clean, v)
			}
		}
		if len(clean) < 2 {
			return Report{}, false
		}
		latest := clean[len(clean)-1]
		base := clean[:len(clean)-1]
		if window > 0 && len(base) > window {
			base = base[len(base)-window:]
		}
		sum := 0.0
		for _, v := range base {
			sum += v
		}
		mean := sum / float64(len(base))
		change := 0.0
		if mean != 0 {
			change = (latest - mean) / mean
		}
		return Report{
			Baseline: mean, Latest: latest, Change: change,
			Flagged: change < -tolerance, Samples: len(base),
		}, true
	}
	series := [][]float64{
		{100, 100, 90},
		{95.36, 94.8, 60.0},
		{126.1, 125.8},
		{1, 2, 3, 4, 5, 6, 2},
		{0, 0, 0},
		{100},
		{},
	}
	for _, vals := range series {
		for _, window := range []int{0, 2, 3} {
			for _, tol := range []float64{0.02, 0.10} {
				want, wantOK := oldEvalSeries(vals, tol, window)
				got, gotOK := EvalSeries(vals, tol, window)
				if gotOK != wantOK {
					t.Fatalf("%v tol=%v w=%d: ok=%v want %v", vals, tol, window, gotOK, wantOK)
				}
				if got.Baseline != want.Baseline || got.Latest != want.Latest ||
					got.Change != want.Change || got.Flagged != want.Flagged ||
					got.Samples != want.Samples {
					t.Fatalf("%v tol=%v w=%d: got %+v want %+v", vals, tol, window, got, want)
				}
			}
		}
	}
}

func TestRegressionsWithRepStats(t *testing.T) {
	root := t.TempDir()
	for i, reps := range [][]float64{
		{99, 100, 101},
		{100, 101, 99},
		{60, 61, 59},
	} {
		e := statEntry("archer2", "hpgmg-fv", i+1, t0.Add(time.Duration(i)*time.Hour), "l0", reps)
		if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	// One noisy group on another system: surfaces as unstable.
	for i, reps := range [][]float64{
		{99, 100, 101},
		{40, 100, 160},
	} {
		e := statEntry("csd3", "hpgmg-fv", i+1, t0.Add(time.Duration(i)*time.Hour), "l0", reps)
		if err := perflog.Append(root, "csd3", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	s := Open(root)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	reports, err := s.Regressions(Query{FOM: "l0", GroupBy: []string{"system"}}, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %+v", reports)
	}
	archer, csd3 := reports[0], reports[1]
	if archer.Group != "archer2" || !archer.Flagged || archer.Method != MethodCI || archer.Verdict != VerdictRegressed {
		t.Fatalf("archer2 = %+v, want CI regression", archer)
	}
	if csd3.Group != "csd3" || csd3.Verdict != VerdictUnstable || csd3.Flagged {
		t.Fatalf("csd3 = %+v, want unstable", csd3)
	}
}

func TestAggregateVarianceGate(t *testing.T) {
	root := t.TempDir()
	// Two stable entries (100, 102) and one unstable entry whose point
	// value (200) must not pollute min/max/mean/last.
	es := []*perflog.Entry{
		statEntry("archer2", "hpgmg-fv", 1, t0, "l0", []float64{99, 100, 101}),
		statEntry("archer2", "hpgmg-fv", 2, t0.Add(time.Hour), "l0", []float64{101, 102, 103}),
		statEntry("archer2", "hpgmg-fv", 3, t0.Add(2*time.Hour), "l0", []float64{80, 200, 320}),
	}
	for _, e := range es {
		if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	s := Open(root)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 10} { // 0 = map-merge path, >0 = Select path
		aggs, err := s.Aggregate(Query{FOM: "l0", Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if len(aggs) != 1 {
			t.Fatalf("limit=%d: aggs = %+v", limit, aggs)
		}
		a := aggs[0]
		if a.Count != 3 || a.Unstable != 1 {
			t.Fatalf("limit=%d: count=%d unstable=%d, want 3/1", limit, a.Count, a.Unstable)
		}
		if a.Mean != 101 || a.Min != 100 || a.Max != 102 || a.Last != 102 {
			t.Fatalf("limit=%d: %+v, want stable-only min/max/mean/last", limit, a)
		}
	}
	// Gate disabled: the noisy entry contributes again.
	s.RSDGate = -1
	aggs, err := s.Aggregate(Query{FOM: "l0"})
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Unstable != 0 || aggs[0].Max != 200 {
		t.Fatalf("gate-off agg = %+v", aggs[0])
	}
}

func TestAggregateAllUnstableGroup(t *testing.T) {
	root := t.TempDir()
	e := statEntry("archer2", "hpgmg-fv", 1, t0, "l0", []float64{10, 100, 190})
	e2 := statEntry("archer2", "hpgmg-fv", 2, t0.Add(time.Hour), "l0", []float64{20, 100, 180})
	for _, x := range []*perflog.Entry{e, e2} {
		if err := perflog.Append(root, "archer2", "hpgmg-fv", x); err != nil {
			t.Fatal(err)
		}
	}
	s := Open(root)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	aggs, err := s.Aggregate(Query{FOM: "l0"})
	if err != nil {
		t.Fatal(err)
	}
	a := aggs[0]
	if a.Count != 2 || a.Unstable != 2 {
		t.Fatalf("agg = %+v, want all entries unstable", a)
	}
	if a.Mean != 0 || a.Min != 0 || a.Max != 0 || a.Last != 0 {
		t.Fatalf("all-unstable group leaked values: %+v", a)
	}
}
