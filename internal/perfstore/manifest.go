// The manifest is the sealed tier's crash-safe root of trust: one JSON
// file in the data directory naming every live segment (with its zone
// map) and, per perflog source file, the byte offset through which its
// entries have been sealed — the watermark. A boot reads the manifest,
// validates each named segment's header, restores the ingest
// checkpoints from the watermarks, and re-parses only the perflog tail
// past them: O(segment headers) work, not O(perflog bytes).
//
// The manifest is replaced atomically (write temp, fsync, rename,
// fsync directory), so a crash at any instant leaves either the old
// manifest or the new one — never a torn file. Segment files not named
// by the manifest (a seal or compaction that crashed between writing
// the segment and swapping the manifest) are orphans; Open sweeps them
// away, and the entries they held are re-ingested from the perflog
// tail the old watermarks still point at. Nothing is lost, nothing is
// duplicated, because the text tree remains the source of truth.
package perfstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultinject"
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
)

// manifest is the persisted state of the sealed tier.
type manifest struct {
	Version int `json:"version"`
	// Generation counts manifest swaps (seals, compactions, sealed
	// evictions); /healthz surfaces it so operators can watch the tier
	// advance.
	Generation uint64 `json:"generation"`
	// NextSeg is the last segment id handed out; ids are never reused,
	// so a crashed seal's orphan file can never collide with a live one.
	NextSeg uint64 `json:"next_seg"`
	// MaxSeq is the largest ingest sequence persisted in any segment; a
	// boot starts the store's sequence past it so (time, seq) ordering
	// stays total across restarts.
	MaxSeq uint64 `json:"max_seq"`
	// Watermarks maps perflog files (relative to the store root) to the
	// byte offset through which their lines are sealed.
	Watermarks map[string]int64 `json:"watermarks,omitempty"`
	Segments   []SegmentInfo    `json:"segments,omitempty"`
}

func (m *manifest) clone() *manifest {
	c := *m
	c.Watermarks = make(map[string]int64, len(m.Watermarks))
	for k, v := range m.Watermarks {
		c.Watermarks[k] = v
	}
	c.Segments = append([]SegmentInfo(nil), m.Segments...)
	return &c
}

// saveManifest atomically replaces the manifest. The
// "perfstore.manifest" injection point models the swap failing — a
// crash after segments were written but before they became visible.
func saveManifest(dir string, m *manifest) error {
	if err := faultinject.Fire("perfstore.manifest"); err != nil {
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("perfstore: manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

// loadManifest reads the manifest; a missing file is an empty tier, not
// an error. The "perfstore.manifestread" injection point models the
// read failing (the degraded-boot path benchd exercises).
func loadManifest(dir string) (*manifest, error) {
	if err := faultinject.Fire("perfstore.manifestread"); err != nil {
		return nil, fmt.Errorf("perfstore: manifest: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return &manifest{Version: manifestVersion, Watermarks: map[string]int64{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perfstore: manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("perfstore: manifest corrupt: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("perfstore: manifest version %d unsupported", m.Version)
	}
	if m.Watermarks == nil {
		m.Watermarks = map[string]int64{}
	}
	return &m, nil
}

// cleanOrphans removes temp files and segment files the manifest does
// not name — the debris of a seal or compaction that crashed before its
// manifest swap. Their entries are still covered by the perflog tail
// past the surviving watermarks, so deleting them loses nothing.
func cleanOrphans(dir string, m *manifest) int {
	live := make(map[string]bool, len(m.Segments))
	for _, info := range m.Segments {
		live[info.File] = true
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !live[name]:
		default:
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// relSource normalizes a perflog path to the store root for use as a
// watermark key or a segment source — stable across boots from
// different working directories.
func (s *Store) relSource(path string) string {
	if rel, err := filepath.Rel(s.root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// absSource resolves a watermark key back to an openable path.
func (s *Store) absSource(rel string) string {
	if filepath.IsAbs(rel) {
		return rel
	}
	return filepath.Join(s.root, rel)
}
