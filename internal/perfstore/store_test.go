package perfstore

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/perflog"
)

func entry(system, benchmark string, job int, t0 time.Time, foms map[string]float64) *perflog.Entry {
	e := &perflog.Entry{
		Time:      t0,
		Benchmark: benchmark,
		System:    system,
		Partition: "compute",
		Environ:   "gcc",
		Spec:      benchmark + "%gcc",
		JobID:     job,
		Result:    "pass",
		FOMs:      map[string]fom.Value{},
		Extra:     map[string]string{"num_tasks": "8"},
	}
	for k, v := range foms {
		e.FOMs[k] = fom.Value{Name: k, Value: v, Unit: "MDOF/s"}
	}
	return e
}

var t0 = time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)

// seedTree writes a two-system tree directly with perflog.Append, as
// isolated benchctl runs would.
func seedTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	for i, v := range []float64{95.0, 94.5, 60.0} {
		e := entry("archer2", "hpgmg-fv", i+1, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"l0": v})
		if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range []float64{126.1, 125.8} {
		e := entry("csd3", "hpgmg-fv", i+1, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"l0": v})
		if err := perflog.Append(root, "csd3", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestSyncIngestsTree(t *testing.T) {
	s := Open(seedTree(t))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("entries = %d, want 5", s.Len())
	}
	if got := s.Systems(); len(got) != 2 || got[0] != "archer2" || got[1] != "csd3" {
		t.Errorf("systems = %v", got)
	}
}

func TestReSyncUnchangedTreeParsesZeroBytes(t *testing.T) {
	// The incremental-ingest acceptance check: a second Sync over an
	// unchanged tree must not parse a single byte or add an entry.
	s := Open(seedTree(t))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.BytesParsed == 0 || before.EntriesAdded != 5 {
		t.Fatalf("first sync stats: %+v", before)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if delta := after.BytesParsed - before.BytesParsed; delta != 0 {
		t.Errorf("re-sync parsed %d bytes, want 0", delta)
	}
	if after.EntriesAdded != before.EntriesAdded {
		t.Errorf("re-sync added %d entries", after.EntriesAdded-before.EntriesAdded)
	}
	if s.Len() != 5 {
		t.Errorf("re-sync duplicated entries: %d", s.Len())
	}
}

func TestSyncPicksUpOnlyAppendedBytes(t *testing.T) {
	root := seedTree(t)
	s := Open(root)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	e := entry("archer2", "hpgmg-fv", 9, t0.Add(9*time.Hour), map[string]float64{"l0": 90})
	if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
		t.Fatal(err)
	}
	newBytes := int64(len(e.Line()) + 1)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if delta := after.BytesParsed - before.BytesParsed; delta != newBytes {
		t.Errorf("parsed %d bytes, want just the appended %d", delta, newBytes)
	}
	if s.Len() != 6 {
		t.Errorf("entries = %d, want 6", s.Len())
	}
}

func TestSyncLeavesPartialTrailingLine(t *testing.T) {
	root := t.TempDir()
	e := entry("archer2", "hpgmg-fv", 1, t0, map[string]float64{"l0": 95})
	if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	// A writer mid-append: half a line, no newline yet.
	half := entry("archer2", "hpgmg-fv", 2, t0.Add(time.Hour), map[string]float64{"l0": 94}).Line()
	cut := len(half) / 2
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(half[:cut]); err != nil {
		t.Fatal(err)
	}
	s := Open(root)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("partial line ingested: %d entries", s.Len())
	}
	// The writer finishes the line; the next sync picks it up whole.
	if _, err := f.WriteString(half[cut:] + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("completed line not ingested: %d entries", s.Len())
	}
}

func TestSyncRecoversFromTruncation(t *testing.T) {
	root := seedTree(t)
	s := Open(root)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// The archer2 log is rewritten shorter (a rotated or repaired file).
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	keep := entry("archer2", "hpgmg-fv", 42, t0, map[string]float64{"l0": 97}).Line() + "\n"
	if err := os.WriteFile(path, []byte(keep), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got := s.Select(Query{System: "archer2"})
	if len(got) != 1 || got[0].JobID != 42 {
		t.Fatalf("after truncation: %d archer2 entries, %+v", len(got), got)
	}
	// csd3 is untouched.
	if n := len(s.Select(Query{System: "csd3"})); n != 2 {
		t.Errorf("csd3 entries = %d", n)
	}
}

func TestAppendKeepsStoreAndTreeInLockstep(t *testing.T) {
	root := t.TempDir()
	s := Open(root)
	e := entry("archer2", "hpgmg-fv", 1, t0, map[string]float64{"l0": 95})
	if err := s.Append("archer2", "hpgmg-fv", e); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("entries = %d", s.Len())
	}
	// The file is on disk and a fresh Sync adds nothing new.
	before := s.Stats().BytesParsed
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().BytesParsed != before || s.Len() != 1 {
		t.Error("Append left the checkpoint behind the file")
	}
	entries, err := perflog.ReadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("tree entries = %d", len(entries))
	}
}

func TestSelectFilters(t *testing.T) {
	s := Open(seedTree(t))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Select(Query{System: "archer2"})); n != 3 {
		t.Errorf("archer2 = %d", n)
	}
	if n := len(s.Select(Query{Benchmark: "hpgmg-fv"})); n != 5 {
		t.Errorf("benchmark = %d", n)
	}
	if n := len(s.Select(Query{FOM: "nope"})); n != 0 {
		t.Errorf("missing FOM matched %d", n)
	}
	if n := len(s.Select(Query{Extra: map[string]string{"num_tasks": "8"}})); n != 5 {
		t.Errorf("extra = %d", n)
	}
	if n := len(s.Select(Query{Extra: map[string]string{"num_tasks": "99"}})); n != 0 {
		t.Errorf("wrong extra matched %d", n)
	}
	if n := len(s.Select(Query{Since: t0.Add(90 * time.Minute)})); n != 1 {
		t.Errorf("since = %d", n)
	}
	got := s.Select(Query{System: "archer2", Limit: 2})
	if len(got) != 2 || got[1].FOMs["l0"].Value != 60.0 {
		t.Errorf("limit should keep the most recent entries: %+v", got)
	}
	// Results are time-ascending across systems.
	all := s.Select(Query{})
	for i := 1; i < len(all); i++ {
		if all[i].Time.Before(all[i-1].Time) {
			t.Fatal("Select not time-ordered")
		}
	}
}

func TestAggregate(t *testing.T) {
	s := Open(seedTree(t))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	aggs, err := s.Aggregate(Query{FOM: "l0", GroupBy: []string{"system"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("groups = %+v", aggs)
	}
	a := aggs[0] // sorted: archer2 first
	if a.Group != "archer2" || a.Count != 3 || a.Min != 60 || a.Max != 95 || a.Last != 60 {
		t.Errorf("archer2 agg = %+v", a)
	}
	wantMean := (95.0 + 94.5 + 60.0) / 3
	if diff := a.Mean - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean = %g, want %g", a.Mean, wantMean)
	}
	if a.Unit != "MDOF/s" {
		t.Errorf("unit = %q", a.Unit)
	}
	if _, err := s.Aggregate(Query{}); err == nil {
		t.Error("aggregate without FOM accepted")
	}
}

func TestRegressions(t *testing.T) {
	s := Open(seedTree(t))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	reports, err := s.Regressions(Query{FOM: "l0", GroupBy: []string{"system"}}, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %+v", reports)
	}
	if !reports[0].Flagged || reports[0].Group != "archer2" {
		t.Errorf("archer2 drop not flagged: %+v", reports[0])
	}
	if reports[1].Flagged {
		t.Errorf("csd3 wrongly flagged: %+v", reports[1])
	}
	if _, err := s.Regressions(Query{}, 0.10, 0); err == nil {
		t.Error("regressions without FOM accepted")
	}
}

func TestRegressionsSlidingWindow(t *testing.T) {
	// A series that decayed long ago and is now stable: against the full
	// history the latest run looks slow, but a sliding baseline of the
	// recent window sees a steady state.
	root := t.TempDir()
	s := Open(root)
	vals := []float64{200, 200, 200, 100, 100, 100, 100}
	for i, v := range vals {
		e := entry("archer2", "bench", i+1, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"x": v})
		if err := s.Append("archer2", "bench", e); err != nil {
			t.Fatal(err)
		}
	}
	full, err := s.Regressions(Query{FOM: "x"}, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !full[0].Flagged {
		t.Errorf("full-history baseline should flag: %+v", full[0])
	}
	recent, err := s.Regressions(Query{FOM: "x"}, 0.10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recent[0].Flagged || recent[0].Samples != 3 || recent[0].Baseline != 100 {
		t.Errorf("window-3 baseline should be stable: %+v", recent[0])
	}
}

func TestEvalSeriesShortAndNaN(t *testing.T) {
	if _, ok := EvalSeries([]float64{1}, 0.1, 0); ok {
		t.Error("single value judged")
	}
	if r, ok := EvalSeries([]float64{100, 100, 90}, 0.05, 0); !ok || !r.Flagged {
		t.Errorf("drop not flagged: %+v", r)
	}
	// NaN values (failed runs in a frame) are ignored, not propagated.
	nan := math.NaN()
	if r, ok := EvalSeries([]float64{100, nan, 100, nan, 90}, 0.05, 0); !ok || !r.Flagged || r.Baseline != 100 {
		t.Errorf("NaN handling: %+v", r)
	}
	if _, ok := EvalSeries([]float64{nan, nan, 100}, 0.05, 0); ok {
		t.Error("series of one real value judged")
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	// The -race acceptance test: writers Append through the store while
	// readers Select, Aggregate, and Regressions concurrently.
	root := t.TempDir()
	s := Open(root)
	const writers = 4
	const perWriter = 25
	systems := []string{"archer2", "csd3", "cosma8", "isambard-macs"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Select(Query{System: "archer2", FOM: "l0"})
				s.Aggregate(Query{FOM: "l0"})
				s.Regressions(Query{FOM: "l0"}, 0.1, 5)
				s.Stats()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			sys := systems[w%len(systems)]
			for i := 0; i < perWriter; i++ {
				e := entry(sys, "hpgmg-fv", w*1000+i, t0.Add(time.Duration(i)*time.Minute), map[string]float64{"l0": 90 + float64(i)})
				if err := s.Append(sys, "hpgmg-fv", e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Errorf("entries = %d, want %d", s.Len(), writers*perWriter)
	}
	// Everything the writers appended is also parseable on disk.
	entries, err := perflog.ReadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != writers*perWriter {
		t.Errorf("tree entries = %d", len(entries))
	}
}

func TestSyncMissingRootIsNoop(t *testing.T) {
	s := Open(filepath.Join(t.TempDir(), "never-created"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("phantom entries")
	}
}

// A fault-injected short read mid-line must behave exactly like a
// writer caught mid-append: the checkpoint stays before the torn tail,
// nothing partial is indexed, and the next (clean) sync completes the
// picture — convergence to filesystem truth through the normal
// incremental path.
func TestSyncRecoversFromFaultInjectedShortReads(t *testing.T) {
	root := seedTree(t)
	// Cut the very first read of archer2's file after 40 bytes (well
	// inside the first line).
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perfstore.read", Kind: faultinject.KindShort, Bytes: 40, Times: 1},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	s := Open(root)
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	if err := s.SyncFile(path); err != nil {
		t.Fatalf("short read surfaced as an error: %v", err)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("torn first line indexed %d entries", got)
	}
	st := s.Stats()
	if st.BytesParsed != 0 {
		t.Fatalf("checkpoint advanced past a torn line: %d bytes", st.BytesParsed)
	}
	// The schedule is exhausted; a re-sync reads the whole file.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 5 {
		t.Fatalf("entries after recovery sync = %d, want 5", got)
	}
	// And the recovered store matches a store that never saw faults.
	clean := Open(root)
	if err := clean.Sync(); err != nil {
		t.Fatal(err)
	}
	if clean.Len() != s.Len() {
		t.Fatalf("faulted store (%d) diverged from clean store (%d)", s.Len(), clean.Len())
	}
}

// A short read that lands exactly on a line boundary just ingests a
// prefix; truncating the file below the checkpoint afterwards must
// still evict and re-read — the two recovery paths compose.
func TestSyncShortReadThenTruncation(t *testing.T) {
	root := seedTree(t)
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	var firstLineLen int64
	for i, b := range raw {
		if b == '\n' {
			lines++
			if lines == 1 {
				firstLineLen = int64(i + 1)
			}
		}
	}
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perfstore.read", Kind: faultinject.KindShort, Bytes: firstLineLen, Times: 1},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	s := Open(root)
	if err := s.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("boundary short read ingested %d entries, want 1", got)
	}
	// Truncate the file to nothing: shrink below checkpoint -> evict.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Select(Query{System: "archer2"})); got != 0 {
		t.Fatalf("%d stale entries survived truncation", got)
	}
	// Rewrite one entry; the store converges to the new truth.
	e := entry("archer2", "hpgmg-fv", 42, t0, map[string]float64{"l0": 88})
	if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	got := s.Select(Query{System: "archer2"})
	if len(got) != 1 || got[0].JobID != 42 {
		t.Fatalf("post-truncation state wrong: %d entries", len(got))
	}
}

func TestSyncSurfacesInjectedSyncFault(t *testing.T) {
	root := seedTree(t)
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perfstore.sync", Kind: faultinject.KindError, Times: 1},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	s := Open(root)
	if err := s.Sync(); !faultinject.Is(err) {
		t.Fatalf("sync fault not surfaced: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("recovery sync failed: %v", err)
	}
	if s.Len() != 5 {
		t.Fatalf("entries = %d, want 5", s.Len())
	}
}
