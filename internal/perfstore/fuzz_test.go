package perfstore

import (
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"
)

// FuzzQuery hammers the GET /v1/query wire-format parser: it must never
// panic, and whatever it accepts must be internally consistent.
func FuzzQuery(f *testing.F) {
	seeds := []string{
		"",
		"system=archer2&benchmark=hpgmg-fv",
		"fom=l0&agg=mean&group_by=system,benchmark",
		"since=2023-07-07T10:00:00Z&limit=10",
		"extra.num_tasks=8&result=pass",
		"agg=count",
		"group_by=system,,benchmark",
		"limit=-3",
		"since=not-a-time",
		"agg=median&fom=l0",
		"extra.=oops",
		"%gh&%ij",
		"a=b;c=d",
		strings.Repeat("system=x&", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := ParseQuery(raw)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		// Accepted queries satisfy the parser's own contract.
		if q.Limit < 0 {
			t.Fatalf("negative limit accepted: %q -> %+v", raw, q)
		}
		if q.Agg != "" && q.Agg != "count" && q.FOM == "" {
			t.Fatalf("agg without fom accepted: %q -> %+v", raw, q)
		}
		if q.Agg != "" && !aggNames[q.Agg] {
			t.Fatalf("unknown agg accepted: %q -> %+v", raw, q)
		}
		for _, g := range q.GroupBy {
			if g == "" {
				t.Fatalf("empty group_by field accepted: %q -> %+v", raw, q)
			}
		}
		for k := range q.Extra {
			if k == "" {
				t.Fatalf("empty extra key accepted: %q -> %+v", raw, q)
			}
		}
		if !q.Since.IsZero() {
			// since must round-trip as RFC3339, or it was never parsed.
			if _, err := time.Parse(time.RFC3339, q.Since.Format(time.RFC3339)); err != nil {
				t.Fatalf("since does not round-trip: %v", q.Since)
			}
		}
		// Everything the parser accepted came from a parseable query
		// string; re-parsing it must agree on the raw values.
		if _, err := url.ParseQuery(raw); err != nil {
			t.Fatalf("accepted unparseable query %q", raw)
		}
		// Round trip through the canonical encoding: whatever ParseQuery
		// accepted must re-encode to something ParseQuery accepts again,
		// describing the same query — and the encoding must be a fixed
		// point, or it could not serve as a cache key.
		enc := q.Encode()
		q2, err := ParseQuery(enc)
		if err != nil {
			t.Fatalf("Encode of accepted query is rejected: %q -> %q: %v", raw, enc, err)
		}
		if enc2 := q2.Encode(); enc2 != enc {
			t.Fatalf("Encode not canonical: %q -> %q -> %q", raw, enc, enc2)
		}
		if !q2.Since.Equal(q.Since) {
			t.Fatalf("since changed in round trip: %v -> %v (%q)", q.Since, q2.Since, enc)
		}
		q.Since, q2.Since = time.Time{}, time.Time{} // compared above; locations may differ
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("query changed in round trip:\n%+v\n%+v\nvia %q", q, q2, enc)
		}
		// A store must be able to run any accepted query without
		// panicking, even empty.
		s := Open(t.TempDir())
		s.Select(q)
		if q.Agg != "" {
			if _, err := s.Aggregate(q); err != nil && q.Agg != "count" && q.FOM != "" {
				t.Fatalf("aggregate rejected parsed query %+v: %v", q, err)
			}
		}
	})
}
