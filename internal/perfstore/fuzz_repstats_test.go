package perfstore

import (
	"math"
	"testing"
	"time"

	"repro/internal/perflog"
)

// FuzzRepetitionExtras round-trips repetition statistics through the full
// persistence path: encode onto an entry, append to a perflog tree,
// ingest through the store, Select — the recovered stats must be
// identical. NaN and ±Inf are legal float64s the 'g' encoding must carry.
func FuzzRepetitionExtras(f *testing.F) {
	f.Add(3, 95.361, 1.25, 0.013, 94.2, 96.5)
	f.Add(1, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(5, -1e300, 1e-300, 0.5, math.Inf(-1), math.Inf(1))
	f.Add(100, 1.0/3.0, 2.0/7.0, 0.1, 0.3, 0.4)
	f.Add(2, math.NaN(), 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, n int, mean, stddev, rsd, ciLo, ciHi float64) {
		if n < 1 || n > 1_000_000 {
			return // RepStats decode rejects n < 1 by design; huge n is uninteresting
		}
		want := perflog.RepStats{N: n, Mean: mean, Stddev: stddev, RSD: rsd, CILo: ciLo, CIHi: ciHi}
		e := entry("archer2", "hpgmg-fv", 1, time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC),
			map[string]float64{"l0": mean})
		e.SetRepStats("l0", want)

		root := t.TempDir()
		if err := perflog.Append(root, "archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
		s := Open(root)
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		got := s.Select(Query{System: "archer2"})
		if len(got) != 1 {
			t.Fatalf("selected %d entries, want 1", len(got))
		}
		rs, ok := got[0].RepStats("l0")
		if !ok {
			t.Fatal("stats lost through append+ingest")
		}
		if !sameFloat(rs.Mean, want.Mean) || !sameFloat(rs.Stddev, want.Stddev) ||
			!sameFloat(rs.RSD, want.RSD) || !sameFloat(rs.CILo, want.CILo) ||
			!sameFloat(rs.CIHi, want.CIHi) || rs.N != want.N {
			t.Fatalf("round trip: got %+v want %+v", rs, want)
		}
	})
}

// sameFloat is bitwise-tolerant equality: NaN equals NaN.
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
