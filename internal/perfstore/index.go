package perfstore

import (
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perflog"
)

// The secondary index. Each shard keeps, besides its append-only entry
// arena:
//
//   - posting lists: for every indexed predicate value (system,
//     benchmark, result, FOM presence, extra key=value) the ascending
//     arena indices of the entries carrying it. A selective query
//     intersects the relevant lists instead of scanning the arena.
//   - a time-ordered view (byTime): arena indices sorted by
//     (timestamp, ingest sequence), so Since binary-searches its lower
//     bound and Limit takes a bounded tail instead of materializing
//     everything first.
//
// Both are maintained incrementally under the shard lock on add and
// evict; queries only ever take the read lock. Entries are immutable
// once added, so index reads may hand out *perflog.Entry freely.

// Posting-list keys. The kind byte namespaces the value so a system
// named "pass" never collides with result=pass.
func keySystem(v string) string    { return "s\x00" + v }
func keyBenchmark(v string) string { return "b\x00" + v }
func keyResult(v string) string    { return "r\x00" + v }
func keyFOM(name string) string    { return "f\x00" + name }
func keyExtra(k, v string) string  { return "x\x00" + k + "\x00" + v }

// stored is one arena slot: the entry, its source file (for eviction),
// and a store-wide ingest sequence number that breaks timestamp ties so
// every ordering in the store is total and deterministic. t caches the
// entry's timestamp as Unix nanoseconds — every ordering comparison in
// the hot paths (byTime inserts, result sorts, cross-shard merges) is
// an integer compare instead of a time.Time method call.
type stored struct {
	entry *perflog.Entry
	file  string
	t     int64
	seq   uint64
	dead  bool
}

// timeNanos is the ordering key for a timestamp. Outside UnixNano's
// representable range (roughly years 1678–2262) it saturates, so
// far-out timestamps still order totally and consistently across the
// index, scan, and merge paths — ties within a saturated extreme fall
// to ingest sequence.
func timeNanos(tm time.Time) int64 {
	switch y := tm.Year(); {
	case y <= 1678:
		return math.MinInt64
	case y >= 2262:
		return math.MaxInt64
	}
	return tm.UnixNano()
}

type shard struct {
	mu      sync.RWMutex
	entries []stored // arena; append-only, dead slots tombstoned
	deadN   int
	live    int
	byTime  []int32            // live arena indices, sorted by (Time, seq)
	post    map[string][]int32 // posting lists, ascending arena indices
	systems map[string]int     // live entries per system (Systems/Stats)
}

func (sh *shard) init() {
	sh.post = map[string][]int32{}
	sh.systems = map[string]int{}
}

// reset empties the shard — the head clear after a Seal froze its
// entries into a segment. Callers hold sh.mu.
func (sh *shard) reset() {
	sh.entries = nil
	sh.deadN = 0
	sh.live = 0
	sh.byTime = nil
	sh.post = map[string][]int32{}
	sh.systems = map[string]int{}
}

// addLocked indexes one entry. Callers hold sh.mu.
func (sh *shard) addLocked(e *perflog.Entry, file string, seq uint64) {
	idx := int32(len(sh.entries))
	t := timeNanos(e.Time)
	sh.entries = append(sh.entries, stored{entry: e, file: file, t: t, seq: seq})
	sh.post[keySystem(e.System)] = append(sh.post[keySystem(e.System)], idx)
	sh.post[keyBenchmark(e.Benchmark)] = append(sh.post[keyBenchmark(e.Benchmark)], idx)
	if e.Result != "" {
		sh.post[keyResult(e.Result)] = append(sh.post[keyResult(e.Result)], idx)
	}
	for name := range e.FOMs {
		sh.post[keyFOM(name)] = append(sh.post[keyFOM(name)], idx)
	}
	for k, v := range e.Extra {
		sh.post[keyExtra(k, v)] = append(sh.post[keyExtra(k, v)], idx)
	}
	// Insert into the time-ordered view. Perflogs are appended roughly
	// chronologically, so the common case is an append at the end; an
	// out-of-order timestamp pays one binary search plus a copy. The new
	// entry carries the largest seq, so it sorts after existing
	// equal-timestamp entries — (Time, seq) order by construction.
	pos := len(sh.byTime)
	if pos > 0 && sh.entries[sh.byTime[pos-1]].t > t {
		pos = sort.Search(len(sh.byTime), func(i int) bool {
			return sh.entries[sh.byTime[i]].t > t
		})
	}
	sh.byTime = append(sh.byTime, 0)
	copy(sh.byTime[pos+1:], sh.byTime[pos:])
	sh.byTime[pos] = idx
	sh.live++
	sh.systems[e.System]++
}

// evictLocked tombstones every entry ingested from file and filters it
// out of the posting lists and the time view. Callers hold sh.mu.
func (sh *shard) evictLocked(file string) int {
	removed := 0
	for i := range sh.entries {
		st := &sh.entries[i]
		if st.dead || st.file != file {
			continue
		}
		st.dead = true
		removed++
		sys := st.entry.System
		if sh.systems[sys]--; sh.systems[sys] == 0 {
			delete(sh.systems, sys)
		}
	}
	if removed == 0 {
		return 0
	}
	sh.live -= removed
	sh.deadN += removed
	kept := sh.byTime[:0]
	for _, i := range sh.byTime {
		if !sh.entries[i].dead {
			kept = append(kept, i)
		}
	}
	sh.byTime = kept
	for key, list := range sh.post {
		kl := list[:0]
		for _, i := range list {
			if !sh.entries[i].dead {
				kl = append(kl, i)
			}
		}
		if len(kl) == 0 {
			delete(sh.post, key)
		} else {
			sh.post[key] = kl
		}
	}
	// Tombstones accumulate across truncation/rewrite cycles; compact
	// once the majority of the arena is dead so memory stays bounded by
	// the live set.
	if sh.deadN > len(sh.entries)/2 {
		sh.compactLocked()
	}
	return removed
}

// compactLocked rewrites the arena without tombstones and remaps every
// index structure. byTime and the posting lists hold only live indices,
// so the remap is total for them.
func (sh *shard) compactLocked() {
	remap := make([]int32, len(sh.entries))
	kept := sh.entries[:0]
	for i := range sh.entries {
		if sh.entries[i].dead {
			remap[i] = -1
			continue
		}
		remap[i] = int32(len(kept))
		kept = append(kept, sh.entries[i])
	}
	sh.entries = kept
	for j, i := range sh.byTime {
		sh.byTime[j] = remap[i]
	}
	for _, list := range sh.post {
		for j, i := range list {
			list[j] = remap[i]
		}
	}
	sh.deadN = 0
}

// hit is one matching entry with its ordering key — timestamp nanos
// plus the tie-break sequence — the unit of the cross-shard merge.
type hit struct {
	e   *perflog.Entry
	t   int64
	seq uint64
}

func hitLess(a, b hit) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// cmpHits is hitLess for slices.SortFunc, which skips the reflection
// swap overhead of sort.Slice in the per-shard result sort.
func cmpHits(a, b hit) int {
	switch {
	case a.t != b.t:
		if a.t < b.t {
			return -1
		}
		return 1
	case a.seq != b.seq:
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

// collect returns the shard's matching entries in (Time, seq) order,
// trimmed to the most recent limit when limit > 0. It is the per-shard
// leg of Select.
func (sh *shard) collect(m *matcher, limit int) []hit {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if len(m.keys) > 0 {
		idxs, ok := sh.intersectLocked(m.keys)
		if !ok {
			return nil
		}
		hits := make([]hit, 0, len(idxs))
		for _, idx := range idxs {
			st := &sh.entries[idx]
			if m.hasSince && st.t < m.sinceNano {
				continue
			}
			hits = append(hits, hit{st.entry, st.t, st.seq})
		}
		slices.SortFunc(hits, cmpHits)
		if limit > 0 && len(hits) > limit {
			hits = hits[len(hits)-limit:]
		}
		return hits
	}
	// No indexed predicate: every live entry matches except those before
	// Since. The time view makes both Since and Limit sublinear — a
	// binary-searched lower bound and a most-recent tail — instead of a
	// full scan with a post-hoc sort.
	lo := 0
	if m.hasSince {
		lo = sort.Search(len(sh.byTime), func(i int) bool {
			return sh.entries[sh.byTime[i]].t >= m.sinceNano
		})
	}
	n := len(sh.byTime) - lo
	if n <= 0 {
		return nil
	}
	if limit > 0 && n > limit {
		lo = len(sh.byTime) - limit
		n = limit
	}
	hits := make([]hit, 0, n)
	for _, idx := range sh.byTime[lo:] {
		st := &sh.entries[idx]
		hits = append(hits, hit{st.entry, st.t, st.seq})
	}
	return hits
}

// intersectLocked runs the posting-list intersection under the shard's
// read lock. Callers hold sh.mu.
func (sh *shard) intersectLocked(keys []string) ([]int32, bool) {
	return intersectPostings(sh.post, keys)
}

// intersectPostings plans and runs the posting-list intersection for the
// query's indexed predicates — shared by the head shards and the sealed
// segments, which maintain the same posting-list key scheme: the rarest
// list drives, the others are probed with an advancing galloping search
// — the probe starts where the previous one left off, doubles its step
// until it overshoots, then binary-searches the bracketed window. Dense
// probed lists cost ~O(1) per probe, sparse ones O(log gap); either way
// no per-element closure calls. ok is false when some predicate value
// has no posting list at all — zero matches, no work.
func intersectPostings(post map[string][]int32, keys []string) ([]int32, bool) {
	lists := make([][]int32, 0, len(keys))
	for _, k := range keys {
		l, ok := post[k]
		if !ok {
			return nil, false
		}
		lists = append(lists, l)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	base := lists[0]
	rest := lists[1:]
	if len(rest) == 0 {
		return base, true
	}
	cursors := make([]int, len(rest))
	out := make([]int32, 0, len(base))
outer:
	for _, idx := range base {
		for li, l := range rest {
			pos := cursors[li]
			if pos < len(l) && l[pos] < idx {
				step := 1
				for pos+step < len(l) && l[pos+step] < idx {
					pos += step
					step <<= 1
				}
				hi := pos + step
				if hi > len(l) {
					hi = len(l)
				}
				for pos++; pos < hi; { // l[pos-1] < idx ≤ l[hi] (if any)
					mid := int(uint(pos+hi) >> 1)
					if l[mid] < idx {
						pos = mid + 1
					} else {
						hi = mid
					}
				}
			}
			cursors[li] = pos
			if pos == len(l) || l[pos] != idx {
				continue outer
			}
		}
		out = append(out, idx)
	}
	return out, true
}

// aggregate computes per-group partial aggregates over the shard's
// matching entries — the map-merge leg of Store.Aggregate. Partials
// carry (lastTime, lastSeq) so the merged Last is exactly the
// latest-by-time value, shard boundaries notwithstanding.
func (sh *shard) aggregate(m *matcher, keyer *groupKeyer, fomName string, gate float64) map[string]*partialAgg {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	partials := map[string]*partialAgg{}
	visit := func(st *stored) {
		if m.hasSince && st.t < m.sinceNano {
			return
		}
		raw := keyer.raw(st.entry)
		pa := partials[string(raw)]
		if pa == nil {
			pa = newPartialAgg(string(raw))
			partials[pa.group] = pa
		}
		pa.observe(st, fomName, gate)
	}
	if len(m.keys) > 0 {
		idxs, ok := sh.intersectLocked(m.keys)
		if !ok {
			return partials
		}
		for _, idx := range idxs {
			visit(&sh.entries[idx])
		}
		return partials
	}
	for _, idx := range sh.byTime {
		visit(&sh.entries[idx])
	}
	return partials
}

// fanShards runs fn(i) for every shard on a bounded worker pool.
func (s *Store) fanShards(fn func(i int)) { fanN(shardCount, fn) }

// fanN runs fn(0..n-1) on a worker pool sized by GOMAXPROCS — queries
// parallelize across head shards and sealed segments without spawning
// more runnable goroutines than there are CPUs to run them.
func fanN(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// mergeHits merges per-shard (Time, seq)-ordered hit slices into one
// entry slice in the same order. With a limit it merges backwards from
// the tails and stops after limit entries, so at most limit entries are
// ever materialized — each shard already trimmed itself to its own most
// recent limit, and the global answer is a subset of those tails.
func mergeHits(parts [][]hit, limit int) []*perflog.Entry {
	live := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
			total += len(p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		out := make([]*perflog.Entry, 0, len(live[0]))
		for _, h := range live[0] {
			out = append(out, h.e)
		}
		if limit > 0 && len(out) > limit {
			out = out[len(out)-limit:]
		}
		return out
	}
	if limit > 0 && limit < total {
		out := make([]*perflog.Entry, 0, limit)
		tails := make([]int, len(live))
		for i, p := range live {
			tails[i] = len(p)
		}
		for len(out) < limit {
			best := -1
			for i, p := range live {
				if tails[i] == 0 {
					continue
				}
				if best == -1 || hitLess(live[best][tails[best]-1], p[tails[i]-1]) {
					best = i
				}
			}
			if best == -1 {
				break
			}
			tails[best]--
			out = append(out, live[best][tails[best]].e)
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	out := make([]*perflog.Entry, 0, total)
	heads := make([]int, len(live))
	for len(out) < total {
		best := -1
		for i, p := range live {
			if heads[i] == len(p) {
				continue
			}
			if best == -1 || hitLess(p[heads[i]], live[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, live[best][heads[best]].e)
		heads[best]++
	}
	return out
}
