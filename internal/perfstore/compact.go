// The segment lifecycle: Seal freezes the head into a new immutable
// segment, Compact merges accumulated small segments into one, and
// evictSealed rewrites segments when a sealed-from perflog file is
// truncated. All three advance the manifest atomically, so every
// crash window resolves to either the old tier state or the new one.
package perfstore

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"time"

	"repro/internal/faultinject"
)

// Seal freezes the entire mutable head into one new sealed segment and
// advances the manifest's watermarks to the current ingest checkpoints,
// then clears the head. Returns the number of entries sealed (0 with
// nothing to do, or when the store has no data directory).
//
// Seal holds the checkpoint lock for its whole duration: SyncFile and
// Append serialize on the same lock, so the watermark snapshot, the
// head snapshot, and the head clear are one atomic cut of the ingest
// stream — an entry is either in the sealed segment and behind the
// watermark, or still in the unsealed perflog tail, never both.
//
// Crash safety: the segment file is written and fsynced before the
// manifest names it. A crash before the manifest swap leaves an orphan
// segment (swept by the next Open) and the old watermarks, so the
// entries are simply re-ingested from the perflog tail — nothing lost,
// nothing duplicated.
func (s *Store) Seal() (int, error) {
	if s.dataDir == "" {
		return 0, nil
	}
	start := time.Now()
	s.ckMu.Lock()
	defer s.ckMu.Unlock()

	var ents []stored
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for j := range sh.entries {
			st := sh.entries[j]
			if st.dead {
				continue
			}
			st.file = s.relSource(st.file)
			ents = append(ents, st)
		}
		sh.mu.RUnlock()
	}
	if len(ents) == 0 {
		return 0, nil
	}
	slices.SortFunc(ents, func(a, b stored) int {
		return cmpHits(hit{a.entry, a.t, a.seq}, hit{b.entry, b.t, b.seq})
	})

	s.seg.Lock()
	defer s.seg.Unlock()
	id := s.seg.man.NextSeg + 1
	info, err := writeSegmentFile(s.dataDir, id, ents)
	if err != nil {
		return 0, err
	}
	next := s.seg.man.clone()
	next.NextSeg = id
	next.Generation++
	if maxSeq := s.seq.Load(); maxSeq > next.MaxSeq {
		next.MaxSeq = maxSeq
	}
	for path, ck := range s.ck {
		next.Watermarks[s.relSource(path)] = ck.offset
	}
	next.Segments = append(next.Segments, info)
	if err := saveManifest(s.dataDir, next); err != nil {
		os.Remove(filepath.Join(s.dataDir, info.File))
		return 0, err
	}
	s.seg.man = next
	// The sealed arena is exactly the head we just snapshotted, so the
	// new segment starts resident — same *perflog.Entry pointers, no
	// decode — and only a post-restart load goes through the codec.
	s.seg.list = append(s.seg.list, &segment{
		dir:  s.dataDir,
		info: info,
		data: &segData{entries: ents, post: buildPostings(ents)},
	})
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.reset()
		sh.mu.Unlock()
	}
	s.gen.Add(1)
	metricSealsTotal.Inc()
	metricSealSeconds.Observe(time.Since(start).Seconds())
	return len(ents), nil
}

// MaybeSeal seals when the head has grown to at least threshold live
// entries — the maintenance loop's idempotent form.
func (s *Store) MaybeSeal(threshold int) (int, error) {
	if s.dataDir == "" || threshold <= 0 {
		return 0, nil
	}
	head := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		head += sh.live
		sh.mu.RUnlock()
	}
	if head < threshold {
		return 0, nil
	}
	return s.Seal()
}

// Compact merges all sealed segments into one when at least maxSegments
// have accumulated, bounding per-query fan-out and per-segment
// dictionary duplication. Returns whether a compaction ran.
//
// Compact takes only the segment lock — ingest and sealing are blocked
// for the manifest swap, but head queries proceed. The merged segment
// is written and fsynced before the manifest drops the old ones, so a
// mid-compaction crash leaves either the old segment set (plus an
// orphan merge file) or the new one — both complete.
func (s *Store) Compact(maxSegments int) (bool, error) {
	if s.dataDir == "" || maxSegments < 2 {
		return false, nil
	}
	start := time.Now()
	s.seg.Lock()
	defer s.seg.Unlock()
	if len(s.seg.list) < maxSegments {
		return false, nil
	}
	if err := faultinject.Fire("perfstore.compact"); err != nil {
		return false, fmt.Errorf("perfstore: compact: %w", err)
	}
	var ents []stored
	for _, g := range s.seg.list {
		d, err := g.load()
		if err != nil {
			return false, fmt.Errorf("perfstore: compact: %w", err)
		}
		ents = append(ents, d.entries...)
	}
	slices.SortFunc(ents, func(a, b stored) int {
		return cmpHits(hit{a.entry, a.t, a.seq}, hit{b.entry, b.t, b.seq})
	})
	id := s.seg.man.NextSeg + 1
	info, err := writeSegmentFile(s.dataDir, id, ents)
	if err != nil {
		return false, err
	}
	next := s.seg.man.clone()
	next.NextSeg = id
	next.Generation++
	next.Segments = []SegmentInfo{info}
	if err := saveManifest(s.dataDir, next); err != nil {
		os.Remove(filepath.Join(s.dataDir, info.File))
		return false, err
	}
	old := s.seg.man.Segments
	s.seg.man = next
	s.seg.list = []*segment{{
		dir:  s.dataDir,
		info: info,
		data: &segData{entries: ents, post: buildPostings(ents)},
	}}
	for _, oi := range old {
		os.Remove(filepath.Join(s.dataDir, oi.File))
	}
	s.gen.Add(1)
	metricCompactionsTotal.Inc()
	metricCompactSeconds.Observe(time.Since(start).Seconds())
	return true, nil
}

// evictSealed removes every sealed entry ingested from one perflog file
// — the sealed tier's leg of truncation recovery. Each affected segment
// is rewritten without the file's entries (or dropped outright if
// nothing survives), the manifest forgets the file's watermark, and the
// old segment files are deleted only after the new manifest is durable.
// Callers hold ckMu. Returns entries removed.
func (s *Store) evictSealed(path string) (int, error) {
	if s.dataDir == "" {
		return 0, nil
	}
	rel := s.relSource(path)
	s.seg.Lock()
	defer s.seg.Unlock()
	touched := false
	for _, g := range s.seg.list {
		if slices.Contains(g.info.Sources, rel) {
			touched = true
			break
		}
	}
	if _, ok := s.seg.man.Watermarks[rel]; !ok && !touched {
		return 0, nil
	}

	next := s.seg.man.clone()
	delete(next.Watermarks, rel)
	removed := 0
	var newList []*segment
	var newInfos []SegmentInfo
	var obsolete []string
	for _, g := range s.seg.list {
		if !slices.Contains(g.info.Sources, rel) {
			newList = append(newList, g)
			newInfos = append(newInfos, g.info)
			continue
		}
		d, err := g.load()
		if err != nil {
			return 0, fmt.Errorf("perfstore: evict sealed: %w", err)
		}
		kept := make([]stored, 0, len(d.entries))
		for _, st := range d.entries {
			if st.file == rel {
				removed++
				continue
			}
			kept = append(kept, st)
		}
		obsolete = append(obsolete, g.info.File)
		if len(kept) == 0 {
			continue
		}
		next.NextSeg++
		ni, err := writeSegmentFile(s.dataDir, next.NextSeg, kept)
		if err != nil {
			return 0, err
		}
		newList = append(newList, &segment{
			dir:  s.dataDir,
			info: ni,
			data: &segData{entries: kept, post: buildPostings(kept)},
		})
		newInfos = append(newInfos, ni)
	}
	next.Generation++
	next.Segments = newInfos
	if err := saveManifest(s.dataDir, next); err != nil {
		return 0, err
	}
	s.seg.man = next
	s.seg.list = newList
	for _, name := range obsolete {
		os.Remove(filepath.Join(s.dataDir, name))
	}
	return removed, nil
}
