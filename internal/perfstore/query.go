package perfstore

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/perflog"
)

// Query selects entries from the store. Zero-valued fields match
// everything.
type Query struct {
	System    string
	Benchmark string
	// FOM requires the named figure of merit to be present; it is also
	// the value column for Aggregate and Regressions.
	FOM string
	// Result filters on "pass"/"fail"; empty admits both.
	Result string
	// Extra filters on run parameters (num_tasks=8, ...); every pair
	// must match.
	Extra map[string]string
	// Since keeps entries with Time >= Since.
	Since time.Time
	// Limit keeps the most recent N matching entries (0 = all).
	Limit int
	// GroupBy names identity fields or extras to aggregate over.
	GroupBy []string
	// Agg selects the aggregate: min, max, mean, last, count.
	Agg string
}

// matcher is a Query compiled once per call: the extras map is
// flattened into a deterministic slice (no per-entry map iteration),
// the Since check is precomputed, and the posting-list keys for every
// indexed predicate are ready for the shard planner.
type matcher struct {
	q        Query
	extras   []extraKV
	hasSince bool
	// sinceNano is Since as the store's integer ordering key; every
	// path (index, time view, scan) filters with it so they agree on
	// the window boundary by construction.
	sinceNano int64
	// keys are the posting-list keys of the query's equality
	// predicates; empty means "everything matches except Since".
	keys []string
}

type extraKV struct{ k, v string }

func (q Query) compile() *matcher {
	m := &matcher{q: q, hasSince: !q.Since.IsZero()}
	if m.hasSince {
		m.sinceNano = timeNanos(q.Since)
	}
	if q.System != "" {
		m.keys = append(m.keys, keySystem(q.System))
	}
	if q.Benchmark != "" {
		m.keys = append(m.keys, keyBenchmark(q.Benchmark))
	}
	if q.Result != "" {
		m.keys = append(m.keys, keyResult(q.Result))
	}
	if q.FOM != "" {
		m.keys = append(m.keys, keyFOM(q.FOM))
	}
	if len(q.Extra) > 0 {
		m.extras = make([]extraKV, 0, len(q.Extra))
		for k, v := range q.Extra {
			m.extras = append(m.extras, extraKV{k, v})
			m.keys = append(m.keys, keyExtra(k, v))
		}
		sort.Slice(m.extras, func(i, j int) bool { return m.extras[i].k < m.extras[j].k })
	}
	return m
}

// matchEntry is the full per-entry equality predicate — the scan
// path's check, and the contract the index path is property-tested
// against. The Since window is filtered separately through the stored
// ordering key (matcher.sinceNano) so every path draws the boundary
// identically.
func (m *matcher) matchEntry(e *perflog.Entry) bool {
	q := &m.q
	if q.System != "" && e.System != q.System {
		return false
	}
	if q.Benchmark != "" && e.Benchmark != q.Benchmark {
		return false
	}
	if q.Result != "" && e.Result != q.Result {
		return false
	}
	if q.FOM != "" {
		if _, ok := e.FOMs[q.FOM]; !ok {
			return false
		}
	}
	for _, kv := range m.extras {
		if e.Extra[kv.k] != kv.v {
			return false
		}
	}
	return true
}

// groupField resolves one group-by field of an entry: the fixed
// identity columns first, then extras.
func groupField(e *perflog.Entry, key string) string {
	switch key {
	case "system":
		return e.System
	case "benchmark":
		return e.Benchmark
	case "partition":
		return e.Partition
	case "environ":
		return e.Environ
	case "spec":
		return e.Spec
	case "result":
		return e.Result
	}
	return e.Extra[key]
}

// groupKeyer renders group-by keys with the field resolvers bound once
// per query (not re-switched per entry) and a reused buffer, so keying
// an entry allocates nothing until a new group is actually inserted
// into a map (via string(raw)).
type groupKeyer struct {
	fields []func(e *perflog.Entry) string
	buf    []byte
}

func newGroupKeyer(groupBy []string) *groupKeyer {
	k := &groupKeyer{fields: make([]func(e *perflog.Entry) string, len(groupBy))}
	for i, name := range groupBy {
		switch name {
		case "system":
			k.fields[i] = func(e *perflog.Entry) string { return e.System }
		case "benchmark":
			k.fields[i] = func(e *perflog.Entry) string { return e.Benchmark }
		case "partition":
			k.fields[i] = func(e *perflog.Entry) string { return e.Partition }
		case "environ":
			k.fields[i] = func(e *perflog.Entry) string { return e.Environ }
		case "spec":
			k.fields[i] = func(e *perflog.Entry) string { return e.Spec }
		case "result":
			k.fields[i] = func(e *perflog.Entry) string { return e.Result }
		default:
			name := name
			k.fields[i] = func(e *perflog.Entry) string { return e.Extra[name] }
		}
	}
	return k
}

// raw renders the entry's group key into the keyer's reused buffer.
// The returned slice is only valid until the next call; map lookups on
// string(raw) stay allocation-free, and callers materialize a string
// only when inserting a new group.
func (k *groupKeyer) raw(e *perflog.Entry) []byte {
	k.buf = k.buf[:0]
	for i, f := range k.fields {
		if i > 0 {
			k.buf = append(k.buf, '/')
		}
		k.buf = append(k.buf, f(e)...)
	}
	return k.buf
}

// GroupKey joins the entry's group-by fields with "/" — the same shape
// perfplot regress prints.
func GroupKey(e *perflog.Entry, groupBy []string) string {
	return string(newGroupKeyer(groupBy).raw(e))
}

// aggNames is the vocabulary ParseQuery accepts for agg=.
var aggNames = map[string]bool{
	"min": true, "max": true, "mean": true, "last": true, "count": true,
}

// ParseQuery decodes URL query parameters (the GET /v1/query wire
// format, also fuzzed) into a Query. Recognised keys:
//
//	system, benchmark, fom, result, since (RFC3339), limit,
//	group_by (comma-separated), agg (min|max|mean|last|count),
//	extra.<key>=<value>
//
// Unknown keys are rejected so that typos fail loudly instead of
// silently matching everything.
func ParseQuery(rawQuery string) (Query, error) {
	var q Query
	values, err := url.ParseQuery(rawQuery)
	if err != nil {
		return q, fmt.Errorf("perfstore: bad query string: %w", err)
	}
	for key, vals := range values {
		val := vals[len(vals)-1]
		switch key {
		case "system":
			q.System = val
		case "benchmark":
			q.Benchmark = val
		case "fom":
			q.FOM = val
		case "result":
			if val != "pass" && val != "fail" && val != "" {
				return q, fmt.Errorf("perfstore: result must be pass or fail, got %q", val)
			}
			q.Result = val
		case "since":
			t, err := time.Parse(time.RFC3339, val)
			if err != nil {
				return q, fmt.Errorf("perfstore: bad since timestamp %q", val)
			}
			q.Since = t
		case "limit":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return q, fmt.Errorf("perfstore: bad limit %q", val)
			}
			q.Limit = n
		case "group_by":
			for _, f := range strings.Split(val, ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return q, fmt.Errorf("perfstore: empty group_by field")
				}
				q.GroupBy = append(q.GroupBy, f)
			}
		case "agg":
			if !aggNames[val] {
				return q, fmt.Errorf("perfstore: unknown agg %q (want min|max|mean|last|count)", val)
			}
			q.Agg = val
		default:
			if name, ok := strings.CutPrefix(key, "extra."); ok && name != "" {
				if q.Extra == nil {
					q.Extra = map[string]string{}
				}
				q.Extra[name] = val
				continue
			}
			return q, fmt.Errorf("perfstore: unknown query key %q", key)
		}
	}
	if q.Agg != "" && q.Agg != "count" && q.FOM == "" {
		return q, fmt.Errorf("perfstore: agg=%s needs fom=", q.Agg)
	}
	return q, nil
}

// Encode renders the query in the GET /v1/query wire format, with keys
// sorted — a canonical form: any query ParseQuery accepts round-trips
// through Encode to an equivalent Query (fuzzed), and equal queries
// encode identically, which makes Encode a cache key.
func (q Query) Encode() string {
	v := url.Values{}
	if q.System != "" {
		v.Set("system", q.System)
	}
	if q.Benchmark != "" {
		v.Set("benchmark", q.Benchmark)
	}
	if q.FOM != "" {
		v.Set("fom", q.FOM)
	}
	if q.Result != "" {
		v.Set("result", q.Result)
	}
	for k, val := range q.Extra {
		v.Set("extra."+k, val)
	}
	if !q.Since.IsZero() {
		// Nano form: ParseQuery accepts fractional seconds, so Encode
		// must not drop them or the round-trip would lose time.
		v.Set("since", q.Since.Format(time.RFC3339Nano))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if len(q.GroupBy) > 0 {
		v.Set("group_by", strings.Join(q.GroupBy, ","))
	}
	if q.Agg != "" {
		v.Set("agg", q.Agg)
	}
	return v.Encode()
}

// Aggregate is one group's summary over a FOM. Entries whose repetition
// RSD trips the store's variance gate are counted in Count and Unstable
// but excluded from Min/Max/Mean/Last: a mean polluted by runs the
// protocol itself measured as noise would misreport the group.
type Aggregate struct {
	Group string  `json:"group"`
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
	Unit  string  `json:"unit,omitempty"`
	// Unstable counts entries excluded by the variance gate.
	Unstable int `json:"unstable,omitempty"`
}

// entryUnstable reports whether an entry's FOM trips the variance gate:
// it carries repetition stats (n >= 2) whose RSD exceeds the gate.
func entryUnstable(e *perflog.Entry, fomName string, gate float64) bool {
	if gate <= 0 || fomName == "" {
		return false
	}
	s, ok := e.RepStats(fomName)
	return ok && s.N >= 2 && s.RSD > gate
}

// partialAgg is one group's running summary inside a single shard —
// the unit of Aggregate's map-merge. (lastT, lastSeq) identify the
// group's latest entry in global (time, ingest) order, so merging
// partials from different shards still yields the true Last.
type partialAgg struct {
	group    string
	count    int
	stable   int // entries contributing to min/max/sum/last
	unstable int // entries excluded by the variance gate
	min, max float64
	sum      float64
	last     float64
	lastT    int64 // timeNanos of the entry that supplied last
	lastSeq  uint64
	unit     string
}

func newPartialAgg(group string) *partialAgg {
	return &partialAgg{group: group, min: math.Inf(1), max: math.Inf(-1)}
}

func (p *partialAgg) observe(st *stored, fomName string, gate float64) {
	p.count++
	if fomName == "" {
		return
	}
	if entryUnstable(st.entry, fomName, gate) {
		p.unstable++
		return
	}
	p.stable++
	v := st.entry.FOMs[fomName]
	p.min = math.Min(p.min, v.Value)
	p.max = math.Max(p.max, v.Value)
	p.sum += v.Value
	if p.stable == 1 || st.t > p.lastT || (st.t == p.lastT && st.seq > p.lastSeq) {
		p.last = v.Value
		p.lastT = st.t
		p.lastSeq = st.seq
		p.unit = v.Unit
	}
}

func (p *partialAgg) merge(o *partialAgg) {
	p.count += o.count
	p.unstable += o.unstable
	p.min = math.Min(p.min, o.min)
	p.max = math.Max(p.max, o.max)
	p.sum += o.sum
	if o.stable > 0 && (p.stable == 0 || o.lastT > p.lastT || (o.lastT == p.lastT && o.lastSeq > p.lastSeq)) {
		p.last = o.last
		p.lastT = o.lastT
		p.lastSeq = o.lastSeq
		p.unit = o.unit
	}
	p.stable += o.stable
}

// Aggregate groups the matching entries by q.GroupBy (default
// system,benchmark) and summarises q.FOM per group: min, max, mean, and
// the latest value by timestamp. With Agg=count, q.FOM may be empty and
// only Count is meaningful.
//
// Without a Limit the shards aggregate independently (each over its own
// posting-list intersection or time view) and the per-group partials
// are map-merged — no entry slice is ever materialized. A Limit makes
// the group contents depend on the global most-recent cut, so that case
// aggregates over Select's bounded result instead.
func (s *Store) Aggregate(q Query) ([]Aggregate, error) {
	if q.FOM == "" && q.Agg != "count" {
		return nil, fmt.Errorf("perfstore: aggregate needs Query.FOM")
	}
	groupBy := q.GroupBy
	if len(groupBy) == 0 {
		groupBy = []string{"system", "benchmark"}
	}
	gate := s.rsdGate()
	if q.Limit > 0 {
		return aggregateEntries(s.Select(q), groupBy, q.FOM, gate), nil
	}
	m := q.compile()
	s.seg.RLock()
	defer s.seg.RUnlock()
	segs := s.seg.list
	parts := make([]map[string]*partialAgg, shardCount+len(segs))
	fanN(len(parts), func(i int) {
		if i < shardCount {
			parts[i] = s.shards[i].aggregate(m, newGroupKeyer(groupBy), q.FOM, gate)
		} else {
			parts[i] = segs[i-shardCount].aggregate(s, m, newGroupKeyer(groupBy), q.FOM, gate)
		}
	})
	merged := map[string]*partialAgg{}
	for _, part := range parts {
		for key, pa := range part {
			if cur := merged[key]; cur != nil {
				cur.merge(pa)
			} else {
				merged[key] = pa
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for key := range merged {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]Aggregate, 0, len(keys))
	for _, key := range keys {
		pa := merged[key]
		agg := Aggregate{Group: pa.group, Count: pa.count, Unstable: pa.unstable}
		if q.FOM != "" && pa.stable > 0 {
			agg.Min, agg.Max = pa.min, pa.max
			agg.Mean = pa.sum / float64(pa.stable)
			agg.Last = pa.last
			agg.Unit = pa.unit
		}
		out = append(out, agg)
	}
	return out, nil
}

// aggregateEntries is the sequential aggregation over an already
// selected, time-ascending entry slice — the pre-index reference the
// property tests compare the map-merge path against, and the path
// Aggregate takes when a Limit bounds the match set.
func aggregateEntries(entries []*perflog.Entry, groupBy []string, fomName string, gate float64) []Aggregate {
	keyer := newGroupKeyer(groupBy)
	byGroup := map[string]*Aggregate{}
	stableCount := map[string]int{}
	var order []string
	for _, e := range entries {
		raw := keyer.raw(e)
		agg := byGroup[string(raw)]
		if agg == nil {
			key := string(raw)
			agg = &Aggregate{Group: key, Min: math.Inf(1), Max: math.Inf(-1)}
			byGroup[key] = agg
			order = append(order, key)
		}
		agg.Count++
		if fomName == "" {
			continue
		}
		if entryUnstable(e, fomName, gate) {
			agg.Unstable++
			continue
		}
		stableCount[agg.Group]++
		v := e.FOMs[fomName]
		agg.Unit = v.Unit
		agg.Min = math.Min(agg.Min, v.Value)
		agg.Max = math.Max(agg.Max, v.Value)
		agg.Mean += v.Value // sum; divided below
		agg.Last = v.Value  // entries are time-ascending
	}
	sort.Strings(order)
	out := make([]Aggregate, 0, len(order))
	for _, key := range order {
		agg := byGroup[key]
		if fomName != "" && stableCount[key] > 0 {
			agg.Mean /= float64(stableCount[key])
		} else {
			agg.Min, agg.Max = 0, 0
		}
		out = append(out, *agg)
	}
	return out
}
