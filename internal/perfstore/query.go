package perfstore

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/perflog"
)

// Query selects entries from the store. Zero-valued fields match
// everything.
type Query struct {
	System    string
	Benchmark string
	// FOM requires the named figure of merit to be present; it is also
	// the value column for Aggregate and Regressions.
	FOM string
	// Result filters on "pass"/"fail"; empty admits both.
	Result string
	// Extra filters on run parameters (num_tasks=8, ...); every pair
	// must match.
	Extra map[string]string
	// Since keeps entries with Time >= Since.
	Since time.Time
	// Limit keeps the most recent N matching entries (0 = all).
	Limit int
	// GroupBy names identity fields or extras to aggregate over.
	GroupBy []string
	// Agg selects the aggregate: min, max, mean, last, count.
	Agg string
}

func (q *Query) matches(e *perflog.Entry) bool {
	if q.System != "" && e.System != q.System {
		return false
	}
	if q.Benchmark != "" && e.Benchmark != q.Benchmark {
		return false
	}
	if q.Result != "" && e.Result != q.Result {
		return false
	}
	if q.FOM != "" {
		if _, ok := e.FOMs[q.FOM]; !ok {
			return false
		}
	}
	if !q.Since.IsZero() && e.Time.Before(q.Since) {
		return false
	}
	for k, v := range q.Extra {
		if e.Extra[k] != v {
			return false
		}
	}
	return true
}

// groupField resolves one group-by field of an entry: the fixed
// identity columns first, then extras.
func groupField(e *perflog.Entry, key string) string {
	switch key {
	case "system":
		return e.System
	case "benchmark":
		return e.Benchmark
	case "partition":
		return e.Partition
	case "environ":
		return e.Environ
	case "spec":
		return e.Spec
	case "result":
		return e.Result
	}
	return e.Extra[key]
}

// GroupKey joins the entry's group-by fields with "/" — the same shape
// perfplot regress prints.
func GroupKey(e *perflog.Entry, groupBy []string) string {
	parts := make([]string, len(groupBy))
	for i, k := range groupBy {
		parts[i] = groupField(e, k)
	}
	return strings.Join(parts, "/")
}

// aggNames is the vocabulary ParseQuery accepts for agg=.
var aggNames = map[string]bool{
	"min": true, "max": true, "mean": true, "last": true, "count": true,
}

// ParseQuery decodes URL query parameters (the GET /v1/query wire
// format, also fuzzed) into a Query. Recognised keys:
//
//	system, benchmark, fom, result, since (RFC3339), limit,
//	group_by (comma-separated), agg (min|max|mean|last|count),
//	extra.<key>=<value>
//
// Unknown keys are rejected so that typos fail loudly instead of
// silently matching everything.
func ParseQuery(rawQuery string) (Query, error) {
	var q Query
	values, err := url.ParseQuery(rawQuery)
	if err != nil {
		return q, fmt.Errorf("perfstore: bad query string: %w", err)
	}
	for key, vals := range values {
		val := vals[len(vals)-1]
		switch key {
		case "system":
			q.System = val
		case "benchmark":
			q.Benchmark = val
		case "fom":
			q.FOM = val
		case "result":
			if val != "pass" && val != "fail" && val != "" {
				return q, fmt.Errorf("perfstore: result must be pass or fail, got %q", val)
			}
			q.Result = val
		case "since":
			t, err := time.Parse(time.RFC3339, val)
			if err != nil {
				return q, fmt.Errorf("perfstore: bad since timestamp %q", val)
			}
			q.Since = t
		case "limit":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return q, fmt.Errorf("perfstore: bad limit %q", val)
			}
			q.Limit = n
		case "group_by":
			for _, f := range strings.Split(val, ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return q, fmt.Errorf("perfstore: empty group_by field")
				}
				q.GroupBy = append(q.GroupBy, f)
			}
		case "agg":
			if !aggNames[val] {
				return q, fmt.Errorf("perfstore: unknown agg %q (want min|max|mean|last|count)", val)
			}
			q.Agg = val
		default:
			if name, ok := strings.CutPrefix(key, "extra."); ok && name != "" {
				if q.Extra == nil {
					q.Extra = map[string]string{}
				}
				q.Extra[name] = val
				continue
			}
			return q, fmt.Errorf("perfstore: unknown query key %q", key)
		}
	}
	if q.Agg != "" && q.Agg != "count" && q.FOM == "" {
		return q, fmt.Errorf("perfstore: agg=%s needs fom=", q.Agg)
	}
	return q, nil
}

// Aggregate is one group's summary over a FOM.
type Aggregate struct {
	Group string  `json:"group"`
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
	Unit  string  `json:"unit,omitempty"`
}

// Aggregate groups the matching entries by q.GroupBy (default
// system,benchmark) and summarises q.FOM per group: min, max, mean, and
// the latest value by timestamp. With Agg=count, q.FOM may be empty and
// only Count is meaningful.
func (s *Store) Aggregate(q Query) ([]Aggregate, error) {
	if q.FOM == "" && q.Agg != "count" {
		return nil, fmt.Errorf("perfstore: aggregate needs Query.FOM")
	}
	groupBy := q.GroupBy
	if len(groupBy) == 0 {
		groupBy = []string{"system", "benchmark"}
	}
	entries := s.Select(q) // already time-ordered
	byGroup := map[string]*Aggregate{}
	var order []string
	for _, e := range entries {
		key := GroupKey(e, groupBy)
		agg := byGroup[key]
		if agg == nil {
			agg = &Aggregate{Group: key, Min: math.Inf(1), Max: math.Inf(-1)}
			byGroup[key] = agg
			order = append(order, key)
		}
		agg.Count++
		if q.FOM == "" {
			continue
		}
		v := e.FOMs[q.FOM]
		agg.Unit = v.Unit
		agg.Min = math.Min(agg.Min, v.Value)
		agg.Max = math.Max(agg.Max, v.Value)
		agg.Mean += v.Value // sum; divided below
		agg.Last = v.Value  // entries are time-ascending
	}
	sort.Strings(order)
	out := make([]Aggregate, 0, len(order))
	for _, key := range order {
		agg := byGroup[key]
		if q.FOM != "" && agg.Count > 0 {
			agg.Mean /= float64(agg.Count)
		} else {
			agg.Min, agg.Max = 0, 0
		}
		out = append(out, *agg)
	}
	return out, nil
}
