package perfstore

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/fom"
	"repro/internal/perflog"
)

// randEntry builds one synthetic entry from a seeded PRNG. The value
// pools are small on purpose: queries then hit real overlaps between
// posting lists.
func randEntry(rng *rand.Rand, i int) *perflog.Entry {
	systems := []string{"archer2", "csd3", "cosma8", "isambard-macs", "paderborn-milan"}
	benchmarks := []string{"hpgmg-fv", "hpcg", "babelstream-omp"}
	results := []string{"pass", "pass", "pass", "fail"}
	e := &perflog.Entry{
		// Timestamps deliberately collide and arrive out of order: the
		// (time, seq) tie-break and the byTime insert path both get
		// exercised.
		Time:      t0.Add(time.Duration(rng.Intn(500)) * time.Minute),
		Benchmark: benchmarks[rng.Intn(len(benchmarks))],
		System:    systems[rng.Intn(len(systems))],
		Partition: "compute",
		Environ:   "gcc",
		JobID:     i,
		Result:    results[rng.Intn(len(results))],
		FOMs:      map[string]fom.Value{},
		Extra:     map[string]string{"num_tasks": strconv.Itoa(8 << rng.Intn(3))},
	}
	e.Spec = e.Benchmark + "%gcc"
	e.FOMs["l0"] = fom.Value{Name: "l0", Value: 50 + rng.Float64()*100, Unit: "MDOF/s"}
	if rng.Intn(2) == 0 {
		e.FOMs["l1"] = fom.Value{Name: "l1", Value: 40 + rng.Float64()*80, Unit: "MDOF/s"}
	}
	if rng.Intn(4) == 0 {
		e.Extra["gpu"] = "v100"
	}
	return e
}

// memStore indexes n random entries directly (no disk), deterministic
// in the seed.
func memStore(seed int64, n int) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := Open("unused")
	for i := 0; i < n; i++ {
		s.add(randEntry(rng, i), "mem.log")
	}
	return s
}

// randQuery draws a query whose predicates sometimes match and
// sometimes cannot (unknown system, absent FOM), covering both planner
// outcomes.
func randQuery(rng *rand.Rand) Query {
	var q Query
	if rng.Intn(2) == 0 {
		q.System = []string{"archer2", "csd3", "cosma8", "no-such-system"}[rng.Intn(4)]
	}
	if rng.Intn(2) == 0 {
		q.Benchmark = []string{"hpgmg-fv", "hpcg", "babelstream-omp", "nope"}[rng.Intn(4)]
	}
	if rng.Intn(3) == 0 {
		q.Result = []string{"pass", "fail"}[rng.Intn(2)]
	}
	if rng.Intn(3) == 0 {
		q.FOM = []string{"l0", "l1", "absent"}[rng.Intn(3)]
	}
	if rng.Intn(3) == 0 {
		q.Extra = map[string]string{"num_tasks": strconv.Itoa(8 << rng.Intn(4))}
		if rng.Intn(3) == 0 {
			q.Extra["gpu"] = "v100"
		}
	}
	if rng.Intn(3) == 0 {
		q.Since = t0.Add(time.Duration(rng.Intn(600)-50) * time.Minute)
	}
	if rng.Intn(3) == 0 {
		q.Limit = 1 + rng.Intn(40)
	}
	return q
}

func sameEntries(a, b []*perflog.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // pointer identity: byte-identical by construction
			return false
		}
	}
	return true
}

// TestSelectIndexMatchesScan is the index-correctness property test:
// for randomized stores and randomized queries, the posting-list /
// time-view plan must return exactly the slice the reference linear
// scan returns — same entries, same order.
func TestSelectIndexMatchesScan(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s := memStore(seed, 2000)
		rng := rand.New(rand.NewSource(seed * 77))
		for trial := 0; trial < 300; trial++ {
			q := randQuery(rng)
			got := s.Select(q)
			want := s.selectScan(q)
			if !sameEntries(got, want) {
				t.Fatalf("seed %d trial %d: index path diverged from scan path\nquery %+v\ngot  %d entries\nwant %d entries",
					seed, trial, q, len(got), len(want))
			}
		}
	}
}

// TestAggregateIndexMatchesScan checks the map-merged parallel
// aggregation against the sequential reference over the scan path.
// Count, Min, Max, Last, Unit, and Group must be identical; Mean is
// compared within floating-point tolerance because the partial sums
// legitimately reduce in a different order.
func TestAggregateIndexMatchesScan(t *testing.T) {
	s := memStore(9, 3000)
	rng := rand.New(rand.NewSource(99))
	groupChoices := [][]string{nil, {"system"}, {"system", "benchmark"}, {"result", "num_tasks"}}
	for trial := 0; trial < 200; trial++ {
		q := randQuery(rng)
		q.FOM = []string{"l0", "l1"}[rng.Intn(2)]
		q.GroupBy = groupChoices[rng.Intn(len(groupChoices))]
		got, err := s.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		groupBy := q.GroupBy
		if len(groupBy) == 0 {
			groupBy = []string{"system", "benchmark"}
		}
		want := aggregateEntries(s.selectScan(q), groupBy, q.FOM, s.rsdGate())
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d (query %+v)", trial, len(got), len(want), q)
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Group != w.Group || g.Count != w.Count || g.Min != w.Min ||
				g.Max != w.Max || g.Last != w.Last || g.Unit != w.Unit {
				t.Fatalf("trial %d group %q: got %+v want %+v (query %+v)", trial, w.Group, g, w, q)
			}
			if math.Abs(g.Mean-w.Mean) > 1e-9*math.Max(1, math.Abs(w.Mean)) {
				t.Fatalf("trial %d group %q: mean %g want %g", trial, w.Group, g.Mean, w.Mean)
			}
		}
	}
}

// TestRegressionsIndexMatchesScan: the regression evaluator over the
// parallel Select must agree exactly with the reference grouping over
// the scan path — the per-group series are identical slices, so the
// float math is bit-identical.
func TestRegressionsIndexMatchesScan(t *testing.T) {
	s := memStore(5, 3000)
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		q := randQuery(rng)
		q.FOM = "l0"
		q.GroupBy = []string{"system", "benchmark"}
		got, err := s.Regressions(q, 0.1, 5)
		if err != nil {
			t.Fatal(err)
		}
		series := map[string][]float64{}
		for _, e := range s.selectScan(q) {
			key := GroupKey(e, q.GroupBy)
			series[key] = append(series[key], e.FOMs[q.FOM].Value)
		}
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var want []Report
		for _, key := range keys {
			r, ok := EvalSeries(series[key], 0.1, 5)
			if !ok {
				continue
			}
			r.Group = key
			want = append(want, r)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: regressions diverged\ngot  %+v\nwant %+v\nquery %+v", trial, got, want, q)
		}
	}
}

// TestSelectLimitAcrossShards pins the bounded merge: with tied
// timestamps spread over many shards, Limit must keep exactly the
// globally most recent entries in (time, ingest) order.
func TestSelectLimitAcrossShards(t *testing.T) {
	s := Open("unused")
	var all []*perflog.Entry
	for i := 0; i < 200; i++ {
		e := entry(fmt.Sprintf("sys-%02d", i%23), "bench", i, t0.Add(time.Duration(i%7)*time.Hour), map[string]float64{"l0": float64(i)})
		s.add(e, "mem.log")
		all = append(all, e)
	}
	for _, limit := range []int{1, 3, 17, 199, 200, 500} {
		got := s.Select(Query{Limit: limit})
		want := s.selectScan(Query{Limit: limit})
		if !sameEntries(got, want) {
			t.Fatalf("limit %d: merge diverged (%d vs %d entries)", limit, len(got), len(want))
		}
		if limit < len(all) && len(got) != limit {
			t.Fatalf("limit %d returned %d entries", limit, len(got))
		}
	}
}

// TestEvictionKeepsIndexConsistent drives repeated truncation/rewrite
// cycles through SyncFile — enough of them to force shard compaction —
// and after every cycle the indexed results must match both the
// reference scan and a from-scratch store over the same tree.
func TestEvictionKeepsIndexConsistent(t *testing.T) {
	root := t.TempDir()
	s := Open(root)
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	for cycle := 0; cycle < 8; cycle++ {
		// Rewrite the file with a fresh population, shrinking and growing
		// across cycles so both the evict path and plain appends run.
		n := 3 + (cycle*5)%11
		var lines []byte
		for i := 0; i < n; i++ {
			e := entry("archer2", "hpgmg-fv", cycle*100+i, t0.Add(time.Duration(i)*time.Minute), map[string]float64{"l0": float64(i)})
			lines = append(lines, (e.Line() + "\n")...)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		// Truncate-then-rewrite, syncing in between: the shrink below the
		// checkpoint is what the store defines as a rewrite (a same-size
		// or longer rewrite is indistinguishable from an append).
		if cycle > 0 {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
			if err := s.SyncFile(path); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(path, lines, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.SyncFile(path); err != nil {
			t.Fatal(err)
		}
		// Keep a second, untouched system in play so eviction filtering
		// has innocent bystanders to preserve.
		if cycle == 0 {
			e := entry("csd3", "hpgmg-fv", 1, t0, map[string]float64{"l0": 126})
			if err := s.Append("csd3", "hpgmg-fv", e); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range []Query{{}, {System: "archer2"}, {System: "csd3"}, {Benchmark: "hpgmg-fv", Limit: 4}, {FOM: "l0", Since: t0.Add(3 * time.Minute)}} {
			if got, want := s.Select(q), s.selectScan(q); !sameEntries(got, want) {
				t.Fatalf("cycle %d query %+v: index diverged after eviction (%d vs %d)", cycle, q, len(got), len(want))
			}
		}
		clean := Open(root)
		if err := clean.Sync(); err != nil {
			t.Fatal(err)
		}
		if got, want := len(s.Select(Query{})), len(clean.Select(Query{})); got != want {
			t.Fatalf("cycle %d: incremental store has %d entries, clean rebuild %d", cycle, got, want)
		}
	}
}

// TestInterleavedAppendEvictSelect is the -race index-consistency test:
// concurrent writers append through the store, a truncator repeatedly
// rewrites its own file (forcing evictions), and readers run the full
// query surface throughout. Afterwards the store must converge to
// filesystem truth and the index must still agree with the scan path.
func TestInterleavedAppendEvictSelect(t *testing.T) {
	root := t.TempDir()
	s := Open(root)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Select(Query{System: "archer2", FOM: "l0"})
				s.Select(Query{Limit: 5})
				s.Aggregate(Query{FOM: "l0", GroupBy: []string{"system"}})
				s.Regressions(Query{FOM: "l0"}, 0.1, 3)
				s.Systems()
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			sys := []string{"archer2", "csd3", "cosma8"}[w]
			for i := 0; i < 20; i++ {
				e := entry(sys, "hpgmg-fv", w*1000+i, t0.Add(time.Duration(i)*time.Minute), map[string]float64{"l0": 90 + float64(i)})
				if err := s.Append(sys, "hpgmg-fv", e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// The truncator owns its file exclusively: rewrite-shorter then
	// re-sync, over and over, exercising evict + re-ingest against the
	// readers and the other writers.
	writers.Add(1)
	go func() {
		defer writers.Done()
		path := filepath.Join(root, "volatile", "bench.log")
		for i := 0; i < 15; i++ {
			n := 1 + i%4
			var lines []byte
			for j := 0; j < n; j++ {
				e := entry("volatile", "bench", i*10+j, t0.Add(time.Duration(j)*time.Minute), map[string]float64{"l0": float64(j)})
				lines = append(lines, (e.Line() + "\n")...)
			}
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Error(err)
				return
			}
			if i > 0 {
				// Shrink to zero first so the store sees a rewrite, not
				// an ambiguous same-length append.
				if err := os.Truncate(path, 0); err != nil {
					t.Error(err)
					return
				}
				if err := s.SyncFile(path); err != nil {
					t.Error(err)
					return
				}
			}
			if err := os.WriteFile(path, lines, 0o644); err != nil {
				t.Error(err)
				return
			}
			if err := s.SyncFile(path); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	clean := Open(root)
	if err := clean.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != clean.Len() {
		t.Fatalf("store diverged from filesystem truth: %d vs %d entries", s.Len(), clean.Len())
	}
	for _, q := range []Query{{}, {System: "archer2"}, {System: "volatile"}, {FOM: "l0", Limit: 7}} {
		if got, want := s.Select(q), s.selectScan(q); !sameEntries(got, want) {
			t.Fatalf("query %+v: index diverged from scan after interleaving", q)
		}
	}
}

// TestGenerationTracksMutations pins the staleness contract the service
// cache relies on: reads leave the generation alone, adds and evictions
// move it.
func TestGenerationTracksMutations(t *testing.T) {
	root := t.TempDir()
	s := Open(root)
	g0 := s.Generation()
	s.Select(Query{})
	if _, err := s.Aggregate(Query{Agg: "count"}); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0 {
		t.Fatal("reads moved the generation")
	}
	e := entry("archer2", "hpgmg-fv", 1, t0, map[string]float64{"l0": 95})
	if err := s.Append("archer2", "hpgmg-fv", e); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if g1 == g0 {
		t.Fatal("append did not move the generation")
	}
	if err := s.Sync(); err != nil { // no-op re-sync
		t.Fatal(err)
	}
	if s.Generation() != g1 {
		t.Fatal("no-op sync moved the generation")
	}
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == g1 {
		t.Fatal("eviction did not move the generation")
	}
}

// TestQueryEncodeRoundTrips pins Encode as a canonical form on a few
// handwritten queries (the fuzz target covers the parser-accepted
// space).
func TestQueryEncodeRoundTrips(t *testing.T) {
	qs := []Query{
		{},
		{System: "archer2", Benchmark: "hpgmg-fv", Limit: 10},
		{FOM: "l0", Agg: "mean", GroupBy: []string{"system", "benchmark"}},
		{Extra: map[string]string{"num_tasks": "8", "gpu": "v100"}, Result: "pass"},
		{Since: time.Date(2023, 7, 7, 10, 0, 0, 500_000_000, time.UTC)},
	}
	for _, q := range qs {
		enc := q.Encode()
		back, err := ParseQuery(enc)
		if err != nil {
			t.Fatalf("Encode produced unparseable %q: %v", enc, err)
		}
		if back.Encode() != enc {
			t.Fatalf("round trip not canonical: %q -> %q", enc, back.Encode())
		}
		if !back.Since.Equal(q.Since) {
			t.Fatalf("since lost in round trip: %v -> %v", q.Since, back.Since)
		}
	}
}
