package perfstore

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/perflog"
)

func newBenchRNG() *rand.Rand { return rand.New(rand.NewSource(2)) }

// benchStore is shared across the BenchmarkStore* suite: building a
// 100k-entry store takes ~1s, so it is paid once per `go test -bench`
// invocation, not once per sub-benchmark.
var benchStore *Store

func benchStoreN(b *testing.B, n int) *Store {
	b.Helper()
	if benchStore == nil || benchStore.Len() != n {
		benchStore = memStore(1, n)
	}
	return benchStore
}

const benchN = 100_000

// selectiveQuery matches one (system, benchmark, extra) slice of the
// store — the dashboard-style lookup the posting-list planner exists
// for. On the 5×3 value pools of randEntry it keeps roughly 1/30 of
// the entries.
func selectiveQuery() Query {
	return Query{
		System:    "archer2",
		Benchmark: "hpgmg-fv",
		Extra:     map[string]string{"num_tasks": "8"},
	}
}

func BenchmarkStoreSelect(b *testing.B) {
	s := benchStoreN(b, benchN)
	q := selectiveQuery()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(s.Select(q)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(s.selectScan(q)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

func BenchmarkStoreSelectLimit(b *testing.B) {
	s := benchStoreN(b, benchN)
	q := selectiveQuery()
	q.Limit = 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.Select(q)) != 20 {
			b.Fatal("short result")
		}
	}
}

func BenchmarkStoreSelectSince(b *testing.B) {
	s := benchStoreN(b, benchN)
	// A narrow trailing time window: the byTime view binary-searches to
	// the start instead of scanning 100k entries.
	q := Query{Since: t0.Add(490 * time.Minute)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.Select(q)) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkStoreAggregate(b *testing.B) {
	s := benchStoreN(b, benchN)
	q := selectiveQuery()
	q.FOM = "l0"
	q.Agg = "mean"
	q.GroupBy = []string{"system", "benchmark"}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			aggs, err := s.Aggregate(q)
			if err != nil || len(aggs) == 0 {
				b.Fatalf("aggregate: %v (%d groups)", err, len(aggs))
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			aggs := aggregateEntries(s.selectScan(q), q.GroupBy, q.FOM, s.rsdGate())
			if len(aggs) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}

// BenchmarkStoreAggregateAll group-bys the whole store (no selective
// predicate): the win here is the parallel per-shard partials, not the
// index.
func BenchmarkStoreAggregateAll(b *testing.B) {
	s := benchStoreN(b, benchN)
	q := Query{FOM: "l0", Agg: "mean", GroupBy: []string{"system", "benchmark"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aggs, err := s.Aggregate(q)
		if err != nil || len(aggs) == 0 {
			b.Fatalf("aggregate: %v", err)
		}
	}
}

func BenchmarkStoreRegressions(b *testing.B) {
	s := benchStoreN(b, benchN)
	q := Query{System: "archer2", FOM: "l0", GroupBy: []string{"system", "benchmark"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reports, err := s.Regressions(q, 0.1, 0)
		if err != nil || len(reports) == 0 {
			b.Fatalf("regressions: %v", err)
		}
	}
}

// BenchmarkStoreGroupKey measures the per-entry keying cost that
// Aggregate and Regressions pay in their inner loops.
func BenchmarkStoreGroupKey(b *testing.B) {
	e := randEntry(newBenchRNG(), 0)
	k := newGroupKeyer([]string{"system", "benchmark", "extra.num_tasks"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(k.raw(e)) == 0 {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkStoreAppend is the per-entry ingest cost with index
// maintenance included (no disk: add() only).
func BenchmarkStoreAppend(b *testing.B) {
	rng := newBenchRNG()
	pool := make([]*perflog.Entry, 4096)
	for i := range pool {
		pool[i] = randEntry(rng, i)
	}
	s := Open("unused")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.add(pool[i%len(pool)], "mem.log")
	}
}
