package perfstore

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/perflog"
)

// loadFaults arms the process-wide fault injector for one test.
func loadFaults(t *testing.T, seed int64, schedule string) {
	t.Helper()
	rules, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
}

// tieredQueries is the query battery the tier-equivalence tests run —
// every plan shape: full scan, postings, time window, bounded tail,
// and combinations.
func tieredQueries() []Query {
	return []Query{
		{},
		{System: "archer2"},
		{Benchmark: "hpgmg-fv", Result: "pass"},
		{FOM: "l0", Since: t0.Add(90 * time.Minute)},
		{Limit: 7},
		{System: "csd3", Limit: 3},
		{Extra: map[string]string{"num_tasks": "8"}},
		{Since: t0.Add(-time.Hour)},
		{Since: t0.Add(1000 * time.Hour)},
	}
}

// aggApproxEqual compares aggregate rows exactly in every field except
// Mean, which may differ in the last ulps: the tiered store merges
// per-tier partial sums, and float addition is not associative across
// partition boundaries. Min/Max/Last/Count are order-independent and
// must match bit-for-bit.
func aggApproxEqual(got, want []Aggregate) error {
	if len(got) != len(want) {
		return fmt.Errorf("row count %d vs %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Group != w.Group || g.Count != w.Count || g.Min != w.Min || g.Max != w.Max || g.Last != w.Last || g.Unit != w.Unit {
			return fmt.Errorf("row %d: %+v vs %+v", i, g, w)
		}
		if diff := math.Abs(g.Mean - w.Mean); diff > 1e-9*math.Max(math.Abs(g.Mean), 1) {
			return fmt.Errorf("row %d: mean %v vs %v", i, g.Mean, w.Mean)
		}
	}
	return nil
}

// sameLines compares two result slices by canonical perflog line — the
// cross-boot equality notion (pointer identity cannot survive a
// restart, byte identity must).
func sameLines(a, b []*perflog.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Line() != b[i].Line() {
			return false
		}
	}
	return true
}

// TestTieredSealAndQuery: sealing must be invisible to queries — the
// same entries come back, in the same order, with the head empty and
// the segment answering. In-process the sealed arena keeps the same
// entry pointers, so pointer-identity comparison against the reference
// scan still holds.
func TestTieredSealAndQuery(t *testing.T) {
	root := seedTree(t)
	s, err := OpenTiered(root, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := map[string][]*perflog.Entry{}
	for i, q := range tieredQueries() {
		before[fmt.Sprint(i)] = s.Select(q)
	}
	g0 := s.Generation()
	n, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("sealed %d entries, want 5", n)
	}
	if s.Generation() == g0 {
		t.Fatal("seal did not move the generation (service caches would serve stale)")
	}
	st := s.Stats()
	if st.HeadEntries != 0 || st.SealedEntries != 5 || st.SealedSegments != 1 {
		t.Fatalf("post-seal stats: %+v", st)
	}
	if st.Entries != 5 || st.Systems != 2 {
		t.Fatalf("post-seal totals: %+v", st)
	}
	for i, q := range tieredQueries() {
		got := s.Select(q)
		if !sameEntries(got, before[fmt.Sprint(i)]) {
			t.Fatalf("query %+v: sealed results diverged from pre-seal", q)
		}
		if !sameEntries(got, s.selectScan(q)) {
			t.Fatalf("query %+v: sealed Select diverged from reference scan", q)
		}
	}
	if got := s.Systems(); len(got) != 2 || got[0] != "archer2" || got[1] != "csd3" {
		t.Fatalf("systems after seal: %v", got)
	}
	// Sealing an empty head is a no-op, not a new segment.
	if n, err := s.Seal(); err != nil || n != 0 {
		t.Fatalf("re-seal: n=%d err=%v", n, err)
	}
	if s.Stats().SealedSegments != 1 {
		t.Fatal("re-seal grew the segment list")
	}
}

// TestTieredBootZeroReparse is the acceptance check: after seal +
// restart, boot recovers everything from segment headers and the
// watermarks, and the re-sync parses zero perflog bytes.
func TestTieredBootZeroReparse(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s1, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Seal(); err != nil {
		t.Fatal(err)
	}
	want := map[int][]*perflog.Entry{}
	for i, q := range tieredQueries() {
		want[i] = s1.Select(q)
	}

	s2, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.BytesParsed != 0 {
		t.Fatalf("cold boot over sealed store parsed %d perflog bytes, want 0", st.BytesParsed)
	}
	if st.EntriesAdded != 0 || st.HeadEntries != 0 {
		t.Fatalf("cold boot re-ingested entries: %+v", st)
	}
	if st.Entries != 5 || st.SealedSegments != 1 {
		t.Fatalf("cold boot stats: %+v", st)
	}
	for i, q := range tieredQueries() {
		if got := s2.Select(q); !sameLines(got, want[i]) {
			t.Fatalf("query %+v: rebooted results diverged", q)
		}
		if got := s2.Select(q); !sameEntries(got, s2.selectScan(q)) {
			t.Fatalf("query %+v: rebooted Select diverged from its own scan", q)
		}
	}
}

// TestTieredTailReingest: entries appended after the seal live past the
// watermark; a reboot parses exactly that tail — no loss, no
// duplication, ordering intact.
func TestTieredTailReingest(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s1, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Seal(); err != nil {
		t.Fatal(err)
	}
	// Out-of-band appends after the seal: same file as sealed entries
	// plus a brand-new system.
	tail1 := entry("archer2", "hpgmg-fv", 77, t0.Add(30*time.Hour), map[string]float64{"l0": 91})
	if err := perflog.Append(root, "archer2", "hpgmg-fv", tail1); err != nil {
		t.Fatal(err)
	}
	tail2 := entry("cosma8", "hpcg", 78, t0.Add(31*time.Hour), map[string]float64{"l0": 12})
	if err := perflog.Append(root, "cosma8", "hpcg", tail2); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	wantTail := int64(len(tail1.Line()) + len(tail2.Line()) + 2)
	if st.BytesParsed != wantTail {
		t.Fatalf("reboot parsed %d bytes, want exactly the %d-byte tail", st.BytesParsed, wantTail)
	}
	if st.Entries != 7 || st.HeadEntries != 2 || st.SealedEntries != 5 {
		t.Fatalf("reboot stats: %+v", st)
	}
	// The store must agree entirely with a from-scratch text rebuild.
	clean := Open(root)
	if err := clean.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, q := range tieredQueries() {
		if !sameLines(s2.Select(q), clean.Select(q)) {
			t.Fatalf("query %+v: tiered store diverged from clean rebuild", q)
		}
	}
}

// crashRecoveryCheck reopens root+dataDir after a failed tier
// operation and asserts the store converges exactly to the text tree —
// the no-loss / no-duplication invariant of every crash window.
func crashRecoveryCheck(t *testing.T, root, dataDir string) {
	t.Helper()
	faultinject.Reset()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after crash: %v", err)
	}
	clean := Open(root)
	if err := clean.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != clean.Len() {
		t.Fatalf("recovered store has %d entries, text tree has %d (lost or duplicated)", s.Len(), clean.Len())
	}
	for _, q := range tieredQueries() {
		if !sameLines(s.Select(q), clean.Select(q)) {
			t.Fatalf("query %+v: recovered store diverged from text tree", q)
		}
	}
}

// TestTieredCrashMidSeal kills the segment writer before the data is
// durable: Seal must fail cleanly, the head must keep serving, and a
// reboot must recover everything from the perflog tail.
func TestTieredCrashMidSeal(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	loadFaults(t, 1, "perfstore.segwrite:error:times=1")
	if _, err := s.Seal(); err == nil {
		t.Fatal("seal with injected write fault succeeded")
	}
	// The failed seal must not have torn the store: head still serves.
	if s.Len() != 5 {
		t.Fatalf("failed seal changed Len to %d", s.Len())
	}
	if s.Stats().SealedSegments != 0 {
		t.Fatal("failed seal left a segment in the manifest")
	}
	crashRecoveryCheck(t, root, dataDir)
}

// TestTieredCrashMidManifest kills the manifest swap after the segment
// file landed: the orphan must be swept on reboot and the entries
// re-ingested from the perflog tail behind the old watermarks.
func TestTieredCrashMidManifest(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	loadFaults(t, 1, "perfstore.manifest:error:times=1")
	if _, err := s.Seal(); err == nil {
		t.Fatal("seal with injected manifest fault succeeded")
	}
	crashRecoveryCheck(t, root, dataDir)
	// The orphan sweep must have left no unreferenced segment files.
	des, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("temp debris survived recovery: %s", de.Name())
		}
	}
}

// TestTieredCrashMidCompaction kills the compactor at both of its
// fallible stages; either way the reboot sees a complete segment set.
func TestTieredCrashMidCompaction(t *testing.T) {
	for _, point := range []string{"perfstore.compact", "perfstore.segwrite", "perfstore.manifest"} {
		t.Run(point, func(t *testing.T) {
			root := seedTree(t)
			dataDir := t.TempDir()
			s, err := OpenTiered(root, dataDir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			// Two seals with an append in between → two segments.
			if _, err := s.Seal(); err != nil {
				t.Fatal(err)
			}
			e := entry("archer2", "hpgmg-fv", 99, t0.Add(40*time.Hour), map[string]float64{"l0": 77})
			if err := s.Append("archer2", "hpgmg-fv", e); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Seal(); err != nil {
				t.Fatal(err)
			}
			if s.Stats().SealedSegments != 2 {
				t.Fatalf("want 2 segments, have %d", s.Stats().SealedSegments)
			}
			loadFaults(t, 1, point+":error:times=1")
			if ran, err := s.Compact(2); err == nil && ran {
				t.Fatal("compaction with injected fault succeeded")
			}
			// The live store must still serve everything.
			faultinject.Reset()
			if s.Len() != 6 {
				t.Fatalf("failed compaction changed Len to %d", s.Len())
			}
			crashRecoveryCheck(t, root, dataDir)
		})
	}
}

// TestTieredCompactionMergesSegments: the happy path — many small
// segments merge into one, queries unchanged, old files deleted.
func TestTieredCompactionMergesSegments(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		e := entry("archer2", "hpgmg-fv", 200+i, t0.Add(time.Duration(50+i)*time.Hour), map[string]float64{"l0": float64(i)})
		if err := s.Append("archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	want := map[int][]*perflog.Entry{}
	for i, q := range tieredQueries() {
		want[i] = s.Select(q)
	}
	g0 := s.Generation()
	ran, err := s.Compact(2)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compaction did not run")
	}
	if s.Generation() == g0 {
		t.Fatal("compaction did not move the generation")
	}
	st := s.Stats()
	if st.SealedSegments != 1 {
		t.Fatalf("compaction left %d segments", st.SealedSegments)
	}
	for i, q := range tieredQueries() {
		if !sameEntries(s.Select(q), want[i]) {
			t.Fatalf("query %+v: compaction changed results", q)
		}
	}
	// Exactly one .seg file remains on disk.
	des, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".seg") {
			segFiles++
		}
	}
	if segFiles != 1 {
		t.Fatalf("%d segment files on disk after compaction", segFiles)
	}
	crashRecoveryCheck(t, root, dataDir)
}

// TestTieredEvictTruncatedSealedFile: truncating a perflog file whose
// entries are already sealed must evict them from the sealed tier too,
// converging with a clean text rebuild.
func TestTieredEvictTruncatedSealedFile(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// Rewrite archer2's file shorter: its three sealed entries must go,
	// replaced by the one new line; csd3's sealed entries must survive.
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	e := entry("archer2", "hpgmg-fv", 500, t0.Add(60*time.Hour), map[string]float64{"l0": 42})
	if err := os.WriteFile(path, []byte(e.Line()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	clean := Open(root)
	if err := clean.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != clean.Len() {
		t.Fatalf("tiered store has %d entries after sealed eviction, clean rebuild %d", s.Len(), clean.Len())
	}
	for _, q := range tieredQueries() {
		if !sameLines(s.Select(q), clean.Select(q)) {
			t.Fatalf("query %+v: diverged after sealed eviction", q)
		}
	}
	st := s.Stats()
	if st.SealedEntries != 2 {
		t.Fatalf("sealed tier holds %d entries after eviction, want csd3's 2", st.SealedEntries)
	}
	// And the eviction survives a reboot.
	crashRecoveryCheck(t, root, dataDir)
}

// TestTieredMatchesInMemoryRandomized is the tier-equivalence property
// test: the same entry pointers are fed to a memory-only store and a
// tiered store (sealed mid-stream, twice), and every randomized query
// must return the identical slice from both — Select by pointer
// identity, Aggregate and Regressions by deep equality.
func TestTieredMatchesInMemoryRandomized(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mem := Open("unused")
		tiered, err := OpenTiered(t.TempDir(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		const n = 2000
		for i := 0; i < n; i++ {
			e := randEntry(rng, i)
			mem.add(e, "mem.log")
			tiered.add(e, "mem.log")
			// Seal twice mid-stream so head + two segment generations all
			// hold data (the second seal lands after more head growth).
			if i == n/3 || i == 2*n/3 {
				if _, err := tiered.Seal(); err != nil {
					t.Fatal(err)
				}
			}
		}
		qrng := rand.New(rand.NewSource(seed * 131))
		for trial := 0; trial < 200; trial++ {
			q := randQuery(qrng)
			if !sameEntries(tiered.Select(q), mem.Select(q)) {
				t.Fatalf("seed %d trial %d: tiered Select diverged from in-memory\nquery %+v", seed, trial, q)
			}
			q.FOM = []string{"l0", "l1"}[qrng.Intn(2)]
			q.GroupBy = [][]string{nil, {"system"}, {"result", "num_tasks"}}[qrng.Intn(3)]
			ta, err := tiered.Aggregate(q)
			if err != nil {
				t.Fatal(err)
			}
			ma, err := mem.Aggregate(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := aggApproxEqual(ta, ma); err != nil {
				t.Fatalf("seed %d trial %d: tiered Aggregate diverged: %v\nquery %+v\ngot  %+v\nwant %+v", seed, trial, err, q, ta, ma)
			}
			tr, err := tiered.Regressions(q, 0.1, 5)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := mem.Regressions(q, 0.1, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr, mr) {
				t.Fatalf("seed %d trial %d: tiered Regressions diverged\nquery %+v", seed, trial, q)
			}
		}
		// After a compaction the equivalence must still hold.
		if ran, err := tiered.Compact(2); err != nil || !ran {
			t.Fatalf("compact: ran=%v err=%v", ran, err)
		}
		for trial := 0; trial < 50; trial++ {
			q := randQuery(qrng)
			if !sameEntries(tiered.Select(q), mem.Select(q)) {
				t.Fatalf("seed %d post-compact trial %d: diverged\nquery %+v", seed, trial, q)
			}
		}
	}
}

// TestTiered100kMatchesIndexed is the at-scale acceptance check: on a
// 100k-entry store the segment-backed path must match the in-memory
// indexed path exactly.
func TestTiered100kMatchesIndexed(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-entry store is slow; run without -short")
	}
	const n = 100_000
	rng := rand.New(rand.NewSource(42))
	mem := Open("unused")
	tiered, err := OpenTiered(t.TempDir(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e := randEntry(rng, i)
		mem.add(e, "mem.log")
		tiered.add(e, "mem.log")
		if i > 0 && i%30_000 == 0 {
			if _, err := tiered.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tiered.Len() != n || mem.Len() != n {
		t.Fatalf("store sizes: tiered=%d mem=%d", tiered.Len(), mem.Len())
	}
	if tiered.Stats().SealedSegments < 2 {
		t.Fatal("want at least 2 sealed segments for a meaningful check")
	}
	qrng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		q := randQuery(qrng)
		if !sameEntries(tiered.Select(q), mem.Select(q)) {
			t.Fatalf("trial %d: tiered Select diverged on 100k store\nquery %+v", trial, q)
		}
	}
	for _, q := range tieredQueries() {
		if !sameEntries(tiered.Select(q), mem.Select(q)) {
			t.Fatalf("query %+v: tiered Select diverged on 100k store", q)
		}
	}
}

// TestTieredConcurrent is the -race exercise over the full tier
// lifecycle: writers append, a maintenance goroutine seals and
// compacts, readers query — and the store converges to filesystem
// truth afterwards.
func TestTieredConcurrent(t *testing.T) {
	root := t.TempDir()
	s, err := OpenTiered(root, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Select(Query{System: "archer2", FOM: "l0"})
				s.Select(Query{Limit: 5})
				s.Aggregate(Query{FOM: "l0", GroupBy: []string{"system"}})
				s.Systems()
				s.Stats()
			}
		}()
	}
	var maint sync.WaitGroup
	maint.Add(1)
	go func() {
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.MaybeSeal(10); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Compact(3); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			sys := []string{"archer2", "csd3", "cosma8"}[w]
			for i := 0; i < 40; i++ {
				// Distinct timestamps per writer: cross-file ties are broken
				// by store-local seq, which legitimately differs between the
				// live store and a fresh rebuild.
				ts := t0.Add(time.Duration(i)*time.Minute + time.Duration(w)*time.Second)
				e := entry(sys, "hpgmg-fv", w*1000+i, ts, map[string]float64{"l0": 90 + float64(i)})
				if err := s.Append(sys, "hpgmg-fv", e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	maint.Wait()

	clean := Open(root)
	if err := clean.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != clean.Len() {
		t.Fatalf("tiered store diverged from filesystem truth: %d vs %d", s.Len(), clean.Len())
	}
	for _, q := range []Query{{}, {System: "archer2"}, {FOM: "l0", Limit: 7}} {
		if !sameLines(s.Select(q), clean.Select(q)) {
			t.Fatalf("query %+v: diverged after concurrent tier lifecycle", q)
		}
	}
}

// TestTieredSegmentLoadFailureIsObservable: a segment whose data block
// cannot be read is served as absent — queries keep answering from the
// other tiers and the failure is counted, not silent.
func TestTieredSegmentLoadFailureIsObservable(t *testing.T) {
	root := seedTree(t)
	dataDir := t.TempDir()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// Reboot so the segment is cold (not resident), then make every
	// load attempt fail.
	s2, err := OpenTiered(root, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	// rate=1 with no times cap fails every attempt, so the retrying
	// loader exhausts its budget and records a failure.
	loadFaults(t, 1, "perfstore.segload:error:rate=1")
	got := s2.Select(Query{System: "archer2"})
	if len(got) != 0 {
		t.Fatalf("unloadable segment still produced %d entries", len(got))
	}
	if s2.Stats().SegmentLoadFailures == 0 {
		t.Fatal("segment load failure not counted")
	}
	// With the fault cleared the next query loads and serves.
	faultinject.Reset()
	if got := s2.Select(Query{System: "archer2"}); len(got) != 3 {
		t.Fatalf("post-fault query returned %d entries, want 3", len(got))
	}
}
