package perfstore

import (
	"math/rand"
	"testing"

	"repro/internal/perflog"
)

// benchTree writes an n-entry perflog tree under a fresh temp root,
// grouped into one file per (system, benchmark) the way real trees
// are laid out.
func benchTree(b *testing.B, n int) string {
	b.Helper()
	root := b.TempDir()
	rng := rand.New(rand.NewSource(9))
	groups := map[[2]string][]*perflog.Entry{}
	for i := 0; i < n; i++ {
		e := randEntry(rng, i)
		k := [2]string{e.System, e.Benchmark}
		groups[k] = append(groups[k], e)
	}
	for k, ents := range groups {
		if err := perflog.Append(root, k[0], k[1], ents...); err != nil {
			b.Fatal(err)
		}
	}
	return root
}

// BenchmarkStoreColdBoot measures what the tiered engine exists for:
// daemon boot time over an already-ingested corpus. The text leg
// re-parses every perflog byte; the sealed leg recovers the corpus
// from segment headers and parses only the (empty) tail.
func BenchmarkStoreColdBoot(b *testing.B) {
	const n = 20_000
	root := benchTree(b, n)
	dataDir := b.TempDir()
	s, err := OpenTiered(root, dataDir)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Seal(); err != nil {
		b.Fatal(err)
	}

	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := Open(root)
			if err := st.Sync(); err != nil {
				b.Fatal(err)
			}
			if st.Len() != n {
				b.Fatalf("boot recovered %d entries", st.Len())
			}
		}
	})
	b.Run("sealed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := OpenTiered(root, dataDir)
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Sync(); err != nil {
				b.Fatal(err)
			}
			if st.Len() != n {
				b.Fatalf("boot recovered %d entries", st.Len())
			}
			if st.Stats().BytesParsed != 0 {
				b.Fatal("sealed boot re-parsed perflog bytes")
			}
		}
	})
}

// benchSealed builds a fully-sealed tiered store holding the same
// entries as benchStoreN, with the segment resident (first query paid
// outside the timed loop).
func benchSealed(b *testing.B, n int) *Store {
	b.Helper()
	s, err := OpenTiered(b.TempDir(), b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		s.add(randEntry(rng, i), "mem.log")
	}
	if _, err := s.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreSealedSelect compares the selective posting-list query
// served from the mutable head against the identical query served from
// a sealed segment.
func BenchmarkStoreSealedSelect(b *testing.B) {
	head := benchStoreN(b, benchN)
	sealed := benchSealed(b, benchN)
	q := selectiveQuery()
	want := len(head.Select(q))
	if got := len(sealed.Select(q)); got != want {
		b.Fatalf("sealed select returned %d entries, head %d", got, want)
	}
	b.Run("head", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(head.Select(q)) != want {
				b.Fatal("wrong result")
			}
		}
	})
	b.Run("sealed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(sealed.Select(q)) != want {
				b.Fatal("wrong result")
			}
		}
	})
}

// BenchmarkStoreSealedAggregate: grouped aggregation over every entry,
// head vs sealed segment.
func BenchmarkStoreSealedAggregate(b *testing.B) {
	head := benchStoreN(b, benchN)
	sealed := benchSealed(b, benchN)
	q := Query{FOM: "l0", GroupBy: []string{"system", "benchmark"}}
	rows, err := head.Aggregate(q)
	if err != nil {
		b.Fatal(err)
	}
	want := len(rows)
	b.Run("head", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := head.Aggregate(q)
			if err != nil || len(rows) != want {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
	b.Run("sealed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := sealed.Aggregate(q)
			if err != nil || len(rows) != want {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
}
