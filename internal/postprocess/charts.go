package postprocess

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataframe"
	"repro/internal/perfstore"
)

// BarChart renders the configured plot as a text bar chart: one bar per
// (x, series) pair, grouped by x, scaled to the maximum value.
func BarChart(f *dataframe.Frame, cfg *PlotConfig) (string, error) {
	data, err := cfg.Apply(f)
	if err != nil {
		return "", err
	}
	if data.NumRows() == 0 {
		return "", fmt.Errorf("postprocess: no rows left after filtering")
	}
	xc, err := data.Col(cfg.X)
	if err != nil {
		return "", err
	}
	yc, err := data.Col(cfg.Y)
	if err != nil {
		return "", err
	}
	var sc *dataframe.Column
	if cfg.Series != "" {
		sc, err = data.Col(cfg.Series)
		if err != nil {
			return "", err
		}
	}

	type bar struct {
		x, series string
		value     float64
	}
	var bars []bar
	maxVal := 0.0
	labelW := 0
	for r := 0; r < data.NumRows(); r++ {
		b := bar{x: xc.Str(r), value: yc.Float(r)}
		if sc != nil {
			b.series = sc.Str(r)
		}
		if math.IsNaN(b.value) {
			continue
		}
		if b.value > maxVal {
			maxVal = b.value
		}
		if w := len(barLabel(b.x, b.series)); w > labelW {
			labelW = w
		}
		bars = append(bars, b)
	}
	if len(bars) == 0 || maxVal <= 0 {
		return "", fmt.Errorf("postprocess: nothing to plot in column %q", cfg.Y)
	}

	const width = 50
	var sb strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&sb, "%s\n%s\n", cfg.Title, strings.Repeat("=", len(cfg.Title)))
	}
	prevX := ""
	for _, b := range bars {
		if b.x != prevX && prevX != "" && sc != nil {
			sb.WriteString("\n")
		}
		prevX = b.x
		n := int(math.Round(b.value / maxVal * width))
		fmt.Fprintf(&sb, "%-*s |%s %g\n", labelW, barLabel(b.x, b.series), strings.Repeat("█", n), round3(b.value))
	}
	return sb.String(), nil
}

func barLabel(x, series string) string {
	if series == "" {
		return trimLabel(x, 32)
	}
	return trimLabel(x+"/"+series, 40)
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

// BarChartSVG renders the same plot as a standalone SVG document (the
// framework's Bokeh-equivalent visual output).
func BarChartSVG(f *dataframe.Frame, cfg *PlotConfig) (string, error) {
	data, err := cfg.Apply(f)
	if err != nil {
		return "", err
	}
	xc, _ := data.Col(cfg.X)
	yc, _ := data.Col(cfg.Y)
	var sc *dataframe.Column
	if cfg.Series != "" {
		sc, err = data.Col(cfg.Series)
		if err != nil {
			return "", err
		}
	}
	type bar struct {
		label string
		value float64
	}
	var bars []bar
	maxVal := 0.0
	for r := 0; r < data.NumRows(); r++ {
		v := yc.Float(r)
		if math.IsNaN(v) {
			continue
		}
		label := xc.Str(r)
		if sc != nil {
			label += "/" + sc.Str(r)
		}
		bars = append(bars, bar{label, v})
		if v > maxVal {
			maxVal = v
		}
	}
	if len(bars) == 0 || maxVal <= 0 {
		return "", fmt.Errorf("postprocess: nothing to plot in column %q", cfg.Y)
	}
	const (
		barH   = 22
		gap    = 6
		chartW = 600
		labelW = 220
		topPad = 40
	)
	height := topPad + len(bars)*(barH+gap) + 20
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		labelW+chartW+80, height)
	fmt.Fprintf(&sb, `<text x="10" y="22" font-size="16">%s</text>`+"\n", xmlEscape(cfg.Title))
	for i, b := range bars {
		y := topPad + i*(barH+gap)
		w := int(b.value / maxVal * chartW)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", labelW-6, y+barH-6, xmlEscape(trimLabel(b.label, 34)))
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#4878a8"/>`+"\n", labelW, y, w, barH)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%g</text>`+"\n", labelW+w+6, y+barH-6, round3(b.value))
	}
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Heatmap renders a pivot table as the Figure 2 style text heatmap:
// rows × columns with percentage cells, "*" for unsupported combinations.
// Values are fractions (0..1) rendered as percentages.
func Heatmap(pt *dataframe.PivotTable, title string) string {
	colW := 8
	for _, c := range pt.ColLabels {
		if len(c)+2 > colW {
			colW = len(c) + 2
		}
	}
	rowW := 0
	for _, r := range pt.RowLabels {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	fmt.Fprintf(&sb, "%-*s", rowW, "")
	for _, c := range pt.ColLabels {
		fmt.Fprintf(&sb, "%*s", colW, trimLabel(c, colW-1))
	}
	sb.WriteString("\n")
	for i, r := range pt.RowLabels {
		fmt.Fprintf(&sb, "%-*s", rowW, r)
		for j := range pt.ColLabels {
			v := pt.Cells[i][j]
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, "%*s", colW, "*")
				continue
			}
			fmt.Fprintf(&sb, "%*s", colW, fmt.Sprintf("%.1f%%", v*100))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// RegressionReport flags per-group performance regressions in a
// time-series of FOM values — the cross-system performance regression
// testing the paper's conclusion calls "a fundamental necessity".
type RegressionReport struct {
	Group    string
	Baseline float64 // mean of earlier runs
	Latest   float64
	Change   float64 // fractional change, negative = regression
	Flagged  bool
}

// CheckRegressions groups the frame by the key columns, orders each group
// by timestamp, and compares the latest value of valueCol against the
// mean of the earlier ones; groups whose latest value dropped by more
// than tolerance are flagged.
func CheckRegressions(f *dataframe.Frame, keyCols []string, valueCol string, tolerance float64) ([]RegressionReport, error) {
	vc, err := f.Col(valueCol)
	if err != nil {
		return nil, err
	}
	if !f.Has("timestamp") {
		return nil, fmt.Errorf("postprocess: frame has no timestamp column")
	}
	ordered, err := f.Sort("timestamp", true)
	if err != nil {
		return nil, err
	}
	vc, _ = ordered.Col(valueCol)
	groups := map[string][]float64{}
	var order []string
	for r := 0; r < ordered.NumRows(); r++ {
		var parts []string
		for _, k := range keyCols {
			s, err := ordered.Str(k, r)
			if err != nil {
				return nil, err
			}
			parts = append(parts, s)
		}
		key := strings.Join(parts, "/")
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		v := vc.Float(r)
		if !math.IsNaN(v) {
			groups[key] = append(groups[key], v)
		}
	}
	sort.Strings(order)
	var out []RegressionReport
	for _, key := range order {
		// The tolerance rule lives in perfstore so the CLI and the
		// benchd daemon flag regressions identically.
		r, ok := perfstore.EvalSeries(groups[key], tolerance, 0)
		if !ok {
			continue
		}
		out = append(out, RegressionReport{
			Group:    key,
			Baseline: r.Baseline,
			Latest:   r.Latest,
			Change:   r.Change,
			Flagged:  r.Flagged,
		})
	}
	return out, nil
}
