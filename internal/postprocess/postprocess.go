// Package postprocess turns perflogs into analysis artifacts: DataFrames,
// filtered series, bar charts (text and SVG), the Figure 2 style heatmap,
// and time-series regression checks. It is the framework's Principle 6
// layer — "assimilate and post-process the data in a programmable manner
// so as to make extraction and presentation of Figures of Merit
// transparent and error-free" — driven by the same YAML-style plot
// configuration the paper describes.
package postprocess

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dataframe"
	"repro/internal/perflog"
	"repro/internal/yamlite"
)

// ToFrame converts perflog entries into a DataFrame: one row per entry,
// string columns for the run identity and extras, one float column per
// FOM (named after the FOM), and a <fom>_unit column recording units.
func ToFrame(entries []*perflog.Entry) (*dataframe.Frame, error) {
	n := len(entries)
	timestamps := make([]string, n)
	benchmarks := make([]string, n)
	systems := make([]string, n)
	partitions := make([]string, n)
	environs := make([]string, n)
	specs := make([]string, n)
	results := make([]string, n)
	jobs := make([]float64, n)

	extraCols := map[string][]string{}
	fomCols := map[string][]float64{}
	fomUnits := map[string]string{}
	for _, e := range entries {
		for k := range e.Extra {
			if _, ok := extraCols[k]; !ok {
				extraCols[k] = filled(n)
			}
		}
		for k, v := range e.FOMs {
			if _, ok := fomCols[k]; !ok {
				fomCols[k] = nanSlice(n)
				fomUnits[k] = v.Unit
			}
		}
	}
	for i, e := range entries {
		timestamps[i] = e.Time.UTC().Format(time.RFC3339)
		benchmarks[i] = e.Benchmark
		systems[i] = e.System
		partitions[i] = e.Partition
		environs[i] = e.Environ
		specs[i] = e.Spec
		results[i] = e.Result
		jobs[i] = float64(e.JobID)
		for k, v := range e.Extra {
			extraCols[k][i] = v
		}
		for k, v := range e.FOMs {
			fomCols[k][i] = v.Value
		}
	}
	f := dataframe.New()
	add := func(err error) error {
		if err != nil {
			return fmt.Errorf("postprocess: %w", err)
		}
		return nil
	}
	if err := add(f.AddStringColumn("timestamp", timestamps)); err != nil {
		return nil, err
	}
	if err := add(f.AddStringColumn("benchmark", benchmarks)); err != nil {
		return nil, err
	}
	if err := add(f.AddStringColumn("system", systems)); err != nil {
		return nil, err
	}
	if err := add(f.AddStringColumn("partition", partitions)); err != nil {
		return nil, err
	}
	if err := add(f.AddStringColumn("environ", environs)); err != nil {
		return nil, err
	}
	if err := add(f.AddStringColumn("spec", specs)); err != nil {
		return nil, err
	}
	if err := add(f.AddStringColumn("result", results)); err != nil {
		return nil, err
	}
	if err := add(f.AddFloatColumn("job", jobs)); err != nil {
		return nil, err
	}
	for _, k := range sortedKeys(extraCols) {
		if f.Has(k) {
			continue
		}
		if err := add(f.AddStringColumn(k, extraCols[k])); err != nil {
			return nil, err
		}
	}
	for _, k := range sortedFloatKeys(fomCols) {
		name := k
		if f.Has(name) {
			name = "fom_" + k
		}
		if err := add(f.AddFloatColumn(name, fomCols[k])); err != nil {
			return nil, err
		}
		if unit := fomUnits[k]; unit != "" {
			units := make([]string, n)
			for i := range units {
				units[i] = unit
			}
			if err := add(f.AddStringColumn(name+"_unit", units)); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// LoadFrame assimilates every perflog under root into one frame —
// cross-platform data in a single programmable pass.
func LoadFrame(root string) (*dataframe.Frame, error) {
	entries, err := perflog.ReadTree(root)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("postprocess: no perflog entries under %s", root)
	}
	return ToFrame(entries)
}

func filled(n int) []string { return make([]string, n) }

func nanSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFloatKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- Plot configuration -----------------------------------------------------

// Filter is one row predicate from the plot config.
type Filter struct {
	Column string
	Op     string // ==, !=, <, <=, >, >= (numeric); == / != (string)
	Value  string
}

// PlotConfig drives filtering and plotting, mirroring the framework's
// YAML configuration (§2.4).
type PlotConfig struct {
	Title   string
	X       string // category column
	Y       string // value column (float)
	Series  string // optional series column
	Filters []Filter
	SortAsc bool
}

// ParsePlotConfig reads a config document:
//
//	title: BabelStream Triad
//	x: system
//	y: triad_mbps
//	series: environ
//	sort: ascending
//	filters:
//	  - column: result
//	    op: ==
//	    value: pass
func ParsePlotConfig(text string) (*PlotConfig, error) {
	doc, err := yamlite.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("postprocess: %w", err)
	}
	m, err := yamlite.Map(doc)
	if err != nil {
		return nil, fmt.Errorf("postprocess: plot config must be a mapping: %w", err)
	}
	cfg := &PlotConfig{}
	for _, key := range yamlite.Keys(m) {
		v := m[key]
		switch key {
		case "title":
			cfg.Title, err = yamlite.Str(v)
		case "x":
			cfg.X, err = yamlite.Str(v)
		case "y":
			cfg.Y, err = yamlite.Str(v)
		case "series":
			cfg.Series, err = yamlite.Str(v)
		case "sort":
			var s string
			s, err = yamlite.Str(v)
			cfg.SortAsc = s == "ascending"
		case "filters":
			err = parseFilters(cfg, v)
		default:
			return nil, fmt.Errorf("postprocess: unknown plot config key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("postprocess: key %q: %w", key, err)
		}
	}
	if cfg.X == "" || cfg.Y == "" {
		return nil, fmt.Errorf("postprocess: plot config needs both 'x' and 'y'")
	}
	return cfg, nil
}

func parseFilters(cfg *PlotConfig, v yamlite.Value) error {
	seq, err := yamlite.Seq(v)
	if err != nil {
		return err
	}
	for _, item := range seq {
		m, err := yamlite.Map(item)
		if err != nil {
			return err
		}
		col, err := yamlite.Str(m["column"])
		if err != nil {
			return fmt.Errorf("filter needs 'column': %w", err)
		}
		op, err := yamlite.Str(m["op"])
		if err != nil {
			return fmt.Errorf("filter needs 'op': %w", err)
		}
		val, err := yamlite.Str(m["value"])
		if err != nil {
			return fmt.Errorf("filter needs 'value': %w", err)
		}
		cfg.Filters = append(cfg.Filters, Filter{Column: col, Op: op, Value: val})
	}
	return nil
}

// Apply filters and sorts the frame per the config, returning the frame
// ready for plotting.
func (cfg *PlotConfig) Apply(f *dataframe.Frame) (*dataframe.Frame, error) {
	cur := f
	for _, flt := range cfg.Filters {
		col, err := cur.Col(flt.Column)
		if err != nil {
			return nil, fmt.Errorf("postprocess: filter: %w", err)
		}
		if col.Kind() == dataframe.Float {
			var num float64
			if _, err := fmt.Sscanf(flt.Value, "%g", &num); err != nil {
				return nil, fmt.Errorf("postprocess: filter value %q is not numeric for column %q", flt.Value, flt.Column)
			}
			cur, err = cur.FilterNum(flt.Column, dataframe.CmpOp(flt.Op), num)
			if err != nil {
				return nil, fmt.Errorf("postprocess: %w", err)
			}
			continue
		}
		switch flt.Op {
		case "==":
			next, err := cur.FilterEq(flt.Column, flt.Value)
			if err != nil {
				return nil, err
			}
			cur = next
		case "!=":
			c, _ := cur.Col(flt.Column)
			cur = cur.Filter(func(r int) bool { return c.Str(r) != flt.Value })
		default:
			return nil, fmt.Errorf("postprocess: string column %q supports == and != only", flt.Column)
		}
	}
	if _, err := cur.Col(cfg.Y); err != nil {
		return nil, fmt.Errorf("postprocess: %w", err)
	}
	sorted, err := cur.Sort(cfg.X, cfg.SortAsc)
	if err != nil {
		return nil, err
	}
	return sorted, nil
}

// trimLabel shortens long labels for chart rendering.
func trimLabel(s string, width int) string {
	if len(s) <= width {
		return s
	}
	if width <= 1 {
		return s[:width]
	}
	return s[:width-1] + "…"
}
