package postprocess

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/dataframe"
	"repro/internal/fom"
	"repro/internal/perflog"
)

func entry(sys string, job int, ts time.Time, foms map[string]float64) *perflog.Entry {
	e := &perflog.Entry{
		Time:      ts,
		Benchmark: "hpgmg-fv",
		System:    sys,
		Partition: "compute",
		Environ:   "gcc",
		Spec:      "hpgmg%gcc",
		JobID:     job,
		Result:    "pass",
		FOMs:      map[string]fom.Value{},
		Extra:     map[string]string{"num_tasks": "8"},
	}
	for k, v := range foms {
		e.FOMs[k] = fom.Value{Name: k, Value: v, Unit: "MDOF/s"}
	}
	return e
}

func table4Entries() []*perflog.Entry {
	t0 := time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)
	return []*perflog.Entry{
		entry("archer2", 1, t0, map[string]float64{"l0": 95.36, "l1": 83.43, "l2": 62.18}),
		entry("cosma8", 2, t0, map[string]float64{"l0": 81.67, "l1": 72.96, "l2": 75.09}),
		entry("csd3", 3, t0, map[string]float64{"l0": 126.10, "l1": 94.39, "l2": 49.40}),
		entry("isambard", 4, t0, map[string]float64{"l0": 30.59, "l1": 25.55, "l2": 17.55}),
	}
}

func TestToFrame(t *testing.T) {
	f, err := ToFrame(table4Entries())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 4 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	for _, col := range []string{"timestamp", "benchmark", "system", "result", "num_tasks", "l0", "l1", "l2", "job"} {
		if !f.Has(col) {
			t.Errorf("missing column %q (have %v)", col, f.Columns())
		}
	}
	v, err := f.Float("l0", 2)
	if err != nil || v != 126.10 {
		t.Errorf("l0[2] = %v, %v", v, err)
	}
	s, _ := f.Str("system", 3)
	if s != "isambard" {
		t.Errorf("system[3] = %s", s)
	}
}

func TestToFrameSparseFOMs(t *testing.T) {
	t0 := time.Now()
	entries := []*perflog.Entry{
		entry("a", 1, t0, map[string]float64{"l0": 1}),
		entry("b", 2, t0, map[string]float64{"gflops": 24}),
	}
	f, err := ToFrame(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Missing FOMs are NaN.
	v, _ := f.Float("gflops", 0)
	if !math.IsNaN(v) {
		t.Errorf("gflops[0] = %g, want NaN", v)
	}
	v, _ = f.Float("l0", 1)
	if !math.IsNaN(v) {
		t.Errorf("l0[1] = %g, want NaN", v)
	}
}

func TestParsePlotConfig(t *testing.T) {
	text := `
title: HPGMG l0 by system
x: system
y: l0
sort: ascending
filters:
  - column: result
    op: ==
    value: pass
`
	cfg, err := ParsePlotConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Title == "" || cfg.X != "system" || cfg.Y != "l0" || !cfg.SortAsc {
		t.Errorf("cfg = %+v", cfg)
	}
	if len(cfg.Filters) != 1 || cfg.Filters[0].Column != "result" {
		t.Errorf("filters = %+v", cfg.Filters)
	}
}

func TestParsePlotConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"title: x\n",                            // missing x/y
		"x: a\ny: b\nwhat: 1\n",                 // unknown key
		"x: a\ny: b\nfilters:\n  - column: c\n", // incomplete filter
	} {
		if _, err := ParsePlotConfig(bad); err == nil {
			t.Errorf("ParsePlotConfig(%q): expected error", bad)
		}
	}
}

func TestBarChart(t *testing.T) {
	f, _ := ToFrame(table4Entries())
	cfg := &PlotConfig{Title: "HPGMG l0", X: "system", Y: "l0", SortAsc: true}
	chart, err := BarChart(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HPGMG l0", "archer2", "csd3", "126.1", "█"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	// The largest value should have the longest bar.
	lines := strings.Split(chart, "\n")
	var csd3Bars, isambardBars int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.Contains(l, "csd3") {
			csd3Bars = n
		}
		if strings.Contains(l, "isambard") {
			isambardBars = n
		}
	}
	if csd3Bars <= isambardBars {
		t.Errorf("bar lengths: csd3 %d vs isambard %d", csd3Bars, isambardBars)
	}
}

func TestBarChartFiltering(t *testing.T) {
	entries := table4Entries()
	entries[0].Result = "fail"
	f, _ := ToFrame(entries)
	cfg := &PlotConfig{
		X: "system", Y: "l0",
		Filters: []Filter{{Column: "result", Op: "==", Value: "pass"}},
	}
	chart, err := BarChart(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(chart, "archer2") {
		t.Error("failed run not filtered out")
	}
	// Numeric filter.
	cfg2 := &PlotConfig{
		X: "system", Y: "l0",
		Filters: []Filter{{Column: "l0", Op: ">", Value: "80"}},
	}
	chart2, err := BarChart(f, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(chart2, "isambard") {
		t.Error("numeric filter not applied")
	}
}

func TestBarChartErrors(t *testing.T) {
	f, _ := ToFrame(table4Entries())
	if _, err := BarChart(f, &PlotConfig{X: "system", Y: "nope"}); err == nil {
		t.Error("missing Y column accepted")
	}
	cfg := &PlotConfig{X: "system", Y: "l0", Filters: []Filter{{Column: "system", Op: "==", Value: "none-such"}}}
	if _, err := BarChart(f, cfg); err == nil {
		t.Error("empty result should error")
	}
	cfg2 := &PlotConfig{X: "system", Y: "l0", Filters: []Filter{{Column: "system", Op: "<", Value: "a"}}}
	if _, err := BarChart(f, cfg2); err == nil {
		t.Error("ordering op on string column accepted")
	}
}

func TestBarChartSVG(t *testing.T) {
	f, _ := ToFrame(table4Entries())
	cfg := &PlotConfig{Title: "HPGMG <l0>", X: "system", Y: "l0"}
	svg, err := BarChartSVG(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "rect", "HPGMG &lt;l0&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(svg, "<rect") != 4 {
		t.Errorf("expected 4 bars, got %d", strings.Count(svg, "<rect"))
	}
}

func TestHeatmap(t *testing.T) {
	f := dataframe.New()
	_ = f.AddStringColumn("model", []string{"omp", "omp", "cuda", "cuda"})
	_ = f.AddStringColumn("platform", []string{"cl", "volta", "cl", "volta"})
	_ = f.AddFloatColumn("eff", []float64{0.80, 0.70, math.NaN(), 0.93})
	pt, err := f.Pivot("model", "platform", "eff")
	if err != nil {
		t.Fatal(err)
	}
	hm := Heatmap(pt, "Figure 2")
	for _, want := range []string{"Figure 2", "80.0%", "93.0%", "*"} {
		if !strings.Contains(hm, want) {
			t.Errorf("heatmap missing %q:\n%s", want, hm)
		}
	}
}

func TestCheckRegressions(t *testing.T) {
	t0 := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	var entries []*perflog.Entry
	// archer2: stable at ~95 then regresses to 60.
	for i, v := range []float64{95, 96, 94, 60} {
		entries = append(entries, entry("archer2", i+1, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"l0": v}))
	}
	// csd3: stable.
	for i, v := range []float64{126, 125, 127} {
		entries = append(entries, entry("csd3", 10+i, t0.Add(time.Duration(i)*time.Hour), map[string]float64{"l0": v}))
	}
	f, _ := ToFrame(entries)
	reports, err := CheckRegressions(f, []string{"system"}, "l0", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	byGroup := map[string]RegressionReport{}
	for _, r := range reports {
		byGroup[r.Group] = r
	}
	if !byGroup["archer2"].Flagged {
		t.Errorf("archer2 regression not flagged: %+v", byGroup["archer2"])
	}
	if byGroup["csd3"].Flagged {
		t.Errorf("csd3 incorrectly flagged: %+v", byGroup["csd3"])
	}
	if byGroup["archer2"].Change > -0.3 {
		t.Errorf("archer2 change = %g", byGroup["archer2"].Change)
	}
}

func TestCheckRegressionsErrors(t *testing.T) {
	f := dataframe.New()
	_ = f.AddFloatColumn("x", []float64{1})
	if _, err := CheckRegressions(f, []string{"system"}, "x", 0.1); err == nil {
		t.Error("frame without timestamp accepted")
	}
	f2, _ := ToFrame(table4Entries())
	if _, err := CheckRegressions(f2, []string{"system"}, "nope", 0.1); err == nil {
		t.Error("missing value column accepted")
	}
}

func TestLoadFrameFromTree(t *testing.T) {
	root := t.TempDir()
	for _, e := range table4Entries() {
		if err := perflog.Append(root, e.System, e.Benchmark, e); err != nil {
			t.Fatal(err)
		}
	}
	f, err := LoadFrame(root)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 4 {
		t.Errorf("rows = %d", f.NumRows())
	}
	if _, err := LoadFrame(t.TempDir()); err == nil {
		t.Error("empty tree accepted")
	}
}

func TestBarChartWithSeries(t *testing.T) {
	// Grouped bars: one per (x, series) pair; long labels are trimmed.
	entries := []*perflog.Entry{}
	t0 := time.Now()
	for i, env := range []string{"gcc", "oneapi", "an-extremely-long-environment-name-that-needs-trimming"} {
		e := entry("archer2", i+1, t0, map[string]float64{"l0": 90 + float64(i)})
		e.Environ = env
		entries = append(entries, e)
	}
	f, _ := ToFrame(entries)
	cfg := &PlotConfig{X: "system", Y: "l0", Series: "environ"}
	chart, err := BarChart(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "archer2/gcc") || !strings.Contains(chart, "archer2/oneapi") {
		t.Errorf("series labels missing:\n%s", chart)
	}
	if !strings.Contains(chart, "…") {
		t.Errorf("long label not trimmed:\n%s", chart)
	}
	if _, err := BarChart(f, &PlotConfig{X: "system", Y: "l0", Series: "nope"}); err == nil {
		t.Error("missing series column accepted")
	}
}

func TestApplyNumericFilterParsing(t *testing.T) {
	f, _ := ToFrame(table4Entries())
	// A non-numeric value against a float column must error, not match.
	cfg := &PlotConfig{X: "system", Y: "l0",
		Filters: []Filter{{Column: "l0", Op: ">", Value: "not-a-number"}}}
	if _, err := cfg.Apply(f); err == nil {
		t.Error("non-numeric filter value accepted")
	}
	// != on strings.
	cfg2 := &PlotConfig{X: "system", Y: "l0",
		Filters: []Filter{{Column: "system", Op: "!=", Value: "csd3"}}}
	got, err := cfg2.Apply(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", got.NumRows())
	}
	// Filter on a missing column.
	cfg3 := &PlotConfig{X: "system", Y: "l0",
		Filters: []Filter{{Column: "ghost", Op: "==", Value: "x"}}}
	if _, err := cfg3.Apply(f); err == nil {
		t.Error("missing filter column accepted")
	}
}

func TestToFrameUnitColumns(t *testing.T) {
	f, err := ToFrame(table4Entries())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Has("l0_unit") {
		t.Fatalf("unit column missing: %v", f.Columns())
	}
	u, _ := f.Str("l0_unit", 0)
	if u != "MDOF/s" {
		t.Errorf("l0 unit = %q", u)
	}
}
