package perflog

import "testing"

// FuzzParseLine hardens the perflog reader: arbitrary lines must either
// fail cleanly or yield an entry that round-trips through Line().
func FuzzParseLine(f *testing.F) {
	f.Add(sampleEntry().Line())
	f.Add("benchmark=x")
	f.Add("ts=2023-07-07T10:02:11Z|benchmark=b|system=s|partition=p|environ=e|spec=sp|job=1|result=pass|fom:l0=95.36 MDOF/s")
	f.Add("benchmark=x|weird\\pfield=1")
	f.Add("=|=|=")
	f.Add("benchmark=x|fom:y=1e309")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseLine(line)
		if err != nil {
			return
		}
		re, err := ParseLine(e.Line())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", line, err)
		}
		if re.Benchmark != e.Benchmark || re.System != e.System || len(re.FOMs) != len(e.FOMs) {
			t.Fatalf("round trip changed entry: %+v vs %+v", e, re)
		}
	})
}
