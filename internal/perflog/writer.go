package perflog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Write-path metrics: how well concurrent appenders are amortizing
// fsyncs. A healthy loaded daemon shows perflog_commit_entries well
// above 1 — many acknowledged lines per durable commit.
var (
	metricCommitVec = telemetry.DefaultRegistry.Counter(
		"perflog_commits_total",
		"Group commits by the perflog writer, by outcome.",
		"status")
	metricCommitsOK     = metricCommitVec.With("ok")
	metricCommitsError  = metricCommitVec.With("error")
	metricCommitEntries = telemetry.DefaultRegistry.Histogram(
		"perflog_commit_entries",
		"Entries made durable per group commit.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}).With()
	metricFsyncSeconds = telemetry.DefaultRegistry.Histogram(
		"perflog_fsync_seconds",
		"Wall-clock duration of each group-commit fsync.",
		nil).With()
)

// Appender is the perflog write path: Append blocks until the entries
// are durable (fsynced) or reports why they are not. Append (via
// TreeAppender) and *Writer both satisfy it, so callers like
// core.Runner can take either the one-shot or the group-commit path.
type Appender interface {
	Append(system, benchmark string, entries ...*Entry) error
}

// TreeAppender adapts the one-shot Append function to the Appender
// interface for callers configured with just a root directory (the CLI
// path: one run, one append, no writer to share).
type TreeAppender string

// Append appends through the one-shot open→write→fsync→close path.
func (root TreeAppender) Append(system, benchmark string, entries ...*Entry) error {
	return Append(string(root), system, benchmark, entries...)
}

// Commit describes one file's slice of a durable group commit: the
// entries that landed, and exactly where their bytes sit in the file.
// Offset is derived from the descriptor position after the O_APPEND
// write — the true landing offset even if an out-of-band append raced
// in first — so Offset+Bytes is the file size after the commit and a
// store holding a checkpoint at Offset can account the whole commit
// without re-reading the file.
type Commit struct {
	Path      string
	System    string
	Benchmark string
	Entries   []*Entry
	Offset    int64
	Bytes     int64
}

// ErrWriterClosed is returned by Append on a closed Writer.
var ErrWriterClosed = errors.New("perflog: writer closed")

// DefaultCommitBytes is the batch size at which a commit flushes
// without waiting out the accumulation window.
const DefaultCommitBytes = 1 << 20

// WriterOptions tune a Writer's group-commit policy.
type WriterOptions struct {
	// MaxDelay is the accumulation window: a batch is held open this
	// long after its first entry before committing, letting concurrent
	// appenders share the fsync. 0 commits as soon as the committer is
	// idle — no added latency, with batching still emerging under load
	// because appends arriving during a commit join the next batch.
	MaxDelay time.Duration
	// MaxBytes flushes a batch early once its rendered bytes reach this
	// size (default DefaultCommitBytes).
	MaxBytes int
	// OnCommit, when set, is called from the committer goroutine once
	// per (system, benchmark) file in each batch, after the batch is
	// durable and before its appenders are released. It must not call
	// back into the Writer.
	OnCommit func(Commit)
}

// Writer is the group-commit perflog write path: concurrent appenders
// enqueue rendered lines into the open batch and block; a single
// committer goroutine flushes the batch with one write and one fsync
// per file, then wakes every waiter — WAL group commit, as in LevelDB
// and etcd. Acked ⇒ durable still holds, and an error fails the whole
// batch: no appender is ever acknowledged for bytes that did not reach
// disk, and none is left guessing about a partially applied commit.
//
// Unlike the one-shot Append, the Writer keeps per-(system, benchmark)
// descriptors open across commits, so a loaded daemon pays neither an
// open/close pair nor a dedicated fsync per run.
//
// The "perflog.open" and "perflog.sync" injection points fire once per
// commit, before any byte is written: a faulted commit acknowledges
// nothing and leaves nothing behind, which is what lets the chaos suite
// inject sync faults against the daemon write path and still prove
// zero lost, duplicated, or torn lines. (A real fsync failure after the
// write carries the same landed-but-unacked caveat as Append; the
// descriptor is dropped so the next commit reopens cleanly.)
type Writer struct {
	root string
	opt  WriterOptions

	mu       sync.Mutex
	cur      *writeBatch
	inflight *writeBatch // detached by the committer, verdict pending
	closed   bool

	wake   chan struct{} // buffered(1): batch opened, committer has work
	stop   chan struct{}
	exited chan struct{}

	// files caches open descriptors keyed by system\x00benchmark. Only
	// the committer goroutine touches it.
	files    map[string]*os.File
	closeErr error
}

// writeBatch is one open commit: rendered bytes grouped per target
// file, and the synchronization appenders block on.
type writeBatch struct {
	groups  map[string]*commitGroup
	order   []string // deterministic commit order over groups
	entries int
	bytes   int
	started time.Time

	full     chan struct{} // closed when MaxBytes reached (or Flush)
	fullOnce bool
	done     chan struct{} // closed after the durability verdict lands
	err      error
}

type commitGroup struct {
	system    string
	benchmark string
	buf       []byte
	entries   []*Entry
}

// NewWriter starts a group-commit writer over a perflog root (same
// <root>/<system>/<benchmark>.log layout as Append). Close it to flush
// pending entries and release the cached descriptors.
func NewWriter(root string, opt WriterOptions) *Writer {
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultCommitBytes
	}
	w := &Writer{
		root:   root,
		opt:    opt,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
		files:  map[string]*os.File{},
	}
	go w.run()
	return w
}

// Append renders the entries, enqueues them into the open commit batch,
// and blocks until that batch is durable. A nil return means the lines
// are fsynced; any commit error fails every append in the batch.
func (w *Writer) Append(system, benchmark string, entries ...*Entry) error {
	if len(entries) == 0 {
		return nil
	}
	// Render outside the lock: Line() is the expensive part and needs
	// no batch state.
	var buf []byte
	for _, e := range entries {
		buf = append(buf, e.Line()...)
		buf = append(buf, '\n')
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWriterClosed
	}
	b := w.cur
	if b == nil {
		b = &writeBatch{
			groups:  map[string]*commitGroup{},
			started: time.Now(),
			full:    make(chan struct{}),
			done:    make(chan struct{}),
		}
		w.cur = b
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	key := system + "\x00" + benchmark
	g := b.groups[key]
	if g == nil {
		g = &commitGroup{system: system, benchmark: benchmark}
		b.groups[key] = g
		b.order = append(b.order, key)
	}
	g.buf = append(g.buf, buf...)
	g.entries = append(g.entries, entries...)
	b.entries += len(entries)
	b.bytes += len(buf)
	if b.bytes >= w.opt.MaxBytes && !b.fullOnce {
		b.fullOnce = true
		close(b.full)
	}
	w.mu.Unlock()
	<-b.done
	return b.err
}

// Flush forces the open batch (if any) to commit without waiting out
// the accumulation window, and blocks until its durability verdict.
// With no open batch but a commit in flight, Flush waits for that
// commit's verdict instead — so a nil return always means everything
// enqueued before the call is durable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	b := w.cur
	if b != nil && !b.fullOnce {
		b.fullOnce = true
		close(b.full)
	}
	if b == nil {
		b = w.inflight
	}
	w.mu.Unlock()
	if b == nil {
		return nil
	}
	<-b.done
	return b.err
}

// Pending reports the entry and byte counts waiting in the open batch.
func (w *Writer) Pending() (entries, bytes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil {
		return 0, 0
	}
	return w.cur.entries, w.cur.bytes
}

// Close commits any pending batch, stops the committer, and closes the
// cached descriptors. Appends racing Close either make the final batch
// (and get a real durability verdict) or fail with ErrWriterClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	already := w.closed
	w.closed = true
	w.mu.Unlock()
	if !already {
		close(w.stop)
	}
	<-w.exited
	return w.closeErr
}

// run is the committer: one goroutine owning the descriptors and the
// commit order, so file writes need no locking at all.
func (w *Writer) run() {
	for {
		select {
		case <-w.wake:
			w.commitNext(false)
		case <-w.stop:
			w.commitNext(true) // final flush: drain without delay
			for _, f := range w.files {
				if err := f.Close(); err != nil && w.closeErr == nil {
					w.closeErr = fmt.Errorf("perflog: close: %w", err)
				}
			}
			close(w.exited)
			return
		}
	}
}

// commitNext waits out the accumulation window on the open batch (new
// appends keep joining it meanwhile), detaches it, and commits.
func (w *Writer) commitNext(draining bool) {
	w.mu.Lock()
	b := w.cur
	w.mu.Unlock()
	if b == nil {
		return
	}
	if d := w.opt.MaxDelay; d > 0 && !draining {
		t := time.NewTimer(time.Until(b.started.Add(d)))
		select {
		case <-t.C:
		case <-b.full:
		case <-w.stop:
		}
		t.Stop()
	}
	w.mu.Lock()
	b = w.cur
	w.cur = nil
	w.inflight = b
	w.mu.Unlock()
	if b == nil {
		return
	}
	b.err = w.commit(b)
	// Deliver the verdict before forgetting the in-flight batch: a Flush
	// that finds inflight nil may return nil, which is only sound once
	// done is closed and every waiter can read err.
	close(b.done)
	w.mu.Lock()
	if w.inflight == b {
		w.inflight = nil
	}
	w.mu.Unlock()
}

// commit makes one batch durable: one write and one fsync per target
// file, OnCommit notifications, then metrics. Any error fails the whole
// batch.
func (w *Writer) commit(b *writeBatch) error {
	// Both injection points fire per commit and before any byte reaches
	// a file, so an injected fault can never acknowledge or strand a
	// partial batch — the property the chaos suite leans on.
	if err := faultinject.Fire("perflog.open"); err != nil {
		metricCommitsError.Inc()
		return fmt.Errorf("perflog: %w", err)
	}
	if err := faultinject.Fire("perflog.sync"); err != nil {
		metricCommitsError.Inc()
		return fmt.Errorf("perflog: %w", err)
	}
	type staged struct {
		g    *commitGroup
		key  string
		path string
		f    *os.File
		off  int64
	}
	stage := make([]staged, 0, len(b.order))
	for _, key := range b.order {
		g := b.groups[key]
		f, path, err := w.file(key, g.system, g.benchmark)
		if err != nil {
			metricCommitsError.Inc()
			return err
		}
		stage = append(stage, staged{g: g, key: key, path: path, f: f})
	}
	for i := range stage {
		st := &stage[i]
		if _, err := st.f.Write(st.g.buf); err != nil {
			w.drop(st.key)
			metricCommitsError.Inc()
			return fmt.Errorf("perflog: %s: %w", st.path, err)
		}
		// The landing offset must come from the descriptor position
		// *after* the write: O_APPEND means an out-of-band appender can
		// slip bytes in ahead of us, and an offset sampled before the
		// write would then point into the middle of our own bytes — the
		// store would accept it (it still matches its checkpoint) and
		// advance the checkpoint over bytes it never ingested. The
		// post-write position is the truth; a raced commit carries an
		// offset past the checkpoint, AddBatch declines it, and SyncFile
		// parses the gap from the file.
		pos, err := st.f.Seek(0, io.SeekCurrent)
		if err != nil {
			w.drop(st.key)
			metricCommitsError.Inc()
			return fmt.Errorf("perflog: %s: %w", st.path, err)
		}
		st.off = pos - int64(len(st.g.buf))
	}
	for i := range stage {
		st := &stage[i]
		t0 := time.Now()
		if err := st.f.Sync(); err != nil {
			w.drop(st.key)
			metricCommitsError.Inc()
			return fmt.Errorf("perflog: sync %s: %w", st.path, err)
		}
		metricFsyncSeconds.Observe(time.Since(t0).Seconds())
	}
	if w.opt.OnCommit != nil {
		for i := range stage {
			st := &stage[i]
			w.opt.OnCommit(Commit{
				Path:      st.path,
				System:    st.g.system,
				Benchmark: st.g.benchmark,
				Entries:   st.g.entries,
				Offset:    st.off,
				Bytes:     int64(len(st.g.buf)),
			})
		}
	}
	metricCommitsOK.Inc()
	metricCommitEntries.Observe(float64(b.entries))
	return nil
}

// file returns the cached descriptor for one (system, benchmark)
// target, opening (and creating) it on first use.
func (w *Writer) file(key, system, benchmark string) (*os.File, string, error) {
	path := filepath.Join(w.root, system, benchmark+".log")
	if f, ok := w.files[key]; ok {
		return f, path, nil
	}
	if err := os.MkdirAll(filepath.Join(w.root, system), 0o755); err != nil {
		return nil, "", fmt.Errorf("perflog: %w", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, "", fmt.Errorf("perflog: %w", err)
	}
	w.files[key] = f
	return f, path, nil
}

// drop closes and forgets a descriptor after a write or sync error:
// fsync failures are sticky on some kernels, so the next commit must
// reopen rather than reuse a descriptor in an unknown state.
func (w *Writer) drop(key string) {
	if f, ok := w.files[key]; ok {
		f.Close()
		delete(w.files, key)
	}
}
