// Package perflog reads and writes performance logs, the append-only
// per-benchmark records ReFrame produces (paper §2.4). Each run appends
// one line; post-processing assimilates the lines (possibly from several
// systems) into a DataFrame without manual copying — Principle 6.
//
// The line format is pipe-separated key=value fields:
//
//	ts=2023-07-07T10:02:11Z|benchmark=hpgmg-fv|system=archer2|partition=compute|environ=gcc|spec=hpgmg%gcc|job=17|result=pass|num_tasks=8|fom:l0=95.36 MDOF/s|fom:l1=83.43 MDOF/s
//
// FOM fields carry a "fom:" prefix and an optional unit after the value.
package perflog

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fom"
)

// Entry is one benchmark run record.
type Entry struct {
	Time      time.Time
	Benchmark string
	System    string
	Partition string
	Environ   string
	Spec      string
	JobID     int
	Result    string // "pass" or "fail"
	FOMs      map[string]fom.Value
	Extra     map[string]string // run parameters (num_tasks, ...)
}

// Pass reports whether the entry records a successful run.
func (e *Entry) Pass() bool { return e.Result == "pass" }

// Line renders the entry as one perflog line. Field order is fixed and
// FOMs/extras are sorted, so identical entries render identically.
//
// Rendering happens on every append — under the group-commit Writer,
// inside each appender's hot path — so the line is built into a single
// grown builder with no intermediate field slice, no per-field string
// concatenation, and numeric fields appended via the strconv Append
// forms.
func (e *Entry) Line() string {
	var b strings.Builder
	b.Grow(128 + 24*(len(e.Extra)+len(e.FOMs)))
	var scratch [40]byte
	b.WriteString("ts=")
	b.Write(e.Time.UTC().AppendFormat(scratch[:0], time.RFC3339))
	writeField(&b, "benchmark", e.Benchmark)
	writeField(&b, "system", e.System)
	writeField(&b, "partition", e.Partition)
	writeField(&b, "environ", e.Environ)
	writeField(&b, "spec", e.Spec)
	b.WriteString("|job=")
	b.Write(strconv.AppendInt(scratch[:0], int64(e.JobID), 10))
	writeField(&b, "result", e.Result)
	for _, k := range sortedKeys(e.Extra) {
		writeField(&b, k, e.Extra[k])
	}
	for _, k := range sortedFOMKeys(e.FOMs) {
		v := e.FOMs[k]
		b.WriteString("|fom:")
		b.WriteString(k)
		b.WriteByte('=')
		b.Write(strconv.AppendFloat(scratch[:0], v.Value, 'g', -1, 64))
		if v.Unit != "" {
			b.WriteByte(' ')
			writeEscaped(&b, v.Unit)
		}
	}
	return b.String()
}

// writeField appends "|key=value" with the value escaped. Keys are
// trusted (fixed field names and caller-controlled extras, as in the
// original join-based renderer).
func writeField(b *strings.Builder, key, val string) {
	b.WriteByte('|')
	b.WriteString(key)
	b.WriteByte('=')
	writeEscaped(b, val)
}

// ParseLine decodes one perflog line.
func ParseLine(line string) (*Entry, error) {
	e := &Entry{FOMs: map[string]fom.Value{}, Extra: map[string]string{}}
	if strings.TrimSpace(line) == "" {
		return nil, fmt.Errorf("perflog: empty line")
	}
	for _, field := range strings.Split(line, "|") {
		key, val, found := strings.Cut(field, "=")
		if !found {
			return nil, fmt.Errorf("perflog: malformed field %q", field)
		}
		val = unescape(val)
		switch key {
		case "ts":
			t, err := time.Parse(time.RFC3339, val)
			if err != nil {
				return nil, fmt.Errorf("perflog: bad timestamp %q: %w", val, err)
			}
			e.Time = t
		case "benchmark":
			e.Benchmark = val
		case "system":
			e.System = val
		case "partition":
			e.Partition = val
		case "environ":
			e.Environ = val
		case "spec":
			e.Spec = val
		case "job":
			id, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("perflog: bad job id %q", val)
			}
			e.JobID = id
		case "result":
			e.Result = val
		default:
			if name, ok := strings.CutPrefix(key, "fom:"); ok {
				numText, unit, _ := strings.Cut(val, " ")
				v, err := strconv.ParseFloat(numText, 64)
				if err != nil {
					return nil, fmt.Errorf("perflog: bad FOM value %q for %s", val, name)
				}
				e.FOMs[name] = fom.Value{Name: name, Value: v, Unit: unit}
			} else {
				e.Extra[key] = val
			}
		}
	}
	if e.Benchmark == "" {
		return nil, fmt.Errorf("perflog: line missing benchmark name")
	}
	return e, nil
}

// escape keeps the line format unambiguous: '|' and newlines cannot
// appear raw inside values.
func escape(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	s = strings.ReplaceAll(s, "|", `\p`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// writeEscaped is escape writing into a builder: the common clean value
// is copied in one WriteString, and each original byte maps to its
// escape sequence independently, so the output matches escape exactly.
func writeEscaped(b *strings.Builder, s string) {
	if !strings.ContainsAny(s, "\\|\n") {
		b.WriteString(s)
		return
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '|':
			b.WriteString(`\p`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'p':
			b.WriteByte('|')
		case 'n':
			b.WriteByte('\n')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Append appends entries to the perflog for a benchmark on a system,
// following the directory layout <root>/<system>/<benchmark>.log and
// creating directories as needed.
//
// The whole batch is rendered into one buffer and written with a single
// Write on the O_APPEND descriptor: concurrent appenders (several
// benchctl processes, or benchd workers) then never interleave bytes
// mid-line, which a buffered writer could do by splitting a line across
// flushes. The data is fsynced before Append reports success, so an
// acknowledged entry survives a crash immediately after — results are
// the whole point of a benchmark run, and perflogs are their only
// durable record (Principle 6).
//
// Injection points: "perflog.open" models the open failing,
// "perflog.sync" the fsync failing — the crash-mid-run cases the chaos
// suite exercises. Both fire before any byte is written, so an injected
// fault never leaves landed-but-unacknowledged bytes behind: chaos
// harnesses can arm either point on any write path and still account
// for every line exactly. (A real fsync error after the write does
// carry that ambiguity; it is surfaced but cannot be injected.)
func Append(root, system, benchmark string, entries ...*Entry) error {
	if err := faultinject.Fire("perflog.open"); err != nil {
		return fmt.Errorf("perflog: %w", err)
	}
	if err := faultinject.Fire("perflog.sync"); err != nil {
		return fmt.Errorf("perflog: %w", err)
	}
	dir := filepath.Join(root, system)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("perflog: %w", err)
	}
	path := filepath.Join(dir, benchmark+".log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("perflog: %w", err)
	}
	var buf strings.Builder
	for _, e := range entries {
		buf.WriteString(e.Line())
		buf.WriteByte('\n')
	}
	if _, err := f.WriteString(buf.String()); err != nil {
		f.Close()
		return fmt.Errorf("perflog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("perflog: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("perflog: close: %w", err)
	}
	return nil
}

// Read decodes all entries from one perflog file.
func Read(path string) ([]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("perflog: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}

// ReadFrom decodes entries from a stream, one line each.
func ReadFrom(r io.Reader) ([]*Entry, error) {
	var out []*Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("perflog: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perflog: %w", err)
	}
	return out, nil
}

// ReadTree walks a perflog root directory (as written by Append, possibly
// covering many systems) and returns every entry. This is the
// cross-platform assimilation step of §2.4: logs "generated on isolated
// systems" are collated in one pass.
func ReadTree(root string) ([]*Entry, error) {
	var out []*Entry
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".log") {
			return nil
		}
		entries, err := Read(path)
		if err != nil {
			// Read's errors name the line but not the file; a tree walk
			// without the path would leave the bad log unidentifiable.
			return fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, entries...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("perflog: %w", err)
	}
	return out, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFOMKeys(m map[string]fom.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
