package perflog

import (
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// waitPending spins until the writer's open batch holds n entries — the
// appenders are enqueued and blocked on the commit.
func waitPending(t *testing.T, w *Writer, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got, _ := w.Pending(); got == n {
			return
		}
		if time.Now().After(deadline) {
			got, _ := w.Pending()
			t.Fatalf("pending = %d entries, want %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriterAppendsDurableAndReadable(t *testing.T) {
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{})
	for i := 0; i < 3; i++ {
		e := sampleEntry()
		e.JobID = i
		if err := w.Append("archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append("csd3", "babelstream", sampleEntry()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("tree holds %d entries, want 4", len(entries))
	}
	// The Writer and the one-shot Append must produce byte-identical
	// files for the same entries.
	got, err := os.ReadFile(filepath.Join(root, "csd3", "babelstream.log"))
	if err != nil {
		t.Fatal(err)
	}
	if want := sampleEntry().Line() + "\n"; string(got) != want {
		t.Fatalf("writer rendered %q, want %q", got, want)
	}
}

// TestWriterConcurrentAppendersNoTornLines is the -race group-commit
// stress: many goroutines share one Writer across several target files;
// every acknowledged line must be present, whole, and unique after
// Close.
func TestWriterConcurrentAppendersNoTornLines(t *testing.T) {
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{MaxDelay: time.Millisecond})
	systems := []string{"archer2", "csd3"}
	benchmarks := []string{"hpgmg-fv", "babelstream"}
	// A value long enough that a torn write would split it mid-line.
	pad := ""
	for i := 0; i < 2048; i++ {
		pad += "x"
	}
	const writers, appends = 16, 8
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				e := sampleEntry()
				e.JobID = g*appends + i
				e.Extra["pad"] = pad
				sys := systems[(g+i)%len(systems)]
				bench := benchmarks[g%len(benchmarks)]
				if err := w.Append(sys, bench, e); err != nil {
					t.Errorf("writer %d append %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadTree(root)
	if err != nil {
		t.Fatalf("tree corrupt after concurrent appends: %v", err)
	}
	if len(entries) != writers*appends {
		t.Fatalf("tree holds %d entries, want %d", len(entries), writers*appends)
	}
	seen := map[int]bool{}
	for _, e := range entries {
		if e.Extra["pad"] != pad {
			t.Fatal("padding mangled: line torn or interleaved")
		}
		if seen[e.JobID] {
			t.Fatalf("job %d appears twice", e.JobID)
		}
		seen[e.JobID] = true
	}
}

// TestWriterGroupsAppendsIntoOneCommit pins the whole point: appenders
// enqueued while a batch is open share a single commit (one fsync),
// visible in perflog_commits_total.
func TestWriterGroupsAppendsIntoOneCommit(t *testing.T) {
	reg := telemetry.DefaultRegistry
	before, _ := reg.Value("perflog_commits_total", "ok")
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{MaxDelay: time.Hour})
	defer w.Close()
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			e := sampleEntry()
			e.JobID = i
			errs <- w.Append("archer2", "hpgmg-fv", e)
		}(i)
	}
	waitPending(t, w, n)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	after, _ := reg.Value("perflog_commits_total", "ok")
	if got := after - before; got != 1 {
		t.Fatalf("%d appends committed in %g commits, want exactly 1", n, got)
	}
	entries, err := Read(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("log holds %d entries, want %d", len(entries), n)
	}
}

// TestWriterSyncFaultFailsWholeBatch: when a commit's fsync faults,
// every appender in the batch sees the failure, nothing lands, and the
// writer recovers on the next commit.
func TestWriterSyncFaultFailsWholeBatch(t *testing.T) {
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{MaxDelay: time.Hour})
	defer w.Close()
	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			e := sampleEntry()
			e.JobID = i
			errs <- w.Append("archer2", "hpgmg-fv", e)
		}(i)
	}
	waitPending(t, w, n)
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perflog.sync", Kind: faultinject.KindError, Times: 1, Msg: "fsync lost power"},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	if err := w.Flush(); err == nil {
		t.Fatal("Flush acknowledged a batch whose sync failed")
	}
	for i := 0; i < n; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("an appender in a failed batch was acknowledged")
		}
		if !faultinject.Is(err) {
			t.Fatalf("batch failure not surfaced as a typed fault: %v", err)
		}
	}
	// The fault fired before any byte was written: nothing landed.
	if _, err := os.Stat(filepath.Join(root, "archer2", "hpgmg-fv.log")); !os.IsNotExist(err) {
		t.Fatalf("log file exists after faulted commit (stat err %v)", err)
	}
	// The schedule is exhausted: the writer recovers and the next batch
	// commits cleanly. (MaxDelay is an hour, so the append must be
	// flushed explicitly — a bare Append would wait out the window.)
	recovered := make(chan error, 1)
	go func() { recovered <- w.Append("archer2", "hpgmg-fv", sampleEntry()) }()
	waitPending(t, w, 1)
	if err := w.Flush(); err != nil {
		t.Fatalf("recovery flush: %v", err)
	}
	if err := <-recovered; err != nil {
		t.Fatal(err)
	}
	entries, err := Read(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("log holds %d entries after recovery, want 1", len(entries))
	}
}

func TestWriterOpenFaultFailsBatch(t *testing.T) {
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{MaxDelay: time.Hour})
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.Append("archer2", "hpgmg-fv", sampleEntry()) }()
	waitPending(t, w, 1)
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perflog.open", Kind: faultinject.KindError, Times: 1},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	w.Flush()
	if err := <-done; !faultinject.Is(err) {
		t.Fatalf("open fault not surfaced: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "archer2")); !os.IsNotExist(err) {
		t.Fatalf("directory created despite open fault (stat err %v)", err)
	}
}

// TestWriterOnCommitReportsExactExtents: each durable commit hands
// OnCommit the file, the parsed entries, and exactly where their bytes
// sit — consecutive commits tile the file with no gap or overlap.
func TestWriterOnCommitReportsExactExtents(t *testing.T) {
	root := t.TempDir()
	var mu sync.Mutex
	var commits []Commit
	w := NewWriter(root, WriterOptions{OnCommit: func(c Commit) {
		mu.Lock()
		commits = append(commits, c)
		mu.Unlock()
	}})
	e1, e2 := sampleEntry(), sampleEntry()
	e2.JobID = 18
	if err := w.Append("archer2", "hpgmg-fv", e1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("archer2", "hpgmg-fv", e2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(commits) != 2 {
		t.Fatalf("saw %d commits, want 2", len(commits))
	}
	path := filepath.Join(root, "archer2", "hpgmg-fv.log")
	if commits[0].Path != path || commits[1].Path != path {
		t.Fatalf("commit paths = %q, %q, want %q", commits[0].Path, commits[1].Path, path)
	}
	if commits[0].Offset != 0 {
		t.Fatalf("first commit offset = %d, want 0", commits[0].Offset)
	}
	if commits[1].Offset != commits[0].Bytes {
		t.Fatalf("second commit offset = %d, want %d (end of first)", commits[1].Offset, commits[0].Bytes)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != commits[1].Offset+commits[1].Bytes {
		t.Fatalf("file size %d != end of last commit %d", st.Size(), commits[1].Offset+commits[1].Bytes)
	}
	if len(commits[0].Entries) != 1 || commits[0].Entries[0] != e1 {
		t.Fatal("first commit does not carry its entry")
	}
	if commits[0].System != "archer2" || commits[0].Benchmark != "hpgmg-fv" {
		t.Fatalf("commit identity = %s/%s", commits[0].System, commits[0].Benchmark)
	}
}

// TestWriterCloseFlushesPending: Close is a graceful flush — an entry
// still accumulating under a long MaxDelay is committed, not dropped,
// and its appender is acknowledged. Appends after Close are refused.
func TestWriterCloseFlushesPending(t *testing.T) {
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{MaxDelay: time.Hour})
	done := make(chan error, 1)
	go func() { done <- w.Append("archer2", "hpgmg-fv", sampleEntry()) }()
	waitPending(t, w, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("pending append not flushed by Close: %v", err)
	}
	entries, err := Read(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("log holds %d entries, want 1", len(entries))
	}
	if err := w.Append("archer2", "hpgmg-fv", sampleEntry()); err != ErrWriterClosed {
		t.Fatalf("append after Close = %v, want ErrWriterClosed", err)
	}
}

// TestWriterMaxBytesCutsTheWindow: a batch that reaches MaxBytes
// commits immediately even under an hour-long accumulation window.
func TestWriterMaxBytesCutsTheWindow(t *testing.T) {
	root := t.TempDir()
	w := NewWriter(root, WriterOptions{MaxDelay: time.Hour, MaxBytes: 1})
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.Append("archer2", "hpgmg-fv", sampleEntry()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("append blocked: MaxBytes did not cut the accumulation window")
	}
}

func TestTreeAppenderMatchesAppend(t *testing.T) {
	rootA, rootB := t.TempDir(), t.TempDir()
	if err := Append(rootA, "archer2", "hpgmg-fv", sampleEntry()); err != nil {
		t.Fatal(err)
	}
	if err := TreeAppender(rootB).Append("archer2", "hpgmg-fv", sampleEntry()); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(rootA, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(rootB, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("TreeAppender wrote %q, one-shot Append wrote %q", b, a)
	}
}

// TestWriterManyFilesOneBatch: a single batch spanning several
// (system, benchmark) targets commits each file once with its own
// OnCommit notification.
func TestWriterManyFilesOneBatch(t *testing.T) {
	root := t.TempDir()
	var mu sync.Mutex
	byFile := map[string]int{}
	w := NewWriter(root, WriterOptions{MaxDelay: time.Hour, OnCommit: func(c Commit) {
		mu.Lock()
		byFile[c.System+"/"+c.Benchmark] += len(c.Entries)
		mu.Unlock()
	}})
	defer w.Close()
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			e := sampleEntry()
			e.JobID = i
			errs <- w.Append("sys"+strconv.Itoa(i%3), "bench", e)
		}(i)
	}
	waitPending(t, w, n)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(byFile) != 3 {
		t.Fatalf("commit notified %d files, want 3: %v", len(byFile), byFile)
	}
	for f, c := range byFile {
		if c != 2 {
			t.Errorf("file %s got %d entries, want 2", f, c)
		}
	}
}

// TestWriterCommitOffsetTrueUnderOOBAppends is the regression for the
// stale-offset race: out-of-band one-shot Appends hammer the same file
// the Writer is committing to, so bytes can land between the Writer's
// descriptor operations and its write. Every reported Commit extent
// [Offset, Offset+Bytes) must still contain exactly that commit's
// rendered lines — an offset sampled before the write would point at
// the out-of-band bytes instead, and a store trusting it would skip
// them and mis-advance its checkpoint into the commit's own bytes.
func TestWriterCommitOffsetTrueUnderOOBAppends(t *testing.T) {
	root := t.TempDir()
	var mu sync.Mutex
	var commits []Commit
	w := NewWriter(root, WriterOptions{OnCommit: func(c Commit) {
		mu.Lock()
		commits = append(commits, c)
		mu.Unlock()
	}})
	const viaWriter, oob = 64, 64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < viaWriter; i++ {
			e := sampleEntry()
			e.JobID = i
			if err := w.Append("archer2", "hpgmg-fv", e); err != nil {
				t.Errorf("writer append %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < oob; i++ {
			e := sampleEntry()
			e.JobID = viaWriter + i
			if err := Append(root, "archer2", "hpgmg-fv", e); err != nil {
				t.Errorf("oob append %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	committed := 0
	for _, c := range commits {
		committed += len(c.Entries)
		if c.Offset+c.Bytes > int64(len(raw)) {
			t.Fatalf("commit extent [%d,%d) beyond file size %d", c.Offset, c.Offset+c.Bytes, len(raw))
		}
		var want []byte
		for _, e := range c.Entries {
			want = append(want, e.Line()...)
			want = append(want, '\n')
		}
		if got := raw[c.Offset : c.Offset+c.Bytes]; string(got) != string(want) {
			t.Fatalf("commit extent [%d,%d) holds other bytes:\n got %q\nwant %q",
				c.Offset, c.Offset+c.Bytes, got, want)
		}
	}
	if committed != viaWriter {
		t.Fatalf("commits carried %d entries, want %d", committed, viaWriter)
	}
	entries, err := ReadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != viaWriter+oob {
		t.Fatalf("tree holds %d entries, want %d", len(entries), viaWriter+oob)
	}
}

// TestWriterFlushWaitsForInflightCommit: Flush called while the batch
// is already detached and mid-commit (cur is nil, verdict pending) must
// block until that commit's durability verdict instead of returning nil
// early — otherwise a caller could Flush, read the store, and miss
// entries whose fsync had not yet happened.
func TestWriterFlushWaitsForInflightCommit(t *testing.T) {
	root := t.TempDir()
	hold := make(chan struct{})
	entered := make(chan struct{})
	w := NewWriter(root, WriterOptions{OnCommit: func(Commit) {
		close(entered)
		<-hold
	}})
	defer w.Close()
	appendDone := make(chan error, 1)
	go func() { appendDone <- w.Append("archer2", "hpgmg-fv", sampleEntry()) }()
	<-entered // committer is inside the commit: cur nil, verdict pending
	flushDone := make(chan error, 1)
	go func() { flushDone <- w.Flush() }()
	select {
	case err := <-flushDone:
		t.Fatalf("Flush returned %v while a commit was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(hold)
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	if err := <-appendDone; err != nil {
		t.Fatal(err)
	}
}
