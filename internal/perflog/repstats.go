package perflog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RepStats is the per-FOM repetition aggregate carried in perflog extras.
// It mirrors stats.Summary but lives here so perfstore and perfplot can
// decode entries without importing the stats package.
type RepStats struct {
	N      int     // measured repetitions contributing to the aggregate
	Mean   float64 // mean of measured repetitions
	Stddev float64 // sample standard deviation (n-1)
	RSD    float64 // |stddev/mean|, the variance-gate input
	CILo   float64 // bootstrap CI lower bound on the mean
	CIHi   float64 // bootstrap CI upper bound on the mean
}

// Repetition extras ride in Entry.Extra under "rep:<fom>:<field>" keys so
// the line format — and every pre-repetition consumer — is unchanged. A
// pre-PR line simply has none of these keys and decodes to (zero, false).
const repPrefix = "rep:"

var repFields = [...]string{"n", "mean", "stddev", "rsd", "ci_lo", "ci_hi"}

func repKey(fomName, field string) string {
	return repPrefix + fomName + ":" + field
}

func formatRepFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SetRepStats records the repetition aggregate for one FOM in the entry's
// extras. FOM names containing the extras reserved characters ('=', '|',
// newline) are rejected by Line() downstream exactly as for any extra key.
func (e *Entry) SetRepStats(fomName string, s RepStats) {
	if e.Extra == nil {
		e.Extra = map[string]string{}
	}
	e.Extra[repKey(fomName, "n")] = strconv.Itoa(s.N)
	e.Extra[repKey(fomName, "mean")] = formatRepFloat(s.Mean)
	e.Extra[repKey(fomName, "stddev")] = formatRepFloat(s.Stddev)
	e.Extra[repKey(fomName, "rsd")] = formatRepFloat(s.RSD)
	e.Extra[repKey(fomName, "ci_lo")] = formatRepFloat(s.CILo)
	e.Extra[repKey(fomName, "ci_hi")] = formatRepFloat(s.CIHi)
}

// RepStats decodes the repetition aggregate for one FOM. ok is false when
// the entry predates the repetition protocol (no rep extras) or the extras
// are malformed — callers then fall back to the single-point value.
func (e *Entry) RepStats(fomName string) (RepStats, bool) {
	if e.Extra == nil {
		return RepStats{}, false
	}
	nStr, present := e.Extra[repKey(fomName, "n")]
	if !present {
		return RepStats{}, false
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 1 {
		return RepStats{}, false
	}
	s := RepStats{N: n}
	for _, field := range repFields[1:] {
		raw, present := e.Extra[repKey(fomName, field)]
		if !present {
			return RepStats{}, false
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return RepStats{}, false
		}
		switch field {
		case "mean":
			s.Mean = v
		case "stddev":
			s.Stddev = v
		case "rsd":
			s.RSD = v
		case "ci_lo":
			s.CILo = v
		case "ci_hi":
			s.CIHi = v
		}
	}
	return s, true
}

// RepFOMs lists the FOM names that carry repetition extras, in map order.
func (e *Entry) RepFOMs() []string {
	var names []string
	for k := range e.Extra {
		if !strings.HasPrefix(k, repPrefix) || !strings.HasSuffix(k, ":n") {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(k, repPrefix), ":n")
		if name != "" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// FormatRepStats renders the aggregate for human-facing tables:
// "mean ± stddev [ci_lo, ci_hi] n=N".
func FormatRepStats(s RepStats) string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] n=%d", s.Mean, s.Stddev, s.CILo, s.CIHi, s.N)
}
