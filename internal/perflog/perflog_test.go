package perflog

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fom"
)

func sampleEntry() *Entry {
	return &Entry{
		Time:      time.Date(2023, 7, 7, 10, 2, 11, 0, time.UTC),
		Benchmark: "hpgmg-fv",
		System:    "archer2",
		Partition: "compute",
		Environ:   "gcc",
		Spec:      "hpgmg%gcc",
		JobID:     17,
		Result:    "pass",
		FOMs: map[string]fom.Value{
			"l0": {Name: "l0", Value: 95.36, Unit: "MDOF/s"},
			"l1": {Name: "l1", Value: 83.43, Unit: "MDOF/s"},
			"l2": {Name: "l2", Value: 62.18, Unit: "MDOF/s"},
		},
		Extra: map[string]string{"num_tasks": "8", "num_cpus_per_task": "8"},
	}
}

func TestLineRoundTrip(t *testing.T) {
	e := sampleEntry()
	line := e.Line()
	got, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != e.Benchmark || got.System != e.System || got.JobID != e.JobID {
		t.Errorf("header mismatch: %+v", got)
	}
	if !got.Time.Equal(e.Time) {
		t.Errorf("time = %v", got.Time)
	}
	if len(got.FOMs) != 3 {
		t.Fatalf("FOMs = %v", got.FOMs)
	}
	if got.FOMs["l0"].Value != 95.36 || got.FOMs["l0"].Unit != "MDOF/s" {
		t.Errorf("l0 = %+v", got.FOMs["l0"])
	}
	if got.Extra["num_tasks"] != "8" {
		t.Errorf("extra = %v", got.Extra)
	}
	if !got.Pass() {
		t.Error("pass flag lost")
	}
}

func TestLineDeterministic(t *testing.T) {
	a, b := sampleEntry().Line(), sampleEntry().Line()
	if a != b {
		t.Error("identical entries must render identically")
	}
}

func TestEscaping(t *testing.T) {
	e := sampleEntry()
	e.Spec = `weird|spec with \back\slash` + "\nnewline"
	line := e.Line()
	if strings.Count(line, "\n") != 0 {
		t.Fatal("newline leaked into line")
	}
	got, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != e.Spec {
		t.Errorf("spec = %q, want %q", got.Spec, e.Spec)
	}
}

func TestEscapingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chars := []byte(`ab|\n=:%` + "\n")
		buf := make([]byte, r.Intn(20))
		for i := range buf {
			buf[i] = chars[r.Intn(len(chars))]
		}
		e := sampleEntry()
		e.Spec = string(buf)
		got, err := ParseLine(e.Line())
		if err != nil {
			return false
		}
		return got.Spec == e.Spec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"nokeyvalue",
		"ts=notatime|benchmark=x",
		"benchmark=x|job=NaN",
		"benchmark=x|fom:y=abc",
		"ts=2023-07-07T10:02:11Z|system=a", // no benchmark
	} {
		if _, err := ParseLine(bad); err == nil {
			t.Errorf("ParseLine(%q): expected error", bad)
		}
	}
}

func TestAppendAndRead(t *testing.T) {
	root := t.TempDir()
	e1, e2 := sampleEntry(), sampleEntry()
	e2.JobID = 18
	if err := Append(root, "archer2", "hpgmg-fv", e1, e2); err != nil {
		t.Fatal(err)
	}
	// Appending again grows the log (append-only).
	e3 := sampleEntry()
	e3.JobID = 19
	if err := Append(root, "archer2", "hpgmg-fv", e3); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	if entries[2].JobID != 19 {
		t.Errorf("order not preserved: %+v", entries[2])
	}
}

func TestReadTreeAssimilatesSystems(t *testing.T) {
	// Principle 6: logs from isolated systems collate in one pass.
	root := t.TempDir()
	for _, sys := range []string{"archer2", "cosma8", "csd3", "isambard-macs"} {
		e := sampleEntry()
		e.System = sys
		if err := Append(root, sys, "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	all, err := ReadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("assimilated %d entries, want 4", len(all))
	}
	systems := map[string]bool{}
	for _, e := range all {
		systems[e.System] = true
	}
	if len(systems) != 4 {
		t.Errorf("systems = %v", systems)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.log")
	content := "# perflog for x\n\n" + sampleEntry().Line() + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("entries = %d", len(entries))
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.log")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadCorruptLineReportsLineNumber(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.log")
	content := sampleEntry().Line() + "\ngarbage line\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Read(path)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestAppendConcurrentWritersNeverInterleave(t *testing.T) {
	// Many goroutines append batches to the same file through separate
	// O_APPEND descriptors, as concurrent benchctl processes or benchd
	// workers would. Every line must parse back intact: a writer that
	// issues more than one syscall per batch can interleave mid-line.
	root := t.TempDir()
	const writers = 16
	const batches = 8
	// A long extra value makes each line big enough that split writes
	// would show up as corruption.
	pad := strings.Repeat("x", 2048)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				e := sampleEntry()
				e.JobID = w*1000 + b
				e.Extra["pad"] = pad
				if err := Append(root, "archer2", "hpgmg-fv", e, e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	entries, err := Read(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatalf("interleaved write corrupted the log: %v", err)
	}
	if len(entries) != writers*batches*2 {
		t.Errorf("entries = %d, want %d", len(entries), writers*batches*2)
	}
	for _, e := range entries {
		if e.Extra["pad"] != pad {
			t.Fatal("padding mangled")
		}
	}
}

// Append must not acknowledge an entry until it is synced to stable
// storage: a fault injected at the sync step (the crash-mid-run case)
// must surface as an error, and the perflog.open point must gate the
// write entirely.
func TestAppendSurfacesSyncFault(t *testing.T) {
	root := t.TempDir()
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perflog.sync", Kind: faultinject.KindError, Times: 1, Msg: "fsync lost power"},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	err := Append(root, "archer2", "hpgmg-fv", sampleEntry())
	if err == nil {
		t.Fatal("Append acknowledged an entry whose sync failed")
	}
	if !faultinject.Is(err) {
		t.Fatalf("sync failure not surfaced as a typed fault: %v", err)
	}
	if !strings.Contains(err.Error(), "fsync lost power") {
		t.Fatalf("fault message lost: %v", err)
	}

	// The schedule is exhausted: the next append lands and is readable.
	if err := Append(root, "archer2", "hpgmg-fv", sampleEntry()); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(filepath.Join(root, "archer2", "hpgmg-fv.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Injected sync faults fire before the write, so the faulted append
	// left nothing behind: exactly the acknowledged entry is present.
	if len(entries) != 1 {
		t.Fatalf("log holds %d entries after one faulted and one acknowledged append, want 1", len(entries))
	}
}

func TestAppendSurfacesOpenFault(t *testing.T) {
	root := t.TempDir()
	if err := faultinject.Load(1, []faultinject.Rule{
		{Point: "perflog.open", Kind: faultinject.KindError, Times: 1},
	}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	if err := Append(root, "archer2", "hpgmg-fv", sampleEntry()); !faultinject.Is(err) {
		t.Fatalf("open fault not surfaced: %v", err)
	}
	// Nothing may have been written: the fault fired before the open.
	if _, err := os.Stat(filepath.Join(root, "archer2", "hpgmg-fv.log")); !os.IsNotExist(err) {
		t.Fatalf("log file exists after open fault (stat err %v)", err)
	}
}
