package perflog

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lineReference is the pre-optimization Line renderer (field slice +
// strings.Join), kept verbatim so BenchmarkEntryLine measures the
// rewrite against the real baseline and TestLineMatchesReference pins
// byte-for-byte compatibility.
func lineReference(e *Entry) string {
	var parts []string
	add := func(k, v string) {
		parts = append(parts, k+"="+escape(v))
	}
	add("ts", e.Time.UTC().Format(time.RFC3339))
	add("benchmark", e.Benchmark)
	add("system", e.System)
	add("partition", e.Partition)
	add("environ", e.Environ)
	add("spec", e.Spec)
	add("job", strconv.Itoa(e.JobID))
	add("result", e.Result)
	for _, k := range sortedKeys(e.Extra) {
		add(k, e.Extra[k])
	}
	for _, k := range sortedFOMKeys(e.FOMs) {
		v := e.FOMs[k]
		text := strconv.FormatFloat(v.Value, 'g', -1, 64)
		if v.Unit != "" {
			text += " " + v.Unit
		}
		add("fom:"+k, text)
	}
	return strings.Join(parts, "|")
}

func TestLineMatchesReference(t *testing.T) {
	entries := []*Entry{sampleEntry()}
	esc := sampleEntry()
	esc.Spec = `weird|spec with \back\slash` + "\nnewline"
	esc.Extra["key"] = "a|b\\c\nd"
	esc.FOMs["gb_per_s"] = esc.FOMs["l0"]
	entries = append(entries, esc)
	empty := &Entry{Time: time.Unix(0, 0), Benchmark: "b", Result: "fail"}
	entries = append(entries, empty)
	for i, e := range entries {
		if got, want := e.Line(), lineReference(e); got != want {
			t.Errorf("entry %d: Line() diverged from reference\n got %q\nwant %q", i, got, want)
		}
	}
}

func BenchmarkEntryLine(b *testing.B) {
	e := sampleEntry()
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = e.Line()
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = lineReference(e)
		}
	})
}

// BenchmarkAppend measures the write path end to end — render, write,
// fsync — at 1, 8, and 64 concurrent appenders, comparing the
// group-commit Writer against the one-shot per-entry-fsync Append.
// appends/s is the figure of merit: grouping amortizes one fsync over
// every appender waiting in the batch, so the gap should widen with
// writer count.
func BenchmarkAppend(b *testing.B) {
	for _, writers := range []int{1, 8, 64} {
		writers := writers
		b.Run(fmt.Sprintf("grouped/writers=%d", writers), func(b *testing.B) {
			root := b.TempDir()
			w := NewWriter(root, WriterOptions{})
			defer w.Close()
			benchAppenders(b, writers, func(job int) error {
				e := sampleEntry()
				e.JobID = job
				return w.Append("archer2", "hpgmg-fv", e)
			})
		})
		b.Run(fmt.Sprintf("fsync-per-entry/writers=%d", writers), func(b *testing.B) {
			root := b.TempDir()
			benchAppenders(b, writers, func(job int) error {
				e := sampleEntry()
				e.JobID = job
				return Append(root, "archer2", "hpgmg-fv", e)
			})
		})
	}
}

// benchAppenders distributes b.N appends over the given number of
// goroutines via a shared counter, so every variant does identical
// total work regardless of concurrency.
func benchAppenders(b *testing.B, writers int, appendOne func(job int) error) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job := int(next.Add(1))
				if job > b.N {
					return
				}
				if err := appendOne(job); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
}
