package perflog

import (
	"reflect"
	"sort"
	"testing"
)

func TestRepStatsRoundTrip(t *testing.T) {
	e := &Entry{}
	want := RepStats{N: 5, Mean: 95.361, Stddev: 1.25, RSD: 0.0131, CILo: 94.2, CIHi: 96.5}
	e.SetRepStats("triad_mbps", want)

	got, ok := e.RepStats("triad_mbps")
	if !ok {
		t.Fatal("RepStats not found after SetRepStats")
	}
	if got != want {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}

	// And through the line format.
	e.Benchmark = "babelstream-omp"
	e.System = "archer2"
	e.Result = "pass"
	parsed, err := ParseLine(e.Line())
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	got2, ok := parsed.RepStats("triad_mbps")
	if !ok || got2 != want {
		t.Fatalf("line round trip: ok=%v got %+v want %+v", ok, got2, want)
	}
}

func TestRepStatsAbsentAndMalformed(t *testing.T) {
	e := &Entry{}
	if _, ok := e.RepStats("triad_mbps"); ok {
		t.Fatal("nil extras reported stats")
	}
	e.Extra = map[string]string{"num_tasks": "8"}
	if _, ok := e.RepStats("triad_mbps"); ok {
		t.Fatal("pre-repetition entry reported stats")
	}
	// n present but mean missing → malformed, not a partial decode.
	e.Extra["rep:triad_mbps:n"] = "3"
	if _, ok := e.RepStats("triad_mbps"); ok {
		t.Fatal("partial rep extras decoded")
	}
	e.SetRepStats("triad_mbps", RepStats{N: 3, Mean: 1})
	e.Extra["rep:triad_mbps:mean"] = "not-a-float"
	if _, ok := e.RepStats("triad_mbps"); ok {
		t.Fatal("malformed float decoded")
	}
	e.SetRepStats("triad_mbps", RepStats{N: 3, Mean: 1})
	e.Extra["rep:triad_mbps:n"] = "0"
	if _, ok := e.RepStats("triad_mbps"); ok {
		t.Fatal("n=0 decoded as valid stats")
	}
}

func TestRepFOMs(t *testing.T) {
	e := &Entry{}
	if names := e.RepFOMs(); len(names) != 0 {
		t.Fatalf("empty entry listed rep FOMs: %v", names)
	}
	e.SetRepStats("triad_mbps", RepStats{N: 3})
	e.SetRepStats("gflops", RepStats{N: 5})
	names := e.RepFOMs()
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"gflops", "triad_mbps"}) {
		t.Fatalf("RepFOMs = %v", names)
	}
}

func TestFormatRepStats(t *testing.T) {
	got := FormatRepStats(RepStats{N: 4, Mean: 10.5, Stddev: 0.25, CILo: 10.2, CIHi: 10.8})
	want := "10.500 ± 0.250 [10.200, 10.800] n=4"
	if got != want {
		t.Fatalf("FormatRepStats = %q, want %q", got, want)
	}
}
