package hpcg

import (
	"fmt"
	"math"
)

// CGResult reports one preconditioned-CG solve.
type CGResult struct {
	Iterations    int
	Residual      float64 // final ‖r‖₂
	InitResidual  float64
	Converged     bool
	Flops         float64 // total floating point operations performed
	VectorTraffic float64 // estimated bytes moved by vector ops (for simulation)
}

// CG runs preconditioned conjugate gradients on op, solving A·x = b in
// place. It stops at maxIters or when ‖r‖ drops below tol·‖r₀‖,
// accumulating the flop count the benchmark's GFLOP/s rating divides by.
func CG(op Operator, b, x []float64, maxIters int, tol float64) (*CGResult, error) {
	n := op.Grid().N()
	if len(b) != n || len(x) != n {
		return nil, fmt.Errorf("hpcg: vector length %d/%d does not match grid %s", len(b), len(x), op.Grid())
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	res := &CGResult{}
	fn := float64(n)

	// r = b - A·x
	op.Apply(x, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	res.Flops += op.FlopsPerApply() + fn
	res.VectorTraffic += 32 * fn

	op.Precondition(r, z)
	res.Flops += op.FlopsPerPrecondition()
	copy(p, z)

	rz := dot(r, z)
	res.Flops += 2 * fn
	res.InitResidual = norm2(r)
	res.Flops += 2 * fn
	if res.InitResidual == 0 {
		res.Converged = true
		return res, nil
	}

	for iter := 1; iter <= maxIters; iter++ {
		op.Apply(p, ap)
		res.Flops += op.FlopsPerApply()
		res.VectorTraffic += op.BytesPerApply()

		pap := dot(p, ap)
		res.Flops += 2 * fn
		res.VectorTraffic += 16 * fn
		if pap <= 0 {
			return nil, fmt.Errorf("hpcg: operator not positive definite (p·Ap = %g at iteration %d)", pap, iter)
		}
		alpha := rz / pap
		axpy(x, alpha, p)   // x += α p
		axpy(r, -alpha, ap) // r -= α Ap
		res.Flops += 4 * fn
		res.VectorTraffic += 48 * fn

		res.Iterations = iter
		res.Residual = norm2(r)
		res.Flops += 2 * fn
		res.VectorTraffic += 8 * fn
		if res.Residual <= tol*res.InitResidual {
			res.Converged = true
			return res, nil
		}

		op.Precondition(r, z)
		res.Flops += op.FlopsPerPrecondition()
		res.VectorTraffic += 2 * op.BytesPerApply() // symmetric sweep ≈ two applies

		rzNew := dot(r, z)
		res.Flops += 2 * fn
		res.VectorTraffic += 16 * fn
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		res.Flops += 2 * fn
		res.VectorTraffic += 24 * fn
	}
	return res, nil
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}
