package hpcg

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/platform"
)

// Table 2 reproduction: HPCG is memory-bound, so each variant's GFLOP/s
// on a platform is (sustained bandwidth) / (arithmetic-intensity⁻¹), with
// the effective bytes-per-flop depending on both the variant and the
// cache hierarchy. The table below is calibrated from the paper's Table 2
// figures:
//
//   - CSR streams 12 bytes of matrix per nonzero plus gather traffic, and
//     its intensity barely changes with cache size.
//   - The vendor-tuned CSR reduces gather and index overheads.
//   - Matrix-free drops the matrix entirely; its remaining vector traffic
//     shrinks further on Rome, whose 256 MB/socket L3 (vs Cascade Lake's
//     27.5 MB) captures the stencil's plane reuse.
//   - LFRic reads several coefficient fields per column with strided
//     access; Rome's cache again absorbs much of the re-read traffic.
var bytesPerFlop = map[string]map[string]float64{
	// variant -> microarch -> effective DRAM bytes per flop
	"original":    {"cascadelake": 9.40, "rome": 8.57, "milan": 8.40, "thunderx2": 9.00, "host": 9.00},
	"intel-avx2":  {"cascadelake": 5.78}, // vendor binaries exist only for Intel (Table 2: N/A on AMD)
	"matrix-free": {"cascadelake": 4.42, "rome": 2.70, "milan": 2.65, "thunderx2": 4.00, "host": 3.50},
	"lfric":       {"cascadelake": 12.19, "rome": 6.00, "milan": 5.90, "thunderx2": 11.00, "host": 8.00},
}

// SimConfig describes one simulated HPCG run on a platform.
type SimConfig struct {
	Variant string
	Proc    *platform.Processor
	// Ranks is the MPI process count on the node (paper: 40 on Cascade
	// Lake, 128 on Rome — one per core).
	Ranks int
	// SystemFactor carries platform effects (machine.SystemFactor).
	SystemFactor float64
}

// SimResult is one simulated Table 2 cell.
type SimResult struct {
	Variant   string
	GFlops    float64
	Supported bool
	Reason    string
}

// Simulate predicts the GFLOP/s rating for a variant on a platform.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if cfg.Proc == nil {
		return nil, fmt.Errorf("hpcg: simulate needs a processor")
	}
	variants, ok := bytesPerFlop[cfg.Variant]
	if !ok {
		return nil, fmt.Errorf("hpcg: unknown variant %q", cfg.Variant)
	}
	bpf, ok := variants[cfg.Proc.Microarch]
	if !ok {
		if cfg.Variant == "intel-avx2" {
			return &SimResult{
				Variant: cfg.Variant,
				Reason:  "vendor-optimised binaries unavailable for " + cfg.Proc.Microarch,
			}, nil
		}
		bpf = variants["host"]
		if bpf == 0 {
			return nil, fmt.Errorf("hpcg: no traffic calibration for %s on %s", cfg.Variant, cfg.Proc.Microarch)
		}
	}
	ranks := cfg.Ranks
	if ranks <= 0 {
		ranks = cfg.Proc.TotalCores()
	}
	run := machine.Run{
		Proc:         cfg.Proc,
		Model:        machine.MPI,
		Threads:      1,
		Processes:    ranks,
		SystemFactor: cfg.SystemFactor,
	}
	bw, err := machine.EffectiveBandwidth(run)
	if err != nil {
		return nil, fmt.Errorf("hpcg: %w", err)
	}
	return &SimResult{
		Variant:   cfg.Variant,
		GFlops:    bw / bpf,
		Supported: true,
	}, nil
}

// Table2Row is one row of the paper's Table 2: a variant's GFLOP/s on
// Intel Cascade Lake (Isambard, 40 ranks) and AMD Rome (ARCHER2, 128
// ranks).
type Table2Row struct {
	Variant     string
	CascadeLake float64
	Rome        float64
	RomeNA      bool
}

// Table2 reproduces the paper's Table 2 with the simulated platforms.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, v := range Variants() {
		row := Table2Row{Variant: v}
		cl, err := Simulate(SimConfig{Variant: v, Proc: platform.CascadeLake6230, Ranks: 40, SystemFactor: 1})
		if err != nil {
			return nil, err
		}
		row.CascadeLake = cl.GFlops
		rome, err := Simulate(SimConfig{Variant: v, Proc: platform.EPYCRome7742, Ranks: 128, SystemFactor: 1})
		if err != nil {
			return nil, err
		}
		if !rome.Supported {
			row.RomeNA = true
		} else {
			row.Rome = rome.GFlops
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Strong scaling (extension experiment) -----------------------------------
//
// The paper's Table 2 is single-node; a natural follow-on the framework
// makes cheap is strong scaling: the same global problem spread over more
// nodes. HPCG's per-iteration structure is 1 SpMV halo exchange + 2
// smoother halo exchanges + 3 dot-product allreduces, so as nodes grow
// the compute term shrinks linearly while the allreduce term grows
// logarithmically and halo surfaces shrink only as (volume)^(2/3) — the
// classic strong-scaling efficiency rolloff.

// ScalePoint is one node count of a strong-scaling sweep.
type ScalePoint struct {
	Nodes      int
	GFlops     float64
	Speedup    float64 // vs the 1-node point
	Efficiency float64 // Speedup / Nodes
}

// SimulateStrongScaling sweeps node counts for a fixed global problem on
// one system. globalN is the global cube dimension (e.g. 512);
// iterations is the CG iteration count (HPCG runs 50).
func SimulateStrongScaling(system string, proc *platform.Processor, globalN int, nodeCounts []int, iterations int) ([]ScalePoint, error) {
	if proc == nil || globalN < 16 || len(nodeCounts) == 0 {
		return nil, fmt.Errorf("hpcg: invalid strong-scaling configuration")
	}
	if iterations <= 0 {
		iterations = 50
	}
	variants := bytesPerFlop["original"]
	bpf, ok := variants[proc.Microarch]
	if !ok {
		bpf = variants["host"]
	}
	net := machine.NetworkFor(system)
	n3 := float64(globalN) * float64(globalN) * float64(globalN)
	// Flops per iteration: SpMV + SYMGS (~3 operator applications at
	// 2*27 flops/row) plus vector work.
	flopsPerIter := 3*2*27*n3 + 10*n3
	totalFlops := float64(iterations) * flopsPerIter
	totalBytes := totalFlops * bpf

	var out []ScalePoint
	for _, nodes := range nodeCounts {
		if nodes <= 0 {
			return nil, fmt.Errorf("hpcg: invalid node count %d", nodes)
		}
		ranks := nodes * proc.TotalCores()
		run := machine.Run{
			Proc:         proc,
			Model:        machine.MPI,
			Threads:      1,
			Processes:    proc.TotalCores(),
			SystemFactor: machine.SystemFactor(system),
		}
		nodeBW, err := machine.EffectiveBandwidth(run)
		if err != nil {
			return nil, err
		}
		compute := totalBytes / (nodeBW * 1e9 * float64(nodes))
		// Halo: each rank exchanges 6 faces of its local block three
		// times per iteration (SpMV + two smoother sweeps).
		localN := n3 / float64(ranks)
		face := math.Cbrt(localN) * math.Cbrt(localN) * 8
		comm := float64(iterations) * (3*net.HaloExchangeTime(face, 6) + 3*net.AllReduceTime(8, ranks))
		total := compute + comm
		out = append(out, ScalePoint{Nodes: nodes, GFlops: totalFlops / total / 1e9})
	}
	base := out[0]
	for i := range out {
		out[i].Speedup = out[i].GFlops / base.GFlops * float64(base.Nodes)
		out[i].Efficiency = out[i].Speedup / float64(out[i].Nodes)
	}
	return out, nil
}
