// Package hpcg implements the High Performance Conjugate Gradient
// benchmark and the algorithmic variants of the paper's §3.2 case study
// (Table 2): the original CSR implementation, a vendor-tuned CSR path,
// a matrix-free 27-point stencil, and the LFRic-style symmetrised
// Helmholtz operator with a vertical-column solver.
//
// The benchmark solves A·x = b for the 27-point finite-difference
// discretisation of Poisson's equation in 3-D (or the Helmholtz operator
// for the LFRic variant) with preconditioned conjugate gradients, counts
// the floating-point work, and reports GFLOP/s — the Figure of Merit the
// paper extracts.
package hpcg

import "fmt"

// Grid is a 3-D structured grid with lexicographic indexing
// (x fastest, z slowest).
type Grid struct {
	NX, NY, NZ int
}

// N returns the number of grid points.
func (g Grid) N() int { return g.NX * g.NY * g.NZ }

// Idx maps (ix, iy, iz) to the linear index.
func (g Grid) Idx(ix, iy, iz int) int {
	return ix + g.NX*(iy+g.NY*iz)
}

// Coords inverts Idx.
func (g Grid) Coords(i int) (ix, iy, iz int) {
	ix = i % g.NX
	iy = (i / g.NX) % g.NY
	iz = i / (g.NX * g.NY)
	return
}

// In reports whether (ix, iy, iz) lies inside the grid.
func (g Grid) In(ix, iy, iz int) bool {
	return ix >= 0 && ix < g.NX && iy >= 0 && iy < g.NY && iz >= 0 && iz < g.NZ
}

// Validate checks the grid is usable.
func (g Grid) Validate() error {
	if g.NX < 2 || g.NY < 2 || g.NZ < 2 {
		return fmt.Errorf("hpcg: grid %dx%dx%d too small (need >= 2 per dim)", g.NX, g.NY, g.NZ)
	}
	return nil
}

// String renders "nx x ny x nz".
func (g Grid) String() string { return fmt.Sprintf("%dx%dx%d", g.NX, g.NY, g.NZ) }

// Operator is one HPCG variant: it can apply the system matrix and its
// preconditioner, and it accounts its own work so GFLOP/s can be
// reported per variant.
type Operator interface {
	// Name identifies the variant ("original", "intel-avx2",
	// "matrix-free", "lfric").
	Name() string
	// Grid returns the discretisation grid.
	Grid() Grid
	// Apply computes y = A·x.
	Apply(x, y []float64)
	// Precondition computes z ≈ A⁻¹·r (one symmetric smoother sweep or
	// column solve, depending on the variant).
	Precondition(r, z []float64)
	// FlopsPerApply returns the floating point operations one Apply
	// performs.
	FlopsPerApply() float64
	// FlopsPerPrecondition returns the work of one Precondition.
	FlopsPerPrecondition() float64
	// BytesPerApply estimates the memory traffic of one Apply, for the
	// simulated-platform model.
	BytesPerApply() float64
}
