package hpcg

// The original HPCG problem: the 27-point stencil for Poisson's equation
// with diagonal 26 and off-diagonals -1, Dirichlet boundaries (rows near
// the boundary simply have fewer off-diagonal entries). Stored in
// Compressed Sparse Row form, the "general but indirect" representation
// the paper's §3.2 discusses.

// CSR is the original (and vendor-tuned) HPCG operator.
type CSR struct {
	grid Grid
	// tuned selects the vendor-optimised SpMV path (the Intel-avx2
	// variant of Table 2): same matrix, unrolled gather loop.
	tuned bool

	rowPtr []int32
	colIdx []int32
	values []float64
	diag   []float64 // diagonal entries, for SYMGS
}

// NewCSR builds the original HPCG CSR operator on the grid.
func NewCSR(g Grid) *CSR { return newCSR(g, false) }

// NewTunedCSR builds the vendor-optimised variant: identical matrix,
// optimised sparse kernels.
func NewTunedCSR(g Grid) *CSR { return newCSR(g, true) }

func newCSR(g Grid, tuned bool) *CSR {
	n := g.N()
	m := &CSR{grid: g, tuned: tuned}
	m.rowPtr = make([]int32, n+1)
	m.diag = make([]float64, n)
	// Two passes: count then fill, keeping memory proportional to nnz.
	nnz := 0
	for i := 0; i < n; i++ {
		ix, iy, iz := g.Coords(i)
		count := 0
		forStencil(func(dx, dy, dz int) {
			if g.In(ix+dx, iy+dy, iz+dz) {
				count++
			}
		})
		nnz += count
		m.rowPtr[i+1] = m.rowPtr[i] + int32(count)
	}
	m.colIdx = make([]int32, nnz)
	m.values = make([]float64, nnz)
	for i := 0; i < n; i++ {
		ix, iy, iz := g.Coords(i)
		k := m.rowPtr[i]
		forStencil(func(dx, dy, dz int) {
			jx, jy, jz := ix+dx, iy+dy, iz+dz
			if !g.In(jx, jy, jz) {
				return
			}
			j := g.Idx(jx, jy, jz)
			m.colIdx[k] = int32(j)
			if j == i {
				m.values[k] = 26.0
				m.diag[i] = 26.0
			} else {
				m.values[k] = -1.0
			}
			k++
		})
	}
	return m
}

// forStencil visits the 27 offsets in fixed (dz, dy, dx) order, so column
// indices are sorted within each row.
func forStencil(visit func(dx, dy, dz int)) {
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				visit(dx, dy, dz)
			}
		}
	}
}

// Name implements Operator.
func (m *CSR) Name() string {
	if m.tuned {
		return "intel-avx2"
	}
	return "original"
}

// Grid implements Operator.
func (m *CSR) Grid() Grid { return m.grid }

// NNZ returns the stored nonzero count.
func (m *CSR) NNZ() int { return len(m.values) }

// Apply implements Operator: y = A·x via CSR SpMV.
func (m *CSR) Apply(x, y []float64) {
	if m.tuned {
		m.applyTuned(x, y)
		return
	}
	for i := range y {
		sum := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			sum += m.values[k] * x[m.colIdx[k]]
		}
		y[i] = sum
	}
}

// applyTuned is the vendor-style SpMV: 4-way unrolled accumulation to
// expose instruction-level parallelism, the kind of tuning shipped in the
// Intel MKL HPCG binaries.
func (m *CSR) applyTuned(x, y []float64) {
	for i := range y {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		var s0, s1, s2, s3 float64
		k := lo
		for ; k+4 <= hi; k += 4 {
			s0 += m.values[k] * x[m.colIdx[k]]
			s1 += m.values[k+1] * x[m.colIdx[k+1]]
			s2 += m.values[k+2] * x[m.colIdx[k+2]]
			s3 += m.values[k+3] * x[m.colIdx[k+3]]
		}
		for ; k < hi; k++ {
			s0 += m.values[k] * x[m.colIdx[k]]
		}
		y[i] = (s0 + s1) + (s2 + s3)
	}
}

// Precondition implements Operator: one symmetric Gauss-Seidel sweep
// (forward then backward), the HPCG smoother.
func (m *CSR) Precondition(r, z []float64) {
	n := len(z)
	for i := range z {
		z[i] = 0
	}
	// Forward sweep.
	for i := 0; i < n; i++ {
		sum := r[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			if int(j) != i {
				sum -= m.values[k] * z[j]
			}
		}
		z[i] = sum / m.diag[i]
	}
	// Backward sweep.
	for i := n - 1; i >= 0; i-- {
		sum := r[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			if int(j) != i {
				sum -= m.values[k] * z[j]
			}
		}
		z[i] = sum / m.diag[i]
	}
}

// FlopsPerApply implements Operator: 2 flops per stored nonzero.
func (m *CSR) FlopsPerApply() float64 { return 2 * float64(m.NNZ()) }

// FlopsPerPrecondition implements Operator: two sweeps at 2 flops/nnz.
func (m *CSR) FlopsPerPrecondition() float64 { return 4 * float64(m.NNZ()) }

// BytesPerApply implements Operator: CSR SpMV streams the matrix (8-byte
// value + 4-byte column index per nonzero, 4-byte row pointer per row)
// and gathers the x vector with imperfect locality (~1 extra 8-byte load
// per nonzero beyond the cached window), then writes y.
func (m *CSR) BytesPerApply() float64 {
	nnz := float64(m.NNZ())
	n := float64(m.grid.N())
	matrix := nnz * (8 + 4)
	vectors := nnz*2.0 + 16*n // gather traffic + x stream + y write
	return matrix + vectors
}
