package hpcg

// MatrixFree applies the same 27-point operator as CSR without storing
// the matrix: coefficients are known (26 on the diagonal, -1 off it), so
// Apply is pure stencil arithmetic and the memory traffic drops to the
// vectors alone — the "much more memory and cache efficient" approach of
// the paper's §3.2.
type MatrixFree struct {
	grid Grid
}

// NewMatrixFree builds the matrix-free operator on the grid.
func NewMatrixFree(g Grid) *MatrixFree { return &MatrixFree{grid: g} }

// Name implements Operator.
func (m *MatrixFree) Name() string { return "matrix-free" }

// Grid implements Operator.
func (m *MatrixFree) Grid() Grid { return m.grid }

// Apply implements Operator: y = A·x by direct stencil evaluation,
// numerically identical to the CSR operator. Interior points take a fast
// path over nine contiguous 3-element row segments (no bounds logic in
// the hot loop); boundary points fall back to the general stencil walk.
func (m *MatrixFree) Apply(x, y []float64) {
	g := m.grid
	nx, ny, nz := g.NX, g.NY, g.NZ
	rowStride, planeStride := nx, nx*ny
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			base := g.Idx(0, iy, iz)
			interior := iz > 0 && iz < nz-1 && iy > 0 && iy < ny-1
			if interior && nx >= 3 {
				for ix := 1; ix < nx-1; ix++ {
					i := base + ix
					sum := 0.0
					for _, row := range [9]int{
						i - planeStride - rowStride, i - planeStride, i - planeStride + rowStride,
						i - rowStride, i, i + rowStride,
						i + planeStride - rowStride, i + planeStride, i + planeStride + rowStride,
					} {
						sum += x[row-1] + x[row] + x[row+1]
					}
					y[i] = 27.0*x[i] - sum
				}
				m.applyGeneric(x, y, 0, iy, iz)
				m.applyGeneric(x, y, nx-1, iy, iz)
				continue
			}
			for ix := 0; ix < nx; ix++ {
				m.applyGeneric(x, y, ix, iy, iz)
			}
		}
	}
}

// applyGeneric evaluates the stencil at one (possibly boundary) point.
func (m *MatrixFree) applyGeneric(x, y []float64, ix, iy, iz int) {
	g := m.grid
	nx, ny, nz := g.NX, g.NY, g.NZ
	i := g.Idx(ix, iy, iz)
	sum := 27.0 * x[i]
	for dz := -1; dz <= 1; dz++ {
		jz := iz + dz
		if jz < 0 || jz >= nz {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			jy := iy + dy
			if jy < 0 || jy >= ny {
				continue
			}
			row := g.Idx(0, jy, jz)
			lo, hi := ix-1, ix+1
			if lo < 0 {
				lo = 0
			}
			if hi > nx-1 {
				hi = nx - 1
			}
			for jx := lo; jx <= hi; jx++ {
				sum -= x[row+jx]
			}
		}
	}
	y[i] = sum
}

// Precondition implements Operator: matrix-free symmetric Gauss-Seidel —
// the same sweeps as the CSR smoother, with coefficients generated on the
// fly. Interior points use the contiguous-row fast path; boundary points
// take the general stencil walk.
func (m *MatrixFree) Precondition(r, z []float64) {
	n := m.grid.N()
	for i := range z {
		z[i] = 0
	}
	for i := 0; i < n; i++ {
		m.sweepPoint(r, z, i)
	}
	for i := n - 1; i >= 0; i-- {
		m.sweepPoint(r, z, i)
	}
}

// sweepPoint applies one Gauss-Seidel update at linear index i:
// z[i] = (r[i] + Σ_{j≠i} z[j]) / 26 (off-diagonal coefficients are -1).
func (m *MatrixFree) sweepPoint(r, z []float64, i int) {
	g := m.grid
	nx, ny, nz := g.NX, g.NY, g.NZ
	ix, iy, iz := g.Coords(i)
	if ix > 0 && ix < nx-1 && iy > 0 && iy < ny-1 && iz > 0 && iz < nz-1 {
		rowStride, planeStride := nx, nx*ny
		sum := 0.0
		for _, row := range [9]int{
			i - planeStride - rowStride, i - planeStride, i - planeStride + rowStride,
			i - rowStride, i, i + rowStride,
			i + planeStride - rowStride, i + planeStride, i + planeStride + rowStride,
		} {
			sum += z[row-1] + z[row] + z[row+1]
		}
		z[i] = (r[i] + sum - z[i]) / 26.0
		return
	}
	sum := r[i]
	for dz := -1; dz <= 1; dz++ {
		jz := iz + dz
		if jz < 0 || jz >= nz {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			jy := iy + dy
			if jy < 0 || jy >= ny {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				jx := ix + dx
				if jx < 0 || jx >= nx {
					continue
				}
				j := g.Idx(jx, jy, jz)
				if j != i {
					sum += z[j]
				}
			}
		}
	}
	z[i] = sum / 26.0
}

// FlopsPerApply implements Operator: counted identically to the stored
// matrix (2 flops per stencil point actually touched).
func (m *MatrixFree) FlopsPerApply() float64 {
	// Interior rows have 27 points; boundary rows fewer. Reuse the CSR
	// count formula without building the matrix: count per-dimension
	// interior/boundary contributions.
	return 2 * float64(stencilEntries(m.grid))
}

// FlopsPerPrecondition implements Operator.
func (m *MatrixFree) FlopsPerPrecondition() float64 {
	return 4 * float64(stencilEntries(m.grid))
}

// BytesPerApply implements Operator: no matrix traffic; x is read with
// near-perfect reuse (three planes live in cache) and y written once.
func (m *MatrixFree) BytesPerApply() float64 {
	n := float64(m.grid.N())
	return 24 * n // read x once, write y (with write-allocate)
}

// stencilEntries counts the total stencil points over the grid, equal to
// the CSR operator's nonzero count.
func stencilEntries(g Grid) int {
	count := 0
	dims := [3]int{g.NX, g.NY, g.NZ}
	// Points per dimension with 1, 2, or 3 stencil columns: the edge
	// points have 2 neighbours in that dimension, interior have 3.
	per := func(n int) (twos, threes int) {
		if n == 1 {
			return 0, 0
		}
		return 2, n - 2
	}
	tx2, tx3 := per(dims[0])
	ty2, ty3 := per(dims[1])
	tz2, tz3 := per(dims[2])
	for _, cx := range []struct{ cnt, width int }{{tx2, 2}, {tx3, 3}} {
		for _, cy := range []struct{ cnt, width int }{{ty2, 2}, {ty3, 3}} {
			for _, cz := range []struct{ cnt, width int }{{tz2, 2}, {tz3, 3}} {
				count += cx.cnt * cy.cnt * cz.cnt * cx.width * cy.width * cz.width
			}
		}
	}
	return count
}
