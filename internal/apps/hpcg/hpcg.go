package hpcg

import (
	"fmt"
	"strings"
	"time"
)

// Variants lists the four HPCG variants of Table 2 in row order.
func Variants() []string {
	return []string{"original", "intel-avx2", "matrix-free", "lfric"}
}

// NewOperator builds the named variant on the grid.
func NewOperator(variant string, g Grid) (Operator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	switch variant {
	case "original":
		return NewCSR(g), nil
	case "intel-avx2":
		return NewTunedCSR(g), nil
	case "matrix-free":
		return NewMatrixFree(g), nil
	case "lfric":
		return NewLFRic(g), nil
	default:
		return nil, fmt.Errorf("hpcg: unknown variant %q (have %v)", variant, Variants())
	}
}

// Config configures one benchmark run.
type Config struct {
	Variant  string
	Grid     Grid
	MaxIters int     // CG iterations (default 50, as HPCG)
	Tol      float64 // relative residual target (0 = run all iterations)
}

func (c *Config) normalize() error {
	if c.Variant == "" {
		c.Variant = "original"
	}
	if c.Grid == (Grid{}) {
		c.Grid = Grid{NX: 32, NY: 32, NZ: 32}
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 50
	}
	return c.Grid.Validate()
}

// Result is one benchmark run's outcome.
type Result struct {
	Variant    string
	Grid       Grid
	GFlops     float64
	Seconds    float64
	Iterations int
	Residual   float64
	Converged  bool
	Valid      bool
	Output     string // HPCG-style report text
}

// Run executes the benchmark for real on the host: build the operator,
// manufacture b = A·1 (so the exact solution is all-ones), solve, check,
// and rate in GFLOP/s.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	op, err := NewOperator(cfg.Variant, cfg.Grid)
	if err != nil {
		return nil, err
	}
	n := cfg.Grid.N()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	op.Apply(ones, b)
	x := make([]float64, n)

	start := time.Now()
	cg, err := CG(op, b, x, cfg.MaxIters, cfg.Tol)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()

	res := &Result{
		Variant:    cfg.Variant,
		Grid:       cfg.Grid,
		Seconds:    elapsed,
		GFlops:     cg.Flops / elapsed / 1e9,
		Iterations: cg.Iterations,
		Residual:   cg.Residual,
		Converged:  cg.Converged,
	}
	// Validation: the solve must have reduced the residual and moved x
	// toward the all-ones solution.
	maxErr := 0.0
	for i := range x {
		if e := abs(x[i] - 1); e > maxErr {
			maxErr = e
		}
	}
	res.Valid = cg.Residual < cg.InitResidual && (cg.Converged || maxErr < 0.5)
	res.Output = renderHPCG(res)
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// renderHPCG mimics the upstream HPCG rating output so FOM extraction
// exercises realistic parsing.
func renderHPCG(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HPCG-Benchmark variant=%s\n", r.Variant)
	fmt.Fprintf(&b, "Global Problem Dimensions: %s\n", r.Grid)
	fmt.Fprintf(&b, "Iterations=%d\n", r.Iterations)
	fmt.Fprintf(&b, "Scaled Residual=%.6e\n", r.Residual)
	if r.Valid {
		b.WriteString("Results are valid.\n")
	} else {
		b.WriteString("Results are INVALID.\n")
	}
	fmt.Fprintf(&b, "GFLOP/s rating of: %.4f\n", r.GFlops)
	return b.String()
}
