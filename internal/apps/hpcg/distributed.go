package hpcg

// Distributed-memory HPCG on the host: the domain is decomposed into
// z-slabs owned by "ranks" (goroutines), halo planes are exchanged over
// channels before every operator application, dot products are combined
// with a tree-free barrier allreduce, and the preconditioner is the
// block-Jacobi symmetric Gauss-Seidel HPCG itself uses (each rank smooths
// its own block). This is the substitution DESIGN.md promises for MPI:
// the same decomposition and communication pattern, with channels as the
// transport.
//
// Only the matrix-free operator is provided distributed — it is the
// variant whose operator needs just one ghost plane per side, exactly
// like the real stencil codes.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/team"
)

// slab is one rank's share of the global grid: local z-planes
// [z0, z0+nz) of an NX×NY×NZglobal domain, plus ghost planes.
type slab struct {
	rank   int
	nx, ny int
	nz     int // local planes
	z0     int // global index of first local plane
	nzGlob int

	lower, upper *team.Halo // nil at the global boundary

	// ghost planes (nx*ny) below and above the local block.
	gLow, gHigh []float64
}

func (s *slab) plane() int   { return s.nx * s.ny }
func (s *slab) locsize() int { return s.nx * s.ny * s.nz }

// exchange sends this rank's boundary planes of v to its neighbours and
// receives their planes into the ghost buffers. All sends complete before
// any receive blocks (the channels are buffered), so the pattern is
// deadlock-free in any rank order.
func (s *slab) exchange(v []float64) {
	p := s.plane()
	if s.lower != nil {
		buf := make([]float64, p)
		copy(buf, v[:p]) // my bottom plane goes down
		s.lower.ToLower <- buf
	}
	if s.upper != nil {
		buf := make([]float64, p)
		copy(buf, v[(s.nz-1)*p:]) // my top plane goes up
		s.upper.ToUpper <- buf
	}
	if s.lower != nil {
		s.gLow = <-s.lower.ToUpper
	} else {
		s.gLow = nil
	}
	if s.upper != nil {
		s.gHigh = <-s.upper.ToLower
	} else {
		s.gHigh = nil
	}
}

// at reads v at local plane k (which may be -1 or nz, hitting a ghost
// plane), returning 0 outside the global domain.
func (s *slab) at(v []float64, i, j, k int) float64 {
	switch {
	case k < 0:
		if s.gLow == nil {
			return 0
		}
		return s.gLow[i+s.nx*j]
	case k >= s.nz:
		if s.gHigh == nil {
			return 0
		}
		return s.gHigh[i+s.nx*j]
	default:
		return v[i+s.nx*(j+s.ny*k)]
	}
}

// apply computes y = A·x on the local block, using ghost planes for the
// z-neighbour terms (exchange must have run on x first).
func (s *slab) apply(x, y []float64) {
	nx, ny := s.nx, s.ny
	for k := 0; k < s.nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := i + nx*(j+ny*k)
				sum := 27.0 * x[idx]
				for dk := -1; dk <= 1; dk++ {
					gk := s.z0 + k + dk
					if gk < 0 || gk >= s.nzGlob {
						continue
					}
					for dj := -1; dj <= 1; dj++ {
						jj := j + dj
						if jj < 0 || jj >= ny {
							continue
						}
						for di := -1; di <= 1; di++ {
							ii := i + di
							if ii < 0 || ii >= nx {
								continue
							}
							sum -= s.at(x, ii, jj, k+dk)
						}
					}
				}
				y[idx] = sum
			}
		}
	}
}

// precondition runs one block-local symmetric Gauss-Seidel sweep
// (ghost coupling dropped — block-Jacobi between ranks, as HPCG does).
func (s *slab) precondition(r, z []float64) {
	n := s.locsize()
	for i := range z {
		z[i] = 0
	}
	sweep := func(idx int) {
		nx, ny := s.nx, s.ny
		i := idx % nx
		j := (idx / nx) % ny
		k := idx / (nx * ny)
		sum := r[idx]
		for dk := -1; dk <= 1; dk++ {
			kk := k + dk
			if kk < 0 || kk >= s.nz {
				continue // block-local: no ghost coupling
			}
			for dj := -1; dj <= 1; dj++ {
				jj := j + dj
				if jj < 0 || jj >= ny {
					continue
				}
				for di := -1; di <= 1; di++ {
					ii := i + di
					if ii < 0 || ii >= nx {
						continue
					}
					jdx := ii + nx*(jj+ny*kk)
					if jdx != idx {
						sum += z[jdx]
					}
				}
			}
		}
		z[idx] = sum / 26.0
	}
	for i := 0; i < n; i++ {
		sweep(i)
	}
	for i := n - 1; i >= 0; i-- {
		sweep(i)
	}
}

// DistResult reports a distributed solve.
type DistResult struct {
	Ranks      int
	Iterations int
	Residual   float64 // final global ‖r‖
	Converged  bool
	GFlops     float64
	Seconds    float64
	MaxErr     float64 // against the all-ones manufactured solution
}

// RunDistributed solves the manufactured HPCG problem (b = A·1) with the
// matrix-free operator over the given number of goroutine ranks.
func RunDistributed(g Grid, ranks, maxIters int, tol float64) (*DistResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if ranks < 1 || ranks > g.NZ/2 {
		return nil, fmt.Errorf("hpcg: %d ranks cannot decompose %d z-planes (need >= 2 planes per rank)", ranks, g.NZ)
	}
	if maxIters <= 0 {
		maxIters = 50
	}

	// Build the halos and slabs.
	halos := team.NewHalos(ranks)
	slabs := make([]*slab, ranks)
	z0 := 0
	for r := 0; r < ranks; r++ {
		nz := g.NZ / ranks
		if r < g.NZ%ranks {
			nz++
		}
		s := &slab{rank: r, nx: g.NX, ny: g.NY, nz: nz, z0: z0, nzGlob: g.NZ}
		if r > 0 {
			s.lower = halos[r-1]
		}
		if r < ranks-1 {
			s.upper = halos[r]
		}
		slabs[r] = s
		z0 += nz
	}

	red := team.NewReducer(ranks)
	errRed := team.NewReducer(ranks)
	flopsPerRank := make([]float64, ranks)
	results := make(chan DistResult, ranks)
	start := time.Now()

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(s *slab) {
			defer wg.Done()
			res := solveRank(s, red, maxIters, tol, &flopsPerRank[s.rank])
			res.MaxErr = errRed.Max(s.rank, res.MaxErr)
			results <- res
		}(slabs[r])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	final := <-results
	for i := 1; i < ranks; i++ {
		other := <-results
		if other.Iterations > final.Iterations {
			final.Iterations = other.Iterations
		}
	}
	totalFlops := 0.0
	for _, f := range flopsPerRank {
		totalFlops += f
	}
	final.Ranks = ranks
	final.Seconds = elapsed
	final.GFlops = totalFlops / elapsed / 1e9
	return &final, nil
}

// solveRank is the SPMD body: preconditioned CG over the local slab.
func solveRank(s *slab, red *team.Reducer, maxIters int, tol float64, flops *float64) DistResult {
	n := s.locsize()
	fn := float64(n)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	s.exchange(ones) // interior ghosts become 1, matching the global ones vector
	s.apply(ones, b)
	*flops += 54 * fn

	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b) // r = b - A·0
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	s.precondition(r, z)
	copy(p, z)
	*flops += 108 * fn

	rz := red.Sum(s.rank, dot(r, z))
	rnorm0 := red.Sum(s.rank, dot(r, r))
	*flops += 4 * fn
	out := DistResult{}
	if rnorm0 == 0 {
		out.Converged = true
		return out
	}

	for iter := 1; iter <= maxIters; iter++ {
		s.exchange(p)
		s.apply(p, ap)
		*flops += 54 * fn
		pap := red.Sum(s.rank, dot(p, ap))
		*flops += 2 * fn
		alpha := rz / pap
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		*flops += 4 * fn

		rnorm := red.Sum(s.rank, dot(r, r))
		*flops += 2 * fn
		out.Iterations = iter
		out.Residual = math.Sqrt(rnorm)
		if rnorm <= tol*tol*rnorm0 {
			out.Converged = true
			break
		}

		s.precondition(r, z)
		*flops += 108 * fn
		rzNew := red.Sum(s.rank, dot(r, z))
		*flops += 2 * fn
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		*flops += 2 * fn
	}
	// Local solution error vs the all-ones exact solution.
	maxErr := 0.0
	for i := range x {
		if e := abs(x[i] - 1); e > maxErr {
			maxErr = e
		}
	}
	out.MaxErr = maxErr
	return out
}
