package hpcg

import (
	"math"
	"testing"

	"repro/internal/team"
)

func TestDistributedMatchesSerialOperator(t *testing.T) {
	// Apply A·x with 3 ranks and compare against the serial matrix-free
	// operator plane by plane.
	g := Grid{NX: 8, NY: 7, NZ: 12}
	serial := NewMatrixFree(g)
	x := randomVec(g.N(), 11)
	want := make([]float64, g.N())
	serial.Apply(x, want)

	// Manually drive three slabs through one exchange+apply.
	ranks := 3
	halos := team.NewHalos(ranks)
	plane := g.NX * g.NY
	z0 := 0
	var got []float64
	slabs := make([]*slab, ranks)
	locals := make([][]float64, ranks)
	for r := 0; r < ranks; r++ {
		nz := g.NZ / ranks
		if r < g.NZ%ranks {
			nz++
		}
		s := &slab{rank: r, nx: g.NX, ny: g.NY, nz: nz, z0: z0, nzGlob: g.NZ}
		if r > 0 {
			s.lower = halos[r-1]
		}
		if r < ranks-1 {
			s.upper = halos[r]
		}
		slabs[r] = s
		locals[r] = x[z0*plane : (z0+nz)*plane]
		z0 += nz
	}
	done := make(chan struct{})
	outs := make([][]float64, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			y := make([]float64, slabs[r].locsize())
			slabs[r].exchange(locals[r])
			slabs[r].apply(locals[r], y)
			outs[r] = y
			done <- struct{}{}
		}(r)
	}
	for r := 0; r < ranks; r++ {
		<-done
	}
	for _, y := range outs {
		got = append(got, y...)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("distributed apply differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestDistributedSolveConverges(t *testing.T) {
	g := Grid{NX: 12, NY: 12, NZ: 16}
	for _, ranks := range []int{1, 2, 4} {
		res, err := RunDistributed(g, ranks, 300, 1e-9)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Errorf("ranks=%d: not converged, residual %g after %d iters", ranks, res.Residual, res.Iterations)
			continue
		}
		if res.MaxErr > 1e-6 {
			t.Errorf("ranks=%d: solution error %g", ranks, res.MaxErr)
		}
		if res.GFlops <= 0 {
			t.Errorf("ranks=%d: GFlops = %g", ranks, res.GFlops)
		}
		if res.Ranks != ranks {
			t.Errorf("ranks recorded = %d", res.Ranks)
		}
	}
}

func TestDistributedSameAnswerAcrossRankCounts(t *testing.T) {
	// Block-Jacobi preconditioning changes the iteration path slightly
	// with rank count, but every decomposition must reach the same
	// solution (all ones) to the same tolerance.
	g := Grid{NX: 10, NY: 10, NZ: 12}
	var iters []int
	for _, ranks := range []int{1, 2, 3, 6} {
		res, err := RunDistributed(g, ranks, 300, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.MaxErr > 1e-6 {
			t.Errorf("ranks=%d: converged=%v err=%g", ranks, res.Converged, res.MaxErr)
		}
		iters = append(iters, res.Iterations)
	}
	// Weaker block preconditioners may take a few more iterations, never
	// fewer than a quarter or more than 4x of the single-rank count.
	for i := 1; i < len(iters); i++ {
		if iters[i] > iters[0]*4 || iters[i] < iters[0]/4 {
			t.Errorf("iteration counts diverge wildly: %v", iters)
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	g := Grid{NX: 8, NY: 8, NZ: 8}
	if _, err := RunDistributed(g, 0, 10, 1e-6); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := RunDistributed(g, 5, 10, 1e-6); err == nil {
		t.Error("too many ranks for the z extent accepted")
	}
	if _, err := RunDistributed(Grid{NX: 1, NY: 8, NZ: 8}, 1, 10, 1e-6); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestBarrierAndReducer(t *testing.T) {
	red := team.NewReducer(4)
	done := make(chan float64, 4)
	for r := 0; r < 4; r++ {
		go func(r int) {
			// Two rounds to exercise barrier reuse.
			a := red.Sum(r, float64(r+1)) // 1+2+3+4 = 10
			b := red.Sum(r, a)            // 4*10 = 40
			done <- b
		}(r)
	}
	for i := 0; i < 4; i++ {
		if got := <-done; got != 40 {
			t.Fatalf("allreduce chain = %g, want 40", got)
		}
	}
}
