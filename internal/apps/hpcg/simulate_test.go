package hpcg

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// Paper's Table 2 values for shape comparison:
	//   variant        CL     Rome
	//   original       24.0   39.2
	//   intel-avx2     39.0   N/A
	//   matrix-free    51.0   124.2
	//   lfric          18.5   56.0
	paper := map[string][2]float64{
		"original":    {24.0, 39.2},
		"intel-avx2":  {39.0, math.NaN()},
		"matrix-free": {51.0, 124.2},
		"lfric":       {18.5, 56.0},
	}
	for v, want := range paper {
		row, ok := byName[v]
		if !ok {
			t.Fatalf("missing variant %s", v)
		}
		if rel := math.Abs(row.CascadeLake-want[0]) / want[0]; rel > 0.15 {
			t.Errorf("%s CL = %.1f, paper %.1f (rel err %.2f)", v, row.CascadeLake, want[0], rel)
		}
		if math.IsNaN(want[1]) {
			if !row.RomeNA {
				t.Errorf("%s should be N/A on Rome", v)
			}
			continue
		}
		if row.RomeNA {
			t.Errorf("%s unexpectedly N/A on Rome", v)
			continue
		}
		if rel := math.Abs(row.Rome-want[1]) / want[1]; rel > 0.15 {
			t.Errorf("%s Rome = %.1f, paper %.1f (rel err %.2f)", v, row.Rome, want[1], rel)
		}
	}
	// Orderings that constitute the paper's findings.
	if !(byName["matrix-free"].CascadeLake > byName["intel-avx2"].CascadeLake &&
		byName["intel-avx2"].CascadeLake > byName["original"].CascadeLake &&
		byName["original"].CascadeLake > byName["lfric"].CascadeLake) {
		t.Error("Cascade Lake ordering MF > avx2 > CSR > LFRic violated")
	}
	if !(byName["matrix-free"].Rome > byName["lfric"].Rome &&
		byName["lfric"].Rome > byName["original"].Rome) {
		t.Error("Rome ordering MF > LFRic > CSR violated")
	}
}

func TestEquation1Efficiencies(t *testing.T) {
	// E_I = avx2/orig ~ 1.625; E_A = mf/orig ~ 2.125 (CL), ~3.17 (Rome);
	// algorithmic gain exceeds implementation gain.
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	ei := byName["intel-avx2"].CascadeLake / byName["original"].CascadeLake
	eaCL := byName["matrix-free"].CascadeLake / byName["original"].CascadeLake
	eaRome := byName["matrix-free"].Rome / byName["original"].Rome
	if math.Abs(ei-1.625) > 0.2 {
		t.Errorf("E_I = %.3f, paper 1.625", ei)
	}
	if math.Abs(eaCL-2.125) > 0.25 {
		t.Errorf("E_A(CL) = %.3f, paper 2.125", eaCL)
	}
	if math.Abs(eaRome-3.168) > 0.4 {
		t.Errorf("E_A(Rome) = %.3f, paper 3.168", eaRome)
	}
	if eaCL <= ei {
		t.Error("the paper's key finding: algorithmic gain > implementation gain")
	}
}

func TestSimulateUnknownVariant(t *testing.T) {
	if _, err := Simulate(SimConfig{Variant: "nope", Proc: platform.CascadeLake6230}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := Simulate(SimConfig{Variant: "original"}); err == nil {
		t.Error("nil processor accepted")
	}
}

func TestSimulateVendorVariantNAOffIntel(t *testing.T) {
	res, err := Simulate(SimConfig{Variant: "intel-avx2", Proc: platform.EPYCRome7742, Ranks: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supported {
		t.Error("intel-avx2 should be unsupported on Rome")
	}
	if res.Reason == "" {
		t.Error("N/A needs a reason")
	}
}

func TestSimulateDefaultsRanksToCores(t *testing.T) {
	a, err := Simulate(SimConfig{Variant: "original", Proc: platform.CascadeLake6230})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(SimConfig{Variant: "original", Proc: platform.CascadeLake6230, Ranks: 40})
	if err != nil {
		t.Fatal(err)
	}
	if a.GFlops != b.GFlops {
		t.Errorf("default ranks should equal core count: %g vs %g", a.GFlops, b.GFlops)
	}
}

func TestStrongScalingRolloff(t *testing.T) {
	points, err := SimulateStrongScaling("archer2", platform.EPYCRome7742, 512, []int{1, 2, 4, 8, 16, 32, 64}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d", len(points))
	}
	// Throughput grows with nodes, but efficiency declines monotonically
	// toward the latency wall.
	for i := 1; i < len(points); i++ {
		if points[i].GFlops <= points[i-1].GFlops {
			t.Errorf("throughput not increasing at %d nodes: %.1f <= %.1f",
				points[i].Nodes, points[i].GFlops, points[i-1].GFlops)
		}
		if points[i].Efficiency > points[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency increased at %d nodes: %.3f > %.3f",
				points[i].Nodes, points[i].Efficiency, points[i-1].Efficiency)
		}
	}
	if points[0].Efficiency < 0.999 || points[0].Efficiency > 1.001 {
		t.Errorf("1-node efficiency = %g, want 1", points[0].Efficiency)
	}
	last := points[len(points)-1]
	if last.Efficiency >= 0.98 {
		t.Errorf("64-node efficiency = %.3f; strong scaling should roll off", last.Efficiency)
	}
	if last.Efficiency < 0.2 {
		t.Errorf("64-node efficiency = %.3f; rolloff too brutal for this problem size", last.Efficiency)
	}
}

func TestStrongScalingValidation(t *testing.T) {
	if _, err := SimulateStrongScaling("archer2", nil, 512, []int{1}, 50); err == nil {
		t.Error("nil processor accepted")
	}
	if _, err := SimulateStrongScaling("archer2", platform.EPYCRome7742, 8, []int{1}, 50); err == nil {
		t.Error("tiny problem accepted")
	}
	if _, err := SimulateStrongScaling("archer2", platform.EPYCRome7742, 512, []int{0}, 50); err == nil {
		t.Error("zero nodes accepted")
	}
}
