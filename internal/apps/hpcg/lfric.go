package hpcg

// LFRic is the symmetrised Helmholtz operator from the Met Office LFRic
// weather and climate model (paper §3.2): strong vertical coupling within
// atmospheric columns plus weaker horizontal coupling between columns.
//
//	(A·x)(i,j,k) = d·x(i,j,k) + v·(x(i,j,k−1)+x(i,j,k+1))
//	             + h·(x(i±1,j,k)+x(i,j±1,k))
//
// with d > 2|v| + 4|h| so the operator is symmetric positive definite.
// The natural preconditioner is a vertical line solve: each column is a
// tridiagonal system solved directly (Thomas algorithm), which is how
// LFRic's Helmholtz solver treats the stiff vertical direction.
type LFRic struct {
	grid Grid
	// Coefficients: diagonal, vertical coupling, horizontal coupling.
	d, v, h float64
	// Cached Thomas factorisation of the vertical tridiagonal
	// (constant coefficients: one factorisation serves every column).
	cprime []float64
}

// NewLFRic builds the Helmholtz operator on the grid (NZ is the number
// of vertical levels).
func NewLFRic(g Grid) *LFRic {
	op := &LFRic{grid: g, d: 8.0, v: -1.0, h: -0.5}
	op.factorize()
	return op
}

func (m *LFRic) factorize() {
	nz := m.grid.NZ
	m.cprime = make([]float64, nz)
	// Thomas forward elimination coefficients for the constant
	// tridiagonal (v, d, v).
	m.cprime[0] = m.v / m.d
	for k := 1; k < nz; k++ {
		m.cprime[k] = m.v / (m.d - m.v*m.cprime[k-1])
	}
}

// Name implements Operator.
func (m *LFRic) Name() string { return "lfric" }

// Grid implements Operator.
func (m *LFRic) Grid() Grid { return m.grid }

// Apply implements Operator.
func (m *LFRic) Apply(x, y []float64) {
	g := m.grid
	nx, ny, nz := g.NX, g.NY, g.NZ
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := g.Idx(ix, iy, iz)
				sum := m.d * x[i]
				if iz > 0 {
					sum += m.v * x[g.Idx(ix, iy, iz-1)]
				}
				if iz < nz-1 {
					sum += m.v * x[g.Idx(ix, iy, iz+1)]
				}
				if ix > 0 {
					sum += m.h * x[i-1]
				}
				if ix < nx-1 {
					sum += m.h * x[i+1]
				}
				if iy > 0 {
					sum += m.h * x[g.Idx(ix, iy-1, iz)]
				}
				if iy < ny-1 {
					sum += m.h * x[g.Idx(ix, iy+1, iz)]
				}
				y[i] = sum
			}
		}
	}
}

// Precondition implements Operator: exact vertical tridiagonal solve per
// column (Thomas algorithm with the cached factorisation).
func (m *LFRic) Precondition(r, z []float64) {
	g := m.grid
	nx, ny, nz := g.NX, g.NY, g.NZ
	stride := nx * ny // vertical neighbour stride in the linear index
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			col := g.Idx(ix, iy, 0)
			// Forward substitution.
			prev := r[col] / m.d
			z[col] = prev
			for k := 1; k < nz; k++ {
				i := col + k*stride
				denom := m.d - m.v*m.cprime[k-1]
				prev = (r[i] - m.v*prev) / denom
				z[i] = prev
			}
			// Back substitution.
			for k := nz - 2; k >= 0; k-- {
				i := col + k*stride
				z[i] -= m.cprime[k] * z[i+stride]
			}
		}
	}
}

// FlopsPerApply implements Operator: 7-point Helmholtz stencil, ~2 flops
// per stencil entry actually touched.
func (m *LFRic) FlopsPerApply() float64 {
	g := m.grid
	n := float64(g.N())
	// Interior points touch 7 entries; each boundary face loses one.
	entries := 7*n -
		2*float64(g.NX*g.NY) - // top and bottom vertical neighbours
		2*float64(g.NY*g.NZ) - // x faces
		2*float64(g.NX*g.NZ) // y faces
	return 2 * entries
}

// FlopsPerPrecondition implements Operator: Thomas solve is ~8 flops per
// point (2 forward multiply-adds + divide, 2 backward).
func (m *LFRic) FlopsPerPrecondition() float64 {
	return 8 * float64(m.grid.N())
}

// BytesPerApply implements Operator: the column layout streams x and y
// plus per-level coefficient arrays; the horizontal gather strides by
// whole planes, costing extra traffic relative to the matrix-free
// Poisson stencil.
func (m *LFRic) BytesPerApply() float64 {
	n := float64(m.grid.N())
	return 48 * n // x (with strided re-reads), y, and coefficient fields
}
