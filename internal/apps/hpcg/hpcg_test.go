package hpcg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func testGrid() Grid { return Grid{NX: 12, NY: 10, NZ: 8} }

func randomVec(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	return v
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := testGrid()
	for i := 0; i < g.N(); i++ {
		ix, iy, iz := g.Coords(i)
		if g.Idx(ix, iy, iz) != i {
			t.Fatalf("index %d round-trips to %d", i, g.Idx(ix, iy, iz))
		}
	}
	if g.In(-1, 0, 0) || g.In(0, g.NY, 0) {
		t.Error("In accepts out-of-range points")
	}
	if err := (Grid{NX: 1, NY: 4, NZ: 4}).Validate(); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestCSRStructure(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 4}
	m := NewCSR(g)
	// Interior point has 27 nonzeros, corner has 8.
	wantNNZ := stencilEntries(g)
	if m.NNZ() != wantNNZ {
		t.Errorf("NNZ = %d, stencilEntries = %d", m.NNZ(), wantNNZ)
	}
	// Row sums: diagonal 26, off-diag -1 -> sum = 27 - (nnz of row).
	n := g.N()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	y := make([]float64, n)
	m.Apply(ones, y)
	for i := 0; i < n; i++ {
		rowNNZ := int(m.rowPtr[i+1] - m.rowPtr[i])
		want := 26.0 - float64(rowNNZ-1)
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("row %d sum = %g, want %g", i, y[i], want)
		}
	}
}

func TestMatrixFreeMatchesCSR(t *testing.T) {
	g := testGrid()
	csr := NewCSR(g)
	mf := NewMatrixFree(g)
	x := randomVec(g.N(), 7)
	y1 := make([]float64, g.N())
	y2 := make([]float64, g.N())
	csr.Apply(x, y1)
	mf.Apply(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-10 {
			t.Fatalf("Apply differs at %d: csr %g vs mf %g", i, y1[i], y2[i])
		}
	}
	// The preconditioners are the same SYMGS sweep: identical output.
	r := randomVec(g.N(), 8)
	z1 := make([]float64, g.N())
	z2 := make([]float64, g.N())
	csr.Precondition(r, z1)
	mf.Precondition(r, z2)
	for i := range z1 {
		if math.Abs(z1[i]-z2[i]) > 1e-10 {
			t.Fatalf("Precondition differs at %d: %g vs %g", i, z1[i], z2[i])
		}
	}
}

func TestTunedCSRMatchesPlain(t *testing.T) {
	g := testGrid()
	plain := NewCSR(g)
	tuned := NewTunedCSR(g)
	x := randomVec(g.N(), 9)
	y1 := make([]float64, g.N())
	y2 := make([]float64, g.N())
	plain.Apply(x, y1)
	tuned.Apply(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9 {
			t.Fatalf("tuned SpMV differs at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
	if plain.Name() != "original" || tuned.Name() != "intel-avx2" {
		t.Error("variant names wrong")
	}
}

func TestOperatorsSymmetric(t *testing.T) {
	// <Ax, y> == <x, Ay> for all variants (required for CG).
	g := Grid{NX: 6, NY: 5, NZ: 7}
	for _, variant := range Variants() {
		op, err := NewOperator(variant, g)
		if err != nil {
			t.Fatal(err)
		}
		x := randomVec(g.N(), 1)
		y := randomVec(g.N(), 2)
		ax := make([]float64, g.N())
		ay := make([]float64, g.N())
		op.Apply(x, ax)
		op.Apply(y, ay)
		lhs := dot(ax, y)
		rhs := dot(x, ay)
		if math.Abs(lhs-rhs) > 1e-9*math.Abs(lhs) {
			t.Errorf("%s not symmetric: %g vs %g", variant, lhs, rhs)
		}
	}
}

func TestOperatorsPositiveDefinite(t *testing.T) {
	// <Ax, x> > 0 for random nonzero x.
	g := Grid{NX: 5, NY: 5, NZ: 5}
	for _, variant := range Variants() {
		op, _ := NewOperator(variant, g)
		for seed := int64(0); seed < 5; seed++ {
			x := randomVec(g.N(), seed)
			ax := make([]float64, g.N())
			op.Apply(x, ax)
			if q := dot(ax, x); q <= 0 {
				t.Errorf("%s: x'Ax = %g <= 0", variant, q)
			}
		}
	}
}

func TestLFRicPreconditionSolvesVerticalSystem(t *testing.T) {
	// The Thomas solve must invert the vertical tridiagonal exactly:
	// applying only the vertical part of the operator to z recovers r.
	g := Grid{NX: 3, NY: 3, NZ: 16}
	op := NewLFRic(g)
	r := randomVec(g.N(), 3)
	z := make([]float64, g.N())
	op.Precondition(r, z)
	stride := g.NX * g.NY
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			for k := 0; k < g.NZ; k++ {
				i := g.Idx(ix, iy, k)
				sum := op.d * z[i]
				if k > 0 {
					sum += op.v * z[i-stride]
				}
				if k < g.NZ-1 {
					sum += op.v * z[i+stride]
				}
				if math.Abs(sum-r[i]) > 1e-9 {
					t.Fatalf("vertical solve wrong at col (%d,%d) level %d: %g vs %g", ix, iy, k, sum, r[i])
				}
			}
		}
	}
}

func TestCGConvergesAllVariants(t *testing.T) {
	g := testGrid()
	for _, variant := range Variants() {
		op, _ := NewOperator(variant, g)
		n := g.N()
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		b := make([]float64, n)
		op.Apply(ones, b)
		x := make([]float64, n)
		res, err := CG(op, b, x, 200, 1e-10)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if !res.Converged {
			t.Errorf("%s: CG did not converge (residual %g)", variant, res.Residual)
			continue
		}
		maxErr := 0.0
		for i := range x {
			if e := math.Abs(x[i] - 1); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-6 {
			t.Errorf("%s: solution error %g", variant, maxErr)
		}
		if res.Flops <= 0 {
			t.Errorf("%s: no flops counted", variant)
		}
	}
}

func TestPreconditioningHelps(t *testing.T) {
	// CG with the SYMGS preconditioner must converge in fewer iterations
	// than with an identity preconditioner.
	g := Grid{NX: 16, NY: 16, NZ: 16}
	op := NewCSR(g)
	n := g.N()
	b := randomVec(n, 4)

	x1 := make([]float64, n)
	pre, err := CG(op, b, x1, 500, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	none, err := CG(identityPrecond{op}, b, x2, 500, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged || !none.Converged {
		t.Fatalf("convergence: pre=%v none=%v", pre.Converged, none.Converged)
	}
	if pre.Iterations >= none.Iterations {
		t.Errorf("preconditioned CG took %d iterations vs %d plain", pre.Iterations, none.Iterations)
	}
}

// identityPrecond wraps an operator with a do-nothing preconditioner.
type identityPrecond struct{ Operator }

func (p identityPrecond) Precondition(r, z []float64)   { copy(z, r) }
func (p identityPrecond) FlopsPerPrecondition() float64 { return 0 }

func TestCGErrors(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 4}
	op := NewCSR(g)
	if _, err := CG(op, make([]float64, 3), make([]float64, g.N()), 10, 0); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRunHostBenchmark(t *testing.T) {
	res, err := Run(Config{Variant: "original", Grid: Grid{NX: 16, NY: 16, NZ: 16}, MaxIters: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFlops <= 0 {
		t.Errorf("GFlops = %g", res.GFlops)
	}
	if !res.Valid {
		t.Error("run should validate")
	}
	for _, want := range []string{"GFLOP/s rating of:", "Results are valid", "variant=original"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("output missing %q:\n%s", want, res.Output)
		}
	}
}

func TestRunUnknownVariant(t *testing.T) {
	if _, err := Run(Config{Variant: "quantum"}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestMatrixFreeFlopsMatchCSR(t *testing.T) {
	g := testGrid()
	csr := NewCSR(g)
	mf := NewMatrixFree(g)
	if csr.FlopsPerApply() != mf.FlopsPerApply() {
		t.Errorf("flop accounting differs: csr %g, mf %g", csr.FlopsPerApply(), mf.FlopsPerApply())
	}
	// Matrix-free moves far fewer bytes.
	if mf.BytesPerApply() >= csr.BytesPerApply()/3 {
		t.Errorf("matrix-free traffic %g should be well below CSR %g", mf.BytesPerApply(), csr.BytesPerApply())
	}
}

func TestHostVariantOrdering(t *testing.T) {
	// On real hardware (the host), matrix-free should outrate CSR: same
	// flop count, far less memory traffic. Use a grid large enough to
	// exceed typical L2 but small enough for CI.
	g := Grid{NX: 48, NY: 48, NZ: 48}
	run := func(variant string) float64 {
		res, err := Run(Config{Variant: variant, Grid: g, MaxIters: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	orig := run("original")
	mf := run("matrix-free")
	if mf <= orig {
		t.Errorf("matrix-free %g GF/s should beat CSR %g GF/s on the host", mf, orig)
	}
}
