package hpgmg

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestTable4Shapes(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// Paper's Table 4 (10^6 DOF/s):
	paper := map[string][3]float64{
		"archer2":       {95.36, 83.43, 62.18},
		"cosma8":        {81.67, 72.96, 75.09},
		"csd3":          {126.10, 94.39, 49.40},
		"isambard-macs": {30.59, 25.55, 17.55},
	}
	for sys, want := range paper {
		row, ok := byName[sys]
		if !ok {
			t.Fatalf("missing system %s", sys)
		}
		got := [3]float64{row.L0, row.L1, row.L2}
		for i, label := range []string{"l0", "l1", "l2"} {
			rel := math.Abs(got[i]-want[i]) / want[i]
			if rel > 0.25 {
				t.Errorf("%s %s = %.2f, paper %.2f (rel err %.2f)", sys, label, got[i], want[i], rel)
			}
		}
	}
	// The orderings the paper's discussion rests on:
	// At l0, CSD3 > ARCHER2 > COSMA8 >> Isambard MACS.
	if !(byName["csd3"].L0 > byName["archer2"].L0 &&
		byName["archer2"].L0 > byName["cosma8"].L0 &&
		byName["cosma8"].L0 > 2*byName["isambard-macs"].L0) {
		t.Errorf("l0 ordering violated: %+v", rows)
	}
	// At l2, low-latency COSMA8 overtakes ARCHER2 and CSD3 collapses
	// below both ("platform specifics beyond the architecture").
	if !(byName["cosma8"].L2 > byName["archer2"].L2) {
		t.Errorf("l2 crossover missing: cosma8 %.2f vs archer2 %.2f", byName["cosma8"].L2, byName["archer2"].L2)
	}
	if !(byName["csd3"].L2 < byName["archer2"].L2) {
		t.Errorf("csd3 l2 %.2f should fall below archer2 %.2f", byName["csd3"].L2, byName["archer2"].L2)
	}
	// Same-architecture gap: CSD3 and Isambard MACS are both Cascade
	// Lake yet differ ~4x at l0.
	gap := byName["csd3"].L0 / byName["isambard-macs"].L0
	if gap < 3 || gap > 5.5 {
		t.Errorf("Cascade Lake platform gap = %.2f, paper ~4.1", gap)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := PaperConfig("archer2", platform.EPYCRome7742)
	cfg.Nodes = 0
	if _, err := Simulate(cfg); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg = PaperConfig("archer2", platform.EPYCRome7742)
	cfg.Log2BoxDim = 1
	if _, err := Simulate(cfg); err == nil {
		t.Error("tiny box accepted")
	}
}

func TestSimulateLevelsShrink(t *testing.T) {
	levels, err := Simulate(PaperConfig("archer2", platform.EPYCRome7742))
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	// DOFs fall 8x per level; time falls but less than 8x (latency).
	if levels[1].DOFs*8 != levels[0].DOFs {
		t.Errorf("dofs: %d, %d", levels[0].DOFs, levels[1].DOFs)
	}
	if !(levels[0].Seconds > levels[1].Seconds && levels[1].Seconds > levels[2].Seconds) {
		t.Error("coarser replays should be faster in absolute time")
	}
	if !(levels[2].Seconds > levels[0].Seconds/64) {
		t.Error("l2 should be latency-limited (slower than perfect 64x scaling)")
	}
}

func TestSimulateUnknownSystemStillWorks(t *testing.T) {
	cfg := PaperConfig("some-new-machine", platform.EPYCMilan7763)
	levels, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if levels[0].MDOFs <= 0 {
		t.Error("unknown system should fall back to defaults")
	}
}
