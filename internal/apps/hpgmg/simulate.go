package hpgmg

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/platform"
)

// Table 4 reproduction. The paper runs HPGMG-FV with arguments "7 8"
// (box dimension 2^7, 8 boxes per rank) and the fixed layout num_tasks=8,
// num_tasks_per_node=2, num_cpus_per_task=8 on four systems, reporting
// 10^6 DOF/s at the finest level (l0) and the two coarsened replays
// (l1, l2).
//
// The model splits a solve into bandwidth-bound compute and
// latency-bound communication:
//
//	t(level) = dofs·B / (nodes · BW_node)  +  cycles · Σ_ℓ X · msg(face_ℓ)
//
// where B ≈ 7000 bytes moved per DOF over a full FMG+V-cycle solve
// (HPGMG-FV's 4th-order operators are traffic heavy: ~11 cycles × ~650
// bytes/DOF/cycle over the level hierarchy), X is the per-level message
// count per cycle (smooth halos, residual, transfers, over 6 face
// neighbours), and msg() is the system's interconnect model. Coarse
// replays shrink the compute term 8x per level while the message count
// falls only linearly — which is exactly why Table 4's l2 column
// collapses on high-latency systems and why low-latency COSMA8 overtakes
// ARCHER2 there.
const (
	bytesPerDOF     = 7000.0
	solveCycles     = 11.0 // FMG + ~10 V-cycles to 1e-8
	exchangesPerLvl = 12.0 // 8 smoother halos + residual + transfers
	faceNeighbours  = 6.0
)

// SimConfig describes one simulated HPGMG run.
type SimConfig struct {
	System       string // system name for network + platform factors
	Proc         *platform.Processor
	Nodes        int // nodes allocated
	TasksPerNode int
	CPUsPerTask  int
	Log2BoxDim   int // paper: 7
	BoxesPerRank int // paper: 8
}

// PaperConfig returns the paper's fixed §3.3 configuration for a system.
func PaperConfig(system string, proc *platform.Processor) SimConfig {
	return SimConfig{
		System:       system,
		Proc:         proc,
		Nodes:        4,
		TasksPerNode: 2,
		CPUsPerTask:  8,
		Log2BoxDim:   7,
		BoxesPerRank: 8,
	}
}

// Simulate predicts the three level FOMs for a configuration.
func Simulate(cfg SimConfig) ([]LevelResult, error) {
	if cfg.Proc == nil {
		return nil, fmt.Errorf("hpgmg: simulate needs a processor")
	}
	if cfg.Nodes <= 0 || cfg.TasksPerNode <= 0 || cfg.CPUsPerTask <= 0 {
		return nil, fmt.Errorf("hpgmg: invalid layout %d nodes x %d tasks x %d cpus",
			cfg.Nodes, cfg.TasksPerNode, cfg.CPUsPerTask)
	}
	if cfg.Log2BoxDim < 3 {
		return nil, fmt.Errorf("hpgmg: Log2BoxDim %d too small", cfg.Log2BoxDim)
	}
	ranks := cfg.Nodes * cfg.TasksPerNode
	run := machine.Run{
		Proc:         cfg.Proc,
		Model:        machine.MPI,
		Threads:      cfg.CPUsPerTask,
		Processes:    cfg.TasksPerNode,
		SystemFactor: machine.SystemFactor(cfg.System),
	}
	nodeBW, err := machine.EffectiveBandwidth(run)
	if err != nil {
		return nil, fmt.Errorf("hpgmg: %w", err)
	}
	aggBW := nodeBW * float64(cfg.Nodes) * 1e9 // bytes/s
	net := machine.NetworkFor(cfg.System)

	var out []LevelResult
	for i, label := range []string{"l0", "l1", "l2"} {
		boxDim := 1 << (cfg.Log2BoxDim - i)
		dofs := float64(ranks*cfg.BoxesPerRank) * float64(boxDim) * float64(boxDim) * float64(boxDim)
		compute := dofs * bytesPerDOF / aggBW

		levels := cfg.Log2BoxDim - i // multigrid depth at this size
		comm := 0.0
		localDofs := dofs / float64(ranks)
		for lvl := 0; lvl < levels; lvl++ {
			side := cubeRoot(localDofs / float64(pow8(lvl)))
			faceBytes := side * side * 8
			comm += solveCycles * exchangesPerLvl * faceNeighbours * net.MessageTime(faceBytes)
			// Each level's smoothing sweeps synchronise all ranks; the
			// cost grows logarithmically with the rank count, which is
			// what eventually erodes weak-scaling efficiency.
			comm += solveCycles * net.AllReduceTime(16, ranks)
		}
		comm += solveCycles * net.AllReduceTime(8, ranks)

		total := compute + comm
		out = append(out, LevelResult{
			Label:   label,
			N:       boxDim,
			DOFs:    int(dofs),
			Seconds: total,
			MDOFs:   dofs / total / 1e6,
			Valid:   true,
		})
	}
	return out, nil
}

func pow8(k int) int {
	out := 1
	for i := 0; i < k; i++ {
		out *= 8
	}
	return out
}

func cubeRoot(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Cbrt(x)
}

// Table4Row is one row of the paper's Table 4.
type Table4Row struct {
	System string
	L0     float64
	L1     float64
	L2     float64
}

// Table4 reproduces the paper's Table 4 on the simulated estate.
func Table4() ([]Table4Row, error) {
	systems := []struct {
		name string
		proc *platform.Processor
	}{
		{"archer2", platform.EPYCRome7742},
		{"cosma8", platform.EPYCRome7H12},
		{"csd3", platform.CascadeLake8276},
		{"isambard-macs", platform.CascadeLake6230},
	}
	var rows []Table4Row
	for _, s := range systems {
		levels, err := Simulate(PaperConfig(s.name, s.proc))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		rows = append(rows, Table4Row{
			System: s.name,
			L0:     levels[0].MDOFs,
			L1:     levels[1].MDOFs,
			L2:     levels[2].MDOFs,
		})
	}
	return rows, nil
}
