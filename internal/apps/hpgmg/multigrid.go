// Package hpgmg implements the HPGMG-FV benchmark of the paper's §3.3
// case study: a full multigrid (FMG) solver for Poisson's equation,
// reporting the solve rate in degrees of freedom per second at the finest
// level and the two coarsened replays (the l0, l1, l2 Figures of Merit of
// Table 4).
//
// The host implementation is a real geometric multigrid: vertex-centred
// 7-point Laplacian on the unit cube with homogeneous Dirichlet
// boundaries, red-black Gauss-Seidel smoothing, full-weighting
// restriction, trilinear prolongation, and F-cycle (FMG) drive. The
// distributed version used for the cross-system Table 4 reproduction is
// modelled analytically in simulate.go.
package hpgmg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// level holds one grid of the multigrid hierarchy: n interior points per
// dimension (n = 2^k - 1), spacing h = 1/(n+1), with u, b, and a residual
// scratch array. Points are indexed over the interior only.
type level struct {
	n int // interior points per dimension
	h float64
	u []float64
	b []float64
	r []float64
}

func newLevel(n int) *level {
	size := n * n * n
	return &level{
		n: n,
		h: 1.0 / float64(n+1),
		u: make([]float64, size),
		b: make([]float64, size),
		r: make([]float64, size),
	}
}

func (l *level) idx(i, j, k int) int { return i + l.n*(j+l.n*k) }

// dofs returns the number of unknowns on the level.
func (l *level) dofs() int { return l.n * l.n * l.n }

// Solver is a multigrid hierarchy for -Δu = f on the unit cube.
type Solver struct {
	levels  []*level // levels[0] is finest
	Workers int      // goroutines for smoothing/residual (0 = NumCPU)

	// Counters for the benchmark's work accounting.
	FlopCount   float64
	TraffBytes  float64
	VCycleCount int
}

// NewSolver builds a hierarchy with finest grid of 2^k - 1 interior
// points per dimension, coarsening down to a single point.
func NewSolver(k int) (*Solver, error) {
	if k < 1 || k > 10 {
		return nil, fmt.Errorf("hpgmg: level exponent k=%d out of range [1,10]", k)
	}
	s := &Solver{Workers: runtime.NumCPU()}
	for kk := k; kk >= 1; kk-- {
		s.levels = append(s.levels, newLevel((1<<kk)-1))
	}
	return s, nil
}

// Fine returns the finest level's interior size.
func (s *Solver) Fine() *level { return s.levels[0] }

// N returns the finest-level interior dimension.
func (s *Solver) N() int { return s.levels[0].n }

// DOFs returns the finest-level unknown count.
func (s *Solver) DOFs() int { return s.levels[0].dofs() }

// parRange runs body over [0,n) slabs in parallel.
func (s *Solver) parRange(n int, body func(lo, hi int)) {
	w := s.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w <= 1 || n < 4 {
		body(0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(start, end)
	}
	wg.Wait()
}

// smooth performs one red-black Gauss-Seidel sweep (both colours) on the
// level. Red-black ordering makes the sweep safe to parallelise over z
// slabs within a colour.
func (s *Solver) smooth(l *level) {
	n := l.n
	h2 := l.h * l.h
	for colour := 0; colour <= 1; colour++ {
		s.parRange(n, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				for j := 0; j < n; j++ {
					for i := (k + j + colour) % 2; i < n; i += 2 {
						idx := l.idx(i, j, k)
						sum := 0.0
						if i > 0 {
							sum += l.u[idx-1]
						}
						if i < n-1 {
							sum += l.u[idx+1]
						}
						if j > 0 {
							sum += l.u[idx-n]
						}
						if j < n-1 {
							sum += l.u[idx+n]
						}
						if k > 0 {
							sum += l.u[idx-n*n]
						}
						if k < n-1 {
							sum += l.u[idx+n*n]
						}
						l.u[idx] = (h2*l.b[idx] + sum) / 6.0
					}
				}
			}
		})
	}
	s.FlopCount += 9 * float64(l.dofs())
	s.TraffBytes += 48 * float64(l.dofs())
}

// residual computes r = b + Δu (the residual of -Δu = b).
func (s *Solver) residual(l *level) {
	n := l.n
	invH2 := 1.0 / (l.h * l.h)
	s.parRange(n, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					idx := l.idx(i, j, k)
					sum := -6.0 * l.u[idx]
					if i > 0 {
						sum += l.u[idx-1]
					}
					if i < n-1 {
						sum += l.u[idx+1]
					}
					if j > 0 {
						sum += l.u[idx-n]
					}
					if j < n-1 {
						sum += l.u[idx+n]
					}
					if k > 0 {
						sum += l.u[idx-n*n]
					}
					if k < n-1 {
						sum += l.u[idx+n*n]
					}
					l.r[idx] = l.b[idx] + sum*invH2
				}
			}
		}
	})
	s.FlopCount += 10 * float64(l.dofs())
	s.TraffBytes += 40 * float64(l.dofs())
}

// restrictTo transfers the fine residual to the coarse right-hand side by
// full weighting (the 27-point average with trilinear weights).
func (s *Solver) restrictTo(fine, coarse *level) {
	nc := coarse.n
	nf := fine.n
	s.parRange(nc, func(klo, khi int) {
		for kc := klo; kc < khi; kc++ {
			for jc := 0; jc < nc; jc++ {
				for ic := 0; ic < nc; ic++ {
					fi, fj, fk := 2*ic+1, 2*jc+1, 2*kc+1
					sum := 0.0
					for dk := -1; dk <= 1; dk++ {
						for dj := -1; dj <= 1; dj++ {
							for di := -1; di <= 1; di++ {
								i, j, k := fi+di, fj+dj, fk+dk
								if i < 0 || i >= nf || j < 0 || j >= nf || k < 0 || k >= nf {
									continue
								}
								w := weight1(di) * weight1(dj) * weight1(dk)
								sum += w * fine.r[fine.idx(i, j, k)]
							}
						}
					}
					coarse.b[coarse.idx(ic, jc, kc)] = sum
				}
			}
		}
	})
	s.FlopCount += 54 * float64(coarse.dofs())
	s.TraffBytes += 8 * float64(fine.dofs())
}

func weight1(d int) float64 {
	if d == 0 {
		return 0.5
	}
	return 0.25
}

// prolongAdd interpolates the coarse correction trilinearly and adds it
// to the fine solution.
func (s *Solver) prolongAdd(coarse, fine *level) {
	nf := fine.n
	nc := coarse.n
	s.parRange(nf, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < nf; j++ {
				for i := 0; i < nf; i++ {
					fine.u[fine.idx(i, j, k)] += trilinear(coarse, nc, i, j, k)
				}
			}
		}
	})
	s.FlopCount += 8 * float64(fine.dofs())
	s.TraffBytes += 16 * float64(fine.dofs())
}

// trilinear evaluates the coarse-grid correction at fine point (i,j,k).
// Fine point x-index i corresponds to coarse coordinate (i+1)/2 - 1 in
// index space; odd fine indices sit on coarse points.
func trilinear(coarse *level, nc, i, j, k int) float64 {
	get := func(ic, jc, kc int) float64 {
		if ic < 0 || ic >= nc || jc < 0 || jc >= nc || kc < 0 || kc >= nc {
			return 0 // Dirichlet boundary
		}
		return coarse.u[coarse.idx(ic, jc, kc)]
	}
	// Coordinates in coarse index space: (i+1)/2 - 1 + frac.
	ci, fi := (i-1)/2, 1.0
	if i%2 == 0 {
		// Even fine index lies midway between coarse points ci and ci+1
		// (with virtual boundary points at the domain edge).
		ci, fi = i/2-1, 0.5
	}
	cj, fj := (j-1)/2, 1.0
	if j%2 == 0 {
		cj, fj = j/2-1, 0.5
	}
	ck, fk := (k-1)/2, 1.0
	if k%2 == 0 {
		ck, fk = k/2-1, 0.5
	}
	v := 0.0
	for dk := 0; dk <= 1; dk++ {
		wk := fk
		if dk == 1 {
			wk = 1 - fk
		}
		if wk == 0 {
			continue
		}
		for dj := 0; dj <= 1; dj++ {
			wj := fj
			if dj == 1 {
				wj = 1 - fj
			}
			if wj == 0 {
				continue
			}
			for di := 0; di <= 1; di++ {
				wi := fi
				if di == 1 {
					wi = 1 - fi
				}
				if wi == 0 {
					continue
				}
				v += wi * wj * wk * get(ci+di, cj+dj, ck+dk)
			}
		}
	}
	return v
}

// vcycle runs one V(2,2) cycle starting at level index li.
func (s *Solver) vcycle(li int) {
	l := s.levels[li]
	if li == len(s.levels)-1 {
		// Coarsest level (1 point): direct solve.
		l.u[0] = l.b[0] * l.h * l.h / 6.0
		return
	}
	s.smooth(l)
	s.smooth(l)
	s.residual(l)
	coarse := s.levels[li+1]
	s.restrictTo(l, coarse)
	zero(coarse.u)
	s.vcycle(li + 1)
	s.prolongAdd(coarse, l)
	s.smooth(l)
	s.smooth(l)
	if li == 0 {
		s.VCycleCount++
	}
}

// FMG runs a full multigrid cycle: solve coarsest, prolong, V-cycle at
// each level on the way up. The right-hand side must already be set on
// the finest level; coarse RHS values are built by restriction of b.
func (s *Solver) FMG() {
	// Build coarse RHS hierarchy by restricting b (store b in r slot to
	// reuse restrictTo).
	for li := 0; li < len(s.levels)-1; li++ {
		copy(s.levels[li].r, s.levels[li].b)
		s.restrictTo(s.levels[li], s.levels[li+1])
	}
	last := len(s.levels) - 1
	coarsest := s.levels[last]
	coarsest.u[0] = coarsest.b[0] * coarsest.h * coarsest.h / 6.0
	for li := last - 1; li >= 0; li-- {
		zero(s.levels[li].u)
		s.prolongAdd(s.levels[li+1], s.levels[li])
		s.vcycleFrom(li)
	}
}

// vcycleFrom runs one V-cycle treating level li as the top.
func (s *Solver) vcycleFrom(li int) {
	top := s.levels
	s.levels = s.levels[li:]
	s.vcycle(0)
	s.levels = top
}

// Solve drives V-cycles until the relative residual drops below tol (or
// maxCycles), returning the final relative residual.
func (s *Solver) Solve(tol float64, maxCycles int) float64 {
	if maxCycles <= 0 {
		maxCycles = 20
	}
	fine := s.levels[0]
	b2 := s.norm(fine.b)
	if b2 == 0 {
		return 0
	}
	s.FMG()
	rel := 1.0
	for c := 0; c < maxCycles; c++ {
		s.residual(fine)
		rel = s.norm(fine.r) / b2
		if rel < tol {
			return rel
		}
		s.vcycle(0)
	}
	return rel
}

func (s *Solver) norm(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	s.FlopCount += 2 * float64(len(v))
	return math.Sqrt(sum)
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
