package hpgmg

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Config sets up a host benchmark run, mirroring the HPGMG command line
// "log2_box_dim target_boxes_per_rank" (the paper runs "7 8").
type Config struct {
	// Log2Dim is the finest grid exponent: the fine grid has 2^Log2Dim-1
	// interior points per dimension.
	Log2Dim int
	// Workers is the goroutine count (0 = NumCPU).
	Workers int
	// Tol is the target relative residual (default 1e-8).
	Tol float64
	// MaxCycles bounds the V-cycle count (default 20).
	MaxCycles int
}

func (c *Config) normalize() error {
	if c.Log2Dim < 2 || c.Log2Dim > 9 {
		return fmt.Errorf("hpgmg: Log2Dim %d out of range [2,9]", c.Log2Dim)
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 20
	}
	return nil
}

// LevelResult is the Figure of Merit for one solve size: HPGMG reports
// the solve rate at the full problem (l0) and at the two coarsened
// replays (l1, l2).
type LevelResult struct {
	Label    string // "l0", "l1", "l2"
	N        int    // interior dimension
	DOFs     int
	Seconds  float64
	MDOFs    float64 // 10^6 DOF/s, the Table 4 metric
	Residual float64 // final relative residual
	Cycles   int
	MaxError float64 // against the manufactured solution
	Valid    bool
}

// Result is one full benchmark run.
type Result struct {
	Levels []LevelResult // l0, l1, l2
	Output string
}

// FOM returns the MDOF/s figure for a level label.
func (r *Result) FOM(label string) (float64, bool) {
	for _, l := range r.Levels {
		if l.Label == label {
			return l.MDOFs, true
		}
	}
	return 0, false
}

// Run executes the benchmark on the host: three FMG solves at k, k-1,
// k-2, each validated against the manufactured solution
// u = sin(πx)·sin(πy)·sin(πz).
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	res := &Result{}
	var sb strings.Builder
	sb.WriteString("HPGMG-FV (Go reproduction)\n")
	for i, label := range []string{"l0", "l1", "l2"} {
		k := cfg.Log2Dim - i
		if k < 2 {
			break
		}
		lr, err := runOne(label, k, cfg)
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, *lr)
		fmt.Fprintf(&sb, "  %s: %d^3 DOF, %d cycles, rel res %.3e, %.2f MDOF/s\n",
			label, lr.N, lr.Cycles, lr.Residual, lr.MDOFs)
	}
	for _, l := range res.Levels {
		fmt.Fprintf(&sb, "average solve rate %s: %.6e DOF/s\n", l.Label, l.MDOFs*1e6)
	}
	res.Output = sb.String()
	return res, nil
}

func runOne(label string, k int, cfg Config) (*LevelResult, error) {
	s, err := NewSolver(k)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		s.Workers = cfg.Workers
	}
	fine := s.Fine()
	setManufacturedRHS(fine)

	start := time.Now()
	rel := s.Solve(cfg.Tol, cfg.MaxCycles)
	elapsed := time.Since(start).Seconds()

	lr := &LevelResult{
		Label:    label,
		N:        fine.n,
		DOFs:     fine.dofs(),
		Seconds:  elapsed,
		MDOFs:    float64(fine.dofs()) / elapsed / 1e6,
		Residual: rel,
		Cycles:   s.VCycleCount,
	}
	lr.MaxError = maxError(fine)
	// Discretisation error for the 7-point stencil is O(h²) with a
	// constant near π²/12·‖u‖ — accept a generous bound.
	h := fine.h
	lr.Valid = rel < cfg.Tol*10 && lr.MaxError < 5*h*h
	return lr, nil
}

// setManufacturedRHS fills b with f = 3π²·sin(πx)sin(πy)sin(πz), whose
// exact solution of -Δu = f with zero Dirichlet boundaries is
// u = sin(πx)sin(πy)sin(πz).
func setManufacturedRHS(l *level) {
	pi := math.Pi
	for k := 0; k < l.n; k++ {
		z := float64(k+1) * l.h
		for j := 0; j < l.n; j++ {
			y := float64(j+1) * l.h
			for i := 0; i < l.n; i++ {
				x := float64(i+1) * l.h
				l.b[l.idx(i, j, k)] = 3 * pi * pi * math.Sin(pi*x) * math.Sin(pi*y) * math.Sin(pi*z)
			}
		}
	}
}

// maxError compares u against the manufactured solution.
func maxError(l *level) float64 {
	pi := math.Pi
	worst := 0.0
	for k := 0; k < l.n; k++ {
		z := float64(k+1) * l.h
		for j := 0; j < l.n; j++ {
			y := float64(j+1) * l.h
			for i := 0; i < l.n; i++ {
				x := float64(i+1) * l.h
				exact := math.Sin(pi*x) * math.Sin(pi*y) * math.Sin(pi*z)
				if e := math.Abs(l.u[l.idx(i, j, k)] - exact); e > worst {
					worst = e
				}
			}
		}
	}
	return worst
}
