package hpgmg

// Distributed-memory HPGMG on the host: the finest level is decomposed
// into z-plane slabs owned by goroutine ranks; red-black smoothing and
// residual evaluation run rank-parallel with channel halo exchanges (one
// exchange per smoother colour, so the sweep is bit-identical to the
// serial solver); the coarse hierarchy is agglomerated onto rank 0, the
// strategy real HPGMG uses once levels shrink below the rank count.
//
// Because the distributed algorithm is numerically identical to the
// serial V-cycle (same colouring, same transfers), the tests can require
// exact agreement with the single-rank solver — the strongest possible
// check on the communication code.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/team"
)

// mgSlab is one rank's slice of the finest level: planes [z0, z0+nz) of
// the n×n×n vertex grid.
type mgSlab struct {
	rank   int
	n      int // interior points per dimension (global)
	nz     int // local planes
	z0     int // first global plane index
	nRanks int

	u, b, r []float64 // local fields, nz*n*n each

	lower, upper *team.Halo
	gLow, gHigh  []float64 // ghost planes of u (nil at global boundaries)

	// gather/scatter channels to rank 0 for the coarse solve.
	toRoot   chan []float64
	fromRoot chan []float64
}

func (s *mgSlab) plane() int { return s.n * s.n }

// exchange refreshes the ghost planes of u.
func (s *mgSlab) exchange() {
	p := s.plane()
	if s.lower != nil {
		buf := make([]float64, p)
		copy(buf, s.u[:p])
		s.lower.ToLower <- buf
	}
	if s.upper != nil {
		buf := make([]float64, p)
		copy(buf, s.u[(s.nz-1)*p:])
		s.upper.ToUpper <- buf
	}
	if s.lower != nil {
		s.gLow = <-s.lower.ToUpper
	} else {
		s.gLow = nil
	}
	if s.upper != nil {
		s.gHigh = <-s.upper.ToLower
	} else {
		s.gHigh = nil
	}
}

// zNeighbor reads u at local plane kk (kk may be -1 or nz, hitting a
// ghost plane), returning 0 outside the global domain.
func (s *mgSlab) zNeighbor(i, j, kk int) float64 {
	p := s.plane()
	switch {
	case kk < 0:
		if s.gLow == nil {
			return 0
		}
		return s.gLow[i+s.n*j]
	case kk >= s.nz:
		if s.gHigh == nil {
			return 0
		}
		return s.gHigh[i+s.n*j]
	default:
		return s.u[i+s.n*j+p*kk]
	}
}

// smoothColor performs one Gauss-Seidel colour sweep with *global*
// red-black parity, matching the serial solver's ordering exactly.
func (s *mgSlab) smoothColor(h2 float64, colour int) {
	n, p := s.n, s.plane()
	for kk := 0; kk < s.nz; kk++ {
		kGlob := s.z0 + kk
		for j := 0; j < n; j++ {
			for i := (kGlob + j + colour) % 2; i < n; i += 2 {
				idx := i + n*j + p*kk
				sum := 0.0
				if i > 0 {
					sum += s.u[idx-1]
				}
				if i < n-1 {
					sum += s.u[idx+1]
				}
				if j > 0 {
					sum += s.u[idx-n]
				}
				if j < n-1 {
					sum += s.u[idx+n]
				}
				if kGlob > 0 {
					sum += s.zNeighbor(i, j, kk-1)
				}
				if kGlob < s.n-1 {
					sum += s.zNeighbor(i, j, kk+1)
				}
				s.u[idx] = (h2*s.b[idx] + sum) / 6.0
			}
		}
	}
}

// smooth runs one full red-black sweep (both colours), exchanging ghosts
// before each colour so off-rank reads always see the same values the
// serial sweep would.
func (s *mgSlab) smooth(h2 float64) {
	s.exchange()
	s.smoothColor(h2, 0)
	s.exchange()
	s.smoothColor(h2, 1)
}

// residual computes r = b + Δu on the local planes.
func (s *mgSlab) residual(invH2 float64) {
	n, p := s.n, s.plane()
	s.exchange()
	for kk := 0; kk < s.nz; kk++ {
		kGlob := s.z0 + kk
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := i + n*j + p*kk
				sum := -6.0 * s.u[idx]
				if i > 0 {
					sum += s.u[idx-1]
				}
				if i < n-1 {
					sum += s.u[idx+1]
				}
				if j > 0 {
					sum += s.u[idx-n]
				}
				if j < n-1 {
					sum += s.u[idx+n]
				}
				if kGlob > 0 {
					sum += s.zNeighbor(i, j, kk-1)
				}
				if kGlob < s.n-1 {
					sum += s.zNeighbor(i, j, kk+1)
				}
				s.r[idx] = s.b[idx] + sum*invH2
			}
		}
	}
}

// DistResult reports a distributed HPGMG solve.
type DistResult struct {
	Ranks     int
	Cycles    int
	Residual  float64 // final relative residual
	Converged bool
	MDOFs     float64
	Seconds   float64
}

// RunDistributed solves the manufactured Poisson problem on a 2^k-1 cube
// with V(2,2)-cycles: the finest level distributed over goroutine ranks,
// coarse levels agglomerated on rank 0.
func RunDistributed(k, ranks, maxCycles int, tol float64) (*DistResult, error) {
	res, _, err := runDistributed(k, ranks, maxCycles, tol)
	return res, err
}

// RunDistributedSolution is RunDistributed but also returns the assembled
// global solution vector, for verification against the serial solver.
func RunDistributedSolution(k, ranks, maxCycles int, tol float64) (*DistResult, []float64, error) {
	res, slabs, err := runDistributed(k, ranks, maxCycles, tol)
	if err != nil {
		return nil, nil, err
	}
	return res, gatherSolution(slabs), nil
}

func runDistributed(k, ranks, maxCycles int, tol float64) (*DistResult, []*mgSlab, error) {
	if k < 2 || k > 9 {
		return nil, nil, fmt.Errorf("hpgmg: level exponent k=%d out of range [2,9]", k)
	}
	n := (1 << k) - 1
	if ranks < 1 || ranks > n/2 {
		return nil, nil, fmt.Errorf("hpgmg: %d ranks cannot decompose %d planes (need >= 2 planes per rank)", ranks, n)
	}
	if maxCycles <= 0 {
		maxCycles = 30
	}

	// Rank 0's serial hierarchy handles everything below the finest
	// level; its finest level doubles as gather/scatter workspace.
	root, err := NewSolver(k)
	if err != nil {
		return nil, nil, err
	}
	root.Workers = 1 // coarse grids are small; keep it deterministic

	halos := team.NewHalos(ranks)
	red := team.NewReducer(ranks)
	bar := team.NewBarrier(ranks)
	slabs := make([]*mgSlab, ranks)
	z0 := 0
	for r := 0; r < ranks; r++ {
		nz := n / ranks
		if r < n%ranks {
			nz++
		}
		s := &mgSlab{
			rank: r, n: n, nz: nz, z0: z0, nRanks: ranks,
			u:        make([]float64, nz*n*n),
			b:        make([]float64, nz*n*n),
			r:        make([]float64, nz*n*n),
			toRoot:   make(chan []float64, 1),
			fromRoot: make(chan []float64, 1),
		}
		if r > 0 {
			s.lower = halos[r-1]
		}
		if r < ranks-1 {
			s.upper = halos[r]
		}
		// Local share of the manufactured right-hand side.
		fillRHS(s)
		slabs[r] = s
		z0 += nz
	}

	results := make([]DistResult, ranks)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(s *mgSlab) {
			defer wg.Done()
			results[s.rank] = solveSlab(s, slabs, root, red, bar, maxCycles, tol)
		}(slabs[r])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	out := results[0]
	out.Ranks = ranks
	out.Seconds = elapsed
	out.MDOFs = float64(n) * float64(n) * float64(n) / elapsed / 1e6
	return &out, slabs, nil
}

// fillRHS writes the manufactured f = 3π²·sin(πx)sin(πy)sin(πz) onto the
// slab's local planes.
func fillRHS(s *mgSlab) {
	h := 1.0 / float64(s.n+1)
	pi := math.Pi
	p := s.plane()
	for kk := 0; kk < s.nz; kk++ {
		z := float64(s.z0+kk+1) * h
		for j := 0; j < s.n; j++ {
			y := float64(j+1) * h
			for i := 0; i < s.n; i++ {
				x := float64(i+1) * h
				s.b[i+s.n*j+p*kk] = 3 * pi * pi * math.Sin(pi*x) * math.Sin(pi*y) * math.Sin(pi*z)
			}
		}
	}
}

// solveSlab is the SPMD body: V(2,2)-cycles with an agglomerated coarse
// solve, iterating until the global relative residual passes tol.
func solveSlab(s *mgSlab, slabs []*mgSlab, root *Solver, red *team.Reducer, bar *team.Barrier, maxCycles int, tol float64) DistResult {
	fine := root.levels[0]
	h2 := fine.h * fine.h
	invH2 := 1.0 / h2

	b2 := math.Sqrt(red.Sum(s.rank, dotLocal(s.b)))
	out := DistResult{}
	if b2 == 0 {
		out.Converged = true
		return out
	}

	for cycle := 1; cycle <= maxCycles; cycle++ {
		// Pre-smooth (x2), matching the serial V(2,2) cycle.
		s.smooth(h2)
		s.smooth(h2)
		s.residual(invH2)

		// Gather the residual on rank 0, run the coarse hierarchy
		// there, and scatter back the fine-level correction.
		s.toRoot <- s.r
		if s.rank == 0 {
			p := s.plane()
			for _, other := range slabs {
				chunk := <-other.toRoot
				copy(fine.r[other.z0*p:], chunk)
			}
			coarse := root.levels[1]
			root.restrictTo(fine, coarse)
			zero(coarse.u)
			root.vcycleFrom(1)
			zero(fine.u) // correction workspace
			root.prolongAdd(coarse, fine)
			for _, other := range slabs {
				chunk := make([]float64, other.nz*p)
				copy(chunk, fine.u[other.z0*p:other.z0*p+other.nz*p])
				other.fromRoot <- chunk
			}
		}
		correction := <-s.fromRoot
		for i, c := range correction {
			s.u[i] += c
		}

		// Post-smooth (x2).
		s.smooth(h2)
		s.smooth(h2)

		s.residual(invH2)
		rnorm := math.Sqrt(red.Sum(s.rank, dotLocal(s.r)))
		out.Cycles = cycle
		out.Residual = rnorm / b2
		if out.Residual < tol {
			out.Converged = true
			break
		}
		bar.Await() // keep cycles in lockstep
	}
	return out
}

func dotLocal(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return sum
}

// gatherSolution assembles the global solution from the slabs.
func gatherSolution(slabs []*mgSlab) []float64 {
	n := slabs[0].n
	out := make([]float64, n*n*n)
	p := n * n
	for _, s := range slabs {
		copy(out[s.z0*p:], s.u)
	}
	return out
}
