package hpgmg

import (
	"math"
	"testing"
)

// serialVCycles runs the plain V-cycle loop (no FMG) on the serial
// solver, mirroring the distributed algorithm exactly.
func serialVCycles(k, cycles int) *Solver {
	s, err := NewSolver(k)
	if err != nil {
		panic(err)
	}
	s.Workers = 1
	setManufacturedRHS(s.Fine())
	for c := 0; c < cycles; c++ {
		s.vcycle(0)
	}
	return s
}

func TestDistributedBitIdenticalToSerial(t *testing.T) {
	// The distributed V-cycle uses global red-black colouring with ghost
	// exchange between colours and agglomerates the coarse hierarchy, so
	// its arithmetic is point-for-point the same as the serial solver's.
	// After the same number of cycles the solutions must agree to
	// rounding noise.
	const k, cycles = 4, 3
	serial := serialVCycles(k, cycles)
	_, got, err := RunDistributedSolution(k, 3, cycles, 0) // tol 0: run all cycles
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Fine().u
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-13 {
			t.Fatalf("solutions differ at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestDistributedConvergesAcrossRankCounts(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 7} {
		res, err := RunDistributed(5, ranks, 30, 1e-9)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Errorf("ranks=%d: residual %g after %d cycles", ranks, res.Residual, res.Cycles)
		}
		if res.MDOFs <= 0 || res.Ranks != ranks {
			t.Errorf("ranks=%d: result %+v", ranks, res)
		}
	}
}

func TestDistributedSameCyclesAnyRankCount(t *testing.T) {
	// Numerical equivalence implies the cycle count to tolerance is
	// independent of the decomposition.
	base, err := RunDistributed(4, 1, 30, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 3, 5} {
		res, err := RunDistributed(4, ranks, 30, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != base.Cycles {
			t.Errorf("ranks=%d took %d cycles, 1 rank took %d", ranks, res.Cycles, base.Cycles)
		}
	}
}

func TestDistributedSolutionAccuracy(t *testing.T) {
	// Against the manufactured solution, the distributed result has the
	// same O(h^2) discretisation error as the serial solver.
	const k = 5
	_, u, err := RunDistributedSolution(k, 4, 30, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	n := (1 << k) - 1
	h := 1.0 / float64(n+1)
	worst := 0.0
	for kk := 0; kk < n; kk++ {
		z := float64(kk+1) * h
		for j := 0; j < n; j++ {
			y := float64(j+1) * h
			for i := 0; i < n; i++ {
				x := float64(i+1) * h
				exact := math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
				if e := math.Abs(u[i+n*j+n*n*kk] - exact); e > worst {
					worst = e
				}
			}
		}
	}
	if worst > 5*h*h {
		t.Errorf("max error %g exceeds O(h^2) bound %g", worst, 5*h*h)
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := RunDistributed(1, 1, 10, 1e-6); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := RunDistributed(4, 0, 10, 1e-6); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := RunDistributed(4, 8, 10, 1e-6); err == nil {
		t.Error("8 ranks on 15 planes accepted (needs >= 2 planes each)")
	}
}
