package hpgmg

import (
	"math"
	"strings"
	"testing"
)

func TestMultigridConverges(t *testing.T) {
	s, err := NewSolver(5) // 31^3
	if err != nil {
		t.Fatal(err)
	}
	setManufacturedRHS(s.Fine())
	rel := s.Solve(1e-9, 30)
	if rel > 1e-9 {
		t.Errorf("relative residual = %g after %d cycles", rel, s.VCycleCount)
	}
	if s.VCycleCount > 15 {
		t.Errorf("multigrid needed %d V-cycles; convergence factor too weak", s.VCycleCount)
	}
	if s.FlopCount <= 0 {
		t.Error("no flops accounted")
	}
}

func TestDiscretizationErrorSecondOrder(t *testing.T) {
	// Solving at h and h/2 must shrink the max error by ~4x (O(h^2)).
	errAt := func(k int) float64 {
		s, err := NewSolver(k)
		if err != nil {
			t.Fatal(err)
		}
		setManufacturedRHS(s.Fine())
		if rel := s.Solve(1e-10, 40); rel > 1e-9 {
			t.Fatalf("k=%d did not converge: %g", k, rel)
		}
		return maxError(s.Fine())
	}
	e3 := errAt(3) // 7^3
	e4 := errAt(4) // 15^3
	e5 := errAt(5) // 31^3
	r1 := e3 / e4
	r2 := e4 / e5
	if r1 < 3 || r1 > 5.5 || r2 < 3 || r2 > 5.5 {
		t.Errorf("error ratios %.2f, %.2f; want ~4 (O(h^2)): e3=%g e4=%g e5=%g", r1, r2, e3, e4, e5)
	}
}

func TestVCycleReducesResidual(t *testing.T) {
	s, _ := NewSolver(4)
	setManufacturedRHS(s.Fine())
	fine := s.Fine()
	b2 := s.norm(fine.b)
	// Start from zero; each V-cycle should contract the residual by a
	// classical multigrid factor (<< 0.5).
	prev := b2
	for c := 0; c < 4; c++ {
		s.vcycle(0)
		s.residual(fine)
		cur := s.norm(fine.r)
		if cur > 0.5*prev {
			t.Fatalf("cycle %d: residual %g did not contract from %g", c, cur, prev)
		}
		prev = cur
	}
}

func TestFMGBeatsColdVCycle(t *testing.T) {
	// FMG must land closer to the solution than a single cold V-cycle.
	run := func(useFMG bool) float64 {
		s, _ := NewSolver(4)
		setManufacturedRHS(s.Fine())
		if useFMG {
			s.FMG()
		} else {
			s.vcycle(0)
		}
		s.residual(s.Fine())
		return s.norm(s.Fine().r)
	}
	if fmg, cold := run(true), run(false); fmg >= cold {
		t.Errorf("FMG residual %g should beat cold V-cycle %g", fmg, cold)
	}
}

func TestSolverWorkersConsistent(t *testing.T) {
	// Parallel and serial smoothing must agree (red-black ordering is
	// deterministic regardless of worker count).
	run := func(workers int) []float64 {
		s, _ := NewSolver(4)
		s.Workers = workers
		setManufacturedRHS(s.Fine())
		s.Solve(1e-8, 20)
		out := make([]float64, len(s.Fine().u))
		copy(out, s.Fine().u)
		return out
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if math.Abs(serial[i]-parallel[i]) > 1e-12 {
			t.Fatalf("worker count changes the answer at %d: %g vs %g", i, serial[i], parallel[i])
		}
	}
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSolver(11); err == nil {
		t.Error("k=11 accepted")
	}
}

func TestRunProducesThreeLevels(t *testing.T) {
	res, err := Run(Config{Log2Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	labels := []string{"l0", "l1", "l2"}
	for i, l := range res.Levels {
		if l.Label != labels[i] {
			t.Errorf("level %d label %s", i, l.Label)
		}
		if l.MDOFs <= 0 {
			t.Errorf("%s rate = %g", l.Label, l.MDOFs)
		}
		if !l.Valid {
			t.Errorf("%s invalid: residual %g, err %g", l.Label, l.Residual, l.MaxError)
		}
	}
	if _, ok := res.FOM("l0"); !ok {
		t.Error("FOM lookup failed")
	}
	if _, ok := res.FOM("l9"); ok {
		t.Error("bogus FOM found")
	}
	if !strings.Contains(res.Output, "average solve rate l0") {
		t.Errorf("output:\n%s", res.Output)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Log2Dim: 1}); err == nil {
		t.Error("too-small grid accepted")
	}
	if _, err := Run(Config{Log2Dim: 99}); err == nil {
		t.Error("huge grid accepted")
	}
}
