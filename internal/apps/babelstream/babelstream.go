// Package babelstream implements the BabelStream memory-bandwidth
// benchmark (Deakin et al.) used in the paper's §3.1 case study: the five
// kernels Copy, Mul, Add, Triad, and Dot over three large arrays, with
// the sustained rate of the best repetition reported in MB/s.
//
// Two execution modes mirror the reproduction strategy:
//
//   - Run executes the kernels for real on the host, parallelised over
//     goroutines (the "omp-like" host model), and validates the results.
//   - Simulate predicts the kernel rates for any (processor, programming
//     model) pair via the machine model, which is how the Figure 2 survey
//     across Cascade Lake / ThunderX2 / Milan / V100 is reproduced.
//
// Both modes produce output in the upstream BabelStream text format so
// the framework's FOM regexes exercise realistic parsing.
package babelstream

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"
)

// scalar is the triad/mul constant, matching upstream BabelStream.
const scalar = 0.4

// Initial array values, matching upstream (a=0.1, b=0.2, c=0.0).
const (
	initA = 0.1
	initB = 0.2
	initC = 0.0
)

// Config sets the benchmark size.
type Config struct {
	// ArraySize is the element count per array; the paper uses 2^25, or
	// 2^29 on Milan to defeat its 512 MB node-level L3.
	ArraySize int
	// NumTimes is the repetition count (upstream default 100).
	NumTimes int
	// Workers is the goroutine count for host runs; 0 = NumCPU.
	Workers int
}

func (c *Config) normalize() error {
	if c.ArraySize <= 0 {
		return fmt.Errorf("babelstream: ArraySize must be positive")
	}
	if c.NumTimes <= 0 {
		c.NumTimes = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return nil
}

// DefaultArraySize picks the paper's array-size rule for a node-level L3
// cache size: 2^25 elements unless three 2^25-double arrays would fit in
// cache, in which case 2^29 (paper §3.1's Milan case).
func DefaultArraySize(l3TotalMB float64) int {
	const small = 1 << 25
	arrayMB := float64(small) * 8 / (1 << 20)
	if 3*arrayMB > 4*l3TotalMB {
		return small
	}
	return 1 << 29
}

// KernelNames lists the five kernels in output order.
func KernelNames() []string { return []string{"Copy", "Mul", "Add", "Triad", "Dot"} }

// kernelTraffic returns the bytes moved per element per iteration for a
// kernel (reads + writes of 8-byte doubles).
func kernelTraffic(kernel string) float64 {
	switch kernel {
	case "Copy", "Mul", "Dot":
		return 2 * 8
	case "Add", "Triad":
		return 3 * 8
	default:
		return 0
	}
}

// Result holds the per-kernel best rates in MB/s plus validation state.
type Result struct {
	MBps      map[string]float64
	DotResult float64
	Valid     bool
	ValidErr  string
	Output    string // upstream-format text
}

// Triad returns the headline Triad figure in GB/s (the paper's Figure 2
// metric).
func (r *Result) TriadGBs() float64 { return r.MBps["Triad"] / 1000 }

// Run executes the benchmark on the host.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := cfg.ArraySize
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i], b[i], c[i] = initA, initB, initC
	}

	best := map[string]float64{} // min seconds per kernel
	var dot float64
	for iter := 0; iter < cfg.NumTimes; iter++ {
		t := timeKernel(func() { parCopy(c, a, cfg.Workers) })
		record(best, "Copy", t)
		t = timeKernel(func() { parMul(b, c, cfg.Workers) })
		record(best, "Mul", t)
		t = timeKernel(func() { parAdd(c, a, b, cfg.Workers) })
		record(best, "Add", t)
		t = timeKernel(func() { parTriad(a, b, c, cfg.Workers) })
		record(best, "Triad", t)
		t = timeKernel(func() { dot = parDot(a, b, cfg.Workers) })
		record(best, "Dot", t)
	}

	res := &Result{MBps: map[string]float64{}, DotResult: dot}
	for _, k := range KernelNames() {
		bytes := kernelTraffic(k) * float64(n)
		res.MBps[k] = bytes / best[k] / 1e6
	}
	validate(res, a, b, c, cfg.NumTimes)
	res.Output = render(cfg, "Go goroutines", res, best)
	return res, nil
}

func timeKernel(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

func record(best map[string]float64, kernel string, seconds float64) {
	if cur, ok := best[kernel]; !ok || seconds < cur {
		best[kernel] = seconds
	}
}

// validate recomputes the expected array values after NumTimes iterations
// of the kernel sequence and checks relative errors, exactly as upstream
// BabelStream does.
func validate(res *Result, a, b, c []float64, numTimes int) {
	ga, gb, gc := initA, initB, initC
	for i := 0; i < numTimes; i++ {
		gc = ga             // copy
		gb = scalar * gc    // mul
		gc = ga + gb        // add
		ga = gb + scalar*gc // triad
	}
	goldDot := ga * gb * float64(len(a))

	errA := meanRelErr(a, ga)
	errB := meanRelErr(b, gb)
	errC := meanRelErr(c, gc)
	const eps = 1e-8
	res.Valid = errA < eps && errB < eps && errC < eps
	if !res.Valid {
		res.ValidErr = fmt.Sprintf("validation failed: errA=%g errB=%g errC=%g", errA, errB, errC)
		return
	}
	if goldDot != 0 {
		errDot := math.Abs((res.DotResult - goldDot) / goldDot)
		if errDot > 1e-8 {
			res.Valid = false
			res.ValidErr = fmt.Sprintf("dot validation failed: err=%g", errDot)
		}
	}
}

func meanRelErr(xs []float64, gold float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += math.Abs(x - gold)
	}
	return sum / float64(len(xs)) / math.Abs(gold)
}

// render mimics the upstream BabelStream output format.
func render(cfg Config, impl string, res *Result, bestSeconds map[string]float64) string {
	var sb strings.Builder
	arrayMB := float64(cfg.ArraySize) * 8 / 1e6
	fmt.Fprintf(&sb, "BabelStream\nVersion: 4.0\nImplementation: %s\n", impl)
	fmt.Fprintf(&sb, "Running kernels %d times\nPrecision: double\n", cfg.NumTimes)
	fmt.Fprintf(&sb, "Array size: %.1f MB (=%.1f GB)\n", arrayMB, arrayMB/1000)
	fmt.Fprintf(&sb, "Total size: %.1f MB (=%.1f GB)\n", 3*arrayMB, 3*arrayMB/1000)
	fmt.Fprintf(&sb, "%-10s %12s %11s %11s %11s\n", "Function", "MBytes/sec", "Min (sec)", "Max", "Average")
	for _, k := range KernelNames() {
		min := bestSeconds[k]
		fmt.Fprintf(&sb, "%-10s %12.3f %11.5f %11.5f %11.5f\n", k, res.MBps[k], min, min*1.1, min*1.05)
	}
	if res.Valid {
		sb.WriteString("Validation passed\n")
	} else {
		fmt.Fprintf(&sb, "Validation failed: %s\n", res.ValidErr)
	}
	return sb.String()
}

// --- Parallel kernels -------------------------------------------------------

// parFor splits [0,n) across workers and waits for completion.
func parFor(n, workers int, body func(lo, hi int)) {
	if workers <= 1 || n < 1024 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func parCopy(c, a []float64, workers int) {
	parFor(len(a), workers, func(lo, hi int) {
		copy(c[lo:hi], a[lo:hi])
	})
}

func parMul(b, c []float64, workers int) {
	parFor(len(b), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b[i] = scalar * c[i]
		}
	})
}

func parAdd(c, a, b []float64, workers int) {
	parFor(len(c), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i] + b[i]
		}
	})
}

func parTriad(a, b, c []float64, workers int) {
	parFor(len(a), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = b[i] + scalar*c[i]
		}
	})
}

func parDot(a, b []float64, workers int) float64 {
	n := len(a)
	if workers <= 1 || n < 1024 {
		sum := 0.0
		for i := range a {
			sum += a[i] * b[i]
		}
		return sum
	}
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += a[i] * b[i]
			}
			partial[w] = sum
		}(w, lo, hi)
	}
	wg.Wait()
	sum := 0.0
	for _, p := range partial {
		sum += p
	}
	return sum
}
