package babelstream

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/platform"
)

// Simulate predicts BabelStream results for a processor under a
// programming model via the machine model, producing the same Result
// structure (and text output) as a host run. This is the substitution
// that lets the Figure 2 survey run without the paper's hardware.
func Simulate(proc *platform.Processor, model machine.ProgModel, cfg Config, systemFactor float64) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if sup := machine.ModelSupport(model, proc); !sup.OK {
		return nil, fmt.Errorf("babelstream: %s on %s: %s", model, proc, sup.Reason)
	}
	// The three arrays must fit in device memory — the constraint that
	// bounds array sizes upward on GPUs (a V100 holds 16 GB).
	if totalGB := float64(cfg.ArraySize) * 3 * 8 / 1e9; proc.MemoryGB > 0 && totalGB > proc.MemoryGB {
		return nil, fmt.Errorf("babelstream: %.1f GB working set exceeds %s's %.0f GB memory",
			totalGB, proc.Name, proc.MemoryGB)
	}
	run := machine.Run{Proc: proc, Model: model, SystemFactor: systemFactor}
	res := &Result{MBps: map[string]float64{}, Valid: true}
	best := map[string]float64{}
	boost := cacheBoost(float64(cfg.ArraySize)*3*8/(1<<20), proc.L3CacheTotalMB())
	for _, k := range KernelNames() {
		bytes := kernelTraffic(k) * float64(cfg.ArraySize)
		// When the working set (partially) fits in cache, less of the
		// nominal traffic reaches DRAM — but the benchmark still
		// divides the nominal bytes by the observed time, so small
		// arrays report inflated "bandwidth".
		dramBytes := bytes / boost
		// The benchmark reports the best of NumTimes repetitions; with
		// deterministic jitter we model that by sampling a handful of
		// distinct salts and keeping the minimum.
		min := 0.0
		for rep := 0; rep < 5; rep++ {
			t, err := machine.Time(run, dramBytes, bytes/8, fmt.Sprintf("%s/%d", k, rep))
			if err != nil {
				return nil, fmt.Errorf("babelstream: %w", err)
			}
			if rep == 0 || t < min {
				min = t
			}
		}
		best[k] = min
		res.MBps[k] = bytes / min / 1e6
	}
	res.DotResult = 0 // simulated runs carry no data to validate
	res.Output = render(cfg, fmt.Sprintf("%s (simulated on %s)", model, proc.Microarch), res, best)
	return res, nil
}

// cacheBoost models the apparent-bandwidth inflation when the working set
// fits in the last-level cache — the effect the paper's array-size rule
// exists to avoid ("the array size should be set such that it forces the
// data to go beyond the L3 cache"). Fully cached sets stream ~3x faster
// than DRAM; the boost fades linearly as the set grows to twice the
// cache.
func cacheBoost(workingSetMB, l3MB float64) float64 {
	if l3MB <= 0 || workingSetMB >= 2*l3MB {
		return 1
	}
	if workingSetMB <= l3MB {
		return 3
	}
	return 1 + 2*(2*l3MB-workingSetMB)/l3MB
}

// SurveyCell is one (model, platform) measurement of the Figure 2 survey.
type SurveyCell struct {
	Model      machine.ProgModel
	Platform   string // display label, e.g. "isambard-macs:cascadelake"
	Supported  bool
	Reason     string  // why unsupported ("*" cells)
	TriadGBs   float64 // measured Triad
	PeakGBs    float64 // theoretical peak (Table 1)
	Efficiency float64 // Triad / peak (the Figure 2 colour value)
}

// SurveyTarget names one platform column of the survey.
type SurveyTarget struct {
	Label        string
	Proc         *platform.Processor
	SystemFactor float64
}

// Survey reproduces the Figure 2 matrix: for every programming model and
// every target platform, run (simulated) BabelStream with the paper's
// array-size rule and compute Triad efficiency against theoretical peak.
func Survey(models []machine.ProgModel, targets []SurveyTarget, numTimes int) ([]SurveyCell, error) {
	var cells []SurveyCell
	for _, m := range models {
		for _, tgt := range targets {
			cell := SurveyCell{Model: m, Platform: tgt.Label, PeakGBs: tgt.Proc.PeakBandwidthGBs}
			sup := machine.ModelSupport(m, tgt.Proc)
			if !sup.OK {
				cell.Reason = sup.Reason
				cells = append(cells, cell)
				continue
			}
			cfg := Config{ArraySize: DefaultArraySize(tgt.Proc.L3CacheTotalMB()), NumTimes: numTimes}
			res, err := Simulate(tgt.Proc, m, cfg, tgt.SystemFactor)
			if err != nil {
				return nil, err
			}
			cell.Supported = true
			cell.TriadGBs = res.TriadGBs()
			cell.Efficiency = cell.TriadGBs / cell.PeakGBs
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// PaperTargets returns the four platform columns of Figure 2.
func PaperTargets() []SurveyTarget {
	return []SurveyTarget{
		{Label: "isambard-macs:cascadelake", Proc: platform.CascadeLake6230, SystemFactor: 1},
		{Label: "isambard-xci", Proc: platform.ThunderX2, SystemFactor: 1},
		{Label: "paderborn-milan", Proc: platform.EPYCMilan7763, SystemFactor: 1},
		{Label: "isambard-macs:volta", Proc: platform.TeslaV100, SystemFactor: 1},
	}
}
