package babelstream

import (
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/platform"
)

func TestRunSmallValidates(t *testing.T) {
	res, err := Run(Config{ArraySize: 1 << 16, NumTimes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("validation failed: %s", res.ValidErr)
	}
	for _, k := range KernelNames() {
		if res.MBps[k] <= 0 {
			t.Errorf("%s rate = %g", k, res.MBps[k])
		}
	}
	for _, want := range []string{"BabelStream", "Triad", "Dot", "Validation passed"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSerialEqualsParallelValidation(t *testing.T) {
	serial, err := Run(Config{ArraySize: 4096, NumTimes: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Config{ArraySize: 1 << 15, NumTimes: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Valid || !par.Valid {
		t.Error("both serial and parallel runs must validate")
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(Config{ArraySize: 0}); err == nil {
		t.Error("zero array size accepted")
	}
}

func TestDefaultArraySizeRule(t *testing.T) {
	// Cascade Lake (55 MB node L3): 2^25 suffices.
	if got := DefaultArraySize(platform.CascadeLake6230.L3CacheTotalMB()); got != 1<<25 {
		t.Errorf("cascade lake array = 2^%d, want 2^25", log2(got))
	}
	// Milan (512 MB node L3): needs 2^29 (paper §3.1).
	if got := DefaultArraySize(platform.EPYCMilan7763.L3CacheTotalMB()); got != 1<<29 {
		t.Errorf("milan array = 2^%d, want 2^29", log2(got))
	}
	// V100 (6 MB L2): 2^25.
	if got := DefaultArraySize(platform.TeslaV100.L3CacheTotalMB()); got != 1<<25 {
		t.Errorf("volta array = 2^%d, want 2^25", log2(got))
	}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func TestSimulateVoltaNearPeak(t *testing.T) {
	cfg := Config{ArraySize: 1 << 25, NumTimes: 100}
	res, err := Simulate(platform.TeslaV100, machine.CUDA, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	eff := res.TriadGBs() / platform.TeslaV100.PeakBandwidthGBs
	if eff < 0.88 || eff > 1.0 {
		t.Errorf("CUDA/V100 Triad efficiency = %g, want near peak", eff)
	}
	if !strings.Contains(res.Output, "simulated") {
		t.Error("simulated output should say so")
	}
}

func TestSimulateUnsupported(t *testing.T) {
	cfg := Config{ArraySize: 1 << 20}
	if _, err := Simulate(platform.CascadeLake6230, machine.CUDA, cfg, 1); err == nil {
		t.Error("CUDA on CPU accepted")
	}
	if _, err := Simulate(platform.ThunderX2, machine.TBB, cfg, 1); err == nil {
		t.Error("TBB on ThunderX2 accepted")
	}
}

func TestSurveyReproducesFigure2Shapes(t *testing.T) {
	cells, err := Survey(machine.AllModels(), PaperTargets(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8*4 {
		t.Fatalf("cells = %d, want 32", len(cells))
	}
	get := func(m machine.ProgModel, plat string) SurveyCell {
		for _, c := range cells {
			if c.Model == m && strings.Contains(c.Platform, plat) {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing", m, plat)
		return SurveyCell{}
	}
	// "*" cells: CUDA on CPUs, TBB on ThunderX2.
	for _, plat := range []string{"cascadelake", "xci", "paderborn"} {
		if c := get(machine.CUDA, plat); c.Supported {
			t.Errorf("CUDA should be unsupported on %s", plat)
		}
	}
	if c := get(machine.TBB, "xci"); c.Supported {
		t.Error("TBB should be unsupported on ThunderX2")
	}
	// Volta: CUDA and OpenCL close to peak.
	if c := get(machine.CUDA, "volta"); !c.Supported || c.Efficiency < 0.88 {
		t.Errorf("CUDA/volta eff = %g", c.Efficiency)
	}
	if c := get(machine.OpenCL, "volta"); !c.Supported || c.Efficiency < 0.85 {
		t.Errorf("OpenCL/volta eff = %g", c.Efficiency)
	}
	// OpenMP works on all four platforms.
	for _, plat := range []string{"cascadelake", "xci", "paderborn", "volta"} {
		if c := get(machine.OMP, plat); !c.Supported {
			t.Errorf("OpenMP should run on %s", plat)
		}
	}
	// OpenMP utilisation best on Intel/AMD CPUs (paper's observation).
	intel := get(machine.OMP, "cascadelake").Efficiency
	amd := get(machine.OMP, "paderborn").Efficiency
	tx2 := get(machine.OMP, "xci").Efficiency
	if intel <= tx2 || amd <= tx2 {
		t.Errorf("OpenMP eff: intel %g amd %g tx2 %g", intel, amd, tx2)
	}
	// std-ranges single-thread disparity vs std-data (paper's
	// "expected behaviour").
	d := get(machine.StdData, "cascadelake").Efficiency
	r := get(machine.StdRanges, "cascadelake").Efficiency
	if r >= d/3 {
		t.Errorf("std-ranges %g should trail std-data %g", r, d)
	}
	// Every unsupported cell explains itself.
	for _, c := range cells {
		if !c.Supported && c.Reason == "" {
			t.Errorf("cell %s/%s unsupported without reason", c.Model, c.Platform)
		}
		if c.Supported && (c.Efficiency <= 0 || c.Efficiency > 1.0) {
			t.Errorf("cell %s/%s efficiency = %g out of range", c.Model, c.Platform, c.Efficiency)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{ArraySize: 1 << 25}
	a, err := Simulate(platform.EPYCMilan7763, machine.OMP, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(platform.EPYCMilan7763, machine.OMP, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.TriadGBs() != b.TriadGBs() {
		t.Error("simulation must be deterministic")
	}
}

func TestKernelTraffic(t *testing.T) {
	// Copy/Mul/Dot move 2 arrays, Add/Triad move 3.
	if kernelTraffic("Copy") != 16 || kernelTraffic("Triad") != 24 {
		t.Error("traffic constants wrong")
	}
	if kernelTraffic("Nope") != 0 {
		t.Error("unknown kernel should have zero traffic")
	}
}

func TestDotValueMatchesAnalytic(t *testing.T) {
	cfg := Config{ArraySize: 1 << 12, NumTimes: 3, Workers: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After validation passed, dot must equal ga*gb*n.
	ga, gb, gc := initA, initB, initC
	for i := 0; i < cfg.NumTimes; i++ {
		gc = ga
		gb = scalar * gc
		gc = ga + gb
		ga = gb + scalar*gc
	}
	want := ga * gb * float64(cfg.ArraySize)
	if math.Abs(res.DotResult-want)/math.Abs(want) > 1e-10 {
		t.Errorf("dot = %g, want %g", res.DotResult, want)
	}
}

func TestCacheBoost(t *testing.T) {
	// Fully cached: 3x; far beyond cache: 1x; linear in between.
	if got := cacheBoost(100, 512); got != 3 {
		t.Errorf("cached boost = %g", got)
	}
	if got := cacheBoost(2000, 512); got != 1 {
		t.Errorf("uncached boost = %g", got)
	}
	mid := cacheBoost(768, 512) // 1.5x the cache size
	if mid <= 1 || mid >= 3 {
		t.Errorf("partial boost = %g, want in (1,3)", mid)
	}
	if cacheBoost(100, 0) != 1 {
		t.Error("zero cache must not boost")
	}
}

func TestSmallArraysInflateBandwidth(t *testing.T) {
	// The paper's §3.1 rationale for the 2^29 array on Milan: a working
	// set that (partially) fits in the 512 MB node L3 reports bandwidth
	// above the DRAM peak — the "fooling the masses" trap the array-size
	// rule avoids.
	small, err := Simulate(platform.EPYCMilan7763, machine.OMP, Config{ArraySize: 1 << 22}, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(platform.EPYCMilan7763, machine.OMP, Config{ArraySize: 1 << 29}, 1)
	if err != nil {
		t.Fatal(err)
	}
	peak := platform.EPYCMilan7763.PeakBandwidthGBs
	if small.TriadGBs() <= peak {
		t.Errorf("cached run = %.0f GB/s, should exceed the %.0f GB/s DRAM peak", small.TriadGBs(), peak)
	}
	if big.TriadGBs() >= peak {
		t.Errorf("honest run = %.0f GB/s, must stay below peak", big.TriadGBs())
	}
	// And the default size rule picks the honest configuration.
	if DefaultArraySize(platform.EPYCMilan7763.L3CacheTotalMB()) != 1<<29 {
		t.Error("array-size rule should defeat Milan's cache")
	}
}

func TestSimulateRejectsOversizedArrays(t *testing.T) {
	// 2^30 doubles x 3 arrays = 25.8 GB > the V100's 16 GB.
	if _, err := Simulate(platform.TeslaV100, machine.CUDA, Config{ArraySize: 1 << 30}, 1); err == nil {
		t.Error("working set beyond device memory accepted")
	}
	// The default size rule stays within it.
	size := DefaultArraySize(platform.TeslaV100.L3CacheTotalMB())
	if _, err := Simulate(platform.TeslaV100, machine.CUDA, Config{ArraySize: size}, 1); err != nil {
		t.Errorf("default size rejected: %v", err)
	}
}
