package core

import (
	"fmt"
	"time"

	"repro/internal/buildsys"
	"repro/internal/concretize"
	"repro/internal/env"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/machine"
	"repro/internal/perflog"
	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/spec"
)

// Run executes the full pipeline for one benchmark on one system.
func (r *Runner) Run(b Benchmark, opts Options) (*Report, error) {
	if b == nil {
		return nil, fmt.Errorf("core: nil benchmark")
	}
	if opts.System == "" {
		return nil, fmt.Errorf("core: no target system (use Options.System, e.g. \"archer2\" or \"isambard-macs:cascadelake\")")
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	report := &Report{Benchmark: b.Name(), EnvBefore: env.CaptureEnvironment()}

	// 1. Resolve the platform.
	sys, part, err := r.Estate.Resolve(opts.System)
	if err != nil {
		return nil, err
	}
	report.System = sys.Name
	report.Partition = part.Name

	// 2. Concretize the build spec against the system environment
	// (Principle 4: the build is fully determined by spec + system
	// config, both of which are recorded).
	specText := b.BuildSpec()
	if opts.Spec != "" {
		specText = opts.Spec
	}
	abstract, err := spec.Parse(specText)
	if err != nil {
		return nil, err
	}
	cfg := r.Envs.ForSystem(sys.Name)
	conc, err := concretize.Concretize(abstract, cfg.ConcretizeOptions(r.Repo, string(part.Processor.Arch)))
	if err != nil {
		return nil, err
	}
	report.Spec = conc.Spec
	report.SpecTrace = conc.Steps

	// 3. Build (Principles 2-3). The builder returns one provenance
	// record per DAG node, root last; the root's prefix holds the
	// binary the job launches.
	builder := buildsys.NewBuilder(r.InstallTree, r.Repo)
	builder.RebuildEveryRun = r.RebuildEveryRun
	records, err := builder.Install(conc.Spec)
	if err != nil {
		return nil, err
	}
	report.Builds = records
	report.BuildTime = buildsys.TotalBuildTime(records)
	rootBuild := records[len(records)-1]
	exePath := rootBuild.Prefix + "/bin/" + conc.Spec.Name

	// 4. Assemble the job.
	layout := b.DefaultLayout()
	if opts.NumTasks > 0 {
		layout.NumTasks = opts.NumTasks
	}
	if opts.TasksPerNode > 0 {
		layout.TasksPerNode = opts.TasksPerNode
	}
	if opts.CPUsPerTask > 0 {
		layout.CPUsPerTask = opts.CPUsPerTask
	}
	if layout.CPUsPerTask <= 0 {
		layout.CPUsPerTask = 1
	}
	if layout.NumTasks <= 0 {
		// ReFrame-style: benchmarks may ask for "the whole node" without
		// hardcoding a core count, which would make them unportable
		// (paper §2.3). Resolve against the partition's processor.
		layout.NumTasks = part.Processor.TotalCores() / layout.CPUsPerTask
		if layout.NumTasks < 1 {
			layout.NumTasks = 1
		}
		if layout.TasksPerNode <= 0 {
			layout.TasksPerNode = layout.NumTasks
		}
	}
	launch, err := launcher.For(part.Launcher)
	if err != nil {
		return nil, err
	}
	account := cfg.Account
	if opts.Account != "" {
		account = opts.Account
	}
	job := &scheduler.Job{
		Name:         b.Name(),
		Account:      account,
		QOS:          cfg.QOS,
		NumTasks:     layout.NumTasks,
		TasksPerNode: layout.TasksPerNode,
		CPUsPerTask:  layout.CPUsPerTask,
		Env:          cfg.EnvVars,
		Commands:     []string{launch.Command(layout, exePath, b.Args())},
	}

	// 5. Schedule and execute.
	sched, err := r.schedulerFor(sys, part, b, conc.Spec, layout)
	if err != nil {
		return nil, err
	}
	report.JobScript = sched.Script(job)
	id, err := sched.Submit(job)
	if err != nil {
		return nil, err
	}
	info, err := sched.Wait(id)
	if err != nil {
		return nil, err
	}
	report.Job = info

	// 6. Sanity and FOM extraction (Principle 6), then the perflog.
	entry := &perflog.Entry{
		Time:      now(),
		Benchmark: b.Name(),
		System:    sys.Name,
		Partition: part.Name,
		Environ:   conc.Spec.Compiler.Name,
		Spec:      conc.Spec.RootString(),
		JobID:     info.ID,
		Result:    "fail",
		FOMs:      map[string]fom.Value{},
		Extra: map[string]string{
			"num_tasks":          fmt.Sprint(layout.NumTasks),
			"num_tasks_per_node": fmt.Sprint(layout.TasksPerNode),
			"num_cpus_per_task":  fmt.Sprint(layout.CPUsPerTask),
			"job_runtime_s":      fmt.Sprintf("%.6f", info.Runtime()),
			// Build provenance (Principle 4): the hash keys the install
			// prefix whose manifest records the full command script.
			"build_hash":        rootBuild.Hash,
			"build_state":       rootBuild.State(),
			"builds":            buildsys.Summary(records),
			"simulated_build_s": fmt.Sprintf("%.3f", report.BuildTime.Seconds()),
			// System-state capture the paper lists as planned work:
			// an energy estimate for the allocation over the run.
			"est_energy_j": fmt.Sprintf("%.1f",
				part.Processor.EnergyEstimateJ(info.Runtime())*float64(len(info.Nodes))),
		},
	}
	report.Entry = entry
	if info.State == scheduler.Completed {
		if err := b.Sanity().Check(info.Stdout); err == nil {
			foms, ferr := fom.Extract(info.Stdout, b.PerfPatterns())
			if ferr == nil {
				entry.FOMs = foms
				entry.Result = "pass"
			} else {
				entry.Extra["error"] = ferr.Error()
			}
		} else {
			entry.Extra["error"] = err.Error()
		}
	} else {
		entry.Extra["error"] = fmt.Sprintf("job state %s: %s", info.State, info.Stderr)
	}
	report.FOMs = entry.FOMs

	if r.PerflogRoot != "" {
		if err := perflog.Append(r.PerflogRoot, sys.Name, b.Name(), entry); err != nil {
			return report, err
		}
	}
	return report, nil
}

// schedulerFor builds the scheduler for a partition, wiring the
// benchmark's Execute as the job payload.
func (r *Runner) schedulerFor(sys *platform.System, part *platform.Partition, b Benchmark, concrete *spec.Spec, layout launcher.Layout) (scheduler.Scheduler, error) {
	exec := func(job *scheduler.Job, nodes []string) scheduler.Result {
		// The per-system software factor captures MPI-stack and
		// toolchain quirks that bite multi-node runs (paper §3.3);
		// single-node jobs see the architecture's own efficiency.
		factor := 1.0
		if len(nodes) > 1 {
			factor = machine.SystemFactor(sys.Name)
		}
		ctx := &RunContext{
			System:       sys,
			Partition:    part,
			Spec:         concrete,
			Layout:       layout,
			Nodes:        nodes,
			SystemFactor: factor,
			Local:        part.Scheduler == "local",
		}
		stdout, elapsed, err := b.Execute(ctx)
		if err != nil {
			return scheduler.Result{Stderr: err.Error(), ExitCode: 1, Duration: elapsed}
		}
		return scheduler.Result{Stdout: stdout, Duration: elapsed}
	}
	switch part.Scheduler {
	case "local":
		return scheduler.NewLocal(exec)
	case "slurm", "pbs":
		sim, err := scheduler.NewSim(part.Scheduler, part.Nodes, part.Processor.TotalCores(), exec)
		if err != nil {
			return nil, err
		}
		sim.Backfill = r.Backfill
		return sim, nil
	default:
		return nil, fmt.Errorf("core: partition %s uses unknown scheduler %q", part.Name, part.Scheduler)
	}
}

// RunMany runs the benchmark across several systems, returning one report
// per target — the cross-system survey loop the framework makes cheap
// (the paper's §3.3 "single workflow" point).
func (r *Runner) RunMany(b Benchmark, targets []string, base Options) ([]*Report, error) {
	var out []*Report
	for _, target := range targets {
		opts := base
		opts.System = target
		rep, err := r.Run(b, opts)
		if err != nil {
			return out, fmt.Errorf("core: %s on %s: %w", b.Name(), target, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
