package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"time"

	"repro/internal/buildsys"
	"repro/internal/concretize"
	"repro/internal/env"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/machine"
	"repro/internal/perflog"
	"repro/internal/platform"
	"repro/internal/retry"
	"repro/internal/scheduler"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Pipeline metrics, registered in the default registry so every binary
// running the pipeline (benchctl, benchd, examples) exposes them.
var (
	metricStageSeconds = telemetry.DefaultRegistry.Histogram(
		"runner_stage_seconds",
		"Wall-clock duration of each pipeline stage, by stage name.",
		nil, "stage")
	metricRunsTotal = telemetry.DefaultRegistry.Counter(
		"runner_runs_total",
		"Pipeline runs by outcome (pass, fail, error).",
		"result")
)

// Run executes the full pipeline for one benchmark on one system. It is
// RunContext with a background context.
func (r *Runner) Run(b Benchmark, opts Options) (*Report, error) {
	return r.RunContext(context.Background(), b, opts)
}

// RunContext executes the full pipeline for one benchmark on one
// system, tracing every stage: the run produces a span tree (resolve →
// concretize → build → schedule → extract → append) published to the
// context's tracer, per-stage wall-clock durations in the
// runner_stage_seconds histogram, and stage_*_s extras in the perflog
// entry so stage timings are queryable alongside the FOMs.
func (r *Runner) RunContext(ctx context.Context, b Benchmark, opts Options) (report *Report, err error) {
	if b == nil {
		return nil, fmt.Errorf("core: nil benchmark")
	}
	if opts.System == "" {
		return nil, fmt.Errorf("core: no target system (use Options.System, e.g. \"archer2\" or \"isambard-macs:cascadelake\")")
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	report = &Report{Benchmark: b.Name(), EnvBefore: env.CaptureEnvironment()}

	ctx, root := telemetry.Start(ctx, "run",
		telemetry.String("benchmark", b.Name()),
		telemetry.String("system", opts.System))
	stageSeconds := map[string]float64{}
	defer func() {
		switch {
		case err != nil:
			metricRunsTotal.With("error").Inc()
		case report.Pass():
			metricRunsTotal.With("pass").Inc()
		default:
			metricRunsTotal.With("fail").Inc()
		}
		root.End(err)
	}()
	// stage wraps one pipeline stage in a child span, applies the
	// runner's retry policy and per-attempt timeout, and records the
	// stage's total wall-clock duration (all attempts) under the given
	// name. Attempt 1 runs directly under the stage span so traces of
	// clean runs are unchanged; each retry gets a child span tagged with
	// its attempt number. canRetry=false pins the stage to one attempt
	// regardless of policy — used for append, which is not idempotent.
	stage := func(name string, canRetry bool, f func(context.Context) error) error {
		sctx, span := telemetry.Start(ctx, name)
		policy := r.Retry
		if !canRetry {
			policy = retry.Policy{}
		}
		serr := policy.Do(sctx, "runner."+name, func(actx context.Context, attempt int) error {
			var aspan *telemetry.Span
			if attempt > 1 {
				actx, aspan = telemetry.Start(actx, name+".retry",
					telemetry.Int("attempt", attempt))
			}
			if r.StageTimeout > 0 {
				var cancel context.CancelFunc
				actx, cancel = context.WithTimeout(actx, r.StageTimeout)
				defer cancel()
			}
			aerr := f(actx)
			// A deadline we imposed (not one inherited from the caller)
			// is a transient condition: the next attempt gets a fresh
			// budget.
			if aerr != nil && errors.Is(aerr, context.DeadlineExceeded) && sctx.Err() == nil {
				aerr = retry.Mark(fmt.Errorf("core: stage %s timed out after %s: %w",
					name, r.StageTimeout, aerr))
			}
			if aspan != nil {
				aspan.End(aerr)
			}
			return aerr
		})
		span.End(serr)
		d := span.Duration().Seconds()
		stageSeconds[name] = d
		metricStageSeconds.With(name).Observe(d)
		return serr
	}

	// 1. Resolve the platform.
	var sys *platform.System
	var part *platform.Partition
	if err := stage("resolve", true, func(context.Context) error {
		var rerr error
		sys, part, rerr = r.Estate.Resolve(opts.System)
		return rerr
	}); err != nil {
		return nil, err
	}
	report.System = sys.Name
	report.Partition = part.Name

	// 2. Concretize the build spec against the system environment
	// (Principle 4: the build is fully determined by spec + system
	// config, both of which are recorded).
	specText := b.BuildSpec()
	if opts.Spec != "" {
		specText = opts.Spec
	}
	cfg := r.Envs.ForSystem(sys.Name)
	var conc *concretize.Result
	if err := stage("concretize", true, func(context.Context) error {
		abstract, perr := spec.Parse(specText)
		if perr != nil {
			return perr
		}
		var cerr error
		conc, cerr = concretize.Concretize(abstract, cfg.ConcretizeOptions(r.Repo, string(part.Processor.Arch)))
		return cerr
	}); err != nil {
		return nil, err
	}
	report.Spec = conc.Spec
	report.SpecTrace = conc.Steps

	// 3. Build (Principles 2-3). The builder returns one provenance
	// record per DAG node, root last; the root's prefix holds the
	// binary the job launches.
	// Retries happen per DAG node inside the builder (where a failed
	// attempt cannot poison the cache), not at stage level where they
	// would multiply with the node-level policy.
	var records []*buildsys.Record
	if err := stage("build", false, func(sctx context.Context) error {
		builder := buildsys.NewBuilder(r.InstallTree, r.Repo)
		builder.RebuildEveryRun = r.RebuildEveryRun
		builder.Retry = r.Retry
		var berr error
		records, berr = builder.InstallContext(sctx, conc.Spec)
		return berr
	}); err != nil {
		return nil, err
	}
	report.Builds = records
	report.BuildTime = buildsys.TotalBuildTime(records)
	rootBuild := records[len(records)-1]
	exePath := filepath.Join(rootBuild.Prefix, "bin", conc.Spec.Name)

	// 4. Assemble the job.
	layout := b.DefaultLayout()
	if opts.NumTasks > 0 {
		layout.NumTasks = opts.NumTasks
	}
	if opts.TasksPerNode > 0 {
		layout.TasksPerNode = opts.TasksPerNode
	}
	if opts.CPUsPerTask > 0 {
		layout.CPUsPerTask = opts.CPUsPerTask
	}
	if layout.CPUsPerTask <= 0 {
		layout.CPUsPerTask = 1
	}
	if layout.NumTasks <= 0 {
		// ReFrame-style: benchmarks may ask for "the whole node" without
		// hardcoding a core count, which would make them unportable
		// (paper §2.3). Resolve against the partition's processor.
		layout.NumTasks = part.Processor.TotalCores() / layout.CPUsPerTask
		if layout.NumTasks < 1 {
			layout.NumTasks = 1
		}
		if layout.TasksPerNode <= 0 {
			layout.TasksPerNode = layout.NumTasks
		}
	}
	launch, err := launcher.For(part.Launcher)
	if err != nil {
		return nil, err
	}
	account := cfg.Account
	if opts.Account != "" {
		account = opts.Account
	}
	job := &scheduler.Job{
		Name:         b.Name(),
		Account:      account,
		QOS:          cfg.QOS,
		NumTasks:     layout.NumTasks,
		TasksPerNode: layout.TasksPerNode,
		CPUsPerTask:  layout.CPUsPerTask,
		Env:          cfg.EnvVars,
		Commands:     []string{launch.Command(layout, exePath, b.Args())},
	}

	// 5. Schedule and execute. The span's wall time covers submission
	// through completion; the queue/execute split below comes from the
	// scheduler's own job accounting (real seconds on the local
	// scheduler, simulated seconds on the batch simulators).
	var info *scheduler.Info
	if err := stage("schedule", true, func(sctx context.Context) error {
		sched, serr := r.schedulerFor(sys, part, b, conc.Spec, layout)
		if serr != nil {
			return serr
		}
		report.JobScript = sched.Script(job)
		id, serr := sched.Submit(job)
		if serr != nil {
			return serr
		}
		info, serr = sched.Wait(id)
		if serr != nil {
			return serr
		}
		if span := telemetry.FromContext(sctx); span != nil {
			span.SetAttr("job_id", fmt.Sprint(info.ID))
			span.SetAttr("state", info.State.String())
		}
		slog.Default().DebugContext(sctx, "job finished",
			"job_id", info.ID, "state", info.State.String(),
			"queue_s", info.QueueWait(), "runtime_s", info.Runtime())
		return nil
	}); err != nil {
		return nil, err
	}
	report.Job = info
	if q := info.QueueWait(); q >= 0 {
		stageSeconds["queue"] = q
		metricStageSeconds.With("queue").Observe(q)
	}
	if rt := info.Runtime(); rt >= 0 {
		stageSeconds["execute"] = rt
		metricStageSeconds.With("execute").Observe(rt)
	}

	// 6. Sanity and FOM extraction (Principle 6), then the perflog.
	entry := &perflog.Entry{
		Time:      now(),
		Benchmark: b.Name(),
		System:    sys.Name,
		Partition: part.Name,
		Environ:   conc.Spec.Compiler.Name,
		Spec:      conc.Spec.RootString(),
		JobID:     info.ID,
		Result:    "fail",
		FOMs:      map[string]fom.Value{},
		Extra: map[string]string{
			"num_tasks":          fmt.Sprint(layout.NumTasks),
			"num_tasks_per_node": fmt.Sprint(layout.TasksPerNode),
			"num_cpus_per_task":  fmt.Sprint(layout.CPUsPerTask),
			"job_runtime_s":      fmt.Sprintf("%.6f", info.Runtime()),
			// Build provenance (Principle 4): the hash keys the install
			// prefix whose manifest records the full command script.
			"build_hash":        rootBuild.Hash,
			"build_state":       rootBuild.State(),
			"builds":            buildsys.Summary(records),
			"simulated_build_s": fmt.Sprintf("%.3f", report.BuildTime.Seconds()),
			// System-state capture the paper lists as planned work:
			// an energy estimate for the allocation over the run.
			"est_energy_j": fmt.Sprintf("%.1f",
				part.Processor.EnergyEstimateJ(info.Runtime())*float64(len(info.Nodes))),
		},
	}
	report.Entry = entry
	if err := stage("extract", true, func(context.Context) error {
		if info.State != scheduler.Completed {
			entry.Extra["error"] = fmt.Sprintf("job state %s: %s", info.State, info.Stderr)
			return nil
		}
		if serr := b.Sanity().Check(info.Stdout); serr != nil {
			entry.Extra["error"] = serr.Error()
			return nil
		}
		foms, ferr := fom.Extract(info.Stdout, b.PerfPatterns())
		if ferr != nil {
			entry.Extra["error"] = ferr.Error()
			return nil
		}
		entry.FOMs = foms
		entry.Result = "pass"
		return nil
	}); err != nil {
		return nil, err
	}
	report.FOMs = entry.FOMs

	// Stage timings become FOM-adjacent queryable data (the harness is
	// part of what determines a result). The append stage's own
	// duration cannot land in the entry it writes; it is span-only.
	for name, d := range stageSeconds {
		entry.Extra["stage_"+name+"_s"] = fmt.Sprintf("%.6f", d)
	}

	if r.PerflogRoot != "" {
		if err := stage("append", false, func(context.Context) error {
			return perflog.Append(r.PerflogRoot, sys.Name, b.Name(), entry)
		}); err != nil {
			return report, err
		}
	}
	return report, nil
}

// schedulerFor builds the scheduler for a partition, wiring the
// benchmark's Execute as the job payload.
func (r *Runner) schedulerFor(sys *platform.System, part *platform.Partition, b Benchmark, concrete *spec.Spec, layout launcher.Layout) (scheduler.Scheduler, error) {
	exec := func(job *scheduler.Job, nodes []string) scheduler.Result {
		// The per-system software factor captures MPI-stack and
		// toolchain quirks that bite multi-node runs (paper §3.3);
		// single-node jobs see the architecture's own efficiency.
		factor := 1.0
		if len(nodes) > 1 {
			factor = machine.SystemFactor(sys.Name)
		}
		ctx := &RunContext{
			System:       sys,
			Partition:    part,
			Spec:         concrete,
			Layout:       layout,
			Nodes:        nodes,
			SystemFactor: factor,
			Local:        part.Scheduler == "local",
		}
		stdout, elapsed, err := b.Execute(ctx)
		if err != nil {
			return scheduler.Result{Stderr: err.Error(), ExitCode: 1, Duration: elapsed}
		}
		return scheduler.Result{Stdout: stdout, Duration: elapsed}
	}
	switch part.Scheduler {
	case "local":
		return scheduler.NewLocal(exec)
	case "slurm", "pbs":
		sim, err := scheduler.NewSim(part.Scheduler, part.Nodes, part.Processor.TotalCores(), exec)
		if err != nil {
			return nil, err
		}
		sim.Backfill = r.Backfill
		return sim, nil
	default:
		return nil, fmt.Errorf("core: partition %s uses unknown scheduler %q", part.Name, part.Scheduler)
	}
}

// RunMany runs the benchmark across several systems, returning one
// report per target that completed the pipeline — the cross-system
// survey loop the framework makes cheap (the paper's §3.3 "single
// workflow" point).
//
// A failing target does not abort the survey: the remaining systems
// still run (and still append their perflog entries), and the per-target
// errors are collected into one aggregate error (errors.Join), each
// wrapped with its benchmark and system. Reports are returned for the
// successful targets, in target order; callers that need all targets to
// succeed must check the returned error, not the report count alone.
func (r *Runner) RunMany(b Benchmark, targets []string, base Options) ([]*Report, error) {
	return r.RunManyContext(context.Background(), b, targets, base)
}

// RunManyContext is RunMany under a caller-supplied context (tracer,
// cancellation).
func (r *Runner) RunManyContext(ctx context.Context, b Benchmark, targets []string, base Options) ([]*Report, error) {
	var out []*Report
	var errs []error
	for _, target := range targets {
		opts := base
		opts.System = target
		rep, err := r.RunContext(ctx, b, opts)
		if err != nil {
			name := "benchmark"
			if b != nil {
				name = b.Name()
			}
			errs = append(errs, fmt.Errorf("core: %s on %s: %w", name, target, err))
			continue
		}
		out = append(out, rep)
	}
	return out, errors.Join(errs...)
}
