package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/buildsys"
	"repro/internal/concretize"
	"repro/internal/env"
	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/machine"
	"repro/internal/perflog"
	"repro/internal/platform"
	"repro/internal/retry"
	"repro/internal/scheduler"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Pipeline metrics, registered in the default registry so every binary
// running the pipeline (benchctl, benchd, examples) exposes them.
var (
	metricStageSeconds = telemetry.DefaultRegistry.Histogram(
		"runner_stage_seconds",
		"Wall-clock duration of each pipeline stage, by stage name.",
		nil, "stage")
	metricRunsTotal = telemetry.DefaultRegistry.Counter(
		"runner_runs_total",
		"Pipeline runs by outcome (pass, fail, error).",
		"result")
)

// Run executes the full pipeline for one benchmark on one system. It is
// RunContext with a background context.
func (r *Runner) Run(b Benchmark, opts Options) (*Report, error) {
	return r.RunContext(context.Background(), b, opts)
}

// RunContext executes the full pipeline for one benchmark on one
// system, tracing every stage: the run produces a span tree (resolve →
// concretize → build → schedule → extract → append) published to the
// context's tracer, per-stage wall-clock durations in the
// runner_stage_seconds histogram, and stage_*_s extras in the perflog
// entry so stage timings are queryable alongside the FOMs.
func (r *Runner) RunContext(ctx context.Context, b Benchmark, opts Options) (report *Report, err error) {
	if b == nil {
		return nil, fmt.Errorf("core: nil benchmark")
	}
	if opts.System == "" {
		return nil, fmt.Errorf("core: no target system (use Options.System, e.g. \"archer2\" or \"isambard-macs:cascadelake\")")
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	report = &Report{Benchmark: b.Name(), EnvBefore: env.CaptureEnvironment()}

	ctx, root := telemetry.Start(ctx, "run",
		telemetry.String("benchmark", b.Name()),
		telemetry.String("system", opts.System))
	stageSeconds := map[string]float64{}
	defer func() {
		switch {
		case err != nil:
			metricRunsTotal.With("error").Inc()
		case report.Pass():
			metricRunsTotal.With("pass").Inc()
		default:
			metricRunsTotal.With("fail").Inc()
		}
		root.End(err)
	}()
	// stage wraps one pipeline stage in a child span, applies the
	// runner's retry policy and per-attempt timeout, and records the
	// stage's total wall-clock duration (all attempts) under the given
	// name. Attempt 1 runs directly under the stage span so traces of
	// clean runs are unchanged; each retry gets a child span tagged with
	// its attempt number. canRetry=false pins the stage to one attempt
	// regardless of policy — used for append, which is not idempotent.
	stage := func(name string, canRetry bool, f func(context.Context) error) error {
		sctx, span := telemetry.Start(ctx, name)
		policy := r.Retry
		if !canRetry {
			policy = retry.Policy{}
		}
		serr := policy.Do(sctx, "runner."+name, func(actx context.Context, attempt int) error {
			var aspan *telemetry.Span
			if attempt > 1 {
				actx, aspan = telemetry.Start(actx, name+".retry",
					telemetry.Int("attempt", attempt))
			}
			if r.StageTimeout > 0 {
				var cancel context.CancelFunc
				actx, cancel = context.WithTimeout(actx, r.StageTimeout)
				defer cancel()
			}
			aerr := f(actx)
			// A deadline we imposed (not one inherited from the caller)
			// is a transient condition: the next attempt gets a fresh
			// budget.
			if aerr != nil && errors.Is(aerr, context.DeadlineExceeded) && sctx.Err() == nil {
				aerr = retry.Mark(fmt.Errorf("core: stage %s timed out after %s: %w",
					name, r.StageTimeout, aerr))
			}
			if aspan != nil {
				aspan.End(aerr)
			}
			return aerr
		})
		span.End(serr)
		d := span.Duration().Seconds()
		// Accumulate, not overwrite: the schedule and extract stages run
		// once per repetition and their extras report the run's total.
		stageSeconds[name] += d
		metricStageSeconds.With(name).Observe(d)
		return serr
	}

	// Effective repetition protocol: per-run options override the
	// runner's defaults; the zero protocol is one execution, exactly the
	// pre-repetition pipeline.
	reps := opts.Repetitions
	if reps <= 0 {
		reps = r.Repetitions
	}
	if reps <= 0 {
		reps = 1
	}
	warmup := opts.Warmup
	if warmup <= 0 {
		warmup = r.WarmupDiscard
	}
	if warmup < 0 {
		warmup = 0
	}
	if err := stats.ValidateProtocol(reps, warmup); err != nil {
		return nil, err
	}
	total := warmup + reps
	report.Repetitions = reps
	report.Warmup = warmup

	// 1. Resolve the platform.
	var sys *platform.System
	var part *platform.Partition
	if err := stage("resolve", true, func(context.Context) error {
		var rerr error
		sys, part, rerr = r.Estate.Resolve(opts.System)
		return rerr
	}); err != nil {
		return nil, err
	}
	report.System = sys.Name
	report.Partition = part.Name

	// 2. Concretize the build spec against the system environment
	// (Principle 4: the build is fully determined by spec + system
	// config, both of which are recorded).
	specText := b.BuildSpec()
	if opts.Spec != "" {
		specText = opts.Spec
	}
	cfg := r.Envs.ForSystem(sys.Name)
	var conc *concretize.Result
	if err := stage("concretize", true, func(context.Context) error {
		abstract, perr := spec.Parse(specText)
		if perr != nil {
			return perr
		}
		var cerr error
		conc, cerr = concretize.Concretize(abstract, cfg.ConcretizeOptions(r.Repo, string(part.Processor.Arch)))
		return cerr
	}); err != nil {
		return nil, err
	}
	report.Spec = conc.Spec
	report.SpecTrace = conc.Steps

	// 3. Build (Principles 2-3). The builder returns one provenance
	// record per DAG node, root last; the root's prefix holds the
	// binary the job launches.
	// Retries happen per DAG node inside the builder (where a failed
	// attempt cannot poison the cache), not at stage level where they
	// would multiply with the node-level policy.
	var records []*buildsys.Record
	if err := stage("build", false, func(sctx context.Context) error {
		builder := buildsys.NewBuilder(r.InstallTree, r.Repo)
		builder.RebuildEveryRun = r.RebuildEveryRun
		builder.Retry = r.Retry
		var berr error
		records, berr = builder.InstallContext(sctx, conc.Spec)
		return berr
	}); err != nil {
		return nil, err
	}
	report.Builds = records
	report.BuildTime = buildsys.TotalBuildTime(records)
	rootBuild := records[len(records)-1]
	exePath := filepath.Join(rootBuild.Prefix, "bin", conc.Spec.Name)

	// 4. Assemble the job.
	layout := b.DefaultLayout()
	if opts.NumTasks > 0 {
		layout.NumTasks = opts.NumTasks
	}
	if opts.TasksPerNode > 0 {
		layout.TasksPerNode = opts.TasksPerNode
	}
	if opts.CPUsPerTask > 0 {
		layout.CPUsPerTask = opts.CPUsPerTask
	}
	if layout.CPUsPerTask <= 0 {
		layout.CPUsPerTask = 1
	}
	if layout.NumTasks <= 0 {
		// ReFrame-style: benchmarks may ask for "the whole node" without
		// hardcoding a core count, which would make them unportable
		// (paper §2.3). Resolve against the partition's processor.
		layout.NumTasks = part.Processor.TotalCores() / layout.CPUsPerTask
		if layout.NumTasks < 1 {
			layout.NumTasks = 1
		}
		if layout.TasksPerNode <= 0 {
			layout.TasksPerNode = layout.NumTasks
		}
	}
	launch, err := launcher.For(part.Launcher)
	if err != nil {
		return nil, err
	}
	account := cfg.Account
	if opts.Account != "" {
		account = opts.Account
	}
	job := &scheduler.Job{
		Name:         b.Name(),
		Account:      account,
		QOS:          cfg.QOS,
		NumTasks:     layout.NumTasks,
		TasksPerNode: layout.TasksPerNode,
		CPUsPerTask:  layout.CPUsPerTask,
		Env:          cfg.EnvVars,
		Commands:     []string{launch.Command(layout, exePath, b.Args())},
	}

	// 5. Schedule and execute, once per repetition (warm-ups included).
	// The span's wall time covers submission through completion; the
	// queue/execute split below comes from the scheduler's own job
	// accounting (real seconds on the local scheduler, simulated seconds
	// on the batch simulators). Each repetition is a full
	// schedule+extract cycle; a failure in repetition k is retried at
	// stage level (re-running only repetition k) and, if retries
	// exhaust, fails the whole run before anything is appended — a
	// partial repetition set is never persisted.
	var info *scheduler.Info
	repFOMs := make([]map[string]fom.Value, 0, total)
	var runErrMsg string
	for k := 0; k < total && runErrMsg == ""; k++ {
		rep := k
		if err := stage("schedule", true, func(sctx context.Context) error {
			if total > 1 {
				if ferr := faultinject.FireContext(sctx, "core.repetition"); ferr != nil {
					return fmt.Errorf("core: repetition %d/%d: %w", rep+1, total, ferr)
				}
			}
			sched, serr := r.schedulerFor(sys, part, b, conc.Spec, layout, rep)
			if serr != nil {
				return serr
			}
			report.JobScript = sched.Script(job)
			id, serr := sched.Submit(job)
			if serr != nil {
				return serr
			}
			info, serr = sched.Wait(id)
			if serr != nil {
				return serr
			}
			if span := telemetry.FromContext(sctx); span != nil {
				span.SetAttr("job_id", fmt.Sprint(info.ID))
				span.SetAttr("state", info.State.String())
				if total > 1 {
					span.SetAttr("repetition", fmt.Sprintf("%d/%d", rep+1, total))
				}
			}
			slog.Default().DebugContext(sctx, "job finished",
				"job_id", info.ID, "state", info.State.String(),
				"queue_s", info.QueueWait(), "runtime_s", info.Runtime())
			return nil
		}); err != nil {
			return nil, err
		}
		report.Job = info
		if q := info.QueueWait(); q >= 0 {
			stageSeconds["queue"] += q
			metricStageSeconds.With("queue").Observe(q)
		}
		if rt := info.Runtime(); rt >= 0 {
			stageSeconds["execute"] += rt
			metricStageSeconds.With("execute").Observe(rt)
		}

		// 6. Sanity and FOM extraction (Principle 6) for this repetition.
		// Any repetition failing sanity fails the run: a mean over a set
		// that silently dropped members would misreport n.
		if err := stage("extract", true, func(context.Context) error {
			if info.State != scheduler.Completed {
				runErrMsg = fmt.Sprintf("job state %s: %s", info.State, info.Stderr)
				return nil
			}
			if serr := b.Sanity().Check(info.Stdout); serr != nil {
				runErrMsg = serr.Error()
				return nil
			}
			foms, ferr := fom.Extract(info.Stdout, b.PerfPatterns())
			if ferr != nil {
				runErrMsg = ferr.Error()
				return nil
			}
			repFOMs = append(repFOMs, foms)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// 7. Assemble the perflog entry from the repetition results. Job
	// accounting fields come from the final repetition's job, matching
	// the single-execution entry shape exactly.
	entry := &perflog.Entry{
		Time:      now(),
		Benchmark: b.Name(),
		System:    sys.Name,
		Partition: part.Name,
		Environ:   conc.Spec.Compiler.Name,
		Spec:      conc.Spec.RootString(),
		JobID:     info.ID,
		Result:    "fail",
		FOMs:      map[string]fom.Value{},
		Extra: map[string]string{
			"num_tasks":          fmt.Sprint(layout.NumTasks),
			"num_tasks_per_node": fmt.Sprint(layout.TasksPerNode),
			"num_cpus_per_task":  fmt.Sprint(layout.CPUsPerTask),
			"job_runtime_s":      fmt.Sprintf("%.6f", info.Runtime()),
			// Build provenance (Principle 4): the hash keys the install
			// prefix whose manifest records the full command script.
			"build_hash":        rootBuild.Hash,
			"build_state":       rootBuild.State(),
			"builds":            buildsys.Summary(records),
			"simulated_build_s": fmt.Sprintf("%.3f", report.BuildTime.Seconds()),
			// System-state capture the paper lists as planned work:
			// an energy estimate for the allocation over the run.
			"est_energy_j": fmt.Sprintf("%.1f",
				part.Processor.EnergyEstimateJ(info.Runtime())*float64(len(info.Nodes))),
		},
	}
	report.Entry = entry
	if total > 1 {
		entry.Extra["repetitions"] = fmt.Sprint(reps)
		entry.Extra["warmup_discarded"] = fmt.Sprint(warmup)
	}
	switch {
	case runErrMsg != "":
		entry.Extra["error"] = runErrMsg
	default:
		measured := repFOMs[warmup:]
		foms, series, aerr := aggregateRepetitions(measured, r.statSeed(sys.Name, b.Name(), conc.Spec))
		if aerr != nil {
			entry.Extra["error"] = aerr.Error()
			break
		}
		entry.FOMs = foms
		entry.Result = "pass"
		if len(measured) > 1 {
			report.RepSeries = series
			for name, vals := range series {
				s := stats.Summarize(vals, 0, 0, r.statSeed(sys.Name, b.Name(), conc.Spec))
				entry.SetRepStats(name, perflog.RepStats{
					N: s.N, Mean: s.Mean, Stddev: s.Stddev, RSD: s.RSD,
					CILo: s.CILo, CIHi: s.CIHi,
				})
			}
		}
	}
	report.FOMs = entry.FOMs

	// Stage timings become FOM-adjacent queryable data (the harness is
	// part of what determines a result). The append stage's own
	// duration cannot land in the entry it writes; it is span-only.
	for name, d := range stageSeconds {
		entry.Extra["stage_"+name+"_s"] = fmt.Sprintf("%.6f", d)
	}

	if log := r.appender(); log != nil {
		if err := stage("append", false, func(context.Context) error {
			return log.Append(sys.Name, b.Name(), entry)
		}); err != nil {
			return report, err
		}
	}
	return report, nil
}

// appender resolves the perflog sink: the shared writer when one is
// wired in (benchd's group-commit path), else one-shot appends under
// PerflogRoot (the CLI), else nil — logging disabled.
func (r *Runner) appender() perflog.Appender {
	if r.Log != nil {
		return r.Log
	}
	if r.PerflogRoot != "" {
		return perflog.TreeAppender(r.PerflogRoot)
	}
	return nil
}

// aggregateRepetitions reduces the measured repetitions' FOM maps to one
// FOM map (the mean when several repetitions measured) plus the per-FOM
// value series. Every measured repetition must report the same FOM set —
// a FOM appearing in some repetitions but not others means the runs were
// not comparable, which fails the run rather than misreporting n.
func aggregateRepetitions(measured []map[string]fom.Value, seed uint64) (map[string]fom.Value, map[string][]float64, error) {
	if len(measured) == 0 {
		return nil, nil, fmt.Errorf("core: no measured repetitions")
	}
	if len(measured) == 1 {
		return measured[0], nil, nil
	}
	first := measured[0]
	names := make([]string, 0, len(first))
	for name := range first {
		names = append(names, name)
	}
	sort.Strings(names)
	foms := make(map[string]fom.Value, len(first))
	series := make(map[string][]float64, len(first))
	for _, name := range names {
		vals := make([]float64, 0, len(measured))
		for i, m := range measured {
			v, present := m[name]
			if !present {
				return nil, nil, fmt.Errorf("core: fom %s missing from repetition %d", name, i+1)
			}
			vals = append(vals, v.Value)
		}
		s := stats.Summarize(vals, 0, 0, seed)
		foms[name] = fom.Value{Name: first[name].Name, Value: s.Mean, Unit: first[name].Unit}
		series[name] = vals
	}
	for i, m := range measured {
		if len(m) != len(first) {
			return nil, nil, fmt.Errorf("core: repetition %d reported %d foms, first reported %d", i+1, len(m), len(first))
		}
	}
	return foms, series, nil
}

// statSeed derives the deterministic bootstrap seed for a run: the same
// benchmark, system, and concrete spec always get the same intervals,
// keeping perflog lines reproducible artifacts.
func (r *Runner) statSeed(system, benchmark string, concrete *spec.Spec) uint64 {
	h := fnv.New64a()
	h.Write([]byte(system))
	h.Write([]byte{'|'})
	h.Write([]byte(benchmark))
	h.Write([]byte{'|'})
	if concrete != nil {
		h.Write([]byte(concrete.RootString()))
	}
	return h.Sum64()
}

// repJitter derives the deterministic per-repetition perturbation on the
// system factor, standing in for the run-to-run noise a real machine
// shows between identical submissions (same spirit as machine's
// per-result jitter). Repetition 0 is unperturbed so single-execution
// runs — and the first repetition — reproduce pre-repetition outputs
// bit-for-bit.
func repJitter(system, benchmark string, rep int) float64 {
	if rep == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|rep%d", system, benchmark, rep)
	// FNV's multiplier is only ~2^40, so inputs differing in the final
	// byte (adjacent rep numbers) barely move the top bits; finalize
	// with a splitmix64-style mix so consecutive reps get independent
	// factors instead of near-identical ones.
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return 0.99 + 0.02*u // ±1%
}

// schedulerFor builds the scheduler for a partition, wiring the
// benchmark's Execute as the job payload for one repetition.
func (r *Runner) schedulerFor(sys *platform.System, part *platform.Partition, b Benchmark, concrete *spec.Spec, layout launcher.Layout, rep int) (scheduler.Scheduler, error) {
	exec := func(job *scheduler.Job, nodes []string) scheduler.Result {
		// The per-system software factor captures MPI-stack and
		// toolchain quirks that bite multi-node runs (paper §3.3);
		// single-node jobs see the architecture's own efficiency.
		factor := 1.0
		if len(nodes) > 1 {
			factor = machine.SystemFactor(sys.Name)
		}
		factor *= repJitter(sys.Name, b.Name(), rep)
		ctx := &RunContext{
			System:       sys,
			Partition:    part,
			Spec:         concrete,
			Layout:       layout,
			Nodes:        nodes,
			SystemFactor: factor,
			Repetition:   rep,
			Local:        part.Scheduler == "local",
		}
		stdout, elapsed, err := b.Execute(ctx)
		if err != nil {
			return scheduler.Result{Stderr: err.Error(), ExitCode: 1, Duration: elapsed}
		}
		return scheduler.Result{Stdout: stdout, Duration: elapsed}
	}
	switch part.Scheduler {
	case "local":
		return scheduler.NewLocal(exec)
	case "slurm", "pbs":
		sim, err := scheduler.NewSim(part.Scheduler, part.Nodes, part.Processor.TotalCores(), exec)
		if err != nil {
			return nil, err
		}
		sim.Backfill = r.Backfill
		return sim, nil
	default:
		return nil, fmt.Errorf("core: partition %s uses unknown scheduler %q", part.Name, part.Scheduler)
	}
}

// Preflight validates a run request without executing it: the system
// must resolve, the spec must concretize, and every already-installed
// prefix the build cache would consult must match the concretized spec
// (buildsys.Validate). A *buildsys.StaleBinaryError means a binary on
// disk can no longer be tied to the spec that would claim it — the
// stale-binary postmortem the validation protocol exists to prevent.
func (r *Runner) Preflight(b Benchmark, opts Options) error {
	if b == nil {
		return fmt.Errorf("core: nil benchmark")
	}
	if opts.System == "" {
		return fmt.Errorf("core: no target system")
	}
	sys, part, err := r.Estate.Resolve(opts.System)
	if err != nil {
		return err
	}
	specText := b.BuildSpec()
	if opts.Spec != "" {
		specText = opts.Spec
	}
	abstract, err := spec.Parse(specText)
	if err != nil {
		return err
	}
	cfg := r.Envs.ForSystem(sys.Name)
	conc, err := concretize.Concretize(abstract, cfg.ConcretizeOptions(r.Repo, string(part.Processor.Arch)))
	if err != nil {
		return err
	}
	if r.InstallTree == "" {
		return nil
	}
	return buildsys.Validate(r.InstallTree, conc.Spec)
}

// RunMany runs the benchmark across several systems, returning one
// report per target that completed the pipeline — the cross-system
// survey loop the framework makes cheap (the paper's §3.3 "single
// workflow" point).
//
// A failing target does not abort the survey: the remaining systems
// still run (and still append their perflog entries), and the per-target
// errors are collected into one aggregate error (errors.Join), each
// wrapped with its benchmark and system. Reports are returned for the
// successful targets, in target order; callers that need all targets to
// succeed must check the returned error, not the report count alone.
func (r *Runner) RunMany(b Benchmark, targets []string, base Options) ([]*Report, error) {
	return r.RunManyContext(context.Background(), b, targets, base)
}

// RunManyContext is RunMany under a caller-supplied context (tracer,
// cancellation).
func (r *Runner) RunManyContext(ctx context.Context, b Benchmark, targets []string, base Options) ([]*Report, error) {
	var out []*Report
	var errs []error
	for _, target := range targets {
		opts := base
		opts.System = target
		rep, err := r.RunContext(ctx, b, opts)
		if err != nil {
			name := "benchmark"
			if b != nil {
				name = b.Name()
			}
			errs = append(errs, fmt.Errorf("core: %s on %s: %w", name, target, err))
			continue
		}
		out = append(out, rep)
	}
	return out, errors.Join(errs...)
}
