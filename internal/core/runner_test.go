package core

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/perflog"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// echoBenchmark is a minimal benchmark whose payload emits a fixed FOM.
type echoBenchmark struct {
	name    string
	spec    string
	output  string
	execErr error
	elapsed time.Duration
}

func (e *echoBenchmark) Name() string { return e.name }
func (e *echoBenchmark) BuildSpec() string {
	if e.spec != "" {
		return e.spec
	}
	return "stream"
}
func (e *echoBenchmark) DefaultLayout() launcher.Layout {
	return launcher.Layout{NumTasks: 1, TasksPerNode: 1, CPUsPerTask: 1}
}
func (e *echoBenchmark) Args() []string { return []string{"--size", "large"} }
func (e *echoBenchmark) Execute(ctx *RunContext) (string, time.Duration, error) {
	if e.execErr != nil {
		return "", 0, e.execErr
	}
	out := e.output
	if out == "" {
		out = "RESULT OK\nrate: 42.5 GB/s\n"
	}
	d := e.elapsed
	if d == 0 {
		d = 3 * time.Second
	}
	return out, d, nil
}
func (e *echoBenchmark) Sanity() fom.Sanity {
	return fom.Sanity{Require: []*regexp.Regexp{regexp.MustCompile("RESULT OK")}}
}
func (e *echoBenchmark) PerfPatterns() []fom.Pattern {
	return []fom.Pattern{fom.MustPattern("rate", "GB/s", `rate: ([0-9.]+) GB/s`)}
}

func testRunner(t *testing.T) *Runner {
	t.Helper()
	dir := t.TempDir()
	r := New(filepath.Join(dir, "install"), filepath.Join(dir, "perflogs"))
	r.Now = func() time.Time { return time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC) }
	return r
}

func TestPipelineEndToEnd(t *testing.T) {
	r := testRunner(t)
	b := &echoBenchmark{name: "echo"}
	rep, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("run failed: %+v", rep.Entry)
	}
	// The spec concretized against ARCHER2's environment.
	if rep.Spec == nil || !rep.Spec.Concrete {
		t.Fatal("no concrete spec")
	}
	if got := rep.Spec.Compiler.String(); got != "gcc@11.2.0" {
		t.Errorf("compiler = %s, want archer2 default gcc@11.2.0", got)
	}
	if len(rep.SpecTrace) == 0 {
		t.Error("concretizer trace missing (Principle 4)")
	}
	// The build happened and is recorded.
	if len(rep.Builds) == 0 || rep.Builds[len(rep.Builds)-1].Cached {
		t.Error("root build missing or unexpectedly cached")
	}
	// The job script is a SLURM script with the account and QOS from
	// the system config.
	for _, want := range []string{"#SBATCH", "--account=z19", "--qos=standard", "srun"} {
		if !strings.Contains(rep.JobScript, want) {
			t.Errorf("job script missing %q:\n%s", want, rep.JobScript)
		}
	}
	// The FOM was extracted.
	if v, ok := rep.FOMs["rate"]; !ok || v.Value != 42.5 {
		t.Errorf("FOMs = %v", rep.FOMs)
	}
	// The perflog has the entry.
	entries, err := perflog.Read(filepath.Join(r.PerflogRoot, "archer2", "echo.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Pass() {
		t.Fatalf("perflog entries: %+v", entries)
	}
	if entries[0].FOMs["rate"].Value != 42.5 {
		t.Errorf("logged FOM = %+v", entries[0].FOMs["rate"])
	}
}

func TestPipelinePBSSystem(t *testing.T) {
	r := testRunner(t)
	rep, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "isambard-macs:cascadelake"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.JobScript, "#PBS") {
		t.Errorf("expected PBS script:\n%s", rep.JobScript)
	}
	if !strings.Contains(rep.JobScript, "mpirun") {
		t.Errorf("expected mpirun launcher:\n%s", rep.JobScript)
	}
	// Isambard MACS defaults to gcc 9.2.0 (Table 3).
	if got := rep.Spec.Compiler.String(); got != "gcc@9.2.0" {
		t.Errorf("compiler = %s", got)
	}
}

func TestPipelineLocalSystem(t *testing.T) {
	r := testRunner(t)
	rep, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("local run failed: %+v", rep.Entry)
	}
	if rep.Job.Nodes[0] != "localhost" {
		t.Errorf("nodes = %v", rep.Job.Nodes)
	}
}

func TestSpecOverride(t *testing.T) {
	// The -S spack_spec= equivalent.
	r := testRunner(t)
	rep, err := r.Run(&echoBenchmark{name: "echo"}, Options{
		System: "archer2",
		Spec:   "stream%gcc@10.3.0 ~openmp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Spec.Compiler.String(); got != "gcc@10.3.0" {
		t.Errorf("override compiler = %s", got)
	}
	if v := rep.Spec.Variants["openmp"]; v.Bool {
		t.Error("variant override lost")
	}
}

func TestLayoutOverrides(t *testing.T) {
	// The --setvar num_tasks= equivalents.
	r := testRunner(t)
	rep, err := r.Run(&echoBenchmark{name: "echo"}, Options{
		System:       "archer2",
		NumTasks:     8,
		TasksPerNode: 2,
		CPUsPerTask:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entry.Extra["num_tasks"] != "8" || rep.Entry.Extra["num_cpus_per_task"] != "8" {
		t.Errorf("extras = %v", rep.Entry.Extra)
	}
	if len(rep.Job.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(rep.Job.Nodes))
	}
	if !strings.Contains(rep.JobScript, "--ntasks=8") {
		t.Errorf("script:\n%s", rep.JobScript)
	}
}

func TestSanityFailureRecordsFail(t *testing.T) {
	r := testRunner(t)
	b := &echoBenchmark{name: "bad", output: "garbage with no markers"}
	rep, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Error("sanity failure must fail the run")
	}
	if rep.Entry.Extra["error"] == "" {
		t.Error("failure reason missing from perflog entry")
	}
}

func TestExecutionErrorRecordsFail(t *testing.T) {
	r := testRunner(t)
	b := &echoBenchmark{name: "crash", execErr: errBoom{}}
	rep, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Error("crashed payload must fail")
	}
	if !strings.Contains(rep.Entry.Extra["error"], "FAILED") {
		t.Errorf("error = %q", rep.Entry.Extra["error"])
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestUnknownSystemErrors(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "summit"}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := r.Run(&echoBenchmark{name: "echo"}, Options{}); err == nil {
		t.Error("missing system accepted")
	}
	if _, err := r.Run(nil, Options{System: "archer2"}); err == nil {
		t.Error("nil benchmark accepted")
	}
}

func TestBadSpecErrors(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Run(&echoBenchmark{name: "echo", spec: "@bad"}, Options{System: "archer2"}); err == nil {
		t.Error("unparseable spec accepted")
	}
	if _, err := r.Run(&echoBenchmark{name: "echo", spec: "no-such-package"}, Options{System: "archer2"}); err == nil {
		t.Error("unknown package accepted")
	}
}

func TestRebuildEveryRunDefault(t *testing.T) {
	// Principle 3: two consecutive runs both rebuild the root.
	r := testRunner(t)
	b := &echoBenchmark{name: "echo"}
	rep1, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	root1 := rep1.Builds[len(rep1.Builds)-1]
	root2 := rep2.Builds[len(rep2.Builds)-1]
	if root1.Cached || root2.Cached {
		t.Error("RebuildEveryRun must rebuild the benchmark each run")
	}
	// With the principle disabled, the second run reuses the cache.
	r.RebuildEveryRun = false
	rep3, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Builds[len(rep3.Builds)-1].Cached {
		t.Error("cache should be hit with RebuildEveryRun off")
	}
}

func TestRunManyAcrossSystems(t *testing.T) {
	r := testRunner(t)
	b := &echoBenchmark{name: "echo"}
	reports, err := r.RunMany(b, []string{"archer2", "cosma8", "csd3"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	seen := map[string]bool{}
	for _, rep := range reports {
		if !rep.Pass() {
			t.Errorf("%s failed", rep.System)
		}
		seen[rep.System] = true
	}
	if !seen["archer2"] || !seen["cosma8"] || !seen["csd3"] {
		t.Errorf("systems = %v", seen)
	}
	// All three perflogs exist for cross-system assimilation.
	entries, err := perflog.ReadTree(r.PerflogRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("assimilated %d entries", len(entries))
	}
}

func TestEnergyEstimateRecorded(t *testing.T) {
	// The paper's planned "energy consumption" capture: every perflog
	// entry carries an energy estimate for its allocation.
	r := testRunner(t)
	rep, err := r.Run(&echoBenchmark{name: "echo", elapsed: 10 * time.Second}, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	energy := rep.Entry.Extra["est_energy_j"]
	if energy == "" {
		t.Fatal("est_energy_j missing from perflog entry")
	}
	var joules float64
	if _, err := fmt.Sscanf(energy, "%g", &joules); err != nil {
		t.Fatal(err)
	}
	// 10 s on one 450 W Rome node.
	if joules < 4000 || joules > 5000 {
		t.Errorf("energy = %g J, want ~4500", joules)
	}
}

func TestStageDurationExtras(t *testing.T) {
	r := testRunner(t)
	// A 1ms payload keeps the local scheduler's job clock comparable to
	// wall time (the default echoBenchmark claims a simulated 3s).
	b := &echoBenchmark{name: "echo", elapsed: time.Millisecond}
	t0 := time.Now()
	rep, err := r.Run(b, Options{System: "local"})
	wall := time.Since(t0).Seconds()
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"resolve", "concretize", "build", "schedule", "queue", "execute", "extract"}
	var sum float64
	for _, s := range stages {
		key := "stage_" + s + "_s"
		text, ok := rep.Entry.Extra[key]
		if !ok {
			t.Fatalf("entry missing %s; extras = %v", key, rep.Entry.Extra)
		}
		v, perr := strconv.ParseFloat(text, 64)
		if perr != nil || v < 0 {
			t.Fatalf("%s = %q, want non-negative float", key, text)
		}
		sum += v
	}
	// On the local scheduler every stage is wall-clock (queue is 0 and
	// execute is real elapsed time), so the stage durations must sum to
	// approximately the total pipeline time — never more than the
	// whole Run took (schedule overlaps queue+execute, hence the 2x
	// allowance on the upper bound), and at least the execute time.
	jobRuntime, _ := strconv.ParseFloat(rep.Entry.Extra["job_runtime_s"], 64)
	execS, _ := strconv.ParseFloat(rep.Entry.Extra["stage_execute_s"], 64)
	if math.Abs(execS-jobRuntime) > 1e-9 {
		t.Errorf("stage_execute_s = %g, want job_runtime_s = %g", execS, jobRuntime)
	}
	if sum > 2*wall+0.05 {
		t.Errorf("stage sum %.6fs implausibly exceeds pipeline wall time %.6fs", sum, wall)
	}
	if sum < execS {
		t.Errorf("stage sum %.6f < execute stage %.6f", sum, execS)
	}
	// A simulated-scheduler run records the scheduler's job clock for
	// queue/execute (not wall time) — and the extras survive the
	// perflog round trip.
	rep2, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	exec2, _ := strconv.ParseFloat(rep2.Entry.Extra["stage_execute_s"], 64)
	rt2, _ := strconv.ParseFloat(rep2.Entry.Extra["job_runtime_s"], 64)
	if math.Abs(exec2-rt2) > 1e-9 {
		t.Errorf("simulated stage_execute_s = %g, want %g", exec2, rt2)
	}
	entries, err := perflog.Read(filepath.Join(r.PerflogRoot, "archer2", "echo.log"))
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[len(entries)-1].Extra["stage_build_s"]; got == "" {
		t.Error("stage_build_s missing from the perflog round trip")
	}
}

func TestRunContextPublishesTrace(t *testing.T) {
	r := testRunner(t)
	tr := telemetry.NewTracer(4)
	ctx := telemetry.WithTraceID(telemetry.WithTracer(context.Background(), tr), "run-test-1")
	if _, err := r.RunContext(ctx, &echoBenchmark{name: "echo"}, Options{System: "archer2"}); err != nil {
		t.Fatal(err)
	}
	trace, ok := tr.Get("run-test-1")
	if !ok {
		t.Fatalf("trace not published; have %d traces", tr.Len())
	}
	v := trace.Root.View()
	if v.Name != "run" || v.Attrs["benchmark"] != "echo" || v.Attrs["system"] != "archer2" {
		t.Errorf("root = %+v", v)
	}
	byName := map[string]telemetry.SpanView{}
	for _, c := range v.Children {
		byName[c.Name] = c
	}
	for _, want := range []string{"resolve", "concretize", "build", "schedule", "extract", "append"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing stage span %q", want)
		}
	}
	if len(byName["build"].Children) == 0 {
		t.Error("build span has no per-DAG-node children")
	}
	if byName["schedule"].Attrs["state"] != "COMPLETED" {
		t.Errorf("schedule span attrs = %v", byName["schedule"].Attrs)
	}
}

func TestRunManyCollectsPerTargetErrors(t *testing.T) {
	r := testRunner(t)
	b := &echoBenchmark{name: "echo"}
	reports, err := r.RunMany(b, []string{"archer2", "no-such-system", "csd3"}, Options{})
	if err == nil {
		t.Fatal("want an aggregate error for the unknown system")
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (survey must continue past the failure)", len(reports))
	}
	if reports[0].System != "archer2" || reports[1].System != "csd3" {
		t.Errorf("report systems = %s, %s", reports[0].System, reports[1].System)
	}
	if !strings.Contains(err.Error(), "no-such-system") {
		t.Errorf("aggregate error does not name the failing target: %v", err)
	}
	// Both healthy systems still produced perflog entries.
	for _, sys := range []string{"archer2", "csd3"} {
		if _, serr := perflog.Read(filepath.Join(r.PerflogRoot, sys, "echo.log")); serr != nil {
			t.Errorf("perflog for %s: %v", sys, serr)
		}
	}
}

// loadFaults arms the default fault registry for one test.
func loadFaults(t *testing.T, seed int64, schedule string) {
	t.Helper()
	rules, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
}

func fastRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
}

func TestScheduleStageRetriesTransientSubmitFault(t *testing.T) {
	// Two injected submit rejections: the stage retry policy absorbs
	// both, the run passes, and the retries are visible in /metrics.
	loadFaults(t, 1, "scheduler.submit:error:times=2")
	r := testRunner(t)
	r.Retry = fastRetry()
	before, _ := telemetry.DefaultRegistry.Value("retry_retries_total", "runner.schedule")
	rep, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "archer2"})
	if err != nil {
		t.Fatalf("run with transient submit faults: %v", err)
	}
	if !rep.Pass() {
		t.Error("run did not pass after retries")
	}
	after, _ := telemetry.DefaultRegistry.Value("retry_retries_total", "runner.schedule")
	if after-before < 2 {
		t.Errorf("retry_retries_total{runner.schedule} grew by %v, want >= 2", after-before)
	}
}

func TestRetryExhaustionSurfacesTypedFault(t *testing.T) {
	// Every submit rejected: retries exhaust and the typed fault
	// surfaces through the exhaustion wrapper.
	loadFaults(t, 1, "scheduler.submit:error")
	r := testRunner(t)
	r.Retry = fastRetry()
	before, _ := telemetry.DefaultRegistry.Value("retry_exhausted_total", "runner.schedule")
	_, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "archer2"})
	if err == nil {
		t.Fatal("run succeeded with every submit rejected")
	}
	if !faultinject.Is(err) {
		t.Errorf("error lost its fault type: %v", err)
	}
	if !strings.Contains(err.Error(), "gave up after") {
		t.Errorf("error does not mention exhaustion: %v", err)
	}
	after, _ := telemetry.DefaultRegistry.Value("retry_exhausted_total", "runner.schedule")
	if after-before < 1 {
		t.Errorf("retry_exhausted_total{runner.schedule} grew by %v, want >= 1", after-before)
	}
}

func TestStageTimeoutInterruptsInjectedHang(t *testing.T) {
	// A 2s injected hang in the build path against a 50ms stage budget:
	// the cooperative deadline interrupts the delay and the run fails
	// fast with a timeout error naming the stage.
	loadFaults(t, 1, "buildsys.install:delay:d=2s")
	r := testRunner(t)
	r.StageTimeout = 50 * time.Millisecond
	start := time.Now()
	_, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "archer2"})
	if err == nil {
		t.Fatal("run succeeded despite injected hang")
	}
	if !strings.Contains(err.Error(), "timed out") || !strings.Contains(err.Error(), "build") {
		t.Errorf("error does not report a build-stage timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("run took %v: the injected hang was not interrupted", elapsed)
	}
}
