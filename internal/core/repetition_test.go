package core

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/buildsys"
	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/perflog"
)

// varyBenchmark emits a FOM that varies with the repetition index, so
// warm-up discard and aggregation are observable; it also records the
// RunContext of every execution.
type varyBenchmark struct {
	mu       sync.Mutex
	contexts []*RunContext
	value    func(rep int) float64
}

func (v *varyBenchmark) Name() string      { return "vary" }
func (v *varyBenchmark) BuildSpec() string { return "stream" }
func (v *varyBenchmark) DefaultLayout() launcher.Layout {
	return launcher.Layout{NumTasks: 1, TasksPerNode: 1, CPUsPerTask: 1}
}
func (v *varyBenchmark) Args() []string { return nil }
func (v *varyBenchmark) Execute(ctx *RunContext) (string, time.Duration, error) {
	v.mu.Lock()
	v.contexts = append(v.contexts, ctx)
	v.mu.Unlock()
	val := 100.0 + 10*float64(ctx.Repetition)
	if v.value != nil {
		val = v.value(ctx.Repetition)
	}
	return fmt.Sprintf("RESULT OK\nrate: %g GB/s\n", val), time.Second, nil
}
func (v *varyBenchmark) Sanity() fom.Sanity {
	return fom.Sanity{Require: []*regexp.Regexp{regexp.MustCompile("RESULT OK")}}
}
func (v *varyBenchmark) PerfPatterns() []fom.Pattern {
	return []fom.Pattern{fom.MustPattern("rate", "GB/s", `rate: ([0-9.]+) GB/s`)}
}

func TestRepetitionRunAggregates(t *testing.T) {
	r := testRunner(t)
	b := &varyBenchmark{}
	rep, err := r.Run(b, Options{System: "archer2", Repetitions: 3, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("run failed: %+v", rep.Entry)
	}
	// 1 warm-up + 3 measured executions, repetition indices 0..3.
	if len(b.contexts) != 4 {
		t.Fatalf("executions = %d, want 4", len(b.contexts))
	}
	for i, ctx := range b.contexts {
		if ctx.Repetition != i {
			t.Errorf("execution %d saw Repetition=%d", i, ctx.Repetition)
		}
	}
	// Warm-up (rep 0 → 100) discarded; measured series is 110, 120, 130.
	wantSeries := []float64{110, 120, 130}
	got := rep.RepSeries["rate"]
	if len(got) != 3 || got[0] != wantSeries[0] || got[1] != wantSeries[1] || got[2] != wantSeries[2] {
		t.Fatalf("RepSeries = %v, want %v", got, wantSeries)
	}
	// The point value is the measured mean.
	if v := rep.FOMs["rate"]; math.Abs(v.Value-120) > 1e-9 || v.Unit != "GB/s" {
		t.Fatalf("FOM = %+v, want mean 120 GB/s", v)
	}
	// Rep extras made it to the entry and the CI brackets the mean.
	s, ok := rep.Entry.RepStats("rate")
	if !ok {
		t.Fatal("entry has no rep stats")
	}
	if s.N != 3 || math.Abs(s.Mean-120) > 1e-9 {
		t.Fatalf("rep stats = %+v", s)
	}
	if s.CILo > s.Mean || s.CIHi < s.Mean || s.Stddev <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if rep.Entry.Extra["repetitions"] != "3" || rep.Entry.Extra["warmup_discarded"] != "1" {
		t.Fatalf("protocol extras: %v", rep.Entry.Extra)
	}
	// Exactly one perflog line, and it round-trips the stats.
	entries, err := perflog.Read(filepath.Join(r.PerflogRoot, "archer2", "vary.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("perflog lines = %d, want 1", len(entries))
	}
	rt, ok := entries[0].RepStats("rate")
	if !ok || rt != s {
		t.Fatalf("perflog stats = %+v ok=%v, want %+v", rt, ok, s)
	}
}

func TestSingleRunHasNoRepExtras(t *testing.T) {
	r := testRunner(t)
	rep, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Entry.Extra["repetitions"]; ok {
		t.Fatal("single run carries a repetitions extra")
	}
	if _, ok := rep.Entry.RepStats("rate"); ok {
		t.Fatal("single run carries rep stats")
	}
	if rep.Repetitions != 1 || rep.Warmup != 0 {
		t.Fatalf("report protocol = %d/%d, want 1/0", rep.Repetitions, rep.Warmup)
	}
}

func TestRunnerDefaultRepetitions(t *testing.T) {
	r := testRunner(t)
	r.Repetitions = 3
	b := &varyBenchmark{}
	rep, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.contexts) != 3 {
		t.Fatalf("executions = %d, want runner default 3", len(b.contexts))
	}
	if s, ok := rep.Entry.RepStats("rate"); !ok || s.N != 3 {
		t.Fatalf("rep stats = %+v ok=%v", s, ok)
	}
}

func TestRepetitionDeterministicStats(t *testing.T) {
	// Two identical repetition runs must produce identical stats — the
	// bootstrap is seeded from (system, benchmark, spec).
	run := func() perflog.RepStats {
		r := testRunner(t)
		rep, err := r.Run(&varyBenchmark{}, Options{System: "archer2", Repetitions: 3})
		if err != nil {
			t.Fatal(err)
		}
		s, ok := rep.Entry.RepStats("rate")
		if !ok {
			t.Fatal("no rep stats")
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("stats not deterministic: %+v vs %+v", a, b)
	}
}

func TestRepetitionFailureFailsWholeRun(t *testing.T) {
	// Repetition 2 (index 1) fails sanity: the whole run must fail with
	// no FOMs and no rep extras — a partial repetition set is never
	// reported.
	r := testRunner(t)
	b := &varyBenchmark{value: func(rep int) float64 {
		if rep == 1 {
			return math.NaN() // "rate: NaN" fails the perf pattern
		}
		return 100
	}}
	rep, err := r.Run(b, Options{System: "archer2", Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("run passed despite a failed repetition")
	}
	if len(rep.FOMs) != 0 {
		t.Fatalf("failed run reported FOMs: %v", rep.FOMs)
	}
	if _, ok := rep.Entry.RepStats("rate"); ok {
		t.Fatal("failed run carries rep stats")
	}
	// Later repetitions do not execute after a failure.
	if len(b.contexts) != 2 {
		t.Fatalf("executions = %d, want 2 (stop after failing rep)", len(b.contexts))
	}
	entries, err := perflog.Read(filepath.Join(r.PerflogRoot, "archer2", "vary.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Pass() {
		t.Fatalf("perflog: %d entries, pass=%v", len(entries), len(entries) > 0 && entries[0].Pass())
	}
}

func TestRepetitionFaultRetriesToCompleteSet(t *testing.T) {
	// A transient fault in the repetition point: the stage retry re-runs
	// only the faulted repetition and the final set is complete — n
	// counts each repetition exactly once.
	loadFaults(t, 1, "core.repetition:error:times=2")
	r := testRunner(t)
	r.Retry = fastRetry()
	b := &varyBenchmark{}
	rep, err := r.Run(b, Options{System: "archer2", Repetitions: 3})
	if err != nil {
		t.Fatalf("run with transient repetition faults: %v", err)
	}
	if !rep.Pass() {
		t.Fatal("run did not pass after retries")
	}
	s, ok := rep.Entry.RepStats("rate")
	if !ok || s.N != 3 {
		t.Fatalf("rep stats after retries = %+v ok=%v, want n=3", s, ok)
	}
	if len(rep.RepSeries["rate"]) != 3 {
		t.Fatalf("series = %v, want 3 values", rep.RepSeries["rate"])
	}
}

func TestRepetitionFaultExhaustionFailsRun(t *testing.T) {
	// Every repetition submission faulted: retries exhaust, the run
	// errors, and nothing is appended — never a partial set.
	loadFaults(t, 1, "core.repetition:error")
	r := testRunner(t)
	r.Retry = fastRetry()
	_, err := r.Run(&varyBenchmark{}, Options{System: "archer2", Repetitions: 3})
	if err == nil {
		t.Fatal("run succeeded with every repetition faulted")
	}
	if !faultinject.Is(err) {
		t.Errorf("error lost its fault type: %v", err)
	}
	if _, rerr := perflog.Read(filepath.Join(r.PerflogRoot, "archer2", "vary.log")); rerr == nil {
		t.Fatal("perflog written for a run that never completed")
	}
}

func TestRepetitionProtocolValidation(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Run(&echoBenchmark{name: "echo"}, Options{System: "archer2", Repetitions: 600, Warmup: 600}); err == nil {
		t.Fatal("oversized protocol accepted")
	}
}

func TestRepJitterPerturbsSystemFactor(t *testing.T) {
	r := testRunner(t)
	b := &varyBenchmark{}
	if _, err := r.Run(b, Options{System: "archer2", Repetitions: 3}); err != nil {
		t.Fatal(err)
	}
	if b.contexts[0].SystemFactor != 1.0 {
		t.Fatalf("repetition 0 factor = %v, want exactly 1 (pre-repetition identity)", b.contexts[0].SystemFactor)
	}
	for i, ctx := range b.contexts[1:] {
		f := ctx.SystemFactor
		if f == 1.0 || f < 0.99 || f > 1.01 {
			t.Fatalf("repetition %d factor = %v, want perturbed within ±1%%", i+1, f)
		}
	}
	if b.contexts[1].SystemFactor == b.contexts[2].SystemFactor {
		t.Fatal("distinct repetitions saw identical jitter")
	}
}

// Adjacent repetitions must draw genuinely independent factors. Raw
// FNV-1a fails this: its multiplier is ~2^40, so hashing strings that
// differ only in the rep digit moved the top bits by ~1e-9 — every
// repetition measured the same value and the "noise" was fictional.
func TestRepJitterSpread(t *testing.T) {
	for _, sys := range []string{"archer2", "csd3", "cosma8"} {
		for rep := 1; rep < 5; rep++ {
			a := repJitter(sys, "babelstream-omp", rep)
			b := repJitter(sys, "babelstream-omp", rep+1)
			if diff := math.Abs(a - b); diff < 1e-4 {
				t.Errorf("%s reps %d/%d: factors %v and %v differ by %g, want well-mixed",
					sys, rep, rep+1, a, b, diff)
			}
		}
	}
}

func TestPreflightDetectsStaleBinary(t *testing.T) {
	r := testRunner(t)
	b := &echoBenchmark{name: "echo"}
	rep, err := r.Run(b, Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	// Clean tree: preflight passes.
	if err := r.Preflight(b, Options{System: "archer2"}); err != nil {
		t.Fatalf("preflight on a clean tree: %v", err)
	}
	// Tamper with the root prefix's manifest hash.
	prefix := rep.Builds[len(rep.Builds)-1].Prefix
	m, err := buildsys.ReadManifest(prefix)
	if err != nil {
		t.Fatal(err)
	}
	m.Hash = "feedfacefeedface"
	if err := buildsys.WriteManifest(prefix, m); err != nil {
		t.Fatal(err)
	}
	err = r.Preflight(b, Options{System: "archer2"})
	var stale *buildsys.StaleBinaryError
	if !errors.As(err, &stale) {
		t.Fatalf("preflight on a tampered tree: got %v, want *StaleBinaryError", err)
	}
	if stale.Prefix != prefix {
		t.Fatalf("stale prefix = %s, want %s", stale.Prefix, prefix)
	}
}

func TestPreflightRejectsBadInputs(t *testing.T) {
	r := testRunner(t)
	if err := r.Preflight(nil, Options{System: "archer2"}); err == nil {
		t.Fatal("nil benchmark accepted")
	}
	if err := r.Preflight(&echoBenchmark{name: "echo"}, Options{}); err == nil {
		t.Fatal("missing system accepted")
	}
	if err := r.Preflight(&echoBenchmark{name: "echo"}, Options{System: "nonesuch"}); err == nil {
		t.Fatal("unknown system accepted")
	}
}
