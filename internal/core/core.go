// Package core is the framework's heart: the benchmark abstraction and
// the pipeline that runs it reproducibly on any configured system.
//
// It plays ReFrame's role in the paper (§2.3): a Benchmark describes
// *what* to build and run (build spec, execution layout, sanity and
// performance patterns) while the system configuration describes *where*
// (scheduler, launcher, partitions, compilers, externals). The Runner
// executes the regression-test pipeline:
//
//	resolve system → concretize spec (Principle 4) → build (Principles
//	2–3) → generate job script → schedule → launch → sanity-check →
//	extract FOMs (Principle 6) → append perflog
//
// so that every run is reproducible end to end by construction.
package core

import (
	"time"

	"repro/internal/buildsys"
	"repro/internal/env"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/perflog"
	"repro/internal/platform"
	"repro/internal/repo"
	"repro/internal/retry"
	"repro/internal/scheduler"
	"repro/internal/spec"
)

// RunContext is everything a benchmark's payload can see when it
// executes: the platform it landed on, its concrete build, and the
// parallel layout the scheduler granted.
type RunContext struct {
	System       *platform.System
	Partition    *platform.Partition
	Spec         *spec.Spec // concrete build spec
	Layout       launcher.Layout
	Nodes        []string
	SystemFactor float64
	// Repetition is the zero-based index of this execution within the
	// run's repetition protocol (0 for single-execution runs and for the
	// first warm-up).
	Repetition int
	// Local is true when running on the real host rather than the
	// simulated estate.
	Local bool
}

// Benchmark defines one test, mirroring a ReFrame benchmark class.
type Benchmark interface {
	// Name identifies the benchmark in perflogs.
	Name() string
	// BuildSpec is the default package spec to build (may be overridden
	// per run, like ReFrame's -S spack_spec=...).
	BuildSpec() string
	// DefaultLayout is the parallel layout used unless overridden
	// (ReFrame's num_tasks / num_tasks_per_node / num_cpus_per_task).
	DefaultLayout() launcher.Layout
	// Args are the executable's command-line arguments (recorded in the
	// job script).
	Args() []string
	// Execute runs the payload and returns its stdout and how long it
	// took (simulated or measured).
	Execute(ctx *RunContext) (stdout string, elapsed time.Duration, err error)
	// Sanity patterns decide whether the run was valid.
	Sanity() fom.Sanity
	// PerfPatterns extract the Figures of Merit from stdout.
	PerfPatterns() []fom.Pattern
}

// Options modify one Runner.Run invocation, mirroring the ReFrame
// command line used throughout the paper's artifact appendix.
type Options struct {
	// System targets "system" or "system:partition" (--system).
	System string
	// Spec overrides the benchmark's build spec (-S spack_spec=...).
	Spec string
	// Layout overrides fields of the default layout when nonzero
	// (--setvar num_tasks=... etc.).
	NumTasks     int
	TasksPerNode int
	CPUsPerTask  int
	// Account overrides the system config's account (-J'--account=').
	Account string
	// Repetitions overrides the runner's measured-repetition count when
	// positive (--repetitions).
	Repetitions int
	// Warmup overrides the runner's warm-up discard count when positive
	// (--warmup).
	Warmup int
}

// Report is the full record of one pipeline run.
type Report struct {
	Benchmark string
	System    string
	Partition string
	Spec      *spec.Spec
	SpecTrace []string // concretizer provenance (Principle 4)
	Builds    []*buildsys.Record
	// BuildTime is the simulated build time this run actually spent
	// (cached and external packages cost nothing; see
	// buildsys.TotalBuildTime).
	BuildTime time.Duration
	JobScript string
	Job       *scheduler.Info
	FOMs      map[string]fom.Value
	Entry     *perflog.Entry
	EnvBefore env.Capture
	// Repetitions is the number of measured repetitions that produced the
	// FOMs (1 for single-execution runs); Warmup is how many additional
	// warm-up executions were discarded before measuring.
	Repetitions int
	Warmup      int
	// RepSeries holds the measured per-repetition values for each FOM
	// when Repetitions > 1 (the series the perflog rep extras summarize).
	RepSeries map[string][]float64
}

// Pass reports whether the run completed and passed sanity.
func (r *Report) Pass() bool { return r.Entry != nil && r.Entry.Pass() }

// Runner executes benchmarks through the full pipeline.
type Runner struct {
	Estate *platform.Estate
	Envs   *env.Registry
	Repo   *repo.Repository
	// InstallTree is the build-cache directory.
	InstallTree string
	// PerflogRoot receives perflog entries; empty disables logging.
	PerflogRoot string
	// Log, when non-nil, receives perflog entries instead of one-shot
	// Append calls against PerflogRoot. benchd wires its group-commit
	// *perflog.Writer here so concurrent workers' append stages share
	// commits (one write + one fsync per batch); the CLI leaves it nil
	// and keeps the one-shot path.
	Log perflog.Appender
	// RebuildEveryRun enforces Principle 3 (default in New).
	RebuildEveryRun bool
	// Backfill enables EASY backfilling on the simulated batch
	// schedulers (no effect on the local scheduler).
	Backfill bool
	// Repetitions is the default number of measured repetitions per run
	// (<= 1 means a single execution, the pre-repetition behaviour).
	// Options.Repetitions overrides it per run.
	Repetitions int
	// WarmupDiscard is the default number of warm-up executions run and
	// discarded before the measured repetitions. Options.Warmup overrides
	// it per run.
	WarmupDiscard int
	// Retry is applied to each pipeline stage: transient failures (a
	// scheduler rejecting a submit, a flaky build step) are re-attempted
	// with backoff before the run is declared failed. The zero policy
	// runs every stage exactly once. The append stage is never retried —
	// its bytes may already be durable when the error surfaces, and a
	// duplicated perflog line is worse than a surfaced error.
	Retry retry.Policy
	// StageTimeout bounds each stage attempt. Enforcement is
	// cooperative: the attempt's context expires and context-aware work
	// (builds, injected delays) returns early; the timeout is classified
	// transient so the retry policy gets a fresh attempt. Zero disables
	// the limit.
	StageTimeout time.Duration
	// Now supplies timestamps (defaults to time.Now; fixed in tests).
	Now func() time.Time
}

// New assembles a Runner over the builtin estate, environments, and
// recipes, with Principle 3 (rebuild every run) on by default.
func New(installTree, perflogRoot string) *Runner {
	return &Runner{
		Estate:          platform.UKEstate(),
		Envs:            env.UKRegistry(),
		Repo:            repo.Builtin(),
		InstallTree:     installTree,
		PerflogRoot:     perflogRoot,
		RebuildEveryRun: true,
		Retry:           retry.Default(),
		Now:             time.Now,
	}
}
