package spec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	s, err := Parse("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "babelstream" || !s.Version.IsAny() || !s.Compiler.IsEmpty() {
		t.Errorf("unexpected spec: %+v", s)
	}
}

func TestParseFull(t *testing.T) {
	s, err := Parse("babelstream@4.0%gcc@9.2.0 +omp backend=cuda ~mpi ^kokkos@3.7+openmp ^cmake")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "babelstream" {
		t.Fatalf("name = %q", s.Name)
	}
	if got := s.Version.String(); got != "4.0" {
		t.Errorf("version = %q", got)
	}
	if s.Compiler.Name != "gcc" || s.Compiler.Version.String() != "9.2.0" {
		t.Errorf("compiler = %v", s.Compiler)
	}
	if v, ok := s.Variants["omp"]; !ok || !v.IsBool || !v.Bool {
		t.Errorf("variant omp = %+v", v)
	}
	if v, ok := s.Variants["mpi"]; !ok || !v.IsBool || v.Bool {
		t.Errorf("variant mpi = %+v", v)
	}
	if v, ok := s.Variants["backend"]; !ok || v.IsBool || v.Str != "cuda" {
		t.Errorf("variant backend = %+v", v)
	}
	k, ok := s.Deps["kokkos"]
	if !ok {
		t.Fatal("missing kokkos dep")
	}
	if k.Version.String() != "3.7" {
		t.Errorf("kokkos version = %q", k.Version)
	}
	if v, ok := k.Variants["openmp"]; !ok || !v.Bool {
		t.Errorf("kokkos openmp = %+v", v)
	}
	if _, ok := s.Deps["cmake"]; !ok {
		t.Error("missing cmake dep")
	}
}

func TestParsePaperSpecs(t *testing.T) {
	// The exact specs quoted in the paper's artifact appendix must parse.
	for _, text := range []string{
		"babelstream%gcc@9.2.0 +omp",
		"hpgmg%gcc",
		"hpcg@3.1 +matrixfree",
		"babelstream%oneapi@2023.1.0 model=std-ranges",
	} {
		if _, err := Parse(text); err != nil {
			t.Errorf("Parse(%q): %v", text, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"@1.0",
		"pkg@",
		"pkg%",
		"pkg %gcc %clang",
		"pkg +x ~x",
		"pkg key=",
		"pkg =v",
		"pkg ^",
		"pkg @1.0 @2.0",
		"pkg backend=a backend=b",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseMergesRepeatedDeps(t *testing.T) {
	s, err := Parse("app ^mpi@4.0 ^mpi+cuda")
	if err != nil {
		t.Fatal(err)
	}
	m := s.Deps["mpi"]
	if m == nil {
		t.Fatal("missing mpi")
	}
	if m.Version.String() != "4.0" {
		t.Errorf("version = %q", m.Version)
	}
	if v, ok := m.Variants["cuda"]; !ok || !v.Bool {
		t.Errorf("cuda variant = %+v", v)
	}
}

func TestStringCanonical(t *testing.T) {
	s := MustParse("app@1.0%gcc@12.1 +b +a mode=fast ^zlib@1.2 ^mpi+cuda")
	got := s.String()
	want := "app@1.0%gcc@12.1 +a +b mode=fast ^mpi +cuda ^zlib@1.2"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	// Property: Parse(s.String()).String() == s.String() for randomly
	// generated specs.
	gen := func(r *rand.Rand) *Spec {
		names := []string{"app", "lib", "tool"}
		s := New(names[r.Intn(len(names))])
		if r.Intn(2) == 0 {
			s.Version = ExactVersion(Version(randVer(r)))
		}
		if r.Intn(2) == 0 {
			s.Compiler = Compiler{Name: "gcc", Version: ExactVersion(Version(randVer(r)))}
		}
		for i := 0; i < r.Intn(3); i++ {
			name := string(rune('a' + r.Intn(26)))
			if r.Intn(2) == 0 {
				s.SetVariant(name, BoolVariant(r.Intn(2) == 0))
			} else {
				s.SetVariant(name, StrVariant(randVer(r)))
			}
		}
		for i := 0; i < r.Intn(3); i++ {
			d := New("dep" + string(rune('a'+i)))
			if r.Intn(2) == 0 {
				d.Version = ExactVersion(Version(randVer(r)))
			}
			s.AddDep(d)
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := gen(r)
		text := s.String()
		re, err := Parse(text)
		if err != nil {
			t.Logf("round trip parse of %q failed: %v", text, err)
			return false
		}
		return re.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randVer(r *rand.Rand) string {
	parts := make([]string, 1+r.Intn(3))
	for i := range parts {
		parts[i] = string(rune('0' + r.Intn(10)))
	}
	return strings.Join(parts, ".")
}

func TestSatisfies(t *testing.T) {
	concrete := MustParse("babelstream@4.0%gcc@9.2.0 +omp model=omp ^cmake@3.24.2")
	concrete.Concrete = true
	cases := []struct {
		want string
		ok   bool
	}{
		{"babelstream", true},
		{"babelstream@4.0", true},
		{"babelstream@3.0:5.0", true},
		{"babelstream@5.0", false},
		{"babelstream%gcc", true},
		{"babelstream%gcc@9.2", true},
		{"babelstream%gcc@10:", false},
		{"babelstream%clang", false},
		{"babelstream +omp", true},
		{"babelstream ~omp", false},
		{"babelstream model=omp", true},
		{"babelstream model=cuda", false},
		{"babelstream ^cmake", true},
		{"babelstream ^cmake@3.24", true},
		{"babelstream ^cmake@3.25", false},
		{"other", false},
	}
	for _, c := range cases {
		w := MustParse(c.want)
		if got := concrete.Satisfies(w); got != c.ok {
			t.Errorf("Satisfies(%q) = %v, want %v", c.want, got, c.ok)
		}
	}
}

func TestSatisfiesNil(t *testing.T) {
	s := MustParse("x@1.0")
	if !s.Satisfies(nil) {
		t.Error("every spec satisfies nil")
	}
}

func TestConstrain(t *testing.T) {
	a := MustParse("app@1.0:2.0 +x")
	b := MustParse("app@1.5: %gcc ~y ^mpi@4:")
	if err := a.Constrain(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Version.String(); got != "1.5:2.0" {
		t.Errorf("version = %q", got)
	}
	if a.Compiler.Name != "gcc" {
		t.Errorf("compiler = %v", a.Compiler)
	}
	if v := a.Variants["x"]; !v.Bool {
		t.Error("+x lost")
	}
	if v := a.Variants["y"]; v.Bool {
		t.Error("~y lost")
	}
	if a.Deps["mpi"] == nil {
		t.Error("mpi dep lost")
	}
}

func TestConstrainConflicts(t *testing.T) {
	cases := [][2]string{
		{"app@1.0", "app@2.0"},
		{"app%gcc", "app%clang"},
		{"app%gcc@9", "app%gcc@12"},
		{"app+x", "app~x"},
		{"app m=a", "app m=b"},
		{"app ^mpi@4", "app ^mpi@5"},
	}
	for _, c := range cases {
		a, b := MustParse(c[0]), MustParse(c[1])
		if err := a.Constrain(b); err == nil {
			t.Errorf("Constrain(%q, %q): expected conflict", c[0], c[1])
		}
	}
	a := MustParse("app")
	if err := a.Constrain(MustParse("other")); err == nil {
		t.Error("constraining different packages must fail")
	}
}

func TestConstrainSatisfiesBoth(t *testing.T) {
	// Property: after a successful Constrain(a, b), a satisfies b's
	// root-level constraints (for exact-version merges).
	a := MustParse("app@1.5%gcc@9.2.0 +x")
	b := MustParse("app +y mode=fast")
	orig := a.Copy()
	if err := a.Constrain(b); err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(b) {
		t.Errorf("constrained spec %q does not satisfy %q", a, b)
	}
	if !a.Satisfies(orig) {
		t.Errorf("constrained spec %q does not satisfy original %q", a, orig)
	}
}

func TestCopyIsDeep(t *testing.T) {
	a := MustParse("app@1.0 +x ^mpi@4.0")
	b := a.Copy()
	b.SetVariant("x", BoolVariant(false))
	b.Deps["mpi"].Version = ExactVersion("5.0")
	if !a.Variants["x"].Bool {
		t.Error("Copy shares variants map")
	}
	if a.Deps["mpi"].Version.String() != "4.0" {
		t.Error("Copy shares dependency specs")
	}
}

func TestDAGHashStability(t *testing.T) {
	a := MustParse("app@1.0%gcc@12.1 +x ^mpi@4.0")
	b := MustParse("app@1.0%gcc@12.1 +x ^mpi@4.0")
	if a.DAGHash() != b.DAGHash() {
		t.Error("identical specs must hash identically")
	}
	c := MustParse("app@1.0%gcc@12.1 ~x ^mpi@4.0")
	if a.DAGHash() == c.DAGHash() {
		t.Error("differing variants must change the hash")
	}
	d := MustParse("app@1.0%gcc@12.1 +x ^mpi@4.0.1")
	if a.DAGHash() == d.DAGHash() {
		t.Error("differing dependency versions must change the hash")
	}
	if n := len(a.DAGHash()); n != 16 {
		t.Errorf("hash length = %d, want 16", n)
	}
}

func TestLookupAndTraverse(t *testing.T) {
	s := MustParse("app ^mpi@4.0 ^zlib")
	if s.Lookup("app") != s {
		t.Error("Lookup of root should return root")
	}
	if s.Lookup("mpi") == nil || s.Lookup("zlib") == nil {
		t.Error("Lookup misses dependencies")
	}
	if s.Lookup("nothere") != nil {
		t.Error("Lookup invents packages")
	}
	var order []string
	s.Traverse(func(n *Spec) { order = append(order, n.Name) })
	want := []string{"app", "mpi", "zlib"}
	if len(order) != len(want) {
		t.Fatalf("traverse visited %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("traverse order = %v, want %v", order, want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := MustParse("app@1.0%gcc@12.1 ^mpi@4.0%gcc@12.1")
	ok.Concrete = true
	ok.Deps["mpi"].Concrete = true
	if err := ok.Validate(); err != nil {
		t.Errorf("valid concrete spec rejected: %v", err)
	}

	bad := MustParse("app@1.0:2.0")
	bad.Concrete = true
	if err := bad.Validate(); err == nil {
		t.Error("non-exact version accepted as concrete")
	}

	bad2 := MustParse("app@1.0 ^mpi@4.0")
	bad2.Concrete = true
	if err := bad2.Validate(); err == nil {
		t.Error("non-concrete dependency accepted")
	}

	abstract := MustParse("app@1.0:2.0")
	if err := abstract.Validate(); err != nil {
		t.Errorf("abstract specs are always valid: %v", err)
	}
}

func TestExternalSpecValidate(t *testing.T) {
	s := MustParse("cray-mpich@8.1.23")
	s.Concrete = true
	s.External = true
	s.ExternalPath = "/opt/cray/pe/mpich/8.1.23"
	if err := s.Validate(); err != nil {
		t.Errorf("external concrete spec rejected: %v", err)
	}
}

func TestCompilerSatisfies(t *testing.T) {
	gcc92 := Compiler{Name: "gcc", Version: ExactVersion("9.2.0")}
	if !gcc92.Satisfies(Compiler{}) {
		t.Error("empty constraint always satisfied")
	}
	if !gcc92.Satisfies(Compiler{Name: "gcc"}) {
		t.Error("name-only constraint")
	}
	if !gcc92.Satisfies(Compiler{Name: "gcc", Version: VersionRange{Lo: "9"}}) {
		t.Error("range constraint")
	}
	if gcc92.Satisfies(Compiler{Name: "clang"}) {
		t.Error("wrong compiler accepted")
	}
}
