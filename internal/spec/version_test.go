package spec

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1},
		{"2", "1", 1},
		{"1.0", "1.0", 0},
		{"1.2", "1.10", -1},
		{"9.2.0", "10.3.0", -1},
		{"1.2", "1.2.1", -1},
		{"1.2.1", "1.2", 1},
		{"4.0.4", "4.0.3", 1},
		{"2021.1", "2023.1.0", -1},
		{"1.0rc1", "1.0", 1},   // non-numeric sorts after numeric
		{"1.a", "1.b", -1},     // lexicographic fallback
		{"8.1.23", "8.1.9", 1}, // numeric, not lexicographic
	}
	for _, c := range cases {
		if got := Version(c.a).Compare(Version(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVersionCompareAntisymmetric(t *testing.T) {
	gen := func(seed int64) Version {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = strconv.Itoa(r.Intn(30))
		}
		return Version(strings.Join(parts, "."))
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionIsPrefixOf(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"9.2", "9.2.0", true},
		{"9.2", "9.2", true},
		{"9.2.0", "9.2", false},
		{"9", "9.2.0", true},
		{"9.2", "9.20.0", false},
	}
	for _, c := range cases {
		if got := Version(c.a).IsPrefixOf(Version(c.b)); got != c.want {
			t.Errorf("IsPrefixOf(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestVersionRangeContains(t *testing.T) {
	mustRange := func(s string) VersionRange {
		r, err := ParseVersionRange(s)
		if err != nil {
			t.Fatalf("ParseVersionRange(%q): %v", s, err)
		}
		return r
	}
	cases := []struct {
		rng, v string
		want   bool
	}{
		{"9.2.0", "9.2.0", true},
		{"9.2", "9.2.0", true}, // prefix match: @9.2 matches 9.2.0
		{"9.2.0", "9.2.1", false},
		{"1.2:1.9", "1.5", true},
		{"1.2:1.9", "1.9.5", true}, // hi prefix counts as within bound
		{"1.2:1.9", "2.0", false},
		{"1.2:", "99", true},
		{":2.0", "1.0", true},
		{":2.0", "2.1", false},
		{"1.2:1.9", "1.2", true},
	}
	for _, c := range cases {
		if got := mustRange(c.rng).Contains(Version(c.v)); got != c.want {
			t.Errorf("(%q).Contains(%q) = %v, want %v", c.rng, c.v, got, c.want)
		}
	}
	if !AnyVersion.Contains("anything.at.all") {
		t.Error("AnyVersion must contain every version")
	}
}

func TestVersionRangeIntersect(t *testing.T) {
	r := func(s string) VersionRange {
		vr, err := ParseVersionRange(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return vr
	}
	cases := []struct {
		a, b string
		want string
		ok   bool
	}{
		{"1.0:2.0", "1.5:3.0", "1.5:2.0", true},
		{"1.0:2.0", "2.5:3.0", "", false},
		{"1.0:", ":2.0", "1.0:2.0", true},
		{"1.5", "1.0:2.0", "1.5", true},
		{"1.5", "1.6:2.0", "", false},
		{"9.2", "9.2.0", "9.2.0", true}, // prefix-compatible exacts pick the longer
		{"9.2.0", "9.2", "9.2.0", true},
		{"9.2.0", "9.3.0", "", false},
	}
	for _, c := range cases {
		got, ok := r(c.a).Intersect(r(c.b))
		if ok != c.ok {
			t.Errorf("Intersect(%q,%q) ok=%v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && got.String() != c.want {
			t.Errorf("Intersect(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
	// Identity with Any.
	if got, ok := AnyVersion.Intersect(r("1.0:2.0")); !ok || got.String() != "1.0:2.0" {
		t.Errorf("Any∩[1.0:2.0] = %q,%v", got, ok)
	}
}

func TestVersionRangeIntersectCommutative(t *testing.T) {
	ranges := []VersionRange{
		AnyVersion,
		ExactVersion("1.5"),
		ExactVersion("9.2"),
		{Lo: "1.0", Hi: "2.0"},
		{Lo: "1.5"},
		{Hi: "1.8"},
	}
	for _, a := range ranges {
		for _, b := range ranges {
			x, okx := a.Intersect(b)
			y, oky := b.Intersect(a)
			if okx != oky {
				t.Errorf("Intersect not commutative in ok: %v vs %v for %q,%q", okx, oky, a, b)
			}
			if okx && x.String() != y.String() {
				t.Errorf("Intersect(%q,%q)=%q but reversed %q", a, b, x, y)
			}
		}
	}
}

func TestParseVersionRangeErrors(t *testing.T) {
	for _, bad := range []string{"", "1..2", "1:2:3", "2.0:1.0", "1 2", "a b"} {
		if _, err := ParseVersionRange(bad); err == nil {
			t.Errorf("ParseVersionRange(%q): expected error", bad)
		}
	}
}

func TestVersionRangeString(t *testing.T) {
	cases := []struct{ in, out string }{
		{"1.2", "1.2"},
		{"1.2:1.9", "1.2:1.9"},
		{":2.0", ":2.0"},
		{"1.2:", "1.2:"},
	}
	for _, c := range cases {
		r, err := ParseVersionRange(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if got := r.String(); got != c.out {
			t.Errorf("String of %q = %q, want %q", c.in, got, c.out)
		}
	}
}
