package spec

import "testing"

// FuzzParse hardens the spec parser: arbitrary input must either fail
// cleanly or produce a spec whose canonical rendering re-parses to an
// equal spec (print/parse fixpoint).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"babelstream",
		"babelstream@4.0%gcc@9.2.0 +omp",
		"hpcg variant=intel-avx2 %oneapi ^intel-oneapi-mkl@2023.1.0",
		"hpgmg%gcc ^cray-mpich@8.1.23 ^python@3.10.12",
		"a@1.2:3.4 %c@5 +x ~y k=v ^d@: ^e",
		"p @ % ^",
		"p+",
		"p ^^q",
		"@",
		"p key==v",
		"p\tq",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		text := s.String()
		re, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", text, input, err)
		}
		if re.String() != text {
			t.Fatalf("not a fixpoint: %q -> %q -> %q", input, text, re.String())
		}
	})
}

// FuzzParseVersionRange checks range parsing never panics and accepted
// ranges render/re-parse stably.
func FuzzParseVersionRange(f *testing.F) {
	for _, seed := range []string{"1.2", "1.2:3.4", ":9", "9:", "a.b-c", "1..2", ":"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ParseVersionRange(input)
		if err != nil {
			return
		}
		text := r.String()
		if text == "" {
			return // the any-range renders empty
		}
		re, err := ParseVersionRange(text)
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", text, input, err)
		}
		if re.String() != text {
			t.Fatalf("not a fixpoint: %q -> %q -> %q", input, text, re.String())
		}
	})
}
