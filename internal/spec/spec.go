package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// VariantValue is the value of a variant: either a boolean toggle
// (+omp / ~omp) or a string setting (backend=cuda).
type VariantValue struct {
	Bool    bool   // valid when IsBool
	Str     string // valid when !IsBool
	IsBool  bool
	Default bool // set by the concretizer when the value came from a recipe default
}

// BoolVariant returns a boolean variant value.
func BoolVariant(b bool) VariantValue { return VariantValue{Bool: b, IsBool: true} }

// StrVariant returns a string variant value.
func StrVariant(s string) VariantValue { return VariantValue{Str: s} }

// Equal reports whether two variant values are the same setting.
// The Default provenance flag is ignored.
func (v VariantValue) Equal(w VariantValue) bool {
	if v.IsBool != w.IsBool {
		return false
	}
	if v.IsBool {
		return v.Bool == w.Bool
	}
	return v.Str == w.Str
}

// Render prints the variant in spec syntax given its name:
// "+omp", "~omp", or "model=cuda".
func (v VariantValue) Render(name string) string {
	if v.IsBool {
		if v.Bool {
			return "+" + name
		}
		return "~" + name
	}
	return name + "=" + v.Str
}

// Compiler identifies a compiler and a constraint on its version,
// written %gcc@9.2.0 in spec syntax.
type Compiler struct {
	Name    string
	Version VersionRange
}

// IsEmpty reports whether no compiler constraint is present.
func (c Compiler) IsEmpty() bool { return c.Name == "" }

// String renders the compiler in spec syntax without the leading '%'.
func (c Compiler) String() string {
	if c.IsEmpty() {
		return ""
	}
	if c.Version.IsAny() {
		return c.Name
	}
	return c.Name + "@" + c.Version.String()
}

// Satisfies reports whether a concrete compiler c meets constraint want.
func (c Compiler) Satisfies(want Compiler) bool {
	if want.IsEmpty() {
		return true
	}
	if c.Name != want.Name {
		return false
	}
	if want.Version.IsAny() {
		return true
	}
	if !c.Version.IsExact() {
		return false
	}
	return want.Version.Contains(c.Version.Lo)
}

// Spec is a (possibly abstract) description of a package build: the
// package name plus constraints on version, compiler, variants and
// dependencies. Dependencies are themselves specs, keyed by package name,
// forming a DAG.
type Spec struct {
	Name     string
	Version  VersionRange
	Compiler Compiler
	Variants map[string]VariantValue
	Deps     map[string]*Spec

	// Concrete marks a spec fully resolved by the concretizer: version
	// exact, compiler pinned, all recipe variants present, dependency
	// closure complete.
	Concrete bool

	// External records, for concrete specs, that the package was not
	// built but taken from the system installation (a packages.yaml
	// external in Spack terms), and where it lives.
	External     bool
	ExternalPath string
}

// New returns an abstract spec for the named package.
func New(name string) *Spec {
	return &Spec{Name: name, Variants: map[string]VariantValue{}, Deps: map[string]*Spec{}}
}

// Copy returns a deep copy of the spec DAG.
func (s *Spec) Copy() *Spec {
	if s == nil {
		return nil
	}
	out := &Spec{
		Name:         s.Name,
		Version:      s.Version,
		Compiler:     s.Compiler,
		Concrete:     s.Concrete,
		External:     s.External,
		ExternalPath: s.ExternalPath,
		Variants:     make(map[string]VariantValue, len(s.Variants)),
		Deps:         make(map[string]*Spec, len(s.Deps)),
	}
	for k, v := range s.Variants {
		out.Variants[k] = v
	}
	for k, d := range s.Deps {
		out.Deps[k] = d.Copy()
	}
	return out
}

// SetVariant sets a variant constraint on the root package.
func (s *Spec) SetVariant(name string, v VariantValue) *Spec {
	if s.Variants == nil {
		s.Variants = map[string]VariantValue{}
	}
	s.Variants[name] = v
	return s
}

// AddDep attaches a dependency constraint (the ^dep syntax).
func (s *Spec) AddDep(d *Spec) *Spec {
	if s.Deps == nil {
		s.Deps = map[string]*Spec{}
	}
	s.Deps[d.Name] = d
	return s
}

// VariantNames returns the root's variant names in sorted order.
func (s *Spec) VariantNames() []string {
	names := make([]string, 0, len(s.Variants))
	for n := range s.Variants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DepNames returns the direct dependency names in sorted order.
func (s *Spec) DepNames() []string {
	names := make([]string, 0, len(s.Deps))
	for n := range s.Deps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the spec in canonical single-line syntax:
// name@version%compiler@cver +a ~b key=val ^dep...
// Dependencies are printed sorted by name for determinism.
func (s *Spec) String() string {
	var b strings.Builder
	s.writeRoot(&b)
	for _, dn := range s.DepNames() {
		b.WriteString(" ^")
		s.Deps[dn].writeFlat(&b)
	}
	return b.String()
}

// writeRoot renders only the root package constraints.
func (s *Spec) writeRoot(b *strings.Builder) {
	b.WriteString(s.Name)
	if !s.Version.IsAny() {
		b.WriteString("@")
		b.WriteString(s.Version.String())
	}
	if !s.Compiler.IsEmpty() {
		b.WriteString("%")
		b.WriteString(s.Compiler.String())
	}
	for _, vn := range s.VariantNames() {
		b.WriteString(" ")
		b.WriteString(s.Variants[vn].Render(vn))
	}
}

// writeFlat renders a dependency and, recursively, its own dependencies
// as further ^ clauses (flattened, as Spack prints them).
func (s *Spec) writeFlat(b *strings.Builder) {
	s.writeRoot(b)
	for _, dn := range s.DepNames() {
		b.WriteString(" ^")
		s.Deps[dn].writeFlat(b)
	}
}

// RootString renders only the root constraints, without dependencies.
func (s *Spec) RootString() string {
	var b strings.Builder
	s.writeRoot(&b)
	return b.String()
}

// Traverse visits every spec in the DAG exactly once (root first, then
// dependencies in sorted name order, depth-first).
func (s *Spec) Traverse(visit func(*Spec)) {
	seen := map[string]bool{}
	s.traverse(visit, seen)
}

func (s *Spec) traverse(visit func(*Spec), seen map[string]bool) {
	if seen[s.Name] {
		return
	}
	seen[s.Name] = true
	visit(s)
	for _, dn := range s.DepNames() {
		s.Deps[dn].traverse(visit, seen)
	}
}

// Lookup finds a package anywhere in the spec DAG by name, returning nil
// if absent. The root itself is found by its own name.
func (s *Spec) Lookup(name string) *Spec {
	var found *Spec
	s.Traverse(func(n *Spec) {
		if n.Name == name && found == nil {
			found = n
		}
	})
	return found
}

// Satisfies reports whether s (typically concrete) meets every constraint
// expressed by want (typically abstract). Constraints absent from want are
// trivially satisfied. Dependency constraints in want must be satisfied by
// some package in s's DAG.
func (s *Spec) Satisfies(want *Spec) bool {
	if want == nil {
		return true
	}
	if s.Name != want.Name {
		return false
	}
	if !want.Version.IsAny() {
		if !s.Version.IsExact() {
			// Abstract-vs-abstract: ranges must at least intersect.
			if _, ok := s.Version.Intersect(want.Version); !ok {
				return false
			}
		} else if !want.Version.Contains(s.Version.Lo) {
			return false
		}
	}
	if !want.Compiler.IsEmpty() && !s.Compiler.Satisfies(want.Compiler) {
		return false
	}
	for name, wv := range want.Variants {
		sv, ok := s.Variants[name]
		if !ok {
			return false
		}
		if !sv.Equal(wv) {
			return false
		}
	}
	for name, wd := range want.Deps {
		sd := s.Lookup(name)
		if sd == nil || !sd.Satisfies(wd) {
			return false
		}
	}
	return true
}

// Constrain merges the constraints of other into s in place, returning an
// error when they conflict. Both specs must name the same package.
func (s *Spec) Constrain(other *Spec) error {
	if other == nil {
		return nil
	}
	if s.Name != other.Name {
		return fmt.Errorf("spec: cannot constrain %q with %q", s.Name, other.Name)
	}
	v, ok := s.Version.Intersect(other.Version)
	if !ok {
		return fmt.Errorf("spec: %s: incompatible versions @%s and @%s", s.Name, s.Version, other.Version)
	}
	s.Version = v
	switch {
	case s.Compiler.IsEmpty():
		s.Compiler = other.Compiler
	case other.Compiler.IsEmpty():
		// keep
	case s.Compiler.Name != other.Compiler.Name:
		return fmt.Errorf("spec: %s: incompatible compilers %%%s and %%%s", s.Name, s.Compiler, other.Compiler)
	default:
		cv, ok := s.Compiler.Version.Intersect(other.Compiler.Version)
		if !ok {
			return fmt.Errorf("spec: %s: incompatible compiler versions %%%s and %%%s", s.Name, s.Compiler, other.Compiler)
		}
		s.Compiler.Version = cv
	}
	for name, ov := range other.Variants {
		if sv, ok := s.Variants[name]; ok {
			if !sv.Equal(ov) {
				return fmt.Errorf("spec: %s: conflicting values for variant %q", s.Name, name)
			}
			continue
		}
		s.SetVariant(name, ov)
	}
	for name, od := range other.Deps {
		if sd, ok := s.Deps[name]; ok {
			if err := sd.Constrain(od); err != nil {
				return err
			}
			continue
		}
		s.AddDep(od.Copy())
	}
	return nil
}

// Equal reports whether two specs express identical constraints.
func (s *Spec) Equal(other *Spec) bool {
	if s == nil || other == nil {
		return s == other
	}
	return s.String() == other.String() && s.Concrete == other.Concrete
}

// DAGHash returns a short stable hash identifying a concrete spec's full
// build DAG. It is the key for the build cache and install tree, giving
// Principle 4's "archaeological reproducibility": the hash changes iff any
// build-relevant input changes.
func (s *Spec) DAGHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|concrete=%v|external=%v", s.String(), s.Concrete, s.External)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum)[:16]
}

// Validate checks structural invariants of a spec marked concrete: exact
// version, pinned compiler (unless external), and recursively concrete
// dependencies.
func (s *Spec) Validate() error {
	if !s.Concrete {
		return nil
	}
	var err error
	s.Traverse(func(n *Spec) {
		if err != nil {
			return
		}
		if !n.Version.IsExact() {
			err = fmt.Errorf("spec: concrete %s has non-exact version @%s", n.Name, n.Version)
			return
		}
		if !n.External && !n.Concrete {
			err = fmt.Errorf("spec: dependency %s of concrete spec is not concrete", n.Name)
			return
		}
		if !n.External && !n.Compiler.IsEmpty() && !n.Compiler.Version.IsExact() {
			err = fmt.Errorf("spec: concrete %s has unpinned compiler %%%s", n.Name, n.Compiler)
		}
	})
	return err
}
