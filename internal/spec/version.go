// Package spec implements the package-spec language used throughout the
// benchmarking framework to describe software builds.
//
// The grammar follows the Spack spec syntax described in the paper
// (Principle 2 and 4): a spec names a package together with constraints on
// its version, compiler, variants, and dependencies, e.g.
//
//	babelstream@4.0%gcc@9.2.0 +omp ^kokkos@3.7 ^openmpi@4.0.4
//
// A spec may be abstract (leaving some of these unconstrained) or concrete
// (everything pinned). The concretizer in internal/concretize turns the
// former into the latter.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a dotted software version such as "9.2.0" or "2021.1".
// Components are compared numerically when both are numeric, and
// lexicographically otherwise, matching the common package-manager ordering.
type Version string

// Parts splits the version into its dot-separated components.
func (v Version) Parts() []string {
	if v == "" {
		return nil
	}
	return strings.Split(string(v), ".")
}

// Compare orders two versions: -1 if v < w, 0 if equal, +1 if v > w.
// A shorter version that is a prefix of a longer one compares lower
// ("1.2" < "1.2.1").
func (v Version) Compare(w Version) int {
	a, b := v.Parts(), w.Parts()
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := compareComponent(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareComponent(a, b string) int {
	na, aerr := strconv.Atoi(a)
	nb, berr := strconv.Atoi(b)
	switch {
	case aerr == nil && berr == nil:
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		default:
			return 0
		}
	case aerr == nil: // numeric sorts before non-numeric ("1" < "rc1")
		return -1
	case berr == nil:
		return 1
	default:
		return strings.Compare(a, b)
	}
}

// IsPrefixOf reports whether v is a dotted prefix of w, so that "9.2"
// is satisfied by the concrete version "9.2.0".
func (v Version) IsPrefixOf(w Version) bool {
	a, b := v.Parts(), w.Parts()
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VersionRange constrains a version to an inclusive interval. A zero
// bound means unbounded on that side. Exact == true means the range pins a
// single version (Lo == Hi) that must match exactly (by dotted prefix, as
// package managers treat "@9.2" as matching "9.2.0").
type VersionRange struct {
	Lo, Hi Version
	Exact  bool
}

// AnyVersion is the unconstrained version range.
var AnyVersion = VersionRange{}

// ExactVersion returns a range pinning exactly v.
func ExactVersion(v Version) VersionRange {
	return VersionRange{Lo: v, Hi: v, Exact: true}
}

// IsAny reports whether the range places no constraint at all.
func (r VersionRange) IsAny() bool { return r.Lo == "" && r.Hi == "" && !r.Exact }

// IsExact reports whether the range pins a single version.
func (r VersionRange) IsExact() bool { return r.Exact }

// Contains reports whether version v satisfies the range.
func (r VersionRange) Contains(v Version) bool {
	if r.IsAny() {
		return true
	}
	if r.Exact {
		return r.Lo == v || r.Lo.IsPrefixOf(v)
	}
	if r.Lo != "" && v.Compare(r.Lo) < 0 {
		// A version like 9.2.0 should satisfy lower bound 9.2 even
		// though "9.2" < "9.2.0" would hold componentwise; prefix
		// matches count as within-bound.
		if !r.Lo.IsPrefixOf(v) {
			return false
		}
	}
	if r.Hi != "" && v.Compare(r.Hi) > 0 {
		if !r.Hi.IsPrefixOf(v) {
			return false
		}
	}
	return true
}

// Intersect merges two ranges, returning the tightest range implied by
// both and false if they are incompatible.
func (r VersionRange) Intersect(s VersionRange) (VersionRange, bool) {
	if r.IsAny() {
		return s, true
	}
	if s.IsAny() {
		return r, true
	}
	if r.Exact && s.Exact {
		switch {
		case r.Lo == s.Lo:
			return r, true
		case r.Lo.IsPrefixOf(s.Lo):
			return s, true
		case s.Lo.IsPrefixOf(r.Lo):
			return r, true
		default:
			return VersionRange{}, false
		}
	}
	if r.Exact {
		if s.Contains(r.Lo) {
			return r, true
		}
		return VersionRange{}, false
	}
	if s.Exact {
		if r.Contains(s.Lo) {
			return s, true
		}
		return VersionRange{}, false
	}
	out := VersionRange{Lo: maxVersion(r.Lo, s.Lo), Hi: minVersion(r.Hi, s.Hi)}
	if out.Lo != "" && out.Hi != "" && out.Lo.Compare(out.Hi) > 0 && !out.Lo.IsPrefixOf(out.Hi) {
		return VersionRange{}, false
	}
	return out, true
}

func maxVersion(a, b Version) Version {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if a.Compare(b) >= 0 {
		return a
	}
	return b
}

func minVersion(a, b Version) Version {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if a.Compare(b) <= 0 {
		return a
	}
	return b
}

// String renders the range in spec syntax without the leading '@'.
func (r VersionRange) String() string {
	switch {
	case r.IsAny():
		return ""
	case r.Exact:
		return string(r.Lo)
	case r.Lo == r.Hi:
		return fmt.Sprintf("%s:%s", r.Lo, r.Hi)
	case r.Lo == "":
		return ":" + string(r.Hi)
	case r.Hi == "":
		return string(r.Lo) + ":"
	default:
		return fmt.Sprintf("%s:%s", r.Lo, r.Hi)
	}
}

// ParseVersionRange parses the text after an '@' sign: "1.2", "1.2:1.9",
// ":2.0", "1.2:".
func ParseVersionRange(s string) (VersionRange, error) {
	if s == "" {
		return VersionRange{}, fmt.Errorf("spec: empty version constraint after '@'")
	}
	if !strings.Contains(s, ":") {
		if err := validVersion(s); err != nil {
			return VersionRange{}, err
		}
		return ExactVersion(Version(s)), nil
	}
	lo, hi, _ := strings.Cut(s, ":")
	if strings.Contains(hi, ":") {
		return VersionRange{}, fmt.Errorf("spec: malformed version range %q", s)
	}
	for _, p := range []string{lo, hi} {
		if p == "" {
			continue
		}
		if err := validVersion(p); err != nil {
			return VersionRange{}, err
		}
	}
	if lo != "" && hi != "" && Version(lo).Compare(Version(hi)) > 0 {
		return VersionRange{}, fmt.Errorf("spec: inverted version range %q", s)
	}
	return VersionRange{Lo: Version(lo), Hi: Version(hi)}, nil
}

func validVersion(s string) error {
	if s == "" {
		return fmt.Errorf("spec: empty version")
	}
	for _, part := range strings.Split(s, ".") {
		if part == "" {
			return fmt.Errorf("spec: malformed version %q", s)
		}
		for _, r := range part {
			if !isVersionRune(r) {
				return fmt.Errorf("spec: invalid character %q in version %q", r, s)
			}
		}
	}
	return nil
}

func isVersionRune(r rune) bool {
	return r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '-' || r == '_'
}
