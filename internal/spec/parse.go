package spec

import (
	"fmt"
	"unicode"
)

// Parse reads a spec from its textual form, e.g.
//
//	babelstream@4.0%gcc@9.2.0 +omp backend=cuda ^kokkos@3.7+openmp
//
// Tokens are separated by whitespace; '^' introduces a dependency clause
// that consumes constraints until the next '^' or end of input.
// Dependencies parsed from the flat syntax are attached to the root, as in
// Spack: nesting is recovered later by the concretizer.
func Parse(text string) (*Spec, error) {
	p := &parser{input: text}
	s, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("spec: parsing %q: %w", text, err)
	}
	return s, nil
}

// MustParse is Parse for statically known-good specs; it panics on error.
func MustParse(text string) *Spec {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	input string
	pos   int
}

func (p *parser) parse() (*Spec, error) {
	p.skipSpace()
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.eof() {
			return root, nil
		}
		if p.peek() != '^' {
			return nil, fmt.Errorf("unexpected token at %q", p.rest())
		}
		p.pos++ // consume '^'
		dep, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if existing, ok := root.Deps[dep.Name]; ok {
			if err := existing.Constrain(dep); err != nil {
				return nil, err
			}
		} else {
			root.AddDep(dep)
		}
	}
}

// parseNode parses one package clause: name, then any number of
// @version, %compiler, +v, ~v, -v, key=value constraints, stopping at '^'
// or end of input.
func (p *parser) parseNode() (*Spec, error) {
	p.skipSpace()
	name := p.readName()
	if name == "" {
		return nil, fmt.Errorf("expected package name at %q", p.rest())
	}
	s := New(name)
	for {
		p.skipSpace()
		if p.eof() || p.peek() == '^' {
			return s, nil
		}
		switch c := p.peek(); c {
		case '@':
			p.pos++
			vtext := p.readVersionText()
			vr, err := ParseVersionRange(vtext)
			if err != nil {
				return nil, err
			}
			got, ok := s.Version.Intersect(vr)
			if !ok {
				return nil, fmt.Errorf("%s: conflicting version constraints", name)
			}
			s.Version = got
		case '%':
			p.pos++
			cname := p.readName()
			if cname == "" {
				return nil, fmt.Errorf("expected compiler name after %%")
			}
			comp := Compiler{Name: cname}
			if !p.eof() && p.peek() == '@' {
				p.pos++
				vr, err := ParseVersionRange(p.readVersionText())
				if err != nil {
					return nil, err
				}
				comp.Version = vr
			}
			if !s.Compiler.IsEmpty() {
				return nil, fmt.Errorf("%s: multiple compiler constraints", name)
			}
			s.Compiler = comp
		case '+', '~', '-':
			p.pos++
			vname := p.readName()
			if vname == "" {
				return nil, fmt.Errorf("expected variant name after %q", string(c))
			}
			val := BoolVariant(c == '+')
			if prev, ok := s.Variants[vname]; ok && !prev.Equal(val) {
				return nil, fmt.Errorf("%s: conflicting settings for variant %q", name, vname)
			}
			s.SetVariant(vname, val)
		default:
			// key=value variant, or garbage.
			key := p.readName()
			if key == "" {
				return nil, fmt.Errorf("unexpected character %q", string(c))
			}
			if p.eof() || p.peek() != '=' {
				return nil, fmt.Errorf("expected '=' after %q", key)
			}
			p.pos++
			val := p.readValue()
			if val == "" {
				return nil, fmt.Errorf("expected value after %q=", key)
			}
			sv := StrVariant(val)
			if prev, ok := s.Variants[key]; ok && !prev.Equal(sv) {
				return nil, fmt.Errorf("%s: conflicting settings for variant %q", name, key)
			}
			s.SetVariant(key, sv)
		}
	}
}

func (p *parser) eof() bool  { return p.pos >= len(p.input) }
func (p *parser) peek() byte { return p.input[p.pos] }
func (p *parser) rest() string {
	if p.eof() {
		return ""
	}
	return p.input[p.pos:]
}

func (p *parser) skipSpace() {
	for !p.eof() && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

// readName reads a package/variant/compiler identifier:
// letters, digits, '-', '_' — it does not consume '=' or spec operators.
func (p *parser) readName() string {
	start := p.pos
	for !p.eof() {
		c := p.input[p.pos]
		if isNameByte(c) {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

// readVersionText reads the characters of a version or version range.
func (p *parser) readVersionText() string {
	start := p.pos
	for !p.eof() {
		c := p.input[p.pos]
		if isNameByte(c) || c == ':' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

// readValue reads a variant value: like a name but also allows ',' for
// multi-valued variants.
func (p *parser) readValue() string {
	start := p.pos
	for !p.eof() {
		c := p.input[p.pos]
		if isNameByte(c) || c == ',' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '-' || c == '_'
}
