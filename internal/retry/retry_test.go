package retry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// fast is a test policy that never really sleeps.
func fast(attempts int) Policy {
	return Policy{
		MaxAttempts: attempts,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Rand:        func() float64 { return 0 },
	}
}

func TestPermanentErrorIsNotRetried(t *testing.T) {
	calls := 0
	perm := errors.New("bad spec")
	err := fast(5).Do(context.Background(), "op", func(context.Context, int) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error retried: %d calls, err %v", calls, err)
	}
}

func TestTransientErrorRetriesUntilSuccess(t *testing.T) {
	calls := 0
	var attempts []int
	err := fast(5).Do(context.Background(), "op", func(_ context.Context, attempt int) error {
		calls++
		attempts = append(attempts, attempt)
		if calls < 3 {
			return Mark(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success on 3rd call, got %d calls, err %v", calls, err)
	}
	if fmt.Sprint(attempts) != "[1 2 3]" {
		t.Fatalf("attempt numbers %v", attempts)
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	calls := 0
	err := fast(3).Do(context.Background(), "op", func(context.Context, int) error {
		calls++
		return Mark(errors.New("still down"))
	})
	if calls != 3 {
		t.Fatalf("made %d calls, want 3", calls)
	}
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("exhaustion not surfaced: %v", err)
	}
	if !IsTransient(err) {
		t.Fatal("exhausted error lost its transient classification")
	}
}

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	err := (Policy{}).Do(context.Background(), "op", func(context.Context, int) error {
		calls++
		return Mark(errors.New("flaky"))
	})
	if calls != 1 || err == nil {
		t.Fatalf("zero policy made %d calls (err %v), want exactly 1", calls, err)
	}
	if strings.Contains(err.Error(), "gave up") {
		t.Fatalf("single-attempt error should not mention giving up: %v", err)
	}
}

func TestInjectedFaultsAreTransient(t *testing.T) {
	r := faultinject.NewRegistry()
	if err := r.Load(1, []faultinject.Rule{{Point: "p", Kind: faultinject.KindError, Times: 2}}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := fast(5).Do(context.Background(), "op", func(context.Context, int) error {
		calls++
		return r.Fire("p")
	})
	if err != nil || calls != 3 {
		t.Fatalf("injected faults not retried through: %d calls, err %v", calls, err)
	}
}

func TestCancelledContextStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 10} // real ctx-aware sleep
	err := p.Do(ctx, "op", func(context.Context, int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return Mark(errors.New("flaky"))
	})
	if err == nil || calls > 3 {
		t.Fatalf("cancel did not stop retries: %d calls, err %v", calls, err)
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   80 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.5,
		Rand:       func() float64 { return 0 }, // no jitter
	}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Full jitter draw adds Jitter fraction but still respects the cap.
	p.Rand = func() float64 { return 0.999999 }
	if got := p.Delay(1); got < 14*time.Millisecond || got > 15*time.Millisecond {
		t.Errorf("jittered Delay(1) = %v, want ~15ms", got)
	}
	if got := p.Delay(4); got > 80*time.Millisecond {
		t.Errorf("jittered Delay(4) = %v exceeds cap", got)
	}
}

func TestMarkNil(t *testing.T) {
	if Mark(nil) != nil {
		t.Fatal("Mark(nil) != nil")
	}
	if IsTransient(nil) {
		t.Fatal("nil is transient")
	}
	if IsTransient(errors.New("x")) {
		t.Fatal("plain error is transient")
	}
	wrapped := fmt.Errorf("outer: %w", Mark(errors.New("inner")))
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient lost classification")
	}
}
