// Package retry is the pipeline's transient-failure policy: bounded
// attempts with exponential backoff and jitter, gated on an error
// classification so permanent errors (bad specs, unknown systems)
// never burn retry budget. The paper's Principles 5–6 assume unattended
// automation keeps producing trustworthy perflogs through infrastructure
// hiccups; this package is where that tolerance is encoded, and its
// retries_total / retry_exhausted_total counters are where it is audited.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/telemetry"
)

var (
	metricRetries = telemetry.DefaultRegistry.Counter(
		"retry_retries_total",
		"Retried attempts after a transient failure, by operation.",
		"op")
	metricExhausted = telemetry.DefaultRegistry.Counter(
		"retry_exhausted_total",
		"Operations that failed transiently on every allowed attempt, by operation.",
		"op")
)

// Transient is the classification hook: errors that implement it (for
// example faultinject.Fault, or anything wrapped by Mark) declare
// whether retrying can help.
type Transient interface {
	Transient() bool
}

// IsTransient reports whether err (or anything it wraps) declares
// itself retryable.
func IsTransient(err error) bool {
	var t Transient
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// transientErr marks a wrapped error retryable.
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// Mark wraps err so IsTransient reports true (nil stays nil).
func Mark(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// Policy configures retries for one class of operations. The zero
// Policy performs exactly one attempt (no retries).
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<=1 means no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random
	// and added, de-synchronising retry herds (default 0.2; 0 < j <= 1).
	Jitter float64
	// Rand supplies the jitter draw in [0,1) (default math/rand; fix it
	// in tests for deterministic schedules).
	Rand func() float64
	// Sleep waits between attempts (default a context-aware sleep; tests
	// substitute a no-op to run fast).
	Sleep func(ctx context.Context, d time.Duration) error
}

// Default is the pipeline's standard tolerance: three attempts, 10ms
// base backoff doubling to at most 250ms.
func Default() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
}

// Delay returns the backoff before retry number retryNo (1-based),
// jitter included.
func (p Policy) Delay(retryNo int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < retryNo; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	jitter := p.Jitter
	if jitter <= 0 {
		jitter = 0.2
	}
	draw := rand.Float64
	if p.Rand != nil {
		draw = p.Rand
	}
	d += d * jitter * draw()
	if d > float64(maxd) {
		d = float64(maxd)
	}
	return time.Duration(d)
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs f until it succeeds, fails permanently, exhausts the attempt
// budget, or the context dies. f receives the 1-based attempt number so
// callers can tag per-attempt spans. Each retry bumps
// retries_total{op}; a transient error on the final attempt bumps
// retry_exhausted_total{op} and is returned wrapped with the attempt
// count.
func (p Policy) Do(ctx context.Context, op string, f func(ctx context.Context, attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = f(ctx, attempt)
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= attempts {
			if attempts > 1 {
				metricExhausted.With(op).Inc()
				return fmt.Errorf("%s: gave up after %d attempts: %w", op, attempts, err)
			}
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		metricRetries.With(op).Inc()
		if serr := p.sleep(ctx, p.Delay(attempt)); serr != nil {
			return err
		}
	}
}
