// Package faultinject is a deterministic, seedable fault-injection
// registry. Production code declares named injection points on its hot
// paths (scheduler submission, DAG-node installs, perflog appends,
// perfstore re-sync reads, benchd handlers); tests and soak harnesses
// arm the registry with a schedule of rules, and every decision the
// registry makes is a pure function of (seed, rule, per-point call
// index) — the same seed replays the same fault sequence.
//
// When the registry is disarmed (the default) every injection point is
// a single atomic load, so instrumented hot paths cost nothing in
// production.
//
// A schedule is a comma-separated list of rules, each
// "point:kind[:key=value]...":
//
//	scheduler.submit:error:rate=0.3          30% of submits fail
//	buildsys.install:error:after=2:times=1   the 3rd install fails, once
//	perfstore.read:short:bytes=64:every=5    every 5th sync reads 64 bytes
//	perflog.sync:error:times=2               the first two fsyncs fail
//	core.append:delay:d=50ms                 every append sleeps 50ms
//
// Kinds are "error" (return a *Fault), "delay" (sleep, then proceed),
// and "short" (truncate a reader after N bytes). Gates compose: "rate"
// draws from the rule's seeded PRNG, "after" skips the first N calls,
// "every" fires on every Nth call, "times" caps total fires. Injected
// errors are transient (retryable) unless the rule says "permanent=1".
//
// Schedules load from the environment (BENCH_FAULTS / BENCH_FAULT_SEED)
// via LoadEnv, or programmatically via Load.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Injection-point telemetry: calls are counted only while the registry
// is armed, fires always. Both land in /metrics, so a chaos run can
// audit exactly which faults it injected.
var (
	metricCalls = telemetry.DefaultRegistry.Counter(
		"faultinject_calls_total",
		"Armed injection-point evaluations, by point.",
		"point")
	metricFired = telemetry.DefaultRegistry.Counter(
		"faultinject_fired_total",
		"Faults actually injected, by point and kind.",
		"point", "kind")
)

// Fault kinds.
const (
	KindError = "error" // return a *Fault from the injection point
	KindDelay = "delay" // sleep for Delay, then proceed normally
	KindShort = "short" // truncate a Reader after Bytes bytes
)

// Rule arms one injection point with one fault policy.
type Rule struct {
	Point string // injection-point name, e.g. "scheduler.submit"
	Kind  string // KindError, KindDelay or KindShort

	// Gates. All configured gates must pass for the rule to fire.
	Rate  float64 // probability per call from the rule's seeded PRNG (0 = always)
	After int     // skip the first After calls to the point
	Every int     // fire only on every Every-th call (0 = every call)
	Times int     // stop after Times fires (0 = unlimited)

	Delay     time.Duration // KindDelay: how long to sleep
	Bytes     int64         // KindShort: bytes delivered before the cut
	Msg       string        // optional error text override
	Permanent bool          // error faults are transient unless set
}

// Fault is the typed error an armed "error" rule injects.
type Fault struct {
	Point     string
	Msg       string
	permanent bool
}

func (f *Fault) Error() string {
	msg := f.Msg
	if msg == "" {
		msg = "injected fault"
	}
	return fmt.Sprintf("faultinject: %s: %s", f.Point, msg)
}

// Transient reports whether the fault models a recoverable condition —
// the retry layer's classification hook.
func (f *Fault) Transient() bool { return !f.permanent }

// Is reports whether err is (or wraps) an injected fault.
func Is(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// armedRule is a Rule plus its mutable firing state.
type armedRule struct {
	Rule
	rng   *rand.Rand
	fires int
}

// point tracks the per-call state of one injection point.
type point struct {
	mu    sync.Mutex
	rules []*armedRule
	calls int
}

// Registry holds an armed fault schedule. The zero registry is valid
// and disarmed.
type Registry struct {
	armed  atomic.Bool
	mu     sync.Mutex
	seed   int64
	points map[string]*point
}

// NewRegistry returns an empty, disarmed registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry every injection point consults.
var Default = NewRegistry()

// Load replaces the registry's schedule. Each rule gets its own PRNG
// stream derived from (seed, point, kind, rule index), so decisions are
// independent of other rules and reproducible for a given seed: the
// i-th call to a point always sees the i-th draw of its rules' streams.
// Loading an empty schedule disarms the registry.
func (r *Registry) Load(seed int64, rules []Rule) error {
	pts := map[string]*point{}
	for i, rule := range rules {
		if rule.Point == "" {
			return fmt.Errorf("faultinject: rule %d has no point", i)
		}
		switch rule.Kind {
		case KindError, KindDelay, KindShort:
		default:
			return fmt.Errorf("faultinject: rule %d (%s): unknown kind %q", i, rule.Point, rule.Kind)
		}
		if rule.Rate < 0 || rule.Rate > 1 {
			return fmt.Errorf("faultinject: rule %d (%s): rate %v out of [0,1]", i, rule.Point, rule.Rate)
		}
		p := pts[rule.Point]
		if p == nil {
			p = &point{}
			pts[rule.Point] = p
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%s|%d", rule.Point, rule.Kind, i)
		p.rules = append(p.rules, &armedRule{
			Rule: rule,
			rng:  rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
		})
	}
	r.mu.Lock()
	r.seed = seed
	r.points = pts
	r.mu.Unlock()
	r.armed.Store(len(pts) > 0)
	return nil
}

// Reset disarms the registry and clears its schedule.
func (r *Registry) Reset() { r.Load(0, nil) }

// Armed reports whether any rule is loaded.
func (r *Registry) Armed() bool { return r.armed.Load() }

// decide advances the point's call counter and returns the first rule
// that fires this call, or nil. Rate draws happen only on gated-in
// calls, so the decision for call N is a pure function of the schedule,
// the seed, and N.
func (r *Registry) decide(pt string, kinds ...string) *armedRule {
	if !r.armed.Load() {
		return nil
	}
	r.mu.Lock()
	p := r.points[pt]
	r.mu.Unlock()
	if p == nil {
		return nil
	}
	metricCalls.With(pt).Inc()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	for _, ar := range p.rules {
		if len(kinds) > 0 && !contains(kinds, ar.Kind) {
			continue
		}
		if ar.Times > 0 && ar.fires >= ar.Times {
			continue
		}
		if p.calls <= ar.After {
			continue
		}
		if ar.Every > 1 && p.calls%ar.Every != 0 {
			continue
		}
		if ar.Rate > 0 && ar.rng.Float64() >= ar.Rate {
			continue
		}
		ar.fires++
		metricFired.With(pt, ar.Kind).Inc()
		return ar
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Fire evaluates an injection point: an armed "error" rule returns a
// *Fault, an armed "delay" rule sleeps then returns nil, and a disarmed
// point returns nil at the cost of one atomic load.
func (r *Registry) Fire(pt string) error {
	return r.FireContext(context.Background(), pt)
}

// FireContext is Fire with context-aware delays: an injected delay
// returns early with the context's error when the deadline passes
// first, which is how per-stage timeouts observe injected hangs.
func (r *Registry) FireContext(ctx context.Context, pt string) error {
	ar := r.decide(pt, KindError, KindDelay)
	if ar == nil {
		return nil
	}
	switch ar.Kind {
	case KindDelay:
		t := time.NewTimer(ar.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("faultinject: %s: injected delay interrupted: %w", pt, ctx.Err())
		}
	default:
		return &Fault{Point: pt, Msg: ar.Msg, permanent: ar.Permanent}
	}
}

// ShortRead evaluates an injection point for "short" rules, returning
// the byte budget to deliver before cutting the stream.
func (r *Registry) ShortRead(pt string) (int64, bool) {
	ar := r.decide(pt, KindShort)
	if ar == nil {
		return 0, false
	}
	return ar.Bytes, true
}

// Reader wraps rd with the point's short-read faults: when a "short"
// rule fires, the returned reader delivers at most the rule's byte
// budget and then reports EOF — a torn read mid-line, exactly what a
// crashed writer or a truncated NFS page leaves behind. Disarmed points
// return rd unchanged.
func (r *Registry) Reader(pt string, rd io.Reader) io.Reader {
	n, ok := r.ShortRead(pt)
	if !ok {
		return rd
	}
	return io.LimitReader(rd, n)
}

// Points returns the armed injection-point names, sorted.
func (r *Registry) Points() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.points))
	for pt := range r.points {
		out = append(out, pt)
	}
	sort.Strings(out)
	return out
}

// Package-level wrappers over Default, what instrumented call sites use.

// Fire evaluates pt against the Default registry.
func Fire(pt string) error { return Default.Fire(pt) }

// FireContext evaluates pt against the Default registry with ctx-aware
// delays.
func FireContext(ctx context.Context, pt string) error { return Default.FireContext(ctx, pt) }

// Reader wraps rd with the Default registry's short-read faults for pt.
func Reader(pt string, rd io.Reader) io.Reader { return Default.Reader(pt, rd) }

// Load replaces the Default registry's schedule.
func Load(seed int64, rules []Rule) error { return Default.Load(seed, rules) }

// Reset disarms the Default registry.
func Reset() { Default.Reset() }

// Armed reports whether the Default registry has a schedule loaded.
func Armed() bool { return Default.Armed() }

// ParseSchedule parses the "point:kind[:key=value]..." rule list
// described in the package comment.
func ParseSchedule(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("faultinject: rule %q needs point:kind", part)
		}
		rule := Rule{Point: fields[0], Kind: fields[1]}
		switch rule.Kind {
		case KindError, KindDelay, KindShort:
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown kind %q", part, rule.Kind)
		}
		for _, kv := range fields[2:] {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				return nil, fmt.Errorf("faultinject: rule %q: option %q is not key=value", part, kv)
			}
			var err error
			switch key {
			case "rate":
				rule.Rate, err = strconv.ParseFloat(val, 64)
			case "after":
				rule.After, err = strconv.Atoi(val)
			case "every":
				rule.Every, err = strconv.Atoi(val)
			case "times":
				rule.Times, err = strconv.Atoi(val)
			case "bytes":
				rule.Bytes, err = strconv.ParseInt(val, 10, 64)
			case "d", "delay":
				rule.Delay, err = time.ParseDuration(val)
			case "msg":
				rule.Msg = val
			case "permanent":
				rule.Permanent = val == "1" || val == "true"
			default:
				return nil, fmt.Errorf("faultinject: rule %q: unknown option %q", part, key)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: bad %s: %v", part, key, err)
			}
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// Environment variables LoadEnv reads.
const (
	EnvSchedule = "BENCH_FAULTS"
	EnvSeed     = "BENCH_FAULT_SEED"
)

// LoadEnv arms the Default registry from BENCH_FAULTS (a schedule
// string) and BENCH_FAULT_SEED (int64, default 1), using the given
// lookup (os.LookupEnv in the binaries). It is a no-op when BENCH_FAULTS
// is unset or empty.
func LoadEnv(lookup func(string) (string, bool)) error {
	sched, ok := lookup(EnvSchedule)
	if !ok || strings.TrimSpace(sched) == "" {
		return nil
	}
	seed := int64(1)
	if v, ok := lookup(EnvSeed); ok && v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("faultinject: bad %s %q: %v", EnvSeed, v, err)
		}
		seed = n
	}
	rules, err := ParseSchedule(sched)
	if err != nil {
		return err
	}
	return Load(seed, rules)
}
