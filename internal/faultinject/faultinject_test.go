package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	r := NewRegistry()
	if r.Armed() {
		t.Fatal("empty registry reports armed")
	}
	for i := 0; i < 100; i++ {
		if err := r.Fire("anything"); err != nil {
			t.Fatalf("disarmed fire returned %v", err)
		}
	}
}

func TestErrorRuleGates(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindError, After: 2, Times: 2}}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 10; i++ {
		if err := r.Fire("p"); err != nil {
			fired = append(fired, i)
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("call %d: not a *Fault: %v", i, err)
			}
			if !f.Transient() {
				t.Fatalf("call %d: default fault should be transient", i)
			}
			if !Is(err) {
				t.Fatalf("call %d: Is() false for %v", i, err)
			}
		}
	}
	if fmt.Sprint(fired) != "[3 4]" {
		t.Fatalf("after=2 times=2 fired on calls %v, want [3 4]", fired)
	}
}

func TestEveryGate(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindError, Every: 3}}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 9; i++ {
		if r.Fire("p") != nil {
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[3 6 9]" {
		t.Fatalf("every=3 fired on calls %v, want [3 6 9]", fired)
	}
}

func TestPermanentFault(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindError, Permanent: true, Msg: "disk gone"}}); err != nil {
		t.Fatal(err)
	}
	err := r.Fire("p")
	var f *Fault
	if !errors.As(err, &f) || f.Transient() {
		t.Fatalf("want permanent fault, got %v", err)
	}
	if !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("msg not carried: %v", err)
	}
}

// TestSameSeedSameSequence is the reproducibility contract the chaos
// harness depends on: for a serial caller, the set of call indices that
// fault is a pure function of (seed, schedule).
func TestSameSeedSameSequence(t *testing.T) {
	sequence := func(seed int64) []int {
		r := NewRegistry()
		if err := r.Load(seed, []Rule{{Point: "p", Kind: KindError, Rate: 0.3}}); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 1; i <= 200; i++ {
			if r.Fire("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := sequence(42), sequence(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("rate=0.3 fired %d/200 times; gating broken", len(a))
	}
	c := sequence(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestDelayRuleRespectsContext(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindDelay, Delay: 10 * time.Second}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r.FireContext(ctx, "p")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

func TestDelayRuleSleepsThenProceeds(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindDelay, Delay: 5 * time.Millisecond}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Fire("p"); err != nil {
		t.Fatalf("delay rule returned error %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay did not sleep")
	}
}

func TestShortReader(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindShort, Bytes: 4, Times: 1}}); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r.Reader("p", strings.NewReader("hello world")))
	if err != nil || string(got) != "hell" {
		t.Fatalf("short reader gave %q, %v; want \"hell\"", got, err)
	}
	// times=1 exhausted: the stream is whole again.
	got, err = io.ReadAll(r.Reader("p", strings.NewReader("hello world")))
	if err != nil || string(got) != "hello world" {
		t.Fatalf("second read gave %q, %v", got, err)
	}
}

// Short rules must not consume error/delay decisions and vice versa:
// Fire skips "short" rules, Reader skips "error" rules.
func TestKindsAreIndependent(t *testing.T) {
	r := NewRegistry()
	err := r.Load(1, []Rule{
		{Point: "p", Kind: KindShort, Bytes: 1},
		{Point: "p", Kind: KindError, Times: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fire("p"); err == nil {
		t.Fatal("error rule did not fire through Fire despite preceding short rule")
	}
}

func TestParseSchedule(t *testing.T) {
	rules, err := ParseSchedule(
		"scheduler.submit:error:rate=0.25:times=3, buildsys.install:error:after=1," +
			"perfstore.read:short:bytes=64:every=5,perflog.sync:delay:d=50ms:msg=slow disk,x:error:permanent=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rules))
	}
	if rules[0].Rate != 0.25 || rules[0].Times != 3 || rules[0].Point != "scheduler.submit" {
		t.Fatalf("rule 0 mis-parsed: %+v", rules[0])
	}
	if rules[2].Kind != KindShort || rules[2].Bytes != 64 || rules[2].Every != 5 {
		t.Fatalf("rule 2 mis-parsed: %+v", rules[2])
	}
	if rules[3].Delay != 50*time.Millisecond || rules[3].Msg != "slow disk" {
		t.Fatalf("rule 3 mis-parsed: %+v", rules[3])
	}
	if !rules[4].Permanent {
		t.Fatalf("rule 4 mis-parsed: %+v", rules[4])
	}
	for _, bad := range []string{"nokind", "p:badkind", "p:error:rate=x", "p:error:wat=1", "p:error:noeq"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestLoadRejectsBadRules(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Kind: KindError}}); err == nil {
		t.Error("rule without point accepted")
	}
	if err := r.Load(1, []Rule{{Point: "p", Kind: "nope"}}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindError, Rate: 1.5}}); err == nil {
		t.Error("rate out of range accepted")
	}
}

func TestLoadEnv(t *testing.T) {
	env := map[string]string{
		EnvSchedule: "p:error:times=1",
		EnvSeed:     "7",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	if err := LoadEnv(lookup); err != nil {
		t.Fatal(err)
	}
	defer Reset()
	if !Armed() {
		t.Fatal("LoadEnv did not arm the default registry")
	}
	if err := Fire("p"); err == nil {
		t.Fatal("armed point did not fire")
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("times=1 exhausted but fired again: %v", err)
	}
	Reset()
	if err := LoadEnv(func(string) (string, bool) { return "", false }); err != nil {
		t.Fatalf("no-op LoadEnv errored: %v", err)
	}
	if Armed() {
		t.Fatal("no-op LoadEnv armed the registry")
	}
	env[EnvSeed] = "notanint"
	if err := LoadEnv(lookup); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestPointsListing(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{
		{Point: "b", Kind: KindError},
		{Point: "a", Kind: KindDelay, Delay: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(r.Points()); got != "[a b]" {
		t.Fatalf("Points() = %v", got)
	}
	r.Reset()
	if r.Armed() || len(r.Points()) != 0 {
		t.Fatal("Reset did not disarm")
	}
}

// Concurrent firing must be race-clean and respect Times exactly.
func TestConcurrentFireRespectsTimes(t *testing.T) {
	r := NewRegistry()
	if err := r.Load(1, []Rule{{Point: "p", Kind: KindError, Times: 25}}); err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	errs := make(chan error, goroutines*per)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				errs <- r.Fire("p")
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(errs)
	fired := 0
	for err := range errs {
		if err != nil {
			fired++
		}
	}
	if fired != 25 {
		t.Fatalf("times=25 fired %d times under concurrency", fired)
	}
}
