package service

// Tests for the /v1/schedules surface and the continuous-benchmarking
// loop end to end: schedules fire runs with no client request, their
// completions feed back into scheduler state, and the registry
// survives a daemon reboot via --data-dir.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cbsched"
	"repro/internal/eventbus"
)

// newSchedServer boots a daemon with a fast tick loop and a persistent
// data dir, returning the dirs so a second boot can reuse them.
func newSchedServer(t *testing.T, perflogRoot, dataDir string) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot:  perflogRoot,
		DataDir:      dataDir,
		InstallTree:  dir + "/install",
		Workers:      2,
		QueueDepth:   16,
		TickInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return srv, ts
}

func deleteReq(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestScheduleValidation: schedules are vetted like run submissions —
// unknown benchmarks or systems, missing triggers, and malformed
// intervals are 400s, never registered.
func TestScheduleValidation(t *testing.T) {
	dir := t.TempDir()
	_, ts := newSchedServer(t, dir+"/perflogs", "")

	for name, body := range map[string]string{
		"unknown benchmark": `{"benchmark":"nope","system":"archer2","every":"1m"}`,
		"unknown system":    `{"benchmark":"babelstream-omp","system":"nope","every":"1m"}`,
		"no trigger":        `{"benchmark":"babelstream-omp","system":"archer2"}`,
		"bad every":         `{"benchmark":"babelstream-omp","system":"archer2","every":"often"}`,
		"negative layout":   `{"benchmark":"babelstream-omp","system":"archer2","every":"1m","num_tasks":-1}`,
		"unknown field":     `{"benchmark":"babelstream-omp","system":"archer2","every":"1m","cron":"* *"}`,
	} {
		if code := postJSON(t, ts.URL+"/v1/schedules", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	var list struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/schedules", &list); code != http.StatusOK || list.Count != 0 {
		t.Errorf("list after rejects: code=%d count=%d", code, list.Count)
	}
}

// TestScheduleCRUD: create, read, list, delete over HTTP.
func TestScheduleCRUD(t *testing.T) {
	dir := t.TempDir()
	_, ts := newSchedServer(t, dir+"/perflogs", "")

	var created cbsched.Status
	code := postJSON(t, ts.URL+"/v1/schedules",
		`{"name":"nightly","benchmark":"babelstream-omp","system":"archer2","every":"1h"}`, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}
	if created.ID == "" || created.Name != "nightly" || time.Duration(created.Every) != time.Hour {
		t.Fatalf("created = %+v", created)
	}
	if created.NextRunAt.IsZero() {
		t.Error("created schedule has no next_run_at")
	}

	var got cbsched.Status
	if code := getJSON(t, ts.URL+"/v1/schedules/"+created.ID, &got); code != http.StatusOK || got.ID != created.ID {
		t.Fatalf("get: code=%d got=%+v", code, got)
	}
	var list struct {
		Schedules []cbsched.Status `json:"schedules"`
		Count     int              `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/schedules", &list); code != http.StatusOK || list.Count != 1 {
		t.Fatalf("list: code=%d %+v", code, list)
	}

	if code := deleteReq(t, ts.URL+"/v1/schedules/"+created.ID); code != http.StatusNoContent {
		t.Fatalf("delete status = %d", code)
	}
	if code := deleteReq(t, ts.URL+"/v1/schedules/"+created.ID); code != http.StatusNotFound {
		t.Errorf("double delete status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/schedules/"+created.ID, nil); code != http.StatusNotFound {
		t.Errorf("get after delete status = %d, want 404", code)
	}
}

// TestScheduledRunsFire is the tentpole acceptance: an interval
// schedule produces completed runs with NO client submissions, each
// run's events carry the schedule id, and completions feed back into
// the schedule's visible state.
func TestScheduledRunsFire(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newSchedServer(t, dir+"/perflogs", "")

	sub, err := srv.Bus().Subscribe([]string{eventbus.TypeScheduleFired, eventbus.TypeRunFinished}, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var created cbsched.Status
	code := postJSON(t, ts.URL+"/v1/schedules",
		`{"benchmark":"babelstream-omp","system":"archer2","every":"150ms"}`, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}

	// Two full cycles prove re-arming, not just a single firing.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fired, finished := 0, 0
	for finished < 2 {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("waiting for scheduled events (fired=%d finished=%d): %v", fired, finished, err)
		}
		if ev.Data["schedule_id"] != created.ID {
			t.Fatalf("event %s has schedule_id=%q, want %q", ev.Type, ev.Data["schedule_id"], created.ID)
		}
		switch ev.Type {
		case eventbus.TypeScheduleFired:
			fired++
			if tr := ev.Data["trigger"]; tr != "interval" {
				t.Errorf("trigger = %q, want interval", tr)
			}
		case eventbus.TypeRunFinished:
			finished++
			if ev.Data["status"] != StatusCompleted {
				t.Errorf("scheduled run status = %q", ev.Data["status"])
			}
		}
	}
	if fired < 2 {
		t.Errorf("saw %d schedule.fired for %d finished runs", fired, finished)
	}

	var st cbsched.Status
	if code := getJSON(t, ts.URL+"/v1/schedules/"+created.ID, &st); code != http.StatusOK {
		t.Fatalf("get status = %d", code)
	}
	if st.Fires < 2 || st.LastRunID == "" {
		t.Errorf("schedule state after runs = %+v", st)
	}
	if st.ConsecutiveFailures != 0 {
		t.Errorf("consecutive_failures = %d after successful runs", st.ConsecutiveFailures)
	}

	// The scheduled runs are real runs: listed, completed, ingested.
	var runs struct {
		Runs []runView `json:"runs"`
	}
	if code := getJSON(t, ts.URL+"/v1/runs", &runs); code != http.StatusOK {
		t.Fatalf("list runs status = %d", code)
	}
	if len(runs.Runs) < 2 {
		t.Errorf("scheduled runs listed = %d, want >= 2", len(runs.Runs))
	}

	// /healthz reports the scheduler block.
	var health struct {
		Scheduler struct {
			Running   bool   `json:"running"`
			Schedules int    `json:"schedules"`
			Fires     uint64 `json:"fires"`
		} `json:"scheduler"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if !health.Scheduler.Running || health.Scheduler.Schedules != 1 || health.Scheduler.Fires < 2 {
		t.Errorf("healthz scheduler = %+v", health.Scheduler)
	}
}

// TestOnBuildChangeSchedule: a pure build-change schedule fires once to
// establish its baseline hash, then stays quiet while the build DAG is
// stable.
func TestOnBuildChangeSchedule(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newSchedServer(t, dir+"/perflogs", "")

	sub, err := srv.Bus().Subscribe([]string{eventbus.TypeRunFinished}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var created cbsched.Status
	code := postJSON(t, ts.URL+"/v1/schedules",
		`{"benchmark":"babelstream-omp","system":"archer2","on_build_change":true}`, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}

	// Baseline firing: no recorded hash yet, so the first check fires.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); err != nil {
		t.Fatalf("baseline build-change run never finished: %v", err)
	}

	// The completed run's build hash becomes the baseline...
	var st cbsched.Status
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/schedules/"+created.ID, &st); code != http.StatusOK {
			t.Fatalf("get status = %d", code)
		}
		if st.LastBuildHash != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("schedule never recorded a build hash baseline")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// ...and with an unchanged DAG the schedule stays quiet: many ticks
	// pass with no second firing.
	quiet, qcancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer qcancel()
	if ev, err := sub.Next(quiet); err == nil {
		t.Errorf("unchanged build hash re-fired the schedule: %+v", ev)
	}
	if code := getJSON(t, ts.URL+"/v1/schedules/"+created.ID, &st); code != http.StatusOK || st.Fires != 1 {
		t.Errorf("fires = %d, want exactly the baseline firing", st.Fires)
	}
}

// TestSchedulePersistence: the registry survives a daemon reboot —
// schedules restore from --data-dir with their build-hash baselines,
// and new registrations never collide with restored IDs.
func TestSchedulePersistence(t *testing.T) {
	root := t.TempDir()
	perflogRoot := filepath.Join(root, "perflogs")
	dataDir := filepath.Join(root, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}

	srv1, ts1 := newSchedServer(t, perflogRoot, dataDir)
	var a, b cbsched.Status
	if code := postJSON(t, ts1.URL+"/v1/schedules",
		`{"name":"hourly","benchmark":"babelstream-omp","system":"archer2","every":"1h"}`, &a); code != http.StatusCreated {
		t.Fatalf("create a = %d", code)
	}
	if code := postJSON(t, ts1.URL+"/v1/schedules",
		`{"name":"on-change","benchmark":"hpgmg-fv","system":"csd3","every":"2h","on_build_change":true}`, &b); code != http.StatusCreated {
		t.Fatalf("create b = %d", code)
	}
	// A deleted schedule must NOT resurrect on reboot.
	var c cbsched.Status
	if code := postJSON(t, ts1.URL+"/v1/schedules",
		`{"benchmark":"babelstream-omp","system":"cosma8","every":"3h"}`, &c); code != http.StatusCreated {
		t.Fatalf("create c = %d", code)
	}
	if code := deleteReq(t, ts1.URL+"/v1/schedules/"+c.ID); code != http.StatusNoContent {
		t.Fatalf("delete c = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dataDir, schedulesFile)); err != nil {
		t.Fatalf("registry file: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	ts1.Close()

	// Reboot on the same dirs.
	srv2, ts2 := newSchedServer(t, perflogRoot, dataDir)
	var list struct {
		Schedules []cbsched.Status `json:"schedules"`
		Count     int              `json:"count"`
	}
	if code := getJSON(t, ts2.URL+"/v1/schedules", &list); code != http.StatusOK {
		t.Fatalf("list after reboot = %d", code)
	}
	if list.Count != 2 {
		t.Fatalf("restored %d schedules, want 2 (deleted one must stay deleted): %+v", list.Count, list.Schedules)
	}
	byID := map[string]cbsched.Status{}
	for _, st := range list.Schedules {
		byID[st.ID] = st
	}
	if got := byID[a.ID]; got.Name != "hourly" || time.Duration(got.Every) != time.Hour {
		t.Errorf("restored a = %+v", got)
	}
	if got := byID[b.ID]; got.Name != "on-change" || !got.OnBuildChange {
		t.Errorf("restored b = %+v", got)
	}
	if srv2.Scheduler() == nil || !srv2.Scheduler().Running() {
		t.Error("scheduler not running after reboot")
	}

	// New registrations continue past the restored ID range (a deleted
	// schedule's slot may be reused — it no longer exists — but a live
	// restored ID must never be).
	var d cbsched.Status
	if code := postJSON(t, ts2.URL+"/v1/schedules",
		`{"benchmark":"babelstream-omp","system":"archer2","every":"4h"}`, &d); code != http.StatusCreated {
		t.Fatalf("create d = %d", code)
	}
	if d.ID == a.ID || d.ID == b.ID {
		t.Errorf("new schedule collided with a restored ID: %s", d.ID)
	}
}
