package service

// Service-level tests for the tiered storage engine: healthz storage
// detail, seal-on-shutdown → zero-reparse boot, and the degraded
// read-only mode entered when the segment manifest is unreadable.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fom"
	"repro/internal/perflog"
)

// seedTieredTree writes a few perflog entries under root.
func seedTieredTree(t *testing.T, root string) int {
	t.Helper()
	base := time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)
	n := 0
	for _, sys := range []string{"archer2", "csd3"} {
		for i := 0; i < 3; i++ {
			e := &perflog.Entry{
				Time: base.Add(time.Duration(n) * time.Hour), Benchmark: "hpgmg-fv",
				System: sys, Partition: "compute", Environ: "gcc",
				Spec: "hpgmg%gcc", JobID: n + 1, Result: "pass",
				FOMs:  map[string]fom.Value{"l0": {Name: "l0", Value: float64(100 + n), Unit: "MDOF/s"}},
				Extra: map[string]string{},
			}
			if err := perflog.Append(root, sys, "hpgmg-fv", e); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	return n
}

// healthView decodes the /healthz fields these tests assert on.
type healthView struct {
	Status  string `json:"status"`
	Entries int    `json:"entries"`
	Storage struct {
		Mode                string `json:"mode"`
		DataDir             string `json:"data_dir"`
		HeadEntries         int    `json:"head_entries"`
		SealedEntries       int    `json:"sealed_entries"`
		SealedSegments      int    `json:"sealed_segments"`
		ManifestGeneration  uint64 `json:"manifest_generation"`
		SegmentLoadFailures int    `json:"segment_load_failures"`
	} `json:"storage"`
}

func newTieredServer(t *testing.T, perflogRoot, dataDir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		PerflogRoot:    perflogRoot,
		DataDir:        dataDir,
		InstallTree:    t.TempDir(),
		Workers:        1,
		QueueDepth:     4,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// TestTieredHealthzStorageDetail: /healthz reports the storage tier
// honestly on both sides of a seal.
func TestTieredHealthzStorageDetail(t *testing.T) {
	perflogRoot := filepath.Join(t.TempDir(), "perflogs")
	n := seedTieredTree(t, perflogRoot)
	dataDir := t.TempDir()
	srv, ts := newTieredServer(t, perflogRoot, dataDir)

	var h healthView
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Status != "ok" || h.Storage.Mode != "tiered" || h.Storage.DataDir != dataDir {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Storage.HeadEntries != n || h.Storage.SealedSegments != 0 {
		t.Fatalf("pre-seal storage = %+v", h.Storage)
	}

	if _, err := srv.Store().Seal(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Storage.HeadEntries != 0 || h.Storage.SealedEntries != n ||
		h.Storage.SealedSegments != 1 || h.Storage.ManifestGeneration == 0 {
		t.Fatalf("post-seal storage = %+v", h.Storage)
	}
	if h.Entries != n {
		t.Fatalf("entries = %d, want %d", h.Entries, n)
	}

	// The storage tier is visible in the Prometheus exposition too.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"perfstore_segments_sealed_total",
		"perfstore_seal_seconds",
		"perfstore_sealed_segments 1",
		"perfstore_head_entries 0",
		"perfstore_ingest_bytes_total",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q after seal", metric)
		}
	}
}

// TestTieredSealOnShutdownZeroReparse: a graceful shutdown seals the
// head, so the next daemon boot against the same data dir re-parses
// zero perflog bytes.
func TestTieredSealOnShutdownZeroReparse(t *testing.T) {
	perflogRoot := filepath.Join(t.TempDir(), "perflogs")
	n := seedTieredTree(t, perflogRoot)
	dataDir := t.TempDir()

	srv1, err := New(Config{
		PerflogRoot: perflogRoot,
		DataDir:     dataDir,
		InstallTree: t.TempDir(),
		Workers:     1,
		QueueDepth:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv1.Store().Stats().BytesParsed; got == 0 {
		t.Fatal("first boot should have parsed the perflog tree")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{
		PerflogRoot: perflogRoot,
		DataDir:     dataDir,
		InstallTree: t.TempDir(),
		Workers:     1,
		QueueDepth:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	st := srv2.Store().Stats()
	if st.BytesParsed != 0 {
		t.Fatalf("second boot parsed %d perflog bytes, want 0", st.BytesParsed)
	}
	if st.Entries != n || st.SealedEntries != n {
		t.Fatalf("second boot stats = %+v", st)
	}
}

// TestTieredDegradedReadOnly: an unreadable manifest must not take the
// daemon down — it boots read-only from the text tree, reports
// "degraded" on /healthz, and refuses submissions with a 503.
func TestTieredDegradedReadOnly(t *testing.T) {
	perflogRoot := filepath.Join(t.TempDir(), "perflogs")
	n := seedTieredTree(t, perflogRoot)
	dataDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dataDir, "MANIFEST"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTieredServer(t, perflogRoot, dataDir)
	if !srv.Degraded() {
		t.Fatal("server with corrupt manifest is not degraded")
	}

	var h healthView
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Status != "degraded" || h.Storage.Mode != "degraded-readonly" {
		t.Fatalf("healthz = %+v", h)
	}
	// Reads still work: the store was rebuilt from the text tree.
	if h.Entries != n {
		t.Fatalf("degraded boot serves %d entries, want %d", h.Entries, n)
	}
	var q struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/query?benchmark=hpgmg-fv", &q); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if q.Count != n {
		t.Fatalf("degraded query count = %d, want %d", q.Count, n)
	}

	// Writes are refused with an honest 503.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"benchmark":"babelstream-omp","system":"archer2"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on degraded server = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 without Retry-After")
	}
}
