package service

import (
	"container/list"
	"sync"

	"repro/internal/telemetry"
)

// Cache metrics: dashboard-style pollers should show up as a high hit
// ratio here; every store write flips the generation and the next read
// of each key is a miss.
var (
	metricCacheHits = telemetry.DefaultRegistry.Counter(
		"benchd_query_cache_hits_total",
		"Query-result cache hits, by result kind.",
		"kind")
	metricCacheMisses = telemetry.DefaultRegistry.Counter(
		"benchd_query_cache_misses_total",
		"Query-result cache misses (including generation-stale entries), by result kind.",
		"kind")
	metricCacheEntries = telemetry.DefaultRegistry.Gauge(
		"benchd_query_cache_entries",
		"Entries currently resident in the query-result cache.").With()
)

// queryCache memoizes computed aggregate/regression results keyed on
// the query's canonical encoding and stamped with the perfstore
// generation observed before computing. A hit requires the stamp to
// still match the store's current generation — any add or eviction
// since invalidates every cached result implicitly, with no write-path
// hook needed. Size is bounded; the least recently used entry is
// evicted first.
type queryCache struct {
	mu    sync.Mutex
	max   int
	lru   *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	gen uint64
	val any
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, lru: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached value for key if it was computed at the given
// store generation. A generation-stale entry is dropped on sight: it
// can never become valid again.
func (c *queryCache) get(key string, gen uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ce := el.Value.(*cacheEntry)
	if ce.gen != gen {
		c.lru.Remove(el)
		delete(c.items, key)
		metricCacheEntries.Set(float64(len(c.items)))
		return nil, false
	}
	c.lru.MoveToFront(el)
	return ce.val, true
}

// put stores a computed value stamped with the generation the store was
// at before the computation started — stamping before, not after, means
// a write racing the computation leaves the entry stale (a safe miss)
// rather than current (a stale hit).
func (c *queryCache) put(key string, gen uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ce := el.Value.(*cacheEntry)
		ce.gen = gen
		ce.val = val
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&cacheEntry{key: key, gen: gen, val: val})
	for len(c.items) > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	metricCacheEntries.Set(float64(len(c.items)))
}

// len reports the resident entry count (tests and /healthz).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
