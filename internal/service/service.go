// Package service is the benchd HTTP daemon: benchmark runs are
// enqueued over HTTP, executed through the same suite/core.Runner
// pipeline the CLI uses on a bounded worker pool, and their perflog
// entries ingested into a shared perfstore that the query and
// regression endpoints serve. It is the "results live behind a
// queryable service" piece of continuous benchmarking (ROADMAP
// north-star; paper §4 future work).
package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/suite"
)

// Config sizes the daemon.
type Config struct {
	// PerflogRoot is the perflog tree served and appended to.
	PerflogRoot string
	// InstallTree is the build cache for executed runs.
	InstallTree string
	// Workers bounds concurrent benchmark executions (default 2).
	Workers int
	// QueueDepth bounds pending runs; a full queue rejects submissions
	// with 503 instead of growing without bound (default 64).
	QueueDepth int
	// RequestTimeout bounds each HTTP request (default 30s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Run states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

// Run is one submitted benchmark execution.
type Run struct {
	ID        string
	Benchmark string
	System    string
	Spec      string

	NumTasks     int
	TasksPerNode int
	CPUsPerTask  int

	mu        sync.Mutex
	status    string
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	entry     *perflog.Entry
}

func (r *Run) set(f func(*Run)) {
	r.mu.Lock()
	f(r)
	r.mu.Unlock()
}

// Server is the benchd daemon: a perfstore plus a worker pool over the
// core.Runner pipeline.
type Server struct {
	cfg    Config
	store  *perfstore.Store
	runner *core.Runner

	queue chan *Run

	mu      sync.Mutex
	runs    map[string]*Run
	order   []string // submission order, for listing
	nextID  int
	closed  bool
	started time.Time

	wg   sync.WaitGroup
	http *http.Server
}

// New assembles a server and ingests whatever the perflog tree already
// holds, so the daemon starts warm.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store := perfstore.Open(cfg.PerflogRoot)
	if err := store.Sync(); err != nil {
		return nil, fmt.Errorf("service: initial ingest: %w", err)
	}
	runner := core.New(cfg.InstallTree, "")
	// The store is the single writer of the perflog tree for daemon
	// runs: workers append through it so index and files stay in
	// lockstep (Runner-side logging stays off).
	s := &Server{
		cfg:     cfg,
		store:   store,
		runner:  runner,
		queue:   make(chan *Run, cfg.QueueDepth),
		runs:    map[string]*Run{},
		started: time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the underlying perfstore (the CLI-equivalent query
// path).
func (s *Server) Store() *perfstore.Store { return s.store }

// Submit validates a run request and enqueues it. It fails fast on an
// unknown benchmark or system, or when the queue is full.
func (s *Server) Submit(benchmark, system, specText string, numTasks, tasksPerNode, cpusPerTask int) (*Run, error) {
	if benchmark == "" || system == "" {
		return nil, fmt.Errorf("benchmark and system are required")
	}
	if _, err := suite.ByName(benchmark); err != nil {
		return nil, err
	}
	if _, _, err := s.runner.Estate.Resolve(system); err != nil {
		return nil, err
	}
	if specText != "" {
		norm, err := suite.NormalizeModelSpec(specText)
		if err != nil {
			return nil, err
		}
		specText = norm
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errShuttingDown
	}
	s.nextID++
	run := &Run{
		ID:           fmt.Sprintf("run-%06d", s.nextID),
		Benchmark:    benchmark,
		System:       system,
		Spec:         specText,
		NumTasks:     numTasks,
		TasksPerNode: tasksPerNode,
		CPUsPerTask:  cpusPerTask,
		status:       StatusQueued,
		submitted:    time.Now(),
	}
	select {
	case s.queue <- run:
		s.runs[run.ID] = run
		s.order = append(s.order, run.ID)
		s.mu.Unlock()
		return run, nil
	default:
		s.mu.Unlock()
		return nil, errQueueFull
	}
}

var (
	errQueueFull    = fmt.Errorf("run queue is full")
	errShuttingDown = fmt.Errorf("server is shutting down")
)

// Get returns a run by id.
func (s *Server) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// worker drains the queue, executing each run through the full
// pipeline and ingesting its perflog entry.
func (s *Server) worker() {
	defer s.wg.Done()
	for run := range s.queue {
		s.execute(run)
	}
}

func (s *Server) execute(run *Run) {
	run.set(func(r *Run) {
		r.status = StatusRunning
		r.started = time.Now()
	})
	b, err := suite.ByName(run.Benchmark)
	if err != nil {
		s.fail(run, err)
		return
	}
	report, err := s.runner.Run(b, core.Options{
		System:       run.System,
		Spec:         run.Spec,
		NumTasks:     run.NumTasks,
		TasksPerNode: run.TasksPerNode,
		CPUsPerTask:  run.CPUsPerTask,
	})
	if err != nil {
		s.fail(run, err)
		return
	}
	entry := report.Entry
	if err := s.store.Append(entry.System, entry.Benchmark, entry); err != nil {
		s.fail(run, fmt.Errorf("run executed but ingest failed: %w", err))
		return
	}
	run.set(func(r *Run) {
		r.status = StatusCompleted
		r.finished = time.Now()
		r.entry = entry
	})
}

func (s *Server) fail(run *Run, err error) {
	run.set(func(r *Run) {
		r.status = StatusFailed
		r.finished = time.Now()
		r.err = err.Error()
	})
}

// Start serves HTTP on addr until Shutdown. It blocks, returning
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Start(addr string) error {
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout,
		WriteTimeout:      2 * s.cfg.RequestTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	return s.http.ListenAndServe()
}

// Shutdown stops accepting work, waits for in-flight HTTP requests
// (bounded by ctx) and for queued runs to drain, then returns. Pending
// runs still execute: submitted work is never silently dropped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	var herr error
	if s.http != nil {
		herr = s.http.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return herr
}
