// Package service is the benchd HTTP daemon: benchmark runs are
// enqueued over HTTP, executed through the same suite/core.Runner
// pipeline the CLI uses on a bounded worker pool, and their perflog
// entries ingested into a shared perfstore that the query and
// regression endpoints serve. It is the "results live behind a
// queryable service" piece of continuous benchmarking (ROADMAP
// north-star; paper §4 future work).
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/buildsys"
	"repro/internal/cbsched"
	"repro/internal/core"
	"repro/internal/eventbus"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/retry"
	"repro/internal/stats"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// Daemon metrics. HTTP-layer families live in handlers.go; these cover
// the run queue and worker pool.
var (
	metricRunsTotal = telemetry.DefaultRegistry.Counter(
		"benchd_runs_total",
		"Submitted runs by terminal status (completed, failed).",
		"status")
	metricQueueDepth = telemetry.DefaultRegistry.Gauge(
		"benchd_queue_depth",
		"Runs currently waiting in the submission queue.").With()
	metricRunsInFlight = telemetry.DefaultRegistry.Gauge(
		"benchd_runs_in_flight",
		"Runs currently executing on the worker pool.").With()
	metricIngestBatch = telemetry.DefaultRegistry.Histogram(
		"benchd_ingest_batch_size",
		"Entries entering the store per durable group commit.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128}).With()
)

// Config sizes the daemon.
type Config struct {
	// PerflogRoot is the perflog tree served and appended to.
	PerflogRoot string
	// DataDir, when set, enables the tiered store: sealed segments and
	// the manifest live here, and boot recovers from them in O(segment
	// headers) instead of re-parsing the perflog tree. Empty keeps the
	// memory-only store.
	DataDir string
	// SealThreshold is the head size (live entries) at which the
	// maintenance loop seals the head into a segment (default 4096).
	SealThreshold int
	// CompactSegments is the segment count at which the maintenance
	// loop merges the sealed tier into one segment (default 8).
	CompactSegments int
	// MaintenanceInterval paces the seal/compact maintenance loop
	// (default 30s).
	MaintenanceInterval time.Duration
	// InstallTree is the build cache for executed runs.
	InstallTree string
	// Workers bounds concurrent benchmark executions (default 2).
	Workers int
	// QueueDepth bounds pending runs; a full queue rejects submissions
	// with 503 instead of growing without bound (default 64).
	QueueDepth int
	// RequestTimeout bounds each HTTP request (default 30s).
	RequestTimeout time.Duration
	// TraceBuffer bounds the in-memory ring of recent run traces served
	// by /v1/traces (default 256).
	TraceBuffer int
	// QueryCacheSize bounds the generation-stamped LRU cache of
	// aggregate and regression results (default 256 entries).
	QueryCacheSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in:
	// profiling endpoints expose internals and cost CPU when scraped).
	EnablePprof bool
	// Retry overrides the runner's per-stage retry policy (nil keeps
	// core.New's default). A pointer because a zero Policy is meaningful:
	// it disables retries.
	Retry *retry.Policy
	// StageTimeout bounds each pipeline stage attempt in executed runs
	// (0 keeps the runner's default of no limit).
	StageTimeout time.Duration
	// CommitInterval is the perflog group-commit accumulation window: a
	// commit batch is held open this long after its first entry before
	// its single write+fsync, letting concurrent workers share the
	// fsync at the cost of that much acknowledgement latency. 0 commits
	// as soon as the committer is idle (batching still emerges under
	// load from fsync backpressure).
	CommitInterval time.Duration
	// CommitBytes flushes a perflog commit batch early once its
	// rendered bytes reach this size (default 1 MiB).
	CommitBytes int
	// TickInterval paces the recurring-suite scheduler's tick loop
	// (default 1s).
	TickInterval time.Duration
	// SchedJitter is the fraction of each schedule interval added as
	// uniform jitter (default 0.1).
	SchedJitter float64
	// EventBuffer bounds each /v1/watch subscriber's event ring; a
	// consumer further behind than this loses its oldest events
	// (default 256).
	EventBuffer int
	// ReplayBuffer bounds the bus's Last-Event-ID replay ring (default
	// 1024).
	ReplayBuffer int
	// HeartbeatInterval paces /v1/watch keepalive comments (default
	// 15s).
	HeartbeatInterval time.Duration
	// RegressionTolerance is the fractional drop that flags a
	// regression after a scheduled run (default 0.10).
	RegressionTolerance float64
	// RegressionWindow bounds the sliding baseline for post-run
	// regression detection (default 5; <0 disables detection).
	RegressionWindow int
	// RSDGate is the run-to-run relative-standard-deviation threshold
	// above which a FOM's repetition set is reported unstable instead of
	// contributing to aggregates and regression verdicts (default
	// perfstore.DefaultRSDGate, 10%; negative disables the gate).
	RSDGate float64
	// SampleInterval paces the self-observability sampler that records
	// metric history and evaluates alert rules (default 10s).
	SampleInterval time.Duration
	// HistoryCapacity is the per-tier retained points per metric series
	// (default 512).
	HistoryCapacity int
	// HistoryFlushEvery persists the metric-history file every N samples
	// (default 30; <0 disables periodic flushes — the final flush on
	// shutdown still runs).
	HistoryFlushEvery int
	// ProfileLimit bounds retained alert-triggered pprof artifacts
	// (default 16).
	ProfileLimit int
	// ProfileCooldown rate-limits alert-triggered profile captures
	// (default 1m).
	ProfileCooldown time.Duration
	// Logger receives structured run-lifecycle logs (default
	// slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 256
	}
	if c.QueryCacheSize <= 0 {
		c.QueryCacheSize = 256
	}
	if c.SealThreshold <= 0 {
		c.SealThreshold = 4096
	}
	if c.CompactSegments <= 0 {
		c.CompactSegments = 8
	}
	if c.MaintenanceInterval <= 0 {
		c.MaintenanceInterval = 30 * time.Second
	}
	if c.TickInterval <= 0 {
		c.TickInterval = time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.ReplayBuffer <= 0 {
		c.ReplayBuffer = 1024
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 15 * time.Second
	}
	if c.RegressionTolerance <= 0 {
		c.RegressionTolerance = 0.10
	}
	if c.RegressionWindow == 0 {
		c.RegressionWindow = 5
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Run states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

// Run is one submitted benchmark execution.
type Run struct {
	ID        string
	Benchmark string
	System    string
	Spec      string
	// ScheduleID names the recurring schedule that fired this run;
	// empty for client-submitted runs. Completion of a scheduled run
	// flows back into the scheduler's overlap/backoff state and
	// triggers regression detection.
	ScheduleID string

	NumTasks     int
	TasksPerNode int
	CPUsPerTask  int
	// Repetitions/Warmup select the run's repetition protocol (0 = the
	// runner's defaults, i.e. a single execution).
	Repetitions int
	Warmup      int

	mu        sync.Mutex
	status    string
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	entry     *perflog.Entry
}

func (r *Run) set(f func(*Run)) {
	r.mu.Lock()
	f(r)
	r.mu.Unlock()
}

// Server is the benchd daemon: a perfstore plus a worker pool over the
// core.Runner pipeline.
type Server struct {
	cfg    Config
	store  *perfstore.Store
	runner *core.Runner
	// writer is the shared group-commit perflog writer every worker's
	// append stage goes through: concurrent runs coalesce into batches
	// of one write + one fsync, and each durable commit feeds the store
	// directly (see commitIngest).
	writer *perflog.Writer
	tracer *telemetry.Tracer
	cache  *queryCache
	bus    *eventbus.Bus
	sched  *cbsched.Scheduler
	obs    *obs.Observer

	// persistMu serializes schedule-registry saves (atomic replace of
	// one file; concurrent savers must not interleave tmp writes).
	persistMu sync.Mutex

	queue chan *Run

	// degraded marks a tiered boot whose manifest could not be read
	// even with retries: the store was rebuilt from the perflog text
	// tree (the source of truth) and serves queries, but submissions
	// are refused so the daemon never writes state it could not fully
	// recover.
	degraded bool

	mu      sync.Mutex
	runs    map[string]*Run
	order   []string // submission order, for listing
	nextID  int
	closed  bool
	started time.Time

	wg        sync.WaitGroup
	maintWG   sync.WaitGroup
	maintStop chan struct{}
	http      *http.Server
}

// New assembles a server and ingests whatever the perflog tree already
// holds, so the daemon starts warm. With Config.DataDir set the store
// boots tiered: the segment manifest is recovered (with retries around
// transient read faults) and only the perflog tail past the sealed
// watermarks is parsed. If the manifest stays unreadable the daemon
// still comes up — degraded and read-only — by rebuilding everything
// from the perflog tree, which remains the source of truth.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var store *perfstore.Store
	degraded := false
	if cfg.DataDir != "" {
		policy := retry.Default()
		if cfg.Retry != nil {
			policy = *cfg.Retry
		}
		err := policy.Do(context.Background(), "benchd.manifest", func(context.Context, int) error {
			var oerr error
			store, oerr = perfstore.OpenTiered(cfg.PerflogRoot, cfg.DataDir)
			return oerr
		})
		if err != nil {
			cfg.Logger.Error("tiered store unavailable, rebuilding from perflog tree (degraded read-only)",
				"error", err.Error(), "data_dir", cfg.DataDir)
			store = perfstore.Open(cfg.PerflogRoot)
			degraded = true
		}
	} else {
		store = perfstore.Open(cfg.PerflogRoot)
	}
	store.RSDGate = cfg.RSDGate
	if err := store.Sync(); err != nil {
		return nil, fmt.Errorf("service: initial ingest: %w", err)
	}
	runner := core.New(cfg.InstallTree, "")
	if cfg.Retry != nil {
		runner.Retry = *cfg.Retry
	}
	if cfg.StageTimeout > 0 {
		runner.StageTimeout = cfg.StageTimeout
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		runner:    runner,
		tracer:    telemetry.NewTracer(cfg.TraceBuffer),
		cache:     newQueryCache(cfg.QueryCacheSize),
		bus:       eventbus.New(cfg.ReplayBuffer),
		queue:     make(chan *Run, cfg.QueueDepth),
		runs:      map[string]*Run{},
		started:   time.Now(),
		degraded:  degraded,
		maintStop: make(chan struct{}),
	}
	sched, err := cbsched.New(cbsched.Config{
		Start:        s.startScheduled,
		Hash:         s.scheduleBuildHash,
		Publish:      s.publish,
		TickInterval: cfg.TickInterval,
		Jitter:       cfg.SchedJitter,
		Logger:       cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	s.sched = sched
	if err := s.loadSchedules(); err != nil {
		return nil, err
	}
	// The observer runs even degraded: a read-only daemon's health is
	// exactly what an operator wants history and alerts on.
	observer, err := obs.New(obs.Config{
		Interval:        cfg.SampleInterval,
		RawCapacity:     cfg.HistoryCapacity,
		FlushEvery:      cfg.HistoryFlushEvery,
		DataDir:         cfg.DataDir,
		ProfileLimit:    cfg.ProfileLimit,
		ProfileCooldown: cfg.ProfileCooldown,
		Publish:         s.publish,
		Logger:          cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	s.obs = observer
	if err := s.loadAlerts(); err != nil {
		return nil, err
	}
	// Every error return is behind us: start the write path, then the
	// workers. The daemon's perflog writes all flow through this one
	// group-commit writer via the runner's append stage, so concurrent
	// runs share commits (one write + one fsync per batch) and each
	// durable commit is handed straight to the store.
	s.writer = perflog.NewWriter(store.Root(), perflog.WriterOptions{
		MaxDelay: cfg.CommitInterval,
		MaxBytes: cfg.CommitBytes,
		OnCommit: s.commitIngest,
	})
	runner.Log = s.writer
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.DataDir != "" && !degraded {
		s.maintWG.Add(1)
		go s.maintain()
	}
	// A degraded (read-only) daemon keeps its registry queryable but
	// does not tick: every firing would be refused by the store anyway.
	if !degraded {
		s.sched.Start()
	}
	s.obs.Start()
	return s, nil
}

// Obs exposes the self-observability subsystem (tests drive Sample
// directly through it).
func (s *Server) Obs() *obs.Observer { return s.obs }

// Bus exposes the event bus so harnesses (the chaos suite, the CLI
// process embedding a daemon) can subscribe directly.
func (s *Server) Bus() *eventbus.Bus { return s.bus }

// Scheduler exposes the recurring-suite scheduler (tests drive Tick
// directly through it).
func (s *Server) Scheduler() *cbsched.Scheduler { return s.sched }

// publish fans one event out to the bus, retrying transient publish
// faults (a failed Publish delivered nothing, so the retry cannot
// duplicate). After Close — the shutdown race — events are dropped
// silently: subscribers are gone.
func (s *Server) publish(typ string, data map[string]string) {
	err := s.publishPolicy().Do(context.Background(), "service.publish",
		func(context.Context, int) error {
			_, perr := s.bus.Publish(typ, data)
			if errors.Is(perr, eventbus.ErrClosed) {
				return nil
			}
			return perr
		})
	if err != nil {
		s.cfg.Logger.Error("event publish failed", "type", typ, "error", err.Error())
	}
}

// publishPolicy is the runner's retry policy with sleeps capped low:
// event fan-out must never hold a worker for a full backoff ladder.
func (s *Server) publishPolicy() retry.Policy {
	p := s.runner.Retry
	if p.MaxAttempts <= 1 {
		p = retry.Default()
	}
	if p.MaxDelay > 50*time.Millisecond || p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	return p
}

// Degraded reports whether the daemon booted read-only because its
// segment manifest was unreadable.
func (s *Server) Degraded() bool { return s.degraded }

// maintain is the storage maintenance loop: it periodically seals a
// grown head into a segment and compacts accumulated small segments,
// keeping boot O(headers) and query fan-out bounded without blocking
// the ingest or query paths for longer than one manifest swap.
func (s *Server) maintain() {
	defer s.maintWG.Done()
	t := time.NewTicker(s.cfg.MaintenanceInterval)
	defer t.Stop()
	for {
		select {
		case <-s.maintStop:
			return
		case <-t.C:
			if n, err := s.store.MaybeSeal(s.cfg.SealThreshold); err != nil {
				s.cfg.Logger.Error("seal failed", "error", err.Error())
			} else if n > 0 {
				s.cfg.Logger.Info("head sealed", "entries", n)
				s.publish(eventbus.TypeStoreSealed, map[string]string{
					"entries": fmt.Sprint(n), "reason": "maintenance",
				})
			}
			if ran, err := s.store.Compact(s.cfg.CompactSegments); err != nil {
				s.cfg.Logger.Error("compaction failed", "error", err.Error())
			} else if ran {
				s.cfg.Logger.Info("segments compacted")
			}
		}
	}
}

// Store exposes the underlying perfstore (the CLI-equivalent query
// path).
func (s *Server) Store() *perfstore.Store { return s.store }

// Runner exposes the pipeline runner so harnesses (the chaos suite) can
// tune its retry policy and stage timeout before submitting work.
func (s *Server) Runner() *core.Runner { return s.runner }

// Writer exposes the shared group-commit perflog writer (tests flush
// through it).
func (s *Server) Writer() *perflog.Writer { return s.writer }

// commitIngest runs on the writer's committer goroutine once per file
// per durable commit: the batch's entries enter the store directly —
// one shard pass, one generation bump — and the checkpoint advances
// past the commit's bytes, so the worker-side SyncFile that follows
// re-parses nothing the commit just made durable.
func (s *Server) commitIngest(c perflog.Commit) {
	metricIngestBatch.Observe(float64(len(c.Entries)))
	s.store.AddBatch(c)
}

// SubmitRequest is one run submission: what to run, where, and under
// which repetition protocol.
type SubmitRequest struct {
	Benchmark    string
	System       string
	Spec         string
	NumTasks     int
	TasksPerNode int
	CPUsPerTask  int
	// Repetitions/Warmup select the repetition protocol (0 = the
	// runner's defaults).
	Repetitions int
	Warmup      int
}

// Submit validates a run request and enqueues it. It fails fast on an
// unknown benchmark or system, a negative layout override, a stale
// install-tree binary (pre-flight validation; surfaces as
// *buildsys.StaleBinaryError), or when the queue is full.
func (s *Server) Submit(req SubmitRequest) (*Run, error) {
	return s.submit(req, "")
}

// submit is Submit plus the schedule provenance used by the recurring
// scheduler's firings; both paths share the queue and its backpressure.
func (s *Server) submit(req SubmitRequest, scheduleID string) (*Run, error) {
	benchmark, system, specText := req.Benchmark, req.System, req.Spec
	if benchmark == "" || system == "" {
		return nil, fmt.Errorf("benchmark and system are required")
	}
	if s.degraded {
		return nil, errDegraded
	}
	// Layout overrides are "0 = use the benchmark default"; negative
	// values would otherwise flow unchecked into the runner and job
	// script (the runner only overrides on > 0, silently masking the
	// caller's mistake).
	if req.NumTasks < 0 || req.TasksPerNode < 0 || req.CPUsPerTask < 0 {
		return nil, fmt.Errorf("layout overrides must be non-negative (num_tasks=%d, tasks_per_node=%d, cpus_per_task=%d)",
			req.NumTasks, req.TasksPerNode, req.CPUsPerTask)
	}
	if req.Repetitions < 0 || req.Warmup < 0 {
		return nil, fmt.Errorf("repetitions and warmup must be non-negative (repetitions=%d, warmup=%d)",
			req.Repetitions, req.Warmup)
	}
	reps := req.Repetitions
	if reps == 0 {
		reps = 1
	}
	if err := stats.ValidateProtocol(reps, req.Warmup); err != nil {
		return nil, err
	}
	b, err := suite.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	if _, _, err := s.runner.Estate.Resolve(system); err != nil {
		return nil, err
	}
	if specText != "" {
		norm, err := suite.NormalizeModelSpec(specText)
		if err != nil {
			return nil, err
		}
		specText = norm
	}
	// Pre-flight validation (the stale-binary postmortem): reject the
	// run before it enters the queue when an installed prefix the build
	// would consult no longer matches the concretized spec. The handler
	// maps *buildsys.StaleBinaryError to a typed 409. Any other
	// pre-flight failure (an unresolvable spec, say) falls through: the
	// run is accepted and fails asynchronously with full context, as it
	// always has.
	if err := s.runner.Preflight(b, core.Options{System: system, Spec: specText}); err != nil {
		var stale *buildsys.StaleBinaryError
		if errors.As(err, &stale) {
			return nil, fmt.Errorf("service: preflight: %w", err)
		}
	}
	// The "service.submit" injection point models the submission path
	// itself failing transiently (the store behind it wobbling); the
	// handler maps it to 503 + Retry-After, like a full queue.
	if err := faultinject.Fire("service.submit"); err != nil {
		return nil, fmt.Errorf("service: submit: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errShuttingDown
	}
	s.nextID++
	run := &Run{
		ID:           fmt.Sprintf("run-%06d", s.nextID),
		Benchmark:    benchmark,
		System:       system,
		Spec:         specText,
		ScheduleID:   scheduleID,
		NumTasks:     req.NumTasks,
		TasksPerNode: req.TasksPerNode,
		CPUsPerTask:  req.CPUsPerTask,
		Repetitions:  req.Repetitions,
		Warmup:       req.Warmup,
		status:       StatusQueued,
		submitted:    time.Now(),
	}
	select {
	case s.queue <- run:
		s.runs[run.ID] = run
		s.order = append(s.order, run.ID)
		s.mu.Unlock()
		metricQueueDepth.Set(float64(len(s.queue)))
		s.cfg.Logger.Info("run submitted",
			"run_id", run.ID, "benchmark", benchmark, "system", system)
		return run, nil
	default:
		s.mu.Unlock()
		return nil, errQueueFull
	}
}

var (
	errQueueFull    = fmt.Errorf("run queue is full")
	errShuttingDown = fmt.Errorf("server is shutting down")
	errDegraded     = fmt.Errorf("storage is degraded (segment manifest unreadable); daemon is read-only")
)

// Get returns a run by id.
func (s *Server) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// worker drains the queue, executing each run through the full
// pipeline and ingesting its perflog entry.
func (s *Server) worker() {
	defer s.wg.Done()
	for run := range s.queue {
		s.execute(run)
	}
}

func (s *Server) execute(run *Run) {
	metricQueueDepth.Set(float64(len(s.queue)))
	metricRunsInFlight.Inc()
	defer metricRunsInFlight.Dec()
	run.set(func(r *Run) {
		r.status = StatusRunning
		r.started = time.Now()
	})
	// The run's trace publishes under its run id, so GET
	// /v1/traces/{runID} returns the span tree for the submitted run;
	// the run_id attribute lands on the root span and therefore on
	// every pipeline log line (via telemetry.ContextHandler).
	ctx := telemetry.WithTraceID(telemetry.WithTracer(context.Background(), s.tracer), run.ID)
	ctx, span := telemetry.Start(ctx, "benchd.run",
		telemetry.String("run_id", run.ID),
		telemetry.String("benchmark", run.Benchmark),
		telemetry.String("system", run.System))
	s.cfg.Logger.InfoContext(ctx, "run started")
	s.publish(eventbus.TypeRunStarted, s.runEventData(run, nil))
	b, err := suite.ByName(run.Benchmark)
	if err != nil {
		s.fail(ctx, span, run, err)
		return
	}
	report, err := s.runner.RunContext(ctx, b, core.Options{
		System:       run.System,
		Spec:         run.Spec,
		NumTasks:     run.NumTasks,
		TasksPerNode: run.TasksPerNode,
		CPUsPerTask:  run.CPUsPerTask,
		Repetitions:  run.Repetitions,
		Warmup:       run.Warmup,
	})
	if err != nil {
		s.fail(ctx, span, run, err)
		return
	}
	entry := report.Entry
	// The runner's append stage already wrote the entry through the
	// shared group-commit writer (exactly once — the append is never
	// retried, since a retry after landed-but-unacknowledged bytes
	// would duplicate the line), and the commit's OnCommit hook fed it
	// to the store. The retried SyncFile below is the idempotent
	// reconciliation pass: normally a checkpoint no-op that re-parses
	// zero bytes, it only reads when out-of-band appenders touched the
	// file or a commit notification was declined, and it is safe to
	// retry through transient store faults.
	logPath := filepath.Join(s.store.Root(), entry.System, entry.Benchmark+".log")
	if err := s.runner.Retry.Do(ctx, "benchd.ingest", func(context.Context, int) error {
		return s.store.SyncFile(logPath)
	}); err != nil {
		s.fail(ctx, span, run, fmt.Errorf("run executed but ingest failed: %w", err))
		return
	}
	span.End(nil)
	metricRunsTotal.With(StatusCompleted).Inc()
	run.set(func(r *Run) {
		r.status = StatusCompleted
		r.finished = time.Now()
		r.entry = entry
	})
	s.cfg.Logger.InfoContext(ctx, "run completed",
		"result", entry.Result, "duration_s", span.Duration().Seconds())
	s.publish(eventbus.TypeRunFinished, s.runEventData(run, entry))
	if run.ScheduleID != "" {
		var runErr error
		if entry.Result != "pass" {
			runErr = fmt.Errorf("run %s: %s", entry.Result, entry.Extra["error"])
		}
		s.sched.Complete(run.ScheduleID, run.ID, entry.Extra["build_hash"], runErr)
		// The recorded build hash is the on-build-change baseline;
		// persist it so a reboot doesn't spuriously re-fire.
		s.persistSchedules()
		s.detectRegressions(ctx, run, entry)
	}
}

// runEventData is the wire payload for run lifecycle events.
func (s *Server) runEventData(run *Run, entry *perflog.Entry) map[string]string {
	data := map[string]string{
		"run_id":    run.ID,
		"benchmark": run.Benchmark,
		"system":    run.System,
	}
	if run.ScheduleID != "" {
		data["schedule_id"] = run.ScheduleID
	}
	run.mu.Lock()
	data["status"] = run.status
	if run.err != "" {
		data["error"] = run.err
	}
	run.mu.Unlock()
	if entry != nil {
		data["result"] = entry.Result
		for name, f := range entry.FOMs {
			data["fom_"+name] = fmt.Sprintf("%g %s", f.Value, f.Unit)
		}
	}
	return data
}

// detectRegressions runs the sliding-baseline evaluator over every FOM
// the scheduled run produced and publishes regression.detected for each
// flagged group — the push half of continuous benchmarking: nobody has
// to poll /v1/regressions to learn a scheduled run got slower.
func (s *Server) detectRegressions(ctx context.Context, run *Run, entry *perflog.Entry) {
	if s.cfg.RegressionWindow < 0 {
		return
	}
	for name := range entry.FOMs {
		q := perfstore.Query{Benchmark: entry.Benchmark, System: entry.System, FOM: name}
		reports, err := s.store.Regressions(q, s.cfg.RegressionTolerance, s.cfg.RegressionWindow)
		if err != nil {
			s.cfg.Logger.ErrorContext(ctx, "regression detection failed",
				"fom", name, "error", err.Error())
			continue
		}
		for _, rep := range reports {
			if !rep.Flagged {
				continue
			}
			s.cfg.Logger.WarnContext(ctx, "regression detected",
				"fom", name, "group", rep.Group,
				"baseline", rep.Baseline, "latest", rep.Latest, "change", rep.Change)
			s.publish(eventbus.TypeRegressionDetected, map[string]string{
				"run_id":      run.ID,
				"schedule_id": run.ScheduleID,
				"benchmark":   entry.Benchmark,
				"system":      entry.System,
				"fom":         name,
				"group":       rep.Group,
				"baseline":    fmt.Sprintf("%g", rep.Baseline),
				"latest":      fmt.Sprintf("%g", rep.Latest),
				"change":      fmt.Sprintf("%.4f", rep.Change),
				"tolerance":   fmt.Sprintf("%g", s.cfg.RegressionTolerance),
				"window":      fmt.Sprint(s.cfg.RegressionWindow),
			})
		}
	}
}

func (s *Server) fail(ctx context.Context, span *telemetry.Span, run *Run, err error) {
	span.End(err)
	metricRunsTotal.With(StatusFailed).Inc()
	run.set(func(r *Run) {
		r.status = StatusFailed
		r.finished = time.Now()
		r.err = err.Error()
	})
	s.cfg.Logger.ErrorContext(ctx, "run failed", "error", err.Error())
	s.publish(eventbus.TypeRunFinished, s.runEventData(run, nil))
	if run.ScheduleID != "" {
		s.sched.Complete(run.ScheduleID, run.ID, "", err)
	}
}

// Start serves HTTP on addr until Shutdown. It blocks, returning
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Start(addr string) error {
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout,
		WriteTimeout:      2 * s.cfg.RequestTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	return s.http.ListenAndServe()
}

// Shutdown stops accepting work, waits for in-flight HTTP requests
// (bounded by ctx) and for queued runs to drain, then returns. Pending
// runs still execute: submitted work is never silently dropped. A
// tiered store seals its remaining head on the way out, so the next
// boot recovers entirely from segments and parses zero perflog bytes.
//
// Ordering matters around the bus: the scheduler stops first (no new
// firings), queued runs drain (each still publishes its lifecycle
// events), then a terminal server.shutdown event is published and the
// bus closed. Watch handlers end their streams on that terminal event
// (or on bus close), which is what lets http.Shutdown — running
// concurrently, since it blocks on active SSE handlers — complete.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.maintStop)
	}
	s.mu.Unlock()
	s.sched.Stop()
	httpDone := make(chan error, 1)
	if s.http != nil {
		go func() { httpDone <- s.http.Shutdown(ctx) }()
	} else {
		httpDone <- nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.maintWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Even on a deadline the writer closes: the accumulating batch is
		// force-flushed (acked ⇒ durable holds for whatever made it in),
		// appenders blocked on it are released now rather than after
		// MaxDelay, and the cached descriptors don't leak. Appends racing
		// the close fail with ErrWriterClosed — their runs were never
		// acknowledged, so nothing durable is lost.
		if err := s.writer.Close(); err != nil {
			s.cfg.Logger.Error("perflog writer close failed", "error", err.Error())
		}
		// We still terminate streams: subscribers get the terminal event
		// (or ErrClosed) instead of hanging. Firing alerts resolve first
		// so no watcher's last view of an alert is a dangling fire.
		s.obs.ResolveFiring(obs.ResolveShutdown)
		s.obs.Stop()
		s.publish(eventbus.TypeServerShutdown, nil)
		s.bus.Close()
		return ctx.Err()
	}
	// Workers are drained: flush and close the group-commit writer so
	// every acknowledged entry (and any batch still accumulating) is on
	// disk and in the store before the final seal snapshots ingest
	// checkpoints into segment watermarks.
	if err := s.writer.Close(); err != nil {
		s.cfg.Logger.Error("perflog writer close failed", "error", err.Error())
	}
	// The sampler stops — flushing its final history snapshot — before
	// the final seal, so the persisted history covers the daemon's whole
	// life including the drain it just finished observing.
	s.obs.Stop()
	if s.cfg.DataDir != "" && !s.degraded {
		if n, err := s.store.Seal(); err != nil {
			// The perflog tree still holds everything unsealed; the next
			// boot re-ingests the tail, so a failed final seal degrades
			// boot time, not durability.
			s.cfg.Logger.Error("final seal failed", "error", err.Error())
		} else if n > 0 {
			s.cfg.Logger.Info("head sealed on shutdown", "entries", n)
			s.publish(eventbus.TypeStoreSealed, map[string]string{
				"entries": fmt.Sprint(n), "reason": "shutdown",
			})
		}
	}
	// Still-firing alerts resolve (reason shutdown) before the terminal
	// event, so a watcher replaying the stream sees every fire matched by
	// a resolve — shutdown is not an outage that leaves alerts dangling.
	if n := s.obs.ResolveFiring(obs.ResolveShutdown); n > 0 {
		s.cfg.Logger.Info("firing alerts resolved by shutdown", "count", n)
	}
	s.publish(eventbus.TypeServerShutdown, nil)
	s.bus.Close()
	return <-httpDone
}
