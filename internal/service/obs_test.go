package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/eventbus"
	"repro/internal/obs"
)

// newObsServer boots a daemon with a fast self-observability sampler
// and a data dir, for end-to-end alert/history/profile tests.
func newObsServer(t *testing.T, dataDir string) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot:       dir + "/perflogs",
		InstallTree:       dir + "/install",
		Workers:           1,
		QueueDepth:        8,
		DataDir:           dataDir,
		SampleInterval:    20 * time.Millisecond,
		ProfileCooldown:   time.Millisecond,
		HistoryFlushEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // double-shutdown safe; tests may shut down early
	})
	return srv, ts
}

// sseAlerts reads alert lifecycle events from one /v1/watch connection
// into a channel until the stream ends.
func sseAlerts(t *testing.T, ctx context.Context, base string) <-chan eventbus.Event {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/watch?types=alert.fired,alert.resolved", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	out := make(chan eventbus.Event, 64)
	go func() {
		defer resp.Body.Close()
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "data:"):
				data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
			case line == "" && data != "":
				var ev eventbus.Event
				if json.Unmarshal([]byte(data), &ev) == nil {
					select {
					case out <- ev:
					case <-ctx.Done():
						return
					}
				}
				data = ""
			}
		}
	}()
	return out
}

func waitAlertEvent(t *testing.T, events <-chan eventbus.Event, typ string) eventbus.Event {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("watch stream ended before %s", typ)
			}
			if ev.Type == typ {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %s event within deadline", typ)
		}
	}
}

// TestObsAlertFiresOnWatchWithProfiles is the issue's acceptance path:
// a synthetic threshold breach fires alert.fired on /v1/watch carrying
// profile ids, the pprof artifact is retrievable over HTTP, and
// deleting the rule publishes the matching alert.resolved.
func TestObsAlertFiresOnWatchWithProfiles(t *testing.T) {
	srv, ts := newObsServer(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := sseAlerts(t, ctx, ts.URL)
	for start := time.Now(); srv.Bus().Subscribers() == 0; {
		if time.Since(start) > 10*time.Second {
			t.Fatal("watcher never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// queue_depth > -1 is always true: the rule breaches on the next
	// sampler tick and, with for=0, fires immediately.
	var rule obs.RuleStatus
	code := postJSON(t, ts.URL+"/v1/alerts",
		`{"name":"synthetic","metric":"benchd_queue_depth","kind":"threshold","op":"gt","value":-1}`, &rule)
	if code != http.StatusCreated {
		t.Fatalf("alert create: %d", code)
	}
	if rule.ID == "" || rule.State != obs.StateOK {
		t.Fatalf("created rule = %+v", rule)
	}

	fired := waitAlertEvent(t, events, eventbus.TypeAlertFired)
	if fired.Data["alert_id"] != rule.ID || fired.Data["metric"] != "benchd_queue_depth" {
		t.Fatalf("fired payload = %v", fired.Data)
	}
	profID := fired.Data["profile_0"]
	if profID == "" {
		t.Fatalf("fired event carries no profile id: %v", fired.Data)
	}

	// The rule now reports firing over CRUD.
	var got obs.RuleStatus
	if code := getJSON(t, ts.URL+"/v1/alerts/"+rule.ID, &got); code != http.StatusOK {
		t.Fatalf("alert get: %d", code)
	}
	if got.State != obs.StateFiring || got.Fires < 1 {
		t.Fatalf("rule status = %+v, want firing", got)
	}
	var list struct {
		Count  int `json:"count"`
		Firing int `json:"firing"`
	}
	getJSON(t, ts.URL+"/v1/alerts", &list)
	if list.Count != 1 || list.Firing != 1 {
		t.Fatalf("alert list = %+v", list)
	}

	// The captured profile is listed and its bytes retrievable.
	var profs struct {
		Profiles []obs.ProfileInfo `json:"profiles"`
		Count    int               `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/profiles", &profs); code != http.StatusOK || profs.Count == 0 {
		t.Fatalf("profiles list: code=%d %+v", code, profs)
	}
	resp, err := http.Get(ts.URL + "/v1/profiles/" + profID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("profile fetch: %d, %d bytes", resp.StatusCode, len(body))
	}
	if kind := resp.Header.Get("X-Profile-Kind"); kind != "heap" && kind != "goroutine" {
		t.Fatalf("profile kind header = %q", kind)
	}

	// healthz carries the observability block.
	var health struct {
		Observability struct {
			Series  int    `json:"series"`
			Samples uint64 `json:"samples"`
			Firing  int    `json:"alerts_firing"`
		} `json:"observability"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Observability.Series == 0 || health.Observability.Samples == 0 || health.Observability.Firing != 1 {
		t.Fatalf("healthz observability = %+v", health.Observability)
	}

	// Deleting the firing rule publishes its terminal resolve.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/alerts/"+rule.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("alert delete: %d", dresp.StatusCode)
	}
	resolved := waitAlertEvent(t, events, eventbus.TypeAlertResolved)
	if resolved.Data["alert_id"] != rule.ID || resolved.Data["reason"] != obs.ResolveDeleted {
		t.Fatalf("resolved payload = %v", resolved.Data)
	}
}

func TestObsAlertValidationAndNotFound(t *testing.T) {
	_, ts := newObsServer(t, "")
	var errBody struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/v1/alerts",
		`{"metric":"x","kind":"spike"}`, &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad rule accepted: %d", code)
	}
	if errBody.Error == "" {
		t.Fatal("400 without error body")
	}
	if code := getJSON(t, ts.URL+"/v1/alerts/alert-999999", nil); code != http.StatusNotFound {
		t.Fatalf("missing alert get: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/alerts/alert-999999", nil)
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing alert delete: %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/profiles/prof-999999-heap", nil); code != http.StatusNotFound {
		t.Fatalf("missing profile: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/history?name=no_such_series", nil); code != http.StatusNotFound {
		t.Fatalf("missing series: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/history?name=x&since=banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad since: %d", code)
	}
}

// TestObsHistoryEndpointServesSampledSeries: the live sampler populates
// /v1/metrics/history — both the name listing and per-series points.
func TestObsHistoryEndpointServesSampledSeries(t *testing.T) {
	srv, ts := newObsServer(t, "")
	// Wait for a few sampler ticks.
	for start := time.Now(); srv.Obs().Stats().Samples < 3; {
		if time.Since(start) > 10*time.Second {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var listing struct {
		Series    []string `json:"series"`
		Count     int      `json:"count"`
		IntervalS float64  `json:"interval_s"`
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/history", &listing); code != http.StatusOK {
		t.Fatalf("listing: %d", code)
	}
	found := false
	for _, name := range listing.Series {
		if name == "benchd_queue_depth" {
			found = true
		}
	}
	if !found || listing.IntervalS != 0.02 {
		t.Fatalf("listing = %+v", listing)
	}
	var hist struct {
		Name   string      `json:"name"`
		Points []obs.Point `json:"points"`
		Count  int         `json:"count"`
		StepS  float64     `json:"step_s"`
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/history?name=benchd_queue_depth&since=10m", &hist); code != http.StatusOK {
		t.Fatalf("series: %d", code)
	}
	if hist.Count < 3 || len(hist.Points) != hist.Count || hist.StepS != 0.02 {
		t.Fatalf("history = count %d, step %g", hist.Count, hist.StepS)
	}
	// go_goroutines (runtime scrape) is also served.
	if code := getJSON(t, ts.URL+"/v1/metrics/history?name=go_goroutines", &hist); code != http.StatusOK || hist.Count == 0 {
		t.Fatalf("runtime series: code=%d count=%d", code, hist.Count)
	}
}

// TestObsHistoryAndAlertsSurviveReboot: the acceptance criterion —
// stop a daemon, boot a fresh one on the same data dir, and both the
// metric history and the alert rules are served from the first boot's
// life.
func TestObsHistoryAndAlertsSurviveReboot(t *testing.T) {
	dataDir := t.TempDir()
	srv1, ts1 := newObsServer(t, dataDir)
	var rule obs.RuleStatus
	if code := postJSON(t, ts1.URL+"/v1/alerts",
		`{"name":"keeper","metric":"benchd_queue_depth","kind":"threshold","op":"gt","value":1e9,"for":"1h"}`, &rule); code != http.StatusCreated {
		t.Fatalf("alert create: %d", code)
	}
	for start := time.Now(); srv1.Obs().Stats().Samples < 5; {
		if time.Since(start) > 10*time.Second {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	preSamples := srv1.Obs().Stats().Samples
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	srv2, ts2 := newObsServer(t, dataDir)
	defer srv2.Obs().Stop()
	var hist struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, ts2.URL+"/v1/metrics/history?name=benchd_queue_depth", &hist); code != http.StatusOK {
		t.Fatalf("post-reboot history: %d", code)
	}
	if hist.Count < int(preSamples) {
		t.Fatalf("post-reboot history has %d points, first life sampled %d", hist.Count, preSamples)
	}
	var got obs.RuleStatus
	if code := getJSON(t, ts2.URL+"/v1/alerts/"+rule.ID, &got); code != http.StatusOK {
		t.Fatalf("post-reboot alert: %d", code)
	}
	if got.Name != "keeper" || got.State != obs.StateOK {
		t.Fatalf("post-reboot rule = %+v", got)
	}
}

// TestShutdownResolvesFiringAlerts: satellite (b) — a firing alert is
// published as resolved (reason shutdown) before the terminal
// server.shutdown event, so no watcher's last view is a dangling fire.
func TestShutdownResolvesFiringAlerts(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot:     dir + "/perflogs",
		InstallTree:     dir + "/install",
		Workers:         1,
		SampleInterval:  10 * time.Millisecond,
		ProfileCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Bus().Subscribe([]string{
		eventbus.TypeAlertFired, eventbus.TypeAlertResolved, eventbus.TypeServerShutdown,
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Obs().AddRule(obs.Rule{
		Metric: "benchd_queue_depth", Kind: obs.KindThreshold, Op: obs.OpGT, Value: -1,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if ev, err := sub.Next(ctx); err != nil || ev.Type != eventbus.TypeAlertFired {
		t.Fatalf("first event = %+v, %v", ev, err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The resolve must arrive, with reason shutdown, strictly before the
	// terminal event.
	var seq []string
	var reason string
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			break // bus closed after the terminal event
		}
		seq = append(seq, ev.Type)
		if ev.Type == eventbus.TypeAlertResolved {
			reason = ev.Data["reason"]
		}
		if ev.Type == eventbus.TypeServerShutdown {
			break
		}
	}
	want := []string{eventbus.TypeAlertResolved, eventbus.TypeServerShutdown}
	if len(seq) != 2 || seq[0] != want[0] || seq[1] != want[1] {
		t.Fatalf("event sequence = %v, want %v", seq, want)
	}
	if reason != obs.ResolveShutdown {
		t.Fatalf("resolve reason = %q, want shutdown", reason)
	}
}
