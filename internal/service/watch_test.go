package service

// End-to-end tests for GET /v1/watch: the SSE surface over the event
// bus. Real HTTP servers (httptest.NewServer) throughout — SSE only
// exists on a live connection.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/eventbus"
	"repro/internal/telemetry"
)

// newWatchServer boots a daemon for streaming tests. Cleanup shuts the
// server down FIRST (ending every SSE stream via the terminal event)
// and closes the listener after — the reverse order would deadlock:
// httptest.Close waits for outstanding requests, and a watch stream
// only ends when the bus closes.
func newWatchServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		PerflogRoot:       dir + "/perflogs",
		InstallTree:       dir + "/install",
		Workers:           2,
		QueueDepth:        16,
		HeartbeatInterval: 200 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return srv, ts
}

// watchConn is one test subscriber: a live /v1/watch stream with its
// events and comments decoded onto channels by a reader goroutine.
type watchConn struct {
	resp     *http.Response
	events   chan eventbus.Event
	comments chan string
	done     chan error // stream end: nil on EOF, else the read error
}

func dialWatch(t *testing.T, base, query string, lastID uint64) *watchConn {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/watch"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}
	wc := &watchConn{
		resp:     resp,
		events:   make(chan eventbus.Event, 1<<14),
		comments: make(chan string, 256),
		done:     make(chan error, 1),
	}
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "data:"):
				data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
			case strings.HasPrefix(line, ":"):
				select {
				case wc.comments <- strings.TrimSpace(strings.TrimPrefix(line, ":")):
				default:
				}
			case line == "" && data != "":
				var ev eventbus.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					wc.done <- fmt.Errorf("bad payload %q: %w", data, err)
					return
				}
				data = ""
				wc.events <- ev
			}
		}
		wc.done <- sc.Err()
	}()
	t.Cleanup(wc.close)
	return wc
}

func (wc *watchConn) close() { wc.resp.Body.Close() }

// next waits for one event, failing the test on timeout.
func (wc *watchConn) next(t *testing.T, timeout time.Duration) eventbus.Event {
	t.Helper()
	select {
	case ev := <-wc.events:
		return ev
	case <-time.After(timeout):
		t.Fatalf("no event within %s", timeout)
		return eventbus.Event{}
	}
}

// collect waits for n events of the given type (other types are
// skipped), failing the test on timeout.
func (wc *watchConn) collect(t *testing.T, typ string, n int, timeout time.Duration) []eventbus.Event {
	t.Helper()
	deadline := time.After(timeout)
	var out []eventbus.Event
	for len(out) < n {
		select {
		case ev := <-wc.events:
			if typ == "" || ev.Type == typ {
				out = append(out, ev)
			}
		case <-deadline:
			t.Fatalf("got %d/%d %q events within %s", len(out), n, typ, timeout)
		}
	}
	return out
}

// TestWatchFanout is the acceptance gate: 50 concurrent subscribers
// each receive every run.finished and regression.detected event, in the
// same bus order, while real runs execute.
func TestWatchFanout(t *testing.T) {
	srv, ts := newWatchServer(t, nil)

	const subscribers = 50
	conns := make([]*watchConn, subscribers)
	for i := range conns {
		conns[i] = dialWatch(t, ts.URL, "?types=run.finished,regression.detected", 0)
	}
	// Every stream is live before events flow (the "watching" greeting
	// flushes after subscription), so nothing below can be missed.
	for _, wc := range conns {
		select {
		case c := <-wc.comments:
			if c != "watching" {
				t.Fatalf("greeting = %q", c)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no greeting comment")
		}
	}

	const runs = 3
	for i := 0; i < runs; i++ {
		code := postJSON(t, ts.URL+"/v1/runs",
			`{"benchmark":"babelstream-omp","system":"archer2"}`, nil)
		if code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
	}
	// A synthetic regression event checks the second subscribed type
	// rides the same stream.
	if _, err := srv.Bus().Publish(eventbus.TypeRegressionDetected, map[string]string{"fom": "triad_mbps"}); err != nil {
		t.Fatal(err)
	}

	var reference []uint64
	for i, wc := range conns {
		evs := wc.collect(t, "", runs+1, 60*time.Second)
		finished, regressions := 0, 0
		var ids []uint64
		for _, ev := range evs {
			switch ev.Type {
			case eventbus.TypeRunFinished:
				finished++
				if ev.Data["status"] != StatusCompleted {
					t.Errorf("subscriber %d: run.finished status = %q", i, ev.Data["status"])
				}
			case eventbus.TypeRegressionDetected:
				regressions++
			default:
				t.Errorf("subscriber %d: unexpected type %q through the filter", i, ev.Type)
			}
			ids = append(ids, ev.ID)
		}
		if finished != runs || regressions != 1 {
			t.Errorf("subscriber %d: %d finished + %d regressions, want %d + 1", i, finished, regressions, runs)
		}
		for j := 1; j < len(ids); j++ {
			if ids[j] <= ids[j-1] {
				t.Errorf("subscriber %d: event ids out of order: %v", i, ids)
			}
		}
		if i == 0 {
			reference = ids
		} else if fmt.Sprint(ids) != fmt.Sprint(reference) {
			t.Errorf("subscriber %d saw %v, subscriber 0 saw %v", i, ids, reference)
		}
	}
}

// TestWatchLastEventIDReplay covers reconnect catch-up: a client that
// comes back with Last-Event-ID receives everything it missed from the
// replay ring, then seamlessly continues live, without duplicates.
func TestWatchLastEventIDReplay(t *testing.T) {
	srv, ts := newWatchServer(t, nil)

	var ids []uint64
	for i := 0; i < 6; i++ {
		ev, err := srv.Bus().Publish(eventbus.TypeStoreSealed, map[string]string{"n": strconv.Itoa(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ev.ID)
	}

	// "Reconnect" having seen the first three.
	wc := dialWatch(t, ts.URL, "?types=store.sealed", ids[2])
	replay := wc.collect(t, eventbus.TypeStoreSealed, 3, 5*time.Second)
	for i, ev := range replay {
		if ev.ID != ids[3+i] {
			t.Fatalf("replay[%d].ID = %d, want %d", i, ev.ID, ids[3+i])
		}
	}
	// Then live delivery continues past the replay, no duplicates.
	liveEv, err := srv.Bus().Publish(eventbus.TypeStoreSealed, map[string]string{"n": "live"})
	if err != nil {
		t.Fatal(err)
	}
	live := wc.next(t, 5*time.Second)
	if live.ID != liveEv.ID || live.Data["n"] != "live" {
		t.Fatalf("live event = %+v, want id %d", live, liveEv.ID)
	}
}

// TestWatchReplayGap: a client asking for history the bounded replay
// ring has evicted is told about the hole instead of silently missing
// it.
func TestWatchReplayGap(t *testing.T) {
	srv, ts := newWatchServer(t, func(c *Config) { c.ReplayBuffer = 4 })

	var first uint64
	for i := 0; i < 12; i++ {
		ev, err := srv.Bus().Publish(eventbus.TypeStoreSealed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = ev.ID
		}
	}
	wc := dialWatch(t, ts.URL, "", first)
	select {
	case c := <-wc.comments:
		if !strings.Contains(c, "replay gap") {
			t.Fatalf("comment = %q, want a replay-gap notice", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no replay-gap comment")
	}
	// Whatever the ring still holds (the newest 4) is replayed.
	evs := wc.collect(t, eventbus.TypeStoreSealed, 4, 5*time.Second)
	if last := evs[len(evs)-1].ID; last != first+11 {
		t.Fatalf("last replayed id = %d, want %d", last, first+11)
	}
}

// TestWatchSlowClientDrop: a stalled subscriber overflows its bounded
// ring (drop-oldest, metric incremented) and its connection is
// reclaimed by the write deadline — while a healthy subscriber on the
// same bus receives every event and publishing never blocks.
func TestWatchSlowClientDrop(t *testing.T) {
	srv, ts := newWatchServer(t, func(c *Config) {
		c.EventBuffer = 8
		c.HeartbeatInterval = 100 * time.Millisecond
	})
	reg := telemetry.DefaultRegistry
	droppedBefore, _ := reg.Value("eventbus_dropped_total", "slow_subscriber")

	healthy := dialWatch(t, ts.URL, "?types=store.sealed", 0)

	// The stalled client: connected, never reads. The server's writes
	// land in kernel buffers until they fill, then block until the
	// rolling write deadline reclaims the handler; meanwhile its ring
	// (capacity 8) overflows and drops oldest.
	stalled, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/watch?types=store.sealed", nil)
	if err != nil {
		t.Fatal(err)
	}
	stalledResp, err := http.DefaultClient.Do(stalled)
	if err != nil {
		t.Fatal(err)
	}
	defer stalledResp.Body.Close()

	// Bulky payloads fill the stalled connection's socket buffers in a
	// few events, wedging its handler mid-write; the publishes are paced
	// so the HEALTHY subscriber's 8-slot ring always drains in time —
	// only the wedged stream falls behind and overflows.
	pad := strings.Repeat("x", 32*1024)
	const total = 150
	publishStart := time.Now()
	for i := 0; i < total; i++ {
		if _, err := srv.Bus().Publish(eventbus.TypeStoreSealed, map[string]string{"n": strconv.Itoa(i), "pad": pad}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Publishing must never block on the stalled consumer: the paced
	// loop's wall clock is its own sleeps, not the wedged stream.
	if d := time.Since(publishStart); d > 30*time.Second {
		t.Errorf("publishing stalled for %s behind a slow consumer", d)
	}

	// The healthy subscriber gets all 300, in order.
	evs := healthy.collect(t, eventbus.TypeStoreSealed, total, 60*time.Second)
	for i, ev := range evs {
		if ev.Data["n"] != strconv.Itoa(i) {
			t.Fatalf("healthy subscriber: event %d has n=%s (lost or reordered)", i, ev.Data["n"])
		}
	}

	// The stalled subscriber's drops are visible in /metrics.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if dropped, _ := reg.Value("eventbus_dropped_total", "slow_subscriber"); dropped > droppedBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eventbus_dropped_total{slow_subscriber} never incremented for the stalled stream")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWatchShutdownDelivery: graceful shutdown publishes a terminal
// server.shutdown event, every stream receives it and ends cleanly,
// and Shutdown itself completes (no handler left holding it up).
func TestWatchShutdownDelivery(t *testing.T) {
	srv, ts := newWatchServer(t, nil)
	wc := dialWatch(t, ts.URL, "", 0)
	filtered := dialWatch(t, ts.URL, "?types=store.sealed", 0)

	if _, err := srv.Bus().Publish(eventbus.TypeStoreSealed, nil); err != nil {
		t.Fatal(err)
	}
	if ev := wc.next(t, 5*time.Second); ev.Type != eventbus.TypeStoreSealed {
		t.Fatalf("event type = %q", ev.Type)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Both streams — including the filtered one, which always carries
	// the terminal type — see server.shutdown and then EOF.
	for name, c := range map[string]*watchConn{"unfiltered": wc, "filtered": filtered} {
		evs := c.collect(t, eventbus.TypeServerShutdown, 1, 10*time.Second)
		if evs[0].Type != eventbus.TypeServerShutdown {
			t.Fatalf("%s: terminal event = %+v", name, evs[0])
		}
		select {
		case err := <-c.done:
			if err != nil {
				t.Errorf("%s: stream ended with %v, want clean EOF", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: stream did not end after the terminal event", name)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestWatchBadRequests: unknown type filters and malformed Last-Event-ID
// are rejected up front with 400s, not half-open streams.
func TestWatchBadRequests(t *testing.T) {
	_, ts := newWatchServer(t, nil)

	resp, err := http.Get(ts.URL + "/v1/watch?types=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown type: status = %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/watch", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID: status = %d, want 400", resp.StatusCode)
	}
}

// TestWatchHeartbeat: a quiet stream still carries keepalive comments.
func TestWatchHeartbeat(t *testing.T) {
	_, ts := newWatchServer(t, func(c *Config) { c.HeartbeatInterval = 50 * time.Millisecond })
	wc := dialWatch(t, ts.URL, "", 0)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case c := <-wc.comments:
			if c == "heartbeat" {
				return
			}
		case <-deadline:
			t.Fatal("no heartbeat on a quiet stream")
		}
	}
}

// TestWatchStreamsOutliveRequestTimeout: the watch stream must not be
// cut by the API request timeout (it bypasses the TimeoutHandler).
func TestWatchStreamsOutliveRequestTimeout(t *testing.T) {
	srv, ts := newWatchServer(t, func(c *Config) {
		c.RequestTimeout = 150 * time.Millisecond
		c.HeartbeatInterval = 50 * time.Millisecond
	})
	wc := dialWatch(t, ts.URL, "", 0)
	time.Sleep(400 * time.Millisecond) // well past the request timeout
	if _, err := srv.Bus().Publish(eventbus.TypeStoreSealed, nil); err != nil {
		t.Fatal(err)
	}
	if ev := wc.next(t, 5*time.Second); ev.Type != eventbus.TypeStoreSealed {
		t.Fatalf("event after timeout window = %+v", ev)
	}
}
